package paragraph

import (
	"bytes"
	"strings"
	"testing"
)

const quickSource = `
int a[64];
int main() {
    int i;
    int sum = 0;
    for (i = 0; i < 64; i = i + 1) {
        a[i] = i * 3;
    }
    for (i = 0; i < 64; i = i + 1) {
        sum = sum + a[i];
    }
    print_int(sum);
    print_char(10);
    return 0;
}
`

func TestCompileAndAnalyze(t *testing.T) {
	prog, err := CompileMiniC(quickSource, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeProgram(prog, DataflowConfig(SyscallConservative), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Operations == 0 || res.CriticalPath == 0 {
		t.Fatalf("empty result: %v", res)
	}
	if res.Available < 1 {
		t.Errorf("available = %v", res.Available)
	}
	if len(res.Profile) == 0 {
		t.Error("no profile")
	}
}

func TestMachineExecution(t *testing.T) {
	prog, err := CompileMiniC(quickSource, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	m, err := NewMachine(prog, WithStdout(&out))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "6048" { // 3 * 63*64/2
		t.Errorf("program output = %q, want 6048", got)
	}
}

func TestTraceRoundTripAnalysis(t *testing.T) {
	prog, err := CompileMiniC(quickSource, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := WriteTrace(prog, &buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty trace")
	}
	fromFile, err := AnalyzeTraceFile(&buf, DataflowConfig(SyscallConservative))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := AnalyzeProgram(prog, DataflowConfig(SyscallConservative), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.CriticalPath != direct.CriticalPath ||
		fromFile.Operations != direct.Operations ||
		fromFile.Available != direct.Available {
		t.Errorf("stored-trace analysis %v differs from direct %v", fromFile, direct)
	}
	if fromFile.Instructions != n {
		t.Errorf("instructions %d != trace events %d", fromFile.Instructions, n)
	}
}

func TestAssembleDirect(t *testing.T) {
	prog, err := Assemble(`
        .text
main:   li   $t0, 5
        li   $t1, 7
        add  $a0, $t0, $t1
        li   $v0, 1
        syscall
        jr   $ra
`)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	m, err := NewMachine(prog, WithStdout(&out))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if out.String() != "12" {
		t.Errorf("output = %q", out.String())
	}
}

func TestWorkloadLookup(t *testing.T) {
	if len(Workloads()) != 10 {
		t.Fatalf("got %d workloads", len(Workloads()))
	}
	w, err := WorkloadByName("matrix300")
	if err != nil || w.Name != "matrixx" {
		t.Errorf("lookup by original: %v, %v", w, err)
	}
	if _, err := WorkloadByName("bogus"); err == nil {
		t.Error("bogus lookup succeeded")
	}
}

func TestMaxInstrCap(t *testing.T) {
	prog, err := CompileMiniC(quickSource, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeProgram(prog, DataflowConfig(SyscallConservative), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 100 {
		t.Errorf("instructions = %d, want the 100 cap", res.Instructions)
	}
}

func TestTwoPassFacade(t *testing.T) {
	prog, err := CompileMiniC(quickSource, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := WriteTrace(prog, &buf, 0); err != nil {
		t.Fatal(err)
	}
	rs := bytes.NewReader(buf.Bytes())
	two, err := AnalyzeTraceFileTwoPass(rs, DataflowConfig(SyscallConservative))
	if err != nil {
		t.Fatal(err)
	}
	one, err := AnalyzeProgram(prog, DataflowConfig(SyscallConservative), 0)
	if err != nil {
		t.Fatal(err)
	}
	if two.CriticalPath != one.CriticalPath || two.Available != one.Available {
		t.Errorf("two-pass %v != one-pass %v", two, one)
	}
	if two.MaxLiveMemoryWords > one.MaxLiveMemoryWords {
		t.Errorf("two-pass footprint %d exceeds one-pass %d",
			two.MaxLiveMemoryWords, one.MaxLiveMemoryWords)
	}
}
