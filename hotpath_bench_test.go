package paragraph

// Hot-path benchmarks: each benchmark pits the pre-existing slow path
// (bufio streaming reads, per-event delivery) against the zero-copy/batched
// fast path over identical bytes, so one run produces the before/after
// ns/event table for the three stages of the pipeline — raw trace decode,
// buffered replay, and full analysis. `make bench` captures them in
// BENCH_hotpath.json; the differential battery proves the two paths are
// observationally identical, these prove the fast one is faster.

import (
	"bytes"
	"context"
	"io"
	"testing"

	"paragraph/internal/core"
	"paragraph/internal/cpu"
	"paragraph/internal/minic"
	"paragraph/internal/trace"
	"paragraph/internal/workloads"
)

// hotPathTrace simulates naskerx once and returns its v2 trace bytes and
// event count, cached across benchmarks of one run.
var hotPathCache struct {
	data   []byte
	events int
}

func hotPathTrace(b *testing.B) ([]byte, int) {
	b.Helper()
	if hotPathCache.data != nil {
		return hotPathCache.data, hotPathCache.events
	}
	w, _ := workloads.ByName("naskerx")
	prog, err := w.Build(*benchScale, minic.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var enc bytes.Buffer
	tw, err := trace.NewWriter(&enc)
	if err != nil {
		b.Fatal(err)
	}
	m, err := cpu.New(prog, cpu.WithTrace(tw))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		b.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		b.Fatal(err)
	}
	hotPathCache.data = enc.Bytes()
	hotPathCache.events = int(tw.Count())
	return hotPathCache.data, hotPathCache.events
}

// BenchmarkHotPathRead decodes the trace bytes end to end: the bufio
// streaming reader (before) against the zero-copy bytes reader (after),
// both drained through the batch API so only byte acquisition differs.
func BenchmarkHotPathRead(b *testing.B) {
	data, events := hotPathTrace(b)
	makeReader := map[string]func() (*trace.Reader, error){
		"impl=bufio": func() (*trace.Reader, error) {
			return trace.NewReader(bytes.NewReader(data))
		},
		"impl=zerocopy": func() (*trace.Reader, error) {
			return trace.NewBytesReader(data, trace.ReaderOptions{})
		},
	}
	for _, name := range []string{"impl=bufio", "impl=zerocopy"} {
		mk := makeReader[name]
		b.Run(name, func(b *testing.B) {
			batch := make([]trace.Event, trace.DefaultBatchEvents)
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				r, err := mk()
				if err != nil {
					b.Fatal(err)
				}
				got := 0
				for {
					n, err := r.ReadBatch(batch)
					got += n
					if err == io.EOF {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				if got != events {
					b.Fatalf("decoded %d events, want %d", got, events)
				}
			}
			reportPerEvent(b, events)
		})
	}
}

// BenchmarkHotPathReplay replays a decoded EventBuffer into a sink:
// per-event delivery through the exported copying Replay (before) against
// batched slice delivery (after).
func BenchmarkHotPathReplay(b *testing.B) {
	data, events := hotPathTrace(b)
	r, err := trace.NewBytesReader(data, trace.ReaderOptions{})
	if err != nil {
		b.Fatal(err)
	}
	buf, err := trace.ReadAll(r)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("impl=perevent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			got := 0
			sink := trace.SinkFunc(func(e *trace.Event) error {
				got++
				return nil
			})
			if err := buf.Replay(sink); err != nil {
				b.Fatal(err)
			}
			if got != events {
				b.Fatalf("replayed %d events, want %d", got, events)
			}
		}
		reportPerEvent(b, events)
	})
	b.Run("impl=batch", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			got := 0
			sink := trace.BatchFunc(func(batch []trace.Event) error {
				got += len(batch)
				return nil
			})
			if err := buf.ReplayBatches(ctx, sink); err != nil {
				b.Fatal(err)
			}
			if got != events {
				b.Fatalf("replayed %d events, want %d", got, events)
			}
		}
		reportPerEvent(b, events)
	})
}

// BenchmarkHotPathAnalysis is the end-to-end number: stored trace bytes
// through reader and analyzer to a finished Result. Before: bufio reads,
// one Event call per instruction. After: zero-copy chunk decode, batched
// Events delivery.
func BenchmarkHotPathAnalysis(b *testing.B) {
	data, events := hotPathTrace(b)
	cfg := core.Dataflow(core.SyscallConservative)
	cfg.Profile = false

	b.Run("impl=perevent", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			r, err := trace.NewReader(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			a := core.NewAnalyzer(cfg)
			if err := r.ForEach(a.Event); err != nil {
				b.Fatal(err)
			}
			a.MustFinish()
		}
		reportPerEvent(b, events)
	})
	b.Run("impl=batch", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			r, err := trace.NewBytesReader(data, trace.ReaderOptions{})
			if err != nil {
				b.Fatal(err)
			}
			a := core.NewAnalyzer(cfg)
			if err := r.ForEachBatch(a.Events); err != nil {
				b.Fatal(err)
			}
			a.MustFinish()
		}
		reportPerEvent(b, events)
	})
}

func reportPerEvent(b *testing.B, events int) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(events)*float64(b.N)), "ns/event")
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
