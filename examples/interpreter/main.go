// Interpreter: demonstrate the paper's explanation for xlisp being the
// least parallel SPEC benchmark. The same computation — sum of i*i for
// i = 1..300 — is run twice: natively, and under a bytecode interpreter.
// The interpreter's virtual program counter and stack pointer are
// recurrences that the DDG analysis cannot remove, so the interpreted run
// shows a fraction of the native parallelism even though the underlying
// computation is identical.
//
// Run with:
//
//	go run ./examples/interpreter
package main

import (
	"fmt"
	"log"

	"paragraph"
)

// native computes the sums directly: the loop bodies for different i are
// almost independent once registers are renamed.
const native = `
int results[64];
int main() {
    int trial;
    for (trial = 0; trial < 12; trial = trial + 1) {
        int sum = 0;
        int i;
        for (i = 1; i <= 300; i = i + 1) {
            sum = sum + i * i;
        }
        results[trial % 64] = sum;
    }
    print_int(results[0]);
    print_char(10);
    return 0;
}
`

// interpreted runs the identical computation on a stack-machine bytecode
// interpreter — the paper's "abstract serial machine" re-introducing the
// control dependencies that the analyzer normally removes.
const interpreted = `
int code[64];
int stk[64];
int mem[16];
int results[64];

void assemble(int n) {
    code[0] = 1;  code[1] = n;    // PUSH n
    code[2] = 6;  code[3] = 0;    // STORE m0 (counter)
    code[4] = 1;  code[5] = 0;    // PUSH 0
    code[6] = 6;  code[7] = 1;    // STORE m1 (sum)
    code[8] = 5;  code[9] = 0;    // loop: LOAD m0
    code[10] = 5; code[11] = 0;   // LOAD m0
    code[12] = 4;                 // MUL
    code[13] = 5; code[14] = 1;   // LOAD m1
    code[15] = 2;                 // ADD
    code[16] = 6; code[17] = 1;   // STORE m1
    code[18] = 5; code[19] = 0;   // LOAD m0
    code[20] = 1; code[21] = 1;   // PUSH 1
    code[22] = 3;                 // SUB
    code[23] = 6; code[24] = 0;   // STORE m0
    code[25] = 5; code[26] = 0;   // LOAD m0
    code[27] = 7; code[28] = 8;   // JNZ loop
    code[29] = 9;                 // HALT
}

void interpret() {
    int pc = 0;
    int sp = 0;
    int running = 1;
    while (running) {
        int op = code[pc];
        pc = pc + 1;
        if (op == 1) { stk[sp] = code[pc]; pc = pc + 1; sp = sp + 1; }
        else { if (op == 2) { sp = sp - 1; stk[sp-1] = stk[sp-1] + stk[sp]; }
        else { if (op == 3) { sp = sp - 1; stk[sp-1] = stk[sp-1] - stk[sp]; }
        else { if (op == 4) { sp = sp - 1; stk[sp-1] = stk[sp-1] * stk[sp]; }
        else { if (op == 5) { stk[sp] = mem[code[pc]]; pc = pc + 1; sp = sp + 1; }
        else { if (op == 6) { sp = sp - 1; mem[code[pc]] = stk[sp]; pc = pc + 1; }
        else { if (op == 7) {
            sp = sp - 1;
            if (stk[sp] != 0) { pc = code[pc]; } else { pc = pc + 1; }
        }
        else { running = 0; } } } } } } }
    }
}

int main() {
    int trial;
    for (trial = 0; trial < 12; trial = trial + 1) {
        assemble(300);
        interpret();
        results[trial % 64] = mem[1];
    }
    print_int(results[0]);
    print_char(10);
    return 0;
}
`

func analyze(label, src string) *paragraph.Result {
	prog, err := paragraph.CompileMiniC(src, paragraph.CompileOptions{})
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	res, err := paragraph.AnalyzeProgram(prog, paragraph.DataflowConfig(paragraph.SyscallConservative), 0)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	fmt.Printf("%-12s %10d instructions, critical path %8d, available parallelism %8.2f\n",
		label, res.Instructions, res.CriticalPath, res.Available)
	return res
}

func main() {
	fmt.Println("The same computation, native vs interpreted (sum of squares, 12 trials):")
	fmt.Println()
	nat := analyze("native", native)
	interp := analyze("interpreted", interpreted)
	fmt.Println()
	fmt.Printf("interpretation overhead:  %.1fx more instructions for the same answers\n",
		float64(interp.Instructions)/float64(nat.Instructions))
	fmt.Printf("critical-path blowup:     %.1fx more steps on an ideal dataflow machine\n",
		float64(interp.CriticalPath)/float64(nat.CriticalPath))
	fmt.Printf("useful work per cycle:    %.2f native vs %.2f interpreted\n",
		float64(nat.Operations)/float64(nat.CriticalPath),
		float64(nat.Operations)/float64(interp.CriticalPath))
	fmt.Println()
	fmt.Println("The interpreter's virtual pc and stack pointer are recurrences the")
	fmt.Println("analyzer cannot rename away, so the same answers take far longer on")
	fmt.Println("an ideal machine, and most of its \"parallelism\" is interpretive")
	fmt.Println("busywork. This is the paper's xlisp finding: the Lisp prog loop")
	fmt.Println("\"implements an abstract serial machine ... re-introducing the")
	fmt.Println("control dependencies that are normally removed by Paragraph.\"")
}
