// Renaming: reproduce the paper's Table-4 experiment for a chosen workload,
// showing how much parallelism each renaming level exposes — the paper's
// central claim that storage dependencies, not true dependencies, hide most
// of the parallelism in ordinary programs.
//
// Run with:
//
//	go run ./examples/renaming [workload]
//
// Try `matrixx` (stack renaming unlocks it, like matrix300 in the paper) or
// `espressox` (memory renaming unlocks it, like espresso).
package main

import (
	"fmt"
	"log"
	"os"

	"paragraph"
)

func main() {
	name := "matrixx"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, err := paragraph.WorkloadByName(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s (models %s): %s\n\n", w.Name, w.Original, w.Description)

	prog, err := w.Build(1, paragraph.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}

	conditions := []struct {
		label                string
		regs, stack, memData bool
	}{
		{"no renaming", false, false, false},
		{"registers renamed", true, false, false},
		{"registers + stack renamed", true, true, false},
		{"registers + all memory renamed", true, true, true},
	}

	fmt.Printf("%-34s %14s %16s\n", "condition", "critical path", "avail. parallelism")
	var prev float64
	for _, c := range conditions {
		cfg := paragraph.Config{
			Syscalls:        paragraph.SyscallConservative,
			RenameRegisters: c.regs,
			RenameStack:     c.stack,
			RenameData:      c.memData,
		}
		res, err := paragraph.AnalyzeProgram(prog, cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if prev > 0 && res.Available > 3*prev {
			marker = "  <-- the unlocking step"
		}
		fmt.Printf("%-34s %14d %16.2f%s\n", c.label, res.CriticalPath, res.Available, marker)
		prev = res.Available
	}

	fmt.Println("\nThe paper's Table 4 shows the same staircase: parallelism is")
	fmt.Println("hidden behind storage reuse, and which renaming level releases it")
	fmt.Println("depends on where the program keeps its values (registers, stack")
	fmt.Println("temporaries, or global/heap memory).")
}
