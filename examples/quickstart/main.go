// Quickstart: compile a small imperative program, execute it on the
// simulated machine while the Paragraph analyzer watches the trace, and
// print the paper's core metrics — critical path, available parallelism and
// the parallelism profile.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"paragraph"
	"paragraph/internal/stats"
)

// A little reduction program: fill an array, then sum it three ways. The
// three sums are independent of each other, so the DDG analyzer finds
// parallelism a serial processor would never see.
const source = `
double a[256];
double sums[3];

int main() {
    int i;
    for (i = 0; i < 256; i = i + 1) {
        a[i] = 1.0 / (1.0 + i);
    }
    double s0 = 0.0;
    double s1 = 0.0;
    double s2 = 0.0;
    for (i = 0; i < 256; i = i + 1) { s0 = s0 + a[i]; }
    for (i = 0; i < 256; i = i + 1) { s1 = s1 + a[i] * a[i]; }
    for (i = 0; i < 256; i = i + 1) { s2 = s2 + a[i] * (1.0 - a[i]); }
    sums[0] = s0; sums[1] = s1; sums[2] = s2;
    print_str("harmonic=");  print_double(s0); print_char(10);
    print_str("squares=");   print_double(s1); print_char(10);
    print_str("entropyish="); print_double(s2); print_char(10);
    return 0;
}
`

func main() {
	prog, err := paragraph.CompileMiniC(source, paragraph.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// First, just run it: the program's own output goes to stdout.
	fmt.Println("--- program output ---")
	m, err := paragraph.NewMachine(prog, paragraph.WithStdout(os.Stdout))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		log.Fatal(err)
	}

	// Now analyze the same program under the paper's dataflow limit
	// (all renaming on, whole-trace window) and under a finite window.
	fmt.Println("\n--- dependency analysis ---")
	for _, setup := range []struct {
		label string
		mut   func(*paragraph.Config)
	}{
		{"dataflow limit (all renaming, unlimited window)", func(c *paragraph.Config) {}},
		{"no renaming at all", func(c *paragraph.Config) {
			c.RenameRegisters, c.RenameStack, c.RenameData = false, false, false
		}},
		{"window of 64 instructions", func(c *paragraph.Config) { c.WindowSize = 64 }},
	} {
		cfg := paragraph.DataflowConfig(paragraph.SyscallConservative)
		setup.mut(&cfg)
		res, err := paragraph.AnalyzeProgram(prog, cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-48s critical path %6d, available parallelism %8.2f\n",
			setup.label, res.CriticalPath, res.Available)
	}

	// And the parallelism profile of the dataflow limit.
	res, err := paragraph.AnalyzeProgram(prog, paragraph.DataflowConfig(paragraph.SyscallConservative), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := stats.AsciiPlot(os.Stdout, "parallelism profile (operations per DDG level)",
		res.Profile, 20, 50); err != nil {
		log.Fatal(err)
	}
}
