// Windowsweep: reproduce the paper's Figure-8 experiment for one workload —
// how much of the total available parallelism a machine can expose when it
// may only examine a fixed-size contiguous window of the dynamic
// instruction stream. One simulated execution feeds every window size
// simultaneously.
//
// Run with:
//
//	go run ./examples/windowsweep [workload]
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"paragraph"
	"paragraph/internal/core"
	"paragraph/internal/cpu"
	"paragraph/internal/trace"
)

func main() {
	name := "tomcatvx"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, err := paragraph.WorkloadByName(name)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := w.Build(1, paragraph.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}

	windows := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384, 65536, 0}

	// One execution, many analyzers: fan the trace out with trace.Tee.
	analyzers := make([]*core.Analyzer, len(windows))
	sinks := make([]trace.Sink, len(windows))
	for i, win := range windows {
		cfg := paragraph.DataflowConfig(paragraph.SyscallConservative)
		cfg.Profile = false
		cfg.WindowSize = win
		analyzers[i] = paragraph.NewAnalyzer(cfg)
		sinks[i] = analyzers[i]
	}
	machine, err := cpu.New(prog, cpu.WithTrace(trace.Tee(sinks...)))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := machine.Run(0); err != nil {
		log.Fatal(err)
	}

	results := make([]*core.Result, len(windows))
	for i, a := range analyzers {
		results[i] = a.MustFinish()
	}
	total := results[len(results)-1].Available

	fmt.Printf("workload %s (models %s): total available parallelism %.2f\n\n",
		w.Name, w.Original, total)
	fmt.Printf("%10s %14s %10s\n", "window", "parallelism", "% of total")
	for i, win := range windows {
		label := "full"
		if win != 0 {
			label = fmt.Sprint(win)
		}
		pct := results[i].Available / total * 100
		bar := strings.Repeat("#", int(pct/2))
		fmt.Printf("%10s %14.2f %9.2f%% %s\n", label, results[i].Available, pct, bar)
	}

	fmt.Println("\nAs in the paper's Figure 8: modest parallelism is available even")
	fmt.Println("in small windows, but exposing the full dataflow limit requires a")
	fmt.Println("window many thousands of instructions deep.")
}
