package paragraph

// The shared-extraction benchmark: the window sweep that motivates the
// resolver/scheduler split (ISSUE: resolve once, schedule per config). An
// 8-window sweep analyzes one stream under 8 configurations that differ
// only in window size, so the expensive config-invariant half of analysis —
// event validation, live-well hashing, slot resolution — is identical 8
// times over. The ring engine pays it 8 times; the resolved engine pays it
// once and broadcasts packed dependence records. `make bench` captures the
// ratio in BENCH_sweep.json; the resolve-only and schedule-only cases
// report the honest cost split behind it.

import (
	"bytes"
	"context"
	"testing"

	"paragraph/internal/core"
	"paragraph/internal/harness"
	"paragraph/internal/trace"
)

// sweepBenchConfigs is the 8-config window sweep shape used throughout this
// benchmark: one resolve group by construction.
func sweepBenchConfigs() []core.Config {
	var cfgs []core.Config
	for _, size := range []int{1, 32, 128, 512, 2048, 8192, 65536, 0} {
		cfg := core.Dataflow(core.SyscallConservative)
		cfg.Profile = false
		cfg.WindowSize = size
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// BenchmarkWindowSweep pits the per-config engines against the shared
// extraction on the 8-window sweep of one 2M-event synthetic trace:
//
//	ring-8        event ring, 8 full analyzers (the prior engine)
//	resolved-8    one resolver, 8 record-replay schedulers
//	resolve-only  the config-invariant half alone (hashing, validation)
//	schedule-only the per-config half alone (8 schedulers, records cached)
//
// resolved-8 over ring-8 is the headline; resolve-only + schedule-only/8
// bound what any further scheduling work can save.
func BenchmarkWindowSweep(b *testing.B) {
	const nevents = 2_000_000
	data := synthSpecStream(b, nevents)
	cfgs := sweepBenchConfigs()

	decode := func(sink trace.BatchSink) error {
		r, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			return err
		}
		return r.ForEachBatch(sink.Events)
	}

	buf := &trace.EventBuffer{}
	if err := decode(buf); err != nil {
		b.Fatal(err)
	}
	ref, err := harness.FanOut(context.Background(), buf, cfgs, len(cfgs))
	if err != nil {
		b.Fatal(err)
	}
	check := func(b *testing.B, res []*core.Result) {
		b.Helper()
		for i := range res {
			if res[i].CriticalPath != ref[i].CriticalPath || res[i].Operations != ref[i].Operations {
				b.Fatalf("config %d: sweep result drifted from buffered replay", i)
			}
		}
	}
	perSweep := float64(nevents) * float64(len(cfgs))

	b.Run("ring-8", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		var res []*core.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, _, err = harness.FanOutStream(context.Background(), func(ring *trace.Ring) error {
				return decode(ring)
			}, cfgs, 0)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		check(b, res)
		b.ReportMetric(perSweep*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("resolved-8", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		var res []*core.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, _, err = harness.FanOutResolved(context.Background(), func(rs *harness.ResolverStream) error {
				return decode(rs)
			}, cfgs, 0)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		check(b, res)
		b.ReportMetric(perSweep*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("resolve-only", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			r := core.NewResolver(cfgs[0], func(*core.DepSegment) error { return nil })
			if err := decode(resolverSink{r}); err != nil {
				b.Fatal(err)
			}
			if err := r.Flush(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(nevents)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("schedule-only", func(b *testing.B) {
		// Resolve once outside the timer; the loop replays the cached
		// segments through all 8 schedulers — the marginal cost of one
		// more config in a sweep, times 8.
		var segs []*core.DepSegment
		r := core.NewResolver(cfgs[0], func(seg *core.DepSegment) error {
			segs = append(segs, seg)
			return nil
		})
		if err := decode(resolverSink{r}); err != nil {
			b.Fatal(err)
		}
		if err := r.Flush(); err != nil {
			b.Fatal(err)
		}
		totals := r.Totals()
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		var res []*core.Result
		for i := 0; i < b.N; i++ {
			res = res[:0]
			for _, cfg := range cfgs {
				s := core.NewScheduler(cfg)
				for _, seg := range segs {
					if err := s.Apply(seg); err != nil {
						b.Fatal(err)
					}
				}
				out, err := s.Finish(totals)
				if err != nil {
					b.Fatal(err)
				}
				res = append(res, out)
			}
		}
		b.StopTimer()
		check(b, res)
		b.ReportMetric(perSweep*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
}

// resolverSink adapts a bare core.Resolver to trace.BatchSink for the
// stage-isolated benchmark cases.
type resolverSink struct{ r *core.Resolver }

func (s resolverSink) Event(e *trace.Event) error       { return s.r.Event(e) }
func (s resolverSink) Events(batch []trace.Event) error { return s.r.Events(batch) }
