// Package paragraph reproduces "Dynamic Dependency Analysis of Ordinary
// Programs" (Austin & Sohi, ISCA 1992): a methodology and tool — Paragraph —
// for constructing and analyzing the dynamic dependency graph (DDG) of an
// ordinary program from a serial execution trace.
//
// This package is the public face of the reproduction. It re-exports the
// analyzer (internal/core), the trace format (internal/trace), and the
// substrates that stand in for the paper's unreproducible environment: a
// MIPS-like ISA with the paper's Table-1 latencies (internal/isa), an
// assembler (internal/asm), a CPU simulator that plays the role of the
// Pixie tracer (internal/cpu), a compiler for the MiniC imperative language
// standing in for the MIPS -O3 C/FORTRAN compilers (internal/minic), ten
// SPEC'89-analogue workloads (internal/workloads), and the experiment
// harness that regenerates the paper's tables and figures
// (internal/harness).
//
// # Quick start
//
//	prog, err := paragraph.CompileMiniC(src, paragraph.CompileOptions{})
//	...
//	res, err := paragraph.AnalyzeProgram(prog, paragraph.DataflowConfig(paragraph.SyscallConservative), 0)
//	...
//	fmt.Printf("critical path %d, available parallelism %.1f\n",
//		res.CriticalPath, res.Available)
//
// Or analyze a stored trace:
//
//	res, err := paragraph.AnalyzeTraceFile(f, cfg)
//
// The runnable programs under examples/ and the CLI tools under cmd/ show
// the full surface; cmd/specrun regenerates every table and figure of the
// paper's evaluation.
package paragraph

import (
	"context"
	"fmt"
	"io"

	"paragraph/internal/asm"
	"paragraph/internal/core"
	"paragraph/internal/cpu"
	"paragraph/internal/harness"
	"paragraph/internal/minic"
	"paragraph/internal/trace"
	"paragraph/internal/workloads"
)

// Core analysis types.
type (
	// Config carries the paper's analysis switches: system-call policy,
	// renaming of registers / stack / non-stack memory, instruction
	// window size, and functional-unit limits.
	Config = core.Config
	// Result carries the metrics of one analysis: critical path,
	// available parallelism, parallelism profile, and optional
	// value-lifetime and sharing distributions.
	Result = core.Result
	// Analyzer consumes a serial trace event-by-event (it implements
	// TraceSink) and produces a Result from Finish.
	Analyzer = core.Analyzer
	// SyscallPolicy selects the conservative (firewall) or optimistic
	// (ignore) treatment of system calls.
	SyscallPolicy = core.SyscallPolicy
)

// System-call policies.
const (
	SyscallConservative = core.SyscallConservative
	SyscallOptimistic   = core.SyscallOptimistic
)

// BranchPolicy models control dependencies (extension E10): perfect
// prediction, a firewall after every branch, or firewalls on the
// mispredictions of a static or two-bit predictor.
type BranchPolicy = core.BranchPolicy

// Branch policies.
const (
	BranchPerfect = core.BranchPerfect
	BranchStall   = core.BranchStall
	BranchStatic  = core.BranchStatic
	BranchTwoBit  = core.BranchTwoBit
)

// Trace plumbing.
type (
	// TraceEvent is one dynamically executed instruction.
	TraceEvent = trace.Event
	// TraceSink consumes a stream of trace events.
	TraceSink = trace.Sink
	// TraceWriter stores a trace in the compact binary file format.
	TraceWriter = trace.Writer
	// TraceReader reads a stored trace.
	TraceReader = trace.Reader
)

// Substrate types.
type (
	// Program is an assembled, loadable memory image.
	Program = asm.Program
	// Machine is the CPU simulator executing a Program.
	Machine = cpu.CPU
	// Workload is one of the ten SPEC'89-analogue benchmarks.
	Workload = workloads.Workload
	// Suite runs the paper's experiments over the workloads.
	Suite = harness.Suite
	// CompileOptions configures the MiniC compiler (loop unrolling,
	// constant folding).
	CompileOptions = minic.Options
)

// NewAnalyzer creates a DDG analyzer with the given configuration.
func NewAnalyzer(cfg Config) *Analyzer { return core.NewAnalyzer(cfg) }

// DataflowConfig returns the paper's upper-bound configuration: all
// renaming enabled, unlimited window and functional units, profile
// collection on.
func DataflowConfig(p SyscallPolicy) Config { return core.Dataflow(p) }

// CompileMiniC compiles MiniC source all the way to a loadable program.
func CompileMiniC(src string, opts CompileOptions) (*Program, error) {
	return minic.Build(src, opts)
}

// CompileMiniCToAsm compiles MiniC source to assembly text.
func CompileMiniCToAsm(src string, opts CompileOptions) (string, error) {
	return minic.Compile(src, opts)
}

// Assemble assembles MIPS-like assembly text into a loadable program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// NewMachine loads a program into a fresh simulated CPU. Options from the
// cpu package (trace sink, stdout, stdin, basic-block profiling) apply.
func NewMachine(p *Program, opts ...cpu.Option) (*Machine, error) {
	return cpu.New(p, opts...)
}

// WithTraceSink attaches a trace sink to a Machine; each executed
// instruction is delivered as a TraceEvent.
func WithTraceSink(s TraceSink) cpu.Option { return cpu.WithTrace(s) }

// WithStdout redirects the simulated program's output.
func WithStdout(w io.Writer) cpu.Option { return cpu.WithStdout(w) }

// AnalyzeProgram executes a program on the simulator, streaming its trace
// straight into a DDG analyzer, and returns the analysis. maxInstr caps the
// trace length (0 = run to completion).
func AnalyzeProgram(p *Program, cfg Config, maxInstr uint64) (*Result, error) {
	a := core.NewAnalyzer(cfg)
	m, err := cpu.New(p, cpu.WithTrace(a))
	if err != nil {
		return nil, err
	}
	if _, err := m.Run(maxInstr); err != nil && err != cpu.ErrLimit {
		return nil, err
	}
	return a.Finish()
}

// AnalyzeTraceFile reads a stored binary trace and analyzes it.
func AnalyzeTraceFile(r io.Reader, cfg Config) (*Result, error) {
	return AnalyzeTraceFileOpts(r, cfg, AnalyzeOptions{})
}

// AnalyzeOptions carries fault-tolerance switches for trace-file analysis.
type AnalyzeOptions struct {
	// Degraded reads v2 traces in graceful-degradation mode: damaged
	// chunks are skipped and accounted in Skipped instead of aborting.
	Degraded bool
	// Stats, when non-nil, receives the reader's skip accounting (valid
	// chunks, skipped chunks/events, resync distance) on return.
	Stats *TraceReadStats
}

// TraceReadStats re-exports the trace reader's degradation accounting.
type TraceReadStats = trace.ReadStats

// AnalyzeTraceFileOpts reads a stored binary trace and analyzes it with
// explicit fault-tolerance options.
func AnalyzeTraceFileOpts(r io.Reader, cfg Config, opts AnalyzeOptions) (*Result, error) {
	tr, err := trace.NewReaderOpts(r, trace.ReaderOptions{Degraded: opts.Degraded})
	if err != nil {
		return nil, err
	}
	a := core.NewAnalyzer(cfg)
	if err := tr.ForEachBatch(a.Events); err != nil {
		return nil, err
	}
	if opts.Stats != nil {
		*opts.Stats = tr.Stats()
	}
	return a.Finish()
}

// AnalyzeTraceFileTwoPass analyzes a stored trace with the paper's
// Method-1 memory optimization: a discovery pass finds every value's last
// use, so the analysis pass can evict dead values immediately instead of
// waiting for their storage to be reused. Metrics are identical to
// AnalyzeTraceFile; Result.MaxLiveMemoryWords — the working set that cost
// the paper 32 MB — is what shrinks.
func AnalyzeTraceFileTwoPass(rs io.ReadSeeker, cfg Config) (*Result, error) {
	return core.AnalyzeTwoPass(rs, cfg)
}

// TwoPassOptions configures AnalyzeTraceFileTwoPassOpts: degraded reads over
// damaged traces, periodic checkpoints, and skip accounting.
type TwoPassOptions = core.TwoPassOptions

// Checkpoint is a resumable snapshot of an in-progress two-pass analysis.
type Checkpoint = core.Checkpoint

// AnalyzeTraceFileTwoPassOpts is AnalyzeTraceFileTwoPass with
// fault-tolerance options. For cancellation, call core.AnalyzeTwoPassOpts
// with a context directly.
func AnalyzeTraceFileTwoPassOpts(rs io.ReadSeeker, cfg Config, opts TwoPassOptions) (*Result, error) {
	return core.AnalyzeTwoPassOpts(context.Background(), rs, cfg, opts)
}

// ResumeTraceFileTwoPass continues an interrupted two-pass analysis from a
// checkpoint; the result matches an uninterrupted run.
func ResumeTraceFileTwoPass(rs io.ReadSeeker, cp *Checkpoint, opts TwoPassOptions) (*Result, error) {
	return core.ResumeTwoPass(context.Background(), rs, cp, opts)
}

// Error taxonomy of the fault-tolerant pipeline, re-exported so callers can
// classify failures with errors.Is/errors.As against the public package
// alone.
var (
	ErrTraceBadMagic  = trace.ErrBadMagic
	ErrTraceVersion   = trace.ErrVersion
	ErrTraceTruncated = trace.ErrTruncated
	ErrTraceChecksum  = trace.ErrChecksum
	ErrBadEvent       = core.ErrBadEvent
)

type (
	// CorruptChunkError identifies a damaged v2 trace chunk (index,
	// offset, cause); returned by trace reading in fail-fast mode.
	CorruptChunkError = trace.CorruptChunkError
	// AnalysisError wraps an analyzer-internal failure with the index of
	// the event that triggered it.
	AnalysisError = core.AnalysisError
)

// WriteTrace executes a program and stores its trace in the binary format,
// returning the number of events written. maxInstr of 0 runs to completion.
func WriteTrace(p *Program, w io.Writer, maxInstr uint64) (uint64, error) {
	tw, err := trace.NewWriter(w)
	if err != nil {
		return 0, err
	}
	m, err := cpu.New(p, cpu.WithTrace(tw))
	if err != nil {
		return 0, err
	}
	if _, err := m.Run(maxInstr); err != nil && err != cpu.ErrLimit {
		return 0, err
	}
	return tw.Count(), tw.Flush()
}

// Workloads returns the ten SPEC'89-analogue benchmarks.
func Workloads() []*Workload { return workloads.All() }

// WorkloadByName finds a workload by analogue name ("matrixx") or by the
// SPEC benchmark it models ("matrix300").
func WorkloadByName(name string) (*Workload, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("paragraph: unknown workload %q", name)
	}
	return w, nil
}

// NewSuite creates an experiment suite over all workloads at the given
// scale (1 = seconds-per-experiment default).
func NewSuite(scale int) *Suite { return harness.NewSuite(scale) }
