// Command pgshard analyzes a giant stored trace in independently-run
// shards: split writes a chunk-boundary-aligned plan, analyze runs one
// shard (seeded from the previous shard's result file) and merge
// reassembles the per-shard results into the exact Result a monolithic run
// would produce. Each step is a separate process invocation, so the shards
// of one trace can run at different times, on different machines sharing a
// filesystem, or under a job scheduler:
//
//	pgshard split -trace huge.pgt -shards 3 -plan plan.json
//	pgshard analyze -trace huge.pgt -plan plan.json -shard 0 -out shard-0.pgsr
//	pgshard analyze -trace huge.pgt -plan plan.json -shard 1 -prev shard-0.pgsr -out shard-1.pgsr
//	pgshard analyze -trace huge.pgt -plan plan.json -shard 2 -prev shard-1.pgsr -out shard-2.pgsr
//	pgshard merge shard-0.pgsr shard-1.pgsr shard-2.pgsr
//
// With -speculate the chain disappears: every shard compiles independently
// (no -prev, so all N processes can run at the same time) into a
// relocatable delta file, and merge splices the deltas — the output is
// byte-identical to the chained workflow's:
//
//	pgshard analyze -trace huge.pgt -plan plan.json -shard 0 -speculate -out shard-0.pgsd &
//	pgshard analyze -trace huge.pgt -plan plan.json -shard 1 -speculate -out shard-1.pgsd &
//	pgshard analyze -trace huge.pgt -plan plan.json -shard 2 -speculate -out shard-2.pgsd &
//	wait
//	pgshard merge shard-0.pgsd shard-1.pgsd shard-2.pgsd
//
// The analysis switches of the analyze subcommand mirror the paragraph CLI
// and must be identical for every shard of one trace; merge rejects
// mismatched configurations and mixed result/delta arguments.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"paragraph/internal/budget"
	"paragraph/internal/core"
	"paragraph/internal/remote"
	"paragraph/internal/shard"
	"paragraph/internal/stats"
	"paragraph/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	switch os.Args[1] {
	case "split":
		runSplit(ctx, os.Args[2:])
	case "analyze":
		runAnalyze(ctx, os.Args[2:])
	case "merge":
		runMerge(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pgshard: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  pgshard split   -trace FILE -shards N [-degraded] -plan PLAN
  pgshard analyze -trace FILE -plan PLAN -shard I [-prev PREV.pgsr] -out OUT.pgsr [analysis flags]
  pgshard analyze -trace FILE -plan PLAN -shard I -speculate -out OUT.pgsd [analysis flags]
  pgshard merge   SHARD-0.pgsr SHARD-1.pgsr ...   (or SHARD-*.pgsd from -speculate runs)

Run 'pgshard analyze -h' for the analysis flags (they mirror paragraph).
`)
	os.Exit(2)
}

func runSplit(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("pgshard split", flag.ExitOnError)
	traceFile := fs.String("trace", "", "stored v2 trace to split (local path or http(s) URL)")
	shards := fs.Int("shards", 0, "number of shards to plan")
	degraded := fs.Bool("degraded", false, "tolerate corrupt chunks; shards skip them exactly as a monolithic degraded read would")
	useMmap := fs.Bool("mmap", false, "memory-map the trace instead of reading it into the heap")
	planOut := fs.String("plan", "plan.json", "write the shard plan (JSON) to this file")
	fs.Parse(args)
	if *traceFile == "" || *shards < 1 {
		fatal(fmt.Errorf("split needs -trace and -shards >= 1"))
	}
	data, closeTrace, err := readTrace(ctx, *traceFile, *useMmap)
	if err != nil {
		fatal(err)
	}
	defer closeTrace()
	plan, err := shard.Split(data, *shards, shard.Options{Degraded: *degraded})
	if err != nil {
		fatal(err)
	}
	if err := shard.SavePlan(*planOut, plan); err != nil {
		fatal(err)
	}
	fmt.Printf("planned %d shard(s) over %s events (%s trace bytes) -> %s\n",
		len(plan.Shards), stats.FormatInt(int64(plan.TotalEvents)),
		stats.FormatInt(plan.TraceBytes), *planOut)
	for _, sh := range plan.Shards {
		fmt.Printf("  shard %d: bytes [%d,%d) events [%s,%s)\n", sh.Index, sh.Start, sh.End,
			stats.FormatInt(int64(sh.StartEvent)), stats.FormatInt(int64(sh.StartEvent+sh.Events)))
	}
}

func runAnalyze(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("pgshard analyze", flag.ExitOnError)
	traceFile := fs.String("trace", "", "stored v2 trace file the plan was made for")
	planFile := fs.String("plan", "", "shard plan written by pgshard split")
	shardIdx := fs.Int("shard", -1, "index of the shard to analyze")
	prevFile := fs.String("prev", "", "previous shard's result file (required for every shard but the first)")
	outFile := fs.String("out", "", "write this shard's result file here")
	speculate := fs.Bool("speculate", false, "compile this shard speculatively (no -prev, so all shards can run concurrently) into a delta file; merge splices the deltas")

	syscalls := fs.String("syscalls", "conservative", "system-call policy: conservative or optimistic")
	renameRegs := fs.Bool("rename-regs", false, "remove register storage dependencies")
	renameStack := fs.Bool("rename-stack", false, "remove stack-segment storage dependencies")
	renameData := fs.Bool("rename-data", false, "remove non-stack memory storage dependencies")
	renameAll := fs.Bool("rename-all", false, "enable all renaming switches")
	window := fs.Int("window", 0, "instruction window size (0 = whole trace)")
	fus := fs.Int("fus", 0, "generic functional units (0 = unlimited)")
	unitLat := fs.Bool("unit-latency", false, "give every operation a one-level latency")
	branches := fs.String("branches", "perfect", "branch model: perfect, stall, static, twobit")
	profile := fs.Bool("profile", false, "collect the parallelism profile")
	buckets := fs.Int("buckets", 0, "profile resolution in buckets (0 = default)")
	lifetimes := fs.Bool("lifetimes", false, "collect the value-lifetime distribution")
	sharing := fs.Bool("sharing", false, "collect the degree-of-sharing distribution")
	storage := fs.Bool("storage", false, "collect the live-well occupancy curve")
	memBudget := fs.String("mem-budget", "", "memory budget for the analyzer working set, e.g. 64M (empty = unlimited)")
	budgetPolicy := fs.String("budget-policy", "fail", "over-budget response: fail, degrade or warn")
	useMmap := fs.Bool("mmap", false, "memory-map the trace instead of reading it into the heap; the shard decodes zero-copy from the mapping")
	fs.Parse(args)
	if *traceFile == "" || *planFile == "" || *shardIdx < 0 || *outFile == "" {
		fatal(fmt.Errorf("analyze needs -trace, -plan, -shard and -out"))
	}

	cfg := core.Config{
		WindowSize:      *window,
		FunctionalUnits: *fus,
		UnitLatency:     *unitLat,
		Profile:         *profile,
		ProfileBuckets:  *buckets,
		Lifetimes:       *lifetimes,
		Sharing:         *sharing,
		StorageProfile:  *storage,
	}
	switch *branches {
	case "perfect":
		cfg.Branches = core.BranchPerfect
	case "stall":
		cfg.Branches = core.BranchStall
	case "static", "btfn":
		cfg.Branches = core.BranchStatic
	case "twobit", "2bit":
		cfg.Branches = core.BranchTwoBit
	default:
		fatal(fmt.Errorf("bad -branches value %q", *branches))
	}
	switch *syscalls {
	case "conservative", "cons":
		cfg.Syscalls = core.SyscallConservative
	case "optimistic", "opt":
		cfg.Syscalls = core.SyscallOptimistic
	default:
		fatal(fmt.Errorf("bad -syscalls value %q", *syscalls))
	}
	if *renameAll || (!*renameRegs && !*renameStack && !*renameData) {
		cfg.RenameRegisters, cfg.RenameStack, cfg.RenameData = true, true, true
	} else {
		cfg.RenameRegisters, cfg.RenameStack, cfg.RenameData = *renameRegs, *renameStack, *renameData
	}
	if *memBudget != "" {
		b, err := budget.ParseBytes(*memBudget)
		if err != nil {
			fatal(err)
		}
		cfg.MemBudget = b
		pol, err := budget.ParsePolicy(*budgetPolicy)
		if err != nil {
			fatal(err)
		}
		cfg.BudgetPolicy = pol
	}

	plan, err := shard.LoadPlan(*planFile)
	if err != nil {
		fatal(err)
	}
	if *shardIdx >= len(plan.Shards) {
		fatal(fmt.Errorf("plan has %d shard(s); no shard %d", len(plan.Shards), *shardIdx))
	}
	data, closeTrace, err := readTrace(ctx, *traceFile, *useMmap)
	if err != nil {
		fatal(err)
	}
	defer closeTrace()

	if *speculate {
		if *prevFile != "" {
			fatal(fmt.Errorf("-prev is meaningless with -speculate: speculative shards build with no predecessor"))
		}
		sh := plan.Shards[*shardIdx]
		buf, err := shard.DecodeShard(ctx, data, sh, plan.Degraded)
		if err != nil {
			fatal(err)
		}
		d, err := shard.BuildShardDelta(ctx, buf, cfg, sh)
		if err != nil {
			fatal(err)
		}
		err = shard.SaveDelta(*outFile, &shard.Delta{
			Index: sh.Index, Shards: len(plan.Shards),
			Config: cfg, ReadStats: buf.Stats(), D: d,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("shard %d/%d: %s events compiled speculatively -> %s\n", sh.Index, len(plan.Shards),
			stats.FormatInt(int64(d.Events)), *outFile)
		return
	}

	// Shard 0 starts a fresh analyzer; every later shard resumes the
	// analyzer state the previous shard's process saved alongside its
	// result. This handoff is what makes N processes equal one.
	var a *core.Analyzer
	if *shardIdx == 0 {
		if *prevFile != "" {
			fatal(fmt.Errorf("shard 0 starts fresh; -prev is for later shards"))
		}
		a = core.NewAnalyzer(cfg)
	} else {
		if *prevFile == "" {
			fatal(fmt.Errorf("shard %d needs -prev (shard %d's result file)", *shardIdx, *shardIdx-1))
		}
		prev, cp, err := shard.LoadResult(*prevFile)
		if err != nil {
			fatal(err)
		}
		if prev.Index != *shardIdx-1 {
			fatal(fmt.Errorf("-prev holds shard %d, want shard %d", prev.Index, *shardIdx-1))
		}
		if cp == nil {
			fatal(fmt.Errorf("-prev carries no checkpoint (is it the last shard's result?)"))
		}
		a = cp.Restore()
	}

	sh := plan.Shards[*shardIdx]
	buf, err := shard.DecodeShard(ctx, data, sh, plan.Degraded)
	if err != nil {
		fatal(err)
	}
	res, cp, err := shard.RunShard(ctx, a, buf, cfg, sh, len(plan.Shards), *shardIdx < len(plan.Shards)-1)
	if err != nil {
		fatal(err)
	}
	if err := shard.SaveResult(*outFile, res, cp); err != nil {
		fatal(err)
	}
	fmt.Printf("shard %d/%d: %s events analyzed -> %s\n", sh.Index, len(plan.Shards),
		stats.FormatInt(int64(res.Events)), *outFile)
}

func runMerge(args []string) {
	fs := flag.NewFlagSet("pgshard merge", flag.ExitOnError)
	fs.Parse(args)
	files := fs.Args()
	if len(files) == 0 {
		fatal(fmt.Errorf("merge needs the shard result files as arguments"))
	}
	if deltas, ok, err := loadDeltas(files); err != nil {
		fatal(err)
	} else if ok {
		parts, res, rs, err := shard.Splice(deltas)
		if err != nil {
			fatal(err)
		}
		if err := shard.RenderMerge(os.Stdout, res, rs, parts); err != nil {
			fatal(err)
		}
		return
	}
	parts, err := loadParts(files)
	if err != nil {
		fatal(err)
	}
	res, rs, err := shard.Merge(parts)
	if err != nil {
		fatal(err)
	}
	if err := shard.RenderMerge(os.Stdout, res, rs, parts); err != nil {
		fatal(err)
	}
}

// loadDeltas sniffs whether the merge was handed speculative delta files
// (their magic distinguishes them from result files). The first file
// decides; a mix of deltas and results fails with an error naming the
// odd file out — splicing half a chain against finished results would
// misreport the trace.
func loadDeltas(files []string) ([]*shard.Delta, bool, error) {
	first, err := shard.LoadDelta(files[0])
	if err != nil {
		return nil, false, nil // not a delta chain; let loadParts report
	}
	deltas := make([]*shard.Delta, len(files))
	deltas[0] = first
	for i, f := range files[1:] {
		d, err := shard.LoadDelta(f)
		if err != nil {
			return nil, false, fmt.Errorf("merge: %s: %w (mixing delta and result files?)", f, err)
		}
		deltas[i+1] = d
	}
	return deltas, true, nil
}

// loadParts loads every shard-result file for a merge. A file that is
// missing, truncated, or from a different format version fails the whole
// merge with an error naming that file — a bad shard in a long argument
// list must be identifiable, and a partial merge would silently misreport
// the trace.
func loadParts(files []string) ([]*shard.Result, error) {
	parts := make([]*shard.Result, len(files))
	for i, f := range files {
		res, _, err := shard.LoadResult(f)
		if err != nil {
			return nil, fmt.Errorf("merge: %s: %w", f, err)
		}
		parts[i] = res
	}
	return parts, nil
}

// readTrace loads the trace bytes: a remote URL is fetched whole through
// the resumable ranged reader (with its fault accounting reported on
// stderr), a local file is either mapped (zero-copy, shared page cache
// across concurrent shard processes) or read whole. The closure releases
// the mapping; it must outlive every use of the returned bytes.
func readTrace(ctx context.Context, path string, useMmap bool) ([]byte, func(), error) {
	if remote.IsURL(path) {
		src, err := remote.Open(ctx, path, remote.Options{})
		if err != nil {
			return nil, nil, err
		}
		data, err := src.FetchAll(ctx)
		if st := src.Stats(); st.Retries > 0 || st.Resumes > 0 {
			fmt.Fprintf(os.Stderr, "pgshard: remote fetch: %d request(s), %d retried, %d resumed mid-body, %d throttled\n",
				st.Requests, st.Retries, st.Resumes, st.Throttled)
		}
		if err != nil {
			return nil, nil, err
		}
		return data, func() {}, nil
	}
	if useMmap {
		m, err := trace.OpenMapped(path)
		if err != nil {
			return nil, nil, err
		}
		return m.Bytes(), func() { m.Close() }, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgshard:", err)
	os.Exit(1)
}
