package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"paragraph/internal/core"
	"paragraph/internal/isa"
	"paragraph/internal/shard"
	"paragraph/internal/trace"
)

// synthTrace builds a deterministic mixed-instruction trace with small
// chunks, so a few thousand events split cleanly into multiple shards.
func synthTrace(t *testing.T, n int, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriterOpts(&buf, trace.WriterOptions{ChunkBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pc := uint32(0x400000)
	for i := 0; i < n; i++ {
		var e trace.Event
		switch rng.Intn(4) {
		case 0:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.ADDI, Rt: isa.T0, Rs: isa.T1, Imm: int32(rng.Intn(32))}}
		case 1:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.LW, Rt: isa.T2, Rs: isa.GP},
				MemAddr: 0x10000000 + uint32(rng.Intn(1<<10))*4, MemSize: 4, Seg: trace.SegData}
		case 2:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.SW, Rt: isa.T0, Rs: isa.GP},
				MemAddr: 0x10000000 + uint32(rng.Intn(1<<10))*4, MemSize: 4, Seg: trace.SegData}
		default:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.BNE, Rs: isa.T0, Rt: isa.Zero, Imm: -8},
				Taken: rng.Intn(2) == 0}
		}
		if err := w.Event(&e); err != nil {
			t.Fatal(err)
		}
		pc += 4
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// writeShardResults runs the full split/analyze pipeline over a synthetic
// trace and writes one valid result file per shard into dir, exactly as
// `pgshard analyze` invocations would.
func writeShardResults(t *testing.T, dir string, shards int) ([]string, []byte, core.Config) {
	t.Helper()
	data := synthTrace(t, 4000, 3)
	cfg := core.Config{RenameRegisters: true, RenameStack: true, RenameData: true}
	plan, err := shard.Split(data, shards, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var prev *core.Checkpoint
	var files []string
	for i, sh := range plan.Shards {
		buf, err := shard.DecodeShard(ctx, data, sh, false)
		if err != nil {
			t.Fatalf("shard %d: decode: %v", i, err)
		}
		var a *core.Analyzer
		if prev == nil {
			a = core.NewAnalyzer(cfg)
		} else {
			a = prev.Restore()
		}
		res, cp, err := shard.RunShard(ctx, a, buf, cfg, sh, len(plan.Shards), i < len(plan.Shards)-1)
		if err != nil {
			t.Fatalf("shard %d: run: %v", i, err)
		}
		f := filepath.Join(dir, fmt.Sprintf("shard-%d.pgsr", i))
		if err := shard.SaveResult(f, res, cp); err != nil {
			t.Fatalf("shard %d: save: %v", i, err)
		}
		prev = cp
		files = append(files, f)
	}
	return files, data, cfg
}

func TestLoadPartsMergeMatchesMonolithic(t *testing.T) {
	dir := t.TempDir()
	files, data, cfg := writeShardResults(t, dir, 3)
	parts, err := loadParts(files)
	if err != nil {
		t.Fatalf("loadParts: %v", err)
	}
	merged, _, err := shard.Merge(parts)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	want, _, err := shard.Analyze(context.Background(), data, cfg, 1, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, want) {
		t.Errorf("merged result differs from monolithic run:\n got %+v\nwant %+v", merged, want)
	}
}

// writeShardDeltas runs the speculative pipeline over the same synthetic
// trace: every shard compiled with no predecessor, one delta file each,
// exactly as concurrent `pgshard analyze -speculate` invocations would.
func writeShardDeltas(t *testing.T, dir string, shards int) ([]string, []byte, core.Config) {
	t.Helper()
	data := synthTrace(t, 4000, 3)
	cfg := core.Config{RenameRegisters: true, RenameStack: true, RenameData: true}
	plan, err := shard.Split(data, shards, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var files []string
	for i, sh := range plan.Shards {
		buf, err := shard.DecodeShard(ctx, data, sh, false)
		if err != nil {
			t.Fatalf("shard %d: decode: %v", i, err)
		}
		d, err := shard.BuildShardDelta(ctx, buf, cfg, sh)
		if err != nil {
			t.Fatalf("shard %d: build: %v", i, err)
		}
		f := filepath.Join(dir, fmt.Sprintf("shard-%d.pgsd", i))
		err = shard.SaveDelta(f, &shard.Delta{
			Index: sh.Index, Shards: len(plan.Shards),
			Config: cfg, ReadStats: buf.Stats(), D: d,
		})
		if err != nil {
			t.Fatalf("shard %d: save: %v", i, err)
		}
		files = append(files, f)
	}
	return files, data, cfg
}

// TestLoadDeltasSpliceMatchesChainedMerge: the speculative file workflow
// ends in the same merged Result — and the same per-shard Results, so the
// merge report is byte-identical — as the chained workflow over the same
// trace and config.
func TestLoadDeltasSpliceMatchesChainedMerge(t *testing.T) {
	dir := t.TempDir()
	resultFiles, data, cfg := writeShardResults(t, dir, 3)
	deltaFiles, _, _ := writeShardDeltas(t, dir, 3)

	chainedParts, err := loadParts(resultFiles)
	if err != nil {
		t.Fatalf("loadParts: %v", err)
	}
	chainedRes, chainedRS, err := shard.Merge(chainedParts)
	if err != nil {
		t.Fatal(err)
	}

	deltas, ok, err := loadDeltas(deltaFiles)
	if err != nil {
		t.Fatalf("loadDeltas: %v", err)
	}
	if !ok {
		t.Fatal("loadDeltas did not recognize delta files")
	}
	specParts, specRes, specRS, err := shard.Splice(deltas)
	if err != nil {
		t.Fatalf("Splice: %v", err)
	}
	if !reflect.DeepEqual(specRes, chainedRes) {
		t.Error("spliced merge differs from chained merge")
	}
	if specRS != chainedRS {
		t.Errorf("ReadStats: spliced %+v, chained %+v", specRS, chainedRS)
	}
	var chainedOut, specOut bytes.Buffer
	if err := shard.RenderMerge(&chainedOut, chainedRes, chainedRS, chainedParts); err != nil {
		t.Fatal(err)
	}
	if err := shard.RenderMerge(&specOut, specRes, specRS, specParts); err != nil {
		t.Fatal(err)
	}
	if specOut.String() != chainedOut.String() {
		t.Errorf("merge reports differ:\n--- chained ---\n%s--- speculative ---\n%s", chainedOut.String(), specOut.String())
	}

	want, _, err := shard.Analyze(context.Background(), data, cfg, 1, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(specRes, want) {
		t.Error("spliced merge differs from monolithic run")
	}
}

// TestLoadDeltasRejectsMixedFiles: handing merge a delta chain with a
// result file mixed in fails with an error naming the odd file.
func TestLoadDeltasRejectsMixedFiles(t *testing.T) {
	dir := t.TempDir()
	resultFiles, _, _ := writeShardResults(t, dir, 2)
	deltaFiles, _, _ := writeShardDeltas(t, dir, 2)

	mixed := []string{deltaFiles[0], resultFiles[1]}
	if _, _, err := loadDeltas(mixed); err == nil {
		t.Fatal("loadDeltas accepted a delta chain with a result file mixed in")
	} else if !strings.Contains(err.Error(), resultFiles[1]) {
		t.Errorf("error %q does not name the odd file %s", err, resultFiles[1])
	}

	// Result file first: not a delta chain; the sniff defers to loadParts,
	// which then rejects the delta file by magic.
	if _, ok, err := loadDeltas([]string{resultFiles[0], deltaFiles[1]}); ok || err != nil {
		t.Fatalf("result-first sniff: ok=%v err=%v, want a clean decline", ok, err)
	}
	if _, err := loadParts([]string{resultFiles[0], deltaFiles[1]}); err == nil {
		t.Fatal("loadParts accepted a result chain with a delta file mixed in")
	}
}

func TestLoadPartsMissingFile(t *testing.T) {
	dir := t.TempDir()
	files, _, _ := writeShardResults(t, dir, 2)
	bad := filepath.Join(dir, "shard-9.pgsr")
	files[1] = bad
	parts, err := loadParts(files)
	if err == nil {
		t.Fatal("loadParts accepted a missing shard file")
	}
	if !strings.Contains(err.Error(), bad) {
		t.Errorf("error %q does not name the missing file %s", err, bad)
	}
	if parts != nil {
		t.Error("loadParts returned partial results alongside an error")
	}
}

func TestLoadPartsTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	files, _, _ := writeShardResults(t, dir, 2)
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	parts, err := loadParts(files)
	if err == nil {
		t.Fatal("loadParts accepted a truncated shard file")
	}
	if !strings.Contains(err.Error(), files[0]) {
		t.Errorf("error %q does not name the truncated file %s", err, files[0])
	}
	if parts != nil {
		t.Error("loadParts returned partial results alongside an error")
	}
}

func TestLoadPartsVersionSkew(t *testing.T) {
	dir := t.TempDir()
	files, _, _ := writeShardResults(t, dir, 2)
	skewed := filepath.Join(dir, "old-format.pgsr")
	if err := os.WriteFile(skewed, []byte("pgshard-result-v0\nnot-our-gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	files[0] = skewed
	parts, err := loadParts(files)
	if err == nil {
		t.Fatal("loadParts accepted a version-skewed shard file")
	}
	if !strings.Contains(err.Error(), skewed) {
		t.Errorf("error %q does not name the skewed file %s", err, skewed)
	}
	if !strings.Contains(err.Error(), "magic") {
		t.Errorf("error %q does not explain the format mismatch", err)
	}
	if parts != nil {
		t.Error("loadParts returned partial results alongside an error")
	}
}
