// Command tracegen produces serial execution traces in the reproduction's
// binary format — the role Pixie played for the paper. Traces come from a
// built-in SPEC-analogue workload, a MiniC source file, or an assembly file.
//
// Usage:
//
//	tracegen -workload matrixx -o matrixx.pgt
//	tracegen -src prog.mc -max 1000000 -o prog.pgt
//	tracegen -asm prog.s -o prog.pgt
//
//	-workload name   one of the ten analogues (or its SPEC original's name)
//	-src file        MiniC source to compile and trace
//	-asm file        assembly source to assemble and trace
//	-scale N         workload scale factor (default 1)
//	-unroll N        compiler loop-unrolling factor
//	-max N           stop tracing after N instructions (0 = unlimited)
//	-o file          output trace file (default: stdout must be redirected)
//	-list            list available workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"paragraph/internal/asm"
	"paragraph/internal/cpu"
	"paragraph/internal/minic"
	"paragraph/internal/trace"
	"paragraph/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "built-in workload to trace")
		srcFile  = flag.String("src", "", "MiniC source file to trace")
		asmFile  = flag.String("asm", "", "assembly source file to trace")
		scale    = flag.Int("scale", 1, "workload scale factor")
		unroll   = flag.Int("unroll", 0, "compiler loop-unrolling factor")
		maxInst  = flag.Uint64("max", 0, "instruction budget (0 = unlimited)")
		outFile  = flag.String("o", "", "output trace file")
		list     = flag.Bool("list", false, "list available workloads")
		format   = flag.Int("format", 2, "trace format version: 2 (chunked, checksummed) or 1 (legacy stream)")
		chunk    = flag.Int("chunk", 0, "v2 chunk payload size in bytes (0 = default)")
	)
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-10s models %-10s %-8s %s\n", w.Name, w.Original, w.BenchType, w.Description)
		}
		return
	}

	prog, err := buildProgram(*workload, *srcFile, *asmFile, *scale, *unroll)
	if err != nil {
		fatal(err)
	}

	out := os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	tw, err := trace.NewWriterOpts(out, trace.WriterOptions{Version: *format, ChunkBytes: *chunk})
	if err != nil {
		fatal(err)
	}
	machine, err := cpu.New(prog, cpu.WithTrace(tw), cpu.WithStdout(os.Stderr))
	if err != nil {
		fatal(err)
	}
	if _, err := machine.Run(*maxInst); err != nil && err != cpu.ErrLimit {
		fatal(err)
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d events\n", tw.Count())
}

func buildProgram(workload, srcFile, asmFile string, scale, unroll int) (*asm.Program, error) {
	opts := minic.Options{Unroll: unroll}
	switch {
	case workload != "":
		w, ok := workloads.ByName(workload)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q (try -list)", workload)
		}
		return w.Build(scale, opts)
	case srcFile != "":
		src, err := os.ReadFile(srcFile)
		if err != nil {
			return nil, err
		}
		return minic.Build(string(src), opts)
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, err
		}
		return asm.Assemble(string(src))
	}
	return nil, fmt.Errorf("one of -workload, -src or -asm is required")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
