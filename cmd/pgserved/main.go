// Command pgserved is the paragraph analysis daemon: an HTTP/JSON service
// that registers traces (local paths or remote URLs), queues sharded
// analysis jobs, and runs them on a supervised worker pool with per-shard
// retry, panic containment and crash-safe persistence. Kill it at any
// instant and a restart over the same state directory resumes every
// in-flight job from its last completed shard.
//
// Endpoints:
//
//	POST /v1/traces             register a trace {"location": <path or URL>}
//	GET  /v1/traces             list registered traces
//	GET  /v1/traces/{id}/data   trace bytes (Range-capable; fleet workers fetch here)
//	POST /v1/jobs               submit {"trace": id, "config": {...}, "shards": n, "priority": p}
//	GET  /v1/jobs               list jobs
//	GET  /v1/jobs/{id}          job status with per-shard progress and retry stats
//	GET  /v1/jobs/{id}/result   merged result (JSON summary, ?format=gob for exact)
//	GET  /v1/jobs/{id}/events   server-sent event stream of status transitions
//	POST /v1/leases             fleet worker: acquire a shard lease
//	POST /v1/leases/{id}/renew  fleet worker: heartbeat
//	POST /v1/leases/{id}/complete, /fail
//	GET  /healthz, /readyz      liveness; readiness goes false while draining
//
// Fleet mode: `pgserved -join http://coordinator:8321 -worker-name w1`
// runs no HTTP server and no state directory — just a worker loop that
// leases shard attempts from the coordinator, heartbeats them while
// running, and uploads results. A worker killed at any instant loses only
// its lease; the coordinator expires it and retries the shard elsewhere.
//
// SIGINT/SIGTERM drains cleanly: a coordinator stops at the next shard
// boundary with state persisted and re-queues leased shards; a worker
// fails its in-flight lease fast and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paragraph/internal/serve"
)

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:8321", "listen address")
		stateDir       = flag.String("state", "", "state directory (required; created if missing)")
		workers        = flag.Int("workers", 2, "concurrent analysis jobs")
		localExecutors = flag.Int("local-executors", 0, "concurrent in-process shard attempts (0 = workers, -1 = fleet-only)")
		maxQueued      = flag.Int("max-queued", 0, "job admission queue cap (0 = 1024); overflow answers 429")
		shardAttempts  = flag.Int("shard-attempts", 3, "per-shard retry budget")
		shardTimeout   = flag.Duration("shard-timeout", 0, "deadline per shard attempt (0 = none)")
		leaseTTL       = flag.Duration("lease-ttl", 10*time.Second, "fleet lease expiry without a heartbeat")
		retryBase      = flag.Duration("retry-base", 50*time.Millisecond, "supervisor backoff base")
		seed           = flag.Int64("seed", 0, "backoff jitter seed")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "max wait for running shards on shutdown")

		join       = flag.String("join", "", "run as a fleet worker against this coordinator URL")
		workerName = flag.String("worker-name", "", "fleet worker name (default: host:pid)")
		heartbeat  = flag.Duration("heartbeat", 0, "fleet lease renewal interval (0 = TTL/3 from each lease)")
		poll       = flag.Duration("poll", 250*time.Millisecond, "fleet worker backoff after errors or empty answers")
		longPoll   = flag.Duration("long-poll", 0, "fleet acquire long-poll duration (0 = 25s; coordinator caps at 30s)")
	)
	flag.Parse()

	if *join != "" {
		runWorker(*join, *workerName, *heartbeat, *poll, *longPoll, *seed)
		return
	}

	if *stateDir == "" {
		fmt.Fprintln(os.Stderr, "pgserved: -state is required")
		flag.Usage()
		os.Exit(2)
	}

	srv, err := serve.New(serve.Options{
		StateDir:       *stateDir,
		Workers:        *workers,
		LocalExecutors: *localExecutors,
		MaxQueued:      *maxQueued,
		ShardAttempts:  *shardAttempts,
		ShardTimeout:   *shardTimeout,
		LeaseTTL:       *leaseTTL,
		RetryBase:      *retryBase,
		Seed:           *seed,
	})
	if err != nil {
		log.Fatalf("pgserved: %v", err)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("pgserved: serving on %s (state %s)", *addr, *stateDir)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("pgserved: %v", err)
	case <-ctx.Done():
	}

	log.Printf("pgserved: draining (up to %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("pgserved: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("pgserved: http shutdown: %v", err)
	}
	log.Printf("pgserved: stopped")
}

// runWorker is fleet mode: one lease-at-a-time worker loop until SIGINT
// or SIGTERM. The in-flight lease, if any, is failed fast on the way out
// so the coordinator re-offers the shard without waiting for expiry.
func runWorker(coordinator, name string, heartbeat, poll, longPoll time.Duration, seed int64) {
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	w, err := serve.NewWorker(serve.WorkerOptions{
		Coordinator: coordinator,
		Name:        name,
		Heartbeat:   heartbeat,
		Poll:        poll,
		LongPoll:    longPoll,
		Seed:        seed,
	})
	if err != nil {
		log.Fatalf("pgserved: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("pgserved: worker %s joining %s", name, coordinator)
	w.Run(ctx)
	st := w.Stats()
	log.Printf("pgserved: worker %s leaving (leases: %d acquired, %d completed, %d failed, %d lost)",
		name, st.Acquired, st.Completed, st.Failed, st.Lost)
}
