// Command pgserved is the paragraph analysis daemon: an HTTP/JSON service
// that registers traces (local paths or remote URLs), queues sharded
// analysis jobs, and runs them on a supervised worker pool with per-shard
// retry, panic containment and crash-safe persistence. Kill it at any
// instant and a restart over the same state directory resumes every
// in-flight job from its last completed shard.
//
// Endpoints:
//
//	POST /v1/traces            register a trace {"location": <path or URL>}
//	GET  /v1/traces            list registered traces
//	POST /v1/jobs              submit {"trace": id, "config": {...}, "shards": n}
//	GET  /v1/jobs              list jobs
//	GET  /v1/jobs/{id}         job status with per-shard progress and retry stats
//	GET  /v1/jobs/{id}/result  merged result (JSON summary, ?format=gob for exact)
//	GET  /healthz, /readyz     liveness; readiness goes false while draining
//
// SIGINT/SIGTERM drains cleanly: running jobs stop at the next shard
// boundary with their state persisted, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paragraph/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8321", "listen address")
		stateDir      = flag.String("state", "", "state directory (required; created if missing)")
		workers       = flag.Int("workers", 2, "concurrent analysis jobs")
		shardAttempts = flag.Int("shard-attempts", 3, "per-shard retry budget")
		shardTimeout  = flag.Duration("shard-timeout", 0, "deadline per shard attempt (0 = none)")
		retryBase     = flag.Duration("retry-base", 50*time.Millisecond, "supervisor backoff base")
		seed          = flag.Int64("seed", 0, "backoff jitter seed")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "max wait for running shards on shutdown")
	)
	flag.Parse()
	if *stateDir == "" {
		fmt.Fprintln(os.Stderr, "pgserved: -state is required")
		flag.Usage()
		os.Exit(2)
	}

	srv, err := serve.New(serve.Options{
		StateDir:      *stateDir,
		Workers:       *workers,
		ShardAttempts: *shardAttempts,
		ShardTimeout:  *shardTimeout,
		RetryBase:     *retryBase,
		Seed:          *seed,
	})
	if err != nil {
		log.Fatalf("pgserved: %v", err)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("pgserved: serving on %s (state %s)", *addr, *stateDir)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("pgserved: %v", err)
	case <-ctx.Done():
	}

	log.Printf("pgserved: draining (up to %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("pgserved: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("pgserved: http shutdown: %v", err)
	}
	log.Printf("pgserved: stopped")
}
