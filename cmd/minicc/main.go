// Command minicc compiles MiniC programs to assembly for the reproduction's
// MIPS-like ISA, and optionally assembles and runs them on the simulator.
//
// Usage:
//
//	minicc [flags] file.mc
//
//	-S            print generated assembly to stdout (or -o file)
//	-o file       write assembly to file
//	-run          compile, assemble and execute the program
//	-max N        instruction budget when running (0 = unlimited)
//	-unroll N     unroll eligible innermost loops by factor N
//	-no-fold      disable constant folding
//	-stats        after -run, print instruction counts by class
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"paragraph/internal/asm"
	"paragraph/internal/cpu"
	"paragraph/internal/isa"
	"paragraph/internal/minic"
)

func main() {
	var (
		emitAsm = flag.Bool("S", false, "print generated assembly")
		outFile = flag.String("o", "", "write assembly to file")
		run     = flag.Bool("run", false, "assemble and execute the program")
		maxInst = flag.Uint64("max", 0, "instruction budget when running (0 = unlimited)")
		unroll  = flag.Int("unroll", 0, "unroll eligible innermost loops by this factor")
		noFold  = flag.Bool("no-fold", false, "disable constant folding")
		stats   = flag.Bool("stats", false, "print per-class instruction counts after -run")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [flags] file.mc")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	opts := minic.Options{Unroll: *unroll, NoFold: *noFold}
	asmText, err := minic.Compile(string(src), opts)
	if err != nil {
		fatal(err)
	}
	if *outFile != "" {
		if err := os.WriteFile(*outFile, []byte(asmText), 0o644); err != nil {
			fatal(err)
		}
	} else if *emitAsm || !*run {
		fmt.Print(asmText)
	}
	if !*run {
		return
	}
	prog, err := asm.Assemble(asmText)
	if err != nil {
		fatal(fmt.Errorf("internal error assembling generated code: %w", err))
	}
	machine, err := cpu.New(prog, cpu.WithStdout(os.Stdout), cpu.WithStdin(os.Stdin))
	if err != nil {
		fatal(err)
	}
	n, err := machine.Run(*maxInst)
	if err != nil && err != cpu.ErrLimit {
		fatal(err)
	}
	if err == cpu.ErrLimit {
		fmt.Fprintf(os.Stderr, "minicc: stopped after %d instructions (budget)\n", n)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "instructions: %d\n", machine.ICount())
		counts := machine.ClassCounts()
		classes := make([]isa.OpClass, 0, len(counts))
		for c := range counts {
			classes = append(classes, c)
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
		for _, c := range classes {
			fmt.Fprintf(os.Stderr, "  %-8s %12d\n", c, counts[c])
		}
	}
	_, code := machine.Exited()
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicc:", err)
	os.Exit(1)
}
