// Command pgdis disassembles assembled programs — the reproduction's
// objdump. It compiles/assembles its input, prints a symbol-annotated
// listing of the text segment, and can annotate each basic block with its
// execution count from a profiled run (the Pixie-style view of the code).
//
// Usage:
//
//	pgdis -src prog.mc             # MiniC: compile, then disassemble
//	pgdis -asm prog.s              # assembly: assemble, then disassemble
//	pgdis -workload matrixx        # a built-in workload
//	pgdis -src prog.mc -profile    # run it; annotate basic-block counts
//	pgdis -src prog.mc -data       # also dump the data segment
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"paragraph/internal/asm"
	"paragraph/internal/cpu"
	"paragraph/internal/isa"
	"paragraph/internal/minic"
	"paragraph/internal/stats"
	"paragraph/internal/workloads"
)

func main() {
	var (
		srcFile  = flag.String("src", "", "MiniC source file")
		asmFile  = flag.String("asm", "", "assembly source file")
		workload = flag.String("workload", "", "built-in workload")
		scale    = flag.Int("scale", 1, "workload scale factor")
		unroll   = flag.Int("unroll", 0, "compiler loop-unrolling factor")
		profile  = flag.Bool("profile", false, "execute and annotate basic-block counts")
		maxInst  = flag.Uint64("max", 0, "instruction budget when profiling")
		dumpData = flag.Bool("data", false, "also hex-dump the data segment")
	)
	flag.Parse()

	prog, err := build(*workload, *srcFile, *asmFile, *scale, *unroll)
	if err != nil {
		fatal(err)
	}

	var prof *cpu.BBProfile
	if *profile {
		machine, err := cpu.New(prog, cpu.WithStdout(os.Stderr), cpu.WithBBProfile())
		if err != nil {
			fatal(err)
		}
		if _, err := machine.Run(*maxInst); err != nil && err != cpu.ErrLimit {
			fatal(err)
		}
		prof = machine.BBProfile()
		fmt.Printf("# profiled %s instructions over %d basic blocks\n\n",
			stats.FormatInt(int64(machine.ICount())), prof.NumBlocks())
	}

	// Reverse symbol table: address -> labels.
	labels := make(map[uint32][]string)
	for name, addr := range prog.Symbols {
		labels[addr] = append(labels[addr], name)
	}
	for _, ls := range labels {
		sort.Strings(ls)
	}

	fmt.Printf("# text: %d instructions at %#x; data: %d bytes at %#x; entry %s\n\n",
		len(prog.Text), asm.TextBase, len(prog.Data), asm.DataBase, labelOrAddr(labels, prog.Entry))

	for i, word := range prog.Text {
		pc := asm.TextBase + uint32(4*i)
		for _, l := range labels[pc] {
			fmt.Printf("%s:\n", l)
		}
		ins, err := isa.Decode(word)
		if err != nil {
			fmt.Printf("  %08x:  %08x  <undecodable: %v>\n", pc, word, err)
			continue
		}
		text := isa.Disassemble(&ins)
		// Symbolize control-transfer targets.
		info := ins.Op.Info()
		switch {
		case info.IsBranch:
			target := pc + 4 + uint32(ins.Imm)*4
			text = fmt.Sprintf("%s  <%s>", text, labelOrAddr(labels, target))
		case ins.Op == isa.J || ins.Op == isa.JAL:
			text = fmt.Sprintf("%s  <%s>", text, labelOrAddr(labels, ins.Target<<2))
		}
		if prof != nil {
			if n := prof.Count(pc); n > 0 {
				fmt.Printf("  %08x:  %08x  %-44s ; %sx\n", pc, word, text, stats.FormatInt(int64(n)))
				continue
			}
		}
		fmt.Printf("  %08x:  %08x  %s\n", pc, word, text)
	}

	if prof != nil {
		fmt.Printf("\n# hottest basic blocks\n")
		for _, h := range prof.Hot(10) {
			if h.Count == 0 {
				break
			}
			fmt.Printf("  %08x  %-24s %12s\n", h.PC, labelOrAddr(labels, h.PC), stats.FormatInt(int64(h.Count)))
		}
	}

	if *dumpData {
		fmt.Printf("\n# data segment (%d bytes)\n", len(prog.Data))
		for off := 0; off < len(prog.Data); off += 16 {
			end := off + 16
			if end > len(prog.Data) {
				end = len(prog.Data)
			}
			addr := asm.DataBase + uint32(off)
			if ls, ok := labels[addr]; ok {
				fmt.Printf("%s:\n", ls[0])
			}
			fmt.Printf("  %08x: ", addr)
			for _, b := range prog.Data[off:end] {
				fmt.Printf("%02x ", b)
			}
			fmt.Println()
		}
	}
}

func labelOrAddr(labels map[uint32][]string, addr uint32) string {
	if ls, ok := labels[addr]; ok {
		return ls[0]
	}
	return fmt.Sprintf("%#x", addr)
}

func build(workload, srcFile, asmFile string, scale, unroll int) (*asm.Program, error) {
	opts := minic.Options{Unroll: unroll}
	switch {
	case workload != "":
		w, ok := workloads.ByName(workload)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", workload)
		}
		return w.Build(scale, opts)
	case srcFile != "":
		src, err := os.ReadFile(srcFile)
		if err != nil {
			return nil, err
		}
		return minic.Build(string(src), opts)
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, err
		}
		return asm.Assemble(string(src))
	}
	return nil, fmt.Errorf("one of -src, -asm or -workload is required")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgdis:", err)
	os.Exit(1)
}
