package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runSpecrun invokes the CLI entry point with captured output.
func runSpecrun(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCodeSuccess(t *testing.T) {
	code, stdout, stderr := runSpecrun(t, "-table2", "-workloads", "xlispx", "-max", "100000")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "xlispx") {
		t.Errorf("table output missing the workload row:\n%s", stdout)
	}
}

// TestKeepGoingExitCode is the regression test for the silent-success bug
// class: -keep-going renders partial tables but the process must still exit
// non-zero when any row failed.
func TestKeepGoingExitCode(t *testing.T) {
	code, stdout, stderr := runSpecrun(t,
		"-table3", "-workloads", "xlispx", "-keep-going", "-timeout", "1ns")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 for a keep-going run with failures\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "FAILED") {
		t.Errorf("table does not mark the failed row:\n%s", stdout)
	}
	if !strings.Contains(stderr, "some workloads failed") {
		t.Errorf("stderr does not summarize the failure:\n%s", stderr)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runSpecrun(t); code != 2 {
		t.Errorf("no experiments selected: exit code %d, want 2", code)
	}
	if code, _, _ := runSpecrun(t, "-bogus-flag"); code != 2 {
		t.Errorf("unknown flag: exit code %d, want 2", code)
	}
	if code, _, stderr := runSpecrun(t, "-table2", "-workloads", "nonesuch"); code != 1 ||
		!strings.Contains(stderr, "nonesuch") {
		t.Errorf("unknown workload: exit code %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runSpecrun(t, "-table2", "-resume"); code != 1 ||
		!strings.Contains(stderr, "-autosave") {
		t.Errorf("-resume without -autosave: exit code %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runSpecrun(t, "-table2", "-workloads", "xlispx", "-mem-budget", "lots"); code != 1 ||
		!strings.Contains(stderr, "bad size") {
		t.Errorf("bad -mem-budget: exit code %d, stderr %q", code, stderr)
	}
}

// TestAutosaveResumeByteIdentical is the crash-recovery acceptance test at
// the CLI level: a run resumed from a partial autosave store must emit
// byte-identical tables to the uninterrupted run.
func TestAutosaveResumeByteIdentical(t *testing.T) {
	store := filepath.Join(t.TempDir(), "rows.json")
	args := []string{"-table3", "-workloads", "xlispx,matrixx", "-max", "150000", "-autosave", store}

	code, want, stderr := runSpecrun(t, args...)
	if code != 0 {
		t.Fatalf("full run failed (%d):\n%s", code, stderr)
	}

	// Simulate a run that died after finishing only xlispx: tombstone the
	// other workload's row through the store's own log operations.
	st, err := openStore(store, true)
	if err != nil {
		t.Fatal(err)
	}
	if !st.has("table3/xlispx") {
		t.Fatal("store is missing the xlispx row")
	}
	if err := st.drop("table3/matrixx"); err != nil {
		t.Fatal(err)
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}

	code, got, stderr := runSpecrun(t, append(args, "-resume")...)
	if code != 0 {
		t.Fatalf("resumed run failed (%d):\n%s", code, stderr)
	}
	if got != want {
		t.Errorf("resumed output differs from the uninterrupted run\ngot:\n%s\nwant:\n%s", got, want)
	}

	// A second resume finds every row cached and recomputes nothing, but
	// the rendered tables are still identical.
	code, again, stderr := runSpecrun(t, append(args, "-resume")...)
	if code != 0 {
		t.Fatalf("fully-cached run failed (%d):\n%s", code, stderr)
	}
	if again != want {
		t.Errorf("fully-cached output differs from the uninterrupted run\ngot:\n%s\nwant:\n%s", again, want)
	}
}

// TestAutosaveSkipsFailedRows: rows that failed are not persisted, so a
// resume retries them instead of replaying the failure forever.
func TestAutosaveSkipsFailedRows(t *testing.T) {
	store := filepath.Join(t.TempDir(), "rows.json")
	code, _, _ := runSpecrun(t,
		"-table3", "-workloads", "xlispx", "-keep-going", "-timeout", "1ns", "-autosave", store)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if _, err := os.Stat(store); err == nil {
		st, err := openStore(store, true)
		if err != nil {
			t.Fatalf("store does not reopen cleanly: %v", err)
		}
		if st.has("table3/xlispx") {
			t.Error("failed row was persisted")
		}
		st.close()
	}

	// Retried without the absurd timeout, the resumed run succeeds.
	code, stdout, stderr := runSpecrun(t,
		"-table3", "-workloads", "xlispx", "-max", "150000", "-autosave", store, "-resume")
	if code != 0 {
		t.Fatalf("retry failed (%d):\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "xlispx") {
		t.Errorf("retried table missing the workload row:\n%s", stdout)
	}
}
