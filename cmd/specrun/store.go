package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"paragraph/internal/harness"
	"paragraph/internal/workloads"
)

// store is specrun's autosave row store: a map of "experiment/workload"
// keys to finished result rows, persisted as an append-only record log.
// Each put appends one CRC-framed record and fsyncs — O(row) per save
// instead of the old whole-file JSON rewrite, whose O(rows²) tail
// dominated big sweeps. A kill at any instant costs at most the torn
// record at the tail: recovery keeps every fully-framed record before it.
// Workloads are deterministic, so a resumed run that splices cached rows
// into fresh ones produces output identical to an uninterrupted run.
//
// On-disk format:
//
//	magic "specrunlog1\n"
//	record := kind(1B: 1=put 2=delete)
//	          uvarint(len(key)) key
//	          uvarint(len(value)) value       (empty for deletes)
//	          uint32le CRC-32/IEEE of the record bytes before it
//
// Later records win: a re-put supersedes, a delete tombstones. Opening
// with -resume replays the log and, when it holds tombstones, superseded
// rows, or a damaged tail, compacts it — one put record per live key,
// sorted, written through a temp-file+rename. A legacy whole-file JSON
// store is detected and migrated to the log format transparently.
//
// put may be called concurrently (the suite's OnRow hook fires from
// workload goroutines); the store serializes appends internally.
type store struct {
	path string

	mu      sync.Mutex
	rows    map[string]json.RawMessage
	f       *os.File
	appends int64 // records appended since open (write-amplification tests)
}

const storeMagic = "specrunlog1\n"

const (
	recPut byte = 1
	recDel byte = 2
)

// Framing sanity caps: a length prefix beyond these is corruption, not a
// record, so the scanner stops there instead of allocating absurdity.
const (
	maxKeyLen = 1 << 16
	maxValLen = 1 << 28
)

// appendRecord encodes one record into buf and returns the extended slice.
func appendRecord(buf []byte, kind byte, key string, val []byte) []byte {
	start := len(buf)
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(val)))
	buf = append(buf, val...)
	sum := crc32.ChecksumIEEE(buf[start:])
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// readRecord decodes the record at the head of b. ok is false on a torn or
// corrupt frame (short data, bad kind, oversized length, CRC mismatch); n
// is the record's encoded size when ok.
func readRecord(b []byte) (kind byte, key string, val []byte, n int, ok bool) {
	if len(b) < 1 {
		return 0, "", nil, 0, false
	}
	kind = b[0]
	if kind != recPut && kind != recDel {
		return 0, "", nil, 0, false
	}
	i := 1
	klen, m := binary.Uvarint(b[i:])
	if m <= 0 || klen > maxKeyLen {
		return 0, "", nil, 0, false
	}
	i += m
	if uint64(len(b)-i) < klen {
		return 0, "", nil, 0, false
	}
	key = string(b[i : i+int(klen)])
	i += int(klen)
	vlen, m := binary.Uvarint(b[i:])
	if m <= 0 || vlen > maxValLen {
		return 0, "", nil, 0, false
	}
	i += m
	if uint64(len(b)-i) < vlen+4 {
		return 0, "", nil, 0, false
	}
	val = b[i : i+int(vlen)]
	i += int(vlen)
	if crc32.ChecksumIEEE(b[:i]) != binary.LittleEndian.Uint32(b[i:]) {
		return 0, "", nil, 0, false
	}
	return kind, key, val, i + 4, true
}

// scanLog replays a log body (after the magic), returning the surviving
// table and whether the log needs compaction: a damaged tail, tombstones,
// or superseded records. Scanning stops at the first bad frame — every
// fully-framed record before it survives.
func scanLog(data []byte) (rows map[string]json.RawMessage, dirty bool) {
	rows = map[string]json.RawMessage{}
	records := 0
	off := 0
	for off < len(data) {
		kind, key, val, n, ok := readRecord(data[off:])
		if !ok {
			dirty = true // torn or corrupt tail: drop it at compaction
			break
		}
		off += n
		records++
		switch kind {
		case recPut:
			rows[key] = append(json.RawMessage(nil), val...)
		case recDel:
			delete(rows, key)
		}
	}
	if records != len(rows) {
		dirty = true // tombstones or superseded rows to reclaim
	}
	return rows, dirty
}

// openStore opens the autosave store at path. With resume, rows already on
// disk are loaded for reuse (compacting the log when it carries damage or
// dead records, and migrating a legacy JSON store); without it the store
// starts fresh, replacing whatever the file held.
func openStore(path string, resume bool) (*store, error) {
	st := &store{path: path, rows: map[string]json.RawMessage{}}
	if !resume {
		if err := st.rewrite(); err != nil {
			return nil, err
		}
		return st, nil
	}
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Nothing autosaved yet: resume degenerates to a fresh run.
		if err := st.rewrite(); err != nil {
			return nil, err
		}
		return st, nil
	case err != nil:
		return nil, err
	}
	switch {
	case bytes.HasPrefix(data, []byte(storeMagic)):
		rows, dirty := scanLog(data[len(storeMagic):])
		st.rows = rows
		if dirty {
			if err := st.rewrite(); err != nil {
				return nil, err
			}
			return st, nil
		}
		// Clean log: append in place.
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		st.f = f
		return st, nil
	case len(bytes.TrimSpace(data)) > 0 && bytes.TrimSpace(data)[0] == '{':
		// Legacy whole-file JSON store: migrate to the log format.
		if err := json.Unmarshal(data, &st.rows); err != nil {
			return nil, fmt.Errorf("corrupt autosave file %s (delete it to start over): %w", path, err)
		}
		if err := st.rewrite(); err != nil {
			return nil, err
		}
		return st, nil
	}
	return nil, fmt.Errorf("corrupt autosave file %s (delete it to start over): not a row-store log", path)
}

// rewrite compacts the store: the current table, one sorted put record per
// key, written to a temp file and renamed over path, then reopened for
// appending. Also the fresh-store initializer (empty table = bare magic).
func (st *store) rewrite() error {
	if st.f != nil {
		st.f.Close()
		st.f = nil
	}
	keys := make([]string, 0, len(st.rows))
	for k := range st.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	data := []byte(storeMagic)
	for _, k := range keys {
		data = appendRecord(data, recPut, k, st.rows[k])
	}
	dir := filepath.Dir(st.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(st.path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), st.path); err != nil {
		return err
	}
	f, err := os.OpenFile(st.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st.f = f
	return nil
}

// put records v under key and appends one durable record — constant work
// per row regardless of how many rows the store already holds.
func (st *store) put(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, err := st.f.Write(appendRecord(nil, recPut, key, raw)); err != nil {
		return err
	}
	if err := st.f.Sync(); err != nil {
		return err
	}
	st.appends++
	st.rows[key] = raw
	return nil
}

// drop tombstones key: the row stops resolving immediately and the next
// compacting open reclaims it.
func (st *store) drop(key string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.rows[key]; !ok {
		return nil
	}
	if _, err := st.f.Write(appendRecord(nil, recDel, key, nil)); err != nil {
		return err
	}
	if err := st.f.Sync(); err != nil {
		return err
	}
	st.appends++
	delete(st.rows, key)
	return nil
}

// len reports how many rows the store currently resolves.
func (st *store) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.rows)
}

// has reports whether key currently resolves.
func (st *store) has(key string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.rows[key]
	return ok
}

// close releases the append handle; the log itself is already durable.
func (st *store) close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.f.Close()
	st.f = nil
	return err
}

// getCached returns the row stored under key, if one round-trips cleanly.
func getCached[T any](st *store, key string) (T, bool) {
	var v T
	if st == nil {
		return v, false
	}
	st.mu.Lock()
	raw, ok := st.rows[key]
	st.mu.Unlock()
	if !ok {
		return v, false
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		return v, false
	}
	return v, true
}

// cachedRows runs a per-workload experiment through the autosave store:
// workloads whose rows were autosaved by an earlier run are spliced back in
// from the store, the rest run on a sub-suite with the suite's OnRow hook
// persisting each fresh row accepted by keep (i.e. complete, not a failure
// marker) the moment its workload finishes — a kill loses at most the rows
// still in flight, not the whole experiment. With no store configured it is
// exactly run(s).
//
// Experiment errors (including a keep-going run's *SuiteError) pass through
// with the partial rows, so failure rendering and exit codes are unchanged;
// failed rows are simply not persisted, and a -resume rerun retries them.
func cachedRows[T any](st *store, exp string, s *harness.Suite, run func(*harness.Suite) ([]T, error), keep func(T) bool) ([]T, error) {
	if st == nil {
		return run(s)
	}
	rows := make([]T, len(s.Workloads))
	var missing []int
	for i, w := range s.Workloads {
		if row, ok := getCached[T](st, exp+"/"+w.Name); ok {
			rows[i] = row
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return rows, nil
	}
	sub := *s
	sub.Workloads = make([]*workloads.Workload, len(missing))
	for j, i := range missing {
		sub.Workloads[j] = s.Workloads[i]
	}
	var saveMu sync.Mutex
	var saveErr error
	sub.OnRow = func(_ int, workload string, row any) {
		r, ok := row.(T)
		if !ok || !keep(r) {
			return
		}
		if perr := st.put(exp+"/"+workload, r); perr != nil {
			saveMu.Lock()
			if saveErr == nil {
				saveErr = perr
			}
			saveMu.Unlock()
		}
	}
	fresh, err := run(&sub)
	for j, i := range missing {
		if j < len(fresh) {
			rows[i] = fresh[j]
		}
	}
	// Safety net for drivers without row emission: persist anything
	// finished that the hook did not already save.
	for j, i := range missing {
		if j < len(fresh) && keep(fresh[j]) {
			key := exp + "/" + s.Workloads[i].Name
			if st.has(key) {
				continue
			}
			if perr := st.put(key, fresh[j]); perr != nil && err == nil {
				err = perr
			}
		}
	}
	if err == nil {
		err = saveErr
	}
	return rows, err
}
