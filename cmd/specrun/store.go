package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"paragraph/internal/harness"
	"paragraph/internal/workloads"
)

// store is specrun's autosave row store: one JSON object mapping
// "experiment/workload" keys to finished result rows. Every put rewrites the
// whole file through a temp-file+rename, so a kill at any instant leaves
// either the previous or the next complete store on disk, never a torn one.
// Workloads are deterministic, so a resumed run that splices cached rows into
// fresh ones produces output identical to an uninterrupted run.
//
// A store is used from one goroutine (experiments persist their rows after
// they return); it is not safe for concurrent use.
type store struct {
	path string
	rows map[string]json.RawMessage
}

// openStore opens the autosave store at path. With resume, rows already on
// disk are loaded for reuse; without it the store starts empty and the first
// put replaces whatever the file held.
func openStore(path string, resume bool) (*store, error) {
	st := &store{path: path, rows: map[string]json.RawMessage{}}
	if !resume {
		return st, nil
	}
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Nothing autosaved yet: resume degenerates to a fresh run.
	case err != nil:
		return nil, err
	default:
		if err := json.Unmarshal(data, &st.rows); err != nil {
			return nil, fmt.Errorf("corrupt autosave file %s (delete it to start over): %w", path, err)
		}
	}
	return st, nil
}

// put records v under key and persists the whole store atomically.
func (st *store) put(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	st.rows[key] = raw
	return st.flush()
}

func (st *store) flush() error {
	data, err := json.MarshalIndent(st.rows, "", "\t")
	if err != nil {
		return err
	}
	dir := filepath.Dir(st.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(st.path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), st.path)
}

// getCached returns the row stored under key, if one round-trips cleanly.
func getCached[T any](st *store, key string) (T, bool) {
	var v T
	if st == nil {
		return v, false
	}
	raw, ok := st.rows[key]
	if !ok {
		return v, false
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		return v, false
	}
	return v, true
}

// cachedRows runs a per-workload experiment through the autosave store:
// workloads whose rows were autosaved by an earlier run are spliced back in
// from the store, the rest run on a sub-suite, and every fresh row accepted
// by keep (i.e. complete, not a failure marker) is persisted as soon as the
// experiment returns. With no store configured it is exactly run(s).
//
// Experiment errors (including a keep-going run's *SuiteError) pass through
// with the partial rows, so failure rendering and exit codes are unchanged;
// failed rows are simply not persisted, and a -resume rerun retries them.
func cachedRows[T any](st *store, exp string, s *harness.Suite, run func(*harness.Suite) ([]T, error), keep func(T) bool) ([]T, error) {
	if st == nil {
		return run(s)
	}
	rows := make([]T, len(s.Workloads))
	var missing []int
	for i, w := range s.Workloads {
		if row, ok := getCached[T](st, exp+"/"+w.Name); ok {
			rows[i] = row
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return rows, nil
	}
	sub := *s
	sub.Workloads = make([]*workloads.Workload, len(missing))
	for j, i := range missing {
		sub.Workloads[j] = s.Workloads[i]
	}
	fresh, err := run(&sub)
	for j, i := range missing {
		if j < len(fresh) {
			rows[i] = fresh[j]
		}
	}
	for j, i := range missing {
		if j < len(fresh) && keep(fresh[j]) {
			if perr := st.put(exp+"/"+s.Workloads[i].Name, fresh[j]); perr != nil && err == nil {
				err = perr
			}
		}
	}
	return rows, err
}
