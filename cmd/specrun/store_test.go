package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

// storeAt opens a store under dir, failing the test on error.
func storeAt(t *testing.T, dir string, resume bool) *store {
	t.Helper()
	st, err := openStore(filepath.Join(dir, "rows.log"), resume)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreQuickRoundTrip: for arbitrary key→value tables applied as an
// arbitrary interleaving of puts and deletes, closing and reopening the log
// yields exactly the surviving table. testing/quick drives the shapes.
func TestStoreQuickRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n := 0
	check := func(keys []string, vals [][]byte, dels []bool) bool {
		n++
		path := filepath.Join(dir, "q", string(rune('a'+n%26))+"-rows.log")
		os.MkdirAll(filepath.Dir(path), 0o755)
		st, err := openStore(path, false)
		if err != nil {
			t.Logf("open: %v", err)
			return false
		}
		// Values go through JSON as []byte (base64), which round-trips
		// arbitrary bytes exactly; a string would lose invalid UTF-8.
		want := map[string][]byte{}
		for i, k := range keys {
			if k == "" || len(k) > maxKeyLen {
				continue
			}
			var v []byte
			if i < len(vals) {
				v = vals[i]
			}
			if err := st.put(k, v); err != nil {
				t.Logf("put: %v", err)
				return false
			}
			want[k] = v
			if i < len(dels) && dels[i] {
				if err := st.drop(k); err != nil {
					t.Logf("drop: %v", err)
					return false
				}
				delete(want, k)
			}
		}
		if err := st.close(); err != nil {
			t.Logf("close: %v", err)
			return false
		}
		re, err := openStore(path, true)
		if err != nil {
			t.Logf("reopen: %v", err)
			return false
		}
		defer re.close()
		got := map[string][]byte{}
		for k := range re.rows {
			v, ok := getCached[[]byte](re, k)
			if !ok {
				t.Logf("key %q does not round-trip", k)
				return false
			}
			got[k] = v
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestStoreWriteAmplification is the O(rows²) regression test: persisting N
// rows must cost exactly N appended records — not N whole-file rewrites of
// an ever-growing table, which is what the old JSON store did.
func TestStoreWriteAmplification(t *testing.T) {
	dir := t.TempDir()
	st := storeAt(t, dir, false)
	defer st.close()
	const rows = 200
	for i := 0; i < rows; i++ {
		if err := st.put(string(rune('a'+i%26))+"/"+string(rune('0'+i%10))+string(rune('A'+i/26)), i); err != nil {
			t.Fatal(err)
		}
	}
	if st.appends != rows {
		t.Errorf("persisting %d rows appended %d records, want exactly %d (constant work per row)",
			rows, st.appends, rows)
	}
	// And the bytes on disk grow linearly too: the log holds one framed
	// record per put, nothing resembling rows copies of the table.
	fi, err := os.Stat(st.path)
	if err != nil {
		t.Fatal(err)
	}
	perRow := (fi.Size() - int64(len(storeMagic))) / rows
	if perRow > 256 {
		t.Errorf("log grew %d bytes per row; whole-table rewrites are back", perRow)
	}
}

// TestStoreTailRecovery: a kill mid-append tears at most the final record.
// For every truncation point inside the last record, reopening recovers
// every fully-framed row before it and compacts the damage away.
func TestStoreTailRecovery(t *testing.T) {
	dir := t.TempDir()
	st := storeAt(t, dir, false)
	for _, k := range []string{"table2/a", "table2/b", "table2/c"} {
		if err := st.put(k, map[string]int{"v": len(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(st.path)
	if err != nil {
		t.Fatal(err)
	}
	// Find where the last record begins by re-scanning the first two.
	body := whole[len(storeMagic):]
	off := 0
	for i := 0; i < 2; i++ {
		_, _, _, n, ok := readRecord(body[off:])
		if !ok {
			t.Fatal("fixture log does not scan")
		}
		off += n
	}
	lastStart := len(storeMagic) + off
	for cut := lastStart + 1; cut < len(whole); cut++ {
		path := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := openStore(path, true)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if re.len() != 2 || !re.has("table2/a") || !re.has("table2/b") {
			t.Fatalf("cut at %d: recovered %d rows, want the 2 fully-framed ones", cut, re.len())
		}
		re.close()
		// The reopen compacted: the file now scans clean end to end.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if rows, dirty := scanLog(data[len(storeMagic):]); dirty || len(rows) != 2 {
			t.Fatalf("cut at %d: compacted log still dirty (%d rows)", cut, len(rows))
		}
	}
}

// TestStoreCorruptMiddle: a bit flipped in the middle of the log stops the
// scan there — everything before the flip survives, nothing after it is
// trusted (a CRC can't tell a torn record from a tampered one).
func TestStoreCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	st := storeAt(t, dir, false)
	for _, k := range []string{"x/a", "x/b", "x/c"} {
		if err := st.put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	st.close()
	data, err := os.ReadFile(st.path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's value region.
	body := data[len(storeMagic):]
	_, _, _, n0, _ := readRecord(body)
	data[len(storeMagic)+n0+8] ^= 0xff
	if err := os.WriteFile(st.path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := openStore(st.path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.close()
	if !re.has("x/a") {
		t.Error("row before the corruption was lost")
	}
	if re.has("x/b") || re.has("x/c") {
		t.Error("rows at/after the corruption were trusted")
	}
}

// TestStoreLegacyMigration: a pre-log whole-file JSON autosave opens with
// -resume, keeps its rows, and comes back as a log.
func TestStoreLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rows.json")
	legacy := map[string]json.RawMessage{
		"table3/xlispx": json.RawMessage(`{"ok":true}`),
		"table3/spicex": json.RawMessage(`{"ok":false}`),
	}
	blob, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := openStore(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer st.close()
	if st.len() != 2 || !st.has("table3/xlispx") || !st.has("table3/spicex") {
		t.Fatalf("migration lost rows: %d", st.len())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte(storeMagic)) {
		t.Error("legacy store was not rewritten to the log format")
	}
}

// TestStoreCompactionReclaims: superseding puts and tombstones bloat the
// log; a resume-open compacts it down to one record per live row.
func TestStoreCompactionReclaims(t *testing.T) {
	dir := t.TempDir()
	st := storeAt(t, dir, false)
	for i := 0; i < 50; i++ {
		if err := st.put("hot/row", i); err != nil { // 50 supersedes
			t.Fatal(err)
		}
	}
	if err := st.put("cold/row", "keep"); err != nil {
		t.Fatal(err)
	}
	if err := st.drop("hot/row"); err != nil {
		t.Fatal(err)
	}
	st.close()
	before, _ := os.Stat(st.path)
	re, err := openStore(st.path, true)
	if err != nil {
		t.Fatal(err)
	}
	re.close()
	after, err := os.Stat(st.path)
	if err != nil {
		t.Fatal(err)
	}
	if re.len() != 1 || !re.has("cold/row") {
		t.Fatalf("compaction changed the table: %d rows", re.len())
	}
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink the log: %d → %d bytes", before.Size(), after.Size())
	}
	// A clean log reopens without another rewrite (no churn on every open).
	again, err := openStore(st.path, true)
	if err != nil {
		t.Fatal(err)
	}
	again.close()
	final, _ := os.Stat(st.path)
	if final.Size() != after.Size() {
		t.Errorf("reopening a clean log rewrote it: %d → %d bytes", after.Size(), final.Size())
	}
}

// FuzzStoreRecovery: openStore(resume) must never crash, hang, or invent
// rows on arbitrary bytes — and for any mutation of a valid log, every row
// it does recover must be a fully-framed record the file actually contains.
func FuzzStoreRecovery(f *testing.F) {
	// Seed with a real log, its truncations, and classic junk.
	valid := appendRecord([]byte(storeMagic), recPut, "table2/a", []byte(`{"v":1}`))
	valid = appendRecord(valid, recPut, "table2/b", []byte(`{"v":2}`))
	valid = appendRecord(valid, recDel, "table2/a", nil)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte(storeMagic))
	f.Add([]byte(`{"table2/a": {"v": 1}}`))
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "rows.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		st, err := openStore(path, true)
		if err != nil {
			return // rejected input is fine; crashing is not
		}
		defer st.close()
		// Whatever was recovered, the store must stay usable: a put and a
		// clean reopen round-trip.
		if err := st.put("fuzz/probe", 7); err != nil {
			t.Fatalf("recovered store rejects puts: %v", err)
		}
		got := st.len()
		if err := st.close(); err != nil {
			t.Fatal(err)
		}
		re, err := openStore(path, true)
		if err != nil {
			t.Fatalf("recovered store does not reopen: %v", err)
		}
		defer re.close()
		if re.len() != got {
			t.Fatalf("rows changed across reopen: %d → %d", got, re.len())
		}
		if v, ok := getCached[int](re, "fuzz/probe"); !ok || v != 7 {
			t.Fatal("probe row lost across reopen")
		}
	})
}
