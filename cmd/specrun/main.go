// Command specrun regenerates the paper's evaluation: every table and
// figure of Section 4, plus the extension experiments from DESIGN.md.
//
// Usage:
//
//	specrun -all                         run everything
//	specrun -table3 -table4              selected experiments
//	specrun -fig7 -out results/          also dump per-benchmark CSVs
//	specrun -scale 4 -table3             larger traces
//	specrun -workloads matrixx,xlispx -fig8
//
// Experiments:
//
//	-table1           instruction-class operation times (configuration)
//	-table2           benchmark inventory with trace lengths
//	-table3           dataflow limit, conservative vs optimistic syscalls
//	-table4           available parallelism under four renaming conditions
//	-fig7             parallelism profiles (ASCII; CSV with -out)
//	-fig8             percent of parallelism vs window size
//	-fus              functional-unit sweep (extension E8)
//	-lifetimes        value lifetime / sharing distributions (extension E9)
//	-ablation-unroll  compiler loop-unrolling ablation (extension E7)
//	-branches         branch-prediction model sweep (extension E10)
//
// Resilience:
//
//	-keep-going       continue past failing workloads; failed rows are
//	                  marked FAILED in the tables and the exit code is 1
//	-timeout D        per-workload wall-clock budget (e.g. -timeout 30s)
//
// Parallelism:
//
//	-j N              run up to N workloads concurrently AND fan each
//	                  workload's trace out to up to N analyzer configs
//	                  (0 = GOMAXPROCS, the default; -j 1 = the serial
//	                  reference engine). Every experiment produces
//	                  identical output at any -j value.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"paragraph/internal/harness"
	"paragraph/internal/workloads"
)

// exitCode is the process exit status: set to 1 when any workload failed in
// keep-going mode, so partial results still come with a failing exit code.
var exitCode int

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		table1   = flag.Bool("table1", false, "print Table 1 (operation times)")
		table2   = flag.Bool("table2", false, "run Table 2 (benchmark inventory)")
		table3   = flag.Bool("table3", false, "run Table 3 (dataflow limits)")
		table4   = flag.Bool("table4", false, "run Table 4 (renaming conditions)")
		fig7     = flag.Bool("fig7", false, "run Figure 7 (parallelism profiles)")
		fig8     = flag.Bool("fig8", false, "run Figure 8 (window-size sweep)")
		fus      = flag.Bool("fus", false, "run the functional-unit sweep (E8)")
		lifet    = flag.Bool("lifetimes", false, "run lifetime/sharing distributions (E9)")
		ablation = flag.Bool("ablation-unroll", false, "run the loop-unrolling ablation (E7)")
		branches = flag.Bool("branches", false, "run the branch-prediction sweep (E10)")

		scale     = flag.Int("scale", 1, "workload scale factor")
		maxInst   = flag.Uint64("max", 0, "per-run instruction budget (0 = unlimited)")
		outDir    = flag.String("out", "", "directory for CSV outputs (fig7/fig8)")
		names     = flag.String("workloads", "", "comma-separated workload subset")
		ablWork   = flag.String("ablation-workload", "naskerx", "workload for the unrolling ablation")
		keepGoing = flag.Bool("keep-going", false, "continue past failing workloads; failed rows are marked and the exit code is non-zero")
		timeout   = flag.Duration("timeout", 0, "per-workload wall-clock budget, e.g. 30s (0 = unlimited)")
		jobs      = flag.Int("j", 0, "parallelism: bounds both concurrent workloads and concurrent analyzer configs per workload (0 = GOMAXPROCS, 1 = fully serial)")
	)
	flag.Parse()

	if !(*all || *table1 || *table2 || *table3 || *table4 || *fig7 || *fig8 || *fus || *lifet || *ablation || *branches) {
		flag.Usage()
		os.Exit(2)
	}

	s := harness.NewSuite(*scale)
	s.MaxInstr = *maxInst
	s.ContinueOnError = *keepGoing
	s.WorkloadTimeout = *timeout
	s.Parallelism = *jobs
	s.Concurrency = *jobs
	if *names != "" {
		s.Workloads = nil
		for _, n := range strings.Split(*names, ",") {
			w, ok := workloads.ByName(strings.TrimSpace(n))
			if !ok {
				fatal(fmt.Errorf("unknown workload %q", n))
			}
			s.Workloads = append(s.Workloads, w)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	section := func(title string) { fmt.Printf("\n== %s ==\n\n", title) }

	if *all || *table1 {
		section("Table 1: Instruction Class Operation Times")
		must(harness.RenderTable1(os.Stdout))
	}
	if *all || *table2 {
		section("Table 2: Benchmarks Analyzed")
		rows, err := timed("table2", s.Table2)
		partial(err)
		must(harness.RenderTable2(os.Stdout, rows))
	}
	if *all || *table3 {
		section("Table 3: Dataflow Results (conservative vs optimistic system calls)")
		rows, err := timed("table3", s.Table3)
		partial(err)
		must(harness.RenderTable3(os.Stdout, rows))
	}
	if *all || *table4 {
		section("Table 4: Available Parallelism under Different Renaming Conditions")
		rows, err := timed("table4", s.Table4)
		partial(err)
		must(harness.RenderTable4(os.Stdout, rows))
	}
	if *all || *fig7 {
		section("Figure 7: Parallelism Profiles")
		profiles, err := timed("fig7", s.Figure7)
		partial(err)
		must(harness.RenderFigure7(os.Stdout, profiles))
		if *outDir != "" {
			for _, p := range profiles {
				path := filepath.Join(*outDir, "fig7_"+p.Name+".csv")
				f, err := os.Create(path)
				if err != nil {
					fatal(err)
				}
				must(harness.WriteProfileCSV(f, p))
				must(f.Close())
				fmt.Printf("wrote %s\n", path)
			}
		}
	}
	if *all || *fig8 {
		section("Figure 8: Window Size vs Percent of Total Available Parallelism")
		series, err := timed("fig8", func() ([]harness.WindowSeries, error) {
			return s.Figure8(nil)
		})
		partial(err)
		must(harness.RenderFigure8(os.Stdout, series))
		if *outDir != "" {
			path := filepath.Join(*outDir, "fig8.csv")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			must(harness.WriteFigure8CSV(f, series))
			must(f.Close())
			fmt.Printf("wrote %s\n", path)
		}
	}
	if *all || *fus {
		section("Extension E8: Functional-Unit Limits")
		rows, err := timed("fus", func() ([]harness.FURow, error) {
			return s.FunctionalUnits(nil)
		})
		partial(err)
		must(harness.RenderFunctionalUnits(os.Stdout, rows))
	}
	if *all || *lifet {
		section("Extension E9: Value Lifetimes and Degree of Sharing")
		rows, err := timed("lifetimes", s.Lifetimes)
		partial(err)
		must(harness.RenderLifetimes(os.Stdout, rows))
	}
	if *all || *branches {
		section("Extension E10: Branch-Prediction Models")
		rows, err := timed("branches", func() ([]harness.BranchRow, error) {
			return s.BranchPrediction(nil)
		})
		partial(err)
		must(harness.RenderBranches(os.Stdout, rows))
	}
	if *all || *ablation {
		section("Extension E7: Compiler Loop-Unrolling Ablation (" + *ablWork + ")")
		rows, err := timed("ablation", func() ([]harness.UnrollRow, error) {
			return s.AblationUnroll(*ablWork, nil)
		})
		partial(err)
		must(harness.RenderUnroll(os.Stdout, rows))
	}

	if exitCode != 0 {
		fmt.Fprintln(os.Stderr, "specrun: some workloads failed; results above are partial")
		os.Exit(exitCode)
	}
}

// partial handles an experiment's error. A *SuiteError from a keep-going
// run is reported to stderr and remembered in the exit code while the
// partial rows still render; any other error is fatal.
func partial(err error) {
	if err == nil {
		return
	}
	var se *harness.SuiteError
	if errors.As(err, &se) {
		fmt.Fprintln(os.Stderr, "specrun:", err)
		exitCode = 1
		return
	}
	fatal(err)
}

// timed runs fn, reporting its wall time to stderr.
func timed[T any](name string, fn func() (T, error)) (T, error) {
	start := time.Now()
	out, err := fn()
	fmt.Fprintf(os.Stderr, "specrun: %s took %v\n", name, time.Since(start).Round(time.Millisecond))
	return out, err
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "specrun:", err)
	os.Exit(1)
}
