// Command specrun regenerates the paper's evaluation: every table and
// figure of Section 4, plus the extension experiments from DESIGN.md.
//
// Usage:
//
//	specrun -all                         run everything
//	specrun -table3 -table4              selected experiments
//	specrun -fig7 -out results/          also dump per-benchmark CSVs
//	specrun -scale 4 -table3             larger traces
//	specrun -workloads matrixx,xlispx -fig8
//
// Experiments:
//
//	-table1           instruction-class operation times (configuration)
//	-table2           benchmark inventory with trace lengths
//	-table3           dataflow limit, conservative vs optimistic syscalls
//	-table4           available parallelism under four renaming conditions
//	-fig7             parallelism profiles (ASCII; CSV with -out)
//	-fig8             percent of parallelism vs window size
//	-fus              functional-unit sweep (extension E8)
//	-lifetimes        value lifetime / sharing distributions (extension E9)
//	-ablation-unroll  compiler loop-unrolling ablation (extension E7)
//	-branches         branch-prediction model sweep (extension E10)
//
// Resilience:
//
//	-keep-going       continue past failing workloads; failed rows are
//	                  marked FAILED in the tables and the exit code is 1
//	-timeout D        per-workload wall-clock budget (e.g. -timeout 30s)
//	-mem-budget B     per-analyzer memory budget, e.g. 64M (0 = unlimited)
//	-mem-budget-global B
//	                  one budget divided across all concurrently running
//	                  workloads; effective -j shrinks before analyses
//	                  degrade, and shares re-expand as workloads finish
//	-budget-policy P  over-budget response: fail, degrade or warn
//	-autosave F       save finished rows to F as the run progresses — an
//	                  append-only CRC-framed log, one fsynced record per
//	                  row — so a killed run can pick up where it left
//	-resume           with -autosave: reuse rows already in F instead of
//	                  recomputing them; output is identical to a full run
//	                  because workloads are deterministic
//
// Ctrl-C / SIGTERM cancel the run promptly (partial autosave survives).
//
// Parallelism:
//
//	-j N              run up to N workloads concurrently AND fan each
//	                  workload's trace out to up to N analyzer configs
//	                  (0 = GOMAXPROCS, the default; -j 1 = the serial
//	                  reference engine). Every experiment produces
//	                  identical output at any -j value.
//
// Profiling:
//
//	-cpuprofile F     write a CPU profile of the run to F
//	-memprofile F     write a heap profile at exit to F
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"paragraph/internal/budget"
	"paragraph/internal/harness"
	"paragraph/internal/prof"
	"paragraph/internal/workloads"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run is the testable entry point: it parses args, executes the selected
// experiments, and returns the process exit code (0 success, 1 any failure —
// including per-workload failures in keep-going mode — 2 usage error).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("specrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		all      = fs.Bool("all", false, "run every experiment")
		table1   = fs.Bool("table1", false, "print Table 1 (operation times)")
		table2   = fs.Bool("table2", false, "run Table 2 (benchmark inventory)")
		table3   = fs.Bool("table3", false, "run Table 3 (dataflow limits)")
		table4   = fs.Bool("table4", false, "run Table 4 (renaming conditions)")
		fig7     = fs.Bool("fig7", false, "run Figure 7 (parallelism profiles)")
		fig8     = fs.Bool("fig8", false, "run Figure 8 (window-size sweep)")
		fus      = fs.Bool("fus", false, "run the functional-unit sweep (E8)")
		lifet    = fs.Bool("lifetimes", false, "run lifetime/sharing distributions (E9)")
		ablation = fs.Bool("ablation-unroll", false, "run the loop-unrolling ablation (E7)")
		branches = fs.Bool("branches", false, "run the branch-prediction sweep (E10)")

		scale     = fs.Int("scale", 1, "workload scale factor")
		maxInst   = fs.Uint64("max", 0, "per-run instruction budget (0 = unlimited)")
		outDir    = fs.String("out", "", "directory for CSV outputs (fig7/fig8)")
		names     = fs.String("workloads", "", "comma-separated workload subset")
		ablWork   = fs.String("ablation-workload", "naskerx", "workload for the unrolling ablation")
		keepGoing = fs.Bool("keep-going", false, "continue past failing workloads; failed rows are marked and the exit code is non-zero")
		timeout   = fs.Duration("timeout", 0, "per-workload wall-clock budget, e.g. 30s (0 = unlimited)")
		jobs      = fs.Int("j", 0, "parallelism: bounds both concurrent workloads and concurrent analyzer configs per workload (0 = GOMAXPROCS, 1 = fully serial)")

		memBudget       = fs.String("mem-budget", "", "per-analyzer memory budget, e.g. 64M or 1G (empty = unlimited)")
		memBudgetGlobal = fs.String("mem-budget-global", "", "one memory budget divided across all concurrently running workloads, e.g. 1G (empty = none); shrinks effective -j before degrading analyses")
		budgetPolicy    = fs.String("budget-policy", "fail", "over-budget response: fail, degrade or warn")
		autosave        = fs.String("autosave", "", "save finished experiment rows to this file as the run progresses")
		resume          = fs.Bool("resume", false, "with -autosave: reuse saved rows instead of recomputing them")

		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if !(*all || *table1 || *table2 || *table3 || *table4 || *fig7 || *fig8 || *fus || *lifet || *ablation || *branches) {
		fs.Usage()
		return 2
	}

	var st *store
	fail := func(err error) int {
		fmt.Fprintln(stderr, "specrun:", err)
		// An interrupt mid-run is not lost work when autosave is on: every
		// finished row was already flushed atomically. Say so, and name the
		// flag that picks the run back up.
		if st != nil && errors.Is(err, context.Canceled) {
			fmt.Fprintf(stderr, "specrun: interrupted; %d finished row(s) saved to %s — rerun with -resume to continue\n",
				st.len(), *autosave)
		}
		return 1
	}

	if *cpuProfile != "" || *memProfile != "" {
		// run (not main) owns the exit paths, so a deferred stop covers both
		// success and failure returns; the closure is idempotent regardless.
		stop, err := prof.Start(*cpuProfile, *memProfile, stderr)
		if err != nil {
			return fail(err)
		}
		defer stop()
	}

	s := harness.NewSuite(*scale)
	s.MaxInstr = *maxInst
	s.ContinueOnError = *keepGoing
	s.WorkloadTimeout = *timeout
	s.Parallelism = *jobs
	s.Concurrency = *jobs
	if *memBudget != "" || *memBudgetGlobal != "" {
		pol, err := budget.ParsePolicy(*budgetPolicy)
		if err != nil {
			return fail(err)
		}
		s.BudgetPolicy = pol
		if *memBudget != "" {
			b, err := budget.ParseBytes(*memBudget)
			if err != nil {
				return fail(err)
			}
			s.MemBudget = b
		}
		if *memBudgetGlobal != "" {
			b, err := budget.ParseBytes(*memBudgetGlobal)
			if err != nil {
				return fail(err)
			}
			s.GlobalMemBudget = b
		}
	}
	if *names != "" {
		s.Workloads = nil
		for _, n := range strings.Split(*names, ",") {
			w, ok := workloads.ByName(strings.TrimSpace(n))
			if !ok {
				return fail(fmt.Errorf("unknown workload %q", n))
			}
			s.Workloads = append(s.Workloads, w)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fail(err)
		}
	}
	if *resume && *autosave == "" {
		return fail(fmt.Errorf("-resume needs -autosave to name the row store"))
	}
	if *autosave != "" {
		var err error
		st, err = openStore(*autosave, *resume)
		if err != nil {
			return fail(err)
		}
		defer st.close()
	}

	exitCode := 0
	// partial handles an experiment's error. A *SuiteError from a
	// keep-going run is reported and remembered in the exit code while the
	// partial rows still render; any other error is fatal.
	partial := func(err error) bool {
		if err == nil {
			return true
		}
		var se *harness.SuiteError
		if errors.As(err, &se) {
			fmt.Fprintln(stderr, "specrun:", err)
			exitCode = 1
			return true
		}
		return false
	}
	section := func(title string) { fmt.Fprintf(stdout, "\n== %s ==\n\n", title) }

	if *all || *table1 {
		section("Table 1: Instruction Class Operation Times")
		if err := harness.RenderTable1(stdout); err != nil {
			return fail(err)
		}
	}
	if *all || *table2 {
		section("Table 2: Benchmarks Analyzed")
		rows, err := timed(stderr, "table2", func() ([]harness.Table2Row, error) {
			return cachedRows(st, "table2", s,
				func(sub *harness.Suite) ([]harness.Table2Row, error) { return sub.Table2(ctx) },
				func(r harness.Table2Row) bool { return r.Name != "" && r.Err == "" })
		})
		if !partial(err) {
			return fail(err)
		}
		if err := harness.RenderTable2(stdout, rows); err != nil {
			return fail(err)
		}
	}
	if *all || *table3 {
		section("Table 3: Dataflow Results (conservative vs optimistic system calls)")
		rows, err := timed(stderr, "table3", func() ([]harness.Table3Row, error) {
			return cachedRows(st, "table3", s,
				func(sub *harness.Suite) ([]harness.Table3Row, error) { return sub.Table3(ctx) },
				func(r harness.Table3Row) bool { return r.Name != "" && r.Err == "" })
		})
		if !partial(err) {
			return fail(err)
		}
		if err := harness.RenderTable3(stdout, rows); err != nil {
			return fail(err)
		}
	}
	if *all || *table4 {
		section("Table 4: Available Parallelism under Different Renaming Conditions")
		rows, err := timed(stderr, "table4", func() ([]harness.Table4Row, error) {
			return cachedRows(st, "table4", s,
				func(sub *harness.Suite) ([]harness.Table4Row, error) { return sub.Table4(ctx) },
				func(r harness.Table4Row) bool { return r.Name != "" && r.Err == "" })
		})
		if !partial(err) {
			return fail(err)
		}
		if err := harness.RenderTable4(stdout, rows); err != nil {
			return fail(err)
		}
	}
	if *all || *fig7 {
		section("Figure 7: Parallelism Profiles")
		profiles, err := timed(stderr, "fig7", func() ([]harness.ProfileResult, error) {
			return cachedRows(st, "fig7", s,
				func(sub *harness.Suite) ([]harness.ProfileResult, error) { return sub.Figure7(ctx) },
				func(r harness.ProfileResult) bool { return r.Name != "" })
		})
		if !partial(err) {
			return fail(err)
		}
		if err := harness.RenderFigure7(stdout, profiles); err != nil {
			return fail(err)
		}
		if *outDir != "" {
			for _, p := range profiles {
				path := filepath.Join(*outDir, "fig7_"+p.Name+".csv")
				f, err := os.Create(path)
				if err != nil {
					return fail(err)
				}
				if err := harness.WriteProfileCSV(f, p); err != nil {
					return fail(err)
				}
				if err := f.Close(); err != nil {
					return fail(err)
				}
				fmt.Fprintf(stdout, "wrote %s\n", path)
			}
		}
	}
	if *all || *fig8 {
		section("Figure 8: Window Size vs Percent of Total Available Parallelism")
		series, err := timed(stderr, "fig8", func() ([]harness.WindowSeries, error) {
			return cachedRows(st, "fig8", s,
				func(sub *harness.Suite) ([]harness.WindowSeries, error) { return sub.Figure8(ctx, nil) },
				func(r harness.WindowSeries) bool { return r.Name != "" })
		})
		if !partial(err) {
			return fail(err)
		}
		if err := harness.RenderFigure8(stdout, series); err != nil {
			return fail(err)
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, "fig8.csv")
			f, err := os.Create(path)
			if err != nil {
				return fail(err)
			}
			if err := harness.WriteFigure8CSV(f, series); err != nil {
				return fail(err)
			}
			if err := f.Close(); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "wrote %s\n", path)
		}
	}
	if *all || *fus {
		section("Extension E8: Functional-Unit Limits")
		rows, err := timed(stderr, "fus", func() ([]harness.FURow, error) {
			return cachedRows(st, "fus", s,
				func(sub *harness.Suite) ([]harness.FURow, error) { return sub.FunctionalUnits(ctx, nil) },
				func(r harness.FURow) bool { return r.Name != "" })
		})
		if !partial(err) {
			return fail(err)
		}
		if err := harness.RenderFunctionalUnits(stdout, rows); err != nil {
			return fail(err)
		}
	}
	if *all || *lifet {
		section("Extension E9: Value Lifetimes and Degree of Sharing")
		rows, err := timed(stderr, "lifetimes", func() ([]harness.LifetimeRow, error) {
			return cachedRows(st, "lifetimes", s,
				func(sub *harness.Suite) ([]harness.LifetimeRow, error) { return sub.Lifetimes(ctx) },
				func(r harness.LifetimeRow) bool { return r.Name != "" })
		})
		if !partial(err) {
			return fail(err)
		}
		if err := harness.RenderLifetimes(stdout, rows); err != nil {
			return fail(err)
		}
	}
	if *all || *branches {
		section("Extension E10: Branch-Prediction Models")
		rows, err := timed(stderr, "branches", func() ([]harness.BranchRow, error) {
			return cachedRows(st, "branches", s,
				func(sub *harness.Suite) ([]harness.BranchRow, error) { return sub.BranchPrediction(ctx, nil) },
				func(r harness.BranchRow) bool { return r.Name != "" })
		})
		if !partial(err) {
			return fail(err)
		}
		if err := harness.RenderBranches(stdout, rows); err != nil {
			return fail(err)
		}
	}
	if *all || *ablation {
		section("Extension E7: Compiler Loop-Unrolling Ablation (" + *ablWork + ")")
		rows, err := timed(stderr, "ablation", func() ([]harness.UnrollRow, error) {
			// The ablation sweeps unroll factors over one workload, so it
			// caches as a single unit rather than per workload.
			key := "ablation/" + *ablWork
			if rows, ok := getCached[[]harness.UnrollRow](st, key); ok {
				return rows, nil
			}
			rows, err := s.AblationUnroll(ctx, *ablWork, nil)
			if err == nil && st != nil {
				if perr := st.put(key, rows); perr != nil {
					return rows, perr
				}
			}
			return rows, err
		})
		if !partial(err) {
			return fail(err)
		}
		if err := harness.RenderUnroll(stdout, rows); err != nil {
			return fail(err)
		}
	}

	if exitCode != 0 {
		fmt.Fprintln(stderr, "specrun: some workloads failed; results above are partial")
	}
	return exitCode
}

// timed runs fn, reporting its wall time to stderr.
func timed[T any](stderr io.Writer, name string, fn func() (T, error)) (T, error) {
	start := time.Now()
	out, err := fn()
	fmt.Fprintf(stderr, "specrun: %s took %v\n", name, time.Since(start).Round(time.Millisecond))
	return out, err
}
