// Command paragraph is the dynamic-dependency-graph analyzer CLI: the
// reproduction's equivalent of running the paper's Paragraph tool over a
// Pixie trace. It accepts a stored trace file or generates one on the fly
// from a workload / MiniC source / assembly file, applies the paper's
// analysis switches, and reports critical path, available parallelism and
// (optionally) the parallelism profile and value distributions.
//
// Examples:
//
//	paragraph -workload matrixx
//	paragraph -trace matrixx.pgt -window 1024
//	paragraph -workload tomcatvx -rename-regs -plot
//	paragraph -src prog.mc -syscalls optimistic -profile prof.csv
//
// Switches mirror Section 3.2 of the paper:
//
//	-syscalls conservative|optimistic   system-call firewall policy
//	-rename-regs / -rename-stack / -rename-data   renaming switches
//	-rename-all                         enable all three (default true when
//	                                    no individual switch is given)
//	-window N                           instruction window size (0 = whole trace)
//	-fus N                              generic functional units (0 = unlimited)
//	-unit-latency                       every operation takes one level
//
// Sweeps (single-decode fan-out):
//
//	-sweep-windows 1,128,8192,0         decode or simulate the trace ONCE,
//	                                    resolve its dependencies once, then
//	                                    schedule every window size with a
//	                                    pool of concurrent analyzers
//	-j N                                analyzer workers for the sweep
//	                                    (0 = GOMAXPROCS, 1 = serial)
//
// Profiling:
//
//	-cpuprofile F                       write a CPU profile to F
//	-memprofile F                       write a heap profile at exit to F
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"paragraph/internal/asm"
	"paragraph/internal/budget"
	"paragraph/internal/core"
	"paragraph/internal/cpu"
	"paragraph/internal/harness"
	"paragraph/internal/minic"
	"paragraph/internal/prof"
	"paragraph/internal/remote"
	"paragraph/internal/shard"
	"paragraph/internal/stats"
	"paragraph/internal/trace"
	"paragraph/internal/workloads"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "stored trace file to analyze (local path or http(s) URL; remote traces are fetched with resumable ranged retries)")
		workload  = flag.String("workload", "", "built-in workload to trace and analyze")
		srcFile   = flag.String("src", "", "MiniC source to trace and analyze")
		asmFile   = flag.String("asm", "", "assembly source to trace and analyze")
		scale     = flag.Int("scale", 1, "workload scale factor")
		maxInst   = flag.Uint64("max", 0, "instruction budget (0 = unlimited)")

		syscalls    = flag.String("syscalls", "conservative", "system-call policy: conservative or optimistic")
		renameRegs  = flag.Bool("rename-regs", false, "remove register storage dependencies")
		renameStack = flag.Bool("rename-stack", false, "remove stack-segment storage dependencies")
		renameData  = flag.Bool("rename-data", false, "remove non-stack memory storage dependencies")
		renameAll   = flag.Bool("rename-all", false, "enable all renaming switches")
		window      = flag.Int("window", 0, "instruction window size (0 = whole trace)")
		fus         = flag.Int("fus", 0, "generic functional units (0 = unlimited)")
		unitLat     = flag.Bool("unit-latency", false, "give every operation a one-level latency")
		branches    = flag.String("branches", "perfect", "branch model: perfect, stall, static, twobit")

		profileOut = flag.String("profile", "", "write the parallelism profile as CSV to this file")
		plot       = flag.Bool("plot", false, "print an ASCII parallelism profile")
		buckets    = flag.Int("buckets", 0, "profile resolution in buckets (0 = default)")
		lifetimes  = flag.Bool("lifetimes", false, "collect and print the value-lifetime distribution")
		twoPass    = flag.Bool("two-pass", false, "with -trace: run the paper's two-pass dead-value analysis")
		storageOut = flag.String("storage", "", "write the live-well occupancy curve as CSV to this file")
		sharing    = flag.Bool("sharing", false, "collect and print the degree-of-sharing distribution")
		degraded   = flag.Bool("degraded", false, "with -trace: skip corrupt v2 chunks instead of failing fast, reporting what was lost")
		useMmap    = flag.Bool("mmap", false, "with -trace: memory-map the trace file and decode it zero-copy (falls back to one buffered read where mmap is unavailable)")

		sweepWindows = flag.String("sweep-windows", "", "comma-separated window sizes (0 = whole trace): decode the trace once and analyze every size, e.g. -sweep-windows 1,128,8192,0")
		jobs         = flag.Int("j", 0, "with -sweep-windows: concurrent analyzers per decode pass (0 = all windows at once); with -shards: concurrent workers (0 = GOMAXPROCS, 1 = serial)")
		shards       = flag.Int("shards", 0, "analyze the trace in N chunk-aligned shards with pipelined decode and a deterministic merge (0 = monolithic)")
		speculate    = flag.Bool("speculate", false, "with -shards: analyze all shards concurrently (speculative per-shard compilation + sequential seam splice); results are identical to the chained run")

		memBudget     = flag.String("mem-budget", "", "memory budget for the analyzer working set, e.g. 64M or 1G (empty = unlimited)")
		budgetPolicy  = flag.String("budget-policy", "fail", "over-budget response: fail, degrade or warn")
		autosave      = flag.String("autosave", "", "with -trace: periodically save a resumable checkpoint to this file")
		autosaveEvery = flag.Uint64("autosave-every", 1_000_000, "events between autosaved checkpoints")
		resume        = flag.Bool("resume", false, "with -trace and -autosave: resume from the saved checkpoint instead of starting over")
		retryReads    = flag.Bool("retry-reads", false, "with -trace: retry transient read errors with jittered backoff instead of failing fast")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProfile != "" || *memProfile != "" {
		stop, err := prof.Start(*cpuProfile, *memProfile, os.Stderr)
		if err != nil {
			fatal(err)
		}
		// fatal() exits without running defers, so it runs the same
		// (idempotent) stop closure itself; see stopProfiles.
		stopProfiles = stop
		defer stop()
	}

	// Ctrl-C / SIGTERM cancel the analysis promptly (within one
	// budget.CheckEvery stride) instead of killing the process mid-write;
	// with -autosave the last checkpoint survives for -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// A remote -trace URL is fetched once up front — with resumable Range
	// requests and retried transient faults — into a temp file every
	// downstream path (streaming, mmap, shards, sweeps) reads like a local
	// trace. The fetch accounting goes to stderr so flaky-network runs are
	// visible.
	if *traceFile != "" && remote.IsURL(*traceFile) {
		local, cleanup, err := fetchRemoteTrace(ctx, *traceFile)
		if err != nil {
			fatal(err)
		}
		defer cleanup()
		*traceFile = local
	}

	cfg := core.Config{
		WindowSize:      *window,
		FunctionalUnits: *fus,
		UnitLatency:     *unitLat,
		ProfileBuckets:  *buckets,
		Profile:         *plot || *profileOut != "",
		Lifetimes:       *lifetimes,
		Sharing:         *sharing,
		StorageProfile:  *storageOut != "",
	}
	switch *branches {
	case "perfect":
		cfg.Branches = core.BranchPerfect
	case "stall":
		cfg.Branches = core.BranchStall
	case "static", "btfn":
		cfg.Branches = core.BranchStatic
	case "twobit", "2bit":
		cfg.Branches = core.BranchTwoBit
	default:
		fatal(fmt.Errorf("bad -branches value %q", *branches))
	}
	switch *syscalls {
	case "conservative", "cons":
		cfg.Syscalls = core.SyscallConservative
	case "optimistic", "opt":
		cfg.Syscalls = core.SyscallOptimistic
	default:
		fatal(fmt.Errorf("bad -syscalls value %q", *syscalls))
	}
	if *renameAll || (!*renameRegs && !*renameStack && !*renameData) {
		// Default, as in the paper's headline analysis: full renaming.
		cfg.RenameRegisters, cfg.RenameStack, cfg.RenameData = true, true, true
	} else {
		cfg.RenameRegisters, cfg.RenameStack, cfg.RenameData = *renameRegs, *renameStack, *renameData
	}
	if *memBudget != "" {
		b, err := budget.ParseBytes(*memBudget)
		if err != nil {
			fatal(err)
		}
		cfg.MemBudget = b
		pol, err := budget.ParsePolicy(*budgetPolicy)
		if err != nil {
			fatal(err)
		}
		cfg.BudgetPolicy = pol
	}

	if *speculate && *shards == 0 {
		fatal(fmt.Errorf("-speculate only applies with -shards"))
	}
	if *sweepWindows != "" {
		if *shards != 0 {
			fatal(fmt.Errorf("-shards is incompatible with -sweep-windows"))
		}
		runWindowSweep(ctx, cfg, *sweepWindows, *jobs, *traceFile, *workload, *srcFile, *asmFile, *scale, *maxInst, *degraded, *useMmap)
		return
	}

	if *shards != 0 {
		if *shards < 1 {
			fatal(fmt.Errorf("-shards must be at least 1"))
		}
		if *twoPass || *autosave != "" || *resume {
			fatal(fmt.Errorf("-shards is incompatible with -two-pass, -autosave and -resume (sharding has its own resume seam: pgshard)"))
		}
		if *traceFile != "" && *maxInst != 0 {
			fatal(fmt.Errorf("-shards analyzes a stored trace whole; -max only applies when simulating"))
		}
		runSharded(ctx, cfg, *shards, *jobs, *traceFile, *workload, *srcFile, *asmFile, *scale, *maxInst, *degraded, *useMmap,
			*speculate, *plot, *profileOut, *lifetimes, *sharing, *storageOut)
		return
	}

	if *resume && *autosave == "" {
		fatal(fmt.Errorf("-resume needs -autosave to name the checkpoint file"))
	}
	if *autosave != "" {
		if *traceFile == "" {
			fatal(fmt.Errorf("-autosave needs a stored trace (-trace): checkpoints index into the trace file"))
		}
		if *maxInst != 0 {
			fatal(fmt.Errorf("-autosave is incompatible with -max"))
		}
	}

	if *traceFile != "" && (*twoPass || *autosave != "") {
		// The two passes each walk the whole trace; mapping it makes the
		// second pass (and a resumed skip-ahead) decode straight from the
		// page cache through a bytes.Reader.
		var rs io.ReadSeeker
		if *useMmap {
			m, err := trace.OpenMapped(*traceFile)
			if err != nil {
				fatal(err)
			}
			defer m.Close()
			rs = bytes.NewReader(m.Bytes())
		} else {
			f, err := os.Open(*traceFile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			rs = f
		}
		var rstats trace.ReadStats
		opts := core.TwoPassOptions{Degraded: *degraded, Stats: &rstats}
		if *autosave != "" {
			opts.CheckpointEvery = *autosaveEvery
			opts.OnCheckpoint = func(cp *core.Checkpoint) error {
				return core.SaveCheckpoint(*autosave, cp)
			}
			// An interrupt (Ctrl-C, SIGTERM) flushes one final checkpoint
			// at the interruption point, so -resume loses no progress.
			opts.FinalOnCancel = true
		}
		var res *core.Result
		if *resume {
			cp, err := core.LoadCheckpoint(*autosave)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "paragraph: resuming from %s at event %s\n",
				*autosave, stats.FormatInt(int64(cp.EventOffset)))
			res, err = core.ResumeTwoPass(ctx, rs, cp, opts)
			if err != nil {
				failAnalysis(err, *autosave)
			}
		} else {
			run := core.AnalyzeTraceOpts
			if *twoPass {
				run = core.AnalyzeTwoPassOpts
			}
			r, err := run(ctx, rs, cfg, opts)
			if err != nil {
				failAnalysis(err, *autosave)
			}
			res = r
		}
		reportSkips(rstats)
		report(res, *plot, *profileOut, *lifetimes, *sharing)
		writeStorage(res, *storageOut)
		return
	}
	if *twoPass {
		fatal(fmt.Errorf("-two-pass needs a stored trace (-trace)"))
	}

	analyzer := core.NewAnalyzer(cfg)

	switch {
	case *traceFile != "":
		tr, retryStats, closeTrace, err := openTrace(*traceFile, *useMmap, *degraded, *retryReads)
		if err != nil {
			fatal(err)
		}
		defer closeTrace()
		n := uint64(0)
		err = tr.ForEach(func(e *trace.Event) error {
			if n%budget.CheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("analysis canceled at event %d: %w", n, err)
				}
			}
			if *maxInst != 0 && n >= *maxInst {
				return errBudget
			}
			n++
			return analyzer.Event(e)
		})
		if err != nil && err != errBudget {
			fatal(err)
		}
		reportSkips(tr.Stats())
		reportRetries(retryStats)
	default:
		prog, err := buildProgram(*workload, *srcFile, *asmFile, *scale)
		if err != nil {
			fatal(err)
		}
		machine, err := cpu.New(prog, cpu.WithTrace(analyzer), cpu.WithStdout(os.Stderr))
		if err != nil {
			fatal(err)
		}
		if _, err := machine.Run(*maxInst); err != nil && err != cpu.ErrLimit {
			fatal(err)
		}
	}

	res, err := analyzer.Finish()
	if err != nil {
		fatal(err)
	}
	report(res, *plot, *profileOut, *lifetimes, *sharing)
	writeStorage(res, *storageOut)
}

// runWindowSweep is the shared-extraction fan-out path: the trace is
// decoded from a file (or simulated) and resolved into dependence records
// ONCE per decode pass, with every requested window size scheduling those
// records concurrently (harness.FanOutResolved over a bounded segment
// ring), so memory never grows with trace length and the per-window cost is
// the cheap replay half of analysis only — window sweeps share a resolve
// signature by construction, since renaming and syscall policy are fixed
// across the sweep. -j bounds the concurrent scheduler count by splitting
// the windows into groups of that size, one decode (or simulation) +
// resolution pass per group; 0 analyzes every window in a single pass. The
// output is one table row per window.
func runWindowSweep(ctx context.Context, base core.Config, sizesArg string, jobs int, traceFile, workload, srcFile, asmFile string, scale int, maxInst uint64, degraded, useMmap bool) {
	var sizes []int
	for _, s := range strings.Split(sizesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 0 {
			fatal(fmt.Errorf("bad -sweep-windows entry %q", s))
		}
		sizes = append(sizes, n)
	}

	produce := func(rs *harness.ResolverStream) error {
		if traceFile != "" {
			tr, _, closeTrace, err := openTrace(traceFile, useMmap, degraded, false)
			if err != nil {
				return err
			}
			defer closeTrace()
			if err := tr.ForEachBatch(rs.Events); err != nil {
				return err
			}
			rs.SetStats(tr.Stats())
			return nil
		}
		prog, err := buildProgram(workload, srcFile, asmFile, scale)
		if err != nil {
			return err
		}
		machine, err := cpu.New(prog, cpu.WithTrace(rs), cpu.WithStdout(os.Stderr))
		if err != nil {
			return err
		}
		if _, err := machine.Run(maxInst); err != nil && err != cpu.ErrLimit {
			return err
		}
		return nil
	}

	cfgs := make([]core.Config, len(sizes))
	for i, size := range sizes {
		c := base
		c.Profile = false // per-window profiles would drown the table
		c.WindowSize = size
		cfgs[i] = c
	}
	group := len(cfgs)
	if jobs > 0 && jobs < group {
		group = jobs
	}
	start := time.Now()
	results := make([]*core.Result, 0, len(cfgs))
	for lo := 0; lo < len(cfgs); lo += group {
		hi := lo + group
		if hi > len(cfgs) {
			hi = len(cfgs)
		}
		rs, rstats, err := harness.FanOutResolved(ctx, produce, cfgs[lo:hi], 0)
		if err != nil {
			fatal(err)
		}
		if lo == 0 {
			reportSkips(rstats)
		}
		results = append(results, rs...)
	}
	var events int64
	if len(results) > 0 {
		events = int64(results[0].Instructions)
	}
	fmt.Fprintf(os.Stderr, "paragraph: analyzed %s events x %d windows in %v\n",
		stats.FormatInt(events), len(sizes), time.Since(start).Round(time.Millisecond))

	t := stats.NewTable("Window", "Operations", "Critical Path", "Available")
	for i, r := range results {
		win := "full"
		if sizes[i] > 0 {
			win = stats.FormatInt(int64(sizes[i]))
		}
		t.AddRow(win, stats.FormatInt(int64(r.Operations)), stats.FormatInt(r.CriticalPath), r.Available)
	}
	must(t.Render(os.Stdout))
}

// runSharded is the in-process sharded path: the trace bytes (read from a
// file or encoded from one simulation) are split at chunk boundaries,
// decoded by a bounded pool with decode of shard i+1 overlapping analysis
// of shard i, and the per-shard results merged into a Result deep-equal to
// a monolithic run (see internal/shard). With speculate, the shard chain is
// broken entirely: all shards analyze concurrently and a sequential splice
// fixes up the seams (see internal/shard/speculate.go).
func runSharded(ctx context.Context, cfg core.Config, n, jobs int, traceFile, workload, srcFile, asmFile string, scale int, maxInst uint64, degraded, useMmap, speculate bool, plot bool, profileOut string, lifetimes, sharing bool, storageOut string) {
	var data []byte
	if traceFile != "" {
		if useMmap {
			// Every shard decodes its byte range straight out of the
			// mapping; the splitter's planning scan does too.
			m, err := trace.OpenMapped(traceFile)
			if err != nil {
				fatal(err)
			}
			defer m.Close()
			data = m.Bytes()
		} else {
			var err error
			data, err = os.ReadFile(traceFile)
			if err != nil {
				fatal(err)
			}
		}
	} else {
		prog, err := buildProgram(workload, srcFile, asmFile, scale)
		if err != nil {
			fatal(err)
		}
		var enc bytes.Buffer
		tw, err := trace.NewWriter(&enc)
		if err != nil {
			fatal(err)
		}
		machine, err := cpu.New(prog, cpu.WithTrace(tw), cpu.WithStdout(os.Stderr))
		if err != nil {
			fatal(err)
		}
		if _, err := machine.Run(maxInst); err != nil && err != cpu.ErrLimit {
			fatal(err)
		}
		if err := tw.Flush(); err != nil {
			fatal(err)
		}
		data = enc.Bytes()
	}

	start := time.Now()
	res, rs, err := shard.Analyze(ctx, data, cfg, n, shard.Options{Degraded: degraded, Concurrency: jobs, Speculate: speculate})
	if err != nil {
		fatal(err)
	}
	mode := "chained"
	if speculate {
		mode = "speculative"
	}
	fmt.Fprintf(os.Stderr, "paragraph: analyzed %s events in %d %s shard(s) in %v\n",
		stats.FormatInt(int64(res.Instructions)), n, mode, time.Since(start).Round(time.Millisecond))
	reportSkips(rs)
	report(res, plot, profileOut, lifetimes, sharing)
	writeStorage(res, storageOut)
}

// openTrace opens a stored trace for reading, memory-mapped and zero-copy
// when useMmap is set (with a transparent buffered-read fallback on
// platforms without mmap), streaming through bufio otherwise. With retry,
// the streaming read path absorbs transient I/O errors with jittered
// backoff; the returned stats closure (nil when no retry layer is active)
// reports what was absorbed. The close closure releases the file or
// mapping once reading is done.
func openTrace(path string, useMmap, degraded, retry bool) (*trace.Reader, func() trace.RetryStats, func(), error) {
	if useMmap {
		// A mapping has no read syscalls left to retry.
		m, err := trace.OpenMapped(path)
		if err != nil {
			return nil, nil, nil, err
		}
		r, err := m.Reader(trace.ReaderOptions{Degraded: degraded})
		if err != nil {
			m.Close()
			return nil, nil, nil, err
		}
		return r, nil, func() { m.Close() }, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	var src io.Reader = f
	var statsFn func() trace.RetryStats
	if retry {
		rr := trace.NewRetryReader(f, trace.RetryOptions{})
		src = rr
		statsFn = rr.Stats
	}
	r, err := trace.NewReaderOpts(src, trace.ReaderOptions{Degraded: degraded})
	if err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	return r, statsFn, func() { f.Close() }, nil
}

// reportRetries surfaces the streaming read path's retry accounting when a
// -retry-reads run actually absorbed faults; quiet runs stay quiet.
func reportRetries(statsFn func() trace.RetryStats) {
	if statsFn == nil {
		return
	}
	st := statsFn()
	if st.Retries == 0 && st.GaveUp == 0 {
		return
	}
	fmt.Fprintf(os.Stderr,
		"paragraph: retried %d transient read error(s) over %d extra attempt(s), %v backing off\n",
		st.Retries, st.Attempts, st.Slept.Round(time.Millisecond))
	if st.GaveUp > 0 {
		fmt.Fprintf(os.Stderr, "paragraph: warning: %d read(s) still failed after all retries\n", st.GaveUp)
	}
}

// fetchRemoteTrace downloads a remote trace into a temp file using the
// resumable ranged reader, reporting the transfer and its fault accounting
// on stderr. The cleanup closure removes the temp file.
func fetchRemoteTrace(ctx context.Context, url string) (string, func(), error) {
	src, err := remote.Open(ctx, url, remote.Options{})
	if err != nil {
		return "", nil, err
	}
	data, err := src.FetchAll(ctx)
	st := src.Stats()
	if st.Retries > 0 || st.Resumes > 0 {
		fmt.Fprintf(os.Stderr, "paragraph: remote fetch: %d request(s), %d retried, %d resumed mid-body, %d throttled\n",
			st.Requests, st.Retries, st.Resumes, st.Throttled)
	}
	if err != nil {
		return "", nil, err
	}
	f, err := os.CreateTemp("", "paragraph-remote-*.pgt")
	if err != nil {
		return "", nil, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return "", nil, err
	}
	fmt.Fprintf(os.Stderr, "paragraph: fetched %s trace bytes from %s\n",
		stats.FormatInt(int64(len(data))), url)
	return f.Name(), func() { os.Remove(f.Name()) }, nil
}

// failAnalysis reports an analysis failure and exits. For an interrupted
// run that left a resumable checkpoint behind, it names the checkpoint and
// the flag that continues from it instead of printing a bare error.
func failAnalysis(err error, autosave string) {
	if autosave != "" && errors.Is(err, context.Canceled) {
		if _, serr := os.Stat(autosave); serr == nil {
			fmt.Fprintf(os.Stderr, "paragraph: interrupted; checkpoint saved to %s — rerun with -resume to continue\n", autosave)
			os.Exit(1)
		}
	}
	fatal(err)
}

// reportSkips warns on stderr when a degraded-mode read lost events; the
// metrics then describe only the surviving part of the trace.
func reportSkips(st trace.ReadStats) {
	if st.SkippedChunks == 0 && st.DuplicateChunks == 0 {
		return
	}
	fmt.Fprintf(os.Stderr,
		"paragraph: warning: degraded read skipped %d corrupt chunk(s) (~%d events, resync over %d bytes), dropped %d duplicate chunk(s)\n",
		st.SkippedChunks, st.SkippedEvents, st.ResyncBytes, st.DuplicateChunks)
}

// writeStorage dumps the live-well occupancy curve, if collected.
func writeStorage(res *core.Result, path string) {
	if path == "" || len(res.StorageProfile) == 0 {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := stats.WriteCSV(f, "instruction", "live_words", res.StorageProfile); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("storage profile written to %s\n", path)
}

var errBudget = fmt.Errorf("budget reached")

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func buildProgram(workload, srcFile, asmFile string, scale int) (*asm.Program, error) {
	switch {
	case workload != "":
		w, ok := workloads.ByName(workload)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", workload)
		}
		return w.Build(scale, minic.Options{})
	case srcFile != "":
		src, err := os.ReadFile(srcFile)
		if err != nil {
			return nil, err
		}
		return minic.Build(string(src), minic.Options{})
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, err
		}
		return asm.Assemble(string(src))
	}
	return nil, fmt.Errorf("one of -trace, -workload, -src or -asm is required")
}

func report(res *core.Result, plot bool, profileOut string, lifetimes, sharing bool) {
	fmt.Printf("configuration:        syscalls %s, rename regs=%v stack=%v data=%v, window %s, FUs %s\n",
		res.Config.Syscalls,
		res.Config.RenameRegisters, res.Config.RenameStack, res.Config.RenameData,
		orUnlimited(res.Config.WindowSize), orUnlimited(res.Config.FunctionalUnits))
	fmt.Printf("instructions:         %s\n", stats.FormatInt(int64(res.Instructions)))
	fmt.Printf("operations in DDG:    %s\n", stats.FormatInt(int64(res.Operations)))
	fmt.Printf("system calls:         %d\n", res.Syscalls)
	fmt.Printf("critical path length: %s\n", stats.FormatInt(res.CriticalPath))
	fmt.Printf("available parallelism: %s\n", stats.FormatFloat(res.Available))
	if res.PeakOps > 0 {
		fmt.Printf("peak ops per level:   %s\n", stats.FormatFloat(res.PeakOps))
	}
	fmt.Printf("peak live memory:     %s words\n", stats.FormatInt(int64(res.MaxLiveMemoryWords)))
	if res.Branches > 0 {
		fmt.Printf("branch model:         %s, %s branches, %.2f%% mispredicted\n",
			res.Config.Branches, stats.FormatInt(int64(res.Branches)),
			float64(res.Mispredictions)/float64(res.Branches)*100)
	}
	if g := res.Governor; g != nil {
		fmt.Printf("memory budget:        peak %s bytes (live well %s), %d checks\n",
			stats.FormatInt(g.PeakBytes), stats.FormatInt(g.PeakLiveWellBytes), g.Checks)
		if g.Governed() {
			fmt.Printf("budget governance:    %d degradation(s), %d warning(s)",
				g.Degradations, g.Warnings)
			if g.EffectiveWindow > 0 {
				fmt.Printf(", effective window %s", stats.FormatInt(int64(g.EffectiveWindow)))
			}
			fmt.Println()
		}
	}

	if plot && len(res.Profile) > 0 {
		fmt.Println()
		_ = stats.AsciiPlot(os.Stdout, "parallelism profile (ops per DDG level)", res.Profile, 32, 56)
	}
	if profileOut != "" {
		f, err := os.Create(profileOut)
		if err != nil {
			fatal(err)
		}
		if err := stats.WriteCSV(f, "level", "operations", res.Profile); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("profile written to %s (%d buckets, width %d)\n",
			profileOut, len(res.Profile), res.ProfileBucketWidth)
	}
	if lifetimes {
		fmt.Printf("value lifetimes:      %s\n", res.Lifetimes.String())
		for _, b := range res.Lifetimes.Buckets() {
			fmt.Printf("  %10d..%-10d %12d\n", b.Low, b.High, b.Count)
		}
	}
	if sharing {
		fmt.Printf("degree of sharing:    %s\n", res.Sharing.String())
		for _, b := range res.Sharing.Buckets() {
			fmt.Printf("  %10d..%-10d %12d\n", b.Low, b.High, b.Count)
		}
	}
}

func orUnlimited(n int) string {
	if n == 0 {
		return "unlimited"
	}
	return fmt.Sprint(n)
}

// stopProfiles flushes any active -cpuprofile / -memprofile collection; it
// is set once in main and called both from the normal deferred exit and
// from fatal, which os.Exits past the defers.
var stopProfiles func()

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paragraph:", err)
	if stopProfiles != nil {
		stopProfiles()
	}
	os.Exit(1)
}
