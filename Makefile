# Paragraph build/verify entry points. Everything is plain `go` underneath;
# the targets just fix the flags.

GO ?= go

.PHONY: all build vet test race differential fuzz bench check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector run of everything except the differential battery, which
# gets its own target below so `check` doesn't run it twice.
race:
	$(GO) test -race -skip Differential ./...

# The equivalence proofs under the race detector: every workload's recorded
# trace analyzed by the serial and parallel engines, and monolithically vs
# in N chunk-aligned shards (internal/shard), across the paper's
# configuration sweeps, compared for deep equality. This is also the
# data-race audit of the fan-out worker pool and the shard pipeline.
differential:
	$(GO) test -race -run Differential ./...

# Short coverage-guided runs of the trace-reader, reader-equivalence,
# trace-splitter, speculative-equivalence and autosave-log-recovery fuzzers
# on top of their seed corpora. Minimization is bounded so the budget is
# spent fuzzing.
fuzz:
	$(GO) test ./internal/trace/ -run '^$$' -fuzz FuzzTraceReader \
		-fuzztime 10s -fuzzminimizetime 20x
	$(GO) test ./internal/trace/ -run '^$$' -fuzz FuzzReaderEquivalence \
		-fuzztime 10s -fuzzminimizetime 20x
	$(GO) test ./internal/shard/ -run '^$$' -fuzz FuzzSplitter \
		-fuzztime 10s -fuzzminimizetime 20x
	$(GO) test ./internal/shard/ -run '^$$' -fuzz FuzzSpeculativeEquivalence \
		-fuzztime 10s -fuzzminimizetime 20x
	$(GO) test ./cmd/specrun/ -run '^$$' -fuzz FuzzStoreRecovery \
		-fuzztime 10s -fuzzminimizetime 20x

# Serial-vs-parallel engine and sharded-analysis benchmarks, captured as
# JSON for regression tracking (see README "Performance").
bench:
	$(GO) test -run '^$$' -bench 'FanOut|SuiteEngines|ShardedAnalysis' -benchmem -json . \
		| tee BENCH_parallel.json
	$(GO) test -run '^$$' -bench 'HotPath|AnalyzerThroughput' -benchmem -json . \
		| tee BENCH_hotpath.json
	$(GO) test -run '^$$' -bench 'SpeculativeShards' -benchmem -json . \
		| tee BENCH_speculate.json
	$(GO) test -run '^$$' -bench 'BoundedReplay' -benchmem -json . \
		| tee BENCH_memory.json
	$(GO) test -run '^$$' -bench 'WindowSweep' -benchmem -json . \
		| tee BENCH_sweep.json

# The full verification gate: static checks, build, race-detector test run,
# the serial-vs-parallel differential battery, and a short fuzz of the
# trace reader.
check: vet build race differential fuzz
	@echo "check: OK"

clean:
	$(GO) clean ./...
