# Paragraph build/verify entry points. Everything is plain `go` underneath;
# the targets just fix the flags.

GO ?= go

.PHONY: all build vet test race differential fuzz bench check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector run of everything except the differential battery, which
# gets its own target below so `check` doesn't run it twice.
race:
	$(GO) test -race -skip Differential ./...

# The serial-vs-parallel equivalence proof under the race detector: every
# workload's recorded trace analyzed by both engines across the paper's
# configuration sweeps, compared for deep equality. This is the data-race
# audit of the fan-out worker pool.
differential:
	$(GO) test -race -run Differential ./...

# Short coverage-guided run of the trace-reader fuzzer on top of its seed
# corpus. Minimization is bounded so the 10s budget is spent fuzzing.
fuzz:
	$(GO) test ./internal/trace/ -run '^$$' -fuzz FuzzTraceReader \
		-fuzztime 10s -fuzzminimizetime 20x

# Serial-vs-parallel engine benchmarks, captured as JSON for regression
# tracking (see README "Performance").
bench:
	$(GO) test -run '^$$' -bench 'FanOut|SuiteEngines' -benchmem -json . \
		| tee BENCH_parallel.json

# The full verification gate: static checks, build, race-detector test run,
# the serial-vs-parallel differential battery, and a short fuzz of the
# trace reader.
check: vet build race differential fuzz
	@echo "check: OK"

clean:
	$(GO) clean ./...
