# Paragraph build/verify entry points. Everything is plain `go` underneath;
# the targets just fix the flags.

GO ?= go

.PHONY: all build vet test race fuzz check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short coverage-guided run of the trace-reader fuzzer on top of its seed
# corpus. Minimization is bounded so the 10s budget is spent fuzzing.
fuzz:
	$(GO) test ./internal/trace/ -run '^$$' -fuzz FuzzTraceReader \
		-fuzztime 10s -fuzzminimizetime 20x

# The full verification gate: static checks, build, race-detector test run,
# and a short fuzz of the trace reader.
check: vet build race fuzz
	@echo "check: OK"

clean:
	$(GO) clean ./...
