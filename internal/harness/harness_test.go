package harness

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"paragraph/internal/core"
	"paragraph/internal/workloads"
)

// suite returns a small shared suite; experiments that only need a few
// workloads slice it down to keep the test fast.
func suite(names ...string) *Suite {
	s := NewSuite(1)
	if len(names) > 0 {
		s.Workloads = nil
		for _, n := range names {
			w, ok := workloads.ByName(n)
			if !ok {
				panic("unknown workload " + n)
			}
			s.Workloads = append(s.Workloads, w)
		}
	}
	return s
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 8 {
		t.Fatalf("Table 1 has %d rows, want 8", len(rows))
	}
	want := map[string]int{
		"Integer ALU": 1, "Integer Multiply": 6, "Integer Division": 12,
		"Floating Point Add/Sub": 6, "Floating Point Multiply": 6,
		"Floating Point Division": 12, "Load/Store": 1, "System Calls": 1,
	}
	for _, r := range rows {
		if want[r.Class] != r.Steps {
			t.Errorf("%s = %d steps, want %d", r.Class, r.Steps, want[r.Class])
		}
	}
	var buf bytes.Buffer
	if err := RenderTable1(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Integer Division") {
		t.Errorf("render missing rows:\n%s", buf.String())
	}
}

func TestTable2Inventory(t *testing.T) {
	s := suite("xlispx", "naskerx")
	rows, err := s.Table2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Instructions == 0 {
			t.Errorf("%s traced 0 instructions", r.Name)
		}
		if !strings.HasPrefix(r.Output, r.Name) {
			t.Errorf("%s output %q", r.Name, r.Output)
		}
	}
	var buf bytes.Buffer
	if err := RenderTable2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "xlispx") {
		t.Errorf("render:\n%s", buf.String())
	}
}

// TestTable3Claims verifies the paper's headline Table-3 claims on a
// three-benchmark slice: the optimistic bound is at least the conservative
// one, the measurement error is small when system calls are rare, and the
// interpreter benchmark has by far the least parallelism.
func TestTable3Claims(t *testing.T) {
	s := suite("xlispx", "naskerx", "matrixx")
	rows, err := s.Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.OptAvailable < r.ConsAvailable-1e-9 {
			t.Errorf("%s: optimistic %.2f < conservative %.2f",
				r.Name, r.OptAvailable, r.ConsAvailable)
		}
		if r.MaxError < 0 || r.MaxError > 0.5 {
			t.Errorf("%s: error %.2f out of plausible range", r.Name, r.MaxError)
		}
		if r.Syscalls == 0 {
			t.Errorf("%s: no system calls seen", r.Name)
		}
	}
	if byName["xlispx"].ConsAvailable >= byName["naskerx"].ConsAvailable {
		t.Errorf("xlispx (%.1f) should be less parallel than naskerx (%.1f)",
			byName["xlispx"].ConsAvailable, byName["naskerx"].ConsAvailable)
	}
	if byName["matrixx"].ConsAvailable <= byName["naskerx"].ConsAvailable {
		t.Errorf("matrixx (%.1f) should dominate naskerx (%.1f)",
			byName["matrixx"].ConsAvailable, byName["naskerx"].ConsAvailable)
	}
	var buf bytes.Buffer
	if err := RenderTable3(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Max Error") {
		t.Errorf("render:\n%s", buf.String())
	}
}

// TestTable4Claims verifies the renaming story: monotonicity everywhere;
// matrixx needs stack renaming (its Regs->Regs/Stack jump is large);
// espressox needs memory renaming.
func TestTable4Claims(t *testing.T) {
	s := suite("matrixx", "espressox", "xlispx")
	rows, err := s.Table4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table4Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.NoRenaming > r.Regs+1e-9 || r.Regs > r.RegsStack+1e-9 || r.RegsStack > r.RegsMem+1e-9 {
			t.Errorf("%s: renaming columns not monotone: %+v", r.Name, r)
		}
		if r.NoRenaming > 5 {
			t.Errorf("%s: no-renaming parallelism %.2f implausibly high", r.Name, r.NoRenaming)
		}
	}
	if m := byName["matrixx"]; m.RegsStack < 10*m.Regs {
		t.Errorf("matrixx stack-renaming jump too small: regs %.1f -> stack %.1f", m.Regs, m.RegsStack)
	}
	if e := byName["espressox"]; e.RegsMem < 2*e.RegsStack {
		t.Errorf("espressox memory-renaming jump too small: stack %.1f -> mem %.1f", e.RegsStack, e.RegsMem)
	}
	if x := byName["xlispx"]; x.RegsMem > 2*x.Regs {
		t.Errorf("xlispx should stay flat under renaming: %+v", x)
	}
	var buf bytes.Buffer
	if err := RenderTable4(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

// TestFigure7Profiles checks profile integrity: mass equals operations and
// the profile spans the critical path.
func TestFigure7Profiles(t *testing.T) {
	s := suite("doducx", "xlispx")
	profiles, err := s.Figure7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profiles {
		if len(p.Profile) == 0 {
			t.Errorf("%s: empty profile", p.Name)
			continue
		}
		last := p.Profile[len(p.Profile)-1]
		if last.Level >= p.CriticalPath {
			t.Errorf("%s: profile bucket at %d beyond critical path %d",
				p.Name, last.Level, p.CriticalPath)
		}
		if p.PeakOps < p.Available {
			t.Errorf("%s: peak %.1f below average %.1f", p.Name, p.PeakOps, p.Available)
		}
	}
	var buf bytes.Buffer
	if err := RenderFigure7(&buf, profiles); err != nil {
		t.Fatal(err)
	}
	if err := WriteProfileCSV(&buf, profiles[0]); err != nil {
		t.Fatal(err)
	}
}

// TestFigure8Claims verifies the window-size story: percent exposed grows
// monotonically with window size, small windows expose only modest
// parallelism, and the full window reaches 100%.
func TestFigure8Claims(t *testing.T) {
	s := suite("matrixx", "xlispx")
	sizes := []int{1, 4, 16, 64, 256, 1024, 8192, 0}
	series, err := s.Figure8(context.Background(), sizes)
	if err != nil {
		t.Fatal(err)
	}
	for _, ser := range series {
		var prev float64
		for i, pt := range ser.Points {
			if pt.Window != 0 && pt.Percent < prev-1e-6 {
				t.Errorf("%s: window %d percent %.2f below previous %.2f",
					ser.Name, pt.Window, pt.Percent, prev)
			}
			prev = pt.Percent
			if pt.Window == 0 && (pt.Percent < 99.9 || pt.Percent > 100.1) {
				t.Errorf("%s: full window = %.2f%%", ser.Name, pt.Percent)
			}
			_ = i
		}
	}
	// The paper: "modest levels of parallelism ... can be obtained for
	// all benchmarks with window sizes as small as 100 instructions",
	// but the high-parallelism codes need very large windows.
	for _, ser := range series {
		if ser.Name != "matrixx" {
			continue
		}
		for _, pt := range ser.Points {
			if pt.Window == 64 && pt.Percent > 50 {
				t.Errorf("matrixx exposes %.1f%% at window 64; expected far less", pt.Percent)
			}
			if pt.Window == 64 && pt.Available < 3 {
				t.Errorf("matrixx at window 64 = %.2f ops/cycle; expected a useful amount", pt.Available)
			}
		}
	}
	var buf bytes.Buffer
	if err := RenderFigure8(&buf, series); err != nil {
		t.Fatal(err)
	}
	if err := WriteFigure8CSV(&buf, series); err != nil {
		t.Fatal(err)
	}
}

// TestFunctionalUnitsClaims: fewer units mean less parallelism; one unit
// means (at most) fully serial execution; the unlimited column matches the
// dataflow limit.
func TestFunctionalUnitsClaims(t *testing.T) {
	s := suite("naskerx")
	rows, err := s.FunctionalUnits(context.Background(), []int{1, 4, 16, 0})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	for i := 1; i < len(r.Avail); i++ {
		if r.Avail[i] < r.Avail[i-1]-1e-9 {
			t.Errorf("FU sweep not monotone: %v", r.Avail)
		}
	}
	if r.Avail[0] > 1+1e-9 {
		t.Errorf("1 FU yields parallelism %.2f > 1", r.Avail[0])
	}
	var buf bytes.Buffer
	if err := RenderFunctionalUnits(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

// TestLifetimesClaims: distributions are populated and self-consistent.
func TestLifetimesClaims(t *testing.T) {
	s := suite("doducx")
	rows, err := s.Lifetimes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Lifetimes.Count() == 0 || r.Sharing.Count() == 0 {
		t.Fatalf("empty distributions: %+v", r)
	}
	if r.Lifetimes.Max() < r.Lifetimes.Quantile(0.9) {
		t.Errorf("lifetime max %d < p90 %d", r.Lifetimes.Max(), r.Lifetimes.Quantile(0.9))
	}
	if r.MaxLiveMemory == 0 {
		t.Error("no live-memory footprint recorded")
	}
	var buf bytes.Buffer
	if err := RenderLifetimes(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

// TestAblationUnroll: unrolling shrinks the dynamic instruction count and
// does not reduce register-only parallelism (the paper's second-order
// compiler effect).
func TestAblationUnroll(t *testing.T) {
	s := suite()
	rows, err := s.AblationUnroll(context.Background(), "naskerx", []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[1].Instructions >= rows[0].Instructions {
		t.Errorf("unroll 4 executes %d instructions, plain %d; expected fewer",
			rows[1].Instructions, rows[0].Instructions)
	}
	if rows[1].AvailRegsOnly < rows[0].AvailRegsOnly*0.8 {
		t.Errorf("unrolling collapsed regs-only parallelism: %.2f -> %.2f",
			rows[0].AvailRegsOnly, rows[1].AvailRegsOnly)
	}
	var buf bytes.Buffer
	if err := RenderUnroll(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AblationUnroll(context.Background(), "nope", nil); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestSharedTraceConsistency: analyzing one simulated execution with two
// identical configs through AnalyzeMulti must give identical results.
func TestSharedTraceConsistency(t *testing.T) {
	s := suite()
	w, _ := workloads.ByName("xlispx")
	cfg := core.Dataflow(core.SyscallConservative)
	cfg.Profile = false
	rs, err := s.AnalyzeMulti(context.Background(), w, []core.Config{cfg, cfg})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].CriticalPath != rs[1].CriticalPath || rs[0].Operations != rs[1].Operations {
		t.Errorf("identical configs disagree: %v vs %v", rs[0], rs[1])
	}
}

// TestMaxInstrBudget: the suite's trace cap applies.
func TestMaxInstrBudget(t *testing.T) {
	s := suite("cc1x")
	s.MaxInstr = 20_000
	rows, err := s.Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Instructions analyzed should equal the cap (cc1x runs longer).
	r, err := s.Analyze(context.Background(), s.Workloads[0], core.Dataflow(core.SyscallConservative))
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != 20_000 {
		t.Errorf("analyzed %d instructions, want 20,000", r.Instructions)
	}
	_ = rows
}

// TestBranchPredictionClaims (E10): better prediction exposes more
// parallelism, stall mispredicts everything, perfect mispredicts nothing —
// quantifying the paper's closing observation that available predictors
// "are not accurate enough to expose even hundreds of instructions".
func TestBranchPredictionClaims(t *testing.T) {
	s := suite("xlispx", "matrixx")
	rows, err := s.BranchPrediction(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Avail) != 4 {
			t.Fatalf("%s: %d policies", r.Name, len(r.Avail))
		}
		stall, twoBit, perfect := r.Avail[0], r.Avail[2], r.Avail[3]
		if stall > twoBit+1e-9 || twoBit > perfect+1e-9 {
			t.Errorf("%s: policies not monotone: %v", r.Name, r.Avail)
		}
		if r.MissRate[0] != 1.0 {
			t.Errorf("%s: stall miss rate = %v, want 1", r.Name, r.MissRate[0])
		}
		if r.MissRate[3] != 0 {
			t.Errorf("%s: perfect miss rate = %v, want 0", r.Name, r.MissRate[3])
		}
		// The paper's point: real prediction reaches only a fraction of
		// the dataflow limit for high-parallelism codes.
		if r.Name == "matrixx" && twoBit > perfect/2 {
			t.Errorf("matrixx: two-bit (%.1f) suspiciously close to perfect (%.1f)", twoBit, perfect)
		}
	}
	var buf bytes.Buffer
	if err := RenderBranches(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "two-bit") {
		t.Errorf("render:\n%s", buf.String())
	}
}

// TestParallelExperimentsDeterministic: running an experiment with
// concurrent workloads produces exactly the serial rows, in order.
func TestParallelExperimentsDeterministic(t *testing.T) {
	serial := suite("xlispx", "naskerx", "matrixx")
	serial.Parallelism = 1
	par := suite("xlispx", "naskerx", "matrixx")
	par.Parallelism = 4

	s3, err := serial.Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p3, err := par.Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(s3) != len(p3) {
		t.Fatalf("row counts differ: %d vs %d", len(s3), len(p3))
	}
	for i := range s3 {
		if s3[i] != p3[i] {
			t.Errorf("row %d differs: serial %+v, parallel %+v", i, s3[i], p3[i])
		}
	}
}
