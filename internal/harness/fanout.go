package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"paragraph/internal/core"
	"paragraph/internal/trace"
)

// FanOut analyzes one recorded trace under every configuration, fanning the
// replay out to a bounded pool of worker goroutines. The trace is decoded
// (or simulated) exactly once — into the EventBuffer — no matter how many
// configurations consume it. Results come back indexed by configuration, so
// ordering is deterministic regardless of worker scheduling; each analyzer
// is built from its own core.Config clone and replays the buffer privately,
// so workers share no mutable state (see DESIGN.md on the live well).
//
// concurrency bounds the pool: 0 selects runtime.GOMAXPROCS, 1 analyzes
// serially on the calling goroutine. The first failing configuration (by
// index, not by completion order) decides the returned error; a panicking
// analyzer is contained and reported as that configuration's error.
//
// Cancelling ctx stops every in-flight replay within trace.CtxCheckEvery
// events and stops handing out further configurations; all workers drain
// before FanOut returns, so no goroutines outlive the call.
//
// FanOut is the primitive every multi-configuration experiment driver in
// this package is built on; it is exported so trace-file tools
// (cmd/paragraph) can reuse it for sweeps over stored traces.
func FanOut(ctx context.Context, buf *trace.EventBuffer, cfgs []core.Config, concurrency int) ([]*core.Result, error) {
	return fanOut(ctx, buf, cfgs, concurrency)
}

// fanOut implements FanOut. A deadline on ctx (Suite.WorkloadTimeout) covers
// analysis as well as simulation; its expiry is reported as
// ErrWorkloadTimeout with context.DeadlineExceeded still in the chain.
func fanOut(ctx context.Context, buf *trace.EventBuffer, cfgs []core.Config, concurrency int) ([]*core.Result, error) {
	workers := concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]*core.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	analyzeOne := func(i int) (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = fmt.Errorf("panic: %v", v)
			}
		}()
		a := core.NewAnalyzer(cfgs[i])
		// The analyzer is a trusted BatchSink: batch replay shares the
		// recording read-only instead of copying every event.
		if err := buf.ReplayBatches(ctx, a); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return fmt.Errorf("%w: %w", ErrWorkloadTimeout, err)
			}
			return err
		}
		r, err := a.Finish()
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	}
	if workers <= 1 {
		for i := range cfgs {
			errs[i] = analyzeOne(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					errs[i] = analyzeOne(i)
				}
			}()
		}
		// Feed configurations until done or cancelled; once the context
		// falls, remaining configurations fail immediately with the
		// cancellation instead of waiting for a worker slot.
		done := ctx.Done()
	feed:
		for i := range cfgs {
			select {
			case idx <- i:
			case <-done:
				for j := i; j < len(cfgs); j++ {
					errs[j] = ctxError(ctx.Err(), 0)
				}
				break feed
			}
		}
		close(idx)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
	}
	return results, nil
}
