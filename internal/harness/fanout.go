package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"paragraph/internal/core"
	"paragraph/internal/trace"
)

// FanOut analyzes one recorded trace under every configuration, fanning the
// replay out to a bounded pool of worker goroutines. The trace is decoded
// (or simulated) exactly once — into the EventBuffer — no matter how many
// configurations consume it. Results come back indexed by configuration, so
// ordering is deterministic regardless of worker scheduling; each analyzer
// is built from its own core.Config clone and replays the buffer privately,
// so workers share no mutable state (see DESIGN.md on the live well).
//
// concurrency bounds the pool: 0 selects runtime.GOMAXPROCS, 1 analyzes
// serially on the calling goroutine. The first failing configuration (by
// index, not by completion order) decides the returned error; a panicking
// analyzer is contained and reported as that configuration's error.
//
// FanOut is the primitive every multi-configuration experiment driver in
// this package is built on; it is exported so trace-file tools
// (cmd/paragraph) can reuse it for sweeps over stored traces.
func FanOut(buf *trace.EventBuffer, cfgs []core.Config, concurrency int) ([]*core.Result, error) {
	return fanOut(buf, cfgs, concurrency, time.Time{})
}

// fanOut is FanOut with a wall-clock deadline: when nonzero, each worker's
// replay runs under a watchdog so Suite.WorkloadTimeout covers analysis as
// well as simulation.
func fanOut(buf *trace.EventBuffer, cfgs []core.Config, concurrency int, deadline time.Time) ([]*core.Result, error) {
	workers := concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]*core.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	analyzeOne := func(i int) (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = fmt.Errorf("panic: %v", v)
			}
		}()
		a := core.NewAnalyzer(cfgs[i])
		var sink trace.Sink = a
		if !deadline.IsZero() {
			sink = &watchdog{inner: a, deadline: deadline}
		}
		if err := buf.Replay(sink); err != nil {
			return err
		}
		r, err := a.Finish()
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	}
	if workers <= 1 {
		for i := range cfgs {
			errs[i] = analyzeOne(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					errs[i] = analyzeOne(i)
				}
			}()
		}
		for i := range cfgs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
	}
	return results, nil
}
