package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"paragraph/internal/budget"
	"paragraph/internal/core"
	"paragraph/internal/trace"
	"paragraph/internal/workloads"
)

// EngineKind selects how AnalyzeMulti runs a multi-configuration analysis.
type EngineKind int

const (
	// EngineAuto picks for the machine: streaming with one configuration
	// or one effective worker, otherwise the bounded ring.
	EngineAuto EngineKind = iota
	// EngineStreaming is the serial reference engine: one simulation pass
	// feeds every analyzer in lockstep through trace.Tee.
	EngineStreaming
	// EngineBuffered is the legacy parallel engine: the whole trace is
	// recorded into a trace.EventBuffer, then fanned out to a worker pool.
	// Memory is proportional to trace length; kept for the differential
	// battery and for callers that replay a recording many times.
	EngineBuffered
	// EngineRing is the bounded parallel engine: production and analysis
	// overlap through a trace.Ring, one consumer goroutine per
	// configuration, with backpressure on the producer. Memory is a
	// function of configuration, not trace length.
	EngineRing
	// EngineResolved is the shared-extraction engine: one config-invariant
	// DependenceResolver per rename group consumes the stream once and
	// broadcasts compact dependence-record segments through a bounded ring
	// to one cheap Scheduler per configuration (see FanOutResolved). An
	// 8-config window sweep costs 1× resolution + 8× scheduling instead of
	// 8× full analysis.
	EngineResolved
)

func (k EngineKind) String() string {
	switch k {
	case EngineAuto:
		return "auto"
	case EngineStreaming:
		return "streaming"
	case EngineBuffered:
		return "buffered"
	case EngineRing:
		return "ring"
	case EngineResolved:
		return "resolved"
	}
	return fmt.Sprintf("engine(%d)", int(k))
}

// FanOutStream analyzes one event stream under every configuration while
// the stream is being produced: produce writes events into a bounded
// trace.Ring (implementing trace.Sink/BatchSink) and one consumer
// goroutine per configuration replays them concurrently. Unlike FanOut,
// nothing proportional to trace length is ever held — the ring is
// `batches` slots of trace.DefaultBatchEvents events (0 selects
// trace.DefaultRingBatches), and the producer blocks when the slowest
// analyzer falls a full ring behind.
//
// produce must end the stream by returning (a nil error is a clean end);
// FanOutStream calls CloseSend itself. The ring's ReadStats — set by the
// producer via SetStats, mirroring ReadAll — are returned alongside the
// results so degraded-read skip accounting survives the streaming engine.
//
// Error semantics match FanOut: the lowest-index failing configuration
// decides the error (prefixed "config %d:"), a deadline expiry surfaces as
// ErrWorkloadTimeout, and a panicking producer or analyzer is contained as
// an error. A producer failure is reported once, as itself, not once per
// configuration. All goroutines drain before FanOutStream returns.
func FanOutStream(ctx context.Context, produce func(*trace.Ring) error, cfgs []core.Config, batches int) ([]*core.Result, trace.ReadStats, error) {
	if len(cfgs) == 0 {
		return nil, trace.ReadStats{}, nil
	}
	// A private cancel wakes a producer that still has events but no
	// audience left (every consumer failed and closed); the ring's
	// ErrRingDrained covers most such exits, but a producer parked in its
	// own non-ring work needs the context signal too.
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ring := trace.NewRing(rctx, len(cfgs), trace.RingOptions{Batches: batches})

	prodCh := make(chan error, 1)
	go func() {
		err := func() (err error) {
			defer func() {
				if v := recover(); v != nil {
					err = fmt.Errorf("producer panic: %v", v)
				}
			}()
			return produce(ring)
		}()
		ring.CloseSend(err)
		prodCh <- err
	}()

	results := make([]*core.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = analyzeRingOne(ring, i, cfgs[i], results)
		}(i)
	}
	wg.Wait()
	cancel()
	perr := <-prodCh
	stats := ring.Stats()

	// Lowest-index consumer failure that is the consumer's own — echoes of
	// the producer's failure (RingProducerError) don't count, so a broken
	// simulation is reported once rather than len(cfgs) times.
	firstIdx, firstErr := -1, error(nil)
	for i, err := range errs {
		if err == nil {
			continue
		}
		var echo *trace.RingProducerError
		if errors.As(err, &echo) {
			continue
		}
		firstIdx, firstErr = i, err
		break
	}
	if perr != nil {
		if errors.Is(perr, trace.ErrRingDrained) {
			// Consumers left first; their errors explain why.
			perr = nil
		} else if ctx.Err() == nil && errors.Is(perr, context.Canceled) {
			// Our own post-consumer cancel, not the caller's.
			perr = nil
		}
	}
	switch {
	case firstErr != nil && ctx.Err() != nil:
		// Under the caller's cancellation/deadline every side fails; the
		// lowest-index configuration decides, matching FanOut.
		return nil, stats, fmt.Errorf("config %d: %w", firstIdx, firstErr)
	case perr != nil:
		return nil, stats, perr
	case firstErr != nil:
		return nil, stats, fmt.Errorf("config %d: %w", firstIdx, firstErr)
	}
	return results, stats, nil
}

// analyzeRingOne drains one ring consumer into one analyzer.
func analyzeRingOne(ring *trace.Ring, i int, cfg core.Config, results []*core.Result) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("panic: %v", v)
		}
	}()
	c := ring.Consumer(i)
	defer c.Close()
	a := core.NewAnalyzer(cfg)
	for {
		batch, rerr := c.Next()
		if rerr != nil {
			if rerr == io.EOF {
				break
			}
			if errors.Is(rerr, context.DeadlineExceeded) {
				return fmt.Errorf("%w: %w", ErrWorkloadTimeout, rerr)
			}
			return rerr
		}
		if len(batch) == 0 {
			continue
		}
		// The analyzer is a trusted BatchSink: the slice aliases the ring
		// slot and is valid only until the next Next call.
		if aerr := a.Events(batch); aerr != nil {
			return aerr
		}
	}
	r, ferr := a.Finish()
	if ferr != nil {
		return ferr
	}
	results[i] = r
	return nil
}

// analyzeRing is AnalyzeMulti's bounded engine: the workload simulates
// into a ring under backpressure while every configuration analyzes
// concurrently. memBudget is this workload's effective budget (already
// folded with any Pool share); the ring may spend at most half of it, the
// analyzers' governed working sets get the rest. A budget too small for
// even a minimum ring falls back by policy: Degrade re-runs on the
// streaming engine and marks EngineDowngraded (the same downgrade the
// buffered engine takes when the recording outgrows the budget), FailFast
// returns a structured budget error, WarnOnly proceeds with the minimum
// ring.
func (s *Suite) analyzeRing(wctx context.Context, w *workloads.Workload, cfgs []core.Config, memBudget int64) ([]*core.Result, error) {
	batches := s.RingBatches
	if batches <= 0 {
		batches = trace.DefaultRingBatches
	}
	if memBudget > 0 {
		limit := memBudget / 2
		if fit := int(limit / trace.RingFootprint(1, 0)); fit < batches {
			batches = fit
		}
		if batches < trace.MinRingBatches {
			switch s.BudgetPolicy {
			case budget.Degrade:
				results, err := s.analyzeStreaming(wctx, w, cfgs)
				if err != nil {
					return nil, err
				}
				for _, r := range results {
					if r.Governor != nil {
						r.Governor.EngineDowngraded = true
					}
				}
				return results, nil
			case budget.FailFast:
				return nil, &budget.Error{
					Resource:   budget.EventBuffer,
					UsageBytes: trace.RingFootprint(trace.MinRingBatches, 0),
					LimitBytes: limit,
				}
			default: // WarnOnly: run anyway at the floor.
				batches = trace.MinRingBatches
			}
		}
	}
	produce := func(ring *trace.Ring) error {
		_, err := w.Run(s.Scale, s.options(), guardSink(wctx, ring), s.MaxInstr)
		return err
	}
	results, _, err := FanOutStream(wctx, produce, cfgs, batches)
	return results, err
}
