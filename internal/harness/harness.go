// Package harness reruns the paper's evaluation: it wires workloads
// (package workloads) through the CPU tracer (package cpu) into the
// Paragraph analyzer (package core) and reshapes the results into the rows
// and series of the paper's Tables 2-4 and Figures 7-8, plus the extension
// experiments documented in DESIGN.md (functional-unit limits, lifetime and
// sharing distributions, and the loop-unrolling ablation).
//
// One simulated execution can feed any number of analyzer configurations
// simultaneously. The default parallel engine streams the simulation
// through a bounded trace.Ring into one analyzer goroutine per
// configuration (FanOutStream), so a whole renaming or window sweep costs
// a single simulation pass per workload, runs on every core, and holds
// memory proportional to configuration rather than trace length. The
// legacy buffered engine (record into a trace.EventBuffer, then FanOut to
// a worker pool) remains selectable via Suite.Engine. With Concurrency 1
// the suite instead streams events to all analyzers in lockstep during the
// simulation itself (trace.Tee) — the serial reference engine the
// differential tests compare both parallel engines against.
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"paragraph/internal/budget"
	"paragraph/internal/core"
	"paragraph/internal/minic"
	"paragraph/internal/stats"
	"paragraph/internal/trace"
	"paragraph/internal/workloads"
)

// Suite fixes the run parameters shared by every experiment.
type Suite struct {
	// Scale multiplies workload sizes; 1 is the test-friendly default.
	Scale int
	// MaxInstr caps the analyzed trace length per run, mirroring the
	// paper's 100M-instruction budget. 0 means run to completion.
	MaxInstr uint64
	// Unroll passes a loop-unrolling factor to the MiniC compiler
	// (used by the E7 ablation; 0 disables).
	Unroll int
	// Workloads lists the benchmarks to run; defaults to all ten.
	Workloads []*workloads.Workload
	// Parallelism bounds how many workloads run concurrently within one
	// experiment; 0 selects GOMAXPROCS. Every workload's simulation and
	// analysis is independent, so experiments parallelize perfectly.
	Parallelism int
	// Concurrency bounds how many analyzer configurations run concurrently
	// over one workload's recorded trace (the per-config fan-out inside
	// AnalyzeMulti); 0 selects GOMAXPROCS. With Concurrency 1 the suite
	// uses the serial reference engine instead: events stream to every
	// analyzer in lockstep during the simulation, nothing is buffered.
	// Both engines produce deeply-equal Results for the same inputs (the
	// differential tests enforce this).
	Concurrency int
	// ContinueOnError keeps an experiment going when a workload fails:
	// the remaining workloads still run, the failed row reports its error,
	// and the experiment returns a *SuiteError listing every failure
	// alongside the partial results. When false (the default), the first
	// failure aborts the experiment. In both modes a panicking workload is
	// contained: it is recovered and reported as that workload's error,
	// never unwound through the caller.
	ContinueOnError bool
	// WorkloadTimeout bounds each workload's simulate+analyze wall-clock
	// time; a workload over budget fails with ErrWorkloadTimeout (with
	// context.DeadlineExceeded still in the error chain). 0 means no
	// limit. The timeout is implemented as a per-workload context
	// deadline, so it composes with whatever context the caller passes to
	// the experiment methods.
	WorkloadTimeout time.Duration
	// MemBudget bounds each analyzer's working set and, in the buffered
	// engine, the recorded trace buffer, in estimated bytes; 0 disables
	// governance (see core.Config.MemBudget). When the trace buffer
	// itself would exceed the budget under the Degrade policy, the suite
	// falls back to the streaming engine for that workload and records
	// the downgrade in every result's GovernorStats.
	MemBudget int64
	// BudgetPolicy selects the over-budget response (see
	// core.Config.BudgetPolicy). Ignored when MemBudget is 0.
	BudgetPolicy budget.Policy
	// GlobalMemBudget divides one budget across every workload running
	// concurrently within an experiment, via a budget.Pool: each admitted
	// workload analyzes under its share (folded with MemBudget, smaller
	// wins), shares re-expand as workloads finish, and effective
	// Parallelism shrinks before any share drops below budget.MinShare. 0
	// disables pooling; MemBudget then applies per workload as before.
	GlobalMemBudget int64
	// Engine selects the multi-configuration analysis engine; EngineAuto
	// (the zero value) picks the bounded ring for parallel runs and
	// streaming when only one configuration or worker is effective.
	Engine EngineKind
	// RingBatches overrides the ring engine's depth in batches of
	// trace.DefaultBatchEvents events; 0 selects trace.DefaultRingBatches.
	RingBatches int
	// OnRow, when set, is called by the experiment drivers as each
	// workload's result row completes, with the workload's index and name
	// and the finished row value — the per-row autosave hook. It may be
	// called concurrently from workload goroutines and must be safe for
	// that; failed workloads produce no call.
	OnRow func(index int, workload string, row any)
}

// NewSuite returns the default suite: all ten analogues at the given scale.
func NewSuite(scale int) *Suite {
	if scale < 1 {
		scale = 1
	}
	return &Suite{Scale: scale, Workloads: workloads.All()}
}

func (s *Suite) options() minic.Options {
	return minic.Options{Unroll: s.Unroll}
}

// forEachWorkload runs fn once per suite workload, concurrently up to the
// suite's parallelism bound, preserving result order. Each invocation runs
// under panic recovery, so one broken workload cannot take down the
// experiment. Without ContinueOnError the lowest-indexed failure is
// returned (as a *WorkloadError) and no further workloads are launched once
// a failure is observed — in serial and parallel mode alike; with it, every
// workload runs and all failures are aggregated into a *SuiteError.
//
// fn receives a per-workload context. Under GlobalMemBudget it carries the
// workload's byte share of the pooled budget (budget.WithShare), which
// AnalyzeMulti folds into its effective MemBudget; the pool may also
// shrink the effective parallelism so no share drops below
// budget.MinShare, and shares re-expand as workloads finish.
//
// Cancelling ctx stops launching new workloads in either mode — a
// cancellation is user intent, which ContinueOnError does not override —
// and the workloads already in flight abort promptly through their guards.
func (s *Suite) forEachWorkload(ctx context.Context, fn func(ctx context.Context, i int, w *workloads.Workload) error) error {
	limit := s.Parallelism
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if limit > len(s.Workloads) {
		limit = len(s.Workloads)
	}
	var pool *budget.Pool
	if s.GlobalMemBudget > 0 {
		pool = budget.NewPool(s.GlobalMemBudget, limit)
		if p := pool.Parallelism(); p < limit {
			limit = p
		}
	}
	var completed atomic.Int64
	run := func(i int, w *workloads.Workload) (werr *WorkloadError) {
		defer func() {
			if v := recover(); v != nil {
				werr = &WorkloadError{Index: i, Workload: w.Name,
					Err: fmt.Errorf("%v", v), Panicked: true}
			}
		}()
		defer completed.Add(1)
		wctx := ctx
		if pool != nil {
			remaining := len(s.Workloads) - int(completed.Load())
			if remaining < 1 {
				remaining = 1
			}
			share, release := pool.Acquire(remaining)
			defer release()
			wctx = budget.WithShare(ctx, share)
		}
		if err := fn(wctx, i, w); err != nil {
			return &WorkloadError{Index: i, Workload: w.Name, Err: err}
		}
		return nil
	}
	failures := make([]*WorkloadError, len(s.Workloads))
	if limit <= 1 {
		for i, w := range s.Workloads {
			if ctx.Err() != nil {
				break
			}
			failures[i] = run(i, w)
			if failures[i] != nil && !s.ContinueOnError {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		var failed atomic.Bool
		sem := make(chan struct{}, limit)
		for i, w := range s.Workloads {
			if ctx.Err() != nil {
				break
			}
			if !s.ContinueOnError && failed.Load() {
				// Fail-fast: a failure has been observed, so stop
				// launching. Workloads already in flight complete, and
				// because launches happen in index order, the
				// lowest-indexed failure — the one reported — is always
				// among them.
				break
			}
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				failures[i] = run(i, w)
				if failures[i] != nil {
					failed.Store(true)
				}
			}()
		}
		wg.Wait()
	}
	var collected []*WorkloadError
	for _, f := range failures {
		if f != nil {
			collected = append(collected, f)
		}
	}
	if len(collected) == 0 {
		if err := ctx.Err(); err != nil {
			// Cancelled before any workload could fail (e.g. between
			// launches): surface the cancellation itself.
			return fmt.Errorf("harness: experiment canceled: %w", err)
		}
		return nil
	}
	if !s.ContinueOnError {
		return collected[0]
	}
	return &SuiteError{Total: len(s.Workloads), Failures: collected}
}

// applyBudget stamps a memory budget onto every configuration that does
// not already carry its own.
func (s *Suite) applyBudget(cfgs []core.Config, memBudget int64) []core.Config {
	if memBudget <= 0 {
		return cfgs
	}
	out := make([]core.Config, len(cfgs))
	for i, c := range cfgs {
		if c.MemBudget == 0 {
			c.MemBudget = memBudget
			c.BudgetPolicy = s.BudgetPolicy
		}
		out[i] = c
	}
	return out
}

// effectiveMemBudget folds the suite's per-workload MemBudget with the
// budget.Pool share carried by a forEachWorkload context, the smaller
// winning — a workload never analyzes under more memory than its slice of
// the global budget allows.
func (s *Suite) effectiveMemBudget(ctx context.Context) int64 {
	b := s.MemBudget
	if share, ok := budget.ShareFromContext(ctx); ok && share > 0 {
		if b <= 0 || share < b {
			b = share
		}
	}
	return b
}

// emitRow hands a completed result row to the OnRow autosave hook.
func (s *Suite) emitRow(i int, workload string, row any) {
	if s.OnRow != nil {
		s.OnRow(i, workload, row)
	}
}

// errEngineDowngrade aborts trace recording when the buffer outgrows the
// memory budget under the Degrade policy; AnalyzeMulti catches it and falls
// back to the streaming engine, which buffers nothing.
var errEngineDowngrade = errors.New("harness: trace buffer over memory budget")

// bufferMeter is a trace.Sink wrapper that meters the recorded buffer's
// bytes against the suite's memory budget every budget.CheckEvery events.
type bufferMeter struct {
	buf    *trace.EventBuffer
	limit  int64
	policy budget.Policy
	n      uint64
}

// Event implements trace.Sink.
func (m *bufferMeter) Event(e *trace.Event) error {
	if err := m.buf.Event(e); err != nil {
		return err
	}
	m.n++
	if m.n%budget.CheckEvery == 0 {
		if b := m.buf.Bytes(); b > m.limit {
			switch m.policy {
			case budget.FailFast:
				return &budget.Error{Resource: budget.EventBuffer, UsageBytes: b, LimitBytes: m.limit}
			case budget.Degrade:
				return errEngineDowngrade
			}
			// WarnOnly: keep recording; the analyzers' own governors
			// still meter their working sets.
		}
	}
	return nil
}

// AnalyzeMulti executes one workload once and runs every analyzer
// configuration over the same trace. With more than one configuration and
// more than one effective worker (Concurrency, or GOMAXPROCS when it is 0),
// the simulation streams through a bounded trace.Ring into one analyzer
// goroutine per configuration (see FanOutStream) — memory stays a function
// of configuration, not trace length; otherwise events stream to the
// analyzers in lockstep as they are produced. Suite.Engine can pin the
// legacy buffered engine (record into a trace.EventBuffer, then FanOut)
// instead. All engines return deeply-equal Results indexed by
// configuration; the differential battery enforces it.
//
// Cancelling ctx aborts simulation and analysis within one guard stride
// (guardEvery events); Suite.WorkloadTimeout expiry surfaces as
// ErrWorkloadTimeout with context.DeadlineExceeded in the chain. The
// workload's effective memory budget is MemBudget folded with any
// budget.Pool share on ctx (smaller wins). Under the Degrade policy, an
// engine whose fixed overhead cannot fit the budget — the buffered
// engine's growing recording, or a ring smaller than trace.MinRingBatches
// — re-simulates the workload on the streaming engine instead, marking
// EngineDowngraded in every result's GovernorStats.
func (s *Suite) AnalyzeMulti(ctx context.Context, w *workloads.Workload, cfgs []core.Config) ([]*core.Result, error) {
	memBudget := s.effectiveMemBudget(ctx)
	cfgs = s.applyBudget(cfgs, memBudget)
	wctx, cancel := s.workloadContext(ctx)
	defer cancel()
	workers := s.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	engine := s.Engine
	if engine == EngineAuto {
		// When configs share a rename group — a window, FU or branch
		// sweep — the resolved engine pays the expensive extraction once
		// per group. That win is algorithmic, not parallel, so it applies
		// even with one effective worker: FanOutResolved schedules inline
		// on single-CPU runtimes instead of spinning up a ring. With one
		// configuration, or distinct groups and no concurrency to exploit,
		// stream events straight into the analyzers; otherwise the event
		// ring fans raw events out.
		switch {
		case len(cfgs) == 1:
			engine = EngineStreaming
		case len(resolveGroups(cfgs)) < len(cfgs):
			engine = EngineResolved
		case workers <= 1:
			engine = EngineStreaming
		default:
			engine = EngineRing
		}
	}
	switch engine {
	case EngineStreaming:
		return s.analyzeStreaming(wctx, w, cfgs)
	case EngineBuffered:
		return s.analyzeBuffered(wctx, w, cfgs, memBudget)
	case EngineResolved:
		return s.analyzeResolved(wctx, w, cfgs, memBudget)
	default:
		return s.analyzeRing(wctx, w, cfgs, memBudget)
	}
}

// analyzeBuffered is the legacy parallel engine: record the whole trace
// into an EventBuffer during the simulation pass, then fan it out to a
// bounded worker pool. Memory is proportional to trace length, metered
// against memBudget while recording.
func (s *Suite) analyzeBuffered(wctx context.Context, w *workloads.Workload, cfgs []core.Config, memBudget int64) ([]*core.Result, error) {
	buf := &trace.EventBuffer{}
	var sink trace.Sink = buf
	if memBudget > 0 {
		sink = &bufferMeter{buf: buf, limit: memBudget, policy: s.BudgetPolicy}
	}
	if _, err := w.Run(s.Scale, s.options(), guardSink(wctx, sink), s.MaxInstr); err != nil {
		if errors.Is(err, errEngineDowngrade) {
			// The recorded trace would blow the budget: drop the partial
			// buffer, re-simulate on the streaming engine (which holds no
			// buffer at all), and record the downgrade.
			results, serr := s.analyzeStreaming(wctx, w, cfgs)
			if serr != nil {
				return nil, serr
			}
			for _, r := range results {
				if r.Governor != nil {
					r.Governor.EngineDowngraded = true
				}
			}
			return results, nil
		}
		return nil, err
	}
	return fanOut(wctx, buf, cfgs, s.Concurrency)
}

// analyzeStreaming is the serial engine: one simulation pass feeds every
// analyzer in lockstep through trace.Tee, with no intermediate buffer.
func (s *Suite) analyzeStreaming(ctx context.Context, w *workloads.Workload, cfgs []core.Config) ([]*core.Result, error) {
	analyzers := make([]*core.Analyzer, len(cfgs))
	sinks := make([]trace.Sink, len(cfgs))
	for i, cfg := range cfgs {
		analyzers[i] = core.NewAnalyzer(cfg)
		sinks[i] = analyzers[i]
	}
	sink := guardSink(ctx, trace.Tee(sinks...))
	if _, err := w.Run(s.Scale, s.options(), sink, s.MaxInstr); err != nil {
		return nil, err
	}
	results := make([]*core.Result, len(cfgs))
	for i, a := range analyzers {
		r, err := a.Finish()
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
		results[i] = r
	}
	return results, nil
}

// Analyze runs a single configuration.
func (s *Suite) Analyze(ctx context.Context, w *workloads.Workload, cfg core.Config) (*core.Result, error) {
	rs, err := s.AnalyzeMulti(ctx, w, []core.Config{cfg})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// Table2Row is one row of the paper's Table 2 (benchmark inventory).
type Table2Row struct {
	Name         string
	Original     string
	Language     string
	BenchType    string
	Instructions uint64
	Output       string
	// Err is the workload's failure, when it has one; the rest of the row
	// is then meaningless. Only populated under ContinueOnError.
	Err string
}

// Table2 runs every workload (without analysis) and reports the inventory.
func (s *Suite) Table2(ctx context.Context) ([]Table2Row, error) {
	rows := make([]Table2Row, len(s.Workloads))
	err := s.forEachWorkload(ctx, func(ctx context.Context, i int, w *workloads.Workload) error {
		wctx, cancel := s.workloadContext(ctx)
		defer cancel()
		res, err := w.Run(s.Scale, s.options(), guardSink(wctx, nil), s.MaxInstr)
		if err != nil {
			return err
		}
		rows[i] = Table2Row{
			Name:         w.Name,
			Original:     w.Original,
			Language:     w.Language,
			BenchType:    w.BenchType,
			Instructions: res.Instructions,
			Output:       res.Output,
		}
		s.emitRow(i, w.Name, rows[i])
		return nil
	})
	markFailures(err, func(i int, msg string) {
		rows[i].Name = s.Workloads[i].Name
		rows[i].Original = s.Workloads[i].Original
		rows[i].Err = msg
	})
	return rows, err
}

// Table3Row is one row of the paper's Table 3 (dataflow limit under the
// two system-call assumptions).
type Table3Row struct {
	Name             string
	Syscalls         uint64
	ConsCriticalPath int64
	ConsAvailable    float64
	OptCriticalPath  int64
	OptAvailable     float64
	// MaxError is the paper's "Maximum Measurement Error":
	// (optimistic - conservative) / optimistic.
	MaxError float64
	// Err is the workload's failure, when it has one; the metric columns
	// are then meaningless. Only populated under ContinueOnError.
	Err string
}

// Table3 reproduces Table 3: full renaming, unlimited window and
// functional units, conservative vs optimistic system calls.
func (s *Suite) Table3(ctx context.Context) ([]Table3Row, error) {
	cfgs := []core.Config{
		core.Dataflow(core.SyscallConservative),
		core.Dataflow(core.SyscallOptimistic),
	}
	// The profile is not needed for the table itself.
	cfgs[0].Profile = false
	cfgs[1].Profile = false
	rows := make([]Table3Row, len(s.Workloads))
	err := s.forEachWorkload(ctx, func(ctx context.Context, i int, w *workloads.Workload) error {
		rs, err := s.AnalyzeMulti(ctx, w, cfgs)
		if err != nil {
			return err
		}
		cons, opt := rs[0], rs[1]
		row := Table3Row{
			Name:             w.Name,
			Syscalls:         cons.Syscalls,
			ConsCriticalPath: cons.CriticalPath,
			ConsAvailable:    cons.Available,
			OptCriticalPath:  opt.CriticalPath,
			OptAvailable:     opt.Available,
		}
		if opt.Available > 0 {
			row.MaxError = (opt.Available - cons.Available) / opt.Available
		}
		rows[i] = row
		s.emitRow(i, w.Name, rows[i])
		return nil
	})
	markFailures(err, func(i int, msg string) {
		rows[i].Name = s.Workloads[i].Name
		rows[i].Err = msg
	})
	return rows, err
}

// ProfileResult is one benchmark's Figure-7 parallelism profile.
type ProfileResult struct {
	Name         string
	Profile      []stats.ProfilePoint
	BucketWidth  int64
	CriticalPath int64
	Available    float64
	PeakOps      float64
}

// Figure7 reproduces the parallelism profiles: conservative system calls,
// full renaming, whole-trace window.
func (s *Suite) Figure7(ctx context.Context) ([]ProfileResult, error) {
	out := make([]ProfileResult, len(s.Workloads))
	err := s.forEachWorkload(ctx, func(ctx context.Context, i int, w *workloads.Workload) error {
		cfg := core.Dataflow(core.SyscallConservative)
		r, err := s.Analyze(ctx, w, cfg)
		if err != nil {
			return err
		}
		out[i] = ProfileResult{
			Name:         w.Name,
			Profile:      r.Profile,
			BucketWidth:  r.ProfileBucketWidth,
			CriticalPath: r.CriticalPath,
			Available:    r.Available,
			PeakOps:      r.PeakOps,
		}
		s.emitRow(i, w.Name, out[i])
		return nil
	})
	return out, err
}

// Table4Row is one row of the paper's Table 4 (renaming conditions).
type Table4Row struct {
	Name       string
	NoRenaming float64
	Regs       float64
	RegsStack  float64
	RegsMem    float64
	// Err is the workload's failure, when it has one. Only populated
	// under ContinueOnError.
	Err string
}

// Table4 reproduces Table 4: available parallelism under the four renaming
// conditions, conservative system calls, whole-trace window, no functional
// unit limits.
func (s *Suite) Table4(ctx context.Context) ([]Table4Row, error) {
	cfgs := []core.Config{
		{Syscalls: core.SyscallConservative},
		{Syscalls: core.SyscallConservative, RenameRegisters: true},
		{Syscalls: core.SyscallConservative, RenameRegisters: true, RenameStack: true},
		{Syscalls: core.SyscallConservative, RenameRegisters: true, RenameStack: true, RenameData: true},
	}
	rows := make([]Table4Row, len(s.Workloads))
	err := s.forEachWorkload(ctx, func(ctx context.Context, i int, w *workloads.Workload) error {
		rs, err := s.AnalyzeMulti(ctx, w, cfgs)
		if err != nil {
			return err
		}
		rows[i] = Table4Row{
			Name:       w.Name,
			NoRenaming: rs[0].Available,
			Regs:       rs[1].Available,
			RegsStack:  rs[2].Available,
			RegsMem:    rs[3].Available,
		}
		s.emitRow(i, w.Name, rows[i])
		return nil
	})
	markFailures(err, func(i int, msg string) {
		rows[i].Name = s.Workloads[i].Name
		rows[i].Err = msg
	})
	return rows, err
}

// DefaultWindowSizes is the Figure-8 sweep: powers of two from 1 to 2^20,
// then 0 (the whole trace).
func DefaultWindowSizes() []int {
	sizes := []int{1}
	for w := 2; w <= 1<<20; w *= 2 {
		sizes = append(sizes, w)
	}
	return append(sizes, 0)
}

// WindowPoint is one point of a Figure-8 series.
type WindowPoint struct {
	Window    int // 0 = whole trace
	Available float64
	// Percent is available parallelism as a percentage of the
	// whole-trace ("total available") parallelism.
	Percent float64
}

// WindowSeries is one benchmark's Figure-8 curve.
type WindowSeries struct {
	Name   string
	Points []WindowPoint
}

// Figure8 reproduces the window-size sweep: conservative system calls,
// full renaming, no functional-unit limits, window sizes as given (use
// DefaultWindowSizes for the paper's log-scale axis). Each workload is
// simulated once; all window sizes analyze the same trace.
func (s *Suite) Figure8(ctx context.Context, sizes []int) ([]WindowSeries, error) {
	if len(sizes) == 0 {
		sizes = DefaultWindowSizes()
	}
	out := make([]WindowSeries, len(s.Workloads))
	err := s.forEachWorkload(ctx, func(ctx context.Context, wi int, w *workloads.Workload) error {
		cfgs := make([]core.Config, len(sizes))
		for i, size := range sizes {
			cfg := core.Dataflow(core.SyscallConservative)
			cfg.Profile = false
			cfg.WindowSize = size
			cfgs[i] = cfg
		}
		rs, err := s.AnalyzeMulti(ctx, w, cfgs)
		if err != nil {
			return err
		}
		var total float64
		for i, size := range sizes {
			if size == 0 {
				total = rs[i].Available
			}
		}
		if total == 0 {
			// No whole-trace point requested; normalize against the
			// largest window.
			for _, r := range rs {
				if r.Available > total {
					total = r.Available
				}
			}
		}
		series := WindowSeries{Name: w.Name}
		for i, size := range sizes {
			pt := WindowPoint{Window: size, Available: rs[i].Available}
			if total > 0 {
				pt.Percent = rs[i].Available / total * 100
			}
			series.Points = append(series.Points, pt)
		}
		out[wi] = series
		s.emitRow(wi, w.Name, out[wi])
		return nil
	})
	return out, err
}

// FURow is one row of the functional-unit extension experiment (E8).
type FURow struct {
	Name   string
	Limits []int
	Avail  []float64
}

// FunctionalUnits sweeps generic functional-unit counts (Figure 4's
// resource dependencies, quantified): full renaming, conservative
// syscalls.
func (s *Suite) FunctionalUnits(ctx context.Context, limits []int) ([]FURow, error) {
	if len(limits) == 0 {
		limits = []int{1, 2, 4, 8, 16, 32, 64, 0}
	}
	rows := make([]FURow, len(s.Workloads))
	err := s.forEachWorkload(ctx, func(ctx context.Context, i int, w *workloads.Workload) error {
		cfgs := make([]core.Config, len(limits))
		for j, f := range limits {
			cfg := core.Dataflow(core.SyscallConservative)
			cfg.Profile = false
			cfg.FunctionalUnits = f
			cfgs[j] = cfg
		}
		rs, err := s.AnalyzeMulti(ctx, w, cfgs)
		if err != nil {
			return err
		}
		row := FURow{Name: w.Name, Limits: limits}
		for _, r := range rs {
			row.Avail = append(row.Avail, r.Available)
		}
		rows[i] = row
		s.emitRow(i, w.Name, rows[i])
		return nil
	})
	return rows, err
}

// LifetimeRow carries the E9 extension distributions for one benchmark.
type LifetimeRow struct {
	Name          string
	Lifetimes     stats.LogDist
	Sharing       stats.LogDist
	MaxLiveMemory int
}

// Lifetimes collects value-lifetime and degree-of-sharing distributions
// (Section 2.3's "distribution of value lifetimes" and "degree of sharing
// of each computed value").
func (s *Suite) Lifetimes(ctx context.Context) ([]LifetimeRow, error) {
	rows := make([]LifetimeRow, len(s.Workloads))
	err := s.forEachWorkload(ctx, func(ctx context.Context, i int, w *workloads.Workload) error {
		cfg := core.Dataflow(core.SyscallConservative)
		cfg.Profile = false
		cfg.Lifetimes = true
		cfg.Sharing = true
		r, err := s.Analyze(ctx, w, cfg)
		if err != nil {
			return err
		}
		rows[i] = LifetimeRow{
			Name:          w.Name,
			Lifetimes:     r.Lifetimes,
			Sharing:       r.Sharing,
			MaxLiveMemory: r.MaxLiveMemoryWords,
		}
		s.emitRow(i, w.Name, rows[i])
		return nil
	})
	return rows, err
}

// UnrollRow is one row of the E7 compiler ablation.
type UnrollRow struct {
	Name          string
	Factor        int
	Instructions  uint64
	Available     float64
	AvailRegsOnly float64
}

// AblationUnroll measures the compiler's second-order effect (Section
// 3.1's caveat): the same workload compiled with and without loop
// unrolling, analyzed under full renaming and under register-only
// renaming (where loop-counter recurrences matter most).
func (s *Suite) AblationUnroll(ctx context.Context, name string, factors []int) ([]UnrollRow, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("harness: unknown workload %q", name)
	}
	if len(factors) == 0 {
		factors = []int{1, 2, 4, 8}
	}
	var rows []UnrollRow
	for _, f := range factors {
		sub := *s
		sub.Unroll = f
		full := core.Dataflow(core.SyscallConservative)
		full.Profile = false
		regsOnly := core.Config{Syscalls: core.SyscallConservative, RenameRegisters: true}
		rs, err := sub.AnalyzeMulti(ctx, w, []core.Config{full, regsOnly})
		if err != nil {
			return nil, err
		}
		rows = append(rows, UnrollRow{
			Name:          name,
			Factor:        f,
			Instructions:  rs[0].Instructions,
			Available:     rs[0].Available,
			AvailRegsOnly: rs[1].Available,
		})
	}
	return rows, nil
}

// BranchRow is one row of the branch-prediction extension experiment
// (E10): available parallelism under each control-dependency model, plus
// the modelled misprediction rates.
type BranchRow struct {
	Name     string
	Policies []core.BranchPolicy
	Avail    []float64
	MissRate []float64 // mispredictions / branches, per policy
}

// BranchPrediction sweeps the control-dependency models (perfect, two-bit,
// static BTFN, stall), quantifying Section 3.2's observation that the
// firewall can model mispredicted branches. Renaming is full and windows
// unlimited, so control is the only constraint varied.
func (s *Suite) BranchPrediction(ctx context.Context, policies []core.BranchPolicy) ([]BranchRow, error) {
	if len(policies) == 0 {
		policies = []core.BranchPolicy{
			core.BranchStall, core.BranchStatic, core.BranchTwoBit, core.BranchPerfect,
		}
	}
	rows := make([]BranchRow, len(s.Workloads))
	err := s.forEachWorkload(ctx, func(ctx context.Context, i int, w *workloads.Workload) error {
		cfgs := make([]core.Config, len(policies))
		for j, p := range policies {
			cfg := core.Dataflow(core.SyscallConservative)
			cfg.Profile = false
			cfg.Branches = p
			cfgs[j] = cfg
		}
		rs, err := s.AnalyzeMulti(ctx, w, cfgs)
		if err != nil {
			return err
		}
		row := BranchRow{Name: w.Name, Policies: policies}
		for _, r := range rs {
			row.Avail = append(row.Avail, r.Available)
			rate := 0.0
			if r.Branches > 0 {
				rate = float64(r.Mispredictions) / float64(r.Branches)
			}
			row.MissRate = append(row.MissRate, rate)
		}
		rows[i] = row
		s.emitRow(i, w.Name, rows[i])
		return nil
	})
	return rows, err
}

// Table1Row describes one instruction latency class (the paper's Table 1).
type Table1Row struct {
	Class string
	Steps int
}

// Table1 returns the operation-time table; it is configuration, not
// measurement, but cmd/specrun prints it for completeness.
func Table1() []Table1Row {
	return []Table1Row{
		{"Integer ALU", 1},
		{"Integer Multiply", 6},
		{"Integer Division", 12},
		{"Floating Point Add/Sub", 6},
		{"Floating Point Multiply", 6},
		{"Floating Point Division", 12},
		{"Load/Store", 1},
		{"System Calls", 1},
	}
}
