package harness

// The resolved engine's differential battery: FanOutResolved — resolve the
// stream once, schedule per config — must produce Results deeply equal to
// the buffered, streaming and ring engines on clean, damaged/degraded, and
// governed workloads. `make differential` runs the Differential tests here
// under the race detector, so they double as the data-race audit of the
// segment broadcast: one resolver goroutine publishing segments that N
// scheduler goroutines replay concurrently.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"paragraph/internal/budget"
	"paragraph/internal/core"
	"paragraph/internal/faultinject"
	"paragraph/internal/trace"
	"paragraph/internal/workloads"
)

// windowSweepConfigs is the Figure 8 shape: one rename group, many window
// sizes — the case the resolved engine exists for.
func windowSweepConfigs() []core.Config {
	var cfgs []core.Config
	for _, size := range []int{1, 32, 128, 2048, 65536, 0} {
		cfg := core.Dataflow(core.SyscallConservative)
		cfg.Profile = false
		cfg.WindowSize = size
		cfgs = append(cfgs, cfg)
	}
	// One profile-collecting config so bucketed histograms cross the
	// batched-update path too.
	cfgs = append(cfgs, core.Dataflow(core.SyscallConservative))
	return cfgs
}

// resolvedReplayProducer adapts a recorded EventBuffer to FanOutResolved's
// producer contract.
func resolvedReplayProducer(buf *trace.EventBuffer) func(*ResolverStream) error {
	return func(rs *ResolverStream) error {
		if err := buf.ReplayBatches(context.Background(), rs); err != nil {
			return err
		}
		rs.SetStats(buf.Stats())
		return nil
	}
}

// TestDifferentialResolvedEngine: the same recorded trace pushed through
// one resolver into concurrent schedulers yields Results deeply equal to
// the buffered replay (FanOut) and the event ring (FanOutStream), on a
// single-group window sweep with a deliberately tiny segment ring.
func TestDifferentialResolvedEngine(t *testing.T) {
	cfgs := windowSweepConfigs()
	for _, name := range []string{"xlispx", "matrixx", "spicex"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, ok := workloads.ByName(name)
			if !ok {
				t.Fatalf("unknown workload %q", name)
			}
			buf := recordWorkload(t, w)
			want, err := FanOut(context.Background(), buf, cfgs, 1)
			if err != nil {
				t.Fatalf("buffered reference: %v", err)
			}
			ringGot, _, err := FanOutStream(context.Background(), replayProducer(buf), cfgs, trace.MinRingBatches)
			if err != nil {
				t.Fatalf("ring engine: %v", err)
			}
			got, rstats, err := FanOutResolved(context.Background(), resolvedReplayProducer(buf), cfgs, trace.MinSegRingDepth)
			if err != nil {
				t.Fatalf("resolved engine: %v", err)
			}
			if rstats != buf.Stats() {
				t.Errorf("ReadStats = %+v, want %+v", rstats, buf.Stats())
			}
			if len(got) != len(want) {
				t.Fatalf("result counts differ: %d vs %d", len(got), len(want))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("config %d: resolved engine diverged from buffered replay", i)
				}
				if !reflect.DeepEqual(got[i], ringGot[i]) {
					t.Errorf("config %d: resolved engine diverged from ring engine", i)
				}
			}
		})
	}
}

// TestDifferentialResolvedTopologies pins FanOutResolved's scheduling
// topologies against the buffered replay on one recorded trace: the
// SegRing broadcast (multi-core hosts), the serial gang (single-CPU,
// gang-eligible group) and the serial batched sweep (single-CPU, a group
// made gang-ineligible by a lifetimes-collecting config). The serial gate
// is forced both ways so every topology runs regardless of the host's
// core count.
func TestDifferentialResolvedTopologies(t *testing.T) {
	w, ok := workloads.ByName("xlispx")
	if !ok {
		t.Fatal("unknown workload xlispx")
	}
	buf := recordWorkload(t, w)
	gangCfgs := windowSweepConfigs()
	lifet := core.Dataflow(core.SyscallConservative)
	lifet.Lifetimes = true
	lifet.Sharing = true
	mixed := append(append([]core.Config{}, gangCfgs...), lifet)

	for _, tc := range []struct {
		name   string
		serial bool
		cfgs   []core.Config
	}{
		{"ring/sweep", false, gangCfgs},
		{"serial/gang", true, gangCfgs},
		{"ring/mixed", false, mixed},
		{"serial/batched", true, mixed},
	} {
		t.Run(tc.name, func(t *testing.T) {
			old := resolvedSerial
			resolvedSerial = func() bool { return tc.serial }
			defer func() { resolvedSerial = old }()
			want, err := FanOut(context.Background(), buf, tc.cfgs, 1)
			if err != nil {
				t.Fatalf("buffered reference: %v", err)
			}
			got, rstats, err := FanOutResolved(context.Background(), resolvedReplayProducer(buf), tc.cfgs, 0)
			if err != nil {
				t.Fatalf("resolved engine: %v", err)
			}
			if rstats != buf.Stats() {
				t.Errorf("ReadStats = %+v, want %+v", rstats, buf.Stats())
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("config %d: %s diverged from buffered replay", i, tc.name)
				}
			}
		})
	}
}

// TestDifferentialResolvedMultiGroup: Suite.AnalyzeMulti under an explicit
// EngineResolved must partition mixed configs into rename groups, resolve
// once per group, and scatter results back deep-equal to the streaming
// engine across the full Table3/Table4/Figure8 union.
func TestDifferentialResolvedMultiGroup(t *testing.T) {
	w, ok := workloads.ByName("xlispx")
	if !ok {
		t.Fatal("unknown workload xlispx")
	}
	cfgs := sweepConfigs()
	if g := resolveGroups(cfgs); len(g) < 2 {
		t.Fatalf("fixture has %d resolve groups; want a mixed sweep", len(g))
	}
	ref := NewSuite(1)
	ref.MaxInstr = 300_000
	ref.Engine = EngineStreaming
	want, err := ref.AnalyzeMulti(context.Background(), w, cfgs)
	if err != nil {
		t.Fatalf("streaming reference: %v", err)
	}
	s := NewSuite(1)
	s.Concurrency = 4
	s.MaxInstr = 300_000
	s.Engine = EngineResolved
	got, err := s.AnalyzeMulti(context.Background(), w, cfgs)
	if err != nil {
		t.Fatalf("resolved engine: %v", err)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("config %d: resolved engine diverged from streaming", i)
		}
	}
}

// TestDifferentialResolvedDegraded pushes a damaged v2 trace through the
// resolver in degraded-read mode: the resolved engine must see exactly the
// events (and ReadStats accounting) a degraded whole-trace read produces,
// and its Results must match a buffered replay of that same degraded read.
func TestDifferentialResolvedDegraded(t *testing.T) {
	data := recordTrace(t, "naskerx", 150_000)
	for i := range []int{0, 1} {
		var err error
		for _, c := range []int{3, 11} {
			if data, err = faultinject.CorruptChunk(data, c, int64(c+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var err error
	if data, err = faultinject.DuplicateChunk(data, 6); err != nil {
		t.Fatal(err)
	}
	data = faultinject.Truncate(data, 9)

	rd, err := trace.NewReaderOpts(bytes.NewReader(data), trace.ReaderOptions{Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	buf := &trace.EventBuffer{}
	if err := rd.ForEachBatch(buf.Events); err != nil {
		t.Fatalf("degraded reference read: %v", err)
	}
	buf.SetStats(rd.Stats())
	if buf.Stats().SkippedChunks == 0 || buf.Stats().DuplicateChunks == 0 {
		t.Fatalf("damage fixture is not exercising degradation: %+v", buf.Stats())
	}
	cfgs := windowSweepConfigs()
	want, err := FanOut(context.Background(), buf, cfgs, 1)
	if err != nil {
		t.Fatalf("buffered reference: %v", err)
	}

	produce := func(rs *ResolverStream) error {
		r, err := trace.NewReaderOpts(bytes.NewReader(data), trace.ReaderOptions{Degraded: true})
		if err != nil {
			return err
		}
		if err := r.ForEachBatch(rs.Events); err != nil {
			return err
		}
		rs.SetStats(r.Stats())
		return nil
	}
	got, rstats, err := FanOutResolved(context.Background(), produce, cfgs, trace.MinSegRingDepth)
	if err != nil {
		t.Fatalf("resolved engine: %v", err)
	}
	if rstats != buf.Stats() {
		t.Errorf("degraded ReadStats = %+v, want %+v", rstats, buf.Stats())
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("config %d: resolved engine diverged on the damaged trace", i)
		}
	}
}

// TestDifferentialResolvedGoverned: per-config budget governance (window
// degradation under a config-level MemBudget) must behave identically
// whether events arrive raw or as dependence records — including the
// Governor's accounting, which the scheduler meters with its own running
// live-memory count.
func TestDifferentialResolvedGoverned(t *testing.T) {
	w, ok := workloads.ByName("matrixx")
	if !ok {
		t.Fatal("unknown workload matrixx")
	}
	buf := recordWorkload(t, w)
	gov := core.Dataflow(core.SyscallConservative)
	gov.Profile = false
	gov.WindowSize = 2048
	gov.MemBudget = 64 << 10
	gov.BudgetPolicy = budget.Degrade
	cfgs := []core.Config{gov, core.Dataflow(core.SyscallConservative)}

	want, err := FanOut(context.Background(), buf, cfgs, 1)
	if err != nil {
		t.Fatalf("buffered reference: %v", err)
	}
	if want[0].Governor == nil || want[0].Governor.Degradations == 0 {
		t.Fatalf("governed fixture is not degrading: %+v", want[0].Governor)
	}
	got, _, err := FanOutResolved(context.Background(), resolvedReplayProducer(buf), cfgs, trace.MinSegRingDepth)
	if err != nil {
		t.Fatalf("resolved engine: %v", err)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("config %d: resolved engine diverged on the governed config", i)
		}
	}
}

// TestFanOutResolvedMixedGroupsRejected pins the single-group contract:
// configs spanning rename groups must be split by the caller.
func TestFanOutResolvedMixedGroupsRejected(t *testing.T) {
	cfgs := []core.Config{
		{Syscalls: core.SyscallConservative},
		{Syscalls: core.SyscallConservative, RenameRegisters: true},
	}
	_, _, err := FanOutResolved(context.Background(), func(*ResolverStream) error { return nil }, cfgs, 0)
	if err == nil || !strings.Contains(err.Error(), "resolve groups") {
		t.Fatalf("mixed groups accepted: %v", err)
	}
}

// TestFanOutResolvedProducerError: a producer failure mid-stream surfaces
// as the producer's own error — not rewrapped per config — after the
// schedulers drain what was already published.
func TestFanOutResolvedProducerError(t *testing.T) {
	boom := fmt.Errorf("simulation exploded")
	produce := func(rs *ResolverStream) error {
		e := ringTestEvent()
		for i := 0; i < 10_000; i++ {
			if err := rs.Event(&e); err != nil {
				return err
			}
		}
		return boom
	}
	cfgs := windowSweepConfigs()
	_, _, err := FanOutResolved(context.Background(), produce, cfgs, trace.MinSegRingDepth)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the producer error", err)
	}
	if strings.Contains(err.Error(), "config") {
		t.Errorf("producer error got rewrapped as a consumer error: %v", err)
	}
}

// TestAnalyzeMultiAutoPicksResolved pins EngineAuto's selection: a
// multi-worker sweep whose configs share a rename group takes the resolved
// engine and still matches the streaming engine; a sweep with no sharing
// keeps the event ring.
func TestAnalyzeMultiAutoPicksResolved(t *testing.T) {
	shared := windowSweepConfigs()
	if g := resolveGroups(shared); len(g) != 1 {
		t.Fatalf("window sweep spans %d groups, want 1", len(g))
	}
	distinct := []core.Config{
		{Syscalls: core.SyscallConservative},
		{Syscalls: core.SyscallConservative, RenameRegisters: true},
	}
	if g := resolveGroups(distinct); len(g) != len(distinct) {
		t.Fatalf("distinct fixture shares groups")
	}
	w, ok := workloads.ByName("matrixx")
	if !ok {
		t.Fatal("unknown workload matrixx")
	}
	ref := NewSuite(1)
	ref.MaxInstr = 200_000
	ref.Engine = EngineStreaming
	want, err := ref.AnalyzeMulti(context.Background(), w, shared)
	if err != nil {
		t.Fatalf("streaming reference: %v", err)
	}
	s := NewSuite(1)
	s.Concurrency = 4 // EngineAuto with 4 workers and one shared group: resolved
	s.MaxInstr = 200_000
	got, err := s.AnalyzeMulti(context.Background(), w, shared)
	if err != nil {
		t.Fatalf("auto engine: %v", err)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("config %d: auto-selected resolved engine diverged from streaming", i)
		}
	}
}
