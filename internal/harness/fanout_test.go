package harness

// The differential battery: the parallel fan-out engine must produce
// Results deeply equal to the serial reference engine for every workload ×
// configuration the paper's sweeps use. `make check` runs these under the
// race detector (go test -race -run Differential ./...), so they double as
// the data-race audit of the worker pool.

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"paragraph/internal/budget"
	"paragraph/internal/core"
	"paragraph/internal/isa"
	"paragraph/internal/trace"
	"paragraph/internal/workloads"
)

// sweepConfigs is the union of the per-workload configuration sets used by
// Table 3, Table 4 and Figure 8 (the window list is the benchmark's reduced
// sweep; every size still analyzes the same recorded trace).
func sweepConfigs() []core.Config {
	var cfgs []core.Config
	// Table 3: dataflow limit under both syscall policies.
	for _, p := range []core.SyscallPolicy{core.SyscallConservative, core.SyscallOptimistic} {
		cfg := core.Dataflow(p)
		cfg.Profile = false
		cfgs = append(cfgs, cfg)
	}
	// Table 4: the four renaming conditions.
	cfgs = append(cfgs,
		core.Config{Syscalls: core.SyscallConservative},
		core.Config{Syscalls: core.SyscallConservative, RenameRegisters: true},
		core.Config{Syscalls: core.SyscallConservative, RenameRegisters: true, RenameStack: true},
		core.Config{Syscalls: core.SyscallConservative, RenameRegisters: true, RenameStack: true, RenameData: true},
	)
	// Figure 8: window sizes over the full-renaming configuration.
	for _, size := range []int{1, 128, 8192, 0} {
		cfg := core.Dataflow(core.SyscallConservative)
		cfg.Profile = false
		cfg.WindowSize = size
		cfgs = append(cfgs, cfg)
	}
	// One profile-collecting configuration, so bucketed histograms are
	// compared too (Figure 7's shape).
	cfgs = append(cfgs, core.Dataflow(core.SyscallConservative))
	return cfgs
}

// record simulates one workload at scale 1 into an EventBuffer. The trace
// is capped at 500k events — both engines replay the identical buffer, so
// the equivalence check is unaffected, but the race-detector run of the
// battery stays bounded even for espressox's 6.7M-instruction trace.
func recordWorkload(t *testing.T, w *workloads.Workload) *trace.EventBuffer {
	t.Helper()
	s := NewSuite(1)
	s.MaxInstr = 500_000
	buf := &trace.EventBuffer{}
	if _, err := w.Run(s.Scale, s.options(), buf, s.MaxInstr); err != nil {
		t.Fatalf("workload %s: %v", w.Name, err)
	}
	return buf
}

// TestDifferentialEngine is the core equivalence proof: for every workload,
// a single recorded trace analyzed serially (FanOut concurrency 1) and in
// parallel (concurrency 8) yields deeply-equal Result sets across the
// Table3/Table4/Figure8 configuration union.
func TestDifferentialEngine(t *testing.T) {
	cfgs := sweepConfigs()
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			buf := recordWorkload(t, w)
			serial, err := FanOut(context.Background(), buf, cfgs, 1)
			if err != nil {
				t.Fatalf("serial engine: %v", err)
			}
			parallel, err := FanOut(context.Background(), buf, cfgs, 8)
			if err != nil {
				t.Fatalf("parallel engine: %v", err)
			}
			if len(serial) != len(parallel) {
				t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
			}
			for i := range serial {
				if serial[i] == nil || parallel[i] == nil {
					t.Fatalf("config %d: nil result (serial=%v parallel=%v)",
						i, serial[i] != nil, parallel[i] != nil)
				}
				if !reflect.DeepEqual(serial[i], parallel[i]) {
					t.Errorf("config %d: results differ\nserial:   %v\nparallel: %v",
						i, serial[i], parallel[i])
				}
			}
		})
	}
}

// TestDifferentialStreamingVsBuffered checks the other seam: the buffered
// replay engine must match the legacy streaming engine (events delivered
// live during simulation through trace.Tee), so recording into the
// EventBuffer is transparent.
func TestDifferentialStreamingVsBuffered(t *testing.T) {
	cfgs := sweepConfigs()
	for _, name := range []string{"xlispx", "matrixx", "spicex"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		streamSuite := NewSuite(1)
		streamSuite.MaxInstr = 600_000
		streamSuite.Concurrency = 1 // serial engine: stream, no buffer
		streamed, err := streamSuite.analyzeStreaming(context.Background(), w, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		parSuite := NewSuite(1)
		parSuite.MaxInstr = 600_000
		parSuite.Concurrency = 4 // buffered fan-out engine
		buffered, err := parSuite.AnalyzeMulti(context.Background(), w, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range streamed {
			if !reflect.DeepEqual(streamed[i], buffered[i]) {
				t.Errorf("%s config %d: streaming and buffered engines differ\nstream: %v\nbuffer: %v",
					name, i, streamed[i], buffered[i])
			}
		}
	}
}

// TestDifferentialSuiteDrivers compares whole experiment drivers — the rows
// the paper's tables are rendered from — between a fully serial suite and a
// fully parallel one.
func TestDifferentialSuiteDrivers(t *testing.T) {
	serial := suite("xlispx", "naskerx", "matrixx")
	serial.Parallelism = 1
	serial.Concurrency = 1
	par := suite("xlispx", "naskerx", "matrixx")
	par.Parallelism = 4
	par.Concurrency = 4

	s3, err := serial.Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p3, err := par.Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s3, p3) {
		t.Errorf("Table3 rows differ:\nserial:   %+v\nparallel: %+v", s3, p3)
	}

	s4, err := serial.Table4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p4, err := par.Table4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s4, p4) {
		t.Errorf("Table4 rows differ:\nserial:   %+v\nparallel: %+v", s4, p4)
	}

	sizes := []int{1, 128, 8192, 0}
	s8, err := serial.Figure8(context.Background(), sizes)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := par.Figure8(context.Background(), sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s8, p8) {
		t.Errorf("Figure8 series differ:\nserial:   %+v\nparallel: %+v", s8, p8)
	}
}

// TestDifferentialBatchedVsPerEvent proves the batched delivery path is
// observationally identical to per-event delivery: for recorded workloads,
// an analyzer fed one event at a time (the exported copying Replay) and an
// analyzer fed slices (ReplayBatches) produce deeply-equal Results —
// including the governor accounting, whose check cadence must not shift
// with batch boundaries.
func TestDifferentialBatchedVsPerEvent(t *testing.T) {
	cfgs := sweepConfigs()
	gov := core.Dataflow(core.SyscallConservative)
	gov.Profile = false
	gov.WindowSize = 2048
	gov.MemBudget = 64 << 10
	gov.BudgetPolicy = budget.Degrade
	cfgs = append(cfgs, gov)

	for _, name := range []string{"xlispx", "matrixx", "espressox"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			buf := recordWorkload(t, w)
			for i, cfg := range cfgs {
				perEvent := core.NewAnalyzer(cfg)
				if err := buf.Replay(perEvent); err != nil {
					t.Fatalf("config %d: per-event replay: %v", i, err)
				}
				want, err := perEvent.Finish()
				if err != nil {
					t.Fatalf("config %d: per-event finish: %v", i, err)
				}
				batched := core.NewAnalyzer(cfg)
				if err := buf.ReplayBatches(context.Background(), batched); err != nil {
					t.Fatalf("config %d: batched replay: %v", i, err)
				}
				got, err := batched.Finish()
				if err != nil {
					t.Fatalf("config %d: batched finish: %v", i, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("config %d: batched and per-event results differ\nper-event: %v\nbatched:   %v",
						i, want, got)
				}
			}
		})
	}
}

// FanOut error handling: the lowest-indexed failing configuration decides
// the error, a panicking analyzer is contained, and a poisoned event is
// reported with its replay position.
func TestFanOutErrorAggregation(t *testing.T) {
	buf := &trace.EventBuffer{}
	good := trace.Event{PC: 0x400000, Ins: isa.Instruction{Op: isa.ADDI, Rt: isa.T0, Rs: isa.Zero, Imm: 1}}
	for i := 0; i < 100; i++ {
		if err := buf.Event(&good); err != nil {
			t.Fatal(err)
		}
	}
	// A load with no memory access fails core's event validation.
	bad := trace.Event{PC: 0x400190, Ins: isa.Instruction{Op: isa.LW, Rt: isa.T1, Rs: isa.SP}}
	if err := buf.Event(&bad); err != nil {
		t.Fatal(err)
	}

	cfgs := make([]core.Config, 6)
	for i := range cfgs {
		cfgs[i] = core.Dataflow(core.SyscallConservative)
		cfgs[i].Profile = false
	}
	_, err := FanOut(context.Background(), buf, cfgs, 4)
	if err == nil {
		t.Fatal("fan-out over a poisoned buffer succeeded")
	}
	// Every config fails on the same event; the reported one must be
	// config 0 — deterministic, not whichever worker lost the race.
	if !strings.Contains(err.Error(), "config 0:") {
		t.Errorf("error does not name the lowest failing config: %v", err)
	}
	if !strings.Contains(err.Error(), "trace event 100") {
		t.Errorf("error does not locate the poisoned event: %v", err)
	}
}
