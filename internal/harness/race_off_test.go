//go:build !race

package harness

// raceDetectorEnabled reports whether the test binary was built with
// -race; see race_on_test.go for the counterpart.
const raceDetectorEnabled = false
