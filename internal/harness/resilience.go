package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"paragraph/internal/trace"
)

// ErrWorkloadTimeout is returned (wrapped in a WorkloadError) when a
// workload's simulate+analyze exceeds the suite's WorkloadTimeout budget.
var ErrWorkloadTimeout = errors.New("harness: workload exceeded its time budget")

// WorkloadError is one workload's failure within a suite experiment.
type WorkloadError struct {
	// Index is the workload's position in Suite.Workloads (and in the
	// experiment's result slice, whose row at this index is the failed
	// one).
	Index int
	// Workload is the workload's name.
	Workload string
	// Err is what failed: a compile/simulation error, an analysis error,
	// ErrWorkloadTimeout, or a recovered panic.
	Err error
	// Panicked reports that Err was recovered from a panic rather than
	// returned.
	Panicked bool
}

func (e *WorkloadError) Error() string {
	if e.Panicked {
		return fmt.Sprintf("workload %s: panic: %v", e.Workload, e.Err)
	}
	return fmt.Sprintf("workload %s: %v", e.Workload, e.Err)
}

func (e *WorkloadError) Unwrap() error { return e.Err }

// SuiteError aggregates the failures of a continue-on-error experiment run.
// The experiment's results are still returned alongside it: rows for the
// workloads that succeeded are complete, failed rows carry the error.
type SuiteError struct {
	// Failures holds one entry per failed workload, in workload order.
	Total    int // workloads attempted
	Failures []*WorkloadError
}

func (e *SuiteError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "harness: %d of %d workloads failed", len(e.Failures), e.Total)
	for _, f := range e.Failures {
		b.WriteString("; ")
		b.WriteString(f.Error())
	}
	return b.String()
}

// Unwrap exposes the individual failures to errors.Is/As.
func (e *SuiteError) Unwrap() []error {
	out := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		out[i] = f
	}
	return out
}

// markFailures invokes mark for every per-workload failure in err (if any),
// letting an experiment stamp its result rows with what went wrong.
func markFailures(err error, mark func(i int, msg string)) {
	var se *SuiteError
	if errors.As(err, &se) {
		for _, f := range se.Failures {
			mark(f.Index, f.Err.Error())
		}
		return
	}
	var we *WorkloadError
	if errors.As(err, &we) {
		mark(we.Index, we.Err.Error())
	}
}

// guardEvery is how many events pass between context checks; consulting the
// context on every event would measurably tax the simulation's hot loop
// (BenchmarkGuard quantifies the difference), while a 1024-event stride
// bounds the cancellation latency to microseconds at simulation speed.
const guardEvery = 1024

// ctxGuard is a trace.Sink wrapper that aborts the simulation when its
// context is cancelled or its deadline passes. The CPU simulator stops at
// the first sink error, so the abort propagates as the workload's run error.
type ctxGuard struct {
	inner trace.Sink
	ctx   context.Context
	n     uint64
}

// Event implements trace.Sink.
func (g *ctxGuard) Event(e *trace.Event) error {
	if g.inner != nil {
		if err := g.inner.Event(e); err != nil {
			return err
		}
	}
	g.n++
	if g.n%guardEvery == 0 {
		if err := g.ctx.Err(); err != nil {
			return ctxError(err, g.n)
		}
	}
	return nil
}

// ctxError maps a context failure onto the suite's error taxonomy: a passed
// deadline keeps its ErrWorkloadTimeout identity, and the underlying context
// error stays in the chain either way, so callers can classify with
// errors.Is against ErrWorkloadTimeout, context.DeadlineExceeded or
// context.Canceled as they prefer.
func ctxError(err error, n uint64) error {
	if errors.Is(err, context.DeadlineExceeded) {
		if n == 0 {
			return fmt.Errorf("%w: %w", ErrWorkloadTimeout, err)
		}
		return fmt.Errorf("%w after %d instructions: %w", ErrWorkloadTimeout, n, err)
	}
	if n == 0 {
		return fmt.Errorf("harness: canceled: %w", err)
	}
	return fmt.Errorf("harness: workload canceled after %d instructions: %w", n, err)
}

// guardSink wraps a workload's sink with a cancellation guard. A context
// that can never be cancelled (context.Background and friends report a nil
// Done channel) costs nothing: the sink is returned unwrapped, keeping the
// legacy hot path byte-identical.
func guardSink(ctx context.Context, sink trace.Sink) trace.Sink {
	if ctx.Done() == nil {
		return sink
	}
	return &ctxGuard{inner: sink, ctx: ctx}
}

// workloadContext derives one workload's run context from the experiment's:
// the suite's WorkloadTimeout, when set, becomes a per-workload deadline.
// The returned cancel func must be called when the workload finishes.
func (s *Suite) workloadContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.WorkloadTimeout > 0 {
		return context.WithTimeout(ctx, s.WorkloadTimeout)
	}
	return ctx, func() {}
}
