package harness

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"paragraph/internal/trace"
)

// ErrWorkloadTimeout is returned (wrapped in a WorkloadError) when a
// workload's simulate+analyze exceeds the suite's WorkloadTimeout budget.
var ErrWorkloadTimeout = errors.New("harness: workload exceeded its time budget")

// WorkloadError is one workload's failure within a suite experiment.
type WorkloadError struct {
	// Index is the workload's position in Suite.Workloads (and in the
	// experiment's result slice, whose row at this index is the failed
	// one).
	Index int
	// Workload is the workload's name.
	Workload string
	// Err is what failed: a compile/simulation error, an analysis error,
	// ErrWorkloadTimeout, or a recovered panic.
	Err error
	// Panicked reports that Err was recovered from a panic rather than
	// returned.
	Panicked bool
}

func (e *WorkloadError) Error() string {
	if e.Panicked {
		return fmt.Sprintf("workload %s: panic: %v", e.Workload, e.Err)
	}
	return fmt.Sprintf("workload %s: %v", e.Workload, e.Err)
}

func (e *WorkloadError) Unwrap() error { return e.Err }

// SuiteError aggregates the failures of a continue-on-error experiment run.
// The experiment's results are still returned alongside it: rows for the
// workloads that succeeded are complete, failed rows carry the error.
type SuiteError struct {
	// Failures holds one entry per failed workload, in workload order.
	Total    int // workloads attempted
	Failures []*WorkloadError
}

func (e *SuiteError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "harness: %d of %d workloads failed", len(e.Failures), e.Total)
	for _, f := range e.Failures {
		b.WriteString("; ")
		b.WriteString(f.Error())
	}
	return b.String()
}

// Unwrap exposes the individual failures to errors.Is/As.
func (e *SuiteError) Unwrap() []error {
	out := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		out[i] = f
	}
	return out
}

// markFailures invokes mark for every per-workload failure in err (if any),
// letting an experiment stamp its result rows with what went wrong.
func markFailures(err error, mark func(i int, msg string)) {
	var se *SuiteError
	if errors.As(err, &se) {
		for _, f := range se.Failures {
			mark(f.Index, f.Err.Error())
		}
		return
	}
	var we *WorkloadError
	if errors.As(err, &we) {
		mark(we.Index, we.Err.Error())
	}
}

// watchdogEvery is how many events pass between wall-clock checks; checking
// time.Now on every event would dominate the simulation's hot loop.
const watchdogEvery = 4096

// watchdog is a trace.Sink wrapper that aborts the simulation when a
// wall-clock deadline passes. The CPU simulator stops at the first sink
// error, so the abort propagates as the workload's run error.
type watchdog struct {
	inner    trace.Sink
	deadline time.Time
	n        uint64
}

// Event implements trace.Sink.
func (d *watchdog) Event(e *trace.Event) error {
	if d.inner != nil {
		if err := d.inner.Event(e); err != nil {
			return err
		}
	}
	d.n++
	if d.n%watchdogEvery == 0 && time.Now().After(d.deadline) {
		return fmt.Errorf("%w (after %d instructions)", ErrWorkloadTimeout, d.n)
	}
	return nil
}

// guard wraps a workload's sink with the suite's watchdog, when one is
// configured. The returned sink must be fresh per workload: the deadline
// starts now.
func (s *Suite) guard(sink trace.Sink) trace.Sink {
	if s.WorkloadTimeout <= 0 {
		return sink
	}
	return &watchdog{inner: sink, deadline: time.Now().Add(s.WorkloadTimeout)}
}
