package harness

// The constant-memory soak: ISSUE 9's acceptance criterion, stated as a
// test. A -j 4 multi-config analysis fed through the bounded ring must hold
// peak heap flat (within 10%) between a 1M-event and a 50M-event synthetic
// trace — a 50× longer trace with the same footprint — while the ring's
// results stay deeply equal to a streaming (analyzer-fed-directly) pass
// over the identical event stream.

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"paragraph/internal/core"
	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// soakConfigs: four finite-window, non-profiling configurations — each
// analyzer's live state is bounded by its window, so the whole pipeline's
// footprint is trace-length independent once event delivery is too.
func soakConfigs() []core.Config {
	var cfgs []core.Config
	for _, size := range []int{64, 256, 1024, 4096} {
		cfg := core.Dataflow(core.SyscallConservative)
		cfg.Profile = false
		cfg.WindowSize = size
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// soakStream emits n deterministic synthetic events (ALU, loads, stores,
// stack traffic, branches, the odd syscall) in batches through emit. The
// fixed seed makes every call produce the identical stream, so the ring run
// and the streaming reference analyze the same trace without ever
// materializing it.
func soakStream(n int, emit func([]trace.Event) error) error {
	rng := rand.New(rand.NewSource(43))
	regs := []isa.Reg{isa.T0, isa.T1, isa.T2, isa.S0, isa.S1, isa.A0, isa.V0}
	r := func() isa.Reg { return regs[rng.Intn(len(regs))] }
	batch := make([]trace.Event, 0, trace.DefaultBatchEvents)
	pc := uint32(0x400000)
	for i := 0; i < n; i++ {
		var e trace.Event
		switch rng.Intn(10) {
		case 0, 1, 2:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.ADDI, Rt: r(), Rs: r(), Imm: int32(rng.Intn(64) - 32)}}
		case 3, 4:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.ADDU, Rd: r(), Rs: r(), Rt: r()}}
		case 5:
			addr := 0x10000000 + uint32(rng.Intn(1<<14))*4
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.LW, Rt: r(), Rs: isa.GP},
				MemAddr: addr, MemSize: 4, Seg: trace.SegData}
		case 6:
			addr := 0x10000000 + uint32(rng.Intn(1<<14))*4
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.SW, Rt: r(), Rs: isa.GP},
				MemAddr: addr, MemSize: 4, Seg: trace.SegData}
		case 7:
			addr := 0x7fff0000 + uint32(rng.Intn(1<<8))*4
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.SW, Rt: r(), Rs: isa.SP},
				MemAddr: addr, MemSize: 4, Seg: trace.SegStack}
		case 8:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.BNE, Rs: r(), Rt: isa.Zero, Imm: -16},
				Taken: rng.Intn(2) == 0}
		default:
			if rng.Intn(50) == 0 {
				e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.SYSCALL}}
			} else {
				e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.LUI, Rt: r(), Imm: int32(rng.Intn(1 << 10))}}
			}
		}
		batch = append(batch, e)
		if len(batch) == cap(batch) {
			if err := emit(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
		pc += 4
	}
	if len(batch) > 0 {
		return emit(batch)
	}
	return nil
}

// peakHeap runs f while sampling runtime.MemStats.HeapAlloc, returning the
// highest sample observed. A GC beforehand resets the floor so runs are
// comparable.
func peakHeap(f func()) uint64 {
	runtime.GC()
	var peak atomic.Uint64
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			p := peak.Load()
			if ms.HeapAlloc <= p || peak.CompareAndSwap(p, ms.HeapAlloc) {
				return
			}
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sample()
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()
	f()
	close(stop)
	wg.Wait()
	sample()
	return peak.Load()
}

func TestSoakConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short mode")
	}
	if raceDetectorEnabled {
		t.Skip("soak: race instrumentation distorts heap accounting")
	}
	cfgs := soakConfigs()

	// ringRun analyzes an n-event stream through the bounded ring with one
	// concurrent analyzer per config (-j 4 shape).
	ringRun := func(n int) []*core.Result {
		produce := func(ring *trace.Ring) error {
			return soakStream(n, ring.Events)
		}
		results, _, err := FanOutStream(t.Context(), produce, cfgs, 0)
		if err != nil {
			t.Fatalf("ring run (%d events): %v", n, err)
		}
		return results
	}
	// streamRun is the reference: each analyzer fed directly, serially —
	// no ring, no buffering, nothing between generator and analyzer.
	streamRun := func(n int) []*core.Result {
		results := make([]*core.Result, len(cfgs))
		for i, cfg := range cfgs {
			a := core.NewAnalyzer(cfg)
			if err := soakStream(n, a.Events); err != nil {
				t.Fatalf("streaming run (%d events): %v", n, err)
			}
			res, err := a.Finish()
			if err != nil {
				t.Fatal(err)
			}
			results[i] = res
		}
		return results
	}
	equal := func(n int, got, want []*core.Result) {
		t.Helper()
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("%d events, config %d: ring diverged from streaming", n, i)
			}
		}
	}

	const small, large = 1_000_000, 50_000_000

	// Equivalence at the small size (both engines, deep-equal), then a
	// warm-up-aware peak measurement: the first timed run at each size
	// happens after the allocator and analyzers have reached steady state.
	smallRef := streamRun(small)
	var smallRing []*core.Result
	peakSmall := peakHeap(func() { smallRing = ringRun(small) })
	equal(small, smallRing, smallRef)

	var largeRing []*core.Result
	peakLarge := peakHeap(func() { largeRing = ringRun(large) })

	// Equivalence at the large size too: the 50× trace is the one where a
	// slot-reuse bug would actually scramble events.
	largeRef := streamRun(large)
	equal(large, largeRing, largeRef)

	t.Logf("peak heap: %d events → %.1f MiB, %d events → %.1f MiB",
		small, float64(peakSmall)/(1<<20), large, float64(peakLarge)/(1<<20))
	if float64(peakLarge) > float64(peakSmall)*1.10 {
		t.Errorf("peak heap grew with trace length: %d bytes at %d events vs %d bytes at %d events (>10%%)",
			peakLarge, large, peakSmall, small)
	}
	// And a hard absolute ceiling: the ring (~1.8 MB) plus four
	// finite-window analyzers fit comfortably under 128 MiB; the recorded
	// buffer alone would need ~1.6 GB for the 50M-event trace.
	const ceiling = 128 << 20
	if peakLarge > ceiling {
		t.Errorf("peak heap %d bytes exceeds the %d-byte ceiling at %d events", peakLarge, int64(ceiling), large)
	}
}
