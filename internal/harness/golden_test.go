package harness

// Golden-file tests: the committed renderings under testdata/golden pin both
// the numeric results and the table/figure formatting of the paper's
// reproduction at scale 1. A change to the analyzer, the workloads, the
// compiler, or the renderers shows up as a diff here. Regenerate with
//
//	go test ./internal/harness -run Golden -update
//
// and review the diff like any other result change. The experiments run on
// the default (parallel) engine, so these also pin the fan-out engine's
// output byte-for-byte across machines and GOMAXPROCS values.

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// skipUnderRace skips a golden test in -race builds, before it spends time
// re-running a full-suite experiment (see checkGolden).
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceDetectorEnabled {
		t.Skip("golden battery pins deterministic output; skipped under -race")
	}
}

// checkGolden compares got against the named golden file, or rewrites the
// file under -update. Under the race detector the golden battery is
// skipped: it pins deterministic formatting and numerics, which -race adds
// nothing to, and the full-suite experiments it reruns would dominate the
// race gate's runtime (the Differential battery is the concurrency gate).
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if string(want) == got {
		return
	}
	t.Errorf("%s differs from golden file (regenerate with -update if the change is intended)\n%s",
		name, diffLines(string(want), got))
}

// diffLines reports the first few differing lines, enough to locate a
// regression without dumping two whole tables.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl == gl {
			continue
		}
		fmt.Fprintf(&b, "line %d:\n  golden: %q\n  got:    %q\n", i+1, wl, gl)
		if shown++; shown == 5 {
			fmt.Fprintf(&b, "  ... (more differences elided)\n")
			break
		}
	}
	return b.String()
}

func TestGoldenTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTable1(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1.txt", buf.String())
}

func TestGoldenTable2(t *testing.T) {
	skipUnderRace(t)
	rows, err := NewSuite(1).Table2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderTable2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table2.txt", buf.String())
}

func TestGoldenTable3(t *testing.T) {
	skipUnderRace(t)
	rows, err := NewSuite(1).Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderTable3(&buf, rows); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table3.txt", buf.String())
}

func TestGoldenTable4(t *testing.T) {
	skipUnderRace(t)
	rows, err := NewSuite(1).Table4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderTable4(&buf, rows); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table4.txt", buf.String())
}

func TestGoldenFigure7(t *testing.T) {
	skipUnderRace(t)
	profiles, err := NewSuite(1).Figure7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderFigure7(&buf, profiles); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure7.txt", buf.String())
}

// TestGoldenFigure8 pins the window-size sweep's rendered output. The
// suite runs multi-worker, so AnalyzeMulti's EngineAuto routes the sweep —
// one rename group, many window sizes — through the resolved engine: the
// golden file pins the shared-extraction path against rendered numbers,
// not just deep-equality to the other engines.
func TestGoldenFigure8(t *testing.T) {
	skipUnderRace(t)
	s := NewSuite(1)
	s.Concurrency = 4
	series, err := s.Figure8(context.Background(), []int{1, 16, 128, 4096, 65536, 0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderFigure8(&buf, series); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure8.txt", buf.String())
}
