package harness

// The bounded-ring engine's differential battery: FanOutStream must produce
// Results deeply equal to the buffered and streaming engines on clean,
// damaged/degraded, and governed workloads, while holding only a fixed ring
// of event batches in memory. `make differential` runs the Differential
// tests here under the race detector, so they double as the data-race audit
// of the ring's slot-reuse protocol under real analyzer load.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"paragraph/internal/budget"
	"paragraph/internal/core"
	"paragraph/internal/faultinject"
	"paragraph/internal/isa"
	"paragraph/internal/trace"
	"paragraph/internal/workloads"
)

// replayProducer adapts a recorded EventBuffer to FanOutStream's producer
// contract, forwarding the recording's ReadStats through the ring.
func replayProducer(buf *trace.EventBuffer) func(*trace.Ring) error {
	return func(ring *trace.Ring) error {
		if err := buf.ReplayBatches(context.Background(), ring); err != nil {
			return err
		}
		ring.SetStats(buf.Stats())
		return nil
	}
}

// TestDifferentialRingEngine is the ring engine's equivalence proof: the
// same recorded trace pushed through the bounded ring into concurrent
// analyzers yields Results deeply equal to the whole-trace buffered replay
// (FanOut), across the Table3/Table4/Figure8 configuration union.
func TestDifferentialRingEngine(t *testing.T) {
	cfgs := sweepConfigs()
	for _, name := range []string{"xlispx", "matrixx", "spicex"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, ok := workloads.ByName(name)
			if !ok {
				t.Fatalf("unknown workload %q", name)
			}
			buf := recordWorkload(t, w)
			want, err := FanOut(context.Background(), buf, cfgs, 1)
			if err != nil {
				t.Fatalf("buffered reference: %v", err)
			}
			// A deliberately tiny ring maximizes slot reuse and wraparound.
			got, rstats, err := FanOutStream(context.Background(), replayProducer(buf), cfgs, trace.MinRingBatches)
			if err != nil {
				t.Fatalf("ring engine: %v", err)
			}
			if rstats != buf.Stats() {
				t.Errorf("ReadStats = %+v, want %+v", rstats, buf.Stats())
			}
			if len(got) != len(want) {
				t.Fatalf("result counts differ: %d vs %d", len(got), len(want))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("config %d: ring engine diverged from buffered replay", i)
				}
			}
		})
	}
}

// TestDifferentialRingDegraded pushes a damaged v2 trace through the ring
// in degraded mode: the ring engine must see exactly the events (and
// ReadStats accounting) that a degraded whole-trace read produces, and its
// Results must match a buffered replay of that same degraded read.
func TestDifferentialRingDegraded(t *testing.T) {
	data := recordTrace(t, "naskerx", 150_000)
	for i := range []int{0, 1} {
		var err error
		for _, c := range []int{3, 11} {
			if data, err = faultinject.CorruptChunk(data, c, int64(c+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var err error
	if data, err = faultinject.DuplicateChunk(data, 6); err != nil {
		t.Fatal(err)
	}
	data = faultinject.Truncate(data, 9)

	// Reference: degraded whole-trace read into a buffer, then FanOut.
	rd, err := trace.NewReaderOpts(bytes.NewReader(data), trace.ReaderOptions{Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	buf := &trace.EventBuffer{}
	if err := rd.ForEachBatch(buf.Events); err != nil {
		t.Fatalf("degraded reference read: %v", err)
	}
	buf.SetStats(rd.Stats())
	if buf.Stats().SkippedChunks == 0 || buf.Stats().DuplicateChunks == 0 {
		t.Fatalf("damage fixture is not exercising degradation: %+v", buf.Stats())
	}
	cfgs := sweepConfigs()
	want, err := FanOut(context.Background(), buf, cfgs, 1)
	if err != nil {
		t.Fatalf("buffered reference: %v", err)
	}

	// Ring engine: a fresh degraded reader streams straight into the ring,
	// never holding more than the ring's worth of events.
	produce := func(ring *trace.Ring) error {
		r, err := trace.NewReaderOpts(bytes.NewReader(data), trace.ReaderOptions{Degraded: true})
		if err != nil {
			return err
		}
		if err := r.ForEachBatch(ring.Events); err != nil {
			return err
		}
		ring.SetStats(r.Stats())
		return nil
	}
	got, rstats, err := FanOutStream(context.Background(), produce, cfgs, trace.MinRingBatches)
	if err != nil {
		t.Fatalf("ring engine: %v", err)
	}
	if rstats != buf.Stats() {
		t.Errorf("degraded ReadStats = %+v, want %+v", rstats, buf.Stats())
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("config %d: ring engine diverged on the damaged trace", i)
		}
	}
}

// TestDifferentialRingGoverned: per-config budget governance (window
// degradation under a config-level MemBudget) must behave identically
// whether the events arrive from a whole-trace buffer or through the ring —
// including the Governor's accounting.
func TestDifferentialRingGoverned(t *testing.T) {
	w, ok := workloads.ByName("matrixx")
	if !ok {
		t.Fatal("unknown workload matrixx")
	}
	buf := recordWorkload(t, w)
	gov := core.Dataflow(core.SyscallConservative)
	gov.Profile = false
	gov.WindowSize = 2048
	gov.MemBudget = 64 << 10
	gov.BudgetPolicy = budget.Degrade
	cfgs := []core.Config{gov, core.Dataflow(core.SyscallConservative)}

	want, err := FanOut(context.Background(), buf, cfgs, 1)
	if err != nil {
		t.Fatalf("buffered reference: %v", err)
	}
	if want[0].Governor == nil || want[0].Governor.Degradations == 0 {
		t.Fatalf("governed fixture is not degrading: %+v", want[0].Governor)
	}
	got, _, err := FanOutStream(context.Background(), replayProducer(buf), cfgs, trace.MinRingBatches)
	if err != nil {
		t.Fatalf("ring engine: %v", err)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("config %d: ring engine diverged on the governed config", i)
		}
	}
}

// ringTestEvent is a minimal event the analyzer accepts (register-register
// ALU op, no memory access).
func ringTestEvent() trace.Event {
	return trace.Event{PC: 0x400000, Ins: isa.Instruction{Op: isa.ADDI, Rt: isa.T0, Rs: isa.Zero, Imm: 1}}
}

// TestFanOutStreamCancelLowestIndex: an endless producer saturates the ring
// (consumers apply backpressure, nothing buffers beyond the ring), then a
// caller cancel must unwind producer and every consumer without deadlock,
// reporting the lowest-index consumer error in FanOut's "config %d" shape.
func TestFanOutStreamCancelLowestIndex(t *testing.T) {
	cfgs := []core.Config{
		{Syscalls: core.SyscallConservative},
		{Syscalls: core.SyscallConservative, RenameRegisters: true},
		{Syscalls: core.SyscallConservative, RenameRegisters: true, RenameStack: true},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	produce := func(ring *trace.Ring) error {
		e := ringTestEvent()
		for {
			if err := ring.Event(&e); err != nil {
				return err
			}
		}
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var results []*core.Result
	var err error
	go func() {
		defer close(done)
		results, _, err = FanOutStream(ctx, produce, cfgs, trace.MinRingBatches)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled FanOutStream deadlocked")
	}
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled in the chain", err)
	}
	if !strings.Contains(err.Error(), "config 0:") {
		t.Errorf("err = %v, want the lowest-index config identified", err)
	}
	for i, r := range results {
		if r != nil {
			t.Errorf("config %d: cancelled run returned a result", i)
		}
	}
}

// TestFanOutStreamProducerError: a producer failure mid-stream surfaces as
// the producer's own error — not rewrapped per config — after consumers
// drain what was already published.
func TestFanOutStreamProducerError(t *testing.T) {
	boom := fmt.Errorf("simulation exploded")
	produce := func(ring *trace.Ring) error {
		e := ringTestEvent()
		for i := 0; i < 10_000; i++ {
			if err := ring.Event(&e); err != nil {
				return err
			}
		}
		return boom
	}
	cfgs := []core.Config{
		{Syscalls: core.SyscallConservative},
		{Syscalls: core.SyscallConservative, RenameRegisters: true},
	}
	_, _, err := FanOutStream(context.Background(), produce, cfgs, trace.MinRingBatches)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the producer error", err)
	}
	if strings.Contains(err.Error(), "config") {
		t.Errorf("producer error got rewrapped as a consumer error: %v", err)
	}
}

// TestFanOutStreamLeakFree: goroutine accounting after ring shutdown —
// clean completion, producer failure, and mid-stream cancellation must all
// leave no producer or consumer goroutines behind.
func TestFanOutStreamLeakFree(t *testing.T) {
	before := runtime.NumGoroutine()
	cfgs := []core.Config{
		{Syscalls: core.SyscallConservative},
		{Syscalls: core.SyscallConservative, RenameRegisters: true},
	}
	finite := func(n int) func(*trace.Ring) error {
		return func(ring *trace.Ring) error {
			e := ringTestEvent()
			for i := 0; i < n; i++ {
				if err := ring.Event(&e); err != nil {
					return err
				}
			}
			return nil
		}
	}
	// Clean completion.
	if _, _, err := FanOutStream(context.Background(), finite(50_000), cfgs, 0); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	// Producer failure.
	failing := func(ring *trace.Ring) error { return fmt.Errorf("early death") }
	if _, _, err := FanOutStream(context.Background(), failing, cfgs, 0); err == nil {
		t.Fatal("failing producer reported success")
	}
	// Mid-stream cancellation against an endless producer.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	endless := func(ring *trace.Ring) error {
		e := ringTestEvent()
		for {
			if err := ring.Event(&e); err != nil {
				return err
			}
		}
	}
	if _, _, err := FanOutStream(ctx, endless, cfgs, trace.MinRingBatches); err == nil {
		t.Fatal("cancelled run reported success")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after ring shutdown", before, runtime.NumGoroutine())
}
