package harness

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"paragraph/internal/budget"
	"paragraph/internal/core"
	"paragraph/internal/trace"
	"paragraph/internal/workloads"
)

// TestCancellationPromptAndLeakFree is the cancellation acceptance test: a
// context cancelled mid-experiment surfaces context.Canceled promptly and
// leaves no worker goroutines behind.
func TestCancellationPromptAndLeakFree(t *testing.T) {
	before := runtime.NumGoroutine()
	s := suite("xlispx", "matrixx", "spicex")
	s.Parallelism = 3
	s.Concurrency = 4
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Let the workloads get into their hot loops, then pull the plug.
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := s.Table3(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	// "Promptly" = guard strides, not workload completions: even the
	// slowest path should unwind within a generous fraction of the full
	// experiment's runtime.
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	// Workers drain after the error returns; give the scheduler a moment.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after cancellation", before, runtime.NumGoroutine())
}

// TestPreCancelledContext: an already-dead context stops the experiment
// before any workload output exists.
func TestPreCancelledContext(t *testing.T) {
	s := suite("xlispx")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Table2(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestWorkloadTimeoutChain: the legacy ErrWorkloadTimeout identity must
// survive the context rewrite, with context.DeadlineExceeded alongside it in
// the chain so either classification works.
func TestWorkloadTimeoutChain(t *testing.T) {
	s := suite("xlispx")
	s.WorkloadTimeout = time.Nanosecond
	_, err := s.Table2(context.Background())
	if !errors.Is(err, ErrWorkloadTimeout) {
		t.Fatalf("err = %v, want ErrWorkloadTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in the chain", err)
	}
	var we *WorkloadError
	if !errors.As(err, &we) || we.Workload != "xlispx" {
		t.Fatalf("err = %v, want a WorkloadError naming the workload", err)
	}
}

// TestSuiteBudgetFailFast: a suite-level budget reaches the analyzers and a
// hopeless budget fails the workload with the structured budget error.
func TestSuiteBudgetFailFast(t *testing.T) {
	s := suite("xlispx")
	s.MaxInstr = 200_000
	s.MemBudget = 1
	s.BudgetPolicy = budget.FailFast
	_, err := s.Table3(context.Background())
	if !errors.Is(err, budget.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// TestSuiteBudgetDegradeCompletes: under the Degrade policy the same
// hopeless budget finishes the experiment, and the rows carry accurate
// governor accounting.
func TestSuiteBudgetDegradeCompletes(t *testing.T) {
	s := suite("xlispx")
	s.MaxInstr = 200_000
	s.MemBudget = 1
	s.BudgetPolicy = budget.Degrade
	w := s.Workloads[0]
	results, err := s.AnalyzeMulti(context.Background(), w, []core.Config{
		core.Dataflow(core.SyscallConservative),
		core.Dataflow(core.SyscallOptimistic),
	})
	if err != nil {
		t.Fatalf("degrade-mode analysis failed: %v", err)
	}
	for i, r := range results {
		if r.Governor == nil {
			t.Fatalf("config %d: no GovernorStats on a governed run", i)
		}
		if !r.Governor.Governed() || r.Governor.Degradations == 0 {
			t.Errorf("config %d: stats = %+v, want recorded degradations", i, r.Governor)
		}
		if r.Governor.PeakLiveWellBytes == 0 || r.Governor.Checks == 0 {
			t.Errorf("config %d: stats = %+v, want non-zero accounting", i, r.Governor)
		}
	}
}

// TestEngineDowngrade: a budget too small for the recorded trace makes the
// buffered engine fall back to streaming under Degrade, the results match
// the plain streaming engine's, and every row records the downgrade.
func TestEngineDowngrade(t *testing.T) {
	w, ok := workloads.ByName("matrixx")
	if !ok {
		t.Fatal("unknown workload matrixx")
	}
	cfgs := []core.Config{
		core.Dataflow(core.SyscallConservative),
		core.Dataflow(core.SyscallOptimistic),
	}

	// A budget the analyzers live within comfortably but the multi-MB
	// trace buffer cannot: only the engine choice should change. The
	// buffered engine is pinned explicitly — under EngineAuto the same
	// budget simply runs the bounded ring without downgrading (see
	// TestRingEngineAvoidsDowngrade).
	governed := NewSuite(1)
	governed.MaxInstr = 300_000
	governed.Concurrency = 4
	governed.Engine = EngineBuffered
	governed.MemBudget = 8 << 20
	governed.BudgetPolicy = budget.Degrade
	got, err := governed.AnalyzeMulti(context.Background(), w, cfgs)
	if err != nil {
		t.Fatalf("governed analysis failed: %v", err)
	}

	reference := NewSuite(1)
	reference.MaxInstr = 300_000
	reference.Concurrency = 1 // streaming engine, ungoverned
	want, err := reference.AnalyzeMulti(context.Background(), w, cfgs)
	if err != nil {
		t.Fatal(err)
	}

	if len(got) != len(want) {
		t.Fatalf("result counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Governor == nil || !got[i].Governor.EngineDowngraded {
			t.Fatalf("config %d: stats = %+v, want EngineDowngraded", i, got[i].Governor)
		}
		// Strip the governance bookkeeping; the analysis must be identical.
		g := *got[i]
		g.Governor = nil
		g.Config.MemBudget = 0
		g.Config.BudgetPolicy = budget.FailFast
		if !reflect.DeepEqual(&g, want[i]) {
			t.Errorf("config %d: downgraded engine diverged from streaming reference", i)
		}
	}
}

// TestRingEngineAvoidsDowngrade is the constant-memory claim stated as
// governance: the budget that forces the buffered engine to abandon its
// recording (TestEngineDowngrade) fits the bounded ring with room to
// spare, so the ring engine completes at full fidelity — no downgrade, no
// degradations — with results deeply equal to the streaming reference.
func TestRingEngineAvoidsDowngrade(t *testing.T) {
	w, ok := workloads.ByName("matrixx")
	if !ok {
		t.Fatal("unknown workload matrixx")
	}
	cfgs := []core.Config{
		core.Dataflow(core.SyscallConservative),
		core.Dataflow(core.SyscallOptimistic),
	}

	governed := NewSuite(1)
	governed.MaxInstr = 300_000
	governed.Concurrency = 4
	governed.Engine = EngineRing
	governed.MemBudget = 8 << 20
	governed.BudgetPolicy = budget.Degrade
	got, err := governed.AnalyzeMulti(context.Background(), w, cfgs)
	if err != nil {
		t.Fatalf("governed ring analysis failed: %v", err)
	}

	reference := NewSuite(1)
	reference.MaxInstr = 300_000
	reference.Concurrency = 1 // streaming engine, ungoverned
	want, err := reference.AnalyzeMulti(context.Background(), w, cfgs)
	if err != nil {
		t.Fatal(err)
	}

	for i := range got {
		if got[i].Governor == nil {
			t.Fatalf("config %d: no GovernorStats on a governed run", i)
		}
		if got[i].Governor.EngineDowngraded {
			t.Errorf("config %d: ring engine downgraded under a budget it fits", i)
		}
		if got[i].Governor.Degradations > 0 {
			t.Errorf("config %d: stats = %+v, want no degradations", i, got[i].Governor)
		}
		g := *got[i]
		g.Governor = nil
		g.Config.MemBudget = 0
		g.Config.BudgetPolicy = budget.FailFast
		if !reflect.DeepEqual(&g, want[i]) {
			t.Errorf("config %d: ring engine diverged from streaming reference", i)
		}
	}
}

// TestBudgetZeroIsLegacyPath: with no budget and a Background context the
// suite must produce results deeply equal to an explicitly ungoverned run —
// the differential battery's byte-identity claim for `-mem-budget=0`.
func TestBudgetZeroIsLegacyPath(t *testing.T) {
	a := suite("xlispx")
	a.MaxInstr = 200_000
	a.MemBudget = 0
	ra, err := a.Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b := suite("xlispx")
	b.MaxInstr = 200_000
	rb, err := b.Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Errorf("mem-budget=0 rows differ from legacy rows\ngot:  %+v\nwant: %+v", ra, rb)
	}
}

// countingSink is the cheapest possible inner sink, so the benchmark
// measures guard overhead rather than analysis work.
type countingSink struct{ n uint64 }

func (c *countingSink) Event(*trace.Event) error { c.n++; return nil }

// perEventGuard is the naive alternative the amortized guard replaced:
// consult the context on every single event.
type perEventGuard struct {
	inner trace.Sink
	ctx   context.Context
}

func (g *perEventGuard) Event(e *trace.Event) error {
	if err := g.inner.Event(e); err != nil {
		return err
	}
	if err := g.ctx.Err(); err != nil {
		return err
	}
	return nil
}

// BenchmarkCancellationGuard quantifies satellite (a): the amortized
// guard's per-event cost must sit within noise of no guard at all, while
// the per-event variant pays a context check on every event.
//
//	go test ./internal/harness/ -bench CancellationGuard -run ^$
func BenchmarkCancellationGuard(b *testing.B) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	e := &trace.Event{PC: 0x400000}
	variants := []struct {
		name string
		sink trace.Sink
	}{
		{"none", &countingSink{}},
		{"amortized-1024", &ctxGuard{inner: &countingSink{}, ctx: ctx}},
		{"every-event", &perEventGuard{inner: &countingSink{}, ctx: ctx}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := v.sink.Event(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
