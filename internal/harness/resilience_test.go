package harness

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"paragraph/internal/workloads"
)

// crashingWorkload panics during compilation — the harshest failure a
// workload can produce, since it unwinds rather than returning an error.
func crashingWorkload() *workloads.Workload {
	return &workloads.Workload{
		Name:        "crashx",
		Original:    "crash",
		Language:    "C",
		BenchType:   "Int",
		Description: "deliberately panics while building",
		Source:      func(int) string { panic("deliberate test crash") },
	}
}

// brokenWorkload fails to compile with an ordinary error.
func brokenWorkload() *workloads.Workload {
	return &workloads.Workload{
		Name:        "brokenx",
		Original:    "broken",
		Language:    "C",
		BenchType:   "Int",
		Description: "deliberately fails to compile",
		Source:      func(int) string { return "int main( { this is not MiniC" },
	}
}

// TestSuiteSurvivesCrashingWorkload is the issue's acceptance scenario: ten
// workloads, one of which crashes, and the other nine still complete with
// the failure reported in its result row.
func TestSuiteSurvivesCrashingWorkload(t *testing.T) {
	s := NewSuite(1)
	if len(s.Workloads) != 10 {
		t.Fatalf("default suite has %d workloads, want 10", len(s.Workloads))
	}
	const crashIdx = 4
	s.Workloads[crashIdx] = crashingWorkload()
	s.ContinueOnError = true

	rows, err := s.Table2(context.Background())
	var se *SuiteError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SuiteError", err)
	}
	if se.Total != 10 || len(se.Failures) != 1 {
		t.Fatalf("suite error = %v, want exactly 1 of 10 failed", se)
	}
	f := se.Failures[0]
	if f.Index != crashIdx || f.Workload != "crashx" || !f.Panicked {
		t.Errorf("failure = %+v, want recovered panic at index %d", f, crashIdx)
	}
	if !strings.Contains(f.Err.Error(), "deliberate test crash") {
		t.Errorf("failure lost the panic value: %v", f.Err)
	}

	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if i == crashIdx {
			if r.Err == "" {
				t.Errorf("crashed row %d has no error", i)
			}
			if r.Name != "crashx" {
				t.Errorf("crashed row %d named %q", i, r.Name)
			}
			continue
		}
		if r.Err != "" {
			t.Errorf("healthy row %s reports error %q", r.Name, r.Err)
		}
		if r.Instructions == 0 {
			t.Errorf("healthy row %s traced 0 instructions", r.Name)
		}
	}

	// The rendered table marks the failed row and keeps the others.
	var buf bytes.Buffer
	if err := RenderTable2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FAILED") {
		t.Errorf("render has no FAILED marker:\n%s", buf.String())
	}
}

// TestSuiteFailFast checks the default mode: the first failure (in workload
// order) aborts the experiment with a *WorkloadError, and a panic is still
// contained rather than unwinding.
func TestSuiteFailFast(t *testing.T) {
	s := suite("xlispx", "naskerx")
	s.Workloads[0] = crashingWorkload()
	s.Parallelism = 1

	_, err := s.Table2(context.Background())
	var we *WorkloadError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WorkloadError", err)
	}
	if we.Index != 0 || !we.Panicked {
		t.Errorf("failure = %+v, want contained panic at index 0", we)
	}
	var se *SuiteError
	if errors.As(err, &se) {
		t.Error("fail-fast mode returned a *SuiteError")
	}
}

// TestSuiteCompileError covers the ordinary (non-panic) failure path with
// an analysis experiment, so failure marking is exercised on Table 3 too.
func TestSuiteCompileError(t *testing.T) {
	s := suite("xlispx")
	s.Workloads = append(s.Workloads, brokenWorkload())
	s.ContinueOnError = true

	rows, err := s.Table3(context.Background())
	var se *SuiteError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SuiteError", err)
	}
	if len(se.Failures) != 1 || se.Failures[0].Panicked {
		t.Fatalf("failures = %v, want 1 plain error", se.Failures)
	}
	if rows[0].Err != "" || rows[0].ConsAvailable <= 0 {
		t.Errorf("healthy row = %+v", rows[0])
	}
	if rows[1].Err == "" || rows[1].Name != "brokenx" {
		t.Errorf("failed row = %+v", rows[1])
	}
	var buf bytes.Buffer
	if err := RenderTable3(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FAILED") {
		t.Errorf("render has no FAILED marker:\n%s", buf.String())
	}
}

// TestParallelFailureAggregation is the fan-out engine's resilience
// scenario: a workload failing mid-suite while both the workload pool
// (Parallelism) and the per-config analyzer pool (Concurrency) are running
// in parallel must not disturb the other workloads — every healthy row
// completes, the failure is aggregated at the right index, and the rendered
// table marks exactly that row FAILED.
func TestParallelFailureAggregation(t *testing.T) {
	s := suite("xlispx", "naskerx", "matrixx", "tomcatvx", "fppppx")
	const brokenIdx = 2
	s.Workloads[brokenIdx] = brokenWorkload()
	s.ContinueOnError = true
	s.Parallelism = 4
	s.Concurrency = 4

	rows, err := s.Table3(context.Background())
	var se *SuiteError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SuiteError", err)
	}
	if se.Total != 5 || len(se.Failures) != 1 {
		t.Fatalf("suite error = %v, want exactly 1 of 5 failed", se)
	}
	if f := se.Failures[0]; f.Index != brokenIdx || f.Workload != "brokenx" {
		t.Errorf("failure = %+v, want index %d workload brokenx", f, brokenIdx)
	}
	for i, r := range rows {
		if i == brokenIdx {
			if r.Err == "" || r.Name != "brokenx" {
				t.Errorf("broken row = %+v, want FAILED marker", r)
			}
			continue
		}
		if r.Err != "" || r.ConsAvailable <= 0 || r.OptAvailable <= 0 {
			t.Errorf("healthy row %d = %+v, want complete metrics", i, r)
		}
	}
	var buf bytes.Buffer
	if err := RenderTable3(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "FAILED"); n != 1 {
		t.Errorf("render has %d FAILED markers, want 1:\n%s", n, buf.String())
	}

	// Fail-fast parallel mode: the lowest-indexed failure is returned as a
	// plain *WorkloadError, never wrapped in a *SuiteError.
	ff := suite("xlispx", "naskerx", "matrixx")
	ff.Workloads[1] = brokenWorkload()
	ff.Parallelism = 3
	ff.Concurrency = 3
	_, err = ff.Table3(context.Background())
	var we *WorkloadError
	if !errors.As(err, &we) || we.Index != 1 {
		t.Fatalf("fail-fast err = %v, want *WorkloadError at index 1", err)
	}
	if errors.As(err, &se) {
		t.Error("fail-fast parallel mode returned a *SuiteError")
	}
}

// TestWorkloadWatchdog drives one workload with an expired deadline and
// expects the timeout error, classified by its sentinel.
func TestWorkloadWatchdog(t *testing.T) {
	s := suite("xlispx")
	s.WorkloadTimeout = time.Nanosecond

	_, err := s.Table2(context.Background())
	if !errors.Is(err, ErrWorkloadTimeout) {
		t.Fatalf("err = %v, want ErrWorkloadTimeout", err)
	}
	var we *WorkloadError
	if !errors.As(err, &we) || we.Workload != "xlispx" {
		t.Errorf("err = %v, want a WorkloadError naming the workload", err)
	}

	// A generous deadline does not interfere.
	s.WorkloadTimeout = time.Minute
	if _, err := s.Table2(context.Background()); err != nil {
		t.Errorf("run with ample budget failed: %v", err)
	}
}
