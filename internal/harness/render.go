package harness

import (
	"fmt"
	"io"

	"paragraph/internal/stats"
)

// RenderTable1 prints the instruction-class operation times.
func RenderTable1(w io.Writer) error {
	t := stats.NewTable("Operation Class", "Steps")
	for _, row := range Table1() {
		t.AddRow(row.Class, row.Steps)
	}
	return t.Render(w)
}

// RenderTable2 prints the benchmark inventory.
func RenderTable2(w io.Writer, rows []Table2Row) error {
	t := stats.NewTable("Benchmark", "Models", "Source Language", "Type", "Instructions In Trace")
	for _, r := range rows {
		if r.Err != "" {
			t.AddRow(r.Name, r.Original, "-", "-", "FAILED: "+r.Err)
			continue
		}
		t.AddRow(r.Name, r.Original, r.Language, r.BenchType, stats.FormatInt(int64(r.Instructions)))
	}
	return t.Render(w)
}

// RenderTable3 prints the dataflow-limit table.
func RenderTable3(w io.Writer, rows []Table3Row) error {
	t := stats.NewTable("Benchmark", "Syscalls",
		"Cons CP", "Cons Avail", "Opt CP", "Opt Avail", "Max Error")
	for _, r := range rows {
		if r.Err != "" {
			t.AddRow(r.Name, "-", "-", "-", "-", "-", "FAILED: "+r.Err)
			continue
		}
		t.AddRow(r.Name, stats.FormatInt(int64(r.Syscalls)),
			stats.FormatInt(r.ConsCriticalPath), r.ConsAvailable,
			stats.FormatInt(r.OptCriticalPath), r.OptAvailable,
			fmt.Sprintf("%.2f", r.MaxError))
	}
	return t.Render(w)
}

// RenderTable4 prints the renaming-conditions table.
func RenderTable4(w io.Writer, rows []Table4Row) error {
	t := stats.NewTable("Benchmark", "No Renaming", "Regs Renamed", "Regs/Stack Renamed", "Reg/Mem Renamed")
	for _, r := range rows {
		if r.Err != "" {
			t.AddRow(r.Name, "-", "-", "-", "FAILED: "+r.Err)
			continue
		}
		t.AddRow(r.Name, r.NoRenaming, r.Regs, r.RegsStack, r.RegsMem)
	}
	return t.Render(w)
}

// RenderFigure7 prints each profile as an ASCII plot and offers the CSV of
// the series via WriteProfileCSV.
func RenderFigure7(w io.Writer, profiles []ProfileResult) error {
	for _, p := range profiles {
		title := fmt.Sprintf("%s parallelism profile (critical path %s, available %.2f, bucket %d levels)",
			p.Name, stats.FormatInt(p.CriticalPath), p.Available, p.BucketWidth)
		if err := stats.AsciiPlot(w, title, p.Profile, 24, 56); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteProfileCSV emits one benchmark's Figure-7 series as CSV.
func WriteProfileCSV(w io.Writer, p ProfileResult) error {
	return stats.WriteCSV(w, "level", "operations", p.Profile)
}

// RenderFigure8 prints the window sweep as a table: one row per window
// size, one column per benchmark (percent of total available parallelism).
func RenderFigure8(w io.Writer, series []WindowSeries) error {
	header := []string{"Window"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	t := stats.NewTable(header...)
	if len(series) == 0 {
		return t.Render(w)
	}
	for i := range series[0].Points {
		row := make([]any, 0, len(series)+1)
		win := series[0].Points[i].Window
		if win == 0 {
			row = append(row, "full")
		} else {
			row = append(row, stats.FormatInt(int64(win)))
		}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.2f%%", s.Points[i].Percent))
		}
		t.AddRow(row...)
	}
	return t.Render(w)
}

// WriteFigure8CSV emits the sweep as CSV (window, one column per series).
func WriteFigure8CSV(w io.Writer, series []WindowSeries) error {
	fmt.Fprint(w, "window")
	for _, s := range series {
		fmt.Fprintf(w, ",%s", s.Name)
	}
	fmt.Fprintln(w)
	if len(series) == 0 {
		return nil
	}
	for i := range series[0].Points {
		fmt.Fprintf(w, "%d", series[0].Points[i].Window)
		for _, s := range series {
			fmt.Fprintf(w, ",%g", s.Points[i].Percent)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RenderFunctionalUnits prints the E8 sweep.
func RenderFunctionalUnits(w io.Writer, rows []FURow) error {
	if len(rows) == 0 {
		return nil
	}
	header := []string{"Benchmark"}
	for _, f := range rows[0].Limits {
		if f == 0 {
			header = append(header, "unlimited")
		} else {
			header = append(header, fmt.Sprintf("%d FUs", f))
		}
	}
	t := stats.NewTable(header...)
	for _, r := range rows {
		row := make([]any, 0, len(r.Avail)+1)
		row = append(row, r.Name)
		for _, a := range r.Avail {
			row = append(row, a)
		}
		t.AddRow(row...)
	}
	return t.Render(w)
}

// RenderLifetimes prints the E9 distributions.
func RenderLifetimes(w io.Writer, rows []LifetimeRow) error {
	t := stats.NewTable("Benchmark", "Values", "Mean Lifetime", "P90 Lifetime", "Max Lifetime",
		"Mean Sharing", "Max Sharing", "Peak Live Words")
	for _, r := range rows {
		t.AddRow(r.Name,
			stats.FormatInt(int64(r.Lifetimes.Count())),
			r.Lifetimes.Mean(),
			stats.FormatInt(r.Lifetimes.Quantile(0.9)),
			stats.FormatInt(r.Lifetimes.Max()),
			r.Sharing.Mean(),
			stats.FormatInt(r.Sharing.Max()),
			stats.FormatInt(int64(r.MaxLiveMemory)))
	}
	return t.Render(w)
}

// RenderBranches prints the E10 branch-model sweep.
func RenderBranches(w io.Writer, rows []BranchRow) error {
	if len(rows) == 0 {
		return nil
	}
	header := []string{"Benchmark"}
	for _, p := range rows[0].Policies {
		header = append(header, p.String(), "miss%")
	}
	t := stats.NewTable(header...)
	for _, r := range rows {
		row := make([]any, 0, 2*len(r.Avail)+1)
		row = append(row, r.Name)
		for i := range r.Avail {
			row = append(row, r.Avail[i], fmt.Sprintf("%.1f%%", r.MissRate[i]*100))
		}
		t.AddRow(row...)
	}
	return t.Render(w)
}

// RenderUnroll prints the E7 ablation.
func RenderUnroll(w io.Writer, rows []UnrollRow) error {
	t := stats.NewTable("Benchmark", "Unroll", "Instructions", "Avail (full renaming)", "Avail (regs only)")
	for _, r := range rows {
		t.AddRow(r.Name, r.Factor, stats.FormatInt(int64(r.Instructions)), r.Available, r.AvailRegsOnly)
	}
	return t.Render(w)
}
