//go:build race

package harness

// raceDetectorEnabled reports whether the test binary was built with -race.
const raceDetectorEnabled = true
