package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"paragraph/internal/budget"
	"paragraph/internal/core"
	"paragraph/internal/trace"
	"paragraph/internal/workloads"
)

// ResolverStream is the producer's view of a resolved fan-out: a trace.Sink
// and trace.BatchSink whose events run through one config-invariant
// core.Resolver and emerge as dependence-record segments delivered to every
// scheduler — broadcast through a bounded trace.SegRing when schedulers run
// on their own goroutines, or applied inline on this goroutine on machines
// with nothing to gain from the ring (see resolvedSerial). The producer
// writes events exactly as it would into a trace.Ring; with a ring,
// backpressure applies when the slowest scheduler falls a full ring of
// segments behind.
type ResolverStream struct {
	res  *core.Resolver
	ring *trace.SegRing[*core.DepSegment] // nil on the serial path
	st   trace.ReadStats                  // serial path's stats, set via SetStats
}

// Event implements trace.Sink.
func (rs *ResolverStream) Event(e *trace.Event) error { return rs.res.Event(e) }

// Events implements trace.BatchSink.
func (rs *ResolverStream) Events(batch []trace.Event) error { return rs.res.Events(batch) }

// SetStats attaches the producing reader's skip accounting, mirroring
// trace.Ring.SetStats.
func (rs *ResolverStream) SetStats(st trace.ReadStats) {
	if rs.ring != nil {
		rs.ring.SetStats(st)
		return
	}
	rs.st = st
}

// resolveGroup is one rename group of a sweep: the configs (by index into
// the caller's slice) that can share a single resolution.
type resolveGroup struct {
	sig  core.ResolveSig
	idxs []int
}

// resolveGroups partitions configs by resolve signature, preserving first-
// appearance order.
func resolveGroups(cfgs []core.Config) []resolveGroup {
	var groups []resolveGroup
	where := make(map[core.ResolveSig]int)
	for i := range cfgs {
		sig := core.SigOf(&cfgs[i])
		gi, ok := where[sig]
		if !ok {
			gi = len(groups)
			where[sig] = gi
			groups = append(groups, resolveGroup{sig: sig})
		}
		groups[gi].idxs = append(groups[gi].idxs, i)
	}
	return groups
}

// FanOutResolved analyzes one event stream under every configuration by
// resolving dependencies once and scheduling per config: produce feeds
// events into a ResolverStream, whose resolver compiles them into compact
// record segments broadcast through a bounded trace.SegRing to one
// core.Scheduler goroutine per configuration. The expensive half of
// analysis — validation, live-well hashing, slot resolution — happens once
// for the whole group instead of once per config; each scheduler replays
// records with array indexing only.
//
// Every config must share one resolve signature (core.SigOf); callers with
// mixed groups run one FanOutResolved per group (see Suite.analyzeResolved).
// depth bounds producer run-ahead in segments (0 selects
// trace.DefaultSegRingDepth); the serial path holds exactly one segment and
// ignores depth. Error semantics match FanOutStream: the lowest-index
// failing configuration decides the error (prefixed "config %d:"), a
// deadline expiry surfaces as ErrWorkloadTimeout, panics are contained, and
// a producer failure — which now includes event validation, since the
// resolver validates for the whole group — is reported once, as itself, not
// once per configuration.
func FanOutResolved(ctx context.Context, produce func(*ResolverStream) error, cfgs []core.Config, depth int) ([]*core.Result, trace.ReadStats, error) {
	if len(cfgs) == 0 {
		return nil, trace.ReadStats{}, nil
	}
	if g := resolveGroups(cfgs); len(g) != 1 {
		return nil, trace.ReadStats{}, fmt.Errorf("harness: FanOutResolved configs span %d resolve groups; run one per group", len(g))
	}
	if resolvedSerial() {
		return fanOutResolvedSerial(ctx, produce, cfgs, depth)
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ring := trace.NewSegRing[*core.DepSegment](rctx, len(cfgs), depth)
	rs := &ResolverStream{ring: ring}
	rs.res = core.NewResolver(cfgs[0], func(seg *core.DepSegment) error { return ring.Send(seg) })

	// totals is written by the producer goroutine before CloseSend and read
	// by schedulers only after they observe EOF; the ring's mutex orders
	// the two, so the plain field is race-free.
	var totals core.ResolveTotals
	prodCh := make(chan error, 1)
	go func() {
		err := func() (err error) {
			defer func() {
				if v := recover(); v != nil {
					err = fmt.Errorf("producer panic: %v", v)
				}
			}()
			if perr := produce(rs); perr != nil {
				return perr
			}
			return rs.res.Flush()
		}()
		if err == nil {
			totals = rs.res.Totals()
		}
		ring.CloseSend(err)
		prodCh <- err
	}()

	results := make([]*core.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = scheduleOne(ring, i, cfgs[i], results, &totals)
		}(i)
	}
	wg.Wait()
	cancel()
	perr := <-prodCh
	stats := ring.Stats()

	// Same selection as FanOutStream: lowest-index consumer failure that is
	// the consumer's own; producer-failure echoes don't count.
	firstIdx, firstErr := -1, error(nil)
	for i, err := range errs {
		if err == nil {
			continue
		}
		var echo *trace.RingProducerError
		if errors.As(err, &echo) {
			continue
		}
		firstIdx, firstErr = i, err
		break
	}
	if perr != nil {
		if errors.Is(perr, trace.ErrRingDrained) {
			perr = nil // schedulers left first; their errors explain why
		} else if ctx.Err() == nil && errors.Is(perr, context.Canceled) {
			perr = nil // our own post-consumer cancel, not the caller's
		}
	}
	switch {
	case firstErr != nil && ctx.Err() != nil:
		return nil, stats, fmt.Errorf("config %d: %w", firstIdx, firstErr)
	case perr != nil:
		return nil, stats, perr
	case firstErr != nil:
		return nil, stats, fmt.Errorf("config %d: %w", firstIdx, firstErr)
	}
	return results, stats, nil
}

// scheduleOne drains one ring consumer into one scheduler.
func scheduleOne(ring *trace.SegRing[*core.DepSegment], i int, cfg core.Config, results []*core.Result, totals *core.ResolveTotals) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("panic: %v", v)
		}
	}()
	c := ring.Consumer(i)
	defer c.Close()
	sched := core.NewScheduler(cfg)
	for {
		seg, rerr := c.Next()
		if rerr != nil {
			if rerr == io.EOF {
				break
			}
			if errors.Is(rerr, context.DeadlineExceeded) {
				return fmt.Errorf("%w: %w", ErrWorkloadTimeout, rerr)
			}
			return rerr
		}
		if aerr := sched.Apply(seg); aerr != nil {
			return aerr
		}
	}
	r, ferr := sched.Finish(*totals)
	if ferr != nil {
		return ferr
	}
	results[i] = r
	return nil
}

// resolvedSerial reports whether FanOutResolved should schedule inline on
// the producer's goroutine instead of broadcasting segments through a
// SegRing. On a single-CPU runtime the ring buys no overlap — schedulers
// would only time-slice against the resolver — while the inline walk keeps
// each segment cache-resident across all N Apply calls and lets the
// resolver recycle segment buffers. A variable so the differential tests
// pin both topologies regardless of the host's core count.
var resolvedSerial = func() bool { return runtime.GOMAXPROCS(0) == 1 }

// errSchedulersDone aborts the producer once every scheduler has failed;
// the serial path's analogue of trace.ErrRingDrained.
var errSchedulersDone = errors.New("harness: every scheduler has failed")

// fanOutResolvedSerial is FanOutResolved without the ring. When the group
// is gang-eligible (core.NewSchedulerGang), each emitted segment is
// replayed once for every config by a SchedulerGang and segment buffers
// are recycled — the fastest path by far, since the config-invariant
// record work is not repeated per config. Otherwise the resolver's emit
// callback copies each segment into a bounded batch of persistent buffers
// and a full batch is swept scheduler-major: each scheduler replays the
// whole batch before the next scheduler starts, so a scheduler's slot
// table and window stay cache-hot across depth segments while the record
// words stream through sequentially. Either way the run holds only the
// resolver's recycled pair plus at most depth buffered segments, matching
// the ring's depth*ResolveSegmentBytes budget with zero per-segment
// garbage. Error semantics mirror the ring path: a failed scheduler stops
// receiving segments while the rest continue (a gang failure fails every
// config at once, exactly as a corrupt record would on the ring), and the
// lowest-index failure decides the reported error.
func fanOutResolvedSerial(ctx context.Context, produce func(*ResolverStream) error, cfgs []core.Config, depth int) ([]*core.Result, trace.ReadStats, error) {
	if depth <= 0 {
		depth = trace.DefaultSegRingDepth
	}
	if depth < trace.MinSegRingDepth {
		depth = trace.MinSegRingDepth
	}
	scheds := make([]*core.Scheduler, len(cfgs))
	for i := range cfgs {
		scheds[i] = core.NewScheduler(cfgs[i])
	}
	results := make([]*core.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	live := len(cfgs)

	gang := core.NewSchedulerGang(scheds)
	var batch []core.DepSegment
	nbatch := 0
	sweep := func() error {
		for i := range scheds {
			if scheds[i] == nil {
				continue
			}
			for j := 0; j < nbatch; j++ {
				if aerr := applySegment(scheds[i], &batch[j]); aerr != nil {
					errs[i] = aerr
					scheds[i] = nil
					live--
					break
				}
			}
		}
		nbatch = 0
		if live == 0 {
			return errSchedulersDone
		}
		return nil
	}
	var emit func(*core.DepSegment) error
	if gang != nil {
		emit = func(seg *core.DepSegment) error {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			if aerr := gang.Apply(seg); aerr != nil {
				for i := range scheds {
					errs[i] = aerr
					scheds[i] = nil
				}
				live = 0
				return errSchedulersDone
			}
			return nil
		}
	} else {
		batch = make([]core.DepSegment, depth)
		emit = func(seg *core.DepSegment) error {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			b := &batch[nbatch]
			b.Events = seg.Events
			b.NewLocs = append(b.NewLocs[:0], seg.NewLocs...)
			b.Code = append(b.Code[:0], seg.Code...)
			nbatch++
			if nbatch == len(batch) {
				return sweep()
			}
			return nil
		}
	}

	rs := &ResolverStream{}
	rs.res = core.NewResolver(cfgs[0], emit)
	rs.res.Recycle()

	perr := func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = fmt.Errorf("producer panic: %v", v)
			}
		}()
		if perr := produce(rs); perr != nil {
			return perr
		}
		return rs.res.Flush()
	}()
	if errors.Is(perr, errSchedulersDone) {
		perr = nil // the schedulers' own errors explain the early stop
	}
	if perr == nil && gang == nil {
		if serr := sweep(); serr != nil && !errors.Is(serr, errSchedulersDone) {
			perr = serr
		}
	}
	if perr == nil {
		if gang != nil && live > 0 {
			gang.Seal()
		}
		totals := rs.res.Totals()
		for i := range scheds {
			if scheds[i] == nil {
				continue
			}
			if r, ferr := finishScheduler(scheds[i], totals); ferr != nil {
				errs[i] = ferr
			} else {
				results[i] = r
			}
		}
	}

	firstIdx, firstErr := -1, error(nil)
	for i, err := range errs {
		if err != nil {
			firstIdx, firstErr = i, err
			break
		}
	}
	switch {
	case firstErr != nil && ctx.Err() != nil:
		return nil, rs.st, fmt.Errorf("config %d: %w", firstIdx, firstErr)
	case perr != nil:
		if errors.Is(perr, context.DeadlineExceeded) && !errors.Is(perr, ErrWorkloadTimeout) {
			perr = fmt.Errorf("%w: %w", ErrWorkloadTimeout, perr)
		}
		return nil, rs.st, perr
	case firstErr != nil:
		return nil, rs.st, fmt.Errorf("config %d: %w", firstIdx, firstErr)
	}
	return results, rs.st, nil
}

// applySegment applies one segment with the same panic containment a
// scheduler goroutine gets on the ring path.
func applySegment(s *core.Scheduler, seg *core.DepSegment) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("panic: %v", v)
		}
	}()
	return s.Apply(seg)
}

// finishScheduler finalizes one scheduler with panic containment.
func finishScheduler(s *core.Scheduler, totals core.ResolveTotals) (r *core.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("panic: %v", v)
		}
	}()
	return s.Finish(totals)
}

// analyzeResolved is AnalyzeMulti's shared-extraction engine: configs are
// partitioned into rename groups and the workload is simulated once per
// group, each pass resolving dependencies once and fanning record segments
// out to that group's schedulers. memBudget semantics mirror analyzeRing:
// the segment ring may spend at most half the budget, and a budget too
// small for even a trace.MinSegRingDepth ring falls back by policy —
// Degrade re-runs on the streaming engine and marks EngineDowngraded,
// FailFast returns a structured budget error, WarnOnly proceeds at the
// floor.
//
// With more than one group, error messages keep their group-local
// "config %d:" index (EngineAuto only selects this engine for sweeps where
// sharing exists; explicit multi-group use trades that cosmetic detail for
// one resolution per group).
func (s *Suite) analyzeResolved(wctx context.Context, w *workloads.Workload, cfgs []core.Config, memBudget int64) ([]*core.Result, error) {
	depth := trace.DefaultSegRingDepth
	if memBudget > 0 {
		limit := memBudget / 2
		if fit := int(limit / core.ResolveSegmentBytes); fit < depth {
			depth = fit
		}
		if depth < trace.MinSegRingDepth {
			switch s.BudgetPolicy {
			case budget.Degrade:
				results, err := s.analyzeStreaming(wctx, w, cfgs)
				if err != nil {
					return nil, err
				}
				for _, r := range results {
					if r.Governor != nil {
						r.Governor.EngineDowngraded = true
					}
				}
				return results, nil
			case budget.FailFast:
				return nil, &budget.Error{
					Resource:   budget.EventBuffer,
					UsageBytes: int64(trace.MinSegRingDepth) * core.ResolveSegmentBytes,
					LimitBytes: limit,
				}
			default: // WarnOnly: run anyway at the floor.
				depth = trace.MinSegRingDepth
			}
		}
	}
	results := make([]*core.Result, len(cfgs))
	for _, g := range resolveGroups(cfgs) {
		gcfgs := make([]core.Config, len(g.idxs))
		for j, idx := range g.idxs {
			gcfgs[j] = cfgs[idx]
		}
		produce := func(rs *ResolverStream) error {
			_, err := w.Run(s.Scale, s.options(), guardSink(wctx, rs), s.MaxInstr)
			return err
		}
		gres, _, err := FanOutResolved(wctx, produce, gcfgs, depth)
		if err != nil {
			return nil, err
		}
		for j, idx := range g.idxs {
			results[idx] = gres[j]
		}
	}
	return results, nil
}
