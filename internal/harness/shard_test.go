package harness

// The sharded-analysis differential battery: analyzing a trace in N shards
// (chunk-boundary split, checkpoint handoff, deterministic merge) must yield
// Results deeply equal to one monolithic pass over the same bytes — for
// every configuration the paper's sweeps use, for every shard count, on
// clean and on damaged traces. `make differential` runs these under the
// race detector, so they also audit the shard pipeline's decode/analysis
// overlap for data races.

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"paragraph/internal/budget"
	"paragraph/internal/core"
	"paragraph/internal/faultinject"
	"paragraph/internal/shard"
	"paragraph/internal/trace"
	"paragraph/internal/workloads"
)

// shardConfigs is the sweep union plus the two paths the fan-out battery
// does not cover: the full collection set (lifetime/sharing/storage
// distributions, which merge across shards) and a governed run (the budget
// Governor's stats must reassemble exactly from per-shard pieces).
func shardConfigs() []core.Config {
	cfgs := sweepConfigs()
	full := core.Dataflow(core.SyscallConservative)
	full.StorageProfile = true
	full.Lifetimes = true
	full.Sharing = true
	cfgs = append(cfgs, full)
	gov := core.Dataflow(core.SyscallConservative)
	gov.Profile = false
	gov.WindowSize = 2048
	gov.MemBudget = 64 << 10
	gov.BudgetPolicy = budget.Degrade
	cfgs = append(cfgs, gov)
	return cfgs
}

// shardCounts is the battery's shard-count axis: trivial (1), even (2),
// odd-and-uneven (7), and whatever this machine would use by default.
func shardCounts() []int {
	counts := []int{1, 2, 7}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 7 {
		counts = append(counts, p)
	}
	return counts
}

// recordTrace simulates a workload and encodes the recording as a v2 trace
// with small chunks, so even the capped recordings split into many shards.
// The event cap keeps the battery bounded under -race: the equivalence
// claim is per-byte-range, so trace length adds nothing past coverage.
func recordTrace(t *testing.T, name string, maxInstr uint64) []byte {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	s := NewSuite(1)
	buf := &trace.EventBuffer{}
	if _, err := w.Run(s.Scale, s.options(), buf, maxInstr); err != nil {
		t.Fatalf("workload %s: %v", name, err)
	}
	var enc bytes.Buffer
	tw, err := trace.NewWriterOpts(&enc, trace.WriterOptions{ChunkBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := buf.Replay(tw); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return enc.Bytes()
}

// monolithicRef is the reference implementation: one analyzer over the
// whole trace, reading the bytes the same way the shards collectively do.
func monolithicRef(t *testing.T, data []byte, cfg core.Config, degraded bool) (*core.Result, trace.ReadStats) {
	t.Helper()
	var rs trace.ReadStats
	res, err := core.AnalyzeTraceOpts(context.Background(), bytes.NewReader(data), cfg,
		core.TwoPassOptions{Degraded: degraded, Stats: &rs})
	if err != nil {
		t.Fatalf("monolithic analysis: %v", err)
	}
	return res, rs
}

// TestDifferentialSharded is the sharded-equals-monolithic proof on real
// recorded workloads: every config × every shard count, deep-equal Results
// and identical ReadStats.
func TestDifferentialSharded(t *testing.T) {
	cfgs := shardConfigs()
	for _, name := range []string{"xlispx", "matrixx", "spicex"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			data := recordTrace(t, name, 200_000)
			want := make([]*core.Result, len(cfgs))
			var wantStats trace.ReadStats
			for i, cfg := range cfgs {
				want[i], wantStats = monolithicRef(t, data, cfg, false)
			}
			for _, n := range shardCounts() {
				results, rs, err := shard.AnalyzeMulti(context.Background(), data, cfgs, n, shard.Options{})
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				for i := range cfgs {
					if !reflect.DeepEqual(results[i], want[i]) {
						t.Errorf("n=%d config %d: sharded Result differs from monolithic\nsharded:    %v\nmonolithic: %v",
							n, i, results[i], want[i])
					}
				}
				if rs != wantStats {
					t.Errorf("n=%d: ReadStats = %+v, want %+v", n, rs, wantStats)
				}
			}
		})
	}
}

// TestDifferentialShardedDegraded repeats the proof on a damaged trace read
// in degraded mode: corrupt chunks, a duplicated chunk and a torn tail must
// be skipped identically whether one reader or N shard readers see them.
func TestDifferentialShardedDegraded(t *testing.T) {
	cfgs := []core.Config{shardConfigs()[len(shardConfigs())-2]} // the full collection config
	cfgs = append(cfgs, core.Config{Syscalls: core.SyscallConservative, RenameRegisters: true})
	data := recordTrace(t, "naskerx", 150_000)
	var err error
	for _, i := range []int{3, 11} {
		data, err = faultinject.CorruptChunk(data, i, int64(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	data, err = faultinject.DuplicateChunk(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	data = faultinject.Truncate(data, 9)

	want := make([]*core.Result, len(cfgs))
	var wantStats trace.ReadStats
	for i, cfg := range cfgs {
		want[i], wantStats = monolithicRef(t, data, cfg, true)
	}
	if wantStats.SkippedChunks == 0 || wantStats.DuplicateChunks == 0 {
		t.Fatalf("damage fixture too mild: %+v", wantStats)
	}
	for _, n := range shardCounts() {
		results, rs, err := shard.AnalyzeMulti(context.Background(), data, cfgs, n, shard.Options{Degraded: true})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range cfgs {
			if !reflect.DeepEqual(results[i], want[i]) {
				t.Errorf("n=%d config %d: degraded sharded Result differs from monolithic", n, i)
			}
		}
		if rs != wantStats {
			t.Errorf("n=%d: ReadStats = %+v, want %+v", n, rs, wantStats)
		}
	}
}

// TestDifferentialSpeculative is the speculative-equals-monolithic proof on
// real recorded workloads: the speculative driver (parallel entry-state-free
// shard compilation + sequential seam splice) must match the monolithic
// reference exactly, for every config × every shard count. Under -race this
// also audits the build/splice pipeline's concurrency.
func TestDifferentialSpeculative(t *testing.T) {
	cfgs := shardConfigs()
	for _, name := range []string{"xlispx", "spicex"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			data := recordTrace(t, name, 200_000)
			want := make([]*core.Result, len(cfgs))
			var wantStats trace.ReadStats
			for i, cfg := range cfgs {
				want[i], wantStats = monolithicRef(t, data, cfg, false)
			}
			for _, n := range shardCounts() {
				results, rs, err := shard.AnalyzeMulti(context.Background(), data, cfgs, n, shard.Options{Speculate: true})
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				for i := range cfgs {
					if !reflect.DeepEqual(results[i], want[i]) {
						t.Errorf("n=%d config %d: speculative Result differs from monolithic", n, i)
					}
				}
				if rs != wantStats {
					t.Errorf("n=%d: ReadStats = %+v, want %+v", n, rs, wantStats)
				}
			}
		})
	}
}

// TestDifferentialSpeculativeDegraded repeats the speculative proof on a
// damaged trace read in degraded mode, and cross-checks the chained driver
// on the same bytes so all three engines (monolithic, chained, speculative)
// are pinned to each other in one place.
func TestDifferentialSpeculativeDegraded(t *testing.T) {
	cfgs := []core.Config{shardConfigs()[len(shardConfigs())-2]} // the full collection config
	cfgs = append(cfgs, core.Config{Branches: core.BranchTwoBit, PredictorBits: 8, RenameRegisters: true})
	data := recordTrace(t, "matrixx", 150_000)
	var err error
	for _, i := range []int{3, 11} {
		data, err = faultinject.CorruptChunk(data, i, int64(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	data, err = faultinject.DuplicateChunk(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	data = faultinject.Truncate(data, 9)

	want := make([]*core.Result, len(cfgs))
	var wantStats trace.ReadStats
	for i, cfg := range cfgs {
		want[i], wantStats = monolithicRef(t, data, cfg, true)
	}
	if wantStats.SkippedChunks == 0 || wantStats.DuplicateChunks == 0 {
		t.Fatalf("damage fixture too mild: %+v", wantStats)
	}
	for _, n := range shardCounts() {
		spec, srs, err := shard.AnalyzeMulti(context.Background(), data, cfgs, n, shard.Options{Degraded: true, Speculate: true})
		if err != nil {
			t.Fatalf("speculative n=%d: %v", n, err)
		}
		chained, crs, err := shard.AnalyzeMulti(context.Background(), data, cfgs, n, shard.Options{Degraded: true})
		if err != nil {
			t.Fatalf("chained n=%d: %v", n, err)
		}
		for i := range cfgs {
			if !reflect.DeepEqual(spec[i], want[i]) {
				t.Errorf("n=%d config %d: degraded speculative Result differs from monolithic", n, i)
			}
			if !reflect.DeepEqual(spec[i], chained[i]) {
				t.Errorf("n=%d config %d: speculative Result differs from chained", n, i)
			}
		}
		if srs != wantStats || crs != wantStats {
			t.Errorf("n=%d: ReadStats speculative %+v chained %+v, want %+v", n, srs, crs, wantStats)
		}
	}
}

// TestGoldenShardMerge pins the pgshard merge report byte-for-byte: the
// per-shard table and combined metrics for a deterministic workload split
// three ways. Regenerate with -update after intended analyzer or renderer
// changes.
func TestGoldenShardMerge(t *testing.T) {
	skipUnderRace(t)
	data := recordTrace(t, "xlispx", 150_000)
	cfg := core.Dataflow(core.SyscallConservative)
	cfg.StorageProfile = true
	cfg.Lifetimes = true
	cfg.Sharing = true

	plan, err := shard.Split(data, 3, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a := core.NewAnalyzer(cfg)
	parts := make([]*shard.Result, len(plan.Shards))
	for i, sh := range plan.Shards {
		buf, err := shard.DecodeShard(ctx, data, sh, false)
		if err != nil {
			t.Fatal(err)
		}
		parts[i], _, err = shard.RunShard(ctx, a, buf, cfg, sh, len(plan.Shards), false)
		if err != nil {
			t.Fatal(err)
		}
	}
	res, rs, err := shard.Merge(parts)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := shard.RenderMerge(&out, res, rs, parts); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "pgshard-merge.txt", out.String())
}
