package stats

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// LogDist is a base-2 logarithmically bucketed distribution of non-negative
// integers. Bucket k holds values in [2^(k-1), 2^k) for k >= 1; bucket 0
// holds the value 0 and bucket 1 the value 1. It is used for long-tailed
// quantities such as value lifetimes (in DDG levels) and degrees of sharing
// (consumers per value), where exact counts matter near zero and orders of
// magnitude suffice in the tail.
type LogDist struct {
	buckets [66]uint64
	count   uint64
	sum     float64
	min     int64
	max     int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Add records one observation.
func (d *LogDist) Add(v int64) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative observation %d", v))
	}
	if d.count == 0 || v < d.min {
		d.min = v
	}
	if d.count == 0 || v > d.max {
		d.max = v
	}
	d.buckets[bucketOf(v)]++
	d.count++
	d.sum += float64(v)
}

// Count returns the number of observations.
func (d *LogDist) Count() uint64 { return d.count }

// Mean returns the arithmetic mean, or 0 with no observations.
func (d *LogDist) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return d.sum / float64(d.count)
}

// Min and Max return the extreme observations (0 if empty).
func (d *LogDist) Min() int64 { return d.min }

// Max returns the largest observation (0 if empty).
func (d *LogDist) Max() int64 { return d.max }

// DistBucket is one row of a rendered distribution.
type DistBucket struct {
	Low, High int64 // inclusive value range
	Count     uint64
}

// Buckets returns the populated buckets, lowest first.
func (d *LogDist) Buckets() []DistBucket {
	var out []DistBucket
	for k, c := range d.buckets {
		if c == 0 {
			continue
		}
		var low, high int64
		switch k {
		case 0:
			low, high = 0, 0
		case 1:
			low, high = 1, 1
		default:
			low = int64(1) << (k - 1)
			high = low*2 - 1
		}
		out = append(out, DistBucket{Low: low, High: high, Count: c})
	}
	return out
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) using the
// bucket boundaries: the high edge of the bucket containing the q-th
// observation. With no observations it returns 0.
func (d *LogDist) Quantile(q float64) int64 {
	if d.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(d.count)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for k, c := range d.buckets {
		seen += c
		if seen >= target {
			switch k {
			case 0:
				return 0
			case 1:
				return 1
			default:
				return int64(1)<<k - 1
			}
		}
	}
	return d.max
}

// String renders a compact summary.
func (d *LogDist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.2f min=%d max=%d", d.count, d.Mean(), d.min, d.max)
	return b.String()
}

// LogDistState is the exported snapshot of a LogDist, used to persist
// analysis checkpoints. It round-trips exactly through LogDistFromState
// (Sum is a float64 and is preserved bit-for-bit by gob).
type LogDistState struct {
	Buckets []uint64
	Count   uint64
	Sum     float64
	Min     int64
	Max     int64
}

// State snapshots the distribution.
func (d *LogDist) State() LogDistState {
	return LogDistState{
		Buckets: append([]uint64(nil), d.buckets[:]...),
		Count:   d.count,
		Sum:     d.sum,
		Min:     d.min,
		Max:     d.max,
	}
}

// LogDistFromState rebuilds a distribution from a snapshot.
func LogDistFromState(s LogDistState) LogDist {
	var d LogDist
	copy(d.buckets[:], s.Buckets)
	d.count = s.Count
	d.sum = s.Sum
	d.min = s.Min
	d.max = s.Max
	return d
}

// MarshalJSON persists the distribution through its exported State; the
// unexported fields would otherwise serialize as {} and silently drop the
// data. Go's JSON encoding of float64 round-trips exactly, so Sum survives.
func (d LogDist) MarshalJSON() ([]byte, error) { return json.Marshal(d.State()) }

// UnmarshalJSON rebuilds the distribution from a persisted State.
func (d *LogDist) UnmarshalJSON(b []byte) error {
	var s LogDistState
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	*d = LogDistFromState(s)
	return nil
}

// GobEncode persists the distribution through its exported State; like the
// JSON path, gob cannot see the unexported fields, and without an explicit
// encoder any struct embedding a LogDist (core.Result, shard results) would
// fail to gob-encode at all. Gob preserves the float64 Sum bit-for-bit.
func (d LogDist) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d.State()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode rebuilds the distribution persisted by GobEncode.
func (d *LogDist) GobDecode(b []byte) error {
	var s LogDistState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
		return err
	}
	*d = LogDistFromState(s)
	return nil
}

// Merge adds all observations of other into d, preserving counts, sums and
// extremes.
func (d *LogDist) Merge(other *LogDist) {
	if other.count == 0 {
		return
	}
	if d.count == 0 || other.min < d.min {
		d.min = other.min
	}
	if d.count == 0 || other.max > d.max {
		d.max = other.max
	}
	for k, c := range other.buckets {
		d.buckets[k] += c
	}
	d.count += other.count
	d.sum += other.sum
}
