package stats

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevelHistogramBasic(t *testing.T) {
	h := NewLevelHistogram(16)
	h.Add(0, 4)
	h.Add(1, 2)
	h.Add(2, 1)
	h.Add(3, 1)
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
	maxL, ok := h.MaxLevel()
	if !ok || maxL != 3 {
		t.Errorf("max level = %d, %v", maxL, ok)
	}
	prof := h.Profile()
	want := []float64{4, 2, 1, 1}
	for i, p := range prof {
		if p.Ops != want[i] {
			t.Errorf("profile[%d] = %v, want %v", i, p.Ops, want[i])
		}
	}
	if h.Width() != 1 {
		t.Errorf("width = %d", h.Width())
	}
}

func TestLevelHistogramRescale(t *testing.T) {
	h := NewLevelHistogram(4)
	for level := int64(0); level < 16; level++ {
		h.Add(level, 1)
	}
	// 16 levels in 4 buckets: width must have grown to 4.
	if h.Width() != 4 {
		t.Errorf("width = %d, want 4", h.Width())
	}
	if h.Total() != 16 {
		t.Errorf("total = %d", h.Total())
	}
	for i, p := range h.Profile() {
		if p.Ops != 1.0 {
			t.Errorf("profile[%d] = %v, want 1.0 (uniform)", i, p.Ops)
		}
	}
}

func TestLevelHistogramMassConservedQuick(t *testing.T) {
	f := func(levels []uint16) bool {
		h := NewLevelHistogram(8)
		var total uint64
		for _, l := range levels {
			h.Add(int64(l), 1)
			total++
		}
		return h.Total() == total
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLevelHistogramProfileMassQuick(t *testing.T) {
	// Sum over buckets of (avg ops × span) must equal the total count.
	f := func(levels []uint16) bool {
		if len(levels) == 0 {
			return true
		}
		h := NewLevelHistogram(8)
		for _, l := range levels {
			h.Add(int64(l), 1)
		}
		maxL, _ := h.MaxLevel()
		var mass float64
		prof := h.Profile()
		for i, p := range prof {
			span := h.Width()
			if i == len(prof)-1 {
				span = maxL - p.Level + 1
				if span <= 0 || span > h.Width() {
					span = h.Width()
				}
			}
			mass += p.Ops * float64(span)
		}
		diff := mass - float64(h.Total())
		return diff < 1e-6 && diff > -1e-6
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLevelHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewLevelHistogram(4).Add(-1, 1)
}

func TestLevelHistogramMerge(t *testing.T) {
	a := NewLevelHistogram(8)
	b := NewLevelHistogram(8)
	a.Add(0, 3)
	a.Add(5, 2)
	b.Add(7, 4)
	a.Merge(b)
	if a.Total() != 9 {
		t.Errorf("merged total = %d", a.Total())
	}
	maxL, _ := a.MaxLevel()
	if maxL != 7 {
		t.Errorf("merged max = %d", maxL)
	}
}

func TestLogDist(t *testing.T) {
	var d LogDist
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 100, 1000} {
		d.Add(v)
	}
	if d.Count() != 8 {
		t.Errorf("count = %d", d.Count())
	}
	if d.Min() != 0 || d.Max() != 1000 {
		t.Errorf("min/max = %d/%d", d.Min(), d.Max())
	}
	wantMean := float64(0+1+1+2+3+4+100+1000) / 8
	if d.Mean() != wantMean {
		t.Errorf("mean = %v, want %v", d.Mean(), wantMean)
	}
	buckets := d.Buckets()
	if buckets[0].Low != 0 || buckets[0].Count != 1 {
		t.Errorf("bucket 0 = %+v", buckets[0])
	}
	if buckets[1].Low != 1 || buckets[1].Count != 2 {
		t.Errorf("bucket 1 = %+v", buckets[1])
	}
	var total uint64
	for _, b := range buckets {
		total += b.Count
	}
	if total != 8 {
		t.Errorf("bucket mass = %d", total)
	}
}

func TestLogDistQuantile(t *testing.T) {
	var d LogDist
	for i := int64(1); i <= 100; i++ {
		d.Add(i)
	}
	if q := d.Quantile(0.5); q < 50 || q > 127 {
		t.Errorf("median bound = %d", q)
	}
	if q := d.Quantile(1.0); q < 100 {
		t.Errorf("q100 = %d", q)
	}
	var empty LogDist
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile nonzero")
	}
}

func TestLogDistMerge(t *testing.T) {
	var a, b LogDist
	a.Add(5)
	b.Add(50)
	b.Add(2)
	a.Merge(&b)
	if a.Count() != 3 || a.Min() != 2 || a.Max() != 50 {
		t.Errorf("merge: %v", a.String())
	}
}

func TestLogDistMassQuick(t *testing.T) {
	f := func(vals []uint32) bool {
		var d LogDist
		for _, v := range vals {
			d.Add(int64(v))
		}
		var mass uint64
		for _, b := range d.Buckets() {
			if b.Low > b.High {
				return false
			}
			mass += b.Count
		}
		return mass == d.Count()
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Benchmark", "Parallelism")
	tab.AddRow("cc1", 36.21)
	tab.AddRow("matrix300", 23302.6)
	out := tab.String()
	if !strings.Contains(out, "cc1") || !strings.Contains(out, "36.21") {
		t.Errorf("table missing cells:\n%s", out)
	}
	if !strings.Contains(out, "23,302.60") {
		t.Errorf("thousands separator missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := map[int64]string{
		0: "0", 999: "999", 1000: "1,000", 1234567: "1,234,567", -5650548: "-5,650,548",
	}
	for v, want := range cases {
		if got := FormatInt(v); got != want {
			t.Errorf("FormatInt(%d) = %q, want %q", v, got, want)
		}
	}
	if got := FormatFloat(-1234.5); got != "-1,234.50" {
		t.Errorf("FormatFloat = %q", got)
	}
	if got := FormatFloat(13.284); got != "13.28" {
		t.Errorf("FormatFloat = %q", got)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	pts := []ProfilePoint{{Level: 0, Ops: 4}, {Level: 1, Ops: 2.5}}
	if err := WriteCSV(&buf, "level", "ops", pts); err != nil {
		t.Fatal(err)
	}
	want := "level,ops\n0,4\n1,2.5\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

func TestAsciiPlot(t *testing.T) {
	var buf bytes.Buffer
	pts := make([]ProfilePoint, 100)
	for i := range pts {
		pts[i] = ProfilePoint{Level: int64(i), Ops: float64(i % 10)}
	}
	if err := AsciiPlot(&buf, "test profile", pts, 20, 30); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "test profile\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 10 || len(lines) > 22 {
		t.Errorf("downsampling produced %d rows", len(lines))
	}
	// Empty series should not error.
	if err := AsciiPlot(&buf, "empty", nil, 0, 0); err != nil {
		t.Fatal(err)
	}
}
