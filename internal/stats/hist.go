// Package stats provides the statistics containers used by the Paragraph
// analyzer and its experiment harness: a parallelism-profile histogram that
// automatically coarsens its bucket width as the DDG deepens (the paper's
// "when the range of Ldest becomes too large ... a range of Ldest values is
// mapped to each distribution entry"), logarithmically bucketed
// distributions for value lifetimes and sharing degrees, and small helpers
// for rendering tables, CSV series and ASCII plots.
package stats

import "fmt"

// DefaultMaxBuckets is the profile resolution used when none is specified.
// 1<<16 buckets keep profiles of multi-million-level DDGs under a megabyte.
const DefaultMaxBuckets = 1 << 16

// LevelHistogram counts operations per DDG level. Levels are non-negative
// and unbounded; when the deepest level exceeds the bucket capacity, the
// bucket width doubles (existing counts are folded pairwise), so memory is
// bounded by maxBuckets regardless of critical-path length.
type LevelHistogram struct {
	counts     []uint64
	width      int64 // levels per bucket, a power of two
	maxBuckets int
	total      uint64
	maxLevel   int64
	haveLevel  bool
}

// NewLevelHistogram returns a histogram holding at most maxBuckets buckets;
// maxBuckets <= 0 selects DefaultMaxBuckets.
func NewLevelHistogram(maxBuckets int) *LevelHistogram {
	if maxBuckets <= 0 {
		maxBuckets = DefaultMaxBuckets
	}
	if maxBuckets < 2 {
		maxBuckets = 2
	}
	return &LevelHistogram{width: 1, maxBuckets: maxBuckets}
}

// Add records n operations at the given level.
func (h *LevelHistogram) Add(level int64, n uint64) {
	if level < 0 {
		panic(fmt.Sprintf("stats: negative DDG level %d", level))
	}
	for level/h.width >= int64(h.maxBuckets) {
		h.rescale()
	}
	idx := level / h.width
	if int(idx) >= len(h.counts) {
		h.counts = append(h.counts, make([]uint64, int(idx)+1-len(h.counts))...)
	}
	h.counts[idx] += n
	h.total += n
	if !h.haveLevel || level > h.maxLevel {
		h.maxLevel = level
		h.haveLevel = true
	}
}

// rescale doubles the bucket width, folding counts pairwise.
func (h *LevelHistogram) rescale() {
	half := (len(h.counts) + 1) / 2
	for i := 0; i < half; i++ {
		var v uint64
		v = h.counts[2*i]
		if 2*i+1 < len(h.counts) {
			v += h.counts[2*i+1]
		}
		h.counts[i] = v
	}
	h.counts = h.counts[:half]
	h.width *= 2
}

// Total returns the number of operations recorded.
func (h *LevelHistogram) Total() uint64 { return h.total }

// MaxLevel returns the deepest level recorded and whether any level has
// been recorded at all.
func (h *LevelHistogram) MaxLevel() (int64, bool) { return h.maxLevel, h.haveLevel }

// Width returns the current bucket width in levels.
func (h *LevelHistogram) Width() int64 { return h.width }

// NumBuckets returns the number of populated buckets.
func (h *LevelHistogram) NumBuckets() int { return len(h.counts) }

// ProfilePoint is one point of a parallelism profile: the first level of the
// bucket and the average number of operations per level within it.
type ProfilePoint struct {
	Level int64
	Ops   float64
}

// Profile returns the parallelism profile as (level, average ops per level)
// points, one per bucket. The final bucket's average uses only the levels up
// to the deepest recorded level, so sparse tails are not diluted.
func (h *LevelHistogram) Profile() []ProfilePoint {
	out := make([]ProfilePoint, len(h.counts))
	for i, c := range h.counts {
		start := int64(i) * h.width
		span := h.width
		if i == len(h.counts)-1 && h.haveLevel {
			span = h.maxLevel - start + 1
			if span <= 0 || span > h.width {
				span = h.width
			}
		}
		out[i] = ProfilePoint{Level: start, Ops: float64(c) / float64(span)}
	}
	return out
}

// Clone returns an independent deep copy of the histogram. Used for
// analysis checkpoints.
func (h *LevelHistogram) Clone() *LevelHistogram {
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}

// LevelHistogramState is the exported snapshot of a LevelHistogram, used to
// persist analysis checkpoints. It round-trips exactly through
// LevelHistogramFromState.
type LevelHistogramState struct {
	Counts     []uint64
	Width      int64
	MaxBuckets int
	Total      uint64
	MaxLevel   int64
	HaveLevel  bool
}

// State snapshots the histogram.
func (h *LevelHistogram) State() LevelHistogramState {
	return LevelHistogramState{
		Counts:     append([]uint64(nil), h.counts...),
		Width:      h.width,
		MaxBuckets: h.maxBuckets,
		Total:      h.total,
		MaxLevel:   h.maxLevel,
		HaveLevel:  h.haveLevel,
	}
}

// LevelHistogramFromState rebuilds a histogram from a snapshot.
func LevelHistogramFromState(s LevelHistogramState) *LevelHistogram {
	h := NewLevelHistogram(s.MaxBuckets)
	h.counts = append([]uint64(nil), s.Counts...)
	if s.Width > 0 {
		h.width = s.Width
	}
	h.total = s.Total
	h.maxLevel = s.MaxLevel
	h.haveLevel = s.HaveLevel
	return h
}

// Merge adds all mass from other into h. Used to combine profiles of
// parallel shards.
//
// Power-of-two widths nest, so the receiver first coarsens until its width
// is at least other's; every source bucket then lands wholly inside one
// receiver bucket and the merged histogram has exactly the counts a single
// histogram fed all observations would have. Without the alignment, a
// coarse bucket re-added at its start level can land in a finer receiver
// bucket than the original observations occupied, making merge order
// visible. Given equal bucket capacities, merge is commutative and
// associative; the shard-result merger relies on that exactness.
func (h *LevelHistogram) Merge(other *LevelHistogram) {
	for h.width < other.width {
		h.rescale()
	}
	for i, c := range other.counts {
		if c == 0 {
			continue
		}
		h.Add(int64(i)*other.width, c)
	}
	if other.haveLevel && (!h.haveLevel || other.maxLevel > h.maxLevel) {
		h.maxLevel = other.maxLevel
		h.haveLevel = true
	}
}
