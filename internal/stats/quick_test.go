package stats

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Property tests for the merge operations the shard-result merger depends
// on. Sharded analysis reassembles per-shard histograms and distributions
// with Merge, so Merge must behave like a mathematical sum: commutative,
// associative, with the zero container as identity, and exactly preserved
// by the State round-trip used for gob persistence.

// histFromSeed builds a deterministic histogram. All generated histograms
// share maxBuckets (as all shards of one analysis do); levels span several
// octaves so rescaling — and therefore the width-alignment path of Merge —
// is exercised.
func histFromSeed(seed int64, maxBuckets int) *LevelHistogram {
	rng := rand.New(rand.NewSource(seed))
	h := NewLevelHistogram(maxBuckets)
	n := rng.Intn(64)
	for i := 0; i < n; i++ {
		level := rng.Int63n(1 << uint(4+rng.Intn(16)))
		h.Add(level, uint64(1+rng.Intn(5)))
	}
	return h
}

// mergeHist merges without mutating its arguments.
func mergeHist(a, b *LevelHistogram) *LevelHistogram {
	m := a.Clone()
	m.Merge(b)
	return m
}

// histEqual compares full observable state — bucket contents, width, total
// and extremes. Merge must produce identical state regardless of order, so
// State equality (not just Profile equality) is the right notion.
func histEqual(a, b *LevelHistogram) bool {
	return reflect.DeepEqual(a.State(), b.State())
}

func TestQuickLevelHistogramMergeCommutative(t *testing.T) {
	f := func(sa, sb int64) bool {
		a, b := histFromSeed(sa, 256), histFromSeed(sb, 256)
		return histEqual(mergeHist(a, b), mergeHist(b, a))
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLevelHistogramMergeAssociative(t *testing.T) {
	f := func(sa, sb, sc int64) bool {
		a, b, c := histFromSeed(sa, 128), histFromSeed(sb, 128), histFromSeed(sc, 128)
		left := mergeHist(mergeHist(a, b), c)
		right := mergeHist(a, mergeHist(b, c))
		return histEqual(left, right)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLevelHistogramMergeIdentity(t *testing.T) {
	f := func(sa int64) bool {
		a := histFromSeed(sa, 256)
		zero := NewLevelHistogram(256)
		// Zero on either side leaves the histogram's mass, extremes and
		// width untouched.
		return histEqual(mergeHist(a, zero), a) && histEqual(mergeHist(zero, a), a)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(47))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLevelHistogramMergeStateRoundTrip(t *testing.T) {
	f := func(sa, sb int64) bool {
		m := mergeHist(histFromSeed(sa, 256), histFromSeed(sb, 256))
		back := LevelHistogramFromState(m.State())
		return histEqual(back, m) &&
			reflect.DeepEqual(back.Profile(), m.Profile()) &&
			back.Width() == m.Width()
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(53))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLevelHistogramMergeEqualsDirect: merging two histograms equals
// one histogram fed both observation streams — the exactness the shard
// merger needs, stronger than the algebraic laws above.
func TestQuickLevelHistogramMergeEqualsDirect(t *testing.T) {
	f := func(sa, sb int64) bool {
		rngA := rand.New(rand.NewSource(sa))
		rngB := rand.New(rand.NewSource(sb))
		partA := NewLevelHistogram(64)
		partB := NewLevelHistogram(64)
		whole := NewLevelHistogram(64)
		for i, rng := range []*rand.Rand{rngA, rngB} {
			part := partA
			if i == 1 {
				part = partB
			}
			n := rng.Intn(64)
			for j := 0; j < n; j++ {
				level := rng.Int63n(1 << uint(4+rng.Intn(16)))
				c := uint64(1 + rng.Intn(5))
				part.Add(level, c)
				whole.Add(level, c)
			}
		}
		return histEqual(mergeHist(partA, partB), whole)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(59))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// distFromSeed builds a deterministic distribution. Values are bounded
// integers, so the float64 running sum stays exact (every partial sum is an
// integer far below 2^53) and merge order cannot perturb it.
func distFromSeed(seed int64) LogDist {
	rng := rand.New(rand.NewSource(seed))
	var d LogDist
	n := rng.Intn(64)
	for i := 0; i < n; i++ {
		d.Add(rng.Int63n(1 << 20))
	}
	return d
}

func mergeDist(a, b LogDist) LogDist {
	a.Merge(&b)
	return a
}

// distState reads the state of a by-value distribution (State has a
// pointer receiver; the parameter makes the value addressable).
func distState(d LogDist) LogDistState { return d.State() }

func TestQuickLogDistMergeCommutative(t *testing.T) {
	f := func(sa, sb int64) bool {
		a, b := distFromSeed(sa), distFromSeed(sb)
		return reflect.DeepEqual(distState(mergeDist(a, b)), distState(mergeDist(b, a)))
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLogDistMergeAssociative(t *testing.T) {
	f := func(sa, sb, sc int64) bool {
		a, b, c := distFromSeed(sa), distFromSeed(sb), distFromSeed(sc)
		left := mergeDist(mergeDist(a, b), c)
		right := mergeDist(a, mergeDist(b, c))
		return reflect.DeepEqual(distState(left), distState(right))
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(67))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLogDistMergeIdentity(t *testing.T) {
	f := func(sa int64) bool {
		a := distFromSeed(sa)
		var zero LogDist
		return reflect.DeepEqual(distState(mergeDist(a, zero)), distState(a)) &&
			reflect.DeepEqual(distState(mergeDist(zero, a)), distState(a))
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLogDistMergeStateRoundTrip(t *testing.T) {
	f := func(sa, sb int64) bool {
		m := mergeDist(distFromSeed(sa), distFromSeed(sb))
		back := LogDistFromState(distState(m))
		return reflect.DeepEqual(distState(back), distState(m)) && back.Mean() == m.Mean()
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(73))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
