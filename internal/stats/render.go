package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of string cells and renders them column-aligned,
// in the visual style of the paper's tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with fmt.Sprint.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float the way the paper's tables do: two decimals,
// with thousands separators for large magnitudes.
func FormatFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	dot := strings.IndexByte(s, '.')
	intPart, frac := s[:dot], s[dot:]
	neg := strings.HasPrefix(intPart, "-")
	if neg {
		intPart = intPart[1:]
	}
	intPart = groupThousands(intPart)
	if neg {
		intPart = "-" + intPart
	}
	return intPart + frac
}

// FormatInt renders an integer with thousands separators.
func FormatInt(v int64) string {
	s := fmt.Sprintf("%d", v)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	s = groupThousands(s)
	if neg {
		s = "-" + s
	}
	return s
}

func groupThousands(s string) string {
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			// Right-align numbers, left-align the first column.
			if i == 0 {
				b.WriteString(cell)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV writes (x, y) series as a two-column CSV with a header row;
// the format gnuplot and spreadsheet tools ingest directly.
func WriteCSV(w io.Writer, xName, yName string, pts []ProfilePoint) error {
	if _, err := fmt.Fprintf(w, "%s,%s\n", xName, yName); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%d,%g\n", p.Level, p.Ops); err != nil {
			return err
		}
	}
	return nil
}

// AsciiPlot renders a series as a crude horizontal-bar chart, one row per
// point (downsampled to at most maxRows rows), with the y value labelled.
// It is the terminal stand-in for the paper's figures.
func AsciiPlot(w io.Writer, title string, pts []ProfilePoint, maxRows, barWidth int) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if len(pts) == 0 {
		_, err := fmt.Fprintln(w, "(empty)")
		return err
	}
	if maxRows <= 0 {
		maxRows = 40
	}
	if barWidth <= 0 {
		barWidth = 60
	}
	step := 1
	if len(pts) > maxRows {
		step = (len(pts) + maxRows - 1) / maxRows
	}
	// Downsample by averaging each step-sized group.
	var rows []ProfilePoint
	for i := 0; i < len(pts); i += step {
		end := i + step
		if end > len(pts) {
			end = len(pts)
		}
		var sum float64
		for _, p := range pts[i:end] {
			sum += p.Ops
		}
		rows = append(rows, ProfilePoint{Level: pts[i].Level, Ops: sum / float64(end-i)})
	}
	var peak float64
	for _, p := range rows {
		if p.Ops > peak {
			peak = p.Ops
		}
	}
	if peak == 0 {
		peak = 1
	}
	for _, p := range rows {
		n := int(p.Ops / peak * float64(barWidth))
		if _, err := fmt.Fprintf(w, "%12d |%-*s %10.2f\n", p.Level, barWidth, strings.Repeat("#", n), p.Ops); err != nil {
			return err
		}
	}
	return nil
}
