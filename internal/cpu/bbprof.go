package cpu

import (
	"sort"

	"paragraph/internal/asm"
	"paragraph/internal/isa"
)

// BBProfile is a Pixie-flavoured basic-block execution profile. Basic-block
// leaders are identified statically from the text segment (the entry point,
// branch/jump targets, and the instructions following control transfers);
// at run time, executing a leader bumps its block's counter.
type BBProfile struct {
	leaders map[uint32]int // leader PC -> block index
	counts  []uint64
	blocks  []uint32 // leader PC per block, sorted
}

func newBBProfile(p *asm.Program) *BBProfile {
	leaderSet := map[uint32]bool{p.Entry: true, asm.TextBase: true}
	for i, word := range p.Text {
		ins, err := isa.Decode(word)
		if err != nil {
			continue
		}
		pc := asm.TextBase + uint32(4*i)
		info := ins.Op.Info()
		switch {
		case info.IsBranch:
			leaderSet[branchTarget(pc, ins.Imm)] = true
			leaderSet[pc+4] = true
		case ins.Op == isa.J || ins.Op == isa.JAL:
			leaderSet[ins.Target<<2] = true
			leaderSet[pc+4] = true
		case info.IsJump: // jr/jalr: target unknown statically
			leaderSet[pc+4] = true
		}
	}
	blocks := make([]uint32, 0, len(leaderSet))
	for pc := range leaderSet {
		if pc >= asm.TextBase && pc < p.TextEnd() {
			blocks = append(blocks, pc)
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	leaders := make(map[uint32]int, len(blocks))
	for i, pc := range blocks {
		leaders[pc] = i
	}
	return &BBProfile{leaders: leaders, counts: make([]uint64, len(blocks)), blocks: blocks}
}

// note records execution of the instruction at pc.
func (b *BBProfile) note(pc uint32) {
	if idx, ok := b.leaders[pc]; ok {
		b.counts[idx]++
	}
}

// NumBlocks returns the number of static basic blocks.
func (b *BBProfile) NumBlocks() int { return len(b.blocks) }

// Count returns the execution count of the block whose leader is pc.
func (b *BBProfile) Count(pc uint32) uint64 {
	if idx, ok := b.leaders[pc]; ok {
		return b.counts[idx]
	}
	return 0
}

// Hot returns the n most frequently executed blocks as (leader, count)
// pairs, most frequent first.
func (b *BBProfile) Hot(n int) []struct {
	PC    uint32
	Count uint64
} {
	type bc struct {
		PC    uint32
		Count uint64
	}
	all := make([]bc, len(b.blocks))
	for i, pc := range b.blocks {
		all[i] = bc{pc, b.counts[i]}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].PC < all[j].PC
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		PC    uint32
		Count uint64
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			PC    uint32
			Count uint64
		}{all[i].PC, all[i].Count}
	}
	return out
}
