package cpu

import (
	"fmt"
	"math"

	"paragraph/internal/isa"
)

// System-call numbers follow the SPIM convention: the service is selected by
// $v0, arguments arrive in $a0/$f12, results return in $v0/$f0.
const (
	SysPrintInt    = 1
	SysPrintDouble = 3
	SysPrintString = 4
	SysReadInt     = 5
	SysReadDouble  = 7
	SysSbrk        = 9
	SysExit        = 10
	SysPrintChar   = 11
	SysExit2       = 17
)

// maxCString bounds string reads so an unterminated string cannot wedge the
// simulator.
const maxCString = 1 << 20

func (c *CPU) syscall() error {
	service := c.intRegs[isa.V0]
	switch service {
	case SysPrintInt:
		fmt.Fprintf(c.stdout, "%d", int32(c.intRegs[isa.A0]))
	case SysPrintDouble:
		fmt.Fprintf(c.stdout, "%g", math.Float64frombits(c.fpRegs[12]))
	case SysPrintString:
		fmt.Fprint(c.stdout, c.mem.ReadCString(c.intRegs[isa.A0], maxCString))
	case SysPrintChar:
		fmt.Fprintf(c.stdout, "%c", rune(c.intRegs[isa.A0]))
	case SysReadInt:
		var v int32
		if c.stdin != nil {
			if _, err := fmt.Fscan(c.stdin, &v); err != nil {
				v = 0
			}
		}
		c.intRegs[isa.V0] = uint32(v)
	case SysReadDouble:
		var v float64
		if c.stdin != nil {
			if _, err := fmt.Fscan(c.stdin, &v); err != nil {
				v = 0
			}
		}
		c.fpRegs[0] = math.Float64bits(v)
	case SysSbrk:
		n := c.intRegs[isa.A0]
		c.intRegs[isa.V0] = c.brk
		c.brk += (n + 7) &^ 7
		if c.brk >= stackRegionFloor {
			return &Fault{PC: c.pc, Msg: "sbrk: heap collided with stack region"}
		}
	case SysExit:
		c.exited = true
		c.exitCode = 0
	case SysExit2:
		c.exited = true
		c.exitCode = int(int32(c.intRegs[isa.A0]))
	default:
		return &Fault{PC: c.pc, Msg: fmt.Sprintf("unknown syscall %d", service)}
	}
	return nil
}
