package cpu

import "encoding/binary"

// pageBits selects a 4 KiB page size for the sparse memory.
const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// Memory is a sparse, paged, little-endian 32-bit address space. Pages are
// allocated on first touch; reads of untouched memory return zeroes, which
// matches the zero-initialized BSS/stack semantics the workloads rely on.
type Memory struct {
	pages map[uint32]*[pageSize]byte

	// One-entry page cache: most accesses hit the same page as their
	// predecessor (stack frames, array sweeps).
	lastPageNum uint32
	lastPage    *[pageSize]byte
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

func (m *Memory) page(addr uint32) *[pageSize]byte {
	num := addr >> pageBits
	if m.lastPage != nil && num == m.lastPageNum {
		return m.lastPage
	}
	p, ok := m.pages[num]
	if !ok {
		p = new([pageSize]byte)
		m.pages[num] = p
	}
	m.lastPageNum, m.lastPage = num, p
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint32) byte {
	return m.page(addr)[addr&pageMask]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint32, b byte) {
	m.page(addr)[addr&pageMask] = b
}

// ReadWord returns the 32-bit little-endian word at addr. The access may
// straddle a page boundary when addr is unaligned.
func (m *Memory) ReadWord(addr uint32) uint32 {
	if addr&pageMask <= pageSize-4 {
		p := m.page(addr)
		return binary.LittleEndian.Uint32(p[addr&pageMask:])
	}
	var b [4]byte
	for i := range b {
		b[i] = m.LoadByte(addr + uint32(i))
	}
	return binary.LittleEndian.Uint32(b[:])
}

// WriteWord stores a 32-bit little-endian word at addr.
func (m *Memory) WriteWord(addr uint32, v uint32) {
	if addr&pageMask <= pageSize-4 {
		p := m.page(addr)
		binary.LittleEndian.PutUint32(p[addr&pageMask:], v)
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	for i := range b {
		m.StoreByte(addr+uint32(i), b[i])
	}
}

// ReadHalf returns the 16-bit little-endian halfword at addr.
func (m *Memory) ReadHalf(addr uint32) uint16 {
	if addr&pageMask <= pageSize-2 {
		p := m.page(addr)
		return binary.LittleEndian.Uint16(p[addr&pageMask:])
	}
	return uint16(m.LoadByte(addr)) | uint16(m.LoadByte(addr+1))<<8
}

// WriteHalf stores a 16-bit little-endian halfword at addr.
func (m *Memory) WriteHalf(addr uint32, v uint16) {
	if addr&pageMask <= pageSize-2 {
		p := m.page(addr)
		binary.LittleEndian.PutUint16(p[addr&pageMask:], v)
		return
	}
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
}

// ReadDouble returns the 64-bit little-endian word at addr.
func (m *Memory) ReadDouble(addr uint32) uint64 {
	if addr&pageMask <= pageSize-8 {
		p := m.page(addr)
		return binary.LittleEndian.Uint64(p[addr&pageMask:])
	}
	return uint64(m.ReadWord(addr)) | uint64(m.ReadWord(addr+4))<<32
}

// WriteDouble stores a 64-bit little-endian word at addr.
func (m *Memory) WriteDouble(addr uint32, v uint64) {
	if addr&pageMask <= pageSize-8 {
		p := m.page(addr)
		binary.LittleEndian.PutUint64(p[addr&pageMask:], v)
		return
	}
	m.WriteWord(addr, uint32(v))
	m.WriteWord(addr+4, uint32(v>>32))
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	for len(b) > 0 {
		p := m.page(addr)
		off := addr & pageMask
		n := copy(p[off:], b)
		b = b[n:]
		addr += uint32(n)
	}
}

// ReadCString reads a NUL-terminated string starting at addr, up to max
// bytes (to bound damage from unterminated strings).
func (m *Memory) ReadCString(addr uint32, max int) string {
	var out []byte
	for i := 0; i < max; i++ {
		b := m.LoadByte(addr + uint32(i))
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out)
}

// Pages returns the number of resident pages; used in tests and for
// footprint reporting.
func (m *Memory) Pages() int { return len(m.pages) }
