package cpu

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"paragraph/internal/asm"
	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// run assembles and executes src to completion, returning the CPU.
func run(t *testing.T, src string, opts ...Option) *CPU {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c, err := New(p, opts...)
	if err != nil {
		t.Fatalf("new cpu: %v", err)
	}
	if _, err := c.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestArithmetic(t *testing.T) {
	c := run(t, `
        .text
main:   li   $t0, 21
        li   $t1, 2
        mul  $t2, $t0, $t1      # 42
        sub  $t3, $t2, $t1      # 40
        addi $t4, $t3, -40      # 0
        li   $t5, -8
        sra  $t6, $t5, 1        # -4
        srl  $t7, $t5, 28       # 0xf
        li   $s0, 100
        li   $s1, 7
        div  $s0, $s1           # lo=14 hi=2
        mflo $s2
        mfhi $s3
        slt  $s4, $t1, $t0      # 1
        sltu $s5, $t0, $t1      # 0
        jr   $ra
`)
	checks := map[isa.Reg]uint32{
		isa.T2: 42, isa.T3: 40, isa.T4: 0,
		isa.T6: ^uint32(3), isa.T7: 0xf, // -4
		isa.S2: 14, isa.S3: 2, isa.S4: 1, isa.S5: 0,
	}
	for r, want := range checks {
		if got := c.Reg(r); got != want {
			t.Errorf("%v = %d, want %d", r, int32(got), int32(want))
		}
	}
}

func TestLogicAndShiftVariable(t *testing.T) {
	c := run(t, `
        .text
main:   li   $t0, 0xff00
        li   $t1, 0x0ff0
        and  $t2, $t0, $t1      # 0x0f00
        or   $t3, $t0, $t1      # 0xfff0
        xor  $t4, $t0, $t1      # 0xf0f0
        nor  $t5, $t0, $t1      # ^0xfff0
        li   $t6, 3
        sllv $t7, $t1, $t6      # 0x7f80
        srlv $s0, $t1, $t6      # 0x01fe
        jr   $ra
`)
	checks := map[isa.Reg]uint32{
		isa.T2: 0x0f00, isa.T3: 0xfff0, isa.T4: 0xf0f0,
		isa.T5: ^uint32(0xfff0), isa.T7: 0x7f80, isa.S0: 0x01fe,
	}
	for r, want := range checks {
		if got := c.Reg(r); got != want {
			t.Errorf("%v = %#x, want %#x", r, got, want)
		}
	}
}

func TestMemoryOps(t *testing.T) {
	c := run(t, `
        .data
w:      .word 0x11223344
b:      .byte 0x80
h:      .half 0x8000
        .text
main:   lw   $t0, w
        lb   $t1, b             # sign-extends to -128
        lbu  $t2, b             # 128
        lh   $t3, h             # -32768
        lhu  $t4, h             # 32768
        li   $t5, 0xdeadbeef
        sw   $t5, w
        lw   $t6, w
        sb   $t5, b
        lbu  $t7, b             # 0xef
        addiu $sp, $sp, -8
        sw   $t0, 4($sp)
        lw   $s0, 4($sp)
        jr   $ra
`)
	checks := map[isa.Reg]uint32{
		isa.T0: 0x11223344,
		isa.T1: ^uint32(127), // -128
		isa.T2: 128,
		isa.T3: ^uint32(32767), // -32768
		isa.T4: 32768,
		isa.T6: 0xdeadbeef,
		isa.T7: 0xef,
		isa.S0: 0x11223344,
	}
	for r, want := range checks {
		if got := c.Reg(r); got != want {
			t.Errorf("%v = %#x, want %#x", r, got, want)
		}
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 with a loop.
	c := run(t, `
        .text
main:   li   $t0, 10
        li   $t1, 0
loop:   add  $t1, $t1, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        jr   $ra
`)
	if got := c.Reg(isa.T1); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestProcedureCall(t *testing.T) {
	// Recursive factorial(6) = 720 using the stack.
	c := run(t, `
        .text
main:   li   $a0, 6
        jal  fact
        move $s0, $v0
        li   $v0, 10
        syscall

fact:   addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        sw   $a0, 0($sp)
        li   $v0, 1
        blez $a0, done
        addi $a0, $a0, -1
        jal  fact
        lw   $a0, 0($sp)
        mul  $v0, $v0, $a0
done:   lw   $ra, 4($sp)
        addiu $sp, $sp, 8
        jr   $ra
`)
	if got := c.Reg(isa.S0); got != 720 {
		t.Errorf("fact(6) = %d, want 720", got)
	}
}

func TestFloatingPoint(t *testing.T) {
	c := run(t, `
        .data
x:      .double 2.0
        .text
main:   ldc1  $f0, x
        li.d  $f2, 3.0
        add.d $f4, $f0, $f2     # 5.0
        mul.d $f6, $f4, $f4     # 25.0
        sub.d $f8, $f6, $f0     # 23.0
        div.d $f10, $f8, $f2    # 23/3
        neg.d $f12, $f10
        abs.d $f14, $f12
        li    $t0, 7
        mtc1  $t0, $f16
        cvt.d.w $f16, $f16      # 7.0
        cvt.w.d $f18, $f4       # 5
        mfc1  $t1, $f18
        c.lt.d $f0, $f2         # true
        bc1t  istrue
        li    $t2, 0
        b     out
istrue: li    $t2, 1
out:    jr    $ra
`)
	if got := c.FPReg(isa.FPReg(4)); got != 5.0 {
		t.Errorf("add.d = %v", got)
	}
	if got := c.FPReg(isa.FPReg(6)); got != 25.0 {
		t.Errorf("mul.d = %v", got)
	}
	if got := c.FPReg(isa.FPReg(10)); math.Abs(got-23.0/3.0) > 1e-15 {
		t.Errorf("div.d = %v", got)
	}
	if got := c.FPReg(isa.FPReg(14)); got != 23.0/3.0 {
		t.Errorf("abs(neg) = %v", got)
	}
	if got := c.FPReg(isa.FPReg(16)); got != 7.0 {
		t.Errorf("cvt.d.w = %v", got)
	}
	if got := c.Reg(isa.T1); got != 5 {
		t.Errorf("cvt.w.d/mfc1 = %d", got)
	}
	if got := c.Reg(isa.T2); got != 1 {
		t.Errorf("c.lt.d/bc1t path = %d", got)
	}
}

func TestNewtonSqrt(t *testing.T) {
	// sqrt(2) via 20 Newton iterations: x' = (x + 2/x) / 2.
	c := run(t, `
        .text
main:   li.d $f0, 2.0
        li.d $f2, 1.0           # x
        li.d $f4, 2.0           # divisor constant
        li   $t0, 20
loop:   div.d $f6, $f0, $f2
        add.d $f6, $f6, $f2
        div.d $f2, $f6, $f4
        addi $t0, $t0, -1
        bgtz $t0, loop
        jr   $ra
`)
	if got := c.FPReg(isa.FPReg(2)); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("sqrt(2) = %v", got)
	}
}

func TestSyscallsOutput(t *testing.T) {
	var out bytes.Buffer
	run(t, `
        .data
msg:    .asciiz "n="
        .text
main:   li $v0, 4
        la $a0, msg
        syscall
        li $v0, 1
        li $a0, -7
        syscall
        li $v0, 11
        li $a0, 10              # '\n'
        syscall
        li.d $f12, 1.25
        li $v0, 3
        syscall
        li $v0, 10
        syscall
`, WithStdout(&out))
	if got := out.String(); got != "n=-7\n1.25" {
		t.Errorf("output = %q", got)
	}
}

func TestSyscallReadInt(t *testing.T) {
	c := run(t, `
        .text
main:   li $v0, 5
        syscall
        move $s0, $v0
        jr $ra
`, WithStdin(strings.NewReader("123")))
	if got := c.Reg(isa.S0); got != 123 {
		t.Errorf("read_int = %d", got)
	}
}

func TestSbrk(t *testing.T) {
	c := run(t, `
        .data
        .space 12
        .text
main:   li $v0, 9
        li $a0, 100
        syscall
        move $s0, $v0
        li $v0, 9
        li $a0, 8
        syscall
        move $s1, $v0
        sw $s0, 0($s0)          # heap is writable
        lw $s2, 0($s0)
        jr $ra
`)
	first := c.Reg(isa.S0)
	second := c.Reg(isa.S1)
	if first < asm.DataBase {
		t.Errorf("sbrk returned %#x below data base", first)
	}
	if second != first+104 { // 100 rounded to 104
		t.Errorf("second sbrk = %#x, want %#x", second, first+104)
	}
	if c.Reg(isa.S2) != first {
		t.Errorf("heap readback = %#x", c.Reg(isa.S2))
	}
}

func TestExitCode(t *testing.T) {
	c := run(t, `
        .text
main:   li $v0, 17
        li $a0, 42
        syscall
`)
	exited, code := c.Exited()
	if !exited || code != 42 {
		t.Errorf("exit = %v, %d; want true, 42", exited, code)
	}
}

func TestTraceEvents(t *testing.T) {
	var events []trace.Event
	sink := trace.SinkFunc(func(e *trace.Event) error {
		events = append(events, *e)
		return nil
	})
	run(t, `
        .data
v:      .word 5
        .text
main:   lw   $t0, v
        addiu $sp, $sp, -4
        sw   $t0, 0($sp)
        beq  $t0, $zero, skip
        addi $t1, $t0, 1
skip:   jr   $ra
`, WithTrace(sink))

	// Expect: lui, lw, addiu(sp), sw, beq(not taken), addi, jr.
	if len(events) != 7 {
		t.Fatalf("got %d events: %v", len(events), events)
	}
	lw := events[1]
	if lw.Ins.Op != isa.LW || lw.Seg != trace.SegData || lw.MemSize != 4 {
		t.Errorf("lw event = %+v", lw)
	}
	sw := events[3]
	if sw.Ins.Op != isa.SW || sw.Seg != trace.SegStack {
		t.Errorf("sw event = %+v", sw)
	}
	if events[4].Ins.Op != isa.BEQ || events[4].Taken {
		t.Errorf("beq event = %+v", events[4])
	}
	if events[6].Ins.Op != isa.JR || !events[6].Taken {
		t.Errorf("jr event = %+v", events[6])
	}
}

func TestHeapSegmentClassification(t *testing.T) {
	var heapStores int
	sink := trace.SinkFunc(func(e *trace.Event) error {
		if e.Ins.Op == isa.SW && e.Seg == trace.SegHeap {
			heapStores++
		}
		return nil
	})
	run(t, `
        .text
main:   li $v0, 9
        li $a0, 16
        syscall
        sw $v0, 0($v0)
        sw $v0, 4($v0)
        jr $ra
`, WithTrace(sink))
	if heapStores != 2 {
		t.Errorf("heap stores = %d, want 2", heapStores)
	}
}

func TestInstructionLimit(t *testing.T) {
	p, err := asm.Assemble(".text\nmain: b main\n")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.Run(100)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	if n != 100 {
		t.Errorf("executed %d, want 100", n)
	}
}

func TestFetchFault(t *testing.T) {
	p, err := asm.Assemble(".text\nmain: li $t0, 0\n jr $t0\n nop\n")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(100)
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want *Fault", err)
	}
}

func TestUnknownSyscallFault(t *testing.T) {
	p, _ := asm.Assemble(".text\nmain: li $v0, 999\n syscall\n")
	c, _ := New(p)
	_, err := c.Run(100)
	var fault *Fault
	if !errors.As(err, &fault) || !strings.Contains(fault.Msg, "syscall") {
		t.Fatalf("err = %v, want syscall fault", err)
	}
}

func TestDivByZeroDeterministic(t *testing.T) {
	c := run(t, `
        .text
main:   li  $t0, 9
        li  $t1, 0
        div $t0, $t1
        mflo $s0
        mfhi $s1
        jr  $ra
`)
	if c.Reg(isa.S0) != 0 || c.Reg(isa.S1) != 9 {
		t.Errorf("div-by-zero: lo=%d hi=%d, want 0, 9", c.Reg(isa.S0), c.Reg(isa.S1))
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	c := run(t, `
        .text
main:   li   $t0, 7
        add  $zero, $t0, $t0
        move $t1, $zero
        jr   $ra
`)
	if got := c.Reg(isa.T1); got != 0 {
		t.Errorf("$zero = %d after write attempt", got)
	}
}

func TestClassCounts(t *testing.T) {
	c := run(t, `
        .text
main:   li    $t0, 2
        mult  $t0, $t0
        mflo  $t1
        li.d  $f0, 1.0
        add.d $f2, $f0, $f0
        lw    $t2, 0($sp)
        jr    $ra
`)
	counts := c.ClassCounts()
	if counts[isa.ClassIntMul] != 1 {
		t.Errorf("int-mul count = %d", counts[isa.ClassIntMul])
	}
	if counts[isa.ClassFPAdd] != 1 {
		t.Errorf("fp-add count = %d", counts[isa.ClassFPAdd])
	}
	// li.d expands to lui+ldc1; plus the lw = 2 loads + 1 ldc1.
	if counts[isa.ClassLoad] != 2 {
		t.Errorf("load count = %d", counts[isa.ClassLoad])
	}
}

func TestBBProfile(t *testing.T) {
	c := run(t, `
        .text
main:   li   $t0, 5
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        jr   $ra
`, WithBBProfile())
	prof := c.BBProfile()
	if prof == nil {
		t.Fatal("profile not enabled")
	}
	loopPC := asm.TextBase + 4 // after li (1 instr)
	if got := prof.Count(loopPC); got != 5 {
		t.Errorf("loop block count = %d, want 5", got)
	}
	hot := prof.Hot(1)
	if len(hot) != 1 || hot[0].PC != loopPC {
		t.Errorf("hot block = %+v", hot)
	}
	if prof.NumBlocks() < 2 {
		t.Errorf("NumBlocks = %d", prof.NumBlocks())
	}
}

func TestMemoryUnalignedStraddle(t *testing.T) {
	m := NewMemory()
	addr := uint32(pageSize - 2) // straddles first page boundary
	m.WriteWord(addr, 0xa1b2c3d4)
	if got := m.ReadWord(addr); got != 0xa1b2c3d4 {
		t.Errorf("straddling word = %#x", got)
	}
	m.WriteDouble(addr, 0x1122334455667788)
	if got := m.ReadDouble(addr); got != 0x1122334455667788 {
		t.Errorf("straddling double = %#x", got)
	}
	m.WriteHalf(uint32(pageSize-1), 0xbeef)
	if got := m.ReadHalf(uint32(pageSize - 1)); got != 0xbeef {
		t.Errorf("straddling half = %#x", got)
	}
	if m.Pages() == 0 {
		t.Error("no pages resident")
	}
}

func TestReadCStringBounds(t *testing.T) {
	m := NewMemory()
	m.WriteBytes(100, []byte("hello\x00world"))
	if got := m.ReadCString(100, 64); got != "hello" {
		t.Errorf("ReadCString = %q", got)
	}
	if got := m.ReadCString(106, 3); got != "wor" {
		t.Errorf("bounded ReadCString = %q", got)
	}
}

func TestAccessors(t *testing.T) {
	p, err := asm.Assemble(".text\nmain: li $t0, 9\n syscall\n")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.PC() != asm.TextBase {
		t.Errorf("initial PC = %#x", c.PC())
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.ICount() != 1 {
		t.Errorf("ICount = %d", c.ICount())
	}
	if c.PC() != asm.TextBase+4 {
		t.Errorf("PC after step = %#x", c.PC())
	}
	c.SetReg(isa.A0, 77)
	if c.Reg(isa.A0) != 77 {
		t.Errorf("SetReg/Reg round trip failed")
	}
	c.SetReg(isa.Zero, 1)
	if c.Reg(isa.Zero) != 0 {
		t.Errorf("SetReg wrote $zero")
	}
	c.Mem().WriteWord(0x10000000, 0xabcd)
	if c.Mem().ReadWord(0x10000000) != 0xabcd {
		t.Errorf("Mem accessor broken")
	}
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { c.Reg(isa.FPReg(0)) })
	mustPanic(func() { c.SetReg(isa.HI, 1) })
	mustPanic(func() { c.FPReg(isa.T0) })
}

func TestFaultError(t *testing.T) {
	f := &Fault{PC: 0x1234, Msg: "boom"}
	if !strings.Contains(f.Error(), "0x1234") || !strings.Contains(f.Error(), "boom") {
		t.Errorf("Fault.Error() = %q", f.Error())
	}
}

func TestStepAfterExit(t *testing.T) {
	p, _ := asm.Assemble(".text\nmain: li $v0, 10\n syscall\n")
	c, _ := New(p)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err == nil {
		t.Error("Step after exit succeeded")
	}
}

func TestSbrkHeapOverflowFault(t *testing.T) {
	// Repeatedly sbrk until the heap would collide with the stack region.
	p, _ := asm.Assemble(`
        .text
main:   lui $a0, 0x4000
loop:   li $v0, 9
        syscall
        b loop
`)
	c, _ := New(p)
	_, err := c.Run(100)
	var fault *Fault
	if !errors.As(err, &fault) || !strings.Contains(fault.Msg, "sbrk") {
		t.Fatalf("err = %v, want sbrk fault", err)
	}
}

func TestReadDoubleSyscall(t *testing.T) {
	c := run(t, `
        .text
main:   li $v0, 7
        syscall
        mov.d $f20, $f0
        jr $ra
`, WithStdin(strings.NewReader("2.5")))
	if got := c.FPReg(isa.FPReg(20)); got != 2.5 {
		t.Errorf("read_double = %v", got)
	}
}

func TestMisalignedFetchFault(t *testing.T) {
	p, _ := asm.Assemble(".text\nmain: li $t0, 0x400002\n jr $t0\n nop\n")
	c, _ := New(p)
	_, err := c.Run(10)
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want fault on misaligned fetch", err)
	}
}

func TestBreakFault(t *testing.T) {
	p, _ := asm.Assemble(".text\nmain: break\n")
	c, _ := New(p)
	_, err := c.Run(10)
	var fault *Fault
	if !errors.As(err, &fault) || !strings.Contains(fault.Msg, "break") {
		t.Fatalf("err = %v, want break fault", err)
	}
}

func TestBBProfileCountUnknownPC(t *testing.T) {
	c := run(t, ".text\nmain: nop\n jr $ra\n", WithBBProfile())
	if got := c.BBProfile().Count(0xdead0000); got != 0 {
		t.Errorf("unknown PC count = %d", got)
	}
}

func TestMemoryHalfAndDoubleAligned(t *testing.T) {
	m := NewMemory()
	m.WriteHalf(100, 0x1234)
	if m.ReadHalf(100) != 0x1234 {
		t.Error("aligned half failed")
	}
	m.WriteDouble(200, 0xdeadbeefcafebabe)
	if m.ReadDouble(200) != 0xdeadbeefcafebabe {
		t.Error("aligned double failed")
	}
}

// TestPrintStringUnterminated proves the syscall layer's defence against a
// string with no NUL terminator: SysPrintString must return after exactly
// maxCString bytes instead of walking memory forever.
func TestPrintStringUnterminated(t *testing.T) {
	p, err := asm.Assemble(".text\nmain: jr $ra\n")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	c, err := New(p, WithStdout(&out))
	if err != nil {
		t.Fatal(err)
	}
	// A run of nonzero bytes longer than the bound, with no terminator in
	// range: the first NUL lies beyond maxCString.
	const base = 0x20000000
	c.mem.WriteBytes(base, bytes.Repeat([]byte{'a'}, maxCString+512))
	c.intRegs[isa.V0] = SysPrintString
	c.intRegs[isa.A0] = base
	if err := c.syscall(); err != nil {
		t.Fatalf("syscall: %v", err)
	}
	if out.Len() != maxCString {
		t.Errorf("printed %d bytes, want the maxCString bound %d", out.Len(), maxCString)
	}
	// A terminated string in the same memory still prints normally.
	out.Reset()
	c.mem.WriteBytes(base, []byte("bounded\x00trailing"))
	if err := c.syscall(); err != nil {
		t.Fatalf("syscall: %v", err)
	}
	if out.String() != "bounded" {
		t.Errorf("printed %q, want %q", out.String(), "bounded")
	}
}
