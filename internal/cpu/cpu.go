// Package cpu implements a functional simulator for the ISA of package isa.
// It executes assembled programs (package asm) and emits the serial
// execution trace that the Paragraph analyzer consumes, playing the role
// Pixie played for the paper: the trace-producing substrate.
//
// The simulator is architectural, not micro-architectural: every instruction
// executes in one step and there are no caches or pipelines. That is exactly
// what the paper's methodology needs — Paragraph re-times operations itself
// using the Table-1 latencies while building the dynamic dependency graph,
// so the tracer only has to supply the serial instruction stream with
// operand addresses.
package cpu

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"

	"paragraph/internal/asm"
	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// haltAddress is the sentinel return address installed in $ra at startup;
// returning to it ends the program as if exit(0) had been called.
const haltAddress uint32 = 0xfffffff0

// stackRegionFloor: addresses at or above this are classified as stack
// segment accesses. The stack base is asm.StackBase (just below 2 GiB) and
// real stacks never grow anywhere near this floor.
const stackRegionFloor uint32 = 0x70000000

// ErrLimit is returned by Run when the instruction budget is exhausted
// before the program exits.
var ErrLimit = errors.New("cpu: instruction limit reached")

// Fault describes a runtime error in the simulated program.
type Fault struct {
	PC  uint32
	Msg string
}

func (f *Fault) Error() string { return fmt.Sprintf("cpu: fault at pc=%#x: %s", f.PC, f.Msg) }

// CPU is one simulated processor executing one program.
type CPU struct {
	prog *asm.Program
	text []isa.Instruction // pre-decoded text segment
	mem  *Memory

	intRegs [32]uint32
	fpRegs  [32]uint64 // raw float64 bits
	hi, lo  uint32
	fcc     bool
	pc      uint32

	heapBase uint32 // start of sbrk-managed memory
	brk      uint32 // current heap break

	icount      uint64
	classCounts [16]uint64
	exited      bool
	exitCode    int

	sink    trace.Sink
	bbProf  *BBProfile
	stdout  io.Writer
	stdin   *bufio.Reader
	sysArgs []string // unused hook for future syscall extensions
}

// Option configures a CPU at construction time.
type Option func(*CPU)

// WithTrace attaches a trace sink; every executed instruction is reported to
// it as a trace.Event.
func WithTrace(s trace.Sink) Option { return func(c *CPU) { c.sink = s } }

// WithStdout redirects the simulated program's output (print syscalls).
func WithStdout(w io.Writer) Option { return func(c *CPU) { c.stdout = w } }

// WithStdin supplies input for the read syscalls.
func WithStdin(r io.Reader) Option { return func(c *CPU) { c.stdin = bufio.NewReader(r) } }

// WithBBProfile enables Pixie-style basic-block execution counting.
func WithBBProfile() Option { return func(c *CPU) { c.bbProf = newBBProfile(c.prog) } }

// New loads a program into a fresh machine. The data segment is copied into
// memory, the stack pointer set to asm.StackBase, $gp to the conventional
// data-segment window, and $ra to a halt sentinel so that returning from the
// entry function terminates cleanly.
func New(p *asm.Program, opts ...Option) (*CPU, error) {
	text := make([]isa.Instruction, len(p.Text))
	for i, w := range p.Text {
		ins, err := isa.Decode(w)
		if err != nil {
			return nil, fmt.Errorf("cpu: text word %d: %w", i, err)
		}
		text[i] = ins
	}
	heapBase := (p.DataEnd() + 7) &^ 7
	c := &CPU{
		prog:     p,
		text:     text,
		mem:      NewMemory(),
		pc:       p.Entry,
		heapBase: heapBase,
		brk:      heapBase,
		stdout:   io.Discard,
	}
	c.mem.WriteBytes(asm.DataBase, p.Data)
	c.intRegs[isa.SP] = asm.StackBase
	c.intRegs[isa.GP] = asm.DataBase + 0x8000
	c.intRegs[isa.RA] = haltAddress
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// PC returns the current program counter.
func (c *CPU) PC() uint32 { return c.pc }

// ICount returns the number of instructions executed so far.
func (c *CPU) ICount() uint64 { return c.icount }

// Exited reports whether the program has terminated, and with what code.
func (c *CPU) Exited() (bool, int) { return c.exited, c.exitCode }

// Reg returns the value of an integer register.
func (c *CPU) Reg(r isa.Reg) uint32 {
	if !r.IsInt() {
		panic(fmt.Sprintf("cpu: Reg(%v) is not an integer register", r))
	}
	return c.intRegs[r]
}

// SetReg sets an integer register (used by tests and harnesses to pass
// arguments).
func (c *CPU) SetReg(r isa.Reg, v uint32) {
	if !r.IsInt() {
		panic(fmt.Sprintf("cpu: SetReg(%v) is not an integer register", r))
	}
	if r != isa.Zero {
		c.intRegs[r] = v
	}
}

// FPReg returns the float64 value of an FP register.
func (c *CPU) FPReg(r isa.Reg) float64 {
	if !r.IsFP() {
		panic(fmt.Sprintf("cpu: FPReg(%v) is not an FP register", r))
	}
	return math.Float64frombits(c.fpRegs[r-isa.F0])
}

// Mem exposes the address space (tests, syscall-free I/O of results).
func (c *CPU) Mem() *Memory { return c.mem }

// ClassCounts returns per-OpClass dynamic instruction counts.
func (c *CPU) ClassCounts() map[isa.OpClass]uint64 {
	out := make(map[isa.OpClass]uint64)
	for cls, n := range c.classCounts {
		if n > 0 {
			out[isa.OpClass(cls)] = n
		}
	}
	return out
}

// BBProfile returns the basic-block profile, or nil if not enabled.
func (c *CPU) BBProfile() *BBProfile { return c.bbProf }

// Run executes until the program exits, max instructions have retired
// (0 = no limit), a fault occurs, or the trace sink returns an error.
// It returns the number of instructions executed by this call. When the
// limit stops execution the error is ErrLimit; a clean program exit returns
// a nil error.
func (c *CPU) Run(max uint64) (uint64, error) {
	start := c.icount
	for !c.exited {
		if max != 0 && c.icount-start >= max {
			return c.icount - start, ErrLimit
		}
		if err := c.Step(); err != nil {
			return c.icount - start, err
		}
	}
	return c.icount - start, nil
}

// Step executes a single instruction.
func (c *CPU) Step() error {
	if c.exited {
		return errors.New("cpu: program has exited")
	}
	pc := c.pc
	if pc == haltAddress {
		c.exited = true
		c.exitCode = 0
		return nil
	}
	idx := (pc - asm.TextBase) / 4
	if pc < asm.TextBase || pc&3 != 0 || idx >= uint32(len(c.text)) {
		return &Fault{PC: pc, Msg: "instruction fetch outside text segment"}
	}
	ins := &c.text[idx]
	info := ins.Op.Info()

	ev := trace.Event{PC: pc, Ins: *ins}
	nextPC := pc + 4

	switch ins.Op {
	case isa.NOP:
		// nothing
	case isa.ADD, isa.ADDU:
		c.setInt(ins.Rd, c.intRegs[ins.Rs]+c.intRegs[ins.Rt])
	case isa.SUB, isa.SUBU:
		c.setInt(ins.Rd, c.intRegs[ins.Rs]-c.intRegs[ins.Rt])
	case isa.AND:
		c.setInt(ins.Rd, c.intRegs[ins.Rs]&c.intRegs[ins.Rt])
	case isa.OR:
		c.setInt(ins.Rd, c.intRegs[ins.Rs]|c.intRegs[ins.Rt])
	case isa.XOR:
		c.setInt(ins.Rd, c.intRegs[ins.Rs]^c.intRegs[ins.Rt])
	case isa.NOR:
		c.setInt(ins.Rd, ^(c.intRegs[ins.Rs] | c.intRegs[ins.Rt]))
	case isa.SLT:
		c.setInt(ins.Rd, boolToReg(int32(c.intRegs[ins.Rs]) < int32(c.intRegs[ins.Rt])))
	case isa.SLTU:
		c.setInt(ins.Rd, boolToReg(c.intRegs[ins.Rs] < c.intRegs[ins.Rt]))
	case isa.SLL:
		c.setInt(ins.Rd, c.intRegs[ins.Rt]<<ins.Shamt)
	case isa.SRL:
		c.setInt(ins.Rd, c.intRegs[ins.Rt]>>ins.Shamt)
	case isa.SRA:
		c.setInt(ins.Rd, uint32(int32(c.intRegs[ins.Rt])>>ins.Shamt))
	case isa.SLLV:
		c.setInt(ins.Rd, c.intRegs[ins.Rt]<<(c.intRegs[ins.Rs]&31))
	case isa.SRLV:
		c.setInt(ins.Rd, c.intRegs[ins.Rt]>>(c.intRegs[ins.Rs]&31))
	case isa.SRAV:
		c.setInt(ins.Rd, uint32(int32(c.intRegs[ins.Rt])>>(c.intRegs[ins.Rs]&31)))
	case isa.MULT:
		prod := int64(int32(c.intRegs[ins.Rs])) * int64(int32(c.intRegs[ins.Rt]))
		c.lo, c.hi = uint32(prod), uint32(prod>>32)
	case isa.MULTU:
		prod := uint64(c.intRegs[ins.Rs]) * uint64(c.intRegs[ins.Rt])
		c.lo, c.hi = uint32(prod), uint32(prod>>32)
	case isa.DIV:
		num, den := int32(c.intRegs[ins.Rs]), int32(c.intRegs[ins.Rt])
		if den == 0 {
			// Real MIPS leaves HI/LO unpredictable; we define the
			// result so executions are deterministic.
			c.lo, c.hi = 0, uint32(num)
		} else if num == math.MinInt32 && den == -1 {
			c.lo, c.hi = uint32(num), 0
		} else {
			c.lo, c.hi = uint32(num/den), uint32(num%den)
		}
	case isa.DIVU:
		num, den := c.intRegs[ins.Rs], c.intRegs[ins.Rt]
		if den == 0 {
			c.lo, c.hi = 0, num
		} else {
			c.lo, c.hi = num/den, num%den
		}
	case isa.MFHI:
		c.setInt(ins.Rd, c.hi)
	case isa.MFLO:
		c.setInt(ins.Rd, c.lo)
	case isa.MTHI:
		c.hi = c.intRegs[ins.Rs]
	case isa.MTLO:
		c.lo = c.intRegs[ins.Rs]

	case isa.ADDI, isa.ADDIU:
		c.setInt(ins.Rt, c.intRegs[ins.Rs]+uint32(ins.Imm))
	case isa.SLTI:
		c.setInt(ins.Rt, boolToReg(int32(c.intRegs[ins.Rs]) < ins.Imm))
	case isa.SLTIU:
		c.setInt(ins.Rt, boolToReg(c.intRegs[ins.Rs] < uint32(ins.Imm)))
	case isa.ANDI:
		c.setInt(ins.Rt, c.intRegs[ins.Rs]&uint32(uint16(ins.Imm)))
	case isa.ORI:
		c.setInt(ins.Rt, c.intRegs[ins.Rs]|uint32(uint16(ins.Imm)))
	case isa.XORI:
		c.setInt(ins.Rt, c.intRegs[ins.Rs]^uint32(uint16(ins.Imm)))
	case isa.LUI:
		c.setInt(ins.Rt, uint32(uint16(ins.Imm))<<16)

	case isa.LB:
		addr := c.ea(ins)
		c.fillMemEvent(&ev, addr, 1)
		c.setInt(ins.Rt, uint32(int32(int8(c.mem.LoadByte(addr)))))
	case isa.LBU:
		addr := c.ea(ins)
		c.fillMemEvent(&ev, addr, 1)
		c.setInt(ins.Rt, uint32(c.mem.LoadByte(addr)))
	case isa.LH:
		addr := c.ea(ins)
		c.fillMemEvent(&ev, addr, 2)
		c.setInt(ins.Rt, uint32(int32(int16(c.mem.ReadHalf(addr)))))
	case isa.LHU:
		addr := c.ea(ins)
		c.fillMemEvent(&ev, addr, 2)
		c.setInt(ins.Rt, uint32(c.mem.ReadHalf(addr)))
	case isa.LW:
		addr := c.ea(ins)
		c.fillMemEvent(&ev, addr, 4)
		c.setInt(ins.Rt, c.mem.ReadWord(addr))
	case isa.SB:
		addr := c.ea(ins)
		c.fillMemEvent(&ev, addr, 1)
		c.mem.StoreByte(addr, byte(c.intRegs[ins.Rt]))
	case isa.SH:
		addr := c.ea(ins)
		c.fillMemEvent(&ev, addr, 2)
		c.mem.WriteHalf(addr, uint16(c.intRegs[ins.Rt]))
	case isa.SW:
		addr := c.ea(ins)
		c.fillMemEvent(&ev, addr, 4)
		c.mem.WriteWord(addr, c.intRegs[ins.Rt])
	case isa.LDC1:
		addr := c.ea(ins)
		c.fillMemEvent(&ev, addr, 8)
		c.fpRegs[ins.Rt-isa.F0] = c.mem.ReadDouble(addr)
	case isa.SDC1:
		addr := c.ea(ins)
		c.fillMemEvent(&ev, addr, 8)
		c.mem.WriteDouble(addr, c.fpRegs[ins.Rt-isa.F0])

	case isa.J:
		nextPC = ins.Target << 2
		ev.Taken = true
	case isa.JAL:
		c.setInt(isa.RA, pc+4)
		nextPC = ins.Target << 2
		ev.Taken = true
	case isa.JR:
		nextPC = c.intRegs[ins.Rs]
		ev.Taken = true
	case isa.JALR:
		target := c.intRegs[ins.Rs]
		c.setInt(ins.Rd, pc+4)
		nextPC = target
		ev.Taken = true
	case isa.BEQ:
		if c.intRegs[ins.Rs] == c.intRegs[ins.Rt] {
			nextPC = branchTarget(pc, ins.Imm)
			ev.Taken = true
		}
	case isa.BNE:
		if c.intRegs[ins.Rs] != c.intRegs[ins.Rt] {
			nextPC = branchTarget(pc, ins.Imm)
			ev.Taken = true
		}
	case isa.BLEZ:
		if int32(c.intRegs[ins.Rs]) <= 0 {
			nextPC = branchTarget(pc, ins.Imm)
			ev.Taken = true
		}
	case isa.BGTZ:
		if int32(c.intRegs[ins.Rs]) > 0 {
			nextPC = branchTarget(pc, ins.Imm)
			ev.Taken = true
		}
	case isa.BLTZ:
		if int32(c.intRegs[ins.Rs]) < 0 {
			nextPC = branchTarget(pc, ins.Imm)
			ev.Taken = true
		}
	case isa.BGEZ:
		if int32(c.intRegs[ins.Rs]) >= 0 {
			nextPC = branchTarget(pc, ins.Imm)
			ev.Taken = true
		}

	case isa.ADDD:
		c.setFP(ins.Rd, c.fp(ins.Rs)+c.fp(ins.Rt))
	case isa.SUBD:
		c.setFP(ins.Rd, c.fp(ins.Rs)-c.fp(ins.Rt))
	case isa.MULD:
		c.setFP(ins.Rd, c.fp(ins.Rs)*c.fp(ins.Rt))
	case isa.DIVD:
		c.setFP(ins.Rd, c.fp(ins.Rs)/c.fp(ins.Rt))
	case isa.ABSD:
		c.setFP(ins.Rd, math.Abs(c.fp(ins.Rs)))
	case isa.NEGD:
		c.setFP(ins.Rd, -c.fp(ins.Rs))
	case isa.MOVD:
		c.fpRegs[ins.Rd-isa.F0] = c.fpRegs[ins.Rs-isa.F0]
	case isa.CVTDW:
		c.setFP(ins.Rd, float64(int32(uint32(c.fpRegs[ins.Rs-isa.F0]))))
	case isa.CVTWD:
		c.fpRegs[ins.Rd-isa.F0] = uint64(uint32(int32(c.fp(ins.Rs))))
	case isa.CEQD:
		c.fcc = c.fp(ins.Rs) == c.fp(ins.Rt)
	case isa.CLTD:
		c.fcc = c.fp(ins.Rs) < c.fp(ins.Rt)
	case isa.CLED:
		c.fcc = c.fp(ins.Rs) <= c.fp(ins.Rt)
	case isa.BC1T:
		if c.fcc {
			nextPC = branchTarget(pc, ins.Imm)
			ev.Taken = true
		}
	case isa.BC1F:
		if !c.fcc {
			nextPC = branchTarget(pc, ins.Imm)
			ev.Taken = true
		}
	case isa.MFC1:
		c.setInt(ins.Rt, uint32(c.fpRegs[ins.Rs-isa.F0]))
	case isa.MTC1:
		c.fpRegs[ins.Rd-isa.F0] = uint64(c.intRegs[ins.Rt])

	case isa.SYSCALL:
		if err := c.syscall(); err != nil {
			return err
		}
	case isa.BREAK:
		return &Fault{PC: pc, Msg: "break instruction"}
	default:
		return &Fault{PC: pc, Msg: fmt.Sprintf("unimplemented op %v", ins.Op)}
	}

	c.icount++
	c.classCounts[info.Class]++
	if c.bbProf != nil {
		c.bbProf.note(pc)
	}
	if c.sink != nil {
		if err := c.sink.Event(&ev); err != nil {
			return fmt.Errorf("cpu: trace sink: %w", err)
		}
	}
	c.pc = nextPC
	return nil
}

// ea computes the effective address of a load or store.
func (c *CPU) ea(ins *isa.Instruction) uint32 {
	return c.intRegs[ins.Rs] + uint32(ins.Imm)
}

// fillMemEvent records the memory access in the trace event, classifying the
// address into the paper's stack / non-stack segments.
func (c *CPU) fillMemEvent(ev *trace.Event, addr uint32, size uint8) {
	ev.MemAddr = addr
	ev.MemSize = size
	switch {
	case addr >= stackRegionFloor:
		ev.Seg = trace.SegStack
	case addr >= c.heapBase:
		ev.Seg = trace.SegHeap
	default:
		ev.Seg = trace.SegData
	}
}

func (c *CPU) setInt(r isa.Reg, v uint32) {
	if r != isa.Zero {
		c.intRegs[r] = v
	}
}

func (c *CPU) fp(r isa.Reg) float64 { return math.Float64frombits(c.fpRegs[r-isa.F0]) }

func (c *CPU) setFP(r isa.Reg, v float64) { c.fpRegs[r-isa.F0] = math.Float64bits(v) }

func branchTarget(pc uint32, imm int32) uint32 { return pc + 4 + uint32(imm)*4 }

func boolToReg(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
