// Package remote fetches stored traces over HTTP for multi-machine
// sharding: a shard worker pulls exactly its byte range from a trace store
// with a Range request instead of copying the whole file. The package
// extends trace.RetryReader's transient-error model to the network — every
// fetch retries transient failures (429/5xx responses, connection errors,
// torn or truncated bodies) with seeded-jitter exponential backoff, and a
// download that dies mid-body restarts from the last good offset with a
// fresh Range request rather than from byte zero. Permanent failures (any
// other 4xx) fail immediately; there is no point hammering a 404.
//
// Integrity is not this package's job: the chunk CRCs in the trace format
// still decide what is valid, so a server that lies about bytes is caught
// downstream exactly like a corrupt local file.
package remote

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"paragraph/internal/trace"
)

// Options configures a Source. The zero value selects the defaults noted
// on each field.
type Options struct {
	// Client issues the requests; nil selects http.DefaultClient. Tests
	// inject a fault-injecting transport here.
	Client *http.Client
	// MaxAttempts bounds consecutive fetch attempts that make no byte of
	// progress; an attempt that delivers data resets the count, so a long
	// download survives any number of scattered faults while a dead server
	// still fails promptly. 0 selects 8.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// consecutive failure. 0 selects 25ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 selects 2s.
	MaxDelay time.Duration
	// Seed seeds the jitter PRNG, keeping retry timing reproducible.
	Seed int64
	// Sleep replaces the backoff sleep; tests inject a recorder. nil
	// selects a context-aware sleep.
	Sleep func(time.Duration)
}

// Stats accounts for what a Source absorbed. It is the network-level
// sibling of trace.RetryStats, surfaced so degraded inputs are observable
// instead of silently retried (CLI summaries and the pgserved job status
// both report it).
type Stats struct {
	// Requests counts HTTP requests issued.
	Requests int
	// Retries counts attempts that followed a transient failure.
	Retries int
	// Resumes counts mid-body restarts that re-Ranged from the last good
	// offset instead of byte zero.
	Resumes int
	// Throttled counts 429/503 responses absorbed.
	Throttled int
	// BytesFetched is the total payload bytes delivered to callers.
	BytesFetched int64
	// Slept is the total backoff waited.
	Slept time.Duration
}

// throttledError is a transient 429/5xx response, carrying the server's
// Retry-After hint when it sent one. The backoff path honors the hint
// instead of the seeded-jitter curve: a server that knows when it will
// have capacity beats a client guessing.
type throttledError struct {
	url        string
	status     string
	retryAfter time.Duration
}

func (e *throttledError) Error() string {
	return fmt.Sprintf("remote: %s: server answered %s (transient)", e.url, e.status)
}

// ParseRetryAfter extracts a Retry-After header value: delay seconds or an
// HTTP date. Zero means absent or unparseable.
func ParseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// PermanentError is a failure that retrying cannot fix: the server
// answered conclusively (a 4xx other than 429) or inconsistently (a range
// reply for the wrong offset).
type PermanentError struct {
	URL    string
	Status string // HTTP status line, when the failure was a response
	Reason string
}

func (e *PermanentError) Error() string {
	if e.Status != "" {
		return fmt.Sprintf("remote: %s: server answered %s (permanent)", e.URL, e.Status)
	}
	return fmt.Sprintf("remote: %s: %s (permanent)", e.URL, e.Reason)
}

// IsPermanent reports whether err (or anything it wraps) is a
// PermanentError — a failure no retry budget should be spent on.
func IsPermanent(err error) bool {
	var p *PermanentError
	return errors.As(err, &p)
}

// Source is one remote trace: a URL plus the retry machinery and
// accounting shared by every range fetched from it. A Source is safe for
// concurrent use; fetches running in parallel share the stats and the
// jitter PRNG but nothing else.
type Source struct {
	url  string
	opts Options
	size int64

	mu     sync.Mutex
	rng    *rand.Rand
	st     Stats
	header []byte // cached trace file header for Section stitching
}

// Open probes the trace at url (a HEAD request, falling back to a 1-byte
// ranged GET for servers that reject HEAD) and returns a Source that knows
// its size. The probe retries transient failures like any other fetch.
func Open(ctx context.Context, url string, opts Options) (*Source, error) {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 8
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 25 * time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 2 * time.Second
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	s := &Source{url: url, opts: opts, rng: rand.New(rand.NewSource(opts.Seed)), size: -1}
	size, err := s.probeSize(ctx)
	if err != nil {
		return nil, err
	}
	s.size = size
	return s, nil
}

// URL returns the trace's URL.
func (s *Source) URL() string { return s.url }

// Size returns the trace's length in bytes.
func (s *Source) Size() int64 { return s.size }

// Stats returns a snapshot of the retry accounting so far.
func (s *Source) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

// IsURL reports whether the trace location is a remote URL this package
// can fetch (CLIs use it to route -trace values).
func IsURL(loc string) bool {
	return strings.HasPrefix(loc, "http://") || strings.HasPrefix(loc, "https://")
}

// FetchAll downloads the whole trace — what a planning scan needs. Like
// every fetch it is resumable: faults restart from the last good offset.
func (s *Source) FetchAll(ctx context.Context) ([]byte, error) {
	return s.ReadRange(ctx, 0, s.size)
}

// ReadRange fetches the byte range [start, end) of the trace, retrying
// transient failures and resuming partial bodies until the range is whole
// or the attempt budget is spent.
func (s *Source) ReadRange(ctx context.Context, start, end int64) ([]byte, error) {
	if start < 0 || end < start || (s.size >= 0 && end > s.size) {
		return nil, &PermanentError{URL: s.url,
			Reason: fmt.Sprintf("bad range [%d, %d) of %d-byte trace", start, end, s.size)}
	}
	buf := make([]byte, end-start)
	var got int64
	var lastErr error
	for fails := 0; got < int64(len(buf)); {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("remote: %s: canceled at offset %d: %w", s.url, start+got, err)
		}
		if got > 0 {
			// Re-Range from the last good offset: the bytes already
			// delivered are kept, not refetched.
			s.count(func(st *Stats) { st.Resumes++ })
		}
		n, err := s.fetchOnce(ctx, start+got, end, buf[got:])
		got += int64(n)
		if got == int64(len(buf)) {
			break
		}
		if err == nil {
			// A clean EOF short of the range is a truncated body; the
			// missing tail is fetched like any other transient fault.
			err = fmt.Errorf("remote: %s: body ended %d bytes short of range [%d, %d)",
				s.url, int64(len(buf))-got, start, end)
		}
		if IsPermanent(err) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		lastErr = err
		if n > 0 {
			fails = 0 // progress: the server is alive, reset the budget
		} else {
			fails++
			if fails >= s.opts.MaxAttempts {
				return nil, fmt.Errorf("remote: %s: giving up after %d attempts without progress at offset %d: %w",
					s.url, fails, start+got, lastErr)
			}
		}
		s.count(func(st *Stats) { st.Retries++ })
		// After progress fails is 0; back off one base step rather than
		// hammering a server that keeps cutting mid-body.
		if err := s.delay(ctx, lastErr, max(fails, 1)); err != nil {
			return nil, err
		}
	}
	s.count(func(st *Stats) { st.BytesFetched += int64(len(buf)) })
	return buf, nil
}

// Section fetches the shard byte range [start, end) stitched behind the
// trace file header, ready for a zero-copy section reader: the returned
// offsets delimit the range inside the returned data. This is how a shard
// worker decodes its slice of a remote trace without downloading the rest.
func (s *Source) Section(ctx context.Context, start, end int64) (data []byte, newStart, newEnd int64, err error) {
	hdr, err := s.Header(ctx)
	if err != nil {
		return nil, 0, 0, err
	}
	body, err := s.ReadRange(ctx, start, end)
	if err != nil {
		return nil, 0, 0, err
	}
	data = make([]byte, 0, int64(len(hdr))+int64(len(body)))
	data = append(data, hdr...)
	data = append(data, body...)
	return data, trace.HeaderBytes, int64(len(data)), nil
}

// Header fetches (once) and caches the trace file header.
func (s *Source) Header(ctx context.Context) ([]byte, error) {
	s.mu.Lock()
	hdr := s.header
	s.mu.Unlock()
	if hdr != nil {
		return hdr, nil
	}
	hdr, err := s.ReadRange(ctx, 0, trace.HeaderBytes)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.header = hdr
	s.mu.Unlock()
	return hdr, nil
}

// fetchOnce issues one ranged GET for [off, end) and copies as much of the
// body as arrives into dst. Transient failures return the bytes delivered
// so far with the error; the caller decides whether to resume.
func (s *Source) fetchOnce(ctx context.Context, off, end int64, dst []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.url, nil)
	if err != nil {
		return 0, &PermanentError{URL: s.url, Reason: err.Error()}
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, end-1))
	s.count(func(st *Stats) { st.Requests++ })
	resp, err := s.opts.Client.Do(req)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return 0, fmt.Errorf("remote: %s: %w", s.url, cerr)
		}
		return 0, fmt.Errorf("remote: %s: %w", s.url, err) // network errors are transient
	}
	defer resp.Body.Close()

	discard := int64(0)
	switch {
	case resp.StatusCode == http.StatusPartialContent:
		if cr := resp.Header.Get("Content-Range"); cr != "" {
			if rs, ok := parseContentRangeStart(cr); ok && rs != off {
				return 0, &PermanentError{URL: s.url,
					Reason: fmt.Sprintf("asked for offset %d, server answered Content-Range %q", off, cr)}
			}
		}
	case resp.StatusCode == http.StatusOK:
		// The server ignored the Range header; skip to the offset and
		// read the slice out of the full body.
		discard = off
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			s.count(func(st *Stats) { st.Throttled++ })
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return 0, &throttledError{url: s.url, status: resp.Status, retryAfter: ParseRetryAfter(resp.Header)}
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return 0, &PermanentError{URL: s.url, Status: resp.Status}
	}

	if discard > 0 {
		if _, err := io.CopyN(io.Discard, resp.Body, discard); err != nil {
			return 0, fmt.Errorf("remote: %s: skipping to offset %d of un-ranged body: %w", s.url, off, err)
		}
	}
	var got int
	for got < len(dst) {
		n, err := resp.Body.Read(dst[got:])
		got += n
		if err == io.EOF {
			return got, nil
		}
		if err != nil {
			return got, fmt.Errorf("remote: %s: body failed at offset %d: %w", s.url, off+int64(got), err)
		}
	}
	return got, nil
}

// probeSize learns the trace's length: HEAD first, then a 1-byte ranged
// GET whose Content-Range carries the total for servers without HEAD.
func (s *Source) probeSize(ctx context.Context) (int64, error) {
	var lastErr error
	for fails := 0; fails < s.opts.MaxAttempts; fails++ {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("remote: %s: canceled probing size: %w", s.url, err)
		}
		if fails > 0 {
			s.count(func(st *Stats) { st.Retries++ })
			if err := s.delay(ctx, lastErr, fails); err != nil {
				return 0, err
			}
		}
		size, err := s.probeOnce(ctx)
		if err == nil {
			return size, nil
		}
		if IsPermanent(err) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return 0, err
		}
		lastErr = err
	}
	return 0, fmt.Errorf("remote: %s: giving up probing size after %d attempts: %w", s.url, s.opts.MaxAttempts, lastErr)
}

func (s *Source) probeOnce(ctx context.Context) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, s.url, nil)
	if err != nil {
		return 0, &PermanentError{URL: s.url, Reason: err.Error()}
	}
	s.count(func(st *Stats) { st.Requests++ })
	resp, err := s.opts.Client.Do(req)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK && resp.ContentLength >= 0:
			return resp.ContentLength, nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
			if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
				s.count(func(st *Stats) { st.Throttled++ })
			}
			return 0, &throttledError{url: s.url, status: resp.Status, retryAfter: ParseRetryAfter(resp.Header)}
		case resp.StatusCode >= 400 && resp.StatusCode != http.StatusMethodNotAllowed:
			return 0, &PermanentError{URL: s.url, Status: resp.Status}
		}
		// HEAD unsupported or length unknown: fall through to ranged GET.
	}

	req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, s.url, nil)
	if rerr != nil {
		return 0, &PermanentError{URL: s.url, Reason: rerr.Error()}
	}
	req.Header.Set("Range", "bytes=0-0")
	s.count(func(st *Stats) { st.Requests++ })
	resp, err = s.opts.Client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("remote: %s: %w", s.url, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusPartialContent:
		if total, ok := parseContentRangeTotal(resp.Header.Get("Content-Range")); ok {
			return total, nil
		}
		return 0, &PermanentError{URL: s.url,
			Reason: fmt.Sprintf("unparseable Content-Range %q", resp.Header.Get("Content-Range"))}
	case resp.StatusCode == http.StatusOK && resp.ContentLength >= 0:
		return resp.ContentLength, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			s.count(func(st *Stats) { st.Throttled++ })
		}
		return 0, &throttledError{url: s.url, status: resp.Status, retryAfter: ParseRetryAfter(resp.Header)}
	case resp.StatusCode >= 400:
		return 0, &PermanentError{URL: s.url, Status: resp.Status}
	}
	return 0, fmt.Errorf("remote: %s: cannot determine size (status %s, no length)", s.url, resp.Status)
}

// parseContentRangeStart extracts the first-byte offset of a
// "bytes X-Y/Z" Content-Range value.
func parseContentRangeStart(cr string) (int64, bool) {
	rest, ok := strings.CutPrefix(cr, "bytes ")
	if !ok {
		return 0, false
	}
	dash := strings.IndexByte(rest, '-')
	if dash < 0 {
		return 0, false
	}
	n, err := strconv.ParseInt(rest[:dash], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// parseContentRangeTotal extracts the total length of a "bytes X-Y/Z"
// Content-Range value.
func parseContentRangeTotal(cr string) (int64, bool) {
	slash := strings.LastIndexByte(cr, '/')
	if slash < 0 || slash+1 >= len(cr) {
		return 0, false
	}
	n, err := strconv.ParseInt(cr[slash+1:], 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// delay sleeps before the next retry. A Retry-After hint from the failed
// response is honored verbatim — no jitter, the server named its price —
// capped at 4×MaxDelay so a hostile header cannot park a shard for an
// hour. Everything else falls back to the jittered exponential curve.
func (s *Source) delay(ctx context.Context, cause error, fails int) error {
	var te *throttledError
	if errors.As(cause, &te) && te.retryAfter > 0 {
		d := te.retryAfter
		if limit := 4 * s.opts.MaxDelay; d > limit {
			d = limit
		}
		return s.sleep(ctx, d)
	}
	return s.backoff(ctx, fails)
}

// backoff sleeps the jittered exponential delay for the given consecutive
// failure count (1-based), honoring cancellation. Same curve and jitter
// band as trace.RetryReader: d in [base<<(n-1)/2, 3*base<<(n-1)/2), capped.
func (s *Source) backoff(ctx context.Context, fails int) error {
	d := s.opts.BaseDelay << uint(fails-1)
	if d > s.opts.MaxDelay || d <= 0 {
		d = s.opts.MaxDelay
	}
	s.mu.Lock()
	d = d/2 + time.Duration(s.rng.Int63n(int64(d)))
	s.mu.Unlock()
	return s.sleep(ctx, d)
}

// sleep waits d, counting it in Stats.Slept and honoring cancellation.
func (s *Source) sleep(ctx context.Context, d time.Duration) error {
	s.count(func(st *Stats) { st.Slept += d })
	if s.opts.Sleep != nil {
		s.opts.Sleep(d)
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("remote: %s: canceled during backoff: %w", s.url, ctx.Err())
	}
}

func (s *Source) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.st)
	s.mu.Unlock()
}
