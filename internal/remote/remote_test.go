package remote

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"paragraph/internal/faultinject"
	"paragraph/internal/isa"
	"paragraph/internal/shard"
	"paragraph/internal/trace"
)

// traceServer serves payload with full range support, the way any static
// file server or object store presents a stored trace.
func traceServer(t *testing.T, payload []byte) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "trace.pgt", time.Unix(0, 0), bytes.NewReader(payload))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// noSleep collapses backoff so chaos-heavy tests run in milliseconds while
// still counting what would have been slept.
func noSleep(time.Duration) {}

func openSource(t *testing.T, url string, client *http.Client) *Source {
	t.Helper()
	src, err := Open(context.Background(), url, Options{Client: client, Seed: 7, Sleep: noSleep})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return src
}

func randomPayload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	rng.Read(out)
	return out
}

func TestReadRangeExact(t *testing.T) {
	payload := randomPayload(1<<16, 1)
	srv := traceServer(t, payload)
	src := openSource(t, srv.URL, srv.Client())
	if src.Size() != int64(len(payload)) {
		t.Fatalf("Size = %d, want %d", src.Size(), len(payload))
	}
	for _, r := range [][2]int64{{0, 8}, {0, int64(len(payload))}, {100, 4096}, {int64(len(payload)) - 17, int64(len(payload))}, {500, 500}} {
		got, err := src.ReadRange(context.Background(), r[0], r[1])
		if err != nil {
			t.Fatalf("ReadRange[%d,%d): %v", r[0], r[1], err)
		}
		if !bytes.Equal(got, payload[r[0]:r[1]]) {
			t.Fatalf("ReadRange[%d,%d): bytes differ", r[0], r[1])
		}
	}
	if st := src.Stats(); st.Retries != 0 || st.Resumes != 0 {
		t.Errorf("clean server, stats = %+v, want no retries", st)
	}
}

func TestReadRangeOutOfBounds(t *testing.T) {
	payload := randomPayload(1024, 2)
	srv := traceServer(t, payload)
	src := openSource(t, srv.URL, srv.Client())
	if _, err := src.ReadRange(context.Background(), 0, 2048); !IsPermanent(err) {
		t.Fatalf("out-of-bounds range: err = %v, want permanent", err)
	}
}

// TestFetchUnderChaos is the package's core promise: through a transport
// injecting throttles, mid-body cuts and truncations — no permanent faults
// — every range is recovered byte-exactly, with the damage visible in the
// stats instead of silently absorbed.
func TestFetchUnderChaos(t *testing.T) {
	payload := randomPayload(1<<18, 3)
	srv := traceServer(t, payload)
	chaos := faultinject.NewChaosTransport(srv.Client().Transport, faultinject.ChaosOptions{
		Seed: 11, ThrottleP: 0.25, CutP: 0.25, TruncateP: 0.2,
	})
	src := openSource(t, srv.URL, &http.Client{Transport: chaos})

	all, err := src.FetchAll(context.Background())
	if err != nil {
		t.Fatalf("FetchAll under chaos: %v", err)
	}
	if !bytes.Equal(all, payload) {
		t.Fatal("FetchAll under chaos: bytes differ")
	}
	for _, r := range [][2]int64{{1000, 70000}, {0, 8}, {131072, 262144}} {
		got, err := src.ReadRange(context.Background(), r[0], r[1])
		if err != nil {
			t.Fatalf("ReadRange[%d,%d) under chaos: %v", r[0], r[1], err)
		}
		if !bytes.Equal(got, payload[r[0]:r[1]]) {
			t.Fatalf("ReadRange[%d,%d) under chaos: bytes differ", r[0], r[1])
		}
	}
	st := src.Stats()
	if st.Retries == 0 {
		t.Errorf("chaos at 70%% fault rate produced no retries: %+v", st)
	}
	if st.Resumes == 0 {
		t.Errorf("mid-body cuts produced no resumes: %+v", st)
	}
	if st.Throttled == 0 {
		t.Errorf("throttling produced no throttle count: %+v", st)
	}
	if cs := chaos.Stats(); cs.Cut == 0 && cs.Truncated == 0 {
		t.Errorf("chaos transport injected no body faults: %+v", cs)
	}
}

// TestPermanentFailsFast pins the transient/permanent split: a 4xx other
// than 429 fails without burning the retry budget.
func TestPermanentFailsFast(t *testing.T) {
	payload := randomPayload(4096, 4)
	deny := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if deny {
			http.Error(w, "forbidden", http.StatusForbidden)
			return
		}
		http.ServeContent(w, r, "trace.pgt", time.Unix(0, 0), bytes.NewReader(payload))
	}))
	defer srv.Close()
	src := openSource(t, srv.URL, srv.Client())
	before := src.Stats().Requests
	deny = true
	_, err := src.ReadRange(context.Background(), 0, 1024)
	if !IsPermanent(err) {
		t.Fatalf("403: err = %v, want permanent", err)
	}
	if got := src.Stats().Requests - before; got != 1 {
		t.Errorf("permanent failure burned %d requests, want exactly 1", got)
	}
	if src.Stats().Retries != 0 {
		t.Errorf("permanent failure must not be retried: %+v", src.Stats())
	}
}

func TestOpenMissingTrace(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	_, err := Open(context.Background(), srv.URL+"/nope.pgt", Options{Client: srv.Client(), Sleep: noSleep})
	if !IsPermanent(err) {
		t.Fatalf("404 on open: err = %v, want permanent", err)
	}
}

// TestServerWithoutRanges covers servers that ignore Range entirely: the
// source falls back to skipping within the full body and still delivers
// the exact slice.
func TestServerWithoutRanges(t *testing.T) {
	payload := randomPayload(1<<15, 5)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Plain 200, Content-Length set, Range ignored.
		w.Header().Set("Content-Length", fmt.Sprint(len(payload)))
		if r.Method == http.MethodHead {
			return
		}
		w.Write(payload)
	}))
	defer srv.Close()
	src := openSource(t, srv.URL, srv.Client())
	if src.Size() != int64(len(payload)) {
		t.Fatalf("Size = %d, want %d", src.Size(), len(payload))
	}
	got, err := src.ReadRange(context.Background(), 9000, 12000)
	if err != nil {
		t.Fatalf("ReadRange on rangeless server: %v", err)
	}
	if !bytes.Equal(got, payload[9000:12000]) {
		t.Fatal("ReadRange on rangeless server: bytes differ")
	}
}

func TestGivesUpWithoutProgress(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	_, err := Open(context.Background(), srv.URL, Options{Client: srv.Client(), MaxAttempts: 3, Sleep: noSleep})
	if err == nil {
		t.Fatal("permanently-throttled server: want an error after the attempt budget")
	}
	if IsPermanent(err) {
		t.Fatalf("exhausted budget is a transient give-up, not permanent: %v", err)
	}
}

func TestCancelDuringBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	start := time.Now()
	_, err := Open(ctx, srv.URL, Options{Client: srv.Client(), BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second})
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; backoff must honor the context", elapsed)
	}
}

// synthTrace builds a small v2 trace with many chunk boundaries, the raw
// material for shard-range fetching.
func synthTrace(t testing.TB, n int, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriterOpts(&buf, trace.WriterOptions{ChunkBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pc := uint32(0x400000)
	for i := 0; i < n; i++ {
		var e trace.Event
		switch rng.Intn(4) {
		case 0:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.ADDI, Rt: isa.T0, Rs: isa.T1, Imm: int32(rng.Intn(32))}}
		case 1:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.LW, Rt: isa.T2, Rs: isa.GP},
				MemAddr: 0x10000000 + uint32(rng.Intn(1<<10))*4, MemSize: 4, Seg: trace.SegData}
		case 2:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.SW, Rt: isa.T0, Rs: isa.GP},
				MemAddr: 0x10000000 + uint32(rng.Intn(1<<10))*4, MemSize: 4, Seg: trace.SegData}
		default:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.BNE, Rs: isa.T0, Rt: isa.Zero, Imm: -8},
				Taken: rng.Intn(2) == 0}
		}
		if err := w.Event(&e); err != nil {
			t.Fatal(err)
		}
		pc += 4
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSectionMatchesLocalDecode is the stitching proof: for every shard of
// a plan, decoding the remotely fetched section (header + byte range, with
// the shard's duplicate-detector seed) yields exactly the events a local
// zero-copy section reader delivers.
func TestSectionMatchesLocalDecode(t *testing.T) {
	data := synthTrace(t, 20000, 6)
	plan, err := shard.Split(data, 5, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Shards) < 2 {
		t.Fatalf("want a multi-shard plan, got %d shard(s)", len(plan.Shards))
	}
	srv := traceServer(t, data)
	chaos := faultinject.NewChaosTransport(srv.Client().Transport, faultinject.ChaosOptions{
		Seed: 13, ThrottleP: 0.2, CutP: 0.2, TruncateP: 0.2,
	})
	src := openSource(t, srv.URL, &http.Client{Transport: chaos})

	drain := func(r *trace.Reader) []trace.Event {
		var out []trace.Event
		var e trace.Event
		for {
			err := r.Next(&e)
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, e)
		}
	}
	for _, sh := range plan.Shards {
		opts := trace.ReaderOptions{StartSeq: sh.PrevSeq, StartSeqValid: sh.HavePrevSeq}
		lr, err := trace.NewBytesSectionReader(data, sh.Start, sh.End, opts)
		if err != nil {
			t.Fatalf("shard %d local: %v", sh.Index, err)
		}
		sect, start, end, err := src.Section(context.Background(), sh.Start, sh.End)
		if err != nil {
			t.Fatalf("shard %d fetch: %v", sh.Index, err)
		}
		rr, err := trace.NewBytesSectionReader(sect, start, end, opts)
		if err != nil {
			t.Fatalf("shard %d remote: %v", sh.Index, err)
		}
		local, fetched := drain(lr), drain(rr)
		if !reflect.DeepEqual(local, fetched) {
			t.Fatalf("shard %d: remote section decodes %d events, local %d (or contents differ)",
				sh.Index, len(fetched), len(local))
		}
	}
}

// throttleOnceServer answers the first ranged GET with 429 plus the given
// Retry-After header, then serves normally.
func throttleOnceServer(t *testing.T, payload []byte, retryAfter string) *httptest.Server {
	t.Helper()
	var throttled bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.Header.Get("Range") != "" && !throttled {
			throttled = true
			w.Header().Set("Retry-After", retryAfter)
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		http.ServeContent(w, r, "trace.pgt", time.Unix(0, 0), bytes.NewReader(payload))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestRetryAfterHonored: a 429 carrying Retry-After overrides the jittered
// backoff — the source sleeps exactly what the server asked for.
func TestRetryAfterHonored(t *testing.T) {
	payload := randomPayload(4096, 8)
	srv := throttleOnceServer(t, payload, "2")

	var slept []time.Duration
	src, err := Open(context.Background(), srv.URL, Options{
		Client: srv.Client(), Seed: 7,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, err := src.ReadRange(context.Background(), 0, 1024)
	if err != nil {
		t.Fatalf("ReadRange through throttle: %v", err)
	}
	if !bytes.Equal(got, payload[:1024]) {
		t.Fatal("bytes differ after throttled retry")
	}
	if want := []time.Duration{2 * time.Second}; !reflect.DeepEqual(slept, want) {
		t.Fatalf("slept %v, want exactly %v (server's Retry-After, no jitter)", slept, want)
	}
	if st := src.Stats(); st.Throttled != 1 || st.Slept != 2*time.Second {
		t.Errorf("stats %+v, want Throttled 1 and Slept 2s", st)
	}
}

// TestRetryAfterCapped: a hostile Retry-After cannot park a fetch beyond
// 4×MaxDelay.
func TestRetryAfterCapped(t *testing.T) {
	payload := randomPayload(4096, 9)
	srv := throttleOnceServer(t, payload, "3600")

	var slept []time.Duration
	src, err := Open(context.Background(), srv.URL, Options{
		Client: srv.Client(), Seed: 7, MaxDelay: 50 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := src.ReadRange(context.Background(), 0, 1024); err != nil {
		t.Fatalf("ReadRange through throttle: %v", err)
	}
	if len(slept) != 1 || slept[0] != 200*time.Millisecond {
		t.Fatalf("slept %v, want exactly [200ms] (4×MaxDelay cap)", slept)
	}
}

func TestParseRetryAfter(t *testing.T) {
	mk := func(v string) http.Header {
		h := http.Header{}
		h.Set("Retry-After", v)
		return h
	}
	if d := ParseRetryAfter(http.Header{}); d != 0 {
		t.Errorf("absent header: %v, want 0", d)
	}
	if d := ParseRetryAfter(mk("5")); d != 5*time.Second {
		t.Errorf("\"5\": %v, want 5s", d)
	}
	if d := ParseRetryAfter(mk("-3")); d != 0 {
		t.Errorf("negative: %v, want 0", d)
	}
	if d := ParseRetryAfter(mk("garbage")); d != 0 {
		t.Errorf("garbage: %v, want 0", d)
	}
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if d := ParseRetryAfter(mk(future)); d < 80*time.Second || d > 91*time.Second {
		t.Errorf("future date: %v, want ~90s", d)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if d := ParseRetryAfter(mk(past)); d != 0 {
		t.Errorf("past date: %v, want 0", d)
	}
}
