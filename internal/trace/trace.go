// Package trace defines the canonical dynamic-instruction event produced by
// the CPU simulator and consumed by the Paragraph analyzer, together with a
// compact binary file format for storing traces.
//
// The paper captured serial execution traces of SPEC binaries with Pixie, a
// basic-block execution profiler for DECstation workstations. A Pixie trace
// is, in essence, the sequence of executed instructions together with the
// data addresses they touch; this package is our equivalent of that trace
// stream. Events carry everything the dependency analysis needs: the decoded
// instruction (hence operation class and register operands), the effective
// memory address and size for loads and stores, the memory segment the
// address falls in (the analyzer's renaming switches distinguish stack from
// non-stack memory), and branch outcomes.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"paragraph/internal/isa"
)

// Segment classifies a memory address by the region of the address space it
// falls in. The paper's renaming switches treat the stack segment separately
// from other ("data") memory, because stack extents are procedure-scoped and
// therefore easy to rename.
type Segment uint8

const (
	SegNone  Segment = iota // no memory access
	SegData                 // static data segment (and anything unclassified)
	SegHeap                 // dynamically allocated memory (sbrk)
	SegStack                // the stack segment
)

func (s Segment) String() string {
	switch s {
	case SegNone:
		return "none"
	case SegData:
		return "data"
	case SegHeap:
		return "heap"
	case SegStack:
		return "stack"
	}
	return fmt.Sprintf("segment(%d)", uint8(s))
}

// Event is one dynamically executed instruction.
type Event struct {
	PC      uint32          // address of the instruction
	Ins     isa.Instruction // the decoded instruction
	MemAddr uint32          // effective address (loads/stores), else 0
	MemSize uint8           // bytes accessed (loads/stores), else 0
	Seg     Segment         // segment of MemAddr
	Taken   bool            // branch/jump outcome
}

// IsSyscall reports whether the event is a system call.
func (e *Event) IsSyscall() bool { return e.Ins.Op == isa.SYSCALL || e.Ins.Op == isa.BREAK }

// Sink consumes a stream of events.
type Sink interface {
	Event(e *Event) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(e *Event) error

// Event implements Sink.
func (f SinkFunc) Event(e *Event) error { return f(e) }

// Tee returns a Sink that forwards each event to every sink in order,
// stopping at the first error.
func Tee(sinks ...Sink) Sink {
	return SinkFunc(func(e *Event) error {
		for _, s := range sinks {
			if err := s.Event(e); err != nil {
				return err
			}
		}
		return nil
	})
}

// Counter is a Sink that counts events; useful for trace-length accounting.
type Counter struct {
	N uint64
}

// Event implements Sink.
func (c *Counter) Event(*Event) error { c.N++; return nil }

// File format v1:
//
//	magic "PGTRACE1" (8 bytes)
//	then per event:
//	  flags byte: bit0 mem access present, bit1 taken, bits 2-3 segment,
//	              bit4 PC is delta+4 from previous (the common case,
//	              encoded with zero extra bytes)
//	  if bit4 clear: uvarint PC
//	  uvarint instruction word
//	  if bit0: uvarint MemAddr, byte MemSize
//
// The format favours sequential code: straight-line execution costs one flag
// byte plus the instruction word per event.
//
// Format v2 ("PGTRACE2") keeps the per-event encoding but frames events
// into checksummed chunks; see format2.go.

var magic = [8]byte{'P', 'G', 'T', 'R', 'A', 'C', 'E', '1'}

const (
	flagMem      = 1 << 0
	flagTaken    = 1 << 1
	flagSegShift = 2
	flagSeqPC    = 1 << 4
)

// Writer streams events to an io.Writer in the binary trace format. It
// implements Sink. Call Flush (or Close if the underlying writer should be
// closed) when done.
//
// NewWriter produces format v2 (chunked, checksummed); NewWriterV1 keeps
// the legacy unframed stream for tools that need byte-compatible output.
type Writer struct {
	bw      *bufio.Writer
	closer  io.Closer
	version int
	lastPC  uint32
	first   bool
	n       uint64
	buf     [2 * binary.MaxVarintLen64]byte

	// v2 chunk state: events are encoded into chunk and framed with a
	// header (marker, sequence number, length, event count, CRC32) once
	// chunkTarget bytes accumulate.
	chunk       []byte
	chunkEvents uint32
	chunkTarget int
	seq         uint32
	hdr         [chunkHdrLen]byte
}

// WriterOptions configures NewWriterOpts.
type WriterOptions struct {
	// Version selects the file format: 2 (default) or 1 (legacy
	// unframed stream without checksums).
	Version int
	// ChunkBytes is the approximate payload size of a v2 chunk before it
	// is framed and flushed; 0 selects DefaultChunkBytes. Ignored for v1.
	ChunkBytes int
}

// NewWriter creates a v2 (chunked, checksummed) trace writer and emits the
// file header. If w also implements io.Closer, Close will close it.
func NewWriter(w io.Writer) (*Writer, error) {
	return NewWriterOpts(w, WriterOptions{})
}

// NewWriterV1 creates a writer for the legacy v1 stream format.
func NewWriterV1(w io.Writer) (*Writer, error) {
	return NewWriterOpts(w, WriterOptions{Version: 1})
}

// NewWriterOpts creates a trace writer with explicit options.
func NewWriterOpts(w io.Writer, o WriterOptions) (*Writer, error) {
	version := o.Version
	if version == 0 {
		version = 2
	}
	if version != 1 && version != 2 {
		return nil, fmt.Errorf("%w: cannot write version %d", ErrVersion, version)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	tw := &Writer{bw: bw, first: true, version: version}
	if c, ok := w.(io.Closer); ok {
		tw.closer = c
	}
	if version == 1 {
		if _, err := bw.Write(magic[:]); err != nil {
			return nil, err
		}
		return tw, nil
	}
	target := o.ChunkBytes
	if target <= 0 {
		target = DefaultChunkBytes
	}
	if target > maxChunkPayload-64 {
		target = maxChunkPayload - 64
	}
	tw.chunkTarget = target
	tw.chunk = make([]byte, 0, target+64)
	if _, err := bw.Write(magic2[:]); err != nil {
		return nil, err
	}
	return tw, nil
}

// Event implements Sink.
func (w *Writer) Event(e *Event) error {
	var flags byte
	seq := !w.first && e.PC == w.lastPC+4
	if seq {
		flags |= flagSeqPC
	}
	if e.MemSize > 0 {
		flags |= flagMem
	}
	if e.Taken {
		flags |= flagTaken
	}
	flags |= byte(e.Seg) << flagSegShift

	word, err := isa.Encode(&e.Ins)
	if err != nil {
		return fmt.Errorf("trace: event %d: %w", w.n, err)
	}

	buf := w.buf[:0]
	buf = append(buf, flags)
	if !seq {
		buf = binary.AppendUvarint(buf, uint64(e.PC))
	}
	buf = binary.AppendUvarint(buf, uint64(word))
	if e.MemSize > 0 {
		buf = binary.AppendUvarint(buf, uint64(e.MemAddr))
		buf = append(buf, e.MemSize)
	}
	if w.version == 2 {
		w.chunk = append(w.chunk, buf...)
		w.chunkEvents++
		w.lastPC = e.PC
		w.first = false
		w.n++
		if len(w.chunk) >= w.chunkTarget {
			return w.flushChunk()
		}
		return nil
	}
	if _, err := w.bw.Write(buf); err != nil {
		return err
	}
	w.lastPC = e.PC
	w.first = false
	w.n++
	return nil
}

// Count returns the number of events written so far.
func (w *Writer) Count() uint64 { return w.n }

// Version returns the file format version being written (1 or 2).
func (w *Writer) Version() int { return w.version }

// Flush frames any buffered chunk and writes all buffered data to the
// underlying writer. The resulting file is complete and readable; further
// events may still be appended.
func (w *Writer) Flush() error {
	if w.version == 2 {
		if err := w.flushChunk(); err != nil {
			return err
		}
	}
	return w.bw.Flush()
}

// Close flushes and, if the underlying writer is an io.Closer, closes it.
func (w *Writer) Close() error {
	if err := w.Flush(); err != nil {
		return err
	}
	if w.closer != nil {
		return w.closer.Close()
	}
	return nil
}

// Reader reads a trace written by Writer. It transparently handles both
// format versions: v1 streams decode exactly as before, v2 chunked traces
// are CRC-verified chunk by chunk.
type Reader struct {
	br      *bufio.Reader
	version int
	lastPC  uint32
	first   bool
	n       uint64

	// v2 state (see format2.go).
	degraded bool
	off      int64 // byte offset of the next unconsumed byte
	chunkIdx int
	aligned  bool // positioned at a trusted chunk boundary
	payload  []byte
	pos      int
	rem      uint32 // events remaining in the current chunk per its header
	lastSeq  uint32
	haveSeq  bool
	stats    ReadStats

	// Zero-copy mode (see zerocopy.go): when data is non-nil the whole v2
	// trace is in memory, off doubles as the cursor into it, dataEnd bounds
	// the readable region (a section reader stops short of len(data)), and
	// payload aliases data instead of being copied.
	data    []byte
	dataEnd int64
}

// ReaderOptions configures NewReaderOpts.
type ReaderOptions struct {
	// Degraded turns on graceful degradation for v2 traces: instead of
	// failing fast with a CorruptChunkError, the reader skips damaged
	// chunks, resynchronizes at the next valid chunk boundary, and
	// accounts for the loss in Stats. It has no effect on v1 traces,
	// which have no redundancy to recover with.
	Degraded bool
	// StartSeq seeds the duplicate-chunk detector for a reader that begins
	// mid-file, as per-shard readers do: chunks with seq <= StartSeq are
	// dropped as duplicates, exactly as if one reader had already consumed
	// the preceding portion of the trace. Only meaningful for v2 traces and
	// only honored when StartSeqValid is set.
	StartSeq uint32
	// StartSeqValid marks StartSeq as meaningful (sequence numbers start
	// at 0, so a zero value alone cannot express "no predecessor").
	StartSeqValid bool
}

// ReadStats accounts for what a degraded-mode reader skipped.
type ReadStats struct {
	// Chunks is the number of valid chunks delivered.
	Chunks int
	// SkippedChunks counts chunks dropped because of corruption.
	SkippedChunks int
	// SkippedEvents is the best-effort count of events lost with those
	// chunks, from the chunk headers where they were readable.
	SkippedEvents uint64
	// DuplicateChunks counts chunks dropped because their sequence
	// number had already been delivered (replayed writes).
	DuplicateChunks int
	// ResyncBytes is the number of bytes scanned past while hunting for
	// the next chunk boundary.
	ResyncBytes int64
}

// NewReader validates the header and returns a fail-fast reader positioned
// at the first event.
func NewReader(r io.Reader) (*Reader, error) {
	return NewReaderOpts(r, ReaderOptions{})
}

// NewReaderOpts validates the header and returns a reader with explicit
// options.
func NewReaderOpts(r io.Reader, o ReaderOptions) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("trace: reading magic: %w", ErrTruncated)
		}
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	switch {
	case got == magic:
		return &Reader{br: br, first: true, version: 1, degraded: o.Degraded}, nil
	case got == magic2:
		// Chunk validation peeks whole chunks before consuming them, so
		// the buffer must hold the largest legal chunk.
		big := bufio.NewReaderSize(br, maxChunkPayload+2*chunkHdrLen)
		return &Reader{
			br: big, version: 2, degraded: o.Degraded,
			off: int64(len(magic2)), aligned: true,
			lastSeq: o.StartSeq, haveSeq: o.StartSeqValid,
		}, nil
	case bytes.Equal(got[:7], magic[:7]):
		return nil, fmt.Errorf("%w: version byte %q", ErrVersion, got[7])
	default:
		return nil, ErrBadMagic
	}
}

// Version returns the detected file format version (1 or 2).
func (r *Reader) Version() int { return r.version }

// Stats returns what has been skipped so far; only a degraded-mode reader
// over a damaged v2 trace accumulates anything.
func (r *Reader) Stats() ReadStats { return r.stats }

// Next decodes the next event into e. It returns io.EOF at the clean end of
// the trace.
func (r *Reader) Next(e *Event) error {
	if r.version == 2 {
		return r.nextV2(e)
	}
	flags, err := r.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("trace: event %d: %w", r.n, err)
	}
	var pc uint32
	if flags&flagSeqPC != 0 {
		if r.first {
			return fmt.Errorf("trace: event %d: sequential-PC flag on first event", r.n)
		}
		pc = r.lastPC + 4
	} else {
		v, err := binary.ReadUvarint(r.br)
		if err != nil {
			return fmt.Errorf("trace: event %d: reading PC: %w", r.n, wrapTruncation(err))
		}
		pc = uint32(v)
	}
	wordV, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("trace: event %d: reading instruction: %w", r.n, wrapTruncation(err))
	}
	ins, err := isa.Decode(uint32(wordV))
	if err != nil {
		return fmt.Errorf("trace: event %d: %w", r.n, err)
	}
	*e = Event{
		PC:    pc,
		Ins:   ins,
		Seg:   Segment(flags >> flagSegShift & 0x3),
		Taken: flags&flagTaken != 0,
	}
	if flags&flagMem != 0 {
		addr, err := binary.ReadUvarint(r.br)
		if err != nil {
			return fmt.Errorf("trace: event %d: reading address: %w", r.n, wrapTruncation(err))
		}
		size, err := r.br.ReadByte()
		if err != nil {
			return fmt.Errorf("trace: event %d: reading size: %w", r.n, wrapTruncation(err))
		}
		e.MemAddr = uint32(addr)
		e.MemSize = size
	}
	r.lastPC = pc
	r.first = false
	r.n++
	return nil
}

// wrapTruncation maps an end-of-input error hit mid-event to ErrTruncated,
// so callers can distinguish a torn tail from other IO failures.
func wrapTruncation(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	return err
}

// ForEach reads every remaining event, invoking fn for each. It stops early
// if fn returns an error, and returns nil at a clean end of trace.
func (r *Reader) ForEach(fn func(e *Event) error) error {
	var e Event
	for {
		err := r.Next(&e)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(&e); err != nil {
			return err
		}
	}
}
