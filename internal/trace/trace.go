// Package trace defines the canonical dynamic-instruction event produced by
// the CPU simulator and consumed by the Paragraph analyzer, together with a
// compact binary file format for storing traces.
//
// The paper captured serial execution traces of SPEC binaries with Pixie, a
// basic-block execution profiler for DECstation workstations. A Pixie trace
// is, in essence, the sequence of executed instructions together with the
// data addresses they touch; this package is our equivalent of that trace
// stream. Events carry everything the dependency analysis needs: the decoded
// instruction (hence operation class and register operands), the effective
// memory address and size for loads and stores, the memory segment the
// address falls in (the analyzer's renaming switches distinguish stack from
// non-stack memory), and branch outcomes.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"paragraph/internal/isa"
)

// Segment classifies a memory address by the region of the address space it
// falls in. The paper's renaming switches treat the stack segment separately
// from other ("data") memory, because stack extents are procedure-scoped and
// therefore easy to rename.
type Segment uint8

const (
	SegNone  Segment = iota // no memory access
	SegData                 // static data segment (and anything unclassified)
	SegHeap                 // dynamically allocated memory (sbrk)
	SegStack                // the stack segment
)

func (s Segment) String() string {
	switch s {
	case SegNone:
		return "none"
	case SegData:
		return "data"
	case SegHeap:
		return "heap"
	case SegStack:
		return "stack"
	}
	return fmt.Sprintf("segment(%d)", uint8(s))
}

// Event is one dynamically executed instruction.
type Event struct {
	PC      uint32          // address of the instruction
	Ins     isa.Instruction // the decoded instruction
	MemAddr uint32          // effective address (loads/stores), else 0
	MemSize uint8           // bytes accessed (loads/stores), else 0
	Seg     Segment         // segment of MemAddr
	Taken   bool            // branch/jump outcome
}

// IsSyscall reports whether the event is a system call.
func (e *Event) IsSyscall() bool { return e.Ins.Op == isa.SYSCALL || e.Ins.Op == isa.BREAK }

// Sink consumes a stream of events.
type Sink interface {
	Event(e *Event) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(e *Event) error

// Event implements Sink.
func (f SinkFunc) Event(e *Event) error { return f(e) }

// Tee returns a Sink that forwards each event to every sink in order,
// stopping at the first error.
func Tee(sinks ...Sink) Sink {
	return SinkFunc(func(e *Event) error {
		for _, s := range sinks {
			if err := s.Event(e); err != nil {
				return err
			}
		}
		return nil
	})
}

// Counter is a Sink that counts events; useful for trace-length accounting.
type Counter struct {
	N uint64
}

// Event implements Sink.
func (c *Counter) Event(*Event) error { c.N++; return nil }

// File format:
//
//	magic "PGTRACE1" (8 bytes)
//	then per event:
//	  flags byte: bit0 mem access present, bit1 taken, bits 2-3 segment,
//	              bit4 PC is delta+4 from previous (the common case,
//	              encoded with zero extra bytes)
//	  if bit4 clear: uvarint PC
//	  uvarint instruction word
//	  if bit0: uvarint MemAddr, byte MemSize
//
// The format favours sequential code: straight-line execution costs one flag
// byte plus the instruction word per event.

var magic = [8]byte{'P', 'G', 'T', 'R', 'A', 'C', 'E', '1'}

const (
	flagMem      = 1 << 0
	flagTaken    = 1 << 1
	flagSegShift = 2
	flagSeqPC    = 1 << 4
)

// Writer streams events to an io.Writer in the binary trace format. It
// implements Sink. Call Flush (or Close if the underlying writer should be
// closed) when done.
type Writer struct {
	bw     *bufio.Writer
	closer io.Closer
	lastPC uint32
	first  bool
	n      uint64
	buf    [2 * binary.MaxVarintLen64]byte
}

// NewWriter creates a trace writer and emits the file header. If w also
// implements io.Closer, Close will close it.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	tw := &Writer{bw: bw, first: true}
	if c, ok := w.(io.Closer); ok {
		tw.closer = c
	}
	return tw, nil
}

// Event implements Sink.
func (w *Writer) Event(e *Event) error {
	var flags byte
	seq := !w.first && e.PC == w.lastPC+4
	if seq {
		flags |= flagSeqPC
	}
	if e.MemSize > 0 {
		flags |= flagMem
	}
	if e.Taken {
		flags |= flagTaken
	}
	flags |= byte(e.Seg) << flagSegShift

	word, err := isa.Encode(&e.Ins)
	if err != nil {
		return fmt.Errorf("trace: event %d: %w", w.n, err)
	}

	buf := w.buf[:0]
	buf = append(buf, flags)
	if !seq {
		buf = binary.AppendUvarint(buf, uint64(e.PC))
	}
	buf = binary.AppendUvarint(buf, uint64(word))
	if e.MemSize > 0 {
		buf = binary.AppendUvarint(buf, uint64(e.MemAddr))
		buf = append(buf, e.MemSize)
	}
	if _, err := w.bw.Write(buf); err != nil {
		return err
	}
	w.lastPC = e.PC
	w.first = false
	w.n++
	return nil
}

// Count returns the number of events written so far.
func (w *Writer) Count() uint64 { return w.n }

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Close flushes and, if the underlying writer is an io.Closer, closes it.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.closer != nil {
		return w.closer.Close()
	}
	return nil
}

// Reader reads a trace written by Writer.
type Reader struct {
	br     *bufio.Reader
	lastPC uint32
	first  bool
	n      uint64
}

// NewReader validates the header and returns a reader positioned at the
// first event.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if got != magic {
		return nil, errors.New("trace: bad magic; not a trace file")
	}
	return &Reader{br: br, first: true}, nil
}

// Next decodes the next event into e. It returns io.EOF at the clean end of
// the trace.
func (r *Reader) Next(e *Event) error {
	flags, err := r.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("trace: event %d: %w", r.n, err)
	}
	var pc uint32
	if flags&flagSeqPC != 0 {
		if r.first {
			return fmt.Errorf("trace: event %d: sequential-PC flag on first event", r.n)
		}
		pc = r.lastPC + 4
	} else {
		v, err := binary.ReadUvarint(r.br)
		if err != nil {
			return fmt.Errorf("trace: event %d: reading PC: %w", r.n, err)
		}
		pc = uint32(v)
	}
	wordV, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("trace: event %d: reading instruction: %w", r.n, err)
	}
	ins, err := isa.Decode(uint32(wordV))
	if err != nil {
		return fmt.Errorf("trace: event %d: %w", r.n, err)
	}
	*e = Event{
		PC:    pc,
		Ins:   ins,
		Seg:   Segment(flags >> flagSegShift & 0x3),
		Taken: flags&flagTaken != 0,
	}
	if flags&flagMem != 0 {
		addr, err := binary.ReadUvarint(r.br)
		if err != nil {
			return fmt.Errorf("trace: event %d: reading address: %w", r.n, err)
		}
		size, err := r.br.ReadByte()
		if err != nil {
			return fmt.Errorf("trace: event %d: reading size: %w", r.n, err)
		}
		e.MemAddr = uint32(addr)
		e.MemSize = size
	}
	r.lastPC = pc
	r.first = false
	r.n++
	return nil
}

// ForEach reads every remaining event, invoking fn for each. It stops early
// if fn returns an error, and returns nil at a clean end of trace.
func (r *Reader) ForEach(fn func(e *Event) error) error {
	var e Event
	for {
		err := r.Next(&e)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(&e); err != nil {
			return err
		}
	}
}
