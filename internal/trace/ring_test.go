package trace

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"
)

// ringEvents builds n distinguishable events (the ring never validates
// them, only moves them).
func ringEvents(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{PC: uint32(0x400000 + 4*i), MemAddr: uint32(i)}
	}
	return out
}

// drain collects every event a consumer sees until EOF or error.
func drain(c *RingConsumer) ([]Event, error) {
	var got []Event
	for {
		batch, err := c.Next()
		if err == io.EOF {
			return got, nil
		}
		if err != nil {
			return got, err
		}
		got = append(got, batch...) // copy before releasing the slot
	}
}

// TestRingRoundTrip: events pushed through a tiny ring in awkward chunk
// sizes come out identical, including a partial final batch, and the
// producer's ReadStats travel with them.
func TestRingRoundTrip(t *testing.T) {
	in := ringEvents(10_007) // not a multiple of anything below
	ctx := context.Background()
	r := NewRing(ctx, 1, RingOptions{Batches: 3, BatchEvents: 64})
	want := ReadStats{Chunks: 123, SkippedChunks: 2}
	go func() {
		// Mixed per-event and batched sends, odd batch sizes.
		for i := 0; i < len(in); {
			if i%3 == 0 {
				if err := r.Event(&in[i]); err != nil {
					panic(err)
				}
				i++
				continue
			}
			end := i + 97
			if end > len(in) {
				end = len(in)
			}
			if err := r.Events(in[i:end]); err != nil {
				panic(err)
			}
			i = end
		}
		r.SetStats(want)
		r.CloseSend(nil)
	}()
	got, err := drain(r.Consumer(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("drained %d events, want %d", len(got), len(in))
	}
	for i := range got {
		if got[i] != in[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], in[i])
		}
	}
	if r.Count() != int64(len(in)) {
		t.Errorf("Count = %d, want %d", r.Count(), len(in))
	}
	if r.Stats() != want {
		t.Errorf("Stats = %+v, want %+v", r.Stats(), want)
	}
}

// TestRingBackpressureBounds: with the slowest consumer stalled, the
// producer gets exactly one ring of batches ahead and then blocks — the
// boundedness claim — and resumes when the consumer catches up.
func TestRingBackpressureBounds(t *testing.T) {
	const batches, be = 2, 8
	r := NewRing(context.Background(), 1, RingOptions{Batches: batches, BatchEvents: be})
	in := ringEvents(be * 10)
	var sent atomic.Int64
	done := make(chan error, 1)
	go func() {
		for i := range in {
			if err := r.Event(&in[i]); err != nil {
				done <- err
				return
			}
			sent.Add(1)
		}
		r.CloseSend(nil)
		done <- nil
	}()
	// The consumer never reads: the producer claims a slot before filling
	// it, so it must wedge after exactly one ring's worth of events.
	limit := int64(batches * be)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && sent.Load() < limit {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // would overshoot here if unbounded
	if n := sent.Load(); n != limit {
		t.Fatalf("stalled consumer: producer sent %d events, want exactly %d", n, limit)
	}
	// Catching up releases the producer and the full stream arrives.
	got, err := drain(r.Consumer(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("producer: %v", err)
	}
	if len(got) != len(in) {
		t.Fatalf("drained %d events, want %d", len(got), len(in))
	}
}

// TestRingCancelUnblocks: cancellation must wake both sides — a producer
// parked on backpressure and a consumer parked waiting for data — with
// errors wrapping ctx.Err().
func TestRingCancelUnblocks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRing(ctx, 2, RingOptions{Batches: 2, BatchEvents: 4})
	in := ringEvents(1024)
	prodErr := make(chan error, 1)
	go func() {
		// Consumer 0 never reads, so this blocks on backpressure.
		prodErr <- r.Events(in)
	}()
	consErr := make(chan error, 1)
	go func() {
		// Consumer 1 drains everything published, then parks for more.
		_, err := drain(r.Consumer(1))
		consErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-prodErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("producer err = %v, want context.Canceled in the chain", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel did not unblock the producer")
	}
	select {
	case err := <-consErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("consumer err = %v, want context.Canceled in the chain", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancel did not unblock the consumer")
	}
}

// TestRingProducerErrorAfterDrain: a producer failure is delivered to
// consumers only after every batch published before it — nothing already
// produced is lost — and arrives as a classifiable *RingProducerError.
func TestRingProducerErrorAfterDrain(t *testing.T) {
	r := NewRing(context.Background(), 1, RingOptions{Batches: 4, BatchEvents: 8})
	in := ringEvents(20) // 2.5 batches
	boom := fmt.Errorf("simulation exploded")
	if err := r.Events(in); err != nil {
		t.Fatal(err)
	}
	r.CloseSend(boom)
	got, err := drain(r.Consumer(0))
	if len(got) != len(in) {
		t.Errorf("drained %d events before the failure, want %d", len(got), len(in))
	}
	var pe *RingProducerError
	if !errors.As(err, &pe) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want a *RingProducerError wrapping the producer failure", err)
	}
}

// TestRingDrained: once every consumer has closed, producer sends fail
// with ErrRingDrained instead of blocking forever.
func TestRingDrained(t *testing.T) {
	r := NewRing(context.Background(), 2, RingOptions{Batches: 2, BatchEvents: 4})
	r.Consumer(0).Close()
	r.Consumer(1).Close()
	in := ringEvents(1024)
	err := r.Events(in)
	if !errors.Is(err, ErrRingDrained) {
		t.Fatalf("send into a drained ring: err = %v, want ErrRingDrained", err)
	}
}

// TestRingConsumerCloseReleasesBackpressure: the slowest consumer closing
// early stops gating the producer, which then runs at the pace of the
// remaining consumer.
func TestRingConsumerCloseReleasesBackpressure(t *testing.T) {
	r := NewRing(context.Background(), 2, RingOptions{Batches: 2, BatchEvents: 8})
	in := ringEvents(8 * 16)
	done := make(chan error, 1)
	go func() {
		if err := r.Events(in); err != nil {
			done <- err
			return
		}
		r.CloseSend(nil)
		done <- nil
	}()
	time.Sleep(10 * time.Millisecond) // let the producer wedge on consumer 0
	r.Consumer(0).Close()
	got, err := drain(r.Consumer(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("producer: %v", err)
	}
	if len(got) != len(in) {
		t.Fatalf("surviving consumer drained %d events, want %d", len(got), len(in))
	}
}

// TestRingBytesIndependentOfEvents: the footprint is fixed at
// construction; pushing 100× more events through the same ring does not
// change it. This is the unit-level statement of the constant-memory
// claim the harness soak test makes end-to-end.
func TestRingBytesIndependentOfEvents(t *testing.T) {
	run := func(n int) int64 {
		r := NewRing(context.Background(), 1, RingOptions{Batches: 4, BatchEvents: 32})
		go func() {
			in := ringEvents(n)
			if err := r.Events(in); err != nil {
				panic(err)
			}
			r.CloseSend(nil)
		}()
		if _, err := drain(r.Consumer(0)); err != nil {
			t.Fatal(err)
		}
		return r.Bytes()
	}
	small, large := run(1_000), run(100_000)
	if small != large {
		t.Errorf("ring footprint grew with trace length: %d vs %d bytes", small, large)
	}
	if want := RingFootprint(4, 32); small != want {
		t.Errorf("Bytes = %d, want RingFootprint = %d", small, want)
	}
}

// TestRingSendAfterClose: the producer API fails loudly on misuse.
func TestRingSendAfterClose(t *testing.T) {
	r := NewRing(context.Background(), 1, RingOptions{})
	r.CloseSend(nil)
	e := Event{PC: 1}
	if err := r.Event(&e); err == nil {
		t.Fatal("send after CloseSend succeeded")
	}
}
