//go:build unix

package trace

import (
	"os"
	"syscall"
)

// mapFile memory-maps f read-only. The returned release function unmaps;
// the data must not be accessed after calling it. Mapping a zero-length
// file is an error on most systems, so empty files report mmap as
// unavailable and the caller falls back to a plain read.
func mapFile(f *os.File) ([]byte, func() error, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, errMmapUnavailable
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
