package trace

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"unsafe"
)

// EventBuffer is an in-memory recording of a trace that can be replayed any
// number of times. It implements Sink, so it can capture a simulation's
// event stream directly, and it remembers the ReadStats of the reader that
// filled it (see ReadAll), so a degraded-mode read's skip accounting travels
// with the events it actually delivered.
//
// The point of the buffer is single-decode fan-out: one simulation or one
// pass over a stored trace fills the buffer, and any number of analyzers —
// possibly running concurrently — replay it without re-simulating or
// re-decoding chunks. Replay hands each sink a pointer to a private copy of
// the event, so concurrent replays never share mutable state; sinks must not
// retain the pointer across calls (the same contract the CPU tracer and
// trace.Reader already impose).
type EventBuffer struct {
	events []Event
	stats  ReadStats
}

// Event implements Sink: it records a copy of the event.
func (b *EventBuffer) Event(e *Event) error {
	b.events = append(b.events, *e)
	return nil
}

// Events implements BatchSink: it records a copy of the whole batch with
// one bulk append.
func (b *EventBuffer) Events(batch []Event) error {
	b.events = append(b.events, batch...)
	return nil
}

// Len returns the number of recorded events.
func (b *EventBuffer) Len() int { return len(b.events) }

// Grow ensures capacity for at least n more events without another
// allocation. Callers that know the recording's length up front (a shard
// plan records per-shard event counts) use it to keep append from
// repeatedly copying a multi-hundred-MB backing array through growslice.
func (b *EventBuffer) Grow(n int) {
	if n <= cap(b.events)-len(b.events) {
		return
	}
	grown := make([]Event, len(b.events), len(b.events)+n)
	copy(grown, b.events)
	b.events = grown
}

// Bytes estimates the memory held by the recording: the capacity of the
// backing array times the event size. This is what a memory budget should
// meter — the buffer is the fan-out engine's dominant allocation.
func (b *EventBuffer) Bytes() int64 {
	return int64(cap(b.events)) * int64(unsafe.Sizeof(Event{}))
}

// Stats returns the skip accounting of the reader that filled the buffer
// (zero for a buffer filled directly from a simulation).
func (b *EventBuffer) Stats() ReadStats { return b.stats }

// SetStats attaches a reader's skip accounting to the buffer.
func (b *EventBuffer) SetStats(st ReadStats) { b.stats = st }

// Replay delivers every recorded event to sink, in recording order,
// stopping at the first sink error. It may be called concurrently from
// multiple goroutines, each with its own sink.
func (b *EventBuffer) Replay(sink Sink) error {
	return b.ReplayContext(context.Background(), sink)
}

// CtxCheckEvery is how many events pass between context checks in replay
// and read loops. Checking ctx.Err() per event would put an atomic load in
// the hot loop; once per 1024 events bounds cancellation latency to a
// microsecond-scale burst while costing one integer test per event.
const CtxCheckEvery = 1024

// ReplayContext is Replay under a context: cancellation or deadline expiry
// stops the replay within CtxCheckEvery events, returning an error wrapping
// ctx.Err().
func (b *EventBuffer) ReplayContext(ctx context.Context, sink Sink) error {
	done := ctx.Done()
	for i := range b.events {
		if done != nil && i%CtxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("trace: replay canceled at event %d: %w", i, err)
			}
		}
		// Copy so a misbehaving sink mutating the event cannot corrupt
		// the recording or race with other replays.
		e := b.events[i]
		if err := sink.Event(&e); err != nil {
			return fmt.Errorf("trace: replay event %d: %w", i, err)
		}
	}
	return nil
}

// ReplayBatches delivers the recording to sink as slices of up to
// CtxCheckEvery events, checking ctx between batches — the zero-copy fast
// path of ReplayContext. The batches alias the recording itself, so the
// BatchSink contract (read-only, no retention) is what keeps concurrent
// replays safe; hand untrusted sinks to ReplayContext instead, or wrap
// them with AsBatch to restore the per-event copy.
func (b *EventBuffer) ReplayBatches(ctx context.Context, sink BatchSink) error {
	done := ctx.Done()
	for i := 0; i < len(b.events); i += CtxCheckEvery {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("trace: replay canceled at event %d: %w", i, err)
			}
		}
		end := i + CtxCheckEvery
		if end > len(b.events) {
			end = len(b.events)
		}
		if err := sink.Events(b.events[i:end]); err != nil {
			return fmt.Errorf("trace: replay batch at event %d: %w", i, err)
		}
	}
	return nil
}

// eventBufferState mirrors EventBuffer with exported fields for gob.
// Without it, gob-encoding a buffer fails outright (no exported fields),
// which is how shard-result files would silently lose a degraded read's
// skip accounting.
type eventBufferState struct {
	Events []Event
	Stats  ReadStats
}

// GobEncode persists the recording and its ReadStats, so a buffer embedded
// in a shard-result file round-trips events and skip accounting exactly.
func (b *EventBuffer) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(eventBufferState{Events: b.events, Stats: b.stats}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode rebuilds the recording persisted by GobEncode.
func (b *EventBuffer) GobDecode(p []byte) error {
	var st eventBufferState
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&st); err != nil {
		return err
	}
	b.events, b.stats = st.Events, st.Stats
	return nil
}

// ReadAll drains a Reader into a fresh EventBuffer and captures the reader's
// final ReadStats. With a degraded-mode reader over a damaged trace, the
// buffer therefore holds exactly the surviving events, and Stats reports
// what was lost.
func ReadAll(r *Reader) (*EventBuffer, error) {
	b := &EventBuffer{}
	if err := r.ForEachBatch(b.Events); err != nil {
		return nil, err
	}
	b.stats = r.Stats()
	return b, nil
}
