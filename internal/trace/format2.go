package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"paragraph/internal/isa"
)

// Format v2: chunked, checksummed framing.
//
//	magic "PGTRACE2" (8 bytes)
//	then chunks until EOF:
//	  marker  [4]byte  0xD7 'P' 'G' 0xC5   — resynchronization anchor
//	  seq     uint32 LE                    — chunk sequence number, from 0
//	  length  uint32 LE                    — payload bytes
//	  events  uint32 LE                    — events encoded in the payload
//	  crc32   uint32 LE                    — IEEE CRC of seq|length|events|payload
//	  payload [length]byte                 — v1 per-event encoding
//
// The per-event delta-PC state resets at every chunk boundary (the first
// event of a chunk always carries an explicit PC), so each chunk decodes
// independently: a reader can drop a damaged chunk, scan forward to the
// next marker, and continue with nothing lost but that chunk's events. The
// sequence number lets the reader reject replayed (duplicated) chunks and
// notice gaps after a resync.

var magic2 = [8]byte{'P', 'G', 'T', 'R', 'A', 'C', 'E', '2'}

// chunkMarker opens every chunk. The values are arbitrary but chosen to be
// rare in varint-heavy payload data.
var chunkMarker = [4]byte{0xD7, 'P', 'G', 0xC5}

const (
	// chunkHdrLen is the framed chunk header size: marker + seq + length
	// + events + crc32.
	chunkHdrLen = 20
	// DefaultChunkBytes is the target payload size of a chunk. Small
	// enough that one lost chunk costs a few thousand events, large
	// enough that framing overhead (20 bytes) is negligible.
	DefaultChunkBytes = 32 << 10
	// maxChunkPayload bounds a chunk payload; headers claiming more are
	// rejected as corrupt rather than trusted to allocate.
	maxChunkPayload = 1 << 20
)

// chunkCRC computes the checksum over the header's seq|length|events words
// followed by the payload.
func chunkCRC(hdr []byte, payload []byte) uint32 {
	crc := crc32.ChecksumIEEE(hdr[4:16])
	return crc32.Update(crc, crc32.IEEETable, payload)
}

// flushChunk frames and writes the buffered chunk, if any.
func (w *Writer) flushChunk() error {
	if w.chunkEvents == 0 {
		return nil
	}
	hdr := w.hdr[:]
	copy(hdr[0:4], chunkMarker[:])
	binary.LittleEndian.PutUint32(hdr[4:8], w.seq)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(w.chunk)))
	binary.LittleEndian.PutUint32(hdr[12:16], w.chunkEvents)
	binary.LittleEndian.PutUint32(hdr[16:20], chunkCRC(hdr, w.chunk))
	if _, err := w.bw.Write(hdr); err != nil {
		return err
	}
	if _, err := w.bw.Write(w.chunk); err != nil {
		return err
	}
	w.seq++
	w.chunk = w.chunk[:0]
	w.chunkEvents = 0
	// Each chunk must decode independently: restart the delta-PC state.
	w.first = true
	return nil
}

// nextV2 decodes the next event from the current chunk, pulling in (and
// verifying) the next chunk when the current one is exhausted.
func (r *Reader) nextV2(e *Event) error {
	for r.pos >= len(r.payload) {
		if r.rem != 0 {
			// The header promised more events than the payload held.
			// The CRC matched, so this is a writer bug, not bit rot,
			// but the chunk is untrustworthy either way.
			err := r.chunkError(fmt.Errorf("payload ended with %d events outstanding", r.rem))
			r.rem = 0
			if err != nil {
				return err
			}
			continue
		}
		if err := r.loadChunk(); err != nil {
			return err
		}
	}
	if r.rem == 0 {
		err := r.chunkError(fmt.Errorf("payload holds more events than its header claims"))
		r.pos = len(r.payload)
		if err != nil {
			return err
		}
		return r.nextV2(e)
	}
	if err := r.decodePayloadEvent(e); err != nil {
		// Decode errors inside a CRC-valid chunk: drop the remainder of
		// the chunk in degraded mode, fail fast otherwise.
		werr := r.chunkError(err)
		r.pos = len(r.payload)
		r.rem = 0
		if werr != nil {
			return werr
		}
		return r.nextV2(e)
	}
	r.rem--
	r.n++
	return nil
}

// decodePayloadEvent decodes one event from the chunk payload at r.pos.
func (r *Reader) decodePayloadEvent(e *Event) error {
	p := r.payload
	if r.pos >= len(p) {
		return fmt.Errorf("event %d: %w", r.n, ErrTruncated)
	}
	flags := p[r.pos]
	r.pos++
	var pc uint32
	if flags&flagSeqPC != 0 {
		if r.first {
			return fmt.Errorf("event %d: sequential-PC flag on first event of chunk", r.n)
		}
		pc = r.lastPC + 4
	} else {
		v, n := binary.Uvarint(p[r.pos:])
		if n <= 0 {
			return fmt.Errorf("event %d: reading PC: %w", r.n, ErrTruncated)
		}
		r.pos += n
		pc = uint32(v)
	}
	wordV, n := binary.Uvarint(p[r.pos:])
	if n <= 0 {
		return fmt.Errorf("event %d: reading instruction: %w", r.n, ErrTruncated)
	}
	r.pos += n
	ins, err := isa.Decode(uint32(wordV))
	if err != nil {
		return fmt.Errorf("event %d: %w", r.n, err)
	}
	*e = Event{
		PC:    pc,
		Ins:   ins,
		Seg:   Segment(flags >> flagSegShift & 0x3),
		Taken: flags&flagTaken != 0,
	}
	if flags&flagMem != 0 {
		addr, n := binary.Uvarint(p[r.pos:])
		if n <= 0 {
			return fmt.Errorf("event %d: reading address: %w", r.n, ErrTruncated)
		}
		r.pos += n
		if r.pos >= len(p) {
			return fmt.Errorf("event %d: reading size: %w", r.n, ErrTruncated)
		}
		e.MemAddr = uint32(addr)
		e.MemSize = p[r.pos]
		r.pos++
	}
	r.lastPC = pc
	r.first = false
	return nil
}

// loadChunk positions the reader on the next valid chunk's payload. It
// returns io.EOF at a clean end of trace, a *CorruptChunkError in fail-fast
// mode, or skips and resyncs in degraded mode. A zero-copy reader takes the
// in-place path in zerocopy.go; both implementations make the identical
// sequence of accept/skip/resync decisions for identical input bytes.
func (r *Reader) loadChunk() error {
	if r.data != nil {
		return r.loadChunkBytes()
	}
	for {
		hdr, err := r.br.Peek(chunkHdrLen)
		if len(hdr) == 0 {
			if err == io.EOF {
				return io.EOF
			}
			if err != nil {
				return fmt.Errorf("trace: reading chunk %d header: %w", r.chunkIdx, err)
			}
		}
		if len(hdr) < chunkHdrLen {
			// A torn tail shorter than one header. Nothing after it can
			// be recovered.
			cerr := r.corrupt(ErrTruncated, 0)
			if cerr != nil {
				return cerr
			}
			r.discard(len(hdr))
			return io.EOF
		}
		if !bytes.Equal(hdr[0:4], chunkMarker[:]) {
			if cerr := r.corrupt(fmt.Errorf("invalid chunk marker % x", hdr[0:4]), headerEvents(hdr, r.aligned)); cerr != nil {
				return cerr
			}
			if err := r.resync(); err != nil {
				return err
			}
			continue
		}
		seq := binary.LittleEndian.Uint32(hdr[4:8])
		plen := int(binary.LittleEndian.Uint32(hdr[8:12]))
		events := binary.LittleEndian.Uint32(hdr[12:16])
		crc := binary.LittleEndian.Uint32(hdr[16:20])
		// Capture the claimed event count now: the larger Peek below may
		// slide the bufio buffer, invalidating hdr.
		claimed := headerEvents(hdr, r.aligned)
		if plen > maxChunkPayload {
			if cerr := r.rejectOversize(plen, hdr); cerr != nil {
				return cerr
			}
			if err := r.resync(); err != nil {
				return err
			}
			continue
		}
		full, err := r.br.Peek(chunkHdrLen + plen)
		if len(full) < chunkHdrLen+plen {
			if err == io.EOF || err == io.ErrUnexpectedEOF || err == nil {
				err = ErrTruncated
			}
			if cerr := r.corrupt(err, claimed); cerr != nil {
				return cerr
			}
			if rerr := r.resync(); rerr != nil {
				return rerr
			}
			continue
		}
		if chunkCRC(full[:chunkHdrLen], full[chunkHdrLen:]) != crc {
			if cerr := r.corrupt(ErrChecksum, claimed); cerr != nil {
				return cerr
			}
			if err := r.resync(); err != nil {
				return err
			}
			continue
		}

		// The chunk is intact: consume it.
		payload := full[chunkHdrLen:]
		r.payload = append(r.payload[:0], payload...)
		r.discard(chunkHdrLen + plen)
		r.chunkIdx++
		r.aligned = true
		if r.haveSeq && seq <= r.lastSeq {
			// A replayed (duplicated) chunk: its events were already
			// delivered under this sequence number.
			r.stats.DuplicateChunks++
			r.payload = r.payload[:0]
			continue
		}
		r.lastSeq, r.haveSeq = seq, true
		r.pos = 0
		r.rem = events
		r.first = true
		r.stats.Chunks++
		if events == 0 && plen == 0 {
			continue
		}
		return nil
	}
}

// headerEvents extracts the claimed event count from a chunk header, but
// only when the reader is at a trusted chunk boundary — after a resync the
// bytes under the cursor are not known to be a header at all.
func headerEvents(hdr []byte, aligned bool) uint32 {
	if !aligned || len(hdr) < 16 {
		return 0
	}
	return binary.LittleEndian.Uint32(hdr[12:16])
}

// rejectOversize is the one accounting path for a chunk header claiming an
// implausible payload length: both the streaming and zero-copy readers
// funnel the rejection through here, so the skipped chunk and its claimed
// events are counted identically in ReadStats whichever reader hit it.
func (r *Reader) rejectOversize(plen int, hdr []byte) error {
	return r.corrupt(fmt.Errorf("implausible payload length %d", plen), headerEvents(hdr, r.aligned))
}

// corrupt handles a damaged chunk: in fail-fast mode it returns the
// structured error; in degraded mode it records the loss and returns nil so
// the caller can resync.
func (r *Reader) corrupt(cause error, events uint32) error {
	cerr := &CorruptChunkError{Chunk: r.chunkIdx, Offset: r.off, Events: events, Cause: cause}
	if !r.degraded {
		return cerr
	}
	r.stats.SkippedChunks++
	r.stats.SkippedEvents += uint64(events)
	r.chunkIdx++
	r.aligned = false
	return nil
}

// chunkError handles an inconsistency inside an already-CRC-verified chunk
// (event count or encoding disagrees with the header). Degraded mode drops
// the rest of the chunk; fail-fast mode surfaces it.
func (r *Reader) chunkError(cause error) error {
	if !r.degraded {
		return &CorruptChunkError{Chunk: r.chunkIdx - 1, Offset: r.off, Cause: cause}
	}
	r.stats.SkippedChunks++
	return nil
}

// resync scans forward for the next chunk marker, leaving the reader
// positioned on it (to be validated by loadChunk). It returns io.EOF when
// the rest of the stream holds no marker.
func (r *Reader) resync() error {
	// Skip at least one byte so a damaged chunk whose marker survived
	// does not loop forever.
	if _, err := r.br.Peek(1); err == nil {
		r.discard(1)
		r.stats.ResyncBytes++
	}
	for {
		buf, err := r.br.Peek(4096)
		if len(buf) < len(chunkMarker) {
			r.discard(len(buf))
			r.stats.ResyncBytes += int64(len(buf))
			return io.EOF
		}
		if i := bytes.Index(buf, chunkMarker[:]); i >= 0 {
			r.discard(i)
			r.stats.ResyncBytes += int64(i)
			return nil
		}
		// Keep the last marker-length-1 bytes: a marker may straddle
		// the peek boundary.
		n := len(buf) - (len(chunkMarker) - 1)
		r.discard(n)
		r.stats.ResyncBytes += int64(n)
		if err != nil {
			rest, _ := r.br.Peek(4096)
			if len(rest) < len(chunkMarker) {
				r.discard(len(rest))
				r.stats.ResyncBytes += int64(len(rest))
				return io.EOF
			}
		}
	}
}

// discard consumes n buffered bytes and advances the file offset.
func (r *Reader) discard(n int) {
	if n <= 0 {
		return
	}
	d, _ := r.br.Discard(n)
	r.off += int64(d)
}

// ChunkInfo describes one chunk of a v2 trace, as found by ScanChunks.
type ChunkInfo struct {
	Offset  int64  // byte offset of the chunk's marker
	Seq     uint32 // header sequence number
	Payload int    // payload length in bytes
	Events  uint32 // header event count
	CRCOK   bool   // whether the checksum matches
}

// ScanChunks walks an in-memory v2 trace and reports its chunk layout.
// It trusts chunk lengths (it does not resync), so it is a tool for tests
// and fault injectors operating on well-formed traces, not a recovery path.
func ScanChunks(data []byte) ([]ChunkInfo, error) {
	if len(data) < len(magic2) || !bytes.Equal(data[:len(magic2)], magic2[:]) {
		return nil, fmt.Errorf("%w: not a v2 trace", ErrBadMagic)
	}
	var out []ChunkInfo
	off := len(magic2)
	for off < len(data) {
		if len(data)-off < chunkHdrLen {
			return out, fmt.Errorf("chunk %d at offset %d: %w", len(out), off, ErrTruncated)
		}
		hdr := data[off : off+chunkHdrLen]
		if !bytes.Equal(hdr[0:4], chunkMarker[:]) {
			return out, fmt.Errorf("chunk %d at offset %d: invalid marker", len(out), off)
		}
		plen := int(binary.LittleEndian.Uint32(hdr[8:12]))
		if len(data)-off-chunkHdrLen < plen {
			return out, fmt.Errorf("chunk %d at offset %d: %w", len(out), off, ErrTruncated)
		}
		payload := data[off+chunkHdrLen : off+chunkHdrLen+plen]
		out = append(out, ChunkInfo{
			Offset:  int64(off),
			Seq:     binary.LittleEndian.Uint32(hdr[4:8]),
			Payload: plen,
			Events:  binary.LittleEndian.Uint32(hdr[12:16]),
			CRCOK:   chunkCRC(hdr, payload) == binary.LittleEndian.Uint32(hdr[16:20]),
		})
		off += chunkHdrLen + plen
	}
	return out, nil
}
