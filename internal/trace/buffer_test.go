package trace_test

// External-package tests for EventBuffer, so the fault-injection toolkit
// (which itself imports package trace) can damage traces for the
// degraded-replay coverage.

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"paragraph/internal/faultinject"
	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// bufEvents produces n well-formed events mixing ALU, memory and branch
// operations with occasional PC jumps.
func bufEvents(n int) []trace.Event {
	events := make([]trace.Event, 0, n)
	pc := uint32(0x400000)
	for i := 0; i < n; i++ {
		var e trace.Event
		switch i % 4 {
		case 0:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.ADDI, Rt: isa.T0, Rs: isa.T1, Imm: int32(i)}}
		case 1:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.LW, Rt: isa.T2, Rs: isa.SP, Imm: 4},
				MemAddr: 0x7fff0000 + uint32(i%64)*4, MemSize: 4, Seg: trace.SegStack}
		case 2:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.SW, Rt: isa.T2, Rs: isa.GP},
				MemAddr: 0x10000000 + uint32(i%64)*4, MemSize: 4, Seg: trace.SegData}
		default:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.BNE, Rs: isa.T0, Rt: isa.Zero, Imm: -4},
				Taken: i%8 == 3}
		}
		events = append(events, e)
		if i%17 == 0 {
			pc = 0x400000 + uint32(i*36)&^uint32(3)
		} else {
			pc += 4
		}
	}
	return events
}

// record runs the events through a buffer acting as a plain Sink.
func record(t *testing.T, events []trace.Event) *trace.EventBuffer {
	t.Helper()
	buf := &trace.EventBuffer{}
	for i := range events {
		if err := buf.Event(&events[i]); err != nil {
			t.Fatalf("record event %d: %v", i, err)
		}
	}
	return buf
}

// collect replays a buffer into a slice.
func collect(t *testing.T, buf *trace.EventBuffer) []trace.Event {
	t.Helper()
	var out []trace.Event
	if err := buf.Replay(trace.SinkFunc(func(e *trace.Event) error {
		out = append(out, *e)
		return nil
	})); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

// TestEventBufferReplayTwice is the fan-out engine's core guarantee: two
// replays of the same buffer deliver identical event sequences, and the
// sequence is exactly what was recorded.
func TestEventBufferReplayTwice(t *testing.T) {
	events := bufEvents(500)
	buf := record(t, events)
	if buf.Len() != len(events) {
		t.Fatalf("Len = %d, want %d", buf.Len(), len(events))
	}
	first := collect(t, buf)
	second := collect(t, buf)
	if !reflect.DeepEqual(first, events) {
		t.Fatal("first replay differs from the recorded sequence")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("second replay differs from the first")
	}
}

// TestEventBufferReplayIsolation verifies that a sink mutating the events it
// receives cannot corrupt the recording for later replays.
func TestEventBufferReplayIsolation(t *testing.T) {
	events := bufEvents(64)
	buf := record(t, events)
	if err := buf.Replay(trace.SinkFunc(func(e *trace.Event) error {
		e.PC = 0xdeadbeef
		e.MemAddr = 1
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, buf); !reflect.DeepEqual(got, events) {
		t.Fatal("mutating sink leaked into the buffer")
	}
}

// TestEventBufferDegradedRead damages one chunk of a v2 trace, reads it in
// degraded mode through ReadAll, and checks that the buffer's contents and
// captured ReadStats agree with the reader: the surviving events are exactly
// the recorded ones, and the loss accounting travels with the buffer.
func TestEventBufferDegradedRead(t *testing.T) {
	events := bufEvents(2000)
	var raw bytes.Buffer
	w, err := trace.NewWriterOpts(&raw, trace.WriterOptions{Version: 2, ChunkBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if err := w.Event(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	damaged, err := faultinject.CorruptChunk(raw.Bytes(), 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReaderOpts(bytes.NewReader(damaged), trace.ReaderOptions{Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := trace.ReadAll(r)
	if err != nil {
		t.Fatalf("degraded ReadAll: %v", err)
	}

	st := buf.Stats()
	if st != r.Stats() {
		t.Errorf("buffer stats %+v != reader stats %+v", st, r.Stats())
	}
	if st.SkippedChunks != 1 {
		t.Errorf("SkippedChunks = %d, want 1", st.SkippedChunks)
	}
	if st.SkippedEvents == 0 {
		t.Error("SkippedEvents = 0, want > 0")
	}
	if got := uint64(buf.Len()) + st.SkippedEvents; got != uint64(len(events)) {
		t.Errorf("delivered %d + skipped %d = %d events, want %d",
			buf.Len(), st.SkippedEvents, got, len(events))
	}

	// The replayed survivors are a strict ordered subsequence of the
	// original trace with one contiguous gap: every delivered event must
	// match its counterpart before or after the damaged chunk.
	got := collect(t, buf)
	gap := len(events) - len(got)
	for i := range got {
		if reflect.DeepEqual(got[i], events[i]) {
			continue
		}
		if !reflect.DeepEqual(got[i], events[i+gap]) {
			t.Fatalf("survivor %d matches neither original %d nor %d", i, i, i+gap)
		}
	}

	// A second replay of the degraded recording is identical to the first.
	if again := collect(t, buf); !reflect.DeepEqual(got, again) {
		t.Fatal("degraded buffer replays are not identical")
	}
}

// TestEventBufferGobRoundTrip pins the gob seam shard-result files depend
// on: a buffer filled by a degraded read must round-trip through gob with
// its events AND its ReadStats intact. Before EventBuffer had an explicit
// GobEncode, encoding silently saw no exported fields, so the skip
// accounting (and the recording itself) was dropped on the floor — exactly
// the drift this test would have caught.
func TestEventBufferGobRoundTrip(t *testing.T) {
	events := bufEvents(1500)
	var raw bytes.Buffer
	w, err := trace.NewWriterOpts(&raw, trace.WriterOptions{Version: 2, ChunkBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if err := w.Event(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	damaged, err := faultinject.CorruptChunk(raw.Bytes(), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReaderOpts(bytes.NewReader(damaged), trace.ReaderOptions{Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := trace.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Stats().SkippedChunks == 0 {
		t.Fatal("fixture has no skips; the stats half of the round trip is untested")
	}

	var enc bytes.Buffer
	if err := gob.NewEncoder(&enc).Encode(buf); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var back trace.EventBuffer
	if err := gob.NewDecoder(&enc).Decode(&back); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	if back.Stats() != buf.Stats() {
		t.Errorf("ReadStats drifted through gob: %+v != %+v", back.Stats(), buf.Stats())
	}
	if back.Len() != buf.Len() {
		t.Fatalf("Len drifted through gob: %d != %d", back.Len(), buf.Len())
	}
	if !reflect.DeepEqual(collect(t, &back), collect(t, buf)) {
		t.Fatal("decoded buffer replays differently from the original")
	}
}

// TestEventBufferCleanReadStats checks that a buffer filled from an intact
// trace reports zero-valued stats and full delivery.
func TestEventBufferCleanReadStats(t *testing.T) {
	events := bufEvents(300)
	var raw bytes.Buffer
	w, err := trace.NewWriter(&raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if err := w.Event(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := trace.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(events) {
		t.Fatalf("Len = %d, want %d", buf.Len(), len(events))
	}
	st := buf.Stats()
	if st.SkippedChunks != 0 || st.SkippedEvents != 0 || st.DuplicateChunks != 0 || st.ResyncBytes != 0 {
		t.Errorf("clean read accumulated stats: %+v", st)
	}
	if !reflect.DeepEqual(collect(t, buf), events) {
		t.Fatal("round-trip through writer/reader/buffer altered events")
	}
}
