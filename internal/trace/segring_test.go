package trace

import (
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

// TestSegRingBroadcastOrder pins that every consumer sees every item in
// publication order.
func TestSegRingBroadcastOrder(t *testing.T) {
	const items, consumers = 100, 3
	r := NewSegRing[int](context.Background(), consumers, 4)

	var wg sync.WaitGroup
	got := make([][]int, consumers)
	for id := 0; id < consumers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Consumer(id)
			defer c.Close()
			for {
				v, err := c.Next()
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Errorf("consumer %d: %v", id, err)
					return
				}
				got[id] = append(got[id], v)
			}
		}(id)
	}
	for i := 0; i < items; i++ {
		if err := r.Send(i); err != nil {
			t.Fatalf("Send(%d): %v", i, err)
		}
	}
	r.CloseSend(nil)
	wg.Wait()

	for id, seq := range got {
		if len(seq) != items {
			t.Fatalf("consumer %d saw %d items, want %d", id, len(seq), items)
		}
		for i, v := range seq {
			if v != i {
				t.Fatalf("consumer %d item %d = %d", id, i, v)
			}
		}
	}
}

// TestSegRingBackpressure pins that the producer blocks once the slowest
// consumer is a full ring behind, and resumes when it advances.
func TestSegRingBackpressure(t *testing.T) {
	const depth = MinSegRingDepth
	r := NewSegRing[int](context.Background(), 1, depth)
	c := r.Consumer(0)
	defer c.Close()

	for i := 0; i < depth; i++ {
		if err := r.Send(i); err != nil {
			t.Fatalf("Send(%d): %v", i, err)
		}
	}
	blocked := make(chan error, 1)
	go func() { blocked <- r.Send(depth) }()
	select {
	case err := <-blocked:
		t.Fatalf("Send returned (%v) with a full ring and a stalled consumer", err)
	case <-time.After(20 * time.Millisecond):
	}
	// One Next hands out slot 0 but releases nothing; the second releases
	// slot 0 and unblocks the producer.
	if _, err := c.Next(); err != nil {
		t.Fatalf("Next: %v", err)
	}
	if _, err := c.Next(); err != nil {
		t.Fatalf("Next: %v", err)
	}
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("Send after release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("producer still blocked after consumer advanced")
	}
}

// TestSegRingProducerError pins that consumers drain all published items
// before observing the producer's failure, wrapped as *RingProducerError.
func TestSegRingProducerError(t *testing.T) {
	r := NewSegRing[int](context.Background(), 1, 8)
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		if err := r.Send(i); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	r.CloseSend(boom)

	c := r.Consumer(0)
	defer c.Close()
	for i := 0; i < 3; i++ {
		v, err := c.Next()
		if err != nil || v != i {
			t.Fatalf("Next = %d, %v; want %d, nil", v, err, i)
		}
	}
	_, err := c.Next()
	var pe *RingProducerError
	if !errors.As(err, &pe) || !errors.Is(err, boom) {
		t.Fatalf("Next after failed CloseSend = %v; want *RingProducerError wrapping boom", err)
	}
}

// TestSegRingDrained pins that Send fails with ErrRingDrained once every
// consumer has closed.
func TestSegRingDrained(t *testing.T) {
	r := NewSegRing[int](context.Background(), 2, 4)
	r.Consumer(0).Close()
	r.Consumer(1).Close()
	if err := r.Send(1); !errors.Is(err, ErrRingDrained) {
		t.Fatalf("Send with no consumers = %v; want ErrRingDrained", err)
	}
}

// TestSegRingCancel pins that a context cancellation unblocks both a
// blocked producer and a waiting consumer.
func TestSegRingCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := NewSegRing[int](ctx, 1, MinSegRingDepth)

	prod := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			if err := r.Send(i); err != nil {
				prod <- err
				return
			}
		}
	}()
	cons := make(chan error, 1)
	go func() {
		c := r.Consumer(0)
		defer c.Close()
		for {
			if _, err := c.Next(); err != nil {
				cons <- err
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	for name, ch := range map[string]chan error{"producer": prod, "consumer": cons} {
		select {
		case err := <-ch:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s unblocked with %v; want context.Canceled", name, err)
			}
		case <-time.After(time.Second):
			t.Fatalf("%s still blocked after cancel", name)
		}
	}
}

// TestSegRingSendAfterClose pins the post-CloseSend send error.
func TestSegRingSendAfterClose(t *testing.T) {
	r := NewSegRing[int](context.Background(), 1, 4)
	r.CloseSend(nil)
	if err := r.Send(1); err == nil {
		t.Fatal("Send after CloseSend succeeded")
	}
}
