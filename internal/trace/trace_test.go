package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"paragraph/internal/isa"
)

func sampleEvents() []Event {
	return []Event{
		{PC: 0x400000, Ins: isa.Instruction{Op: isa.LUI, Rt: isa.T0, Imm: 1}},
		{PC: 0x400004, Ins: isa.Instruction{Op: isa.ADDI, Rt: isa.T1, Rs: isa.T0, Imm: -3}},
		{PC: 0x400008, Ins: isa.Instruction{Op: isa.LW, Rt: isa.T2, Rs: isa.SP, Imm: 4},
			MemAddr: 0x7fff0004, MemSize: 4, Seg: SegStack},
		{PC: 0x40000c, Ins: isa.Instruction{Op: isa.BNE, Rs: isa.T2, Rt: isa.Zero, Imm: -4}, Taken: true},
		{PC: 0x400008, Ins: isa.Instruction{Op: isa.SW, Rt: isa.T2, Rs: isa.GP, Imm: 0},
			MemAddr: 0x10000000, MemSize: 4, Seg: SegData},
		{PC: 0x40000c, Ins: isa.Instruction{Op: isa.SYSCALL}},
	}
}

func TestRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if err := w.Event(&events[i]); err != nil {
			t.Fatalf("write event %d: %v", i, err)
		}
	}
	if w.Count() != uint64(len(events)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(events))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Event
	for i := range events {
		if err := r.Next(&got); err != nil {
			t.Fatalf("read event %d: %v", i, err)
		}
		if got != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got, events[i])
		}
	}
	if err := r.Next(&got); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestForEach(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := range events {
		if err := w.Event(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	err = r.ForEach(func(e *Event) error { n++; return nil })
	if err != nil || n != len(events) {
		t.Fatalf("ForEach visited %d events, err %v; want %d, nil", n, err, len(events))
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("NewReader accepted bad magic")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("NewReader accepted empty input")
	}
}

func TestTruncatedTrace(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := range events {
		if err := w.Event(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop in the middle of the last event: expect an error, not EOF.
	r, err := NewReader(bytes.NewReader(full[:len(full)-1]))
	if err != nil {
		t.Fatal(err)
	}
	var e Event
	var lastErr error
	for {
		lastErr = r.Next(&e)
		if lastErr != nil {
			break
		}
	}
	if lastErr == io.EOF {
		t.Fatal("truncated trace produced a clean EOF")
	}
}

func TestTeeAndCounter(t *testing.T) {
	var c1, c2 Counter
	sink := Tee(&c1, &c2)
	e := Event{PC: 4, Ins: isa.Instruction{Op: isa.NOP}}
	for i := 0; i < 5; i++ {
		if err := sink.Event(&e); err != nil {
			t.Fatal(err)
		}
	}
	if c1.N != 5 || c2.N != 5 {
		t.Errorf("counters = %d, %d; want 5, 5", c1.N, c2.N)
	}
}

// failAfter is a Sink that errors on the (after+1)-th event.
type failAfter struct {
	after int
	n     int
	err   error
}

func (s *failAfter) Event(*Event) error {
	s.n++
	if s.n > s.after {
		return s.err
	}
	return nil
}

func TestTeeErrorPropagation(t *testing.T) {
	boom := errors.New("sink failed")
	var before, behind Counter
	bad := &failAfter{after: 2, err: boom}
	sink := Tee(&before, bad, &behind)

	e := Event{PC: 4, Ins: isa.Instruction{Op: isa.NOP}}
	var err error
	deliveries := 0
	for i := 0; i < 10; i++ {
		if err = sink.Event(&e); err != nil {
			break
		}
		deliveries++
	}
	if !errors.Is(err, boom) {
		t.Fatalf("Tee returned %v, want the sink's error", err)
	}
	if deliveries != 2 {
		t.Errorf("Tee delivered %d events before failing, want 2", deliveries)
	}
	// Sinks ahead of the failing one saw the failing event; sinks behind
	// it did not.
	if before.N != 3 {
		t.Errorf("upstream sink saw %d events, want 3", before.N)
	}
	if behind.N != 2 {
		t.Errorf("downstream sink saw %d events, want 2", behind.N)
	}
}

func TestSegmentString(t *testing.T) {
	for seg, want := range map[Segment]string{
		SegNone: "none", SegData: "data", SegHeap: "heap", SegStack: "stack",
	} {
		if seg.String() != want {
			t.Errorf("Segment(%d).String() = %q, want %q", seg, seg.String(), want)
		}
	}
}

func TestIsSyscall(t *testing.T) {
	e := Event{Ins: isa.Instruction{Op: isa.SYSCALL}}
	if !e.IsSyscall() {
		t.Error("SYSCALL not detected")
	}
	e.Ins.Op = isa.ADD
	if e.IsSyscall() {
		t.Error("ADD detected as syscall")
	}
}

// TestRoundTripRandom pushes a long pseudo-random event stream through the
// writer/reader pair, exercising both sequential-PC and explicit-PC paths.
func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ops := []isa.Op{isa.ADD, isa.ADDI, isa.LW, isa.SW, isa.BEQ, isa.MULT, isa.ADDD, isa.LDC1}
	var events []Event
	pc := uint32(0x400000)
	for i := 0; i < 5000; i++ {
		op := ops[rng.Intn(len(ops))]
		info := op.Info()
		e := Event{PC: pc, Ins: isa.Instruction{Op: op}}
		fp := info.Format == isa.FormatFR || op == isa.LDC1
		pickReg := func() isa.Reg {
			if fp {
				return isa.FPReg(rng.Intn(32))
			}
			return isa.IntReg(rng.Intn(32))
		}
		if info.ReadsRs {
			e.Ins.Rs = pickReg()
			if op == isa.LDC1 || op == isa.LW || op == isa.SW {
				e.Ins.Rs = isa.IntReg(rng.Intn(32)) // base register is integer
			}
		}
		if info.ReadsRt || info.WritesRt {
			e.Ins.Rt = pickReg()
		}
		if info.WritesRd {
			e.Ins.Rd = pickReg()
		}
		if info.HasImm {
			e.Ins.Imm = int32(int16(rng.Uint32()))
		}
		if info.IsLoad || info.IsStore {
			e.MemAddr = rng.Uint32() &^ 7
			e.MemSize = uint8(info.MemSize)
			e.Seg = Segment(1 + rng.Intn(3))
		}
		if info.IsBranch {
			e.Taken = rng.Intn(2) == 0
		}
		events = append(events, e)
		if rng.Intn(4) == 0 {
			pc = rng.Uint32() &^ 3 // jump somewhere
		} else {
			pc += 4
		}
	}

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if err := w.Event(&events[i]); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Event
	for i := range events {
		if err := r.Next(&got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != events[i] {
			t.Fatalf("event %d mismatch: got %+v want %+v", i, got, events[i])
		}
	}
}
