package trace

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// flaky fails the next read with err whenever armed, consuming no data.
type flaky struct {
	r      io.Reader
	fail   int // fail this many more reads
	err    error
	faults int
}

func (f *flaky) Read(p []byte) (int, error) {
	if f.fail > 0 {
		f.fail--
		f.faults++
		return 0, f.err
	}
	return f.r.Read(p)
}

type tempErr struct{}

func (tempErr) Error() string   { return "temporarily down" }
func (tempErr) Temporary() bool { return true }

func TestRetryReaderRecoversTransientFailures(t *testing.T) {
	payload := strings.Repeat("the quick brown fox ", 100)
	f := &flaky{r: strings.NewReader(payload), fail: 3, err: tempErr{}}
	r := NewRetryReader(f, RetryOptions{Sleep: func(time.Duration) {}})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != payload {
		t.Fatalf("payload damaged by retries (%d bytes, want %d)", len(got), len(payload))
	}
	st := r.Stats()
	if st.Retries != 1 || st.Attempts != 3 || st.GaveUp != 0 {
		t.Fatalf("stats = %+v, want 1 retried read over 3 attempts", st)
	}
}

func TestRetryReaderGivesUpAfterMaxAttempts(t *testing.T) {
	f := &flaky{r: strings.NewReader("x"), fail: 1 << 30, err: tempErr{}}
	var slept []time.Duration
	r := NewRetryReader(f, RetryOptions{
		MaxAttempts: 4,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	_, err := io.ReadAll(r)
	if err == nil || !IsTransientError(err) {
		t.Fatalf("err = %v, want the transient error to surface after give-up", err)
	}
	if f.faults != 4 {
		t.Fatalf("underlying reader saw %d attempts, want 4", f.faults)
	}
	if r.Stats().GaveUp != 1 {
		t.Fatalf("stats = %+v, want GaveUp=1", r.Stats())
	}
	// Backoff is exponential with jitter in [d/2, 3d/2).
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(slept))
	}
	base := time.Millisecond
	for i, d := range slept {
		want := base << uint(i)
		if d < want/2 || d >= want+want/2 {
			t.Errorf("backoff %d = %v, want in [%v, %v)", i, d, want/2, want+want/2)
		}
	}
}

func TestRetryReaderPermanentErrorsPassThrough(t *testing.T) {
	boom := errors.New("disk on fire")
	f := &flaky{r: strings.NewReader("x"), fail: 1, err: boom}
	r := NewRetryReader(f, RetryOptions{Sleep: func(time.Duration) {}})
	if _, err := io.ReadAll(r); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the permanent error unretried", err)
	}
	if st := r.Stats(); st.Retries != 0 {
		t.Fatalf("permanent error was retried: %+v", st)
	}
}

func TestRetryReaderSeededJitterIsDeterministic(t *testing.T) {
	run := func() []time.Duration {
		f := &flaky{r: strings.NewReader("x"), fail: 3, err: tempErr{}}
		var slept []time.Duration
		r := NewRetryReader(f, RetryOptions{Seed: 42, Sleep: func(d time.Duration) { slept = append(slept, d) }})
		io.ReadAll(r)
		return slept
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("bad backoff sequences: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different jitter: %v vs %v", a, b)
		}
	}
}

func TestRetryReaderHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := &flaky{r: strings.NewReader("x"), fail: 10, err: tempErr{}}
	r := NewRetryReader(f, RetryOptions{Ctx: ctx, BaseDelay: time.Hour, MaxDelay: time.Hour})
	start := time.Now()
	_, err := io.ReadAll(r)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}

func TestReplayContextCancellation(t *testing.T) {
	buf := &EventBuffer{}
	var e Event
	for i := 0; i < 3*CtxCheckEvery; i++ {
		if err := buf.Event(&e); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var seen int
	sink := SinkFunc(func(*Event) error {
		seen++
		if seen == CtxCheckEvery/2 {
			cancel()
		}
		return nil
	})
	err := buf.ReplayContext(ctx, sink)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	// The replay must stop at the next amortized check, not run to the end.
	if seen > CtxCheckEvery {
		t.Fatalf("replay delivered %d events after cancellation (check period %d)", seen, CtxCheckEvery)
	}
	// A fresh context replays in full.
	var n int
	if err := buf.ReplayContext(context.Background(), SinkFunc(func(*Event) error { n++; return nil })); err != nil {
		t.Fatal(err)
	}
	if n != buf.Len() {
		t.Fatalf("clean replay delivered %d of %d events", n, buf.Len())
	}
}

func TestEventBufferBytes(t *testing.T) {
	buf := &EventBuffer{}
	if buf.Bytes() != 0 {
		t.Fatalf("empty buffer reports %d bytes", buf.Bytes())
	}
	var e Event
	for i := 0; i < 1000; i++ {
		buf.Event(&e)
	}
	if got := buf.Bytes(); got < int64(1000*16) {
		t.Fatalf("buffer bytes %d implausibly small for 1000 events", got)
	}
}

func TestRetryReaderOverDamagedTraceStream(t *testing.T) {
	// An encoded trace read through a transiently failing medium must
	// decode identically once wrapped in a RetryReader.
	var raw bytes.Buffer
	w, err := NewWriter(&raw)
	if err != nil {
		t.Fatal(err)
	}
	ev := Event{PC: 0x1000}
	for i := 0; i < 5000; i++ {
		ev.PC += 4
		if err := w.Event(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	f := &flaky{r: bytes.NewReader(raw.Bytes()), err: tempErr{}}
	// Arm a fault before every 512-byte boundary by re-arming in the sleep
	// hook (each fault fails exactly once).
	r := NewRetryReader(f, RetryOptions{Sleep: func(time.Duration) {}})
	f.fail = 1
	tr, err := NewReader(r)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	if err := tr.ForEach(func(*Event) error { n++; return nil }); err != nil {
		t.Fatalf("ForEach over retried stream: %v", err)
	}
	if n != 5000 {
		t.Fatalf("decoded %d events, want 5000", n)
	}
}
