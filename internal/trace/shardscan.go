package trace

import (
	"bytes"
	"fmt"
	"io"
)

// Chunk-boundary scanning for sharded analysis. A v2 trace resets its
// delta-PC state at every chunk boundary, so any accepted chunk is a valid
// place to start decoding — the property the shard splitter builds on. The
// scanner here drives a real Reader over the trace, so its notion of which
// chunks are accepted, duplicated or skipped is the reader's own, not a
// reimplementation that could drift.

// HeaderBytes is the length of the file magic preceding the first chunk of
// a trace (both format versions use an 8-byte magic).
const HeaderBytes = 8

// ChunkSpan describes one accepted, event-delivering chunk of a v2 trace.
type ChunkSpan struct {
	// Start is the file offset of the chunk marker; End is one past the
	// chunk's payload. [Start, End) holds the whole chunk.
	Start int64
	End   int64
	// Seq is the chunk's sequence number, needed to seed the duplicate
	// detector of a reader that resumes after this chunk (StartSeq).
	Seq uint32
	// Events is the number of events the chunk actually delivers — which a
	// degraded reader may cut short of the header's claim for a CRC-valid
	// but internally inconsistent chunk.
	Events uint64
}

// ScanChunkSpans reads the v2 trace in data once and reports every accepted
// chunk that delivered at least one event, plus the ReadStats a full read
// accumulates. Degraded mode tolerates damage exactly as a degraded Reader
// does; fail-fast mode returns the first corruption as an error. Chunks
// that deliver no events (empty flush markers, duplicates, damage) never
// appear as spans — they belong to whatever shard contains their bytes.
func ScanChunkSpans(data []byte, degraded bool) ([]ChunkSpan, ReadStats, error) {
	// The scan drives the zero-copy reader: the trace is already in
	// memory, so planning decodes it in place without a bufio pass.
	r, err := NewBytesReader(data, ReaderOptions{Degraded: degraded})
	if err != nil {
		return nil, ReadStats{}, err
	}
	if r.version != 2 {
		return nil, ReadStats{}, fmt.Errorf("%w: chunk scanning requires a v2 trace", ErrVersion)
	}
	var spans []ChunkSpan
	prevOff := r.off
	var e Event
	for {
		if err := r.Next(&e); err != nil {
			if err == io.EOF {
				return spans, r.stats, nil
			}
			return nil, r.stats, err
		}
		if r.off != prevOff {
			// The delivering chunk was consumed whole when it was
			// accepted, so its extent is recoverable from the reader's
			// position and the payload it retained.
			start := r.off - int64(chunkHdrLen) - int64(len(r.payload))
			spans = append(spans, ChunkSpan{Start: start, End: r.off, Seq: r.lastSeq})
			prevOff = r.off
		}
		spans[len(spans)-1].Events++
	}
}

// NewSectionReader returns a Reader over the byte range [start, end) of a
// v2 trace, presented as if it were a complete trace file. It is how a
// shard runner decodes just its shard: start must be a chunk boundary (an
// accepted chunk's Start, as reported by ScanChunkSpans) for the section to
// decode; o.StartSeq should carry the Seq of the last chunk delivered
// before start so duplicate detection behaves as a single reader would.
func NewSectionReader(data []byte, start, end int64, o ReaderOptions) (*Reader, error) {
	if start < HeaderBytes || end < start || end > int64(len(data)) {
		return nil, fmt.Errorf("trace: bad section [%d, %d) of %d-byte trace", start, end, len(data))
	}
	rd := io.MultiReader(bytes.NewReader(magic2[:]), bytes.NewReader(data[start:end]))
	return NewReaderOpts(rd, o)
}
