package trace

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
)

// SegRing is Ring's protocol generalized over the element type: a bounded,
// single-producer, multi-consumer broadcast buffer holding one item per
// slot. The resolved sweep engine uses it to fan dependence-record segments
// from one resolver out to N schedulers — items there are ~128 KB segment
// pointers, so a handful of slots bounds producer run-ahead the same way
// Ring's batch slots do for raw events, and memory stays a function of
// depth, never of trace length.
//
// The synchronization protocol is identical to Ring's: the producer blocks
// while the slowest live consumer is a full ring behind, consumers release
// a slot by asking for the next item, Close deregisters a consumer, and a
// bound context unblocks everyone. Unlike Ring, slots are not recycled
// in place — items are immutable values handed off by reference — so a
// consumer may retain an item after advancing past it.
type SegRing[T any] struct {
	ctx       context.Context
	stopWatch func() bool

	nslots int

	mu      sync.Mutex
	cond    *sync.Cond
	slots   []T
	head    int64 // items published so far
	pos     []int64
	done    []bool
	ndone   int
	closed  bool
	sendErr error
	stats   ReadStats
}

// SegRing sizing default and floor: segments are three orders of magnitude
// larger than single events, so a much shallower ring than Ring's 64
// batches absorbs the same consumer skew.
const (
	// DefaultSegRingDepth is the capacity used when depth is zero.
	DefaultSegRingDepth = 16
	// MinSegRingDepth is the smallest capacity that still overlaps
	// production with consumption.
	MinSegRingDepth = 2
)

// NewSegRing returns a ring broadcasting to the given number of consumers,
// bound to ctx. Depth 0 selects DefaultSegRingDepth; values below
// MinSegRingDepth are raised to it. Every consumer slot must be claimed
// with Consumer and either drained to EOF or Closed, or the producer will
// block forever waiting for it.
func NewSegRing[T any](ctx context.Context, consumers, depth int) *SegRing[T] {
	if consumers < 1 {
		consumers = 1
	}
	if depth <= 0 {
		depth = DefaultSegRingDepth
	}
	if depth < MinSegRingDepth {
		depth = MinSegRingDepth
	}
	r := &SegRing[T]{
		ctx:    ctx,
		nslots: depth,
		slots:  make([]T, depth),
		pos:    make([]int64, consumers),
		done:   make([]bool, consumers),
	}
	r.cond = sync.NewCond(&r.mu)
	if ctx.Done() != nil {
		// Same lost-wakeup discipline as Ring: lock-then-broadcast orders
		// the wakeup after any in-progress wait re-check.
		r.stopWatch = context.AfterFunc(ctx, func() {
			r.mu.Lock()
			//lint:ignore SA2001 empty critical section orders the broadcast
			r.mu.Unlock()
			r.cond.Broadcast()
		})
	}
	return r
}

// minPos returns the position of the slowest live consumer; ok is false
// when every consumer has closed.
func (r *SegRing[T]) minPos() (min int64, ok bool) {
	for i, p := range r.pos {
		if r.done[i] {
			continue
		}
		if !ok || p < min {
			min, ok = p, true
		}
	}
	return min, ok
}

// Send publishes one item, blocking while the slowest consumer is a full
// ring behind. Once every consumer has closed it returns ErrRingDrained —
// a stop signal, not a failure.
func (r *SegRing[T]) Send(item T) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if err := r.ctx.Err(); err != nil {
			return fmt.Errorf("trace: ring send canceled at item %d: %w", r.head, err)
		}
		if r.closed {
			return errors.New("trace: ring send after CloseSend")
		}
		if r.ndone == len(r.pos) {
			return fmt.Errorf("%w (at item %d)", ErrRingDrained, r.head)
		}
		min, ok := r.minPos()
		if !ok || r.head-min < int64(r.nslots) {
			break
		}
		r.cond.Wait()
	}
	r.slots[r.head%int64(r.nslots)] = item
	r.head++
	r.cond.Broadcast()
	return nil
}

// Count returns the number of items published so far.
func (r *SegRing[T]) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.head
}

// SetStats attaches the producing reader's skip accounting; call before
// CloseSend.
func (r *SegRing[T]) SetStats(st ReadStats) {
	r.mu.Lock()
	r.stats = st
	r.mu.Unlock()
}

// Stats returns the accounting set by SetStats.
func (r *SegRing[T]) Stats() ReadStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// CloseSend ends the stream: consumers that drain the ring observe err
// (nil = clean end, reported as io.EOF). Idempotent; the first error wins.
func (r *SegRing[T]) CloseSend(err error) {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		r.sendErr = err
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	if r.stopWatch != nil {
		r.stopWatch()
	}
}

// SegConsumer is one consumer's cursor over a SegRing. Each consumer slot
// may be used from one goroutine at a time.
type SegConsumer[T any] struct {
	r      *SegRing[T]
	id     int
	handed bool
}

// Consumer returns the cursor for consumer slot i (0 ≤ i < consumers).
func (r *SegRing[T]) Consumer(i int) *SegConsumer[T] {
	if i < 0 || i >= len(r.pos) {
		panic(fmt.Sprintf("trace: ring consumer %d of %d", i, len(r.pos)))
	}
	return &SegConsumer[T]{r: r, id: i}
}

// Next returns the next item in stream order, blocking until the producer
// publishes one. Asking for the next item is what releases the current
// slot for reuse. At a clean end of stream Next returns io.EOF; a producer
// failure surfaces as a *RingProducerError after every item published
// before the failure has been delivered.
func (c *SegConsumer[T]) Next() (T, error) {
	var zero T
	r := c.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if c.handed {
		r.pos[c.id]++
		c.handed = false
		r.cond.Broadcast()
	}
	for {
		if err := r.ctx.Err(); err != nil {
			return zero, fmt.Errorf("trace: ring replay canceled at item %d: %w", r.pos[c.id], err)
		}
		if r.pos[c.id] < r.head {
			c.handed = true
			return r.slots[r.pos[c.id]%int64(r.nslots)], nil
		}
		if r.closed {
			if r.sendErr != nil {
				return zero, &RingProducerError{Err: r.sendErr}
			}
			return zero, io.EOF
		}
		r.cond.Wait()
	}
}

// Close deregisters the consumer: it stops gating the producer's progress,
// which may unblock a producer waiting on this consumer (or fail it with
// ErrRingDrained once no consumers remain). Idempotent; draining to EOF
// makes it a no-op but still safe.
func (c *SegConsumer[T]) Close() {
	r := c.r
	r.mu.Lock()
	if !r.done[c.id] {
		r.done[c.id] = true
		r.ndone++
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}
