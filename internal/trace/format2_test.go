package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"paragraph/internal/isa"
)

// genEvents produces n well-formed events mixing ALU, memory and branch
// operations, with enough PC jumps to exercise both PC encodings.
func genEvents(n int) []Event {
	rng := rand.New(rand.NewSource(7))
	events := make([]Event, 0, n)
	pc := uint32(0x400000)
	for i := 0; i < n; i++ {
		var e Event
		switch rng.Intn(4) {
		case 0:
			e = Event{PC: pc, Ins: isa.Instruction{Op: isa.ADDI, Rt: isa.T0, Rs: isa.T1, Imm: int32(i)}}
		case 1:
			e = Event{PC: pc, Ins: isa.Instruction{Op: isa.LW, Rt: isa.T2, Rs: isa.SP, Imm: 4},
				MemAddr: 0x7fff0000 + uint32(rng.Intn(64))*4, MemSize: 4, Seg: SegStack}
		case 2:
			e = Event{PC: pc, Ins: isa.Instruction{Op: isa.SW, Rt: isa.T2, Rs: isa.GP},
				MemAddr: 0x10000000 + uint32(rng.Intn(64))*4, MemSize: 4, Seg: SegData}
		default:
			e = Event{PC: pc, Ins: isa.Instruction{Op: isa.BNE, Rs: isa.T0, Rt: isa.Zero, Imm: -4},
				Taken: rng.Intn(2) == 0}
		}
		events = append(events, e)
		if rng.Intn(8) == 0 {
			pc = 0x400000 + uint32(rng.Intn(1<<16))&^3
		} else {
			pc += 4
		}
	}
	return events
}

// writeV2 encodes events as a v2 trace with the given chunk payload target.
func writeV2(t *testing.T, events []Event, chunkBytes int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterOpts(&buf, WriterOptions{Version: 2, ChunkBytes: chunkBytes})
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if err := w.Event(&events[i]); err != nil {
			t.Fatalf("write event %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readAll drains a reader, returning the events delivered and the terminal
// error (io.EOF for a clean end).
func readAll(r *Reader) ([]Event, error) {
	var out []Event
	var e Event
	for {
		err := r.Next(&e)
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

func TestV2RoundTripMultiChunk(t *testing.T) {
	events := genEvents(2000)
	data := writeV2(t, events, 256)

	chunks, err := ScanChunks(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 10 {
		t.Fatalf("expected many chunks with a 256-byte target, got %d", len(chunks))
	}
	var total uint32
	for i, c := range chunks {
		if !c.CRCOK {
			t.Errorf("chunk %d CRC mismatch in pristine trace", i)
		}
		if c.Seq != uint32(i) {
			t.Errorf("chunk %d has seq %d", i, c.Seq)
		}
		total += c.Events
	}
	if total != uint32(len(events)) {
		t.Errorf("chunk headers count %d events, wrote %d", total, len(events))
	}

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, rerr := readAll(r)
	if rerr != io.EOF {
		t.Fatalf("terminal error = %v, want EOF", rerr)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d mismatch: got %+v want %+v", i, got[i], events[i])
		}
	}
	st := r.Stats()
	if st.Chunks != len(chunks) || st.SkippedChunks != 0 || st.SkippedEvents != 0 {
		t.Errorf("clean read stats = %+v", st)
	}
}

func TestV1RoundTripStillSupported(t *testing.T) {
	events := genEvents(500)
	var buf bytes.Buffer
	w, err := NewWriterV1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if err := w.Event(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, rerr := readAll(r)
	if rerr != io.EOF || len(got) != len(events) {
		t.Fatalf("v1 read: %d events, err %v", len(got), rerr)
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

// corruptPayloadByte flips a bit in the payload of chunk i, leaving the
// header (and thus the resync marker) intact.
func corruptPayloadByte(t *testing.T, data []byte, i int) []byte {
	t.Helper()
	chunks, err := ScanChunks(data)
	if err != nil {
		t.Fatal(err)
	}
	if i >= len(chunks) || chunks[i].Payload == 0 {
		t.Fatalf("no payload to corrupt in chunk %d", i)
	}
	out := append([]byte(nil), data...)
	out[int(chunks[i].Offset)+chunkHdrLen+chunks[i].Payload/2] ^= 0x10
	return out
}

func TestV2CorruptChunkFailFast(t *testing.T) {
	events := genEvents(1500)
	data := writeV2(t, events, 256)
	chunks, _ := ScanChunks(data)
	bad := corruptPayloadByte(t, data, 3)

	r, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	got, rerr := readAll(r)
	var cce *CorruptChunkError
	if !errors.As(rerr, &cce) {
		t.Fatalf("terminal error = %v, want *CorruptChunkError", rerr)
	}
	if !errors.Is(rerr, ErrChecksum) {
		t.Errorf("cause = %v, want ErrChecksum", cce.Cause)
	}
	if cce.Chunk != 3 {
		t.Errorf("failed chunk = %d, want 3", cce.Chunk)
	}
	if cce.Offset != chunks[3].Offset {
		t.Errorf("failure offset = %d, want %d", cce.Offset, chunks[3].Offset)
	}
	if cce.Events != chunks[3].Events {
		t.Errorf("reported events at risk = %d, want %d", cce.Events, chunks[3].Events)
	}
	// Everything before the bad chunk was delivered intact.
	var before int
	for i := 0; i < 3; i++ {
		before += int(chunks[i].Events)
	}
	if len(got) != before {
		t.Errorf("delivered %d events before failing, want %d", len(got), before)
	}
}

func TestV2CorruptChunkDegraded(t *testing.T) {
	events := genEvents(1500)
	data := writeV2(t, events, 256)
	chunks, _ := ScanChunks(data)
	bad := corruptPayloadByte(t, data, 3)

	r, err := NewReaderOpts(bytes.NewReader(bad), ReaderOptions{Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	got, rerr := readAll(r)
	if rerr != io.EOF {
		t.Fatalf("degraded read ended with %v, want EOF", rerr)
	}
	st := r.Stats()
	if st.SkippedChunks != 1 {
		t.Errorf("SkippedChunks = %d, want 1", st.SkippedChunks)
	}
	if st.SkippedEvents != uint64(chunks[3].Events) {
		t.Errorf("SkippedEvents = %d, want %d (chunk 3's header count)",
			st.SkippedEvents, chunks[3].Events)
	}
	if st.ResyncBytes == 0 {
		t.Error("ResyncBytes = 0 after a resync")
	}
	want := len(events) - int(chunks[3].Events)
	if len(got) != want {
		t.Errorf("delivered %d events, want %d (total minus the lost chunk)", len(got), want)
	}
	// The surviving events are exactly the originals minus chunk 3's span.
	var skipStart int
	for i := 0; i < 3; i++ {
		skipStart += int(chunks[i].Events)
	}
	for i := 0; i < len(got); i++ {
		j := i
		if i >= skipStart {
			j = i + int(chunks[3].Events)
		}
		if got[i] != events[j] {
			t.Fatalf("surviving event %d does not match original %d", i, j)
		}
	}
}

func TestV2TruncatedTail(t *testing.T) {
	events := genEvents(1200)
	data := writeV2(t, events, 256)
	chunks, _ := ScanChunks(data)
	last := chunks[len(chunks)-1]
	// Cut into the last chunk's payload.
	cut := data[:int(last.Offset)+chunkHdrLen+last.Payload/2]

	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := readAll(r)
	if !errors.Is(rerr, ErrTruncated) {
		t.Fatalf("fail-fast truncated read gave %v, want ErrTruncated", rerr)
	}
	var cce *CorruptChunkError
	if !errors.As(rerr, &cce) {
		t.Fatalf("terminal error = %T, want *CorruptChunkError", rerr)
	}

	// Degraded: the torn tail is accounted and the read ends cleanly.
	r, err = NewReaderOpts(bytes.NewReader(cut), ReaderOptions{Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	got, rerr := readAll(r)
	if rerr != io.EOF {
		t.Fatalf("degraded truncated read ended with %v, want EOF", rerr)
	}
	st := r.Stats()
	if st.SkippedChunks != 1 || st.SkippedEvents != uint64(last.Events) {
		t.Errorf("stats = %+v, want 1 skipped chunk of %d events", st, last.Events)
	}
	if len(got) != len(events)-int(last.Events) {
		t.Errorf("delivered %d events, want %d", len(got), len(events)-int(last.Events))
	}
}

func TestV2DuplicateChunkDropped(t *testing.T) {
	events := genEvents(1000)
	data := writeV2(t, events, 256)
	chunks, _ := ScanChunks(data)
	c := chunks[2]
	end := int(c.Offset) + chunkHdrLen + c.Payload
	dup := append([]byte(nil), data[:end]...)
	dup = append(dup, data[c.Offset:end]...) // replay chunk 2
	dup = append(dup, data[end:]...)

	r, err := NewReader(bytes.NewReader(dup))
	if err != nil {
		t.Fatal(err)
	}
	got, rerr := readAll(r)
	if rerr != io.EOF {
		t.Fatalf("read ended with %v, want EOF", rerr)
	}
	if len(got) != len(events) {
		t.Fatalf("delivered %d events, want %d (replay must be dropped)", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d mismatch after replay", i)
		}
	}
	if st := r.Stats(); st.DuplicateChunks != 1 {
		t.Errorf("DuplicateChunks = %d, want 1", st.DuplicateChunks)
	}
}

func TestV2HeaderErrorClassification(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("PGTRACE9"))); !errors.Is(err, ErrVersion) {
		t.Errorf("unknown version gave %v, want ErrVersion", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic gave %v, want ErrBadMagic", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("PGT"))); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header gave %v, want ErrTruncated", err)
	}
}

func TestWriterOptsValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriterOpts(&buf, WriterOptions{Version: 3}); !errors.Is(err, ErrVersion) {
		t.Errorf("version 3 gave %v, want ErrVersion", err)
	}
}

func TestScanChunksRejectsDamage(t *testing.T) {
	data := writeV2(t, genEvents(300), 128)
	if _, err := ScanChunks([]byte("JUNK")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("ScanChunks on junk gave %v", err)
	}
	if _, err := ScanChunks(data[:len(data)-3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("ScanChunks on torn trace gave %v", err)
	}
	// Payload corruption is visible as a CRC mismatch, not an error.
	bad := corruptPayloadByte(t, data, 0)
	chunks, err := ScanChunks(bad)
	if err != nil {
		t.Fatal(err)
	}
	if chunks[0].CRCOK {
		t.Error("ScanChunks reported a corrupted chunk as CRC-clean")
	}
}
