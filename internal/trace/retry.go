package trace

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"time"
)

// RetryReader wraps an io.Reader and retries transient read failures with
// seeded-jitter exponential backoff. Trace inputs are often remote or
// contended — an NFS mount mid-failover, an object store throttling, a pipe
// from a flaky producer — where a read that fails now succeeds a few
// milliseconds later. Wrapping the input in a RetryReader turns those
// hiccups into latency instead of aborted analyses, without weakening any
// integrity check downstream (the chunk CRCs still decide what is valid).
//
// Only errors classified transient are retried; everything else — including
// io.EOF — passes straight through. A read that keeps failing after
// MaxAttempts returns the last error, so permanent failures still fail.
type RetryReader struct {
	r    io.Reader
	opts RetryOptions
	rng  *rand.Rand
	st   RetryStats
}

// RetryOptions configures a RetryReader. The zero value selects the
// defaults noted on each field.
type RetryOptions struct {
	// MaxAttempts bounds how many times one Read call is attempted
	// (initial try + retries); 0 selects 5.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles on each
	// further retry. 0 selects 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 selects 250ms.
	MaxDelay time.Duration
	// Seed seeds the jitter PRNG, keeping retry timing reproducible in
	// tests and fault-injection runs.
	Seed int64
	// IsTransient classifies an error as retryable. nil selects
	// IsTransientError (the Temporary() bool convention).
	IsTransient func(error) bool
	// Ctx, when non-nil, cancels waiting: a backoff sleep returns early
	// with the context's error, so cancellation is never delayed by a
	// retry loop.
	Ctx context.Context
	// Sleep replaces the backoff sleep; tests inject a recorder here. nil
	// selects a context-aware time.Sleep.
	Sleep func(time.Duration)
}

// RetryStats accounts for what a RetryReader absorbed.
type RetryStats struct {
	// Retries counts reads that were retried at least once.
	Retries int
	// Attempts counts individual retry attempts.
	Attempts int
	// GaveUp counts reads that still failed after MaxAttempts.
	GaveUp int
	// Slept is the total backoff waited.
	Slept time.Duration
}

// IsTransientError reports whether err (or anything it wraps) advertises
// itself as temporary via the net-package convention `Temporary() bool`.
func IsTransientError(err error) bool {
	var t interface{ Temporary() bool }
	return errors.As(err, &t) && t.Temporary()
}

// NewRetryReader wraps r with retry-with-backoff semantics.
func NewRetryReader(r io.Reader, opts RetryOptions) *RetryReader {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 250 * time.Millisecond
	}
	if opts.IsTransient == nil {
		opts.IsTransient = IsTransientError
	}
	return &RetryReader{r: r, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Stats returns the retry accounting so far.
func (r *RetryReader) Stats() RetryStats { return r.st }

// Read implements io.Reader. A transient error with no data is retried
// after a jittered exponential backoff; a partial read (n > 0) is delivered
// immediately and the error dropped, exactly as io.Reader permits — the
// next Read retries from where the reader left off.
func (r *RetryReader) Read(p []byte) (int, error) {
	var err error
	for attempt := 0; attempt < r.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.st.Attempts++
			if werr := r.backoff(attempt); werr != nil {
				return 0, werr
			}
		}
		var n int
		n, err = r.r.Read(p)
		if n > 0 {
			// Deliver the data; a transient error rides along only if
			// it is permanent-by-convention (io.Reader allows both).
			return n, err
		}
		if err == nil || !r.opts.IsTransient(err) {
			return 0, err
		}
		if attempt == 0 {
			r.st.Retries++
		}
	}
	r.st.GaveUp++
	return 0, err
}

// backoff sleeps the jittered exponential delay for the given retry
// attempt (1-based), honoring cancellation.
func (r *RetryReader) backoff(attempt int) error {
	d := r.opts.BaseDelay << uint(attempt-1)
	if d > r.opts.MaxDelay || d <= 0 {
		d = r.opts.MaxDelay
	}
	// Jitter into [d/2, 3d/2) so synchronized retries from parallel
	// readers spread out instead of thundering together.
	d = d/2 + time.Duration(r.rng.Int63n(int64(d)))
	r.st.Slept += d
	if r.opts.Sleep != nil {
		r.opts.Sleep(d)
		return nil
	}
	if ctx := r.opts.Ctx; ctx != nil {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	time.Sleep(d)
	return nil
}
