package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzTraceReader feeds arbitrary bytes to the reader in both fail-fast and
// degraded mode and asserts it never panics, never loops forever, and fails
// only with classified errors. Seeds cover both format versions plus
// characteristic damage (bit flip, torn tail, replayed chunk).
func FuzzTraceReader(f *testing.F) {
	events := genEvents(200)

	var v2 bytes.Buffer
	w, err := NewWriterOpts(&v2, WriterOptions{Version: 2, ChunkBytes: 128})
	if err != nil {
		f.Fatal(err)
	}
	for i := range events {
		if err := w.Event(&events[i]); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}

	var v1 bytes.Buffer
	w1, _ := NewWriterV1(&v1)
	for i := range events {
		if err := w1.Event(&events[i]); err != nil {
			f.Fatal(err)
		}
	}
	if err := w1.Flush(); err != nil {
		f.Fatal(err)
	}

	f.Add(v2.Bytes())
	f.Add(v1.Bytes())
	f.Add(v2.Bytes()[:v2.Len()/2])         // torn tail
	f.Add([]byte("PGTRACE2"))              // header only
	f.Add([]byte("PGTRACE1"))              // header only
	f.Add([]byte("PGTRACE9junkjunkjunk"))  // unknown version
	f.Add([]byte{})                        // empty
	f.Add(bytes.Repeat([]byte{0xD7}, 100)) // marker-byte noise
	flipped := append([]byte(nil), v2.Bytes()...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, degraded := range []bool{false, true} {
			r, err := NewReaderOpts(bytes.NewReader(data), ReaderOptions{Degraded: degraded})
			if err != nil {
				if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
					!errors.Is(err, ErrTruncated) {
					t.Fatalf("unclassified open error: %v", err)
				}
				continue
			}
			var e Event
			// The input is finite and every Next call either consumes
			// bytes or errors, so this loop terminates; the budget is a
			// backstop that turns a livelock into a test failure.
			for i := 0; i < len(data)+16; i++ {
				if err := r.Next(&e); err != nil {
					if err != io.EOF && degraded {
						// Degraded v2 reads absorb chunk damage; only
						// v1 streams may still fail mid-read.
						var cce *CorruptChunkError
						if r.Version() == 2 && errors.As(err, &cce) {
							t.Fatalf("degraded v2 read failed fast: %v", err)
						}
					}
					return
				}
			}
			t.Fatalf("reader did not terminate on %d input bytes", len(data))
		}
	})
}
