package trace_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"paragraph/internal/faultinject"
	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// The streaming (bufio) reader and the zero-copy (bytes/mmap) reader are
// two byte-acquisition strategies over one decode state machine, and they
// must be observationally identical: same surviving events, same ReadStats
// accounting, same errors — on clean traces and on every kind of damage,
// in fail-fast and degraded modes alike. These tests (and the fuzzer) hold
// them to that.

// equivEvents generates n well-formed events (ALU, load, store, branch)
// with enough PC jumps to exercise both PC encodings.
func equivEvents(n int, seed int64) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]trace.Event, 0, n)
	pc := uint32(0x400000)
	for i := 0; i < n; i++ {
		var e trace.Event
		switch rng.Intn(4) {
		case 0:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.ADDI, Rt: isa.T0, Rs: isa.T1, Imm: int32(i)}}
		case 1:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.LW, Rt: isa.T2, Rs: isa.SP, Imm: 4},
				MemAddr: 0x7fff0000 + uint32(rng.Intn(64))*4, MemSize: 4, Seg: trace.SegStack}
		case 2:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.SW, Rt: isa.T2, Rs: isa.GP},
				MemAddr: 0x10000000 + uint32(rng.Intn(64))*4, MemSize: 4, Seg: trace.SegData}
		default:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.BNE, Rs: isa.T0, Rt: isa.Zero, Imm: -4},
				Taken: rng.Intn(2) == 0}
		}
		events = append(events, e)
		if rng.Intn(8) == 0 {
			pc = 0x400000 + uint32(rng.Intn(1<<16))&^3
		} else {
			pc += 4
		}
	}
	return events
}

// equivTrace encodes events as a v2 trace with small chunks, so damage
// spans chunk boundaries often.
func equivTrace(tb testing.TB, n int, chunkBytes int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriterOpts(&buf, trace.WriterOptions{Version: 2, ChunkBytes: chunkBytes})
	if err != nil {
		tb.Fatal(err)
	}
	events := equivEvents(n, 7)
	for i := range events {
		if err := w.Event(&events[i]); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// drainCap bounds a drain so a reader bug cannot hang the fuzzer.
const drainCap = 1 << 21

// drain reads every event a reader delivers, returning the events, the
// final ReadStats, and the terminal error (nil for clean EOF).
func drain(r *trace.Reader) ([]trace.Event, trace.ReadStats, error) {
	var events []trace.Event
	var e trace.Event
	for len(events) < drainCap {
		err := r.Next(&e)
		if err == io.EOF {
			return events, r.Stats(), nil
		}
		if err != nil {
			return events, r.Stats(), err
		}
		events = append(events, e)
	}
	return events, r.Stats(), nil
}

// checkEquivalence runs both readers over data in the given mode and fails
// if any observable differs. It returns the surviving-event count for
// tests that want to assert on it.
func checkEquivalence(tb testing.TB, data []byte, degraded bool) int {
	tb.Helper()
	opts := trace.ReaderOptions{Degraded: degraded}

	sr, serr := trace.NewReaderOpts(bytes.NewReader(data), opts)
	zr, zerr := trace.NewBytesReader(append([]byte(nil), data...), opts)
	if (serr == nil) != (zerr == nil) {
		tb.Fatalf("degraded=%v: constructor disagreement: streaming err %v, zero-copy err %v", degraded, serr, zerr)
	}
	if serr != nil {
		if serr.Error() != zerr.Error() {
			tb.Fatalf("degraded=%v: constructor errors differ:\nstreaming: %v\nzero-copy: %v", degraded, serr, zerr)
		}
		return 0
	}

	sev, sst, sfinal := drain(sr)
	zev, zst, zfinal := drain(zr)
	if len(sev) != len(zev) {
		tb.Fatalf("degraded=%v: event counts differ: streaming %d, zero-copy %d", degraded, len(sev), len(zev))
	}
	for i := range sev {
		if sev[i] != zev[i] {
			tb.Fatalf("degraded=%v: event %d differs:\nstreaming: %+v\nzero-copy: %+v", degraded, i, sev[i], zev[i])
		}
	}
	if sst != zst {
		tb.Fatalf("degraded=%v: ReadStats differ:\nstreaming: %+v\nzero-copy: %+v", degraded, sst, zst)
	}
	if (sfinal == nil) != (zfinal == nil) {
		tb.Fatalf("degraded=%v: terminal errors disagree: streaming %v, zero-copy %v", degraded, sfinal, zfinal)
	}
	if sfinal != nil {
		if sfinal.Error() != zfinal.Error() {
			tb.Fatalf("degraded=%v: terminal errors differ:\nstreaming: %v\nzero-copy: %v", degraded, sfinal, zfinal)
		}
		var sc, zc *trace.CorruptChunkError
		if errors.As(sfinal, &sc) != errors.As(zfinal, &zc) {
			tb.Fatalf("degraded=%v: only one terminal error is a CorruptChunkError", degraded)
		}
		if sc != nil && !reflect.DeepEqual(*sc, *zc) {
			tb.Fatalf("degraded=%v: CorruptChunkError fields differ:\nstreaming: %+v\nzero-copy: %+v", degraded, *sc, *zc)
		}
	}
	return len(sev)
}

// TestDifferentialReaderBytesVsBufio runs the two readers over a catalogue
// of damaged traces in both modes.
func TestDifferentialReaderBytesVsBufio(t *testing.T) {
	clean := equivTrace(t, 4000, 512)
	corruptMid := func() []byte {
		d, err := faultinject.CorruptChunk(append([]byte(nil), clean...), 3, 11)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}()
	dupMid := func() []byte {
		d, err := faultinject.DuplicateChunk(append([]byte(nil), clean...), 2)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}()
	cases := map[string][]byte{
		"clean":          clean,
		"empty":          {},
		"magic-only":     clean[:8],
		"torn-header":    clean[:8+10],
		"truncated":      faultinject.Truncate(append([]byte(nil), clean...), len(clean)/3),
		"flip-sparse":    faultinject.FlipBits(append([]byte(nil), clean...), 8, 3, 8),
		"flip-dense":     faultinject.FlipBits(append([]byte(nil), clean...), 200, 5, 8),
		"corrupt-chunk":  corruptMid,
		"dup-chunk":      dupMid,
		"garbage":        bytes.Repeat([]byte{0xD7, 'P', 'G'}, 400),
		"marker-noise":   append(append([]byte(nil), clean[:100]...), bytes.Repeat(chunkMarkerBytes(), 30)...),
		"v1-passthrough": v1Trace(t),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			for _, degraded := range []bool{false, true} {
				checkEquivalence(t, data, degraded)
			}
		})
	}
	// Sanity: a clean trace must survive in full on the zero-copy path.
	if n := checkEquivalence(t, clean, false); n != 4000 {
		t.Fatalf("clean trace delivered %d events, want 4000", n)
	}
}

// chunkMarkerBytes returns the v2 chunk marker, reconstructed from a real
// trace so the test does not reach into package internals.
func chunkMarkerBytes() []byte {
	return []byte{0xD7, 'P', 'G', 0xC5}
}

// v1Trace builds a small legacy v1 trace: the zero-copy constructor must
// fall back to the streaming reader with identical behavior.
func v1Trace(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriterV1(&buf)
	if err != nil {
		tb.Fatal(err)
	}
	events := equivEvents(100, 3)
	for i := range events {
		if err := w.Event(&events[i]); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestDifferentialSectionReaders holds NewBytesSectionReader to the
// behavior of NewSectionReader over every chunk span of a damaged trace.
func TestDifferentialSectionReaders(t *testing.T) {
	data := faultinject.FlipBits(equivTrace(t, 6000, 512), 10, 21, 8)
	spans, _, err := trace.ScanChunkSpans(data, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) < 4 {
		t.Fatalf("want several spans, got %d", len(spans))
	}
	for i, sp := range spans {
		opts := trace.ReaderOptions{Degraded: true}
		if i > 0 {
			opts.StartSeq, opts.StartSeqValid = spans[i-1].Seq, true
		}
		end := int64(len(data))
		if i+1 < len(spans) {
			end = spans[i+1].Start
		}
		sr, err := trace.NewSectionReader(data, sp.Start, end, opts)
		if err != nil {
			t.Fatal(err)
		}
		zr, err := trace.NewBytesSectionReader(data, sp.Start, end, opts)
		if err != nil {
			t.Fatal(err)
		}
		sev, sst, serr := drain(sr)
		zev, zst, zerr := drain(zr)
		if serr != nil || zerr != nil {
			t.Fatalf("span %d: drain errors %v / %v", i, serr, zerr)
		}
		if !reflect.DeepEqual(sev, zev) {
			t.Fatalf("span %d: events differ (%d vs %d)", i, len(sev), len(zev))
		}
		if sst != zst {
			t.Fatalf("span %d: stats differ: %+v vs %+v", i, sst, zst)
		}
	}
}

// FuzzReaderEquivalence fuzzes arbitrary bytes through both readers in
// both modes, asserting identical surviving events, ReadStats and errors.
func FuzzReaderEquivalence(f *testing.F) {
	clean := equivTrace(f, 1000, 256)
	f.Add(clean)
	f.Add(clean[:8])
	f.Add([]byte{})
	f.Add(faultinject.FlipBits(append([]byte(nil), clean...), 16, 9, 8))
	f.Add(faultinject.Truncate(append([]byte(nil), clean...), len(clean)-17))
	if d, err := faultinject.CorruptChunk(append([]byte(nil), clean...), 1, 4); err == nil {
		f.Add(d)
	}
	if d, err := faultinject.DuplicateChunk(append([]byte(nil), clean...), 1); err == nil {
		f.Add(d)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, degraded := range []bool{false, true} {
			checkEquivalence(t, data, degraded)
		}
	})
}
