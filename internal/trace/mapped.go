package trace

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// errMmapUnavailable marks the cases where memory mapping cannot be used
// (unsupported platform, empty file) and OpenMapped should silently fall
// back to reading the file; real mmap syscall failures are reported.
var errMmapUnavailable = errors.New("trace: mmap unavailable")

// MappedTrace is a whole trace held in memory for zero-copy reading:
// memory-mapped where the platform supports it, otherwise read in full
// through a plain io.ReaderAt. Close releases the mapping (or the buffer);
// no Reader or Event obtained from the trace may be used after Close.
type MappedTrace struct {
	data    []byte
	mapped  bool
	release func() error
}

// OpenMapped opens a trace file for zero-copy reading. The file is closed
// before OpenMapped returns — a memory mapping survives its file
// descriptor — so the only resource to manage is the MappedTrace itself.
func OpenMapped(path string) (*MappedTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, release, err := mapFile(f)
	if err == nil {
		return &MappedTrace{data: data, mapped: true, release: release}, nil
	}
	if !errors.Is(err, errMmapUnavailable) {
		return nil, fmt.Errorf("trace: mmap %s: %w", path, err)
	}
	data, err = readAllAt(f)
	if err != nil {
		return nil, fmt.Errorf("trace: read %s: %w", path, err)
	}
	return &MappedTrace{data: data}, nil
}

// readAllAt reads the whole file through its io.ReaderAt interface — the
// fallback when mapping is unavailable.
func readAllAt(f *os.File) ([]byte, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data := make([]byte, fi.Size())
	n, err := io.ReadFull(io.NewSectionReader(f, 0, fi.Size()), data)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	return data[:n], nil
}

// Bytes returns the trace contents. Callers must treat the slice as
// read-only and must not use it after Close.
func (m *MappedTrace) Bytes() []byte { return m.data }

// Mapped reports whether the contents are memory-mapped (true) or were
// read into an ordinary buffer by the fallback path (false).
func (m *MappedTrace) Mapped() bool { return m.mapped }

// Reader returns a new zero-copy Reader over the trace. Any number of
// independent readers may be created.
func (m *MappedTrace) Reader(o ReaderOptions) (*Reader, error) {
	return NewBytesReader(m.data, o)
}

// Close releases the mapping or buffer. It is safe to call more than once.
func (m *MappedTrace) Close() error {
	rel := m.release
	m.data, m.release = nil, nil
	if rel != nil {
		return rel()
	}
	return nil
}
