package trace

import (
	"errors"
	"fmt"
)

// Sentinel errors distinguishing the ways a stored trace can be unreadable.
// They are wrapped (with %w) into the errors returned by NewReader and
// Reader.Next, so callers can classify failures with errors.Is:
//
//	ErrBadMagic  — the input is not a trace file at all
//	ErrVersion   — a trace file, but a format version this build cannot read
//	ErrTruncated — the trace ends mid-event or mid-chunk (partial write,
//	               torn download, disk-full tail)
//	ErrChecksum  — a v2 chunk's CRC32 does not match its payload (bit rot,
//	               in-flight corruption)
var (
	ErrBadMagic  = errors.New("trace: bad magic; not a trace file")
	ErrVersion   = errors.New("trace: unsupported trace format version")
	ErrTruncated = errors.New("trace: unexpected end of trace")
	ErrChecksum  = errors.New("trace: chunk checksum mismatch")
)

// CorruptChunkError reports a damaged chunk in a v2 trace: which chunk,
// where it starts in the file, and why it was rejected. In fail-fast mode
// (the default) Reader.Next returns it as soon as the damage is hit; in
// degraded mode the reader resyncs past the chunk instead and only the
// ReadStats record the loss.
type CorruptChunkError struct {
	// Chunk is the zero-based index of the rejected chunk, counting every
	// chunk encountered so far (valid, duplicate, or corrupt).
	Chunk int
	// Offset is the byte offset in the trace file where the chunk starts.
	Offset int64
	// Events is the chunk's event count as claimed by its header, when
	// the header was readable; 0 when even that much was lost.
	Events uint32
	// Cause classifies the damage: ErrTruncated, ErrChecksum, or a
	// descriptive error for a mangled header.
	Cause error
}

func (e *CorruptChunkError) Error() string {
	return fmt.Sprintf("trace: corrupt chunk %d at offset %d: %v", e.Chunk, e.Offset, e.Cause)
}

// Unwrap exposes the cause so errors.Is(err, ErrChecksum) etc. work.
func (e *CorruptChunkError) Unwrap() error { return e.Cause }
