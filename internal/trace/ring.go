package trace

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"unsafe"
)

// Ring is a bounded, single-producer, multi-consumer broadcast buffer of
// event batches: the constant-memory replacement for recording a whole
// trace into an EventBuffer before fanning it out. The producer (a CPU
// simulation or a trace reader) appends events while every consumer (one
// analyzer per configuration) replays the identical sequence concurrently;
// when the slowest consumer falls Batches batches behind, the producer
// blocks until it catches up. Memory held by the ring is therefore a
// function of configuration — Batches × BatchEvents × sizeof(Event) — and
// never of trace length, which is what lets a -j N multi-config analysis
// of a billion-event trace run inside a fixed window.
//
// Batch slots are reused: once every consumer has advanced past a batch,
// the producer refills its backing array in place. All handoffs are
// mutex-synchronized, so the reuse is race-free by construction (the
// differential battery runs the ring engine under -race to prove it). The
// slices handed to consumers follow the BatchSink contract — read-only,
// invalid once the consumer asks for the next batch.
//
// A Ring is bound to a context at construction: a cancellation unblocks
// both a producer waiting for ring space and consumers waiting for data,
// each returning an error wrapping ctx.Err().
type Ring struct {
	ctx       context.Context
	stopWatch func() bool

	batchEvents int
	nslots      int

	mu      sync.Mutex
	cond    *sync.Cond
	slots   [][]Event
	lens    []int
	head    int64 // batches published so far
	pos     []int64
	done    []bool
	ndone   int
	closed  bool
	sendErr error
	stats   ReadStats
	total   int64

	// cur aliases slots[head%nslots] while the producer fills it; only the
	// producer goroutine touches it, so appends need no lock.
	cur     []Event
	claimed bool
}

// Ring sizing defaults and floors. 64 batches of 1024 events is ~1.5 MB of
// Event storage — deep enough that transient consumer skew (a GC pause, an
// analyzer's expensive stride) doesn't stall the producer, small enough to
// be irrelevant against any realistic memory budget.
const (
	// DefaultRingBatches is the ring capacity used when RingOptions leaves
	// Batches zero.
	DefaultRingBatches = 64
	// MinRingBatches is the smallest capacity a ring can run with and
	// still overlap production with consumption at all.
	MinRingBatches = 2
)

// ErrRingDrained is returned by producer sends once every consumer has
// closed: nothing will ever read the stream again, so the producer should
// stop. Engines treat it as a signal, not a failure — the consumers' own
// errors explain why they left.
var ErrRingDrained = errors.New("trace: ring has no remaining consumers")

// RingProducerError wraps the producer-side failure a consumer observes at
// the end of a broken stream. Engines use the type to tell a consumer's own
// failure from an echo of the producer's, so the producer error is reported
// once rather than once per configuration.
type RingProducerError struct{ Err error }

func (e *RingProducerError) Error() string {
	return fmt.Sprintf("trace: ring producer failed: %v", e.Err)
}

// Unwrap keeps the producer's error chain classifiable through the echo.
func (e *RingProducerError) Unwrap() error { return e.Err }

// RingOptions sizes a Ring. The zero value selects the defaults.
type RingOptions struct {
	// Batches is the ring capacity: how far (in batches) the producer may
	// run ahead of the slowest consumer. 0 selects DefaultRingBatches;
	// values below MinRingBatches are raised to it.
	Batches int
	// BatchEvents is the number of events per batch. 0 selects
	// DefaultBatchEvents, which matches the CtxCheckEvery guard stride.
	BatchEvents int
}

// RingFootprint estimates the bytes a ring of the given shape holds (its
// batch slots; bookkeeping is negligible). Zero parameters select the same
// defaults NewRing would.
func RingFootprint(batches, batchEvents int) int64 {
	if batches <= 0 {
		batches = DefaultRingBatches
	}
	if batchEvents <= 0 {
		batchEvents = DefaultBatchEvents
	}
	return int64(batches) * int64(batchEvents) * int64(unsafe.Sizeof(Event{}))
}

// NewRing returns a ring broadcasting to the given number of consumers,
// bound to ctx. Every consumer slot must be claimed with Consumer and
// either drained to EOF or Closed, or the producer will block forever
// waiting for it.
func NewRing(ctx context.Context, consumers int, o RingOptions) *Ring {
	if consumers < 1 {
		consumers = 1
	}
	batches := o.Batches
	if batches <= 0 {
		batches = DefaultRingBatches
	}
	if batches < MinRingBatches {
		batches = MinRingBatches
	}
	be := o.BatchEvents
	if be <= 0 {
		be = DefaultBatchEvents
	}
	r := &Ring{
		ctx:         ctx,
		batchEvents: be,
		nslots:      batches,
		slots:       make([][]Event, batches),
		lens:        make([]int, batches),
		pos:         make([]int64, consumers),
		done:        make([]bool, consumers),
	}
	for i := range r.slots {
		r.slots[i] = make([]Event, 0, be)
	}
	r.cond = sync.NewCond(&r.mu)
	if ctx.Done() != nil {
		// A cancellation must wake waiters parked on the condition
		// variable. Taking the lock before broadcasting orders the wakeup
		// after any in-progress wait re-check, closing the lost-wakeup
		// window; AfterFunc keeps the ring goroutine-free.
		r.stopWatch = context.AfterFunc(ctx, func() {
			r.mu.Lock()
			//lint:ignore SA2001 empty critical section orders the broadcast
			r.mu.Unlock()
			r.cond.Broadcast()
		})
	}
	return r
}

// Bytes reports the ring's fixed footprint — what a memory budget should
// meter for the bounded engine, replacing the EventBuffer's trace-length-
// proportional figure.
func (r *Ring) Bytes() int64 {
	return int64(r.nslots) * int64(r.batchEvents) * int64(unsafe.Sizeof(Event{}))
}

// Count returns the number of events published so far.
func (r *Ring) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	if r.claimed {
		n += int64(len(r.cur))
	}
	return n
}

// minPos returns the position of the slowest live consumer; ok is false
// when every consumer has closed.
func (r *Ring) minPos() (min int64, ok bool) {
	for i, p := range r.pos {
		if r.done[i] {
			continue
		}
		if !ok || p < min {
			min, ok = p, true
		}
	}
	return min, ok
}

// claim reserves the next batch slot for the producer, blocking while the
// slowest consumer is a full ring behind.
func (r *Ring) claim() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if err := r.ctx.Err(); err != nil {
			return fmt.Errorf("trace: ring send canceled at event %d: %w", r.total, err)
		}
		if r.closed {
			return errors.New("trace: ring send after CloseSend")
		}
		if r.ndone == len(r.pos) {
			return fmt.Errorf("%w (at event %d)", ErrRingDrained, r.total)
		}
		min, ok := r.minPos()
		if !ok || r.head-min < int64(r.nslots) {
			break
		}
		r.cond.Wait()
	}
	r.cur = r.slots[r.head%int64(r.nslots)][:0]
	r.claimed = true
	return nil
}

// publish makes the in-progress batch visible to consumers.
func (r *Ring) publish() {
	r.mu.Lock()
	i := r.head % int64(r.nslots)
	r.slots[i] = r.cur[:0] // keep the (possibly identical) backing array
	r.lens[i] = len(r.cur)
	r.total += int64(len(r.cur))
	r.head++
	r.claimed = false
	r.cur = nil
	r.cond.Broadcast()
	r.mu.Unlock()
}

// Event implements Sink: it appends one event, publishing a batch every
// BatchEvents events and blocking under backpressure.
func (r *Ring) Event(e *Event) error {
	if !r.claimed {
		if err := r.claim(); err != nil {
			return err
		}
	}
	r.cur = append(r.cur, *e)
	if len(r.cur) == r.batchEvents {
		r.publish()
	}
	return nil
}

// Events implements BatchSink: a bulk append of the batch, split across
// ring slots as needed. The input follows the usual contract (read-only,
// not retained): events are copied into the ring's own slots.
func (r *Ring) Events(batch []Event) error {
	for len(batch) > 0 {
		if !r.claimed {
			if err := r.claim(); err != nil {
				return err
			}
		}
		n := r.batchEvents - len(r.cur)
		if n > len(batch) {
			n = len(batch)
		}
		r.cur = append(r.cur, batch[:n]...)
		batch = batch[n:]
		if len(r.cur) == r.batchEvents {
			r.publish()
		}
	}
	return nil
}

// SetStats attaches the producing reader's skip accounting, mirroring
// EventBuffer.SetStats; call before CloseSend.
func (r *Ring) SetStats(st ReadStats) {
	r.mu.Lock()
	r.stats = st
	r.mu.Unlock()
}

// Stats returns the accounting set by SetStats.
func (r *Ring) Stats() ReadStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// CloseSend ends the stream: a partial batch in progress is published, and
// consumers that drain the ring then observe err (nil = clean end, reported
// as io.EOF). CloseSend is idempotent; the first error wins.
func (r *Ring) CloseSend(err error) {
	r.mu.Lock()
	if !r.closed {
		if r.claimed && len(r.cur) > 0 {
			i := r.head % int64(r.nslots)
			r.slots[i] = r.cur[:0]
			r.lens[i] = len(r.cur)
			r.total += int64(len(r.cur))
			r.head++
		}
		r.claimed = false
		r.cur = nil
		r.closed = true
		r.sendErr = err
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	if r.stopWatch != nil {
		r.stopWatch()
	}
}

// RingConsumer is one consumer's cursor over the ring. Each consumer slot
// may be used from one goroutine at a time.
type RingConsumer struct {
	r      *Ring
	id     int
	handed bool
}

// Consumer returns the cursor for consumer slot i (0 ≤ i < consumers).
func (r *Ring) Consumer(i int) *RingConsumer {
	if i < 0 || i >= len(r.pos) {
		panic(fmt.Sprintf("trace: ring consumer %d of %d", i, len(r.pos)))
	}
	return &RingConsumer{r: r, id: i}
}

// Next returns the next batch in stream order, blocking until the producer
// publishes one. The returned slice is valid only until the following Next
// (or Close) call — asking for the next batch is what releases the current
// one for slot reuse. At a clean end of stream Next returns io.EOF; a
// producer failure surfaces as a *RingProducerError after all batches
// published before the failure have been delivered.
func (c *RingConsumer) Next() ([]Event, error) {
	r := c.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if c.handed {
		r.pos[c.id]++
		c.handed = false
		r.cond.Broadcast()
	}
	for {
		if err := r.ctx.Err(); err != nil {
			return nil, fmt.Errorf("trace: ring replay canceled at batch %d: %w", r.pos[c.id], err)
		}
		if r.pos[c.id] < r.head {
			c.handed = true
			i := r.pos[c.id] % int64(r.nslots)
			return r.slots[i][:r.lens[i]], nil
		}
		if r.closed {
			if r.sendErr != nil {
				return nil, &RingProducerError{Err: r.sendErr}
			}
			return nil, io.EOF
		}
		r.cond.Wait()
	}
}

// Close deregisters the consumer: it stops gating the producer's progress,
// which may unblock a producer waiting on this consumer (or fail it with
// ErrRingDrained once no consumers remain). Close is idempotent and must be
// called when a consumer exits early; draining to EOF makes it a no-op but
// still safe.
func (c *RingConsumer) Close() {
	r := c.r
	r.mu.Lock()
	if !r.done[c.id] {
		r.done[c.id] = true
		r.ndone++
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}
