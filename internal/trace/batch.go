package trace

import "io"

// Batched event delivery. The per-event Sink contract costs one interface
// call — and, for replay, one defensive copy — per dynamic instruction,
// which at hundreds of millions of events is most of the delivery bill.
// BatchSink amortizes both: producers hand consumers slices of decoded
// events, CtxCheckEvery at a time, and the cancellation/budget guards that
// used to be per-event integer tests hoist to one check per batch.
//
// The batch contract is stricter than Sink's: the slice and the events in
// it are only valid for the duration of the Events call, and the sink must
// not mutate or retain them — batches may alias the producer's decode
// buffer, an EventBuffer recording shared by concurrent replays, or an
// mmap-ed region. Trusted internal consumers (the analyzer, EventBuffer)
// honour this; arbitrary Sinks get the old copying semantics through
// AsBatch.

// BatchSink consumes a stream of events delivered in slices.
type BatchSink interface {
	// Events consumes one batch. The slice is read-only and invalid after
	// the call returns.
	Events(batch []Event) error
}

// BatchFunc adapts a function to the BatchSink interface.
type BatchFunc func(batch []Event) error

// Events implements BatchSink.
func (f BatchFunc) Events(batch []Event) error { return f(batch) }

// AsBatch returns a BatchSink delivering to s: s itself when it already
// implements BatchSink, otherwise an adapter that feeds s one event at a
// time with the Sink contract's private copy per event.
func AsBatch(s Sink) BatchSink {
	if bs, ok := s.(BatchSink); ok {
		return bs
	}
	return sinkAdapter{s}
}

// sinkAdapter bridges a batch producer to a legacy per-event Sink.
type sinkAdapter struct{ s Sink }

// Events implements BatchSink by replaying the batch event by event. Each
// event is copied so a sink that mutates or retains its argument cannot
// corrupt the shared batch.
func (a sinkAdapter) Events(batch []Event) error {
	for i := range batch {
		e := batch[i]
		if err := a.s.Event(&e); err != nil {
			return err
		}
	}
	return nil
}

// DefaultBatchEvents is the conventional batch size for read and replay
// loops: it matches CtxCheckEvery, so hoisting the per-event guards to
// batch granularity preserves their exact cadence.
const DefaultBatchEvents = CtxCheckEvery

// ReadBatch decodes up to len(dst) events into dst, returning how many
// were decoded and the error, if any, that stopped the read. Events
// dst[:n] are always valid; err is io.EOF at the clean end of the trace
// and may accompany n > 0. A degraded-mode reader accounts skips in Stats
// exactly as per-event Next does — ReadBatch is a loop around the same
// decode state machine, not a second implementation.
func (r *Reader) ReadBatch(dst []Event) (n int, err error) {
	for n < len(dst) {
		if err := r.Next(&dst[n]); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// ForEachBatch reads the remaining trace in batches of DefaultBatchEvents,
// invoking fn for each. It stops early if fn returns an error, and returns
// nil at a clean end of trace. The batch slice passed to fn follows the
// BatchSink contract: read-only, invalid after fn returns.
func (r *Reader) ForEachBatch(fn func(batch []Event) error) error {
	buf := make([]Event, DefaultBatchEvents)
	for {
		n, err := r.ReadBatch(buf)
		if n > 0 {
			if ferr := fn(buf[:n]); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}
