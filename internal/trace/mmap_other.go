//go:build !unix

package trace

import "os"

// mapFile reports that memory mapping is unavailable on this platform;
// OpenMapped falls back to reading the file through io.ReaderAt.
func mapFile(*os.File) ([]byte, func() error, error) {
	return nil, nil, errMmapUnavailable
}
