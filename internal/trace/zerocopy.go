package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Zero-copy v2 decoding. A Reader constructed over an in-memory trace — an
// mmap-ed file, or a whole file read into one slice — decodes chunks in
// place: the chunk header is parsed where it lies, the CRC runs over the
// mapped bytes, and r.payload aliases the region instead of being copied
// out of a bufio window. The decode state machine (nextV2,
// decodePayloadEvent), the degraded-mode skip/resync semantics, and every
// ReadStats counter are shared with the streaming reader; only the byte
// acquisition differs. The differential fuzzer FuzzReaderEquivalence holds
// the two implementations byte-for-byte accountable to each other.

// NewBytesReader returns a Reader decoding a complete in-memory trace in
// place. For v2 traces no payload bytes are ever copied: decoded events
// are produced directly out of data, so the caller must not mutate (or
// unmap) data until reading is done. Non-v2 inputs — v1 traces have no
// chunk framing to exploit — fall back to the streaming reader over a
// bytes.Reader, with identical error behavior.
func NewBytesReader(data []byte, o ReaderOptions) (*Reader, error) {
	if len(data) >= len(magic2) && bytes.Equal(data[:len(magic2)], magic2[:]) {
		return &Reader{
			version: 2, degraded: o.Degraded,
			data: data, dataEnd: int64(len(data)),
			off: int64(len(magic2)), aligned: true,
			lastSeq: o.StartSeq, haveSeq: o.StartSeqValid,
		}, nil
	}
	return NewReaderOpts(bytes.NewReader(data), o)
}

// NewBytesSectionReader returns a zero-copy Reader over the byte range
// [start, end) of a complete in-memory v2 trace: the in-place equivalent
// of NewSectionReader. start must be a chunk boundary (an accepted chunk's
// Start, as reported by ScanChunkSpans); o.StartSeq should carry the Seq
// of the last chunk delivered before start so duplicate detection behaves
// as a single reader would.
func NewBytesSectionReader(data []byte, start, end int64, o ReaderOptions) (*Reader, error) {
	if len(data) < len(magic2) || !bytes.Equal(data[:len(magic2)], magic2[:]) {
		return nil, fmt.Errorf("%w: not a v2 trace", ErrBadMagic)
	}
	if start < HeaderBytes || end < start || end > int64(len(data)) {
		return nil, fmt.Errorf("trace: bad section [%d, %d) of %d-byte trace", start, end, len(data))
	}
	return &Reader{
		version: 2, degraded: o.Degraded,
		data: data, dataEnd: end,
		off: start, aligned: true,
		lastSeq: o.StartSeq, haveSeq: o.StartSeqValid,
	}, nil
}

// loadChunkBytes is loadChunk for the zero-copy reader: it positions
// r.payload on the next valid chunk's payload without copying it. The
// control flow and every ReadStats-affecting decision mirror the streaming
// implementation exactly.
func (r *Reader) loadChunkBytes() error {
	for {
		rem := r.dataEnd - r.off
		if rem == 0 {
			return io.EOF
		}
		if rem < chunkHdrLen {
			// A torn tail shorter than one header. Nothing after it can
			// be recovered.
			if cerr := r.corrupt(ErrTruncated, 0); cerr != nil {
				return cerr
			}
			r.off = r.dataEnd
			return io.EOF
		}
		hdr := r.data[r.off : r.off+chunkHdrLen]
		if !bytes.Equal(hdr[0:4], chunkMarker[:]) {
			if cerr := r.corrupt(fmt.Errorf("invalid chunk marker % x", hdr[0:4]), headerEvents(hdr, r.aligned)); cerr != nil {
				return cerr
			}
			if err := r.resyncBytes(); err != nil {
				return err
			}
			continue
		}
		seq := binary.LittleEndian.Uint32(hdr[4:8])
		plen := int(binary.LittleEndian.Uint32(hdr[8:12]))
		events := binary.LittleEndian.Uint32(hdr[12:16])
		crc := binary.LittleEndian.Uint32(hdr[16:20])
		claimed := headerEvents(hdr, r.aligned)
		if plen > maxChunkPayload {
			if cerr := r.rejectOversize(plen, hdr); cerr != nil {
				return cerr
			}
			if err := r.resyncBytes(); err != nil {
				return err
			}
			continue
		}
		if rem < int64(chunkHdrLen+plen) {
			if cerr := r.corrupt(ErrTruncated, claimed); cerr != nil {
				return cerr
			}
			if rerr := r.resyncBytes(); rerr != nil {
				return rerr
			}
			continue
		}
		payload := r.data[r.off+chunkHdrLen : r.off+int64(chunkHdrLen+plen)]
		if chunkCRC(hdr, payload) != crc {
			if cerr := r.corrupt(ErrChecksum, claimed); cerr != nil {
				return cerr
			}
			if err := r.resyncBytes(); err != nil {
				return err
			}
			continue
		}

		// The chunk is intact: its payload is consumed in place.
		r.payload = payload
		r.off += int64(chunkHdrLen + plen)
		r.chunkIdx++
		r.aligned = true
		if r.haveSeq && seq <= r.lastSeq {
			// A replayed (duplicated) chunk: its events were already
			// delivered under this sequence number.
			r.stats.DuplicateChunks++
			r.payload = r.payload[:0]
			continue
		}
		r.lastSeq, r.haveSeq = seq, true
		r.pos = 0
		r.rem = events
		r.first = true
		r.stats.Chunks++
		if events == 0 && plen == 0 {
			continue
		}
		return nil
	}
}

// resyncBytes is resync for the zero-copy reader: skip at least one byte,
// then scan the remaining region for the next chunk marker, counting every
// byte passed over exactly as the streaming scan does.
func (r *Reader) resyncBytes() error {
	if r.off < r.dataEnd {
		r.off++
		r.stats.ResyncBytes++
	}
	rest := r.data[r.off:r.dataEnd]
	if i := bytes.Index(rest, chunkMarker[:]); i >= 0 {
		r.off += int64(i)
		r.stats.ResyncBytes += int64(i)
		return nil
	}
	r.stats.ResyncBytes += int64(len(rest))
	r.off = r.dataEnd
	return io.EOF
}
