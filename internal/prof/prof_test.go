package prof

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var warn bytes.Buffer
	stop, err := Start(cpu, mem, &warn)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // idempotent: second call must not re-truncate or panic
	if warn.Len() != 0 {
		t.Errorf("stop warned: %s", warn.String())
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s: %v", path, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

func TestStartNoPathsIsNoOp(t *testing.T) {
	var warn bytes.Buffer
	stop, err := Start("", "", &warn)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if warn.Len() != 0 {
		t.Errorf("stop warned: %s", warn.String())
	}
}

func TestStartBadCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), "", os.Stderr); err == nil {
		t.Fatal("Start accepted an uncreatable cpu profile path")
	}
}
