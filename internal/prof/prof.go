// Package prof wires the -cpuprofile / -memprofile flags of the CLIs to
// runtime/pprof. Both commands share the same teardown subtlety: their
// error paths exit the process directly (skipping defers), so Start returns
// an idempotent stop closure the caller runs from every exit path — the
// deferred normal return and the fatal-error bailout alike.
package prof

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins CPU profiling to cpuPath (when non-empty) and arranges a
// heap snapshot to memPath (when non-empty) at stop time. The returned
// closure is safe to call more than once and from any exit path; failures
// while writing the heap profile are reported to warn rather than returned,
// since stop typically runs on the way out of the process.
func Start(cpuPath, memPath string, warn io.Writer) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		cpuFile = f
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fmt.Fprintln(warn, "-cpuprofile:", err)
				}
			}
			if memPath == "" {
				return
			}
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(warn, "-memprofile:", err)
				return
			}
			runtime.GC() // materialize final live-heap state before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(warn, "-memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(warn, "-memprofile:", err)
			}
		})
	}
	return stop, nil
}
