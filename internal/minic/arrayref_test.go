package minic

import (
	"strings"
	"testing"
)

// Array-reference parameters: C's pointer-decay calling convention.

func TestArrayRefBasics(t *testing.T) {
	got := run(t, `
int sum(int a[], int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
    return s;
}
void fill(int a[], int n, int base) {
    int i;
    for (i = 0; i < n; i = i + 1) { a[i] = base + i; }
}
int g[10];
int main() {
    fill(g, 10, 5);
    print_int(sum(g, 10));   // 5+6+...+14 = 95
    print_char(10);
    int local[6];
    fill(local, 6, 100);
    print_int(sum(local, 6)); // 100+...+105 = 615
    print_char(10);
    return 0;
}`)
	if got != "95\n615\n" {
		t.Errorf("output = %q", got)
	}
}

func TestArrayRefMutationVisible(t *testing.T) {
	// Reference semantics: callee writes are seen by the caller.
	got := run(t, `
void double_all(int a[], int n) {
    int i;
    for (i = 0; i < n; i = i + 1) { a[i] = a[i] * 2; }
}
int main() {
    int v[4];
    v[0] = 1; v[1] = 2; v[2] = 3; v[3] = 4;
    double_all(v, 4);
    print_int(v[0] + v[1] + v[2] + v[3]);  // 20
    print_char(10);
    return 0;
}`)
	if got != "20\n" {
		t.Errorf("output = %q", got)
	}
}

func TestArrayRefMultiDim(t *testing.T) {
	got := run(t, `
double trace3(double m[][3]) {
    return m[0][0] + m[1][1] + m[2][2];
}
void scale3(double m[][3], double k) {
    int i; int j;
    for (i = 0; i < 3; i = i + 1) {
        for (j = 0; j < 3; j = j + 1) { m[i][j] = m[i][j] * k; }
    }
}
double mat[3][3];
int main() {
    int i; int j;
    for (i = 0; i < 3; i = i + 1) {
        for (j = 0; j < 3; j = j + 1) { mat[i][j] = i * 3 + j; }
    }
    print_double(trace3(mat));     // 0 + 4 + 8 = 12
    print_char(32);
    scale3(mat, 0.5);
    print_double(trace3(mat));     // 6
    print_char(10);
    return 0;
}`)
	if got != "12 6\n" {
		t.Errorf("output = %q", got)
	}
}

func TestArrayRefForwarding(t *testing.T) {
	// A reference parameter can itself be passed on.
	got := run(t, `
int head(int a[]) { return a[0]; }
int second_level(int a[]) { return head(a) + a[1]; }
int main() {
    int v[2];
    v[0] = 40;
    v[1] = 2;
    print_int(second_level(v));
    print_char(10);
    return 0;
}`)
	if got != "42\n" {
		t.Errorf("output = %q", got)
	}
}

func TestArrayRefQuicksort(t *testing.T) {
	// Recursion + two reference arrays: an in-place quicksort.
	got := run(t, `
void qsort_range(int a[], int lo, int hi) {
    if (lo >= hi) { return; }
    int pivot = a[hi];
    int i = lo - 1;
    int j;
    for (j = lo; j < hi; j = j + 1) {
        if (a[j] < pivot) {
            i = i + 1;
            int t = a[i];
            a[i] = a[j];
            a[j] = t;
        }
    }
    int t = a[i+1];
    a[i+1] = a[hi];
    a[hi] = t;
    qsort_range(a, lo, i);
    qsort_range(a, i + 2, hi);
}
int data[16];
int main() {
    int i;
    for (i = 0; i < 16; i = i + 1) {
        data[i] = (i * 7 + 3) % 16;
    }
    qsort_range(data, 0, 15);
    int sorted = 1;
    for (i = 1; i < 16; i = i + 1) {
        if (data[i-1] > data[i]) { sorted = 0; }
    }
    print_int(sorted); print_char(32);
    print_int(data[0]); print_char(32);
    print_int(data[15]);
    print_char(10);
    return 0;
}`)
	if got != "1 0 15\n" {
		t.Errorf("output = %q", got)
	}
}

func TestArrayRefDoubleElems(t *testing.T) {
	got := run(t, `
double dot(double x[], double y[], int n) {
    double s = 0.0;
    int i;
    for (i = 0; i < n; i = i + 1) { s = s + x[i] * y[i]; }
    return s;
}
int main() {
    double a[4];
    double b[4];
    int i;
    for (i = 0; i < 4; i = i + 1) {
        a[i] = i + 1;
        b[i] = 0.5;
    }
    print_double(dot(a, b, 4));   // (1+2+3+4)*0.5 = 5
    print_char(10);
    return 0;
}`)
	if got != "5\n" {
		t.Errorf("output = %q", got)
	}
}

func TestArrayRefErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"scalar arg", "int f(int a[]) { return a[0]; } int main() { return f(3); }",
			"must be an array name"},
		{"kind mismatch", "int f(int a[]) { return a[0]; } double d[3]; int main() { return f(d); }",
			"wants"},
		{"dim mismatch", "int f(int a[][4]) { return a[0][0]; } int g[3][5]; int main() { return f(g); }",
			"inner dimensions"},
		{"rank mismatch", "int f(int a[]) { return a[0]; } int g[3][5]; int main() { return f(g); }",
			"wants"},
		{"not an array", "int f(int a[]) { return a[0]; } int main() { int x = 1; return f(x); }",
			"is not an array"},
		{"value array param", "int f(int a[3]) { return a[0]; } int main() { return 0; }",
			"empty first dimension"},
		{"missing first dim ok, bad inner", "int f(int a[][0]) { return 0; } int main() { return 0; }",
			"bad array dimension"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src, Options{})
			if err == nil {
				t.Fatalf("compiled, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestArrayRefManyArgsStackFallback(t *testing.T) {
	// More than four arguments: references travel through the stack
	// calling convention too.
	got := run(t, `
int combine(int a[], int b[], int n, int scale, int offset) {
    int s = 0;
    int i;
    for (i = 0; i < n; i = i + 1) { s = s + a[i] * scale + b[i] + offset; }
    return s;
}
int x[3];
int y[3];
int main() {
    int i;
    for (i = 0; i < 3; i = i + 1) { x[i] = i; y[i] = 10 * i; }
    print_int(combine(x, y, 3, 2, 1));  // sum(2i + 10i + 1) = 12*3+3 = 39
    print_char(10);
    return 0;
}`)
	if got != "39\n" {
		t.Errorf("output = %q", got)
	}
}
