package minic

// Optimization passes. Constant folding runs by default (the MIPS compilers
// the paper used ran at -O3); loop unrolling is opt-in via Options.Unroll,
// reproducing the paper's observation that compiler loop unrolling
// "decreases the recurrences created by loop counters, thus increasing the
// parallelism in the program" — a second-order effect the ablation
// experiment E7 measures.

// foldProgram folds constants in every function body and global
// initializer.
func foldProgram(p *Program) {
	for _, g := range p.Globals {
		if g.Init != nil {
			g.Init = foldExpr(g.Init)
		}
	}
	for _, fn := range p.Funcs {
		foldStmt(fn.Body)
	}
}

func foldStmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		for _, inner := range st.Stmts {
			foldStmt(inner)
		}
	case *DeclStmt:
		if st.Decl.Init != nil {
			st.Decl.Init = foldExpr(st.Decl.Init)
		}
	case *AssignStmt:
		st.Target = foldExpr(st.Target)
		st.Value = foldExpr(st.Value)
	case *IfStmt:
		st.Cond = foldExpr(st.Cond)
		foldStmt(st.Then)
		if st.Else != nil {
			foldStmt(st.Else)
		}
	case *WhileStmt:
		st.Cond = foldExpr(st.Cond)
		foldStmt(st.Body)
	case *ForStmt:
		if st.Init != nil {
			foldStmt(st.Init)
		}
		if st.Cond != nil {
			st.Cond = foldExpr(st.Cond)
		}
		if st.Post != nil {
			foldStmt(st.Post)
		}
		foldStmt(st.Body)
	case *ReturnStmt:
		if st.Value != nil {
			st.Value = foldExpr(st.Value)
		}
	case *ExprStmt:
		st.X = foldExpr(st.X)
	}
}

func foldExpr(e Expr) Expr {
	switch v := e.(type) {
	case *IndexExpr:
		for i := range v.Indices {
			v.Indices[i] = foldExpr(v.Indices[i])
		}
		return v
	case *CallExpr:
		for i := range v.Args {
			v.Args[i] = foldExpr(v.Args[i])
		}
		return v
	case *CastExpr:
		v.X = foldExpr(v.X)
		switch x := v.X.(type) {
		case *IntLit:
			if v.To.Kind == TypeDouble {
				return &FloatLit{Value: float64(x.Value), Line: x.Line}
			}
			return x
		case *FloatLit:
			if v.To.Kind == TypeInt {
				return &IntLit{Value: int64(int32(x.Value)), Line: x.Line}
			}
			return x
		}
		return v
	case *UnaryExpr:
		v.X = foldExpr(v.X)
		switch x := v.X.(type) {
		case *IntLit:
			switch v.Op {
			case tokMinus:
				return &IntLit{Value: -x.Value, Line: x.Line}
			case tokNot:
				return &IntLit{Value: b2i(x.Value == 0), Line: x.Line}
			}
		case *FloatLit:
			if v.Op == tokMinus {
				return &FloatLit{Value: -x.Value, Line: x.Line}
			}
		}
		return v
	case *BinaryExpr:
		v.L = foldExpr(v.L)
		v.R = foldExpr(v.R)
		li, lInt := v.L.(*IntLit)
		ri, rInt := v.R.(*IntLit)
		if lInt && rInt {
			if out, ok := foldIntOp(v.Op, li.Value, ri.Value); ok {
				return &IntLit{Value: out, Line: v.Line}
			}
			return v
		}
		lf, lFl := v.L.(*FloatLit)
		rf, rFl := v.R.(*FloatLit)
		if lFl && rFl {
			if out, isBool, ok := foldFloatOp(v.Op, lf.Value, rf.Value); ok {
				if isBool {
					return &IntLit{Value: out.(int64), Line: v.Line}
				}
				return &FloatLit{Value: out.(float64), Line: v.Line}
			}
		}
		return v
	}
	return e
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// foldIntOp evaluates an int binary operator with 32-bit wraparound
// semantics matching the generated code.
func foldIntOp(op tokKind, a, b int64) (int64, bool) {
	x, y := int32(a), int32(b)
	switch op {
	case tokPlus:
		return int64(x + y), true
	case tokMinus:
		return int64(x - y), true
	case tokStar:
		return int64(x * y), true
	case tokSlash:
		if y == 0 {
			return 0, false // leave for runtime semantics
		}
		return int64(x / y), true
	case tokPercent:
		if y == 0 {
			return 0, false
		}
		return int64(x % y), true
	case tokAmp:
		return int64(x & y), true
	case tokPipe:
		return int64(x | y), true
	case tokCaret:
		return int64(x ^ y), true
	case tokShl:
		return int64(x << (uint32(y) & 31)), true
	case tokShr:
		return int64(x >> (uint32(y) & 31)), true
	case tokEq:
		return b2i(x == y), true
	case tokNe:
		return b2i(x != y), true
	case tokLt:
		return b2i(x < y), true
	case tokLe:
		return b2i(x <= y), true
	case tokGt:
		return b2i(x > y), true
	case tokGe:
		return b2i(x >= y), true
	case tokAndAnd:
		return b2i(x != 0 && y != 0), true
	case tokOrOr:
		return b2i(x != 0 || y != 0), true
	}
	return 0, false
}

func foldFloatOp(op tokKind, a, b float64) (any, bool, bool) {
	switch op {
	case tokPlus:
		return a + b, false, true
	case tokMinus:
		return a - b, false, true
	case tokStar:
		return a * b, false, true
	case tokSlash:
		return a / b, false, true
	case tokEq:
		return b2i(a == b), true, true
	case tokNe:
		return b2i(a != b), true, true
	case tokLt:
		return b2i(a < b), true, true
	case tokLe:
		return b2i(a <= b), true, true
	case tokGt:
		return b2i(a > b), true, true
	case tokGe:
		return b2i(a >= b), true, true
	}
	return nil, false, false
}

// unrollProgram applies loop unrolling by the given factor to every
// eligible for-loop. A loop is eligible when it has the canonical shape
//
//	for (i = C0; i < C1; i = i + C2) body      (also <=)
//
// with literal bounds, a strictly positive literal step, a trip count
// divisible by the factor, no writes to i inside the body, and no continue
// statements (break is fine: it leaves the whole loop in both forms). The
// transformed loop repeats {body; i = i + C2} factor times per iteration
// and re-checks the condition once per group — trip-count divisibility
// makes that exact.
func unrollProgram(p *Program, factor int) {
	if factor <= 1 {
		return
	}
	for _, fn := range p.Funcs {
		unrollStmt(fn.Body, factor)
	}
}

func unrollStmt(s Stmt, factor int) {
	switch st := s.(type) {
	case *Block:
		for i, inner := range st.Stmts {
			unrollStmt(inner, factor)
			if f, ok := inner.(*ForStmt); ok {
				if u := tryUnroll(f, factor); u != nil {
					st.Stmts[i] = u
				}
			}
		}
	case *IfStmt:
		unrollStmt(st.Then, factor)
		if st.Else != nil {
			unrollStmt(st.Else, factor)
		}
	case *WhileStmt:
		unrollStmt(st.Body, factor)
	case *ForStmt:
		unrollStmt(st.Body, factor)
	}
}

// tryUnroll returns the unrolled replacement loop, or nil when the loop is
// not eligible.
func tryUnroll(f *ForStmt, factor int) Stmt {
	sym, c0, ok := unrollInit(f.Init)
	if !ok {
		return nil
	}
	c1, inclusive, ok := unrollCond(f.Cond, sym)
	if !ok {
		return nil
	}
	c2, ok := unrollPost(f.Post, sym)
	if !ok || c2 <= 0 {
		return nil
	}
	hi := c1
	if inclusive {
		hi++
	}
	if hi <= c0 {
		return nil
	}
	span := hi - c0
	if span%c2 != 0 {
		return nil
	}
	trips := span / c2
	if trips%int64(factor) != 0 {
		return nil
	}
	if writesVar(f.Body, sym) || hasContinue(f.Body) || hasLoop(f.Body) {
		return nil // innermost counted loops only, like the MIPS compiler
	}

	group := &Block{}
	for k := 0; k < factor; k++ {
		group.Stmts = append(group.Stmts, f.Body)
		group.Stmts = append(group.Stmts, f.Post)
	}
	return &ForStmt{Init: f.Init, Cond: f.Cond, Post: nil, Body: group}
}

// unrollInit recognizes `int i = C` or `i = C`.
func unrollInit(s Stmt) (*Symbol, int64, bool) {
	switch st := s.(type) {
	case *DeclStmt:
		if st.Decl.Sym == nil || !st.Decl.Sym.Type.IsScalar() || st.Decl.Sym.Type.Kind != TypeInt {
			return nil, 0, false
		}
		if lit, ok := st.Decl.Init.(*IntLit); ok {
			return st.Decl.Sym, lit.Value, true
		}
	case *AssignStmt:
		id, ok := st.Target.(*Ident)
		if !ok || id.Sym == nil || id.Sym.Type.Kind != TypeInt || id.Sym.Type.IsArray() {
			return nil, 0, false
		}
		if lit, ok := st.Value.(*IntLit); ok {
			return id.Sym, lit.Value, true
		}
	}
	return nil, 0, false
}

// unrollCond recognizes `i < C` or `i <= C`.
func unrollCond(e Expr, sym *Symbol) (int64, bool, bool) {
	b, ok := e.(*BinaryExpr)
	if !ok || (b.Op != tokLt && b.Op != tokLe) {
		return 0, false, false
	}
	id, ok := b.L.(*Ident)
	if !ok || id.Sym != sym {
		return 0, false, false
	}
	lit, ok := b.R.(*IntLit)
	if !ok {
		return 0, false, false
	}
	return lit.Value, b.Op == tokLe, true
}

// unrollPost recognizes `i = i + C`.
func unrollPost(s Stmt, sym *Symbol) (int64, bool) {
	st, ok := s.(*AssignStmt)
	if !ok {
		return 0, false
	}
	id, ok := st.Target.(*Ident)
	if !ok || id.Sym != sym {
		return 0, false
	}
	b, ok := st.Value.(*BinaryExpr)
	if !ok || b.Op != tokPlus {
		return 0, false
	}
	l, ok := b.L.(*Ident)
	if !ok || l.Sym != sym {
		return 0, false
	}
	lit, ok := b.R.(*IntLit)
	if !ok {
		return 0, false
	}
	return lit.Value, true
}

// writesVar reports whether any statement in the tree assigns to sym.
func writesVar(s Stmt, sym *Symbol) bool {
	switch st := s.(type) {
	case *Block:
		for _, inner := range st.Stmts {
			if writesVar(inner, sym) {
				return true
			}
		}
	case *AssignStmt:
		if id, ok := st.Target.(*Ident); ok && id.Sym == sym {
			return true
		}
	case *DeclStmt:
		return st.Decl.Sym == sym
	case *IfStmt:
		if writesVar(st.Then, sym) {
			return true
		}
		if st.Else != nil {
			return writesVar(st.Else, sym)
		}
	case *WhileStmt:
		return writesVar(st.Body, sym)
	case *ForStmt:
		if st.Init != nil && writesVar(st.Init, sym) {
			return true
		}
		if st.Post != nil && writesVar(st.Post, sym) {
			return true
		}
		return writesVar(st.Body, sym)
	}
	return false
}

// hasLoop reports whether the tree contains a nested loop.
func hasLoop(s Stmt) bool {
	switch st := s.(type) {
	case *WhileStmt, *ForStmt:
		return true
	case *Block:
		for _, inner := range st.Stmts {
			if hasLoop(inner) {
				return true
			}
		}
	case *IfStmt:
		if hasLoop(st.Then) {
			return true
		}
		if st.Else != nil {
			return hasLoop(st.Else)
		}
	}
	return false
}

// hasContinue reports whether the tree contains a continue that would bind
// to the loop being unrolled (nested loops capture their own continues).
func hasContinue(s Stmt) bool {
	switch st := s.(type) {
	case *ContinueStmt:
		return true
	case *Block:
		for _, inner := range st.Stmts {
			if hasContinue(inner) {
				return true
			}
		}
	case *IfStmt:
		if hasContinue(st.Then) {
			return true
		}
		if st.Else != nil {
			return hasContinue(st.Else)
		}
	}
	// while/for bodies capture their own continues.
	return false
}
