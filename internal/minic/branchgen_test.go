package minic

import "testing"

// Branch-context code generation: fused compare-and-branch forms, nested
// short-circuit conditions, FP compare branches, constant conditions.

func TestBranchIntCompares(t *testing.T) {
	got := run(t, `
int classify(int x) {
    if (x == 0) { return 1; }
    if (x != 7) { if (x < 0) { return 2; } }
    if (x >= 100) { return 3; }
    if (x > 10) { return 4; }
    if (x <= 10) { return 5; }
    return 6;
}
int main() {
    print_int(classify(0));
    print_int(classify(-5));
    print_int(classify(150));
    print_int(classify(50));
    print_int(classify(3));
    print_int(classify(7));
    print_char(10);
    return 0;
}`)
	if got != "123455\n" {
		t.Errorf("output = %q", got)
	}
}

func TestBranchFPCompares(t *testing.T) {
	got := run(t, `
int classify(double x) {
    if (x == 0.0) { return 1; }
    if (x != x + 0.0) { return 9; }
    if (x < -1.0) { return 2; }
    if (x >= 100.0) { return 3; }
    if (x > 10.0) { return 4; }
    if (x <= 10.0) { return 5; }
    return 6;
}
int main() {
    print_int(classify(0.0));
    print_int(classify(-2.5));
    print_int(classify(150.0));
    print_int(classify(50.0));
    print_int(classify(3.25));
    print_char(10);
    return 0;
}`)
	if got != "12345\n" {
		t.Errorf("output = %q", got)
	}
}

func TestBranchNestedLogic(t *testing.T) {
	got := run(t, `
int inside(int x, int y) {
    // (0<x && x<10) || (0<y && y<10), with a negation thrown in
    if ((0 < x && x < 10) || (0 < y && y < 10)) { return 1; }
    return 0;
}
int notted(int x) {
    if (!(x > 5)) { return 1; }
    return 0;
}
int main() {
    print_int(inside(5, 50));
    print_int(inside(50, 5));
    print_int(inside(50, 50));
    print_int(inside(5, 5));
    print_int(notted(3));
    print_int(notted(9));
    print_char(10);
    return 0;
}`)
	if got != "110110\n" {
		t.Errorf("output = %q", got)
	}
}

func TestBranchTrueTargetsInWhile(t *testing.T) {
	// || in a loop condition exercises genBranch's branch-if-true paths.
	got := run(t, `
int main() {
    int i = 0;
    int j = 20;
    while (i < 5 || j > 18) {
        i = i + 1;
        j = j - 1;
    }
    print_int(i); print_char(32); print_int(j);
    print_char(10);
    return 0;
}`)
	if got != "5 15\n" {
		t.Errorf("output = %q", got)
	}
}

func TestBranchAndInIfTrueSense(t *testing.T) {
	// && under !: branch-if-true of a conjunction.
	got := run(t, `
int main() {
    int a = 3;
    int b = 4;
    if (!(a < 5 && b < 2)) { print_str("yes"); } else { print_str("no"); }
    print_char(10);
    return 0;
}`)
	if got != "yes\n" {
		t.Errorf("output = %q", got)
	}
}

func TestBranchConstantConditions(t *testing.T) {
	// Constant-true and constant-false conditions survive folding (the
	// folder rewrites them to literals; genBranch's IntLit path handles
	// them) — verified with folding disabled too.
	src := `
int main() {
    if (1) { print_str("a"); }
    if (0) { print_str("b"); }
    while (0) { print_str("c"); }
    if (2 > 1) { print_str("d"); }
    print_char(10);
    return 0;
}`
	for _, opts := range []Options{{}, {NoFold: true}} {
		got := runProgram(t, src, opts)
		if got != "ad\n" {
			t.Errorf("opts %+v: output = %q", opts, got)
		}
	}
}

func TestBranchMixedFPLogic(t *testing.T) {
	got := run(t, `
int main() {
    double x = 2.5;
    int n = 3;
    if (x > 1.0 && n < 10) { print_str("both"); }
    if (x < 1.0 || n == 3) { print_str("-or"); }
    print_char(10);
    return 0;
}`)
	if got != "both-or\n" {
		t.Errorf("output = %q", got)
	}
}

func TestDeepMixedSpillPressure(t *testing.T) {
	// Force int-pool spilling in a non-leaf function (calls shrink
	// nothing, but the right-nested expression exceeds ten temps) and
	// FP spill reloads used as operands.
	got := run(t, `
int id(int x) { return x; }
int main() {
    int a = 1;
    print_int(a+(id(a)+(a+(a+(a+(a+(a+(a+(a+(a+(a+(a+(id(a)+(a+(a+a)))))))))))))));
    print_char(10);
    double d = 0.25;
    double r = d+(d+(d+(d+(d+(d+(d+(d+(d+(d+(d+(d+(d+(d+(d+(d+(d+d))))))))))))))));
    print_double(r);
    print_char(10);
    return 0;
}`)
	if got != "16\n4.5\n" {
		t.Errorf("output = %q", got)
	}
}
