// Package minic implements a compiler for MiniC, a small imperative
// C-like language, targeting the ISA of package isa via the assembler of
// package asm.
//
// The paper analyzes "ordinary programs ... written in an imperative
// language such as C or FORTRAN", compiled by the MIPS compilers. MiniC is
// our stand-in for that toolchain: its code generator produces the same
// kinds of dependency structure those compilers emitted — register reuse
// across expressions, loop-counter recurrences, stack-frame traffic for
// locals and spills, dense array address arithmetic — which is exactly what
// the Paragraph analysis observes. An optional loop-unrolling pass
// reproduces the paper's observation that compiler transformations are a
// second-order effect on measured parallelism.
//
// The language: int and double scalars, multi-dimensional arrays (global
// and stack-allocated local), functions with value parameters and
// recursion, if/else, while, for, break/continue, the usual C operators
// with short-circuit && and ||, and builtin output functions (print_int,
// print_double, print_char, print_str).
package minic

import (
	"fmt"
	"strings"
)

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokIntLit
	tokFloatLit
	tokStringLit

	// Keywords.
	tokInt
	tokDouble
	tokVoid
	tokIf
	tokElse
	tokWhile
	tokFor
	tokReturn
	tokBreak
	tokContinue

	// Punctuation and operators.
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokSemi
	tokComma
	tokAssign
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokEq
	tokNe
	tokLt
	tokLe
	tokGt
	tokGe
	tokAndAnd
	tokOrOr
	tokNot
	tokAmp
	tokPipe
	tokCaret
	tokShl
	tokShr
)

var keywords = map[string]tokKind{
	"int": tokInt, "double": tokDouble, "void": tokVoid,
	"if": tokIf, "else": tokElse, "while": tokWhile, "for": tokFor,
	"return": tokReturn, "break": tokBreak, "continue": tokContinue,
}

var tokNames = map[tokKind]string{
	tokEOF: "end of file", tokIdent: "identifier", tokIntLit: "integer literal",
	tokFloatLit: "float literal", tokStringLit: "string literal",
	tokInt: "'int'", tokDouble: "'double'", tokVoid: "'void'",
	tokIf: "'if'", tokElse: "'else'", tokWhile: "'while'", tokFor: "'for'",
	tokReturn: "'return'", tokBreak: "'break'", tokContinue: "'continue'",
	tokLParen: "'('", tokRParen: "')'", tokLBrace: "'{'", tokRBrace: "'}'",
	tokLBracket: "'['", tokRBracket: "']'", tokSemi: "';'", tokComma: "','",
	tokAssign: "'='", tokPlus: "'+'", tokMinus: "'-'", tokStar: "'*'",
	tokSlash: "'/'", tokPercent: "'%'", tokEq: "'=='", tokNe: "'!='",
	tokLt: "'<'", tokLe: "'<='", tokGt: "'>'", tokGe: "'>='",
	tokAndAnd: "'&&'", tokOrOr: "'||'", tokNot: "'!'",
	tokAmp: "'&'", tokPipe: "'|'", tokCaret: "'^'", tokShl: "'<<'", tokShr: "'>>'",
}

func (k tokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	line int
}

// Error is a compilation diagnostic with a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// lexer tokenizes MiniC source.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(i int) byte {
	if l.pos+i >= len(l.src) {
		return 0
	}
	return l.src[l.pos+i]
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.at(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.at(1) == '*':
			start := l.line
			l.pos += 2
			for {
				if l.pos >= len(l.src) {
					return errf(start, "unterminated block comment")
				}
				if l.src[l.pos] == '\n' {
					l.line++
				}
				if l.src[l.pos] == '*' && l.at(1) == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	start, line := l.pos, l.line
	c := l.src[l.pos]

	switch {
	case isLetter(c):
		for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if kw, ok := keywords[text]; ok {
			return token{kind: kw, text: text, line: line}, nil
		}
		return token{kind: tokIdent, text: text, line: line}, nil

	case isDigit(c):
		isFloat := false
		if c == '0' && (l.at(1) == 'x' || l.at(1) == 'X') {
			l.pos += 2
			for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
				l.pos++
			}
			return token{kind: tokIntLit, text: l.src[start:l.pos], line: line}, nil
		}
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		if l.peekByte() == '.' && isDigit(l.at(1)) {
			isFloat = true
			l.pos++
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
		if c := l.peekByte(); c == 'e' || c == 'E' {
			save := l.pos
			l.pos++
			if c := l.peekByte(); c == '+' || c == '-' {
				l.pos++
			}
			if isDigit(l.peekByte()) {
				isFloat = true
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			} else {
				l.pos = save
			}
		}
		kind := tokIntLit
		if isFloat {
			kind = tokFloatLit
		}
		return token{kind: kind, text: l.src[start:l.pos], line: line}, nil

	case c == '"':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) || l.src[l.pos] == '\n' {
				return token{}, errf(line, "unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '"' {
				l.pos++
				break
			}
			if ch == '\\' {
				l.pos++
				switch l.peekByte() {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case '0':
					b.WriteByte(0)
				default:
					return token{}, errf(line, "unknown escape \\%c", l.peekByte())
				}
				l.pos++
				continue
			}
			b.WriteByte(ch)
			l.pos++
		}
		return token{kind: tokStringLit, text: b.String(), line: line}, nil
	}

	// Operators, longest first.
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	twoCharOps := map[string]tokKind{
		"==": tokEq, "!=": tokNe, "<=": tokLe, ">=": tokGe,
		"&&": tokAndAnd, "||": tokOrOr, "<<": tokShl, ">>": tokShr,
	}
	if kind, ok := twoCharOps[two]; ok {
		l.pos += 2
		return token{kind: kind, text: two, line: line}, nil
	}
	oneCharOps := map[byte]tokKind{
		'(': tokLParen, ')': tokRParen, '{': tokLBrace, '}': tokRBrace,
		'[': tokLBracket, ']': tokRBracket, ';': tokSemi, ',': tokComma,
		'=': tokAssign, '+': tokPlus, '-': tokMinus, '*': tokStar,
		'/': tokSlash, '%': tokPercent, '<': tokLt, '>': tokGt,
		'!': tokNot, '&': tokAmp, '|': tokPipe, '^': tokCaret,
	}
	if kind, ok := oneCharOps[c]; ok {
		l.pos++
		return token{kind: kind, text: string(c), line: line}, nil
	}
	return token{}, errf(line, "unexpected character %q", c)
}

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// lexAll tokenizes the entire source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
