package minic

import (
	"fmt"
	"strings"
)

// TypeKind is the scalar base kind of a MiniC type.
type TypeKind uint8

const (
	TypeVoid TypeKind = iota
	TypeInt
	TypeDouble
)

// Type describes a MiniC type: a scalar kind plus optional array
// dimensions. Arrays are rectangular with compile-time-constant dimensions
// and decay to their element type on full indexing; partial indexing and
// pointers are not in the language.
type Type struct {
	Kind TypeKind
	Dims []int
}

// IsArray reports whether the type has array dimensions.
func (t Type) IsArray() bool { return len(t.Dims) > 0 }

// IsArrayRef reports whether the type is an array reference (a parameter
// declared with an empty first dimension, `int a[]` or `double m[][20]`):
// the callee receives the address of the caller's array, C's pointer-decay
// semantics.
func (t Type) IsArrayRef() bool { return len(t.Dims) > 0 && t.Dims[0] == 0 }

// IsScalar reports whether the type is a non-void scalar.
func (t Type) IsScalar() bool { return !t.IsArray() && t.Kind != TypeVoid }

// Elem returns the scalar element type of an array type.
func (t Type) Elem() Type { return Type{Kind: t.Kind} }

// ElemSize returns the storage size of one element in bytes.
func (t Type) ElemSize() int {
	if t.Kind == TypeDouble {
		return 8
	}
	return 4
}

// Size returns the total storage size in bytes.
func (t Type) Size() int {
	n := t.ElemSize()
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

func (t Type) String() string {
	var b strings.Builder
	switch t.Kind {
	case TypeVoid:
		b.WriteString("void")
	case TypeInt:
		b.WriteString("int")
	case TypeDouble:
		b.WriteString("double")
	}
	for _, d := range t.Dims {
		fmt.Fprintf(&b, "[%d]", d)
	}
	return b.String()
}

// symKind distinguishes storage classes.
type symKind uint8

const (
	symGlobal symKind = iota
	symLocal
	symParam
)

// Symbol is a resolved variable.
type Symbol struct {
	Name string
	Type Type
	Kind symKind

	// Label is the data-segment label for globals.
	Label string
	// Offset is the frame-pointer-relative offset for locals and
	// parameters (assigned during code generation).
	Offset int32
}

// Program is a parsed and (after analyze) type-checked compilation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl

	funcsByName map[string]*FuncDecl
}

// VarDecl declares a variable; Init is non-nil only for scalars with
// initializers.
type VarDecl struct {
	Name string
	Type Type
	Init Expr
	Line int

	Sym *Symbol
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    Type
	Params []*VarDecl
	Body   *Block
	Line   int
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// Block is a brace-delimited statement list with its own scope.
type Block struct {
	Stmts []Stmt
}

// DeclStmt is a local variable declaration.
type DeclStmt struct {
	Decl *VarDecl
}

// AssignStmt stores Value into the lvalue Target (an *Ident or *IndexExpr).
type AssignStmt struct {
	Target Expr
	Value  Expr
	Line   int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
}

// ForStmt is a C-style for loop; Init and Post may be nil.
type ForStmt struct {
	Init Stmt // AssignStmt or DeclStmt or ExprStmt
	Cond Expr // may be nil (infinite)
	Post Stmt
	Body Stmt
}

// ReturnStmt returns Value (nil for void returns).
type ReturnStmt struct {
	Value Expr
	Line  int
}

// ExprStmt evaluates X for its side effects (calls).
type ExprStmt struct {
	X Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt jumps to the innermost loop's post/condition.
type ContinueStmt struct{ Line int }

func (*Block) stmtNode()        {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expr is implemented by all expression nodes. Type returns the checked
// type (valid after analyze).
type Expr interface {
	exprNode()
	Type() Type
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Line  int
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Value float64
	Line  int
}

// StrLit is a string literal; allowed only as the argument of print_str.
type StrLit struct {
	Value string
	Line  int
}

// Ident is a variable reference.
type Ident struct {
	Name string
	Line int
	Sym  *Symbol
}

// IndexExpr is a fully indexed array access: base[e1][e2]...
type IndexExpr struct {
	Base    *Ident
	Indices []Expr
	Line    int
}

// BinaryExpr is a binary operation; Op is the operator token kind.
type BinaryExpr struct {
	Op   tokKind
	L, R Expr
	Line int

	typ Type
}

// UnaryExpr is unary minus or logical not.
type UnaryExpr struct {
	Op   tokKind
	X    Expr
	Line int

	typ Type
}

// CallExpr is a function or builtin call.
type CallExpr struct {
	Name string
	Args []Expr
	Line int

	fn  *FuncDecl // nil for builtins
	typ Type
}

// CastExpr converts between int and double; inserted by the type checker.
type CastExpr struct {
	X  Expr
	To Type
}

// ArrayRefExpr passes an array's address as a call argument; inserted by
// the type checker when an argument binds to an array-reference parameter.
type ArrayRefExpr struct {
	Base *Ident
	To   Type // the parameter's reference type
}

func (*IntLit) exprNode()       {}
func (*FloatLit) exprNode()     {}
func (*StrLit) exprNode()       {}
func (*Ident) exprNode()        {}
func (*IndexExpr) exprNode()    {}
func (*BinaryExpr) exprNode()   {}
func (*UnaryExpr) exprNode()    {}
func (*CallExpr) exprNode()     {}
func (*CastExpr) exprNode()     {}
func (*ArrayRefExpr) exprNode() {}

// Type implementations.

func (*IntLit) Type() Type   { return Type{Kind: TypeInt} }
func (*FloatLit) Type() Type { return Type{Kind: TypeDouble} }
func (*StrLit) Type() Type   { return Type{Kind: TypeVoid} }
func (e *Ident) Type() Type {
	if e.Sym == nil {
		return Type{}
	}
	return e.Sym.Type
}
func (e *IndexExpr) Type() Type {
	if e.Base.Sym == nil {
		return Type{}
	}
	return e.Base.Sym.Type.Elem()
}
func (e *BinaryExpr) Type() Type   { return e.typ }
func (e *UnaryExpr) Type() Type    { return e.typ }
func (e *CallExpr) Type() Type     { return e.typ }
func (e *CastExpr) Type() Type     { return e.To }
func (e *ArrayRefExpr) Type() Type { return e.To }
