package minic

import "strconv"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses MiniC source into an unchecked AST. Callers normally use
// Compile, which also type-checks and generates code.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.program()
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(k tokKind) bool {
	if p.cur().kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.cur().kind != k {
		return token{}, errf(p.cur().line, "expected %v, found %v", k, p.cur().kind)
	}
	return p.advance(), nil
}

func (p *parser) program() (*Program, error) {
	prog := &Program{funcsByName: make(map[string]*FuncDecl)}
	for p.cur().kind != tokEOF {
		base, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if p.cur().kind == tokLParen {
			fn, err := p.funcRest(base, name)
			if err != nil {
				return nil, err
			}
			if _, dup := prog.funcsByName[fn.Name]; dup {
				return nil, errf(fn.Line, "function %q redefined", fn.Name)
			}
			prog.Funcs = append(prog.Funcs, fn)
			prog.funcsByName[fn.Name] = fn
			continue
		}
		// Global variable(s).
		for {
			decl, err := p.varRest(base, name)
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, decl)
			if p.accept(tokComma) {
				name, err = p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				continue
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
			break
		}
	}
	return prog, nil
}

// typeSpec parses "int", "double" or "void".
func (p *parser) typeSpec() (Type, error) {
	switch p.cur().kind {
	case tokInt:
		p.advance()
		return Type{Kind: TypeInt}, nil
	case tokDouble:
		p.advance()
		return Type{Kind: TypeDouble}, nil
	case tokVoid:
		p.advance()
		return Type{Kind: TypeVoid}, nil
	}
	return Type{}, errf(p.cur().line, "expected type, found %v", p.cur().kind)
}

// varRest parses the remainder of one variable declarator: optional array
// dimensions and initializer.
func (p *parser) varRest(base Type, name token) (*VarDecl, error) {
	if base.Kind == TypeVoid {
		return nil, errf(name.line, "variable %q cannot have void type", name.text)
	}
	typ := Type{Kind: base.Kind}
	for p.accept(tokLBracket) {
		dim, err := p.expect(tokIntLit)
		if err != nil {
			return nil, errf(p.cur().line, "array dimension must be an integer constant")
		}
		n, err := strconv.ParseInt(dim.text, 0, 32)
		if err != nil || n <= 0 {
			return nil, errf(dim.line, "bad array dimension %q", dim.text)
		}
		typ.Dims = append(typ.Dims, int(n))
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
	}
	decl := &VarDecl{Name: name.text, Type: typ, Line: name.line}
	if p.accept(tokAssign) {
		if typ.IsArray() {
			return nil, errf(name.line, "array %q cannot have an initializer", name.text)
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		decl.Init = init
	}
	return decl, nil
}

// funcRest parses a function definition after its return type and name.
func (p *parser) funcRest(ret Type, name token) (*FuncDecl, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.text, Ret: ret, Line: name.line}
	if !p.accept(tokRParen) {
		for {
			ptype, err := p.typeSpec()
			if err != nil {
				return nil, err
			}
			if ptype.Kind == TypeVoid {
				return nil, errf(p.cur().line, "parameters cannot be void")
			}
			pname, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			// Array-reference parameters: `int a[]`, `double m[][20]`.
			if p.accept(tokLBracket) {
				if _, err := p.expect(tokRBracket); err != nil {
					return nil, errf(pname.line, "array parameter %q needs an empty first dimension", pname.text)
				}
				ptype.Dims = append(ptype.Dims, 0)
				for p.accept(tokLBracket) {
					dim, err := p.expect(tokIntLit)
					if err != nil {
						return nil, errf(pname.line, "inner dimensions of %q must be integer constants", pname.text)
					}
					n, err := strconv.ParseInt(dim.text, 0, 32)
					if err != nil || n <= 0 {
						return nil, errf(dim.line, "bad array dimension %q", dim.text)
					}
					ptype.Dims = append(ptype.Dims, int(n))
					if _, err := p.expect(tokRBracket); err != nil {
						return nil, err
					}
				}
			}
			fn.Params = append(fn.Params, &VarDecl{
				Name: pname.text, Type: ptype, Line: pname.line,
			})
			if p.accept(tokComma) {
				continue
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			break
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*Block, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept(tokRBrace) {
		if p.cur().kind == tokEOF {
			return nil, errf(p.cur().line, "unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch p.cur().kind {
	case tokLBrace:
		return p.block()
	case tokInt, tokDouble:
		base, _ := p.typeSpec()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		decl, err := p.varRest(base, name)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: decl}, nil
	case tokIf:
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s := &IfStmt{Cond: cond, Then: then}
		if p.accept(tokElse) {
			s.Else, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		return s, nil
	case tokWhile:
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case tokFor:
		return p.forStmt()
	case tokReturn:
		line := p.advance().line
		s := &ReturnStmt{Line: line}
		if !p.accept(tokSemi) {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Value = v
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
		}
		return s, nil
	case tokBreak:
		line := p.advance().line
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: line}, nil
	case tokContinue:
		line := p.advance().line
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: line}, nil
	case tokSemi:
		p.advance()
		return &Block{}, nil // empty statement
	}
	s, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return s, nil
}

// simpleStmt parses an assignment or expression statement, without the
// trailing semicolon (for use in for-clauses too).
func (p *parser) simpleStmt() (Stmt, error) {
	line := p.cur().line
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept(tokAssign) {
		switch lhs.(type) {
		case *Ident, *IndexExpr:
		default:
			return nil, errf(line, "left side of assignment is not assignable")
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Target: lhs, Value: rhs, Line: line}, nil
	}
	return &ExprStmt{X: lhs}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	p.advance() // for
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{}
	if !p.accept(tokSemi) {
		if p.cur().kind == tokInt || p.cur().kind == tokDouble {
			base, _ := p.typeSpec()
			name, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			decl, err := p.varRest(base, name)
			if err != nil {
				return nil, err
			}
			s.Init = &DeclStmt{Decl: decl}
		} else {
			init, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			s.Init = init
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
	}
	if !p.accept(tokSemi) {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
	}
	if p.cur().kind != tokRParen {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Operator precedence, lowest to highest, following C.
var binPrec = map[tokKind]int{
	tokOrOr:   1,
	tokAndAnd: 2,
	tokPipe:   3,
	tokCaret:  4,
	tokAmp:    5,
	tokEq:     6, tokNe: 6,
	tokLt: 7, tokLe: 7, tokGt: 7, tokGe: 7,
	tokShl: 8, tokShr: 8,
	tokPlus: 9, tokMinus: 9,
	tokStar: 10, tokSlash: 10, tokPercent: 10,
}

func (p *parser) expr() (Expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().kind
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		line := p.advance().line
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op, L: lhs, R: rhs, Line: line}
	}
}

func (p *parser) unary() (Expr, error) {
	switch p.cur().kind {
	case tokMinus:
		line := p.advance().line
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: tokMinus, X: x, Line: line}, nil
	case tokNot:
		line := p.advance().line
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: tokNot, X: x, Line: line}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	switch t := p.cur(); t.kind {
	case tokIntLit:
		p.advance()
		v, err := strconv.ParseInt(t.text, 0, 64)
		if err != nil {
			return nil, errf(t.line, "bad integer literal %q", t.text)
		}
		return &IntLit{Value: v, Line: t.line}, nil
	case tokFloatLit:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errf(t.line, "bad float literal %q", t.text)
		}
		return &FloatLit{Value: v, Line: t.line}, nil
	case tokStringLit:
		p.advance()
		return &StrLit{Value: t.text, Line: t.line}, nil
	case tokLParen:
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		p.advance()
		if p.cur().kind == tokLParen {
			p.advance()
			call := &CallExpr{Name: t.text, Line: t.line}
			if !p.accept(tokRParen) {
				for {
					arg, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if p.accept(tokComma) {
						continue
					}
					if _, err := p.expect(tokRParen); err != nil {
						return nil, err
					}
					break
				}
			}
			return call, nil
		}
		id := &Ident{Name: t.text, Line: t.line}
		if p.cur().kind != tokLBracket {
			return id, nil
		}
		idx := &IndexExpr{Base: id, Line: t.line}
		for p.accept(tokLBracket) {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			idx.Indices = append(idx.Indices, e)
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
		}
		return idx, nil
	}
	return nil, errf(p.cur().line, "expected expression, found %v", p.cur().kind)
}
