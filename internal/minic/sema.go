package minic

import "fmt"

// builtin describes one of the compiler's builtin I/O functions, which
// lower to the simulator's SPIM-style system calls.
type builtin struct {
	params []TypeKind
	ret    TypeKind
	str    bool // takes a single string literal instead of params
}

var builtins = map[string]builtin{
	"print_int":    {params: []TypeKind{TypeInt}, ret: TypeVoid},
	"print_double": {params: []TypeKind{TypeDouble}, ret: TypeVoid},
	"print_char":   {params: []TypeKind{TypeInt}, ret: TypeVoid},
	"print_str":    {str: true, ret: TypeVoid},
}

// checker performs symbol resolution and type checking.
type checker struct {
	prog   *Program
	scopes []map[string]*Symbol
	fn     *FuncDecl
	loops  int
}

// analyze resolves and type-checks the program in place.
func analyze(prog *Program) error {
	c := &checker{prog: prog}
	c.push()
	for _, g := range prog.Globals {
		if err := c.declareGlobal(g); err != nil {
			return err
		}
	}
	for _, fn := range prog.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*Symbol)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(sym *Symbol, line int) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		return errf(line, "%q redeclared in this scope", sym.Name)
	}
	top[sym.Name] = sym
	return nil
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) declareGlobal(g *VarDecl) error {
	if _, isFn := c.prog.funcsByName[g.Name]; isFn {
		return errf(g.Line, "%q declared as both function and variable", g.Name)
	}
	g.Sym = &Symbol{Name: g.Name, Type: g.Type, Kind: symGlobal, Label: "g_" + g.Name}
	if g.Init != nil {
		init, typ, err := c.expr(g.Init)
		if err != nil {
			return err
		}
		g.Init, err = c.coerce(init, typ, g.Type, g.Line)
		if err != nil {
			return err
		}
		if !isConstInit(g.Init) {
			return errf(g.Line, "global initializer for %q must be a constant", g.Name)
		}
	}
	return c.declare(g.Sym, g.Line)
}

// isConstInit reports whether e is a literal, possibly under casts and
// unary minus.
func isConstInit(e Expr) bool {
	switch v := e.(type) {
	case *IntLit, *FloatLit:
		return true
	case *CastExpr:
		return isConstInit(v.X)
	case *UnaryExpr:
		return v.Op == tokMinus && isConstInit(v.X)
	}
	return false
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	if fn.Ret.IsArray() {
		return errf(fn.Line, "function %q cannot return an array", fn.Name)
	}
	c.fn = fn
	c.push()
	for _, p := range fn.Params {
		if p.Type.IsArray() && !p.Type.IsArrayRef() {
			return errf(p.Line, "parameter %q cannot be an array by value; declare it as a reference (%s %s[])",
				p.Name, typeKindName(p.Type.Kind), p.Name)
		}
		p.Sym = &Symbol{Name: p.Name, Type: p.Type, Kind: symParam}
		if err := c.declare(p.Sym, p.Line); err != nil {
			return err
		}
	}
	err := c.stmt(fn.Body)
	c.pop()
	c.fn = nil
	return err
}

func (c *checker) stmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		c.push()
		defer c.pop()
		for _, inner := range st.Stmts {
			if err := c.stmt(inner); err != nil {
				return err
			}
		}
		return nil

	case *DeclStmt:
		d := st.Decl
		d.Sym = &Symbol{Name: d.Name, Type: d.Type, Kind: symLocal}
		if d.Init != nil {
			init, typ, err := c.expr(d.Init)
			if err != nil {
				return err
			}
			d.Init, err = c.coerce(init, typ, d.Type, d.Line)
			if err != nil {
				return err
			}
		}
		return c.declare(d.Sym, d.Line)

	case *AssignStmt:
		target, ttyp, err := c.expr(st.Target)
		if err != nil {
			return err
		}
		if !ttyp.IsScalar() {
			return errf(st.Line, "cannot assign to a whole array")
		}
		st.Target = target
		val, vtyp, err := c.expr(st.Value)
		if err != nil {
			return err
		}
		st.Value, err = c.coerce(val, vtyp, ttyp, st.Line)
		return err

	case *IfStmt:
		if err := c.condExpr(&st.Cond); err != nil {
			return err
		}
		if err := c.stmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.stmt(st.Else)
		}
		return nil

	case *WhileStmt:
		if err := c.condExpr(&st.Cond); err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.stmt(st.Body)

	case *ForStmt:
		c.push()
		defer c.pop()
		if st.Init != nil {
			if err := c.stmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.condExpr(&st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.stmt(st.Post); err != nil {
				return err
			}
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.stmt(st.Body)

	case *ReturnStmt:
		if c.fn.Ret.Kind == TypeVoid {
			if st.Value != nil {
				return errf(st.Line, "void function %q returns a value", c.fn.Name)
			}
			return nil
		}
		if st.Value == nil {
			return errf(st.Line, "function %q must return %v", c.fn.Name, c.fn.Ret)
		}
		val, typ, err := c.expr(st.Value)
		if err != nil {
			return err
		}
		st.Value, err = c.coerce(val, typ, c.fn.Ret, st.Line)
		return err

	case *ExprStmt:
		x, _, err := c.expr(st.X)
		if err != nil {
			return err
		}
		st.X = x
		return nil

	case *BreakStmt:
		if c.loops == 0 {
			return errf(st.Line, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loops == 0 {
			return errf(st.Line, "continue outside loop")
		}
		return nil
	}
	return fmt.Errorf("minic: unhandled statement %T", s)
}

// condExpr checks a condition: any int-valued expression.
func (c *checker) condExpr(e *Expr) error {
	x, typ, err := c.expr(*e)
	if err != nil {
		return err
	}
	if typ.Kind != TypeInt || typ.IsArray() {
		return errf(lineOf(x), "condition must be int, got %v", typ)
	}
	*e = x
	return nil
}

func typeKindName(k TypeKind) string {
	if k == TypeDouble {
		return "double"
	}
	return "int"
}

func lineOf(e Expr) int {
	switch v := e.(type) {
	case *IntLit:
		return v.Line
	case *FloatLit:
		return v.Line
	case *StrLit:
		return v.Line
	case *Ident:
		return v.Line
	case *IndexExpr:
		return v.Line
	case *BinaryExpr:
		return v.Line
	case *UnaryExpr:
		return v.Line
	case *CallExpr:
		return v.Line
	case *CastExpr:
		return lineOf(v.X)
	}
	return 0
}

// coerce inserts an implicit cast from `from` to `to` if needed.
func (c *checker) coerce(e Expr, from, to Type, line int) (Expr, error) {
	if from.IsArray() || to.IsArray() {
		return nil, errf(line, "cannot convert array types")
	}
	if from.Kind == to.Kind {
		return e, nil
	}
	if from.Kind == TypeVoid || to.Kind == TypeVoid {
		return nil, errf(line, "cannot use void value")
	}
	return &CastExpr{X: e, To: to}, nil
}

// expr type-checks an expression, returning the (possibly rewritten)
// expression and its type.
func (c *checker) expr(e Expr) (Expr, Type, error) {
	switch v := e.(type) {
	case *IntLit:
		return v, Type{Kind: TypeInt}, nil
	case *FloatLit:
		return v, Type{Kind: TypeDouble}, nil
	case *StrLit:
		return nil, Type{}, errf(v.Line, "string literals are only allowed as print_str arguments")

	case *Ident:
		sym := c.lookup(v.Name)
		if sym == nil {
			return nil, Type{}, errf(v.Line, "undefined variable %q", v.Name)
		}
		v.Sym = sym
		if sym.Type.IsArray() {
			return nil, Type{}, errf(v.Line, "array %q must be indexed", v.Name)
		}
		return v, sym.Type, nil

	case *IndexExpr:
		sym := c.lookup(v.Base.Name)
		if sym == nil {
			return nil, Type{}, errf(v.Line, "undefined variable %q", v.Base.Name)
		}
		v.Base.Sym = sym
		if !sym.Type.IsArray() {
			return nil, Type{}, errf(v.Line, "%q is not an array", v.Base.Name)
		}
		if len(v.Indices) != len(sym.Type.Dims) {
			return nil, Type{}, errf(v.Line, "%q has %d dimensions, %d indices given",
				v.Base.Name, len(sym.Type.Dims), len(v.Indices))
		}
		for i, idx := range v.Indices {
			x, typ, err := c.expr(idx)
			if err != nil {
				return nil, Type{}, err
			}
			if typ.Kind != TypeInt || typ.IsArray() {
				return nil, Type{}, errf(v.Line, "index %d of %q must be int", i, v.Base.Name)
			}
			v.Indices[i] = x
		}
		return v, sym.Type.Elem(), nil

	case *UnaryExpr:
		x, typ, err := c.expr(v.X)
		if err != nil {
			return nil, Type{}, err
		}
		v.X = x
		if !typ.IsScalar() {
			return nil, Type{}, errf(v.Line, "unary %v needs a scalar operand", v.Op)
		}
		if v.Op == tokNot && typ.Kind != TypeInt {
			return nil, Type{}, errf(v.Line, "'!' needs an int operand")
		}
		v.typ = typ
		return v, typ, nil

	case *BinaryExpr:
		l, lt, err := c.expr(v.L)
		if err != nil {
			return nil, Type{}, err
		}
		r, rt, err := c.expr(v.R)
		if err != nil {
			return nil, Type{}, err
		}
		if !lt.IsScalar() || !rt.IsScalar() {
			return nil, Type{}, errf(v.Line, "binary %v needs scalar operands", v.Op)
		}
		v.L, v.R = l, r
		switch v.Op {
		case tokPercent, tokAmp, tokPipe, tokCaret, tokShl, tokShr, tokAndAnd, tokOrOr:
			if lt.Kind != TypeInt || rt.Kind != TypeInt {
				return nil, Type{}, errf(v.Line, "%v needs int operands", v.Op)
			}
			v.typ = Type{Kind: TypeInt}
			return v, v.typ, nil
		case tokEq, tokNe, tokLt, tokLe, tokGt, tokGe:
			if lt.Kind != rt.Kind {
				v.promote(lt, rt)
			}
			v.typ = Type{Kind: TypeInt}
			return v, v.typ, nil
		case tokPlus, tokMinus, tokStar, tokSlash:
			if lt.Kind != rt.Kind {
				v.promote(lt, rt)
				v.typ = Type{Kind: TypeDouble}
			} else {
				v.typ = lt
			}
			return v, v.typ, nil
		}
		return nil, Type{}, errf(v.Line, "unknown binary operator %v", v.Op)

	case *CallExpr:
		return c.call(v)

	case *CastExpr:
		x, _, err := c.expr(v.X)
		if err != nil {
			return nil, Type{}, err
		}
		v.X = x
		return v, v.To, nil
	}
	return nil, Type{}, fmt.Errorf("minic: unhandled expression %T", e)
}

// promote wraps whichever operand is int in a cast to double.
func (b *BinaryExpr) promote(lt, rt Type) {
	if lt.Kind == TypeInt {
		b.L = &CastExpr{X: b.L, To: Type{Kind: TypeDouble}}
	}
	if rt.Kind == TypeInt {
		b.R = &CastExpr{X: b.R, To: Type{Kind: TypeDouble}}
	}
}

func (c *checker) call(v *CallExpr) (Expr, Type, error) {
	if b, ok := builtins[v.Name]; ok {
		if b.str {
			if len(v.Args) != 1 {
				return nil, Type{}, errf(v.Line, "%s takes one string literal", v.Name)
			}
			if _, ok := v.Args[0].(*StrLit); !ok {
				return nil, Type{}, errf(v.Line, "%s takes a string literal", v.Name)
			}
			v.typ = Type{Kind: b.ret}
			return v, v.typ, nil
		}
		if len(v.Args) != len(b.params) {
			return nil, Type{}, errf(v.Line, "%s takes %d argument(s)", v.Name, len(b.params))
		}
		for i, a := range v.Args {
			x, typ, err := c.expr(a)
			if err != nil {
				return nil, Type{}, err
			}
			x, err = c.coerce(x, typ, Type{Kind: b.params[i]}, v.Line)
			if err != nil {
				return nil, Type{}, err
			}
			v.Args[i] = x
		}
		v.typ = Type{Kind: b.ret}
		return v, v.typ, nil
	}

	fn, ok := c.prog.funcsByName[v.Name]
	if !ok {
		return nil, Type{}, errf(v.Line, "undefined function %q", v.Name)
	}
	if len(v.Args) != len(fn.Params) {
		return nil, Type{}, errf(v.Line, "%q takes %d argument(s), %d given",
			v.Name, len(fn.Params), len(v.Args))
	}
	for i, a := range v.Args {
		want := fn.Params[i].Type
		if want.IsArrayRef() {
			x, err := c.arrayRefArg(a, want, v.Name, i, v.Line)
			if err != nil {
				return nil, Type{}, err
			}
			v.Args[i] = x
			continue
		}
		x, typ, err := c.expr(a)
		if err != nil {
			return nil, Type{}, err
		}
		x, err = c.coerce(x, typ, want, v.Line)
		if err != nil {
			return nil, Type{}, err
		}
		v.Args[i] = x
	}
	v.fn = fn
	v.typ = fn.Ret
	return v, v.typ, nil
}

// arrayRefArg binds an argument to an array-reference parameter: the
// argument must name an array (or forward another reference) whose element
// kind and inner dimensions match.
func (c *checker) arrayRefArg(a Expr, want Type, fnName string, argIdx, line int) (Expr, error) {
	id, ok := a.(*Ident)
	if !ok {
		return nil, errf(line, "argument %d of %q must be an array name", argIdx+1, fnName)
	}
	sym := c.lookup(id.Name)
	if sym == nil {
		return nil, errf(id.Line, "undefined variable %q", id.Name)
	}
	id.Sym = sym
	have := sym.Type
	if !have.IsArray() {
		return nil, errf(id.Line, "%q is not an array (parameter %d of %q wants %v)",
			id.Name, argIdx+1, fnName, want)
	}
	if have.Kind != want.Kind || len(have.Dims) != len(want.Dims) {
		return nil, errf(id.Line, "array %q has type %v, parameter %d of %q wants %v",
			id.Name, have, argIdx+1, fnName, want)
	}
	for k := 1; k < len(want.Dims); k++ {
		if have.Dims[k] != want.Dims[k] {
			return nil, errf(id.Line, "array %q inner dimensions %v do not match parameter's %v",
				id.Name, have.Dims[1:], want.Dims[1:])
		}
	}
	return &ArrayRefExpr{Base: id, To: want}, nil
}
