package minic

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Differential fuzzing: generate random expression programs, predict their
// results with a Go reference evaluator using the same int32/float64
// semantics the generated code promises, and check the compiled program —
// through the assembler and CPU simulator — prints exactly the predicted
// value. Every mismatch is a bug in one of the four layers.

// genIntExpr returns a MiniC expression over variables a, b, c and its
// value under the fixed environment, using C-like int32 semantics.
func genIntExpr(rng *rand.Rand, depth int, a, b, c int32) (string, int32) {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(4) {
		case 0:
			return "a", a
		case 1:
			return "b", b
		case 2:
			return "c", c
		default:
			v := int32(rng.Intn(201) - 100)
			if v < 0 {
				return fmt.Sprintf("(0 - %d)", -v), v
			}
			return fmt.Sprintf("%d", v), v
		}
	}
	ls, lv := genIntExpr(rng, depth-1, a, b, c)
	rs, rv := genIntExpr(rng, depth-1, a, b, c)
	switch rng.Intn(12) {
	case 0:
		return fmt.Sprintf("(%s + %s)", ls, rs), lv + rv
	case 1:
		return fmt.Sprintf("(%s - %s)", ls, rs), lv - rv
	case 2:
		return fmt.Sprintf("(%s * %s)", ls, rs), lv * rv
	case 3:
		// Division with a guaranteed-odd (hence nonzero) divisor. Note
		// Go defines MinInt32 / -1 == MinInt32, as the simulator does.
		den := rv | 1
		return fmt.Sprintf("(%s / (%s | 1))", ls, rs), lv / den
	case 4:
		den := rv | 1
		return fmt.Sprintf("(%s %% (%s | 1))", ls, rs), lv % den
	case 5:
		return fmt.Sprintf("(%s & %s)", ls, rs), lv & rv
	case 6:
		return fmt.Sprintf("(%s | %s)", ls, rs), lv | rv
	case 7:
		return fmt.Sprintf("(%s ^ %s)", ls, rs), lv ^ rv
	case 8:
		sh := rng.Intn(31)
		return fmt.Sprintf("(%s << %d)", ls, sh), lv << uint(sh)
	case 9:
		sh := rng.Intn(31)
		return fmt.Sprintf("(%s >> %d)", ls, sh), lv >> uint(sh)
	case 10:
		val := int32(0)
		if lv < rv {
			val = 1
		}
		return fmt.Sprintf("(%s < %s)", ls, rs), val
	default:
		val := int32(0)
		if lv == rv {
			val = 1
		}
		return fmt.Sprintf("(%s == %s)", ls, rs), val
	}
}

func TestQuickIntExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 120; trial++ {
		a := int32(rng.Uint32())
		b := int32(rng.Uint32())
		c := int32(rng.Intn(1000) - 500)
		expr, want := genIntExpr(rng, 4, a, b, c)
		src := fmt.Sprintf(`
int main() {
    int a = %d;
    int b = %d;
    int c = %d;
    print_int(%s);
    print_char(10);
    return 0;
}`, a, b, c, expr)
		for _, opts := range []Options{{}, {NoFold: true}} {
			got := runProgram(t, src, opts)
			if got != fmt.Sprintf("%d\n", want) {
				t.Fatalf("trial %d (fold=%v): %s = %s, want %d\nsource:%s",
					trial, !opts.NoFold, expr, strings.TrimSpace(got), want, src)
			}
		}
	}
}

// genFPExpr returns a MiniC double expression and its float64 value. The
// simulator's FP unit is IEEE float64, so results must match Go bit for
// bit; %g formatting then agrees exactly.
func genFPExpr(rng *rand.Rand, depth int, x, y float64) (string, float64) {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			return "x", x
		case 1:
			return "y", y
		default:
			v := float64(rng.Intn(64)) * 0.125
			return fmt.Sprintf("%g", v), v
		}
	}
	ls, lv := genFPExpr(rng, depth-1, x, y)
	rs, rv := genFPExpr(rng, depth-1, x, y)
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s + %s)", ls, rs), lv + rv
	case 1:
		return fmt.Sprintf("(%s - %s)", ls, rs), lv - rv
	case 2:
		return fmt.Sprintf("(%s * %s)", ls, rs), lv * rv
	default:
		den := rv*rv + 1.0
		return fmt.Sprintf("(%s / (%s * %s + 1.0))", ls, rs, rs), lv / den
	}
}

func TestQuickFPExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 80; trial++ {
		x := float64(rng.Intn(1024)-512) * 0.0625
		y := float64(rng.Intn(1024)-512) * 0.03125
		expr, want := genFPExpr(rng, 4, x, y)
		src := fmt.Sprintf(`
int main() {
    double x = %g;
    double y = %g;
    print_double(%s);
    print_char(10);
    return 0;
}`, x, y, expr)
		got := runProgram(t, src, Options{})
		if got != fmt.Sprintf("%g\n", want) {
			t.Fatalf("trial %d: %s = %s, want %g\nsource:%s",
				trial, expr, strings.TrimSpace(got), want, src)
		}
	}
}

// TestQuickMixedStatements drives the statement generator side: random
// loops accumulating into an int, predicted by a Go twin.
func TestQuickMixedStatements(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(50) + 1
		step := rng.Intn(3) + 1
		mul := int32(rng.Intn(7) - 3)
		add := int32(rng.Intn(100) - 50)
		var want int32
		for i := int32(0); i < int32(n); i += int32(step) {
			want = want*mul + (i ^ add)
		}
		src := fmt.Sprintf(`
int main() {
    int acc = 0;
    int i;
    for (i = 0; i < %d; i = i + %d) {
        acc = acc * (0 - %d) + (i ^ (0 - %d));
    }
    print_int(acc);
    print_char(10);
    return 0;
}`, n, step, -mul, -add)
		for _, opts := range []Options{{}, {Unroll: 4}} {
			got := runProgram(t, src, opts)
			if got != fmt.Sprintf("%d\n", want) {
				t.Fatalf("trial %d (unroll=%d): got %s, want %d\nsource:%s",
					trial, opts.Unroll, strings.TrimSpace(got), want, src)
			}
		}
	}
}
