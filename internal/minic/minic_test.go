package minic

import (
	"bytes"
	"strings"
	"testing"

	"paragraph/internal/cpu"
)

// runProgram compiles, assembles and executes src, returning its output.
func runProgram(t *testing.T, src string, opts Options) string {
	t.Helper()
	prog, err := Build(src, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var out bytes.Buffer
	c, err := cpu.New(prog, cpu.WithStdout(&out))
	if err != nil {
		t.Fatalf("cpu: %v", err)
	}
	if _, err := c.Run(50_000_000); err != nil {
		t.Fatalf("run: %v\noutput so far: %q", err, out.String())
	}
	return out.String()
}

func run(t *testing.T, src string) string {
	t.Helper()
	return runProgram(t, src, Options{})
}

func TestHelloArithmetic(t *testing.T) {
	got := run(t, `
int main() {
    int a = 6;
    int b = 7;
    print_int(a * b);
    print_char(10);
    return 0;
}`)
	if got != "42\n" {
		t.Errorf("output = %q", got)
	}
}

func TestIntOperators(t *testing.T) {
	got := run(t, `
int main() {
    print_int(17 / 5); print_char(32);
    print_int(17 % 5); print_char(32);
    int x = 17;
    int y = 5;
    print_int(x / y); print_char(32);
    print_int(x % y); print_char(32);
    print_int(-x / y); print_char(32);
    print_int(x & y); print_char(32);
    print_int(x | y); print_char(32);
    print_int(x ^ y); print_char(32);
    print_int(x << 2); print_char(32);
    print_int(-x >> 2); print_char(32);
    print_int(1 << 20);
    print_char(10);
    return 0;
}`)
	want := "3 2 3 2 -3 1 21 20 68 -5 1048576\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestComparisons(t *testing.T) {
	got := run(t, `
int main() {
    int a = 3;
    int b = 7;
    print_int(a < b); print_int(a > b); print_int(a <= b);
    print_int(a >= b); print_int(a == b); print_int(a != b);
    print_int(b <= b); print_int(b >= b); print_int(b == b);
    print_char(10);
    return 0;
}`)
	// a<b a>b a<=b a>=b a==b a!=b b<=b b>=b b==b
	if got != "101001111\n" {
		t.Errorf("output = %q", got)
	}
}

func TestDoubleArithmetic(t *testing.T) {
	got := run(t, `
int main() {
    double a = 1.5;
    double b = 0.25;
    print_double(a + b); print_char(32);
    print_double(a - b); print_char(32);
    print_double(a * b); print_char(32);
    print_double(a / b); print_char(32);
    print_double(-a);
    print_char(10);
    return 0;
}`)
	want := "1.75 1.25 0.375 6 -1.5\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestDoubleComparisons(t *testing.T) {
	got := run(t, `
int main() {
    double a = 2.5;
    double b = 2.5;
    double c = 3.0;
    print_int(a == b); print_int(a != b); print_int(a < c);
    print_int(c <= a); print_int(c > a); print_int(a >= b);
    print_char(10);
    return 0;
}`)
	if got != "101011\n" {
		t.Errorf("output = %q", got)
	}
}

func TestMixedTypePromotion(t *testing.T) {
	got := run(t, `
int main() {
    int n = 3;
    double x = 2.5;
    double y = n * x;       // int promoted to double
    print_double(y); print_char(32);
    int trunc = x * 2.0;    // 5.0 truncates to 5
    print_int(trunc); print_char(32);
    print_int(n < x);       // mixed comparison
    print_char(10);
    return 0;
}`)
	want := "7.5 5 0\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestControlFlow(t *testing.T) {
	got := run(t, `
int main() {
    int i;
    int sum = 0;
    for (i = 1; i <= 10; i = i + 1) {
        if (i % 2 == 0) {
            sum = sum + i;
        } else {
            sum = sum - 1;
        }
    }
    print_int(sum);       // 2+4+6+8+10 - 5 = 25
    print_char(10);
    int n = 0;
    while (n * n < 50) {
        n = n + 1;
    }
    print_int(n);          // 8
    print_char(10);
    return 0;
}`)
	if got != "25\n8\n" {
		t.Errorf("output = %q", got)
	}
}

func TestBreakContinue(t *testing.T) {
	got := run(t, `
int main() {
    int i;
    int sum = 0;
    for (i = 0; i < 100; i = i + 1) {
        if (i == 10) { break; }
        if (i % 2 == 1) { continue; }
        sum = sum + i;     // 0+2+4+6+8 = 20
    }
    print_int(sum);
    print_char(10);
    return 0;
}`)
	if got != "20\n" {
		t.Errorf("output = %q", got)
	}
}

func TestShortCircuitConditions(t *testing.T) {
	// Division guarded by && must not fault when the guard is false.
	got := run(t, `
int main() {
    int zero = 0;
    int x = 10;
    if (zero != 0 && x / zero > 1) {
        print_str("bad");
    } else {
        print_str("ok");
    }
    if (x > 5 || x / zero > 1) {
        print_str(" ok2");
    }
    print_char(10);
    return 0;
}`)
	if got != "ok ok2\n" {
		t.Errorf("output = %q", got)
	}
}

func TestLogicalValues(t *testing.T) {
	got := run(t, `
int main() {
    int a = 5;
    int b = 0;
    print_int(a && b); print_int(a || b); print_int(!a); print_int(!b);
    print_int(a && 3); print_int(b || 0);
    print_char(10);
    return 0;
}`)
	// a&&b a||b !a !b a&&3 b||0
	if got != "010110\n" {
		t.Errorf("output = %q", got)
	}
}

func TestGlobalVariables(t *testing.T) {
	got := run(t, `
int counter = 100;
double scale = 2.5;
int arr[10];

void bump() { counter = counter + 1; }

int main() {
    bump();
    bump();
    print_int(counter); print_char(32);
    print_double(scale); print_char(32);
    int i;
    for (i = 0; i < 10; i = i + 1) { arr[i] = i * i; }
    print_int(arr[7]);
    print_char(10);
    return 0;
}`)
	want := "102 2.5 49\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestLocalArrays(t *testing.T) {
	got := run(t, `
int main() {
    int a[20];
    double d[5];
    int i;
    for (i = 0; i < 20; i = i + 1) { a[i] = 2 * i; }
    for (i = 0; i < 5; i = i + 1) { d[i] = a[i] * 0.5; }
    print_int(a[19]); print_char(32);
    print_double(d[4]);
    print_char(10);
    return 0;
}`)
	if got != "38 4\n" {
		t.Errorf("output = %q", got)
	}
}

func TestMultiDimArrays(t *testing.T) {
	got := run(t, `
int m[4][5];
double g[3][3][2];

int main() {
    int i;
    int j;
    for (i = 0; i < 4; i = i + 1) {
        for (j = 0; j < 5; j = j + 1) {
            m[i][j] = 10 * i + j;
        }
    }
    print_int(m[3][4]); print_char(32);
    print_int(m[2][1]); print_char(32);
    g[2][1][1] = 6.25;
    print_double(g[2][1][1]); print_char(32);
    print_double(g[0][0][0]);
    print_char(10);
    return 0;
}`)
	want := "34 21 6.25 0\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	got := run(t, `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}

int gcd(int a, int b) {
    while (b != 0) {
        int t = b;
        b = a % b;
        a = t;
    }
    return a;
}

double avg(double a, double b) { return (a + b) / 2.0; }

int main() {
    print_int(fib(15)); print_char(32);
    print_int(gcd(462, 1071)); print_char(32);
    print_double(avg(3.0, 4.5));
    print_char(10);
    return 0;
}`)
	want := "610 21 3.75\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestManyArguments(t *testing.T) {
	got := run(t, `
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
    return a + b + c + d + e + f + g + h;
}
double wsum(double x, int k, double y) { return x * k + y; }

int main() {
    print_int(sum8(1, 2, 3, 4, 5, 6, 7, 8)); print_char(32);
    print_double(wsum(1.5, 4, 0.25));
    print_char(10);
    return 0;
}`)
	want := "36 6.25\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestCallInExpression(t *testing.T) {
	// Calls nested inside expressions force temporaries to be
	// caller-saved across the call.
	got := run(t, `
int id(int x) { return x; }
int main() {
    int a = 100;
    print_int(a + id(20) + a + id(3));
    print_char(10);
    return 0;
}`)
	if got != "223\n" {
		t.Errorf("output = %q", got)
	}
}

func TestDeepExpressionSpills(t *testing.T) {
	// Expression depth exceeds the 10 integer temporaries, forcing
	// spills: right-nested additions evaluate left operand first, so the
	// virtual stack holds every intermediate.
	got := run(t, `
int main() {
    int x = 1;
    print_int(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+x)))))))))))))))))));
    print_char(10);
    return 0;
}`)
	if got != "20\n" {
		t.Errorf("output = %q", got)
	}
}

func TestDeepFPExpressionSpills(t *testing.T) {
	got := run(t, `
int main() {
    double x = 0.5;
    print_double(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+(x+x))))))))))))))))))))));
    print_char(10);
    return 0;
}`)
	if got != "11.5\n" {
		t.Errorf("output = %q", got)
	}
}

func TestCasts(t *testing.T) {
	got := run(t, `
int main() {
    int i = 7;
    double d = i / 2;       // int division, then widen: 3.0
    double e = i / 2.0;     // promoted division: 3.5
    print_double(d); print_char(32);
    print_double(e); print_char(32);
    int back = e * 2.0;     // 7
    print_int(back);
    print_char(10);
    return 0;
}`)
	want := "3 3.5 7\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestGlobalInitializers(t *testing.T) {
	got := run(t, `
int a = 42;
int b = -7;
double pi = 3.25;
double c = 2;     // int literal widened at compile time

int main() {
    print_int(a); print_char(32);
    print_int(b); print_char(32);
    print_double(pi); print_char(32);
    print_double(c);
    print_char(10);
    return 0;
}`)
	want := "42 -7 3.25 2\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestVoidFunction(t *testing.T) {
	got := run(t, `
int total = 0;
void add(int k) {
    total = total + k;
    if (total > 100) { return; }
    total = total * 2;
}
int main() {
    add(10);     // 10 -> 20
    add(60);     // 80 -> 160
    add(5);      // 165, early return
    print_int(total);
    print_char(10);
    return 0;
}`)
	if got != "165\n" {
		t.Errorf("output = %q", got)
	}
}

func TestNewtonSqrtDouble(t *testing.T) {
	got := run(t, `
double sqrt_newton(double x) {
    double guess = x / 2.0;
    int i;
    for (i = 0; i < 30; i = i + 1) {
        guess = (guess + x / guess) / 2.0;
    }
    return guess;
}
int main() {
    print_double(sqrt_newton(2.0) * sqrt_newton(2.0));
    print_char(10);
    return 0;
}`)
	if !strings.HasPrefix(got, "2\n") && !strings.HasPrefix(got, "2.0000") && !strings.HasPrefix(got, "1.9999") {
		t.Errorf("output = %q", got)
	}
}

func TestMatrixMultiplySmall(t *testing.T) {
	got := run(t, `
double a[4][4];
double b[4][4];
double c[4][4];
int main() {
    int i; int j; int k;
    for (i = 0; i < 4; i = i + 1) {
        for (j = 0; j < 4; j = j + 1) {
            a[i][j] = i + j;
            b[i][j] = i - j;
            c[i][j] = 0.0;
        }
    }
    for (i = 0; i < 4; i = i + 1) {
        for (j = 0; j < 4; j = j + 1) {
            for (k = 0; k < 4; k = k + 1) {
                c[i][j] = c[i][j] + a[i][k] * b[k][j];
            }
        }
    }
    print_double(c[2][3]); print_char(32);
    print_double(c[0][0]); print_char(32);
    print_double(c[3][1]);
    print_char(10);
    return 0;
}`)
	// c[i][j] = sum_k (i+k)(k-j): c[2][3] = -6-6-4+0 = -16,
	// c[0][0] = 0+1+4+9 = 14, c[3][1] = -3+0+5+12 = 14.
	want := "-16 14 14\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestUnrolledLoopSameResult(t *testing.T) {
	src := `
int acc = 0;
int main() {
    int i;
    for (i = 0; i < 64; i = i + 1) {
        acc = acc + i * i;
    }
    print_int(acc);
    print_char(10);
    return 0;
}`
	plain := run(t, src)
	unrolled := runProgram(t, src, Options{Unroll: 4})
	if plain != unrolled {
		t.Errorf("unrolled output %q != plain %q", unrolled, plain)
	}
	if plain != "85344\n" {
		t.Errorf("output = %q", plain)
	}
}

func TestUnrollReducesDynamicBranches(t *testing.T) {
	src := `
int acc = 0;
int main() {
    int i;
    for (i = 0; i < 400; i = i + 1) {
        acc = acc + i;
    }
    print_int(acc);
    print_char(10);
    return 0;
}`
	count := func(opts Options) uint64 {
		prog, err := Build(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cpu.New(prog)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		return c.ICount()
	}
	plain := count(Options{})
	unrolled := count(Options{Unroll: 8})
	if unrolled >= plain {
		t.Errorf("unrolled executes %d instructions, plain %d; expected fewer", unrolled, plain)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no main", "int f() { return 0; }", "no main function"},
		{"undefined var", "int main() { return x; }", "undefined variable"},
		{"undefined func", "int main() { return f(); }", "undefined function"},
		{"type mismatch mod", "int main() { double d = 1.0; return d % 2; }", "needs int operands"},
		{"arity", "int f(int a) { return a; } int main() { return f(); }", "takes 1 argument"},
		{"array index count", "int a[2][2]; int main() { return a[0]; }", "2 dimensions"},
		{"not array", "int main() { int x = 0; return x[0]; }", "not an array"},
		{"void value", "void f() {} int main() { return f(); }", "void"},
		{"break outside", "int main() { break; return 0; }", "break outside loop"},
		{"redeclare", "int main() { int x = 1; int x = 2; return x; }", "redeclared"},
		{"assign to array", "int a[3]; int main() { a = 0; return 0; }", "must be indexed"},
		{"string misuse", `int main() { int x = "hi"; return x; }`, "string literal"},
		{"bad char", "int main() { return 0; } @", "unexpected character"},
		{"unterminated comment", "/* int main() { }", "unterminated block comment"},
		{"double condition", "int main() { double d = 1.0; if (d) { } return 0; }", "condition must be int"},
		{"non-const global", "int g = 1 + f(); int f() { return 2; } int main() { return g; }", "must be a constant"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src, Options{})
			if err == nil {
				t.Fatalf("compiled, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestConstantFolding(t *testing.T) {
	// Folding must preserve semantics; compare folded and unfolded runs.
	src := `
int main() {
    print_int(2 + 3 * 4 - 10 / 2);       // 9
    print_char(32);
    print_int((1 << 10) % 1000);         // 24
    print_char(32);
    print_double(1.5 * 4.0 + 0.25);      // 6.25
    print_char(32);
    print_int(3 < 4);                    // 1
    print_char(32);
    print_int(-(-5));                    // 5
    print_char(10);
    return 0;
}`
	folded := runProgram(t, src, Options{})
	unfolded := runProgram(t, src, Options{NoFold: true})
	if folded != unfolded {
		t.Errorf("folded %q != unfolded %q", folded, unfolded)
	}
	if folded != "9 24 6.25 1 5\n" {
		t.Errorf("output = %q", folded)
	}
}

func TestFoldingShrinksCode(t *testing.T) {
	src := "int main() { return 1 + 2 * 3 + 4 * 5 + 6 * 7; }"
	folded, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unfolded, err := Compile(src, Options{NoFold: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(folded) >= len(unfolded) {
		t.Errorf("folded code (%d bytes) not smaller than unfolded (%d)", len(folded), len(unfolded))
	}
}

func TestFrameTooLarge(t *testing.T) {
	_, err := Compile(`
int main() {
    double big[100][100];   // 80 KB frame
    big[0][0] = 1.0;
    return 0;
}`, Options{})
	if err == nil || !strings.Contains(err.Error(), "stack frame") {
		t.Fatalf("err = %v, want stack-frame error", err)
	}
}

func TestComments(t *testing.T) {
	got := run(t, `
// line comment
int main() {
    /* block
       comment */
    int x = 5; // trailing
    print_int(x /* inline */ + 1);
    print_char(10);
    return 0;
}`)
	if got != "6\n" {
		t.Errorf("output = %q", got)
	}
}

func TestHexLiterals(t *testing.T) {
	got := run(t, `
int main() {
    print_int(0xff); print_char(32);
    print_int(0x10 * 2);
    print_char(10);
    return 0;
}`)
	if got != "255 32\n" {
		t.Errorf("output = %q", got)
	}
}

func TestFloatLiteralForms(t *testing.T) {
	got := run(t, `
int main() {
    print_double(1.0e3); print_char(32);
    print_double(2.5e-1); print_char(32);
    print_double(1e2);
    print_char(10);
    return 0;
}`)
	if got != "1000 0.25 100\n" {
		t.Errorf("output = %q", got)
	}
}

func TestWhileWithComplexCondition(t *testing.T) {
	got := run(t, `
int main() {
    int i = 0;
    int j = 20;
    while (i < 10 && j > 12) {
        i = i + 1;
        j = j - 1;
    }
    print_int(i); print_char(32); print_int(j);
    print_char(10);
    return 0;
}`)
	if got != "8 12\n" {
		t.Errorf("output = %q", got)
	}
}

func TestGlobalsAndLocalsShadowing(t *testing.T) {
	got := run(t, `
int x = 1;
int main() {
    print_int(x);
    {
        int x = 2;
        print_int(x);
        {
            int x = 3;
            print_int(x);
        }
        print_int(x);
    }
    print_int(x);
    print_char(10);
    return 0;
}`)
	if got != "12321\n" {
		t.Errorf("output = %q", got)
	}
}
