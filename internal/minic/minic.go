package minic

import (
	"fmt"
	"strings"

	"paragraph/internal/asm"
)

// Options configures compilation.
type Options struct {
	// Unroll applies loop unrolling by the given factor to eligible
	// counted loops; 0 or 1 disables it. Used by the E7 ablation.
	Unroll int
	// NoFold disables constant folding (for compiler-effect studies).
	NoFold bool
}

// Compile compiles MiniC source to assembly text for package asm.
func Compile(src string, opts Options) (string, error) {
	prog, err := Parse(src)
	if err != nil {
		return "", err
	}
	if err := analyze(prog); err != nil {
		return "", err
	}
	main, ok := prog.funcsByName["main"]
	if !ok {
		return "", fmt.Errorf("minic: no main function")
	}
	if len(main.Params) != 0 {
		return "", errf(main.Line, "main must take no parameters")
	}
	if !opts.NoFold {
		foldProgram(prog)
	}
	if opts.Unroll > 1 {
		unrollProgram(prog, opts.Unroll)
		if !opts.NoFold {
			foldProgram(prog)
		}
	}
	return newCodegen(prog, opts).generate()
}

// Build compiles MiniC source all the way to a loadable program image.
func Build(src string, opts Options) (*asm.Program, error) {
	asmText, err := Compile(src, opts)
	if err != nil {
		return nil, err
	}
	p, err := asm.Assemble(asmText)
	if err != nil {
		// An assembly error here is a compiler bug; include context.
		return nil, fmt.Errorf("minic: internal error assembling generated code: %w\n%s",
			err, numberLines(asmText))
	}
	return p, nil
}

// funcLabel maps a MiniC function name to its assembly label. main keeps
// its name (the assembler uses it as the entry point); everything else is
// prefixed to avoid collisions with generated data labels.
func funcLabel(name string) string {
	if name == "main" {
		return "main"
	}
	return "f_" + name
}

// numberLines prefixes each line with its number, for compiler-bug reports.
func numberLines(s string) string {
	lines := strings.Split(s, "\n")
	var b strings.Builder
	for i, l := range lines {
		fmt.Fprintf(&b, "%4d| %s\n", i+1, l)
	}
	return b.String()
}
