package isa

import "fmt"

// Binary encoding. The layout follows MIPS-I: a 6-bit major opcode, with
// R-format instructions selected by a 6-bit function field under opcode 0,
// REGIMM branches under opcode 1, and floating point under the COP1 opcode
// 0x11. Double-precision FP uses the fmt value 0x11 (.D) in the rs slot.

const (
	opcSpecial = 0x00
	opcRegimm  = 0x01
	opcJ       = 0x02
	opcJAL     = 0x03
	opcBEQ     = 0x04
	opcBNE     = 0x05
	opcBLEZ    = 0x06
	opcBGTZ    = 0x07
	opcADDI    = 0x08
	opcADDIU   = 0x09
	opcSLTI    = 0x0a
	opcSLTIU   = 0x0b
	opcANDI    = 0x0c
	opcORI     = 0x0d
	opcXORI    = 0x0e
	opcLUI     = 0x0f
	opcCOP1    = 0x11
	opcLB      = 0x20
	opcLH      = 0x21
	opcLW      = 0x23
	opcLBU     = 0x24
	opcLHU     = 0x25
	opcSB      = 0x28
	opcSH      = 0x29
	opcSW      = 0x2b
	opcLDC1    = 0x35
	opcSDC1    = 0x3d
)

// SPECIAL function codes.
const (
	fnSLL     = 0x00
	fnSRL     = 0x02
	fnSRA     = 0x03
	fnSLLV    = 0x04
	fnSRLV    = 0x06
	fnSRAV    = 0x07
	fnJR      = 0x08
	fnJALR    = 0x09
	fnSYSCALL = 0x0c
	fnBREAK   = 0x0d
	fnMFHI    = 0x10
	fnMTHI    = 0x11
	fnMFLO    = 0x12
	fnMTLO    = 0x13
	fnMULT    = 0x18
	fnMULTU   = 0x19
	fnDIV     = 0x1a
	fnDIVU    = 0x1b
	fnADD     = 0x20
	fnADDU    = 0x21
	fnSUB     = 0x22
	fnSUBU    = 0x23
	fnAND     = 0x24
	fnOR      = 0x25
	fnXOR     = 0x26
	fnNOR     = 0x27
	fnSLT     = 0x2a
	fnSLTU    = 0x2b
)

// COP1 rs-slot selectors and .D-format function codes.
const (
	cop1MFC1 = 0x00
	cop1MTC1 = 0x04
	cop1BC   = 0x08
	cop1FmtD = 0x11
	cop1FmtW = 0x14

	fpADD  = 0x00
	fpSUB  = 0x01
	fpMUL  = 0x02
	fpDIV  = 0x03
	fpABS  = 0x05
	fpMOV  = 0x06
	fpNEG  = 0x07
	fpCVTD = 0x21
	fpCVTW = 0x24
	fpCEQ  = 0x32
	fpCLT  = 0x3c
	fpCLE  = 0x3e
)

var specialFn = map[Op]uint32{
	SLL: fnSLL, SRL: fnSRL, SRA: fnSRA, SLLV: fnSLLV, SRLV: fnSRLV, SRAV: fnSRAV,
	JR: fnJR, JALR: fnJALR, SYSCALL: fnSYSCALL, BREAK: fnBREAK,
	MFHI: fnMFHI, MTHI: fnMTHI, MFLO: fnMFLO, MTLO: fnMTLO,
	MULT: fnMULT, MULTU: fnMULTU, DIV: fnDIV, DIVU: fnDIVU,
	ADD: fnADD, ADDU: fnADDU, SUB: fnSUB, SUBU: fnSUBU,
	AND: fnAND, OR: fnOR, XOR: fnXOR, NOR: fnNOR, SLT: fnSLT, SLTU: fnSLTU,
}

// opEntry is one slot of a dense decode table. Every decode selector —
// SPECIAL function, major opcode, COP1.D function — is a 6-bit field, so
// the per-event decode path indexes a 64-entry array instead of hashing a
// map. The tables are inverted from the encode maps at init and cannot
// drift from them.
type opEntry struct {
	op Op
	ok bool
}

var fnToOp = func() (t [64]opEntry) {
	for op, fn := range specialFn {
		t[fn] = opEntry{op, true}
	}
	return
}()

var iFormatOpc = map[Op]uint32{
	ADDI: opcADDI, ADDIU: opcADDIU, SLTI: opcSLTI, SLTIU: opcSLTIU,
	ANDI: opcANDI, ORI: opcORI, XORI: opcXORI, LUI: opcLUI,
	LB: opcLB, LBU: opcLBU, LH: opcLH, LHU: opcLHU, LW: opcLW,
	SB: opcSB, SH: opcSH, SW: opcSW, LDC1: opcLDC1, SDC1: opcSDC1,
	BEQ: opcBEQ, BNE: opcBNE, BLEZ: opcBLEZ, BGTZ: opcBGTZ,
}

var opcToIOp = func() (t [64]opEntry) {
	for op, opc := range iFormatOpc {
		if op == BLTZ || op == BGEZ {
			continue
		}
		t[opc] = opEntry{op, true}
	}
	return
}()

var fpFn = map[Op]uint32{
	ADDD: fpADD, SUBD: fpSUB, MULD: fpMUL, DIVD: fpDIV,
	ABSD: fpABS, MOVD: fpMOV, NEGD: fpNEG,
	CVTWD: fpCVTW, CEQD: fpCEQ, CLTD: fpCLT, CLED: fpCLE,
}

var fpFnToOp = func() (t [64]opEntry) {
	for op, fn := range fpFn {
		t[fn] = opEntry{op, true}
	}
	return
}()

func regField(r Reg) uint32 {
	if r.IsFP() {
		return uint32(r - F0)
	}
	return uint32(r)
}

// Encode converts the instruction to its 32-bit machine word.
func Encode(ins *Instruction) (uint32, error) {
	imm16 := uint32(uint16(ins.Imm))
	switch ins.Op {
	case NOP:
		return 0, nil // sll $zero,$zero,0
	case J:
		return opcJ<<26 | ins.Target&0x03ffffff, nil
	case JAL:
		return opcJAL<<26 | ins.Target&0x03ffffff, nil
	case BLTZ:
		return opcRegimm<<26 | regField(ins.Rs)<<21 | 0<<16 | imm16, nil
	case BGEZ:
		return opcRegimm<<26 | regField(ins.Rs)<<21 | 1<<16 | imm16, nil
	case MFC1:
		return opcCOP1<<26 | cop1MFC1<<21 | regField(ins.Rt)<<16 | regField(ins.Rs)<<11, nil
	case MTC1:
		return opcCOP1<<26 | cop1MTC1<<21 | regField(ins.Rt)<<16 | regField(ins.Rd)<<11, nil
	case BC1F:
		return opcCOP1<<26 | cop1BC<<21 | 0<<16 | imm16, nil
	case BC1T:
		return opcCOP1<<26 | cop1BC<<21 | 1<<16 | imm16, nil
	case CVTDW:
		// cvt.d.w converts from the W (integer word) format.
		return opcCOP1<<26 | uint32(cop1FmtW)<<21 | regField(ins.Rs)<<11 | regField(ins.Rd)<<6 | fpCVTD, nil
	}
	if fn, ok := fpFn[ins.Op]; ok {
		return opcCOP1<<26 | uint32(cop1FmtD)<<21 | regField(ins.Rt)<<16 |
			regField(ins.Rs)<<11 | regField(ins.Rd)<<6 | fn, nil
	}
	if fn, ok := specialFn[ins.Op]; ok {
		return regField(ins.Rs)<<21 | regField(ins.Rt)<<16 | regField(ins.Rd)<<11 |
			uint32(ins.Shamt&0x1f)<<6 | fn, nil
	}
	if opc, ok := iFormatOpc[ins.Op]; ok {
		return opc<<26 | regField(ins.Rs)<<21 | regField(ins.Rt)<<16 | imm16, nil
	}
	return 0, fmt.Errorf("isa: cannot encode op %v", ins.Op)
}

// Decode converts a 32-bit machine word back to an Instruction. It is the
// inverse of Encode for every encodable instruction.
func Decode(word uint32) (Instruction, error) {
	opc := word >> 26
	rs := Reg(word >> 21 & 0x1f)
	rt := Reg(word >> 16 & 0x1f)
	rd := Reg(word >> 11 & 0x1f)
	shamt := uint8(word >> 6 & 0x1f)
	fn := word & 0x3f
	imm := int32(int16(word & 0xffff))

	switch opc {
	case opcSpecial:
		if word == 0 {
			return Instruction{Op: NOP}, nil
		}
		e := fnToOp[fn]
		if !e.ok {
			return Instruction{}, fmt.Errorf("isa: unknown SPECIAL function %#x", fn)
		}
		return Instruction{Op: e.op, Rd: rd, Rs: rs, Rt: rt, Shamt: shamt}, nil
	case opcRegimm:
		switch rt {
		case 0:
			return Instruction{Op: BLTZ, Rs: rs, Imm: imm}, nil
		case 1:
			return Instruction{Op: BGEZ, Rs: rs, Imm: imm}, nil
		}
		return Instruction{}, fmt.Errorf("isa: unknown REGIMM rt %d", rt)
	case opcJ:
		return Instruction{Op: J, Target: word & 0x03ffffff}, nil
	case opcJAL:
		return Instruction{Op: JAL, Target: word & 0x03ffffff}, nil
	case opcCOP1:
		sel := word >> 21 & 0x1f
		switch sel {
		case cop1MFC1:
			return Instruction{Op: MFC1, Rt: rt, Rs: F0 + rd}, nil
		case cop1MTC1:
			return Instruction{Op: MTC1, Rt: rt, Rd: F0 + rd}, nil
		case cop1BC:
			if rt == 1 {
				return Instruction{Op: BC1T, Imm: imm}, nil
			}
			return Instruction{Op: BC1F, Imm: imm}, nil
		case cop1FmtW:
			if fn == fpCVTD {
				return Instruction{Op: CVTDW, Rs: F0 + rd, Rd: F0 + Reg(shamt)}, nil
			}
			return Instruction{}, fmt.Errorf("isa: unknown COP1.W function %#x", fn)
		case cop1FmtD:
			e := fpFnToOp[fn]
			if !e.ok {
				return Instruction{}, fmt.Errorf("isa: unknown COP1.D function %#x", fn)
			}
			op := e.op
			ins := Instruction{Op: op, Rt: F0 + rt, Rs: F0 + rd, Rd: F0 + Reg(shamt)}
			info := op.Info()
			if !info.ReadsRt {
				ins.Rt = 0
			}
			if !info.WritesRd {
				ins.Rd = 0
			}
			return ins, nil
		}
		return Instruction{}, fmt.Errorf("isa: unknown COP1 selector %#x", sel)
	}

	if e := opcToIOp[opc]; e.ok {
		op := e.op
		ins := Instruction{Op: op, Rs: rs, Rt: rt, Imm: imm}
		if op == LDC1 {
			ins.Rt = F0 + rt
		}
		if op == SDC1 {
			ins.Rt = F0 + rt
		}
		info := op.Info()
		if !info.ReadsRt && !info.WritesRt {
			ins.Rt = 0
		}
		return ins, nil
	}
	return Instruction{}, fmt.Errorf("isa: unknown opcode %#x", opc)
}
