package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders an instruction in the same assembly syntax accepted by
// the assembler (package internal/asm). Branch and jump targets are printed
// numerically; the assembler-level symbolic form is reconstructed by callers
// that hold a symbol table.
func Disassemble(ins *Instruction) string {
	info := ins.Op.Info()
	var b strings.Builder
	b.WriteString(info.Name)

	arg := func(s string) {
		if strings.HasSuffix(b.String(), info.Name) {
			b.WriteByte(' ')
		} else {
			b.WriteString(", ")
		}
		b.WriteString(s)
	}

	switch ins.Op {
	case NOP, SYSCALL, BREAK:
		return b.String()
	case J, JAL:
		arg(fmt.Sprintf("%#x", ins.Target<<2))
		return b.String()
	case JR, MTHI, MTLO:
		arg(ins.Rs.String())
		return b.String()
	case JALR:
		arg(ins.Rd.String())
		arg(ins.Rs.String())
		return b.String()
	case MFHI, MFLO:
		arg(ins.Rd.String())
		return b.String()
	case MULT, MULTU, DIV, DIVU:
		arg(ins.Rs.String())
		arg(ins.Rt.String())
		return b.String()
	case SLL, SRL, SRA:
		arg(ins.Rd.String())
		arg(ins.Rt.String())
		arg(fmt.Sprintf("%d", ins.Shamt))
		return b.String()
	case LUI:
		arg(ins.Rt.String())
		arg(fmt.Sprintf("%d", ins.Imm))
		return b.String()
	case BC1T, BC1F:
		arg(fmt.Sprintf("%d", ins.Imm))
		return b.String()
	case MFC1:
		arg(ins.Rt.String())
		arg(ins.Rs.String())
		return b.String()
	case MTC1:
		arg(ins.Rt.String())
		arg(ins.Rd.String())
		return b.String()
	}

	if info.IsLoad || info.IsStore {
		arg(ins.Rt.String())
		arg(fmt.Sprintf("%d(%s)", ins.Imm, ins.Rs))
		return b.String()
	}

	switch info.Format {
	case FormatR, FormatFR:
		if info.WritesRd {
			arg(ins.Rd.String())
		}
		if info.ReadsRs {
			arg(ins.Rs.String())
		}
		if info.ReadsRt {
			arg(ins.Rt.String())
		}
	case FormatI:
		if info.IsBranch {
			if info.ReadsRs {
				arg(ins.Rs.String())
			}
			if info.ReadsRt {
				arg(ins.Rt.String())
			}
			arg(fmt.Sprintf("%d", ins.Imm))
			return b.String()
		}
		if info.WritesRt {
			arg(ins.Rt.String())
		}
		if info.ReadsRs {
			arg(ins.Rs.String())
		}
		if info.HasImm {
			arg(fmt.Sprintf("%d", ins.Imm))
		}
	}
	return b.String()
}
