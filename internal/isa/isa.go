// Package isa defines the instruction-set architecture used throughout the
// reproduction: a MIPS-I–like 32-bit RISC with 32 integer registers, 32
// floating-point registers (each holding a 64-bit value), HI/LO multiply
// registers and a single floating-point condition flag.
//
// The paper traced SPEC'89 binaries compiled for DECstation (MIPS R2000/3000)
// workstations. Paragraph, the dynamic dependency analyzer, only consumes the
// dynamic stream of (operation class, register and memory operands), so any
// ISA with the same operand structure and the paper's Table-1 latency classes
// exercises the identical analysis code paths. This package supplies that
// ISA: instruction definitions, operand metadata, the Table-1 latency
// mapping, and a faithful 32-bit binary encoding with a disassembler.
//
// Deviations from real MIPS-I, chosen for simplicity and documented here:
//
//   - Floating point is double precision only (.D format, plus CVT to/from
//     32-bit integers). Each FP register holds a full 64-bit value; there is
//     no even/odd register pairing.
//   - There are no branch delay slots; branches take effect immediately.
//   - Loads have no load-delay slot.
//
// None of these affect the dependency structure that the DDG analysis
// observes, and all are common simplifications in architectural simulators.
package isa

import "fmt"

// Reg identifies a storage location in the register space. Values 0–31 are
// the integer registers, 32–63 the floating-point registers, followed by the
// HI/LO multiply-divide registers and the floating-point condition flag.
type Reg uint8

// Integer register names follow the MIPS o32 convention.
const (
	Zero Reg = iota // $0, hardwired zero
	AT              // $1, assembler temporary
	V0              // $2, result
	V1              // $3, result
	A0              // $4, argument
	A1              // $5, argument
	A2              // $6, argument
	A3              // $7, argument
	T0              // $8, caller-saved temporary
	T1
	T2
	T3
	T4
	T5
	T6
	T7
	S0 // $16, callee-saved
	S1
	S2
	S3
	S4
	S5
	S6
	S7
	T8 // $24
	T9
	K0 // $26, kernel reserved
	K1
	GP // $28, global pointer
	SP // $29, stack pointer
	FP // $30, frame pointer
	RA // $31, return address
)

// F0 is the first floating-point register; F0+i is $fi for i in [0,32).
const F0 Reg = 32

// Special (non-addressable-by-number) locations.
const (
	HI  Reg = 64 + iota // multiply/divide high result
	LO                  // multiply/divide low result
	FCC                 // floating-point condition code flag

	// NumRegs is the total number of register-space locations; useful for
	// sizing dense per-register tables.
	NumRegs
)

var intRegNames = [32]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// String returns the conventional assembly name of the register ("$t0",
// "$f2", "$hi", …).
func (r Reg) String() string {
	switch {
	case r < 32:
		return "$" + intRegNames[r]
	case r < 64:
		return fmt.Sprintf("$f%d", r-F0)
	case r == HI:
		return "$hi"
	case r == LO:
		return "$lo"
	case r == FCC:
		return "$fcc"
	}
	return fmt.Sprintf("$?%d", uint8(r))
}

// IsFP reports whether r is a floating-point data register.
func (r Reg) IsFP() bool { return r >= 32 && r < 64 }

// IsInt reports whether r is a general-purpose integer register.
func (r Reg) IsInt() bool { return r < 32 }

// IntReg returns the integer register with the given number, panicking if n
// is out of range. It exists to make call sites self-describing.
func IntReg(n int) Reg {
	if n < 0 || n > 31 {
		panic(fmt.Sprintf("isa: integer register number %d out of range", n))
	}
	return Reg(n)
}

// FPReg returns the floating-point register $fn.
func FPReg(n int) Reg {
	if n < 0 || n > 31 {
		panic(fmt.Sprintf("isa: FP register number %d out of range", n))
	}
	return F0 + Reg(n)
}

// OpClass partitions operations into the latency classes of the paper's
// Table 1 ("Instruction Class Operation Times").
type OpClass uint8

const (
	ClassNone    OpClass = iota // not placed in the DDG and no latency (e.g. NOP)
	ClassIntALU                 // integer ALU: 1 step
	ClassIntMul                 // integer multiply: 6 steps
	ClassIntDiv                 // integer division: 12 steps
	ClassFPAdd                  // FP add/sub (also compare, convert): 6 steps
	ClassFPMul                  // FP multiply: 6 steps
	ClassFPDiv                  // FP division: 12 steps
	ClassLoad                   // memory load: 1 step
	ClassStore                  // memory store: 1 step
	ClassBranch                 // conditional branch: control only, excluded from DDG
	ClassJump                   // unconditional jump/call/return: excluded from DDG
	ClassSyscall                // system call: 1 step

	numOpClasses
)

var opClassNames = [numOpClasses]string{
	"none", "int-alu", "int-mul", "int-div", "fp-add", "fp-mul", "fp-div",
	"load", "store", "branch", "jump", "syscall",
}

func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Latency returns the operation time of the class in DDG levels, exactly the
// values of Table 1 in the paper. Branches and jumps return 1 although they
// are never placed in the DDG (the value is used only if a machine model
// chooses to account for them).
func (c OpClass) Latency() int {
	switch c {
	case ClassIntALU, ClassLoad, ClassStore, ClassSyscall, ClassBranch, ClassJump:
		return 1
	case ClassIntMul, ClassFPAdd, ClassFPMul:
		return 6
	case ClassIntDiv, ClassFPDiv:
		return 12
	}
	return 1
}

// Format describes the binary-encoding format of an operation.
type Format uint8

const (
	FormatR  Format = iota // register: op rd, rs, rt (or shifts with shamt)
	FormatI                // immediate: op rt, rs, imm16
	FormatJ                // jump: op target26
	FormatFR               // COP1 register: op fd, fs, ft
	FormatFI               // COP1 branch / move: mixed
)

// Op enumerates every operation in the ISA.
type Op uint8

const (
	// Integer register-register arithmetic.
	ADD Op = iota
	ADDU
	SUB
	SUBU
	AND
	OR
	XOR
	NOR
	SLT
	SLTU
	SLL
	SRL
	SRA
	SLLV
	SRLV
	SRAV
	MULT
	MULTU
	DIV
	DIVU
	MFHI
	MFLO
	MTHI
	MTLO
	JR
	JALR
	SYSCALL
	BREAK

	// Integer immediate arithmetic.
	ADDI
	ADDIU
	SLTI
	SLTIU
	ANDI
	ORI
	XORI
	LUI

	// Memory.
	LB
	LBU
	LH
	LHU
	LW
	SB
	SH
	SW
	LDC1
	SDC1

	// Control.
	J
	JAL
	BEQ
	BNE
	BLEZ
	BGTZ
	BLTZ
	BGEZ

	// Floating point (double precision).
	ADDD
	SUBD
	MULD
	DIVD
	ABSD
	NEGD
	MOVD
	CVTDW
	CVTWD
	CEQD
	CLTD
	CLED
	BC1T
	BC1F
	MFC1
	MTC1

	NOP

	// NumOps is the number of defined operations.
	NumOps
)

// OpInfo is the static metadata of an operation.
type OpInfo struct {
	Name   string
	Class  OpClass
	Format Format

	// Operand roles, used by the assembler, disassembler and simulator.
	ReadsRs  bool
	ReadsRt  bool
	WritesRd bool // destination is the Rd slot (R/FR formats)
	WritesRt bool // destination is the Rt slot (I-format ALU ops and loads)
	HasImm   bool
	HasShamt bool

	// Memory behaviour.
	IsLoad  bool
	IsStore bool
	MemSize int // bytes accessed for loads/stores

	// Control behaviour.
	IsBranch bool // PC-relative conditional branch
	IsJump   bool // unconditional jump (J/JAL/JR/JALR)
	IsCall   bool // writes a return address (JAL/JALR)

	// Implicit register effects.
	ReadsHILO  bool
	WritesHILO bool
	ReadsFCC   bool
	WritesFCC  bool
}

var opInfos = [NumOps]OpInfo{
	ADD:   {Name: "add", Class: ClassIntALU, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	ADDU:  {Name: "addu", Class: ClassIntALU, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	SUB:   {Name: "sub", Class: ClassIntALU, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	SUBU:  {Name: "subu", Class: ClassIntALU, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	AND:   {Name: "and", Class: ClassIntALU, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	OR:    {Name: "or", Class: ClassIntALU, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	XOR:   {Name: "xor", Class: ClassIntALU, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	NOR:   {Name: "nor", Class: ClassIntALU, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	SLT:   {Name: "slt", Class: ClassIntALU, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	SLTU:  {Name: "sltu", Class: ClassIntALU, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	SLL:   {Name: "sll", Class: ClassIntALU, Format: FormatR, ReadsRt: true, WritesRd: true, HasShamt: true},
	SRL:   {Name: "srl", Class: ClassIntALU, Format: FormatR, ReadsRt: true, WritesRd: true, HasShamt: true},
	SRA:   {Name: "sra", Class: ClassIntALU, Format: FormatR, ReadsRt: true, WritesRd: true, HasShamt: true},
	SLLV:  {Name: "sllv", Class: ClassIntALU, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	SRLV:  {Name: "srlv", Class: ClassIntALU, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	SRAV:  {Name: "srav", Class: ClassIntALU, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	MULT:  {Name: "mult", Class: ClassIntMul, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesHILO: true},
	MULTU: {Name: "multu", Class: ClassIntMul, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesHILO: true},
	DIV:   {Name: "div", Class: ClassIntDiv, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesHILO: true},
	DIVU:  {Name: "divu", Class: ClassIntDiv, Format: FormatR, ReadsRs: true, ReadsRt: true, WritesHILO: true},
	MFHI:  {Name: "mfhi", Class: ClassIntALU, Format: FormatR, WritesRd: true, ReadsHILO: true},
	MFLO:  {Name: "mflo", Class: ClassIntALU, Format: FormatR, WritesRd: true, ReadsHILO: true},
	MTHI:  {Name: "mthi", Class: ClassIntALU, Format: FormatR, ReadsRs: true, WritesHILO: true},
	MTLO:  {Name: "mtlo", Class: ClassIntALU, Format: FormatR, ReadsRs: true, WritesHILO: true},
	JR:    {Name: "jr", Class: ClassJump, Format: FormatR, ReadsRs: true, IsJump: true},
	JALR:  {Name: "jalr", Class: ClassJump, Format: FormatR, ReadsRs: true, WritesRd: true, IsJump: true, IsCall: true},

	SYSCALL: {Name: "syscall", Class: ClassSyscall, Format: FormatR},
	BREAK:   {Name: "break", Class: ClassSyscall, Format: FormatR},

	ADDI:  {Name: "addi", Class: ClassIntALU, Format: FormatI, ReadsRs: true, WritesRt: true, HasImm: true},
	ADDIU: {Name: "addiu", Class: ClassIntALU, Format: FormatI, ReadsRs: true, WritesRt: true, HasImm: true},
	SLTI:  {Name: "slti", Class: ClassIntALU, Format: FormatI, ReadsRs: true, WritesRt: true, HasImm: true},
	SLTIU: {Name: "sltiu", Class: ClassIntALU, Format: FormatI, ReadsRs: true, WritesRt: true, HasImm: true},
	ANDI:  {Name: "andi", Class: ClassIntALU, Format: FormatI, ReadsRs: true, WritesRt: true, HasImm: true},
	ORI:   {Name: "ori", Class: ClassIntALU, Format: FormatI, ReadsRs: true, WritesRt: true, HasImm: true},
	XORI:  {Name: "xori", Class: ClassIntALU, Format: FormatI, ReadsRs: true, WritesRt: true, HasImm: true},
	LUI:   {Name: "lui", Class: ClassIntALU, Format: FormatI, WritesRt: true, HasImm: true},

	LB:   {Name: "lb", Class: ClassLoad, Format: FormatI, ReadsRs: true, WritesRt: true, HasImm: true, IsLoad: true, MemSize: 1},
	LBU:  {Name: "lbu", Class: ClassLoad, Format: FormatI, ReadsRs: true, WritesRt: true, HasImm: true, IsLoad: true, MemSize: 1},
	LH:   {Name: "lh", Class: ClassLoad, Format: FormatI, ReadsRs: true, WritesRt: true, HasImm: true, IsLoad: true, MemSize: 2},
	LHU:  {Name: "lhu", Class: ClassLoad, Format: FormatI, ReadsRs: true, WritesRt: true, HasImm: true, IsLoad: true, MemSize: 2},
	LW:   {Name: "lw", Class: ClassLoad, Format: FormatI, ReadsRs: true, WritesRt: true, HasImm: true, IsLoad: true, MemSize: 4},
	SB:   {Name: "sb", Class: ClassStore, Format: FormatI, ReadsRs: true, ReadsRt: true, HasImm: true, IsStore: true, MemSize: 1},
	SH:   {Name: "sh", Class: ClassStore, Format: FormatI, ReadsRs: true, ReadsRt: true, HasImm: true, IsStore: true, MemSize: 2},
	SW:   {Name: "sw", Class: ClassStore, Format: FormatI, ReadsRs: true, ReadsRt: true, HasImm: true, IsStore: true, MemSize: 4},
	LDC1: {Name: "ldc1", Class: ClassLoad, Format: FormatI, ReadsRs: true, WritesRt: true, HasImm: true, IsLoad: true, MemSize: 8},
	SDC1: {Name: "sdc1", Class: ClassStore, Format: FormatI, ReadsRs: true, ReadsRt: true, HasImm: true, IsStore: true, MemSize: 8},

	J:    {Name: "j", Class: ClassJump, Format: FormatJ, IsJump: true},
	JAL:  {Name: "jal", Class: ClassJump, Format: FormatJ, IsJump: true, IsCall: true},
	BEQ:  {Name: "beq", Class: ClassBranch, Format: FormatI, ReadsRs: true, ReadsRt: true, HasImm: true, IsBranch: true},
	BNE:  {Name: "bne", Class: ClassBranch, Format: FormatI, ReadsRs: true, ReadsRt: true, HasImm: true, IsBranch: true},
	BLEZ: {Name: "blez", Class: ClassBranch, Format: FormatI, ReadsRs: true, HasImm: true, IsBranch: true},
	BGTZ: {Name: "bgtz", Class: ClassBranch, Format: FormatI, ReadsRs: true, HasImm: true, IsBranch: true},
	BLTZ: {Name: "bltz", Class: ClassBranch, Format: FormatI, ReadsRs: true, HasImm: true, IsBranch: true},
	BGEZ: {Name: "bgez", Class: ClassBranch, Format: FormatI, ReadsRs: true, HasImm: true, IsBranch: true},

	ADDD:  {Name: "add.d", Class: ClassFPAdd, Format: FormatFR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	SUBD:  {Name: "sub.d", Class: ClassFPAdd, Format: FormatFR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	MULD:  {Name: "mul.d", Class: ClassFPMul, Format: FormatFR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	DIVD:  {Name: "div.d", Class: ClassFPDiv, Format: FormatFR, ReadsRs: true, ReadsRt: true, WritesRd: true},
	ABSD:  {Name: "abs.d", Class: ClassFPAdd, Format: FormatFR, ReadsRs: true, WritesRd: true},
	NEGD:  {Name: "neg.d", Class: ClassFPAdd, Format: FormatFR, ReadsRs: true, WritesRd: true},
	MOVD:  {Name: "mov.d", Class: ClassIntALU, Format: FormatFR, ReadsRs: true, WritesRd: true},
	CVTDW: {Name: "cvt.d.w", Class: ClassFPAdd, Format: FormatFR, ReadsRs: true, WritesRd: true},
	CVTWD: {Name: "cvt.w.d", Class: ClassFPAdd, Format: FormatFR, ReadsRs: true, WritesRd: true},
	CEQD:  {Name: "c.eq.d", Class: ClassFPAdd, Format: FormatFR, ReadsRs: true, ReadsRt: true, WritesFCC: true},
	CLTD:  {Name: "c.lt.d", Class: ClassFPAdd, Format: FormatFR, ReadsRs: true, ReadsRt: true, WritesFCC: true},
	CLED:  {Name: "c.le.d", Class: ClassFPAdd, Format: FormatFR, ReadsRs: true, ReadsRt: true, WritesFCC: true},
	BC1T:  {Name: "bc1t", Class: ClassBranch, Format: FormatFI, HasImm: true, IsBranch: true, ReadsFCC: true},
	BC1F:  {Name: "bc1f", Class: ClassBranch, Format: FormatFI, HasImm: true, IsBranch: true, ReadsFCC: true},
	MFC1:  {Name: "mfc1", Class: ClassIntALU, Format: FormatFI, ReadsRs: true, WritesRt: true},
	MTC1:  {Name: "mtc1", Class: ClassIntALU, Format: FormatFI, ReadsRt: true, WritesRd: true},

	NOP: {Name: "nop", Class: ClassNone, Format: FormatR},
}

// Info returns the static metadata of op.
func (op Op) Info() *OpInfo {
	if op >= NumOps {
		panic(fmt.Sprintf("isa: invalid opcode %d", uint8(op)))
	}
	return &opInfos[op]
}

// String returns the assembly mnemonic.
func (op Op) String() string {
	if op < NumOps {
		return opInfos[op].Name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Class returns the latency class of op.
func (op Op) Class() OpClass { return op.Info().Class }

// Latency returns the Table-1 operation time of op in DDG levels.
func (op Op) Latency() int { return op.Info().Class.Latency() }

// opsByName maps mnemonics to opcodes; built once at init.
var opsByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); op < NumOps; op++ {
		m[opInfos[op].Name] = op
	}
	return m
}()

// LookupOp resolves a mnemonic to its opcode.
func LookupOp(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

// Instruction is a decoded machine instruction. The meaning of the register
// fields depends on the format; Imm holds the sign-extended 16-bit immediate
// for I-format instructions, and Target the 26-bit word target for J-format.
type Instruction struct {
	Op     Op
	Rd     Reg
	Rs     Reg
	Rt     Reg
	Shamt  uint8
	Imm    int32
	Target uint32
}

// Dest returns the register written by the instruction (register
// destinations only — stores write memory) and whether there is one.
// Instructions with implicit destinations (HI/LO, FCC) report those.
func (ins *Instruction) Dest() (Reg, bool) {
	info := ins.Op.Info()
	switch {
	case info.WritesRd:
		return ins.Rd, true
	case info.WritesRt:
		return ins.Rt, true
	case info.WritesHILO:
		// MULT/DIV write both HI and LO; callers that need both use
		// the info flags directly. LO carries the primary result.
		return LO, true
	case info.WritesFCC:
		return FCC, true
	}
	return 0, false
}

// SourceRegs appends the register sources of the instruction to dst and
// returns the extended slice. The $zero register is included (callers that
// want to ignore it can filter); HI/LO and FCC implicit reads are included.
func (ins *Instruction) SourceRegs(dst []Reg) []Reg {
	info := ins.Op.Info()
	if info.ReadsRs {
		dst = append(dst, ins.Rs)
	}
	if info.ReadsRt {
		dst = append(dst, ins.Rt)
	}
	if info.ReadsHILO {
		if ins.Op == MFHI {
			dst = append(dst, HI)
		} else {
			dst = append(dst, LO)
		}
	}
	if info.ReadsFCC {
		dst = append(dst, FCC)
	}
	return dst
}

// String disassembles the instruction without symbolic labels.
func (ins *Instruction) String() string {
	return Disassemble(ins)
}
