package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTable1Latencies(t *testing.T) {
	// The paper's Table 1: Instruction Class Operation Times.
	cases := []struct {
		class OpClass
		want  int
	}{
		{ClassIntALU, 1},
		{ClassIntMul, 6},
		{ClassIntDiv, 12},
		{ClassFPAdd, 6},
		{ClassFPMul, 6},
		{ClassFPDiv, 12},
		{ClassLoad, 1},
		{ClassStore, 1},
		{ClassSyscall, 1},
	}
	for _, c := range cases {
		if got := c.class.Latency(); got != c.want {
			t.Errorf("latency(%v) = %d, want %d", c.class, got, c.want)
		}
	}
}

func TestOpLatencies(t *testing.T) {
	cases := []struct {
		op   Op
		want int
	}{
		{ADD, 1}, {MULT, 6}, {DIV, 12}, {ADDD, 6}, {SUBD, 6},
		{MULD, 6}, {DIVD, 12}, {LW, 1}, {SW, 1}, {SYSCALL, 1},
	}
	for _, c := range cases {
		if got := c.op.Latency(); got != c.want {
			t.Errorf("latency(%v) = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{Zero, "$zero"}, {SP, "$sp"}, {RA, "$ra"}, {T0, "$t0"},
		{F0, "$f0"}, {FPReg(31), "$f31"}, {HI, "$hi"}, {LO, "$lo"}, {FCC, "$fcc"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegHelpers(t *testing.T) {
	if !FPReg(3).IsFP() || FPReg(3).IsInt() {
		t.Errorf("FPReg(3) misclassified")
	}
	if !IntReg(5).IsInt() || IntReg(5).IsFP() {
		t.Errorf("IntReg(5) misclassified")
	}
	if HI.IsInt() || HI.IsFP() {
		t.Errorf("HI should be neither int nor FP data register")
	}
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { IntReg(32) })
	mustPanic(func() { FPReg(-1) })
}

func TestLookupOp(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		got, ok := LookupOp(op.String())
		if !ok || got != op {
			t.Errorf("LookupOp(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := LookupOp("frobnicate"); ok {
		t.Errorf("LookupOp accepted a bogus mnemonic")
	}
}

func TestDestAndSources(t *testing.T) {
	add := Instruction{Op: ADD, Rd: T0, Rs: T1, Rt: T2}
	d, ok := add.Dest()
	if !ok || d != T0 {
		t.Errorf("ADD dest = %v, %v", d, ok)
	}
	srcs := add.SourceRegs(nil)
	if len(srcs) != 2 || srcs[0] != T1 || srcs[1] != T2 {
		t.Errorf("ADD sources = %v", srcs)
	}

	lw := Instruction{Op: LW, Rt: T0, Rs: SP, Imm: 4}
	d, ok = lw.Dest()
	if !ok || d != T0 {
		t.Errorf("LW dest = %v, %v", d, ok)
	}

	sw := Instruction{Op: SW, Rt: T0, Rs: SP, Imm: 4}
	if _, ok := sw.Dest(); ok {
		t.Errorf("SW should not report a register destination")
	}

	mult := Instruction{Op: MULT, Rs: T0, Rt: T1}
	d, ok = mult.Dest()
	if !ok || d != LO {
		t.Errorf("MULT dest = %v, %v", d, ok)
	}

	mfhi := Instruction{Op: MFHI, Rd: T3}
	srcs = mfhi.SourceRegs(nil)
	if len(srcs) != 1 || srcs[0] != HI {
		t.Errorf("MFHI sources = %v", srcs)
	}

	ceq := Instruction{Op: CEQD, Rs: F0, Rt: F0 + 2}
	d, ok = ceq.Dest()
	if !ok || d != FCC {
		t.Errorf("C.EQ.D dest = %v, %v", d, ok)
	}

	bc1t := Instruction{Op: BC1T, Imm: 8}
	srcs = bc1t.SourceRegs(nil)
	if len(srcs) != 1 || srcs[0] != FCC {
		t.Errorf("BC1T sources = %v", srcs)
	}
}

// sampleInstructions returns one representative instruction per opcode with
// plausible operand values for round-trip testing.
func sampleInstructions() []Instruction {
	var out []Instruction
	for op := Op(0); op < NumOps; op++ {
		info := op.Info()
		ins := Instruction{Op: op}
		fp := info.Format == FormatFR
		pick := func(n int) Reg {
			if fp {
				return FPReg(n)
			}
			return IntReg(n)
		}
		if info.ReadsRs {
			ins.Rs = pick(4)
		}
		if info.ReadsRt || info.WritesRt {
			ins.Rt = pick(5)
		}
		if info.WritesRd {
			ins.Rd = pick(6)
		}
		if info.HasImm {
			ins.Imm = -42
		}
		if info.HasShamt {
			ins.Shamt = 7
		}
		switch op {
		case J, JAL:
			ins.Target = 0x123456
		case MFC1:
			ins.Rs = FPReg(8) // FP source, int dest
		case MTC1:
			ins.Rd = FPReg(9) // int source, FP dest
		case LDC1, SDC1:
			ins.Rt = FPReg(10)
			ins.Rs = SP
		case CVTDW, CVTWD:
			ins.Rs = FPReg(2)
			ins.Rd = FPReg(4)
		}
		out = append(out, ins)
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, ins := range sampleInstructions() {
		word, err := Encode(&ins)
		if err != nil {
			t.Errorf("Encode(%v): %v", &ins, err)
			continue
		}
		got, err := Decode(word)
		if err != nil {
			t.Errorf("Decode(Encode(%v)) = %#x: %v", &ins, word, err)
			continue
		}
		if got != ins {
			t.Errorf("round trip %v: got %+v want %+v (word %#x)", ins.Op, got, ins, word)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := []uint32{
		0x3f<<26 | 1,      // unassigned major opcode
		0x00<<26 | 1,      // SPECIAL with unknown function 1 (non-zero word)
		0x01<<26 | 31<<16, // REGIMM with unknown rt
	}
	for _, w := range bad {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#x) succeeded, want error", w)
		}
	}
}

func TestDecodeZeroIsNOP(t *testing.T) {
	ins, err := Decode(0)
	if err != nil || ins.Op != NOP {
		t.Fatalf("Decode(0) = %v, %v; want NOP", ins, err)
	}
}

// TestEncodeDecodeQuick fuzzes random R-format integer instructions through
// the encoder and decoder.
func TestEncodeDecodeQuick(t *testing.T) {
	rOps := []Op{ADD, ADDU, SUB, SUBU, AND, OR, XOR, NOR, SLT, SLTU, SLLV, SRLV, SRAV}
	f := func(opIdx, rd, rs, rt uint8) bool {
		ins := Instruction{
			Op: rOps[int(opIdx)%len(rOps)],
			Rd: Reg(rd % 32), Rs: Reg(rs % 32), Rt: Reg(rt % 32),
		}
		w, err := Encode(&ins)
		if err != nil {
			return false
		}
		got, err := Decode(w)
		return err == nil && got == ins
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDecodeQuickImm fuzzes random I-format instructions, including
// negative immediates.
func TestEncodeDecodeQuickImm(t *testing.T) {
	iOps := []Op{ADDI, ADDIU, SLTI, SLTIU, ANDI, ORI, XORI, LW, SW, BEQ, BNE}
	f := func(opIdx, rs, rt uint8, imm int16) bool {
		ins := Instruction{
			Op: iOps[int(opIdx)%len(iOps)],
			Rs: Reg(rs % 32), Rt: Reg(rt % 32), Imm: int32(imm),
		}
		w, err := Encode(&ins)
		if err != nil {
			return false
		}
		got, err := Decode(w)
		return err == nil && got == ins
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDisassembleForms(t *testing.T) {
	cases := []struct {
		ins  Instruction
		want string
	}{
		{Instruction{Op: ADD, Rd: T0, Rs: T1, Rt: T2}, "add $t0, $t1, $t2"},
		{Instruction{Op: ADDI, Rt: T0, Rs: T1, Imm: -4}, "addi $t0, $t1, -4"},
		{Instruction{Op: LW, Rt: T0, Rs: SP, Imm: 8}, "lw $t0, 8($sp)"},
		{Instruction{Op: SW, Rt: T0, Rs: SP, Imm: -12}, "sw $t0, -12($sp)"},
		{Instruction{Op: SLL, Rd: T0, Rt: T1, Shamt: 3}, "sll $t0, $t1, 3"},
		{Instruction{Op: LUI, Rt: T0, Imm: 100}, "lui $t0, 100"},
		{Instruction{Op: BEQ, Rs: T0, Rt: T1, Imm: 16}, "beq $t0, $t1, 16"},
		{Instruction{Op: BLEZ, Rs: T0, Imm: -8}, "blez $t0, -8"},
		{Instruction{Op: J, Target: 0x100}, "j 0x400"},
		{Instruction{Op: JR, Rs: RA}, "jr $ra"},
		{Instruction{Op: JALR, Rd: RA, Rs: T9}, "jalr $ra, $t9"},
		{Instruction{Op: SYSCALL}, "syscall"},
		{Instruction{Op: NOP}, "nop"},
		{Instruction{Op: MULT, Rs: T0, Rt: T1}, "mult $t0, $t1"},
		{Instruction{Op: MFLO, Rd: T2}, "mflo $t2"},
		{Instruction{Op: ADDD, Rd: FPReg(0), Rs: FPReg(2), Rt: FPReg(4)}, "add.d $f0, $f2, $f4"},
		{Instruction{Op: LDC1, Rt: FPReg(2), Rs: SP, Imm: 16}, "ldc1 $f2, 16($sp)"},
		{Instruction{Op: MTC1, Rt: T0, Rd: FPReg(2)}, "mtc1 $t0, $f2"},
		{Instruction{Op: MFC1, Rt: T0, Rs: FPReg(2)}, "mfc1 $t0, $f2"},
		{Instruction{Op: BC1T, Imm: 4}, "bc1t 4"},
		{Instruction{Op: CEQD, Rs: FPReg(0), Rt: FPReg(2)}, "c.eq.d $f0, $f2"},
	}
	for _, c := range cases {
		if got := Disassemble(&c.ins); got != c.want {
			t.Errorf("Disassemble(%v) = %q, want %q", c.ins.Op, got, c.want)
		}
	}
}
