package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"paragraph/internal/core"
	"paragraph/internal/remote"
	"paragraph/internal/shard"
)

// Job states. A job is terminal in done, degraded or failed; queued and
// running jobs are resumable — a daemon restart re-queues them and they
// continue from the last completed shard.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateDegraded = "degraded"
	StateFailed   = "failed"
)

// shardProgress is one shard's live status inside a job view. Worker
// names the fleet worker holding (or last holding) the shard's lease;
// empty means the attempt ran locally.
type shardProgress struct {
	State    string `json:"state"` // pending, running, done, failed
	Attempts int    `json:"attempts"`
	Events   uint64 `json:"events"`
	Worker   string `json:"worker,omitempty"`
}

// job is the in-memory runtime of one analysis job. Everything a handler
// reads is behind mu; the worker goroutine running the job is the only
// writer (lease bookkeeping — noteWorker, noteLeaseExpired — also writes,
// from the HTTP handlers and the sweeper).
type job struct {
	spec JobSpec

	mu            sync.Mutex
	state         string
	shards        []shardProgress
	retry         remote.Stats
	leaseExpiries int
	degraded      *DegradedMark
	errMsg        string
	subs          map[chan JobEvent]struct{}
}

// errInterrupted marks a job stopped by drain or shutdown rather than
// failed: it stays resumable and is never marked degraded.
var errInterrupted = errors.New("serve: interrupted")

// runJob is the worker entry point: it drives the job to a terminal state
// or leaves it queued when interrupted.
func (s *Server) runJob(j *job) {
	err := s.runJobChain(j)
	switch {
	case err == nil:
		// terminal state already set (done or degraded)
	case errors.Is(err, errInterrupted):
		j.setState(StateQueued) // resumable: a restart picks it up from disk
	default:
		j.fail(err)
	}
}

// runJobChain runs one job's shard chain: acquire the trace, plan (or load
// the persisted plan), then walk the shards in order, resuming from
// persisted shard results and supervising each remaining shard through its
// attempt budget. Completion and degradation both return nil — the job
// state carries the distinction.
func (s *Server) runJobChain(j *job) error {
	spec := j.spec
	ti, ok := s.traceInfo(spec.TraceID)
	if !ok {
		return fmt.Errorf("job %s: unknown trace %q", spec.ID, spec.TraceID)
	}
	j.setState(StateRunning)

	// Acquire the input. Local traces are read whole; remote traces are
	// probed now and fetched per shard range later.
	var data []byte
	var src *remote.Source
	if ti.Remote {
		var err error
		src, err = remote.Open(s.ctx, ti.Location, s.remoteOpts(spec.ID))
		if err != nil {
			if s.ctx.Err() != nil {
				return errInterrupted
			}
			return fmt.Errorf("job %s: opening remote trace: %w", spec.ID, err)
		}
		j.setRetry(src.Stats())
	} else {
		var err error
		data, err = os.ReadFile(ti.Location)
		if err != nil {
			return fmt.Errorf("job %s: reading trace: %w", spec.ID, err)
		}
	}

	plan, err := s.jobPlan(j, src, data)
	if err != nil {
		if s.ctx.Err() != nil {
			return errInterrupted
		}
		return fmt.Errorf("job %s: %w", spec.ID, err)
	}
	j.initShards(len(plan.Shards))

	if spec.Speculate {
		return s.runJobSplice(j, ti, src, data, plan)
	}

	ns := len(plan.Shards)
	parts := make([]*shard.Result, ns)
	var prevCP *core.Checkpoint
	for i := 0; i < ns; i++ {
		if s.interrupted() {
			return errInterrupted
		}
		// Resume: a persisted shard result is complete (atomic rename), so
		// its checkpoint seeds the next shard exactly as a live run would.
		if part, cp, err := shard.LoadResult(s.st.shardPath(spec.ID, i)); err == nil {
			parts[i], prevCP = part, cp
			j.shardDone(i, part.Events)
			continue
		}
		part, cp, err := s.superviseShard(j, ti, src, data, plan, i, prevCP)
		if err != nil {
			if errors.Is(err, errInterrupted) {
				return errInterrupted
			}
			// Retries exhausted or a permanent fault: the checkpoint chain
			// is broken at shard i, so later shards cannot run. Keep the
			// completed partials and mark the job degraded — the
			// shard-level mirror of the trace format's degraded reads.
			mark := DegradedMark{Shard: i, Attempts: j.shardAttempts(i), Reason: err.Error()}
			if serr := s.st.saveDegraded(spec.ID, mark); serr != nil {
				return fmt.Errorf("job %s: persisting degradation: %w", spec.ID, serr)
			}
			j.setDegraded(&mark, i)
			return nil
		}
		if err := shard.SaveResult(s.st.shardPath(spec.ID, i), part, cp); err != nil {
			return fmt.Errorf("job %s: persisting shard %d: %w", spec.ID, i, err)
		}
		parts[i], prevCP = part, cp
		j.shardDone(i, part.Events)
		if s.afterShard != nil {
			s.afterShard(spec.ID, i)
		}
	}

	res, rs, err := shard.Merge(parts)
	if err != nil {
		return fmt.Errorf("job %s: merging shard results: %w", spec.ID, err)
	}
	if err := s.st.saveResult(spec.ID, &JobResult{Result: res, ReadStats: rs}); err != nil {
		return fmt.Errorf("job %s: persisting result: %w", spec.ID, err)
	}
	j.setState(StateDone)
	return nil
}

// runJobSplice is the speculative job engine: every unfinished shard's
// delta builds concurrently under the same supervision as a chained shard
// (attempt budget, panic containment, remote Section fetch per attempt,
// persisted atomically), then one sequential splice applies the deltas in
// order, persisting the same shard-N.pgsr files — result plus outgoing
// checkpoint — the chained path writes. A restarted job therefore resumes
// from whichever artifacts exist (finished shard results are skipped,
// persisted deltas are reused, the rest rebuild), and a shard that cannot
// be built or spliced degrades the job at that shard exactly as a broken
// chain would.
func (s *Server) runJobSplice(j *job, ti TraceInfo, src *remote.Source, data []byte, plan *shard.Plan) error {
	spec := j.spec
	ns := len(plan.Shards)
	parts := make([]*shard.Result, ns)
	cps := make([]*core.Checkpoint, ns)
	resumed := make([]bool, ns)
	for i := 0; i < ns; i++ {
		if part, cp, err := shard.LoadResult(s.st.shardPath(spec.ID, i)); err == nil {
			parts[i], cps[i], resumed[i] = part, cp, true
			j.shardDone(i, part.Events)
		}
	}

	// Every unfinished delta is offered at once: the local executor pool
	// bounds in-process concurrency globally, and any fleet worker can
	// claim the rest — no per-job semaphore.
	deltas := make([]*shard.Delta, ns)
	buildErrs := make([]error, ns)
	var wg sync.WaitGroup
	for i := 0; i < ns; i++ {
		if resumed[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			deltas[i], buildErrs[i] = s.superviseDelta(j, ti, src, data, plan, i)
		}(i)
	}
	wg.Wait()

	degrade := func(i int, reason string) error {
		mark := DegradedMark{Shard: i, Attempts: j.shardAttempts(i), Reason: reason}
		if serr := s.st.saveDegraded(spec.ID, mark); serr != nil {
			return fmt.Errorf("job %s: persisting degradation: %w", spec.ID, serr)
		}
		j.setDegraded(&mark, i)
		return nil
	}

	var a *core.Analyzer
	for i := 0; i < ns; i++ {
		if s.interrupted() {
			return errInterrupted
		}
		if resumed[i] {
			if cps[i] != nil {
				a = cps[i].Restore()
			}
			continue
		}
		if err := buildErrs[i]; err != nil {
			if errors.Is(err, errInterrupted) {
				return errInterrupted
			}
			// The splice cannot pass shard i; shards before it keep their
			// persisted results, exactly like a broken checkpoint chain.
			return degrade(i, err.Error())
		}
		if a == nil {
			// Only reachable at shard 0: every persisted non-final shard
			// result carries its outgoing checkpoint.
			a = core.NewAnalyzer(spec.Config)
		}
		d := deltas[i]
		part, cp, err := shard.RunShardDelta(a, d.D, spec.Config, d.ReadStats, i, ns, i < ns-1)
		if err != nil {
			j.shardFailed(i)
			return degrade(i, err.Error())
		}
		if err := shard.SaveResult(s.st.shardPath(spec.ID, i), part, cp); err != nil {
			return fmt.Errorf("job %s: persisting shard %d: %w", spec.ID, i, err)
		}
		parts[i] = part
		j.shardDone(i, part.Events)
		if s.afterShard != nil {
			s.afterShard(spec.ID, i)
		}
	}

	res, rs, err := shard.Merge(parts)
	if err != nil {
		return fmt.Errorf("job %s: merging shard results: %w", spec.ID, err)
	}
	if err := s.st.saveResult(spec.ID, &JobResult{Result: res, ReadStats: rs}); err != nil {
		return fmt.Errorf("job %s: persisting result: %w", spec.ID, err)
	}
	j.setState(StateDone)
	return nil
}

// superviseDelta builds one shard's speculative delta through the attempt
// budget, reusing a delta persisted by an earlier (killed) run of the job.
// Each attempt is offered to the shared queue — a local executor or a
// leased fleet worker runs it; an expired lease is one failed attempt. It
// is safe to call concurrently for different shards: remote Section
// fetches, progress notes and backoff draws are all internally locked.
func (s *Server) superviseDelta(j *job, ti TraceInfo, src *remote.Source, data []byte, plan *shard.Plan, i int) (*shard.Delta, error) {
	if d, err := shard.LoadDelta(s.st.deltaPath(j.spec.ID, i)); err == nil &&
		d.Index == i && d.Shards == len(plan.Shards) && d.D.StartEvent == plan.Shards[i].StartEvent {
		return d, nil
	}
	var lastErr error
	for attempt := 1; attempt <= s.shardAttempts; attempt++ {
		if s.interrupted() {
			return nil, errInterrupted
		}
		j.noteAttempt(i, attempt)
		out, derr := s.dispatch(&attemptOffer{
			j: j, ti: ti, plan: plan, shard: i, attempt: attempt, kind: kindDelta,
			src: src, data: data, outcome: make(chan attemptOutcome, 1),
		})
		if derr != nil {
			return nil, errInterrupted
		}
		if out.err == nil {
			if serr := shard.SaveDelta(s.st.deltaPath(j.spec.ID, i), out.delta); serr != nil {
				return nil, fmt.Errorf("shard %d: persisting delta: %w", i, serr)
			}
			return out.delta, nil
		}
		if s.ctx.Err() != nil {
			return nil, errInterrupted
		}
		if remote.IsPermanent(out.err) {
			return nil, fmt.Errorf("shard %d attempt %d: %w", i, attempt, out.err)
		}
		lastErr = out.err
		if attempt < s.shardAttempts {
			s.backoff(attempt)
		}
	}
	j.shardFailed(i)
	return nil, fmt.Errorf("shard %d: retry budget exhausted after %d attempts: %w", i, s.shardAttempts, lastErr)
}

// buildDeltaAttempt is one contained speculative build: fetch or slice the
// shard's bytes, decode, and compile with no entry state. Panics convert
// to a failed attempt, like runShardAttempt.
func (s *Server) buildDeltaAttempt(j *job, src *remote.Source, data []byte, plan *shard.Plan, i int) (d *shard.Delta, err error) {
	defer func() {
		if v := recover(); v != nil {
			d = nil
			err = fmt.Errorf("shard %d: panic contained: %v", i, v)
		}
	}()
	ctx := s.ctx
	if s.shardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(s.ctx, s.shardTimeout)
		defer cancel()
	}
	if s.beforeAttempt != nil {
		s.beforeAttempt(j.spec.ID, i)
	}

	sh := plan.Shards[i]
	buf := data
	if buf == nil {
		sect, start, end, ferr := src.Section(ctx, sh.Start, sh.End)
		j.setRetry(src.Stats())
		if ferr != nil {
			return nil, ferr
		}
		sh.Start, sh.End = start, end
		buf = sect
	}
	evbuf, err := shard.DecodeShard(ctx, buf, sh, plan.Degraded)
	if err != nil {
		return nil, err
	}
	cd, err := shard.BuildShardDelta(ctx, evbuf, j.spec.Config, sh)
	if err != nil {
		return nil, err
	}
	return &shard.Delta{
		Index: sh.Index, Shards: len(plan.Shards),
		Config: j.spec.Config, ReadStats: evbuf.Stats(), D: cd,
	}, nil
}

// jobPlan loads the persisted shard plan or computes and persists it. The
// plan is written before the first shard runs, so a resumed job always
// re-uses the original cut points — a replan over the same bytes would be
// identical, but trusting the persisted plan also catches a trace that
// changed under a job.
func (s *Server) jobPlan(j *job, src *remote.Source, data []byte) (*shard.Plan, error) {
	spec := j.spec
	if plan, err := s.st.loadPlan(spec.ID); err == nil {
		size := int64(len(data))
		if src != nil {
			size = src.Size()
		}
		if plan.TraceBytes != size {
			return nil, fmt.Errorf("plan is for a %d-byte trace, input is %d bytes (trace changed?)", plan.TraceBytes, size)
		}
		if plan.Degraded != spec.Degraded {
			return nil, fmt.Errorf("plan read mode (degraded=%v) does not match spec (degraded=%v)", plan.Degraded, spec.Degraded)
		}
		return plan, nil
	}
	// Planning needs the whole trace once; remote jobs release the buffer
	// afterwards and refetch only per-shard ranges (which is also why a
	// resumed remote job never downloads completed shards again).
	full := data
	if full == nil {
		var err error
		full, err = src.FetchAll(s.ctx)
		j.setRetry(src.Stats())
		if err != nil {
			return nil, fmt.Errorf("fetching trace for planning: %w", err)
		}
	}
	plan, err := shard.Split(full, spec.Shards, shard.Options{Degraded: spec.Degraded})
	if err != nil {
		return nil, err
	}
	if err := s.st.savePlan(spec.ID, plan); err != nil {
		return nil, fmt.Errorf("persisting plan: %w", err)
	}
	return plan, nil
}

// superviseShard runs one shard through its attempt budget: each attempt
// is offered to the shared queue, where a local executor gives it a
// deadline and panic containment and a leased fleet worker is bounded by
// its heartbeat TTL. Transient failures — including an expired lease —
// back off with seeded jitter and retry; permanent ones (and an exhausted
// budget) fail the shard.
func (s *Server) superviseShard(j *job, ti TraceInfo, src *remote.Source, data []byte, plan *shard.Plan, i int, prevCP *core.Checkpoint) (*shard.Result, *core.Checkpoint, error) {
	var lastErr error
	for attempt := 1; attempt <= s.shardAttempts; attempt++ {
		if s.interrupted() {
			return nil, nil, errInterrupted
		}
		j.noteAttempt(i, attempt)
		out, derr := s.dispatch(&attemptOffer{
			j: j, ti: ti, plan: plan, shard: i, attempt: attempt, kind: kindChain,
			prevCP: prevCP, src: src, data: data, outcome: make(chan attemptOutcome, 1),
		})
		if derr != nil {
			return nil, nil, errInterrupted
		}
		if out.err == nil {
			return out.part, out.cp, nil
		}
		if s.ctx.Err() != nil {
			// Root cancellation surfaces through the attempt context; it is
			// shutdown, not a shard failure.
			return nil, nil, errInterrupted
		}
		if remote.IsPermanent(out.err) {
			return nil, nil, fmt.Errorf("shard %d attempt %d: %w", i, attempt, out.err)
		}
		lastErr = out.err
		if attempt < s.shardAttempts {
			s.backoff(attempt)
		}
	}
	j.shardFailed(i)
	return nil, nil, fmt.Errorf("shard %d: retry budget exhausted after %d attempts: %w", i, s.shardAttempts, lastErr)
}

// runShardAttempt is one contained attempt: fetch (remote) or slice
// (local) the shard's bytes, decode, and replay through an analyzer seeded
// from the previous shard's checkpoint. A panic anywhere inside — decode,
// analysis, or a fetch bug — converts to an error and counts as a failed
// attempt instead of killing the worker.
func (s *Server) runShardAttempt(j *job, src *remote.Source, data []byte, plan *shard.Plan, i int, prevCP *core.Checkpoint) (part *shard.Result, cp *core.Checkpoint, err error) {
	defer func() {
		if v := recover(); v != nil {
			part, cp = nil, nil
			err = fmt.Errorf("shard %d: panic contained: %v", i, v)
		}
	}()
	ctx := s.ctx
	if s.shardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(s.ctx, s.shardTimeout)
		defer cancel()
	}
	if s.beforeAttempt != nil {
		s.beforeAttempt(j.spec.ID, i)
	}

	sh := plan.Shards[i]
	buf := data
	if buf == nil {
		// Remote: fetch exactly this shard's byte range, stitched behind
		// the trace header so the section reader sees a well-formed file.
		sect, start, end, ferr := src.Section(ctx, sh.Start, sh.End)
		j.setRetry(src.Stats())
		if ferr != nil {
			return nil, nil, ferr
		}
		sh.Start, sh.End = start, end
		buf = sect
	}
	evbuf, err := shard.DecodeShard(ctx, buf, sh, plan.Degraded)
	if err != nil {
		return nil, nil, err
	}
	var a *core.Analyzer
	if prevCP != nil {
		// Restore clones per call, so a retried attempt starts from the
		// same pristine state every time.
		a = prevCP.Restore()
	} else {
		a = core.NewAnalyzer(j.spec.Config)
	}
	want := i < len(plan.Shards)-1
	return shard.RunShard(ctx, a, evbuf, j.spec.Config, plan.Shards[i], len(plan.Shards), want)
}

// backoff sleeps the supervisor's jittered exponential delay for the given
// attempt number, same curve as the remote reader: d in [base<<(n-1)/2,
// 3*base<<(n-1)/2), capped at retryMax.
func (s *Server) backoff(attempt int) {
	d := s.retryBase << uint(attempt-1)
	if d > s.retryMax || d <= 0 {
		d = s.retryMax
	}
	s.rngMu.Lock()
	d = d/2 + time.Duration(s.rng.Int63n(int64(d)))
	s.rngMu.Unlock()
	if s.sleep != nil {
		s.sleep(d)
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-s.ctx.Done():
	}
}

// interrupted reports whether the daemon is draining or shutting down.
func (s *Server) interrupted() bool {
	select {
	case <-s.drainCh:
		return true
	default:
	}
	return s.ctx.Err() != nil
}

func (j *job) setState(st string) {
	j.mu.Lock()
	j.state = st
	j.emitLocked(JobEvent{Shard: -1})
	j.mu.Unlock()
}

func (j *job) fail(err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.errMsg = err.Error()
	j.emitLocked(JobEvent{Shard: -1})
	j.mu.Unlock()
}

func (j *job) setDegraded(mark *DegradedMark, i int) {
	j.mu.Lock()
	j.state = StateDegraded
	j.degraded = mark
	if i < len(j.shards) {
		j.shards[i].State = "failed"
	}
	j.emitLocked(JobEvent{Shard: i, ShardState: "failed"})
	j.mu.Unlock()
}

func (j *job) setRetry(st remote.Stats) {
	j.mu.Lock()
	j.retry = st
	j.mu.Unlock()
}

func (j *job) initShards(n int) {
	j.mu.Lock()
	if len(j.shards) != n {
		j.shards = make([]shardProgress, n)
	}
	for i := range j.shards {
		if j.shards[i].State == "" {
			j.shards[i].State = "pending"
		}
	}
	j.mu.Unlock()
}

func (j *job) noteAttempt(i, attempt int) {
	j.mu.Lock()
	if i < len(j.shards) {
		j.shards[i].State = "running"
		j.shards[i].Attempts = attempt
		j.shards[i].Worker = ""
		j.emitLocked(JobEvent{Shard: i, ShardState: "running", Attempts: attempt})
	}
	j.mu.Unlock()
}

// noteWorker records that the shard's current attempt is leased to the
// named fleet worker.
func (j *job) noteWorker(i int, worker string) {
	j.mu.Lock()
	if i < len(j.shards) {
		j.shards[i].Worker = worker
		j.emitLocked(JobEvent{Shard: i, ShardState: "running",
			Attempts: j.shards[i].Attempts, Worker: worker})
	}
	j.mu.Unlock()
}

// noteLeaseExpired counts a lease that lapsed without a heartbeat; the
// attempt itself fails through the normal transient path.
func (j *job) noteLeaseExpired(i int) {
	j.mu.Lock()
	j.leaseExpiries++
	if i < len(j.shards) {
		j.emitLocked(JobEvent{Shard: i, ShardState: "lease-expired",
			Attempts: j.shards[i].Attempts, Worker: j.shards[i].Worker})
	}
	j.mu.Unlock()
}

func (j *job) shardDone(i int, events uint64) {
	j.mu.Lock()
	if i < len(j.shards) {
		j.shards[i].State = "done"
		j.shards[i].Events = events
		j.emitLocked(JobEvent{Shard: i, ShardState: "done", Worker: j.shards[i].Worker})
	}
	j.mu.Unlock()
}

func (j *job) shardFailed(i int) {
	j.mu.Lock()
	if i < len(j.shards) {
		j.shards[i].State = "failed"
		j.emitLocked(JobEvent{Shard: i, ShardState: "failed", Attempts: j.shards[i].Attempts})
	}
	j.mu.Unlock()
}

func (j *job) shardAttempts(i int) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < len(j.shards) {
		return j.shards[i].Attempts
	}
	return 0
}
