package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"paragraph/internal/core"
	"paragraph/internal/remote"
	"paragraph/internal/shard"
)

// WorkerOptions configures a fleet Worker (pgserved -join). The zero
// value of every field selects the default noted on it.
type WorkerOptions struct {
	// Coordinator is the base URL of the coordinator daemon. Required.
	Coordinator string
	// Name identifies this worker in leases and job status. Required.
	Name string
	// Client issues every request (control plane and trace fetches); nil
	// selects http.DefaultClient. Tests inject the chaos transport here.
	Client *http.Client
	// Heartbeat is the lease renewal interval. 0 derives TTL/3 from each
	// granted lease.
	Heartbeat time.Duration
	// Poll is the backoff between acquire attempts after an error or an
	// empty answer. 0 selects 250ms.
	Poll time.Duration
	// LongPoll is how long one acquire request parks on the coordinator's
	// offer watch waiting for work. 0 selects 25s (the coordinator caps
	// requests at 30s). Idle chatter scales with 1/LongPoll: a parked
	// request costs nothing until an offer is enqueued.
	LongPoll time.Duration
	// Seed seeds retry jitter for trace fetches.
	Seed int64
	// Sleep replaces every wait; tests inject a no-op. nil selects real
	// context-aware sleeps.
	Sleep func(time.Duration)
}

// WorkerStats counts what a worker did.
type WorkerStats struct {
	// Acquired counts leases granted to this worker.
	Acquired int
	// Completed counts attempts whose artifact the coordinator accepted.
	Completed int
	// Failed counts attempts reported failed (including contained panics).
	Failed int
	// Lost counts leases the coordinator declared gone mid-attempt — the
	// worker's view of an expiry or a coordinator drain.
	Lost int
}

// Worker is one fleet member: it pulls shard leases from a coordinator,
// fetches its shard's trace bytes over HTTP ranges, runs the attempt with
// the same panic containment a local executor provides, heartbeats the
// lease while working, and uploads the artifact (or reports the failure,
// classified permanent/panic/transient exactly as a local attempt would
// classify). A worker holds one lease at a time; run more workers for
// more parallelism.
type Worker struct {
	opts WorkerOptions
	base *url.URL

	mu      sync.Mutex
	sources map[string]*remote.Source
	st      WorkerStats

	// Test hooks: beforeComplete fires between the attempt finishing and
	// the upload (kill-window injection); stallHeartbeats suppresses lease
	// renewal while set (partition simulation).
	beforeComplete  func(lm *LeaseMsg)
	stallHeartbeats atomic.Bool
}

// NewWorker builds a Worker against the coordinator.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Coordinator == "" || opts.Name == "" {
		return nil, fmt.Errorf("worker: coordinator URL and name are required")
	}
	base, err := url.Parse(opts.Coordinator)
	if err != nil {
		return nil, fmt.Errorf("worker: bad coordinator URL %q: %w", opts.Coordinator, err)
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.Poll <= 0 {
		opts.Poll = 250 * time.Millisecond
	}
	if opts.LongPoll <= 0 {
		opts.LongPoll = 25 * time.Second
	}
	return &Worker{opts: opts, base: base, sources: make(map[string]*remote.Source)}, nil
}

// Stats returns a snapshot of the worker's accounting.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.st
}

func (w *Worker) count(f func(*WorkerStats)) {
	w.mu.Lock()
	f(&w.st)
	w.mu.Unlock()
}

// Run is the worker loop: acquire a lease, run it, repeat until ctx is
// canceled. A coordinator with no work (or one that is unreachable or
// draining) just means sleeping a poll interval and asking again — a
// worker is stateless and survives any coordinator restart.
func (w *Worker) Run(ctx context.Context) error {
	for ctx.Err() == nil {
		lm, err := w.acquire(ctx)
		switch {
		case ctx.Err() != nil:
			return nil
		case err != nil || lm == nil:
			if err := w.wait(ctx, w.opts.Poll); err != nil {
				return nil
			}
		default:
			w.runLease(ctx, lm)
		}
	}
	return nil
}

// wait sleeps d, honoring ctx and the Sleep hook.
func (w *Worker) wait(ctx context.Context, d time.Duration) error {
	if w.opts.Sleep != nil {
		w.opts.Sleep(d)
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// acquire asks the coordinator for one lease: nil with no error means no
// work right now. The request parks on the coordinator's offer watch for
// up to LongPoll, so an idle worker holds one open request instead of
// cycling poll-interval sleeps; Poll only paces retries after errors and
// empty answers.
func (w *Worker) acquire(ctx context.Context) (*LeaseMsg, error) {
	body, _ := json.Marshal(map[string]any{
		"worker":  w.opts.Name,
		"wait_ms": w.opts.LongPoll.Milliseconds(),
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.endpoint("/v1/leases"), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		var lm LeaseMsg
		if err := json.NewDecoder(resp.Body).Decode(&lm); err != nil {
			return nil, fmt.Errorf("worker: decoding lease: %w", err)
		}
		w.count(func(st *WorkerStats) { st.Acquired++ })
		return &lm, nil
	case http.StatusNoContent, http.StatusServiceUnavailable:
		// No work, or the coordinator is draining: either way, poll later.
		if ra := remote.ParseRetryAfter(resp.Header); ra > 0 {
			w.wait(ctx, min(ra, 4*w.opts.Poll))
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("worker: acquire answered %s", resp.Status)
	}
}

// runLease runs one granted lease end to end: heartbeats in the
// background, executes the attempt, then reports the outcome while the
// heartbeats are still renewing (an upload can be slow; the lease must
// stay live under it).
func (w *Worker) runLease(ctx context.Context, lm *LeaseMsg) {
	// The attempt aborts when the lease is lost; the report path keeps the
	// worker's root context so a lost lease cannot also strand the report.
	actx, abandon := context.WithCancel(ctx)
	defer abandon()
	stopHB := make(chan struct{})
	hbExited := make(chan struct{})
	go func() {
		defer close(hbExited)
		w.heartbeat(ctx, stopHB, lm, abandon)
	}()
	payload, execErr := w.execute(actx, lm)
	switch {
	case actx.Err() != nil && ctx.Err() == nil:
		// Lease lost mid-attempt: the coordinator already expired it and
		// re-offered the shard; there is nothing to report.
		w.count(func(st *WorkerStats) { st.Lost++ })
	case ctx.Err() != nil:
		// Departing (SIGTERM): fail fast so the coordinator re-offers the
		// shard now instead of waiting out the TTL. Best effort on a short
		// deadline — expiry covers us if the report does not land.
		nctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := w.fail(nctx, lm.ID, leaseFail{Reason: "worker departing"}); err != nil {
			w.count(func(st *WorkerStats) { st.Lost++ })
		} else {
			w.count(func(st *WorkerStats) { st.Failed++ })
		}
		cancel()
	case execErr == nil:
		if w.beforeComplete != nil {
			w.beforeComplete(lm)
		}
		if ctx.Err() != nil {
			break // killed inside the hook: the lease expires on its own
		}
		if err := w.complete(ctx, lm.ID, payload); err != nil {
			w.count(func(st *WorkerStats) { st.Lost++ })
		} else {
			w.count(func(st *WorkerStats) { st.Completed++ })
		}
	default:
		lf := leaseFail{Reason: execErr.Error(), Permanent: remote.IsPermanent(execErr)}
		var pe *workerPanicError
		if errors.As(execErr, &pe) {
			lf.Panicked = true
		}
		if err := w.fail(ctx, lm.ID, lf); err != nil {
			w.count(func(st *WorkerStats) { st.Lost++ })
		} else {
			w.count(func(st *WorkerStats) { st.Failed++ })
		}
	}
	close(stopHB)
	<-hbExited
}

// heartbeat renews the lease until told to stop; a Gone answer abandons
// the running attempt. Transient renewal failures are tolerated — the
// coordinator's TTL, not one lost packet, decides when a lease dies.
func (w *Worker) heartbeat(ctx context.Context, stop <-chan struct{}, lm *LeaseMsg, abandon context.CancelFunc) {
	interval := w.opts.Heartbeat
	if interval <= 0 {
		interval = time.Duration(lm.TTLMillis) * time.Millisecond / 3
	}
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-ticker.C:
			if w.stallHeartbeats.Load() {
				continue
			}
			gone, err := w.renew(ctx, lm.ID)
			if err == nil && gone {
				abandon()
				return
			}
		}
	}
}

// renew posts one heartbeat; gone means the lease no longer exists.
func (w *Worker) renew(ctx context.Context, id string) (gone bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.endpoint("/v1/leases/"+id+"/renew"), nil)
	if err != nil {
		return false, err
	}
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer drainClose(resp.Body)
	switch {
	case resp.StatusCode == http.StatusOK:
		return false, nil
	case resp.StatusCode == http.StatusGone || resp.StatusCode == http.StatusNotFound:
		return true, nil
	default:
		return false, fmt.Errorf("worker: renew answered %s", resp.Status)
	}
}

// complete uploads the attempt artifact, retrying transient control-plane
// faults. A Gone answer means the lease expired under the upload — the
// coordinator will re-run the shard; the result is discarded.
func (w *Worker) complete(ctx context.Context, id string, payload []byte) error {
	return w.report(ctx, "/v1/leases/"+id+"/complete", "application/octet-stream", payload)
}

// fail reports a failed attempt with its classification.
func (w *Worker) fail(ctx context.Context, id string, lf leaseFail) error {
	body, _ := json.Marshal(lf)
	return w.report(ctx, "/v1/leases/"+id+"/fail", "application/json", body)
}

// report posts a terminal lease outcome, retrying transient faults
// (network errors, 429, 5xx) with a Retry-After-aware backoff. Conclusive
// answers — accepted, rejected, or lease gone — end the retries.
func (w *Worker) report(ctx context.Context, path, contentType string, body []byte) error {
	var lastErr error
	delay := 25 * time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt > 0 {
			if err := w.wait(ctx, delay); err != nil {
				return err
			}
			delay *= 2
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.endpoint(path), bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := w.opts.Client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		status := resp.StatusCode
		if ra := remote.ParseRetryAfter(resp.Header); ra > 0 && (status == http.StatusTooManyRequests || status >= 500) {
			delay = min(ra, 8*time.Second)
		}
		drainClose(resp.Body)
		switch {
		case status < 300:
			return nil
		case status == http.StatusTooManyRequests || status >= 500:
			lastErr = fmt.Errorf("worker: %s answered %d", path, status)
			continue
		default:
			// Conclusive: the lease is gone (410) or the artifact was
			// rejected (400) — retrying the same bytes cannot help.
			return fmt.Errorf("worker: %s answered %d", path, status)
		}
	}
	return fmt.Errorf("worker: %s: giving up after 8 attempts: %w", path, lastErr)
}

// workerPanicError marks an attempt that panicked, so the failure report
// carries the same classification a locally contained panic gets.
type workerPanicError struct{ v any }

func (e *workerPanicError) Error() string {
	return fmt.Sprintf("panic contained: %v", e.v)
}

// execute runs one leased attempt: fetch the shard's byte range, decode,
// analyze (chain: replay from the shipped entry checkpoint; delta: build
// with no entry state), and serialize the artifact for upload. Panics
// anywhere inside convert to a classified failure instead of killing the
// worker.
func (w *Worker) execute(ctx context.Context, lm *LeaseMsg) (payload []byte, err error) {
	defer func() {
		if v := recover(); v != nil {
			payload, err = nil, &workerPanicError{v: v}
		}
	}()
	src, err := w.source(ctx, lm.TraceURL)
	if err != nil {
		return nil, err
	}
	sh := lm.Shard
	sect, start, end, err := src.Section(ctx, sh.Start, sh.End)
	if err != nil {
		return nil, err
	}
	sh.Start, sh.End = start, end
	evbuf, err := shard.DecodeShard(ctx, sect, sh, lm.Degraded)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if lm.Kind == kindDelta {
		cd, err := shard.BuildShardDelta(ctx, evbuf, lm.Config, sh)
		if err != nil {
			return nil, err
		}
		d := &shard.Delta{Index: lm.Shard.Index, Shards: lm.Shards,
			Config: lm.Config, ReadStats: evbuf.Stats(), D: cd}
		if err := shard.WriteDelta(&buf, d); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	var a *core.Analyzer
	if len(lm.Checkpoint) > 0 {
		cp, err := core.ReadCheckpoint(bytes.NewReader(lm.Checkpoint))
		if err != nil {
			return nil, fmt.Errorf("worker: decoding entry checkpoint: %w", err)
		}
		a = cp.Restore()
	} else {
		a = core.NewAnalyzer(lm.Config)
	}
	part, cp, err := shard.RunShard(ctx, a, evbuf, lm.Config, sh, lm.Shards, lm.WantCheckpoint)
	if err != nil {
		return nil, err
	}
	if err := shard.WriteResult(&buf, part, cp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// source resolves and caches a remote.Source per trace URL. Lease URLs
// for coordinator-hosted traces are coordinator-relative.
func (w *Worker) source(ctx context.Context, traceURL string) (*remote.Source, error) {
	abs := traceURL
	if u, err := url.Parse(traceURL); err == nil && !u.IsAbs() {
		abs = w.base.ResolveReference(u).String()
	}
	w.mu.Lock()
	src := w.sources[abs]
	w.mu.Unlock()
	if src != nil {
		return src, nil
	}
	src, err := remote.Open(ctx, abs, remote.Options{
		Client: w.opts.Client, Seed: w.opts.Seed, Sleep: w.opts.Sleep,
	})
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.sources[abs] = src
	w.mu.Unlock()
	return src, nil
}

func (w *Worker) endpoint(path string) string {
	u, err := url.Parse(path)
	if err != nil {
		return w.opts.Coordinator + path
	}
	return w.base.ResolveReference(u).String()
}

// drainClose drains (bounded) and closes a response body so the
// connection is reusable.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	body.Close()
}
