package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// JobEvent is one status transition pushed on the job event stream: a
// shard changing state (Shard >= 0) or the job itself (Shard == -1).
// Terminal marks the last event of a stream.
type JobEvent struct {
	Job        string `json:"job"`
	State      string `json:"state"`
	Shard      int    `json:"shard"`
	ShardState string `json:"shard_state,omitempty"`
	Attempts   int    `json:"attempts,omitempty"`
	Worker     string `json:"worker,omitempty"`
	Terminal   bool   `json:"terminal"`
}

// eventBufferSize bounds one subscriber's backlog. A full subscriber drops
// events rather than blocking the supervisor; the stream is a convenience
// view over state that is always re-readable from GET /v1/jobs/{id}.
const eventBufferSize = 256

// emitLocked publishes an event to every subscriber. Callers hold j.mu.
func (j *job) emitLocked(ev JobEvent) {
	ev.Job = j.spec.ID
	ev.State = j.state
	ev.Terminal = terminalState(j.state)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

func terminalState(st string) bool {
	return st == StateDone || st == StateDegraded || st == StateFailed
}

// subscribe registers an event channel and returns it with a consistent
// snapshot of the job at subscription time, so a subscriber misses nothing
// between snapshot and stream.
func (j *job) subscribe() (chan JobEvent, JobView) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan JobEvent, eventBufferSize)
	if j.subs == nil {
		j.subs = make(map[chan JobEvent]struct{})
	}
	j.subs[ch] = struct{}{}
	return ch, j.viewLocked()
}

func (j *job) unsubscribe(ch chan JobEvent) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// handleJobEvents streams a job's status transitions as server-sent
// events: first a "status" event carrying the full JobView snapshot, then
// an "update" event per transition, ending with the terminal transition
// (polling GET /v1/jobs/{id} keeps working; this is push over the same
// states).
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch, snapshot := j.subscribe()
	defer j.unsubscribe(ch)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if err := writeSSE(w, "status", snapshot); err != nil {
		return
	}
	flusher.Flush()
	if terminalState(snapshot.State) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		case ev := <-ch:
			if err := writeSSE(w, "update", ev); err != nil {
				return
			}
			flusher.Flush()
			if ev.Terminal {
				return
			}
		}
	}
}

// writeSSE writes one server-sent event with a JSON data payload.
func writeSSE(w http.ResponseWriter, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}
