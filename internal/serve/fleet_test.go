package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"paragraph/internal/faultinject"
)

// startWorker runs a fleet worker loop against the coordinator API until
// the returned cancel fires (also called at cleanup). setup runs before
// the loop starts, so test hooks cannot race the first lease.
func startWorker(t *testing.T, api, name string, mod func(*WorkerOptions), setup func(*Worker)) (*Worker, context.CancelFunc) {
	t.Helper()
	opts := WorkerOptions{
		Coordinator: api,
		Name:        name,
		Poll:        5 * time.Millisecond,
		Seed:        7,
	}
	if mod != nil {
		mod(&opts)
	}
	w, err := NewWorker(opts)
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	if setup != nil {
		setup(w)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return w, cancel
}

// jobFiles reads a job's persisted analysis artifacts — every
// shard-N.pgsr and the merged result.pgr — keyed by file name.
func jobFiles(t *testing.T, s *Server, id string) map[string][]byte {
	t.Helper()
	dir := s.st.jobDir(id)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading job dir: %v", err)
	}
	files := make(map[string][]byte)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".pgsr") && name != "result.pgr" {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		files[name] = b
	}
	return files
}

// assertJobBytesEqual proves two jobs persisted byte-identical artifacts:
// the same shard result files and the same merged result. This is the
// fleet acceptance bar — a shard run on a leased worker must leave bytes
// indistinguishable from one run in-process.
func assertJobBytesEqual(t *testing.T, sa *Server, ida string, sb *Server, idb string) {
	t.Helper()
	a, b := jobFiles(t, sa, ida), jobFiles(t, sb, idb)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("artifact sets differ: %d vs %d files", len(a), len(b))
	}
	for name, ab := range a {
		bb, ok := b[name]
		if !ok {
			t.Fatalf("artifact %s missing from second job", name)
		}
		if !bytes.Equal(ab, bb) {
			t.Errorf("artifact %s differs: %d vs %d bytes", name, len(ab), len(bb))
		}
	}
}

// runSingleBox runs the same job on a plain local daemon and returns the
// server and job ID, as the byte-equality reference.
func runSingleBox(t *testing.T, tracePath string, shards int, speculate bool) (*Server, string) {
	t.Helper()
	s, api := testServer(t, t.TempDir(), nil)
	tid := registerTrace(t, api, tracePath)
	var jid string
	if speculate {
		jid = submitSpeculativeJob(t, api, tid, testConfig, shards)
	} else {
		jid = submitJob(t, api, tid, testConfig, shards)
	}
	if v := waitJob(t, api, jid); v.State != StateDone {
		t.Fatalf("reference job finished %q, want done: %+v", v.State, v)
	}
	return s, jid
}

// TestFleetLeaseLifecycle: a fleet-only coordinator (no local executors)
// drives a chained job entirely through one leased worker, and the
// persisted artifacts are byte-equal to a single-box run.
func TestFleetLeaseLifecycle(t *testing.T) {
	data := synthTrace(t, 20000, 21)
	path := writeTraceFile(t, data)

	s, api := testServer(t, t.TempDir(), func(o *Options) {
		o.LocalExecutors = -1
		o.LeaseTTL = 2 * time.Second
	})
	w, _ := startWorker(t, api, "w1", nil, nil)

	tid := registerTrace(t, api, path)
	jid := submitJob(t, api, tid, testConfig, 5)
	v := waitJob(t, api, jid)
	if v.State != StateDone {
		t.Fatalf("job finished %q, want done: %+v", v.State, v)
	}
	if v.LeaseExpiries != 0 {
		t.Fatalf("clean run recorded %d lease expiries", v.LeaseExpiries)
	}
	for i, sp := range v.Shards {
		if sp.Worker != "w1" {
			t.Errorf("shard %d ran on %q, want leased worker w1", i, sp.Worker)
		}
	}
	if st := w.Stats(); st.Completed != len(v.Shards) {
		t.Errorf("worker completed %d leases, want %d", st.Completed, len(v.Shards))
	}

	ref, refJob := runSingleBox(t, path, 5, false)
	assertJobBytesEqual(t, s, jid, ref, refJob)
}

// TestDifferentialFleetChaos is the fleet proof battery: a coordinator
// with no local executors, three leased workers behind a fault-injecting
// control plane, one worker killed mid-lease (vanishes without a word —
// pure expiry) and one stalling its heartbeats past the TTL. The job must
// still finish, the expiries must be visible in its stats, and every
// persisted byte must match a single-box run.
func TestDifferentialFleetChaos(t *testing.T) {
	data := synthTrace(t, 20000, 22)
	path := writeTraceFile(t, data)
	ttl := 300 * time.Millisecond

	s, api := testServer(t, t.TempDir(), func(o *Options) {
		o.LocalExecutors = -1
		o.LeaseTTL = ttl
		o.ShardAttempts = 10
	})

	chaosClient := func(seed int64) *http.Client {
		return &http.Client{Transport: faultinject.NewChaosTransport(nil, faultinject.ChaosOptions{
			Seed:      seed,
			ThrottleP: 0.15,
			CutP:      0.10,
			MaxFaults: 20,
		})}
	}

	// Worker A is killed inside its first completion window: no fail
	// report, no further heartbeats — the lease can only die by expiry.
	var wa *Worker
	var cancelA context.CancelFunc
	var killOnce sync.Once
	wa, cancelA = startWorker(t, api, "wa",
		func(o *WorkerOptions) { o.Client = chaosClient(1) },
		func(w *Worker) {
			w.beforeComplete = func(*LeaseMsg) {
				killOnce.Do(func() { cancelA() })
			}
		})
	_ = wa

	// Worker B stalls its heartbeats across several TTLs once, mid-lease:
	// the coordinator expires the lease and B's late upload bounces.
	var wb *Worker
	var stallOnce sync.Once
	wb, _ = startWorker(t, api, "wb",
		func(o *WorkerOptions) { o.Client = chaosClient(2) },
		func(w *Worker) {
			w.beforeComplete = func(*LeaseMsg) {
				stallOnce.Do(func() {
					w.stallHeartbeats.Store(true)
					time.Sleep(3 * ttl)
					w.stallHeartbeats.Store(false)
				})
			}
		})

	// Worker C is healthy and guarantees the fleet can finish the job.
	startWorker(t, api, "wc", func(o *WorkerOptions) { o.Client = chaosClient(3) }, nil)

	tid := registerTrace(t, api, path)
	jid := submitJob(t, api, tid, testConfig, 6)
	v := waitJob(t, api, jid)
	if v.State != StateDone {
		t.Fatalf("job finished %q, want done: %+v", v.State, v)
	}
	if v.LeaseExpiries < 1 {
		t.Fatalf("want at least one lease expiry in job stats, got %+v", v)
	}
	// The job can finish on the healthy workers while the stalled worker is
	// still asleep in its kill window; give it time to notice the 410.
	deadline := time.Now().Add(15 * time.Second)
	for wb.Stats().Lost < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled worker never observed its lost lease: %+v", wb.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	ref, refJob := runSingleBox(t, path, 6, false)
	assertJobBytesEqual(t, s, jid, ref, refJob)
}

// TestDifferentialFleetSpeculative: speculative delta builds lease out to
// fleet workers too, and the spliced artifacts are byte-equal to a plain
// chained single-box run.
func TestDifferentialFleetSpeculative(t *testing.T) {
	data := synthTrace(t, 20000, 23)
	path := writeTraceFile(t, data)

	s, api := testServer(t, t.TempDir(), func(o *Options) {
		o.LocalExecutors = -1
		o.LeaseTTL = 2 * time.Second
	})
	startWorker(t, api, "w1", nil, nil)
	startWorker(t, api, "w2", nil, nil)

	tid := registerTrace(t, api, path)
	jid := submitSpeculativeJob(t, api, tid, testConfig, 5)
	v := waitJob(t, api, jid)
	if v.State != StateDone {
		t.Fatalf("speculative fleet job finished %q, want done: %+v", v.State, v)
	}
	workers := map[string]bool{}
	for _, sp := range v.Shards {
		workers[sp.Worker] = true
	}
	if !workers["w1"] || !workers["w2"] {
		t.Logf("note: shard spread %v (both workers racing one queue; spread is best-effort)", workers)
	}

	ref, refJob := runSingleBox(t, path, 5, false)
	assertJobBytesEqual(t, s, jid, ref, refJob)
}

// TestFleetCoordinatorCrashRestart: SIGKILL the coordinator after the
// first fleet-run shard persists, restart over the same state directory
// with a fresh worker, and the job must resume from the persisted shard
// and finish byte-equal to a single-box run.
func TestFleetCoordinatorCrashRestart(t *testing.T) {
	data := synthTrace(t, 20000, 24)
	path := writeTraceFile(t, data)
	stateDir := t.TempDir()

	fleetOpts := func(o *Options) {
		o.LocalExecutors = -1
		o.LeaseTTL = time.Second
		o.ShardAttempts = 6
	}
	s1, api1 := testServer(t, stateDir, fleetOpts)
	killed := make(chan struct{})
	var once sync.Once
	s1.afterShard = func(jobID string, shard int) {
		once.Do(func() {
			s1.cancel() // in-process SIGKILL: nothing past persisted state survives
			close(killed)
		})
	}
	_, cancelW1 := startWorker(t, api1, "w1", nil, nil)

	tid := registerTrace(t, api1, path)
	jid := submitJob(t, api1, tid, testConfig, 5)
	select {
	case <-killed:
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator never persisted a first shard")
	}
	cancelW1()

	s2, api2 := testServer(t, stateDir, fleetOpts)
	startWorker(t, api2, "w2", nil, nil)
	v := waitJob(t, api2, jid)
	if v.State != StateDone {
		t.Fatalf("resumed job finished %q, want done: %+v", v.State, v)
	}
	if v.ShardsDone != 5 {
		t.Fatalf("resumed job done %d/5 shards", v.ShardsDone)
	}

	ref, refJob := runSingleBox(t, path, 5, false)
	assertJobBytesEqual(t, s2, jid, ref, refJob)
}

// TestFleetDrainRequeue: draining a coordinator with an outstanding lease
// re-queues the leased shard (the job stays resumable), readiness goes
// false, the lease dies (renew answers Gone), and new leases are refused.
// A restart over the same state completes the job.
func TestFleetDrainRequeue(t *testing.T) {
	data := synthTrace(t, 20000, 25)
	path := writeTraceFile(t, data)
	stateDir := t.TempDir()

	s, api := testServer(t, stateDir, func(o *Options) {
		o.LocalExecutors = -1
		o.ShardAttempts = 8
	})
	tid := registerTrace(t, api, path)
	jid := submitJob(t, api, tid, testConfig, 4)

	var lm LeaseMsg
	code, raw := postJSON(t, api+"/v1/leases", map[string]any{"worker": "manual", "wait_ms": 30000}, &lm)
	if code != http.StatusOK {
		t.Fatalf("acquiring lease: %d: %s", code, raw)
	}
	if lm.Job != jid || lm.Shard.Index != 0 {
		t.Fatalf("leased %s shard %d, want job %s shard 0", lm.Job, lm.Shard.Index, jid)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain with outstanding lease: %v", err)
	}

	if code, _ := getJSON(t, api+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain: %d, want 503", code)
	}
	if code, _ := postJSON(t, api+"/v1/leases/"+lm.ID+"/renew", nil, nil); code != http.StatusGone {
		t.Errorf("renewing drained lease: %d, want 410", code)
	}
	if code, _ := postJSON(t, api+"/v1/leases", map[string]any{"worker": "manual", "wait_ms": 0}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("acquire while draining: %d, want 503", code)
	}
	var v JobView
	getJSON(t, api+"/v1/jobs/"+jid, &v)
	if v.State != StateQueued {
		t.Fatalf("job after drain is %q, want queued (resumable)", v.State)
	}

	_, api2 := testServer(t, stateDir, nil) // local executors finish it
	if v := waitJob(t, api2, jid); v.State != StateDone {
		t.Fatalf("restarted job finished %q, want done: %+v", v.State, v)
	}
}

// TestFleetWorkerSigtermDepart: a worker canceled mid-attempt (SIGTERM)
// fails its lease fast — "worker departing", no expiry wait — and the
// coordinator retries the shard elsewhere.
func TestFleetWorkerSigtermDepart(t *testing.T) {
	data := synthTrace(t, 20000, 26)

	// The trace lives on its own HTTP server so the worker's fetch can be
	// blocked without touching the coordinator's control plane.
	var blocking bool
	var mu sync.Mutex
	inFetch := make(chan struct{}, 16)
	traceSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hold := blocking && r.Method == http.MethodGet && r.Header.Get("Range") != ""
		mu.Unlock()
		if hold {
			select {
			case inFetch <- struct{}{}:
			default:
			}
			<-r.Context().Done() // hold until the worker gives up
			return
		}
		http.ServeContent(w, r, "trace.pgt", time.Time{}, bytes.NewReader(data))
	}))
	defer traceSrv.Close()

	_, api := testServer(t, t.TempDir(), func(o *Options) {
		o.LocalExecutors = -1
		o.LeaseTTL = 30 * time.Second // expiry may NOT be what rescues the shard
		o.ShardAttempts = 6
	})
	tid := registerTrace(t, api, traceSrv.URL)
	jid := submitJob(t, api, tid, testConfig, 4)

	// Let the coordinator plan (it fetches the whole trace), then block
	// ranged fetches before the departing worker starts.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var v JobView
		getJSON(t, api+"/v1/jobs/"+jid, &v)
		if len(v.Shards) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never planned")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	blocking = true
	mu.Unlock()

	w, cancelW := startWorker(t, api, "w-depart", nil, nil)
	select {
	case <-inFetch:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never started fetching its shard")
	}
	cancelW() // SIGTERM: the worker must fail its lease fast and exit

	// The departing worker reported the failure itself (no expiry).
	deadline = time.Now().Add(10 * time.Second)
	for w.Stats().Failed == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("departing worker never failed its lease: %+v", w.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	blocking = false
	mu.Unlock()
	startWorker(t, api, "w-finisher", nil, nil)
	v := waitJob(t, api, jid)
	if v.State != StateDone {
		t.Fatalf("job finished %q, want done: %+v", v.State, v)
	}
	if v.LeaseExpiries != 0 {
		t.Errorf("departing worker should fail fast, not expire: %d expiries", v.LeaseExpiries)
	}
}

// TestFleetWorkerFailureClassification: worker-reported failures classify
// exactly like local ones — permanent degrades the job without retries,
// panics consume attempts until the budget runs out.
func TestFleetWorkerFailureClassification(t *testing.T) {
	s, api := testServer(t, t.TempDir(), func(o *Options) {
		o.LocalExecutors = -1
		o.ShardAttempts = 2
	})
	_ = s

	acquire := func() LeaseMsg {
		var lm LeaseMsg
		code, raw := postJSON(t, api+"/v1/leases", map[string]any{"worker": "manual", "wait_ms": 30000}, &lm)
		if code != http.StatusOK {
			t.Fatalf("acquiring lease: %d: %s", code, raw)
		}
		return lm
	}
	failLease := func(id string, body leaseFail) {
		if code, raw := postJSON(t, api+"/v1/leases/"+id+"/fail", body, nil); code != http.StatusOK {
			t.Fatalf("failing lease: %d: %s", code, raw)
		}
	}

	// Permanent: one attempt, then degraded.
	path := writeTraceFile(t, synthTrace(t, 8000, 27))
	tid := registerTrace(t, api, path)
	jid := submitJob(t, api, tid, testConfig, 3)
	lm := acquire()
	if lm.Job != jid {
		t.Fatalf("leased job %s, want %s", lm.Job, jid)
	}
	failLease(lm.ID, leaseFail{Reason: "trace store on fire", Permanent: true})
	v := waitJob(t, api, jid)
	if v.State != StateDegraded || v.Degraded == nil {
		t.Fatalf("permanent failure left job %q, want degraded: %+v", v.State, v)
	}
	if !strings.Contains(v.Degraded.Reason, "trace store on fire") || v.Degraded.Attempts != 1 {
		t.Fatalf("degradation mark %+v, want reason preserved after exactly 1 attempt", v.Degraded)
	}

	// Panic: retried like a local contained panic, budget still applies.
	path2 := writeTraceFile(t, synthTrace(t, 8000, 28))
	tid2 := registerTrace(t, api, path2)
	jid2 := submitJob(t, api, tid2, testConfig, 3)
	lm1 := acquire()
	if lm1.Job != jid2 || lm1.Attempt != 1 {
		t.Fatalf("lease %+v, want job %s attempt 1", lm1, jid2)
	}
	failLease(lm1.ID, leaseFail{Reason: "index out of range", Panicked: true})
	lm2 := acquire()
	if lm2.Job != jid2 || lm2.Attempt != 2 {
		t.Fatalf("after panic, lease %+v, want the SAME shard back at attempt 2", lm2)
	}
	failLease(lm2.ID, leaseFail{Reason: "index out of range", Panicked: true})
	v2 := waitJob(t, api, jid2)
	if v2.State != StateDegraded || v2.Degraded == nil {
		t.Fatalf("exhausted panics left job %q, want degraded: %+v", v2.State, v2)
	}
	if !strings.Contains(v2.Degraded.Reason, "panic contained on worker") {
		t.Fatalf("degradation reason %q does not classify the panic", v2.Degraded.Reason)
	}
}

// TestJobQueueBackpressure: past -max-queued the daemon answers 429 with
// a Retry-After derived from the backlog instead of silently queueing.
func TestJobQueueBackpressure(t *testing.T) {
	s, err := New(Options{
		StateDir:  t.TempDir(),
		Workers:   1,
		MaxQueued: 2,
		RetryBase: time.Millisecond,
		Sleep:     func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Never started: nothing drains the queue, so depth is deterministic.
	t.Cleanup(s.kill)
	api := httptest.NewServer(s.Handler())
	t.Cleanup(api.Close)

	path := writeTraceFile(t, synthTrace(t, 2000, 31))
	tid := registerTrace(t, api.URL, path)
	submitJob(t, api.URL, tid, testConfig, 2)
	submitJob(t, api.URL, tid, testConfig, 2)

	body, _ := json.Marshal(map[string]any{"trace": tid, "config": testConfig, "shards": 2})
	resp, err := http.Post(api.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d (%s), want 429", resp.StatusCode, raw)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if ra != 2 { // depth 2 / 1 worker
		t.Errorf("Retry-After %d, want 2 (backlog per worker)", ra)
	}
	if !strings.Contains(string(raw), "queue full") {
		t.Errorf("overflow body %q does not explain itself", raw)
	}
}

// TestJobQueuePriority: a higher-priority job submitted later runs first.
func TestJobQueuePriority(t *testing.T) {
	s, err := New(Options{
		StateDir:  t.TempDir(),
		Workers:   1,
		RetryBase: time.Millisecond,
		Sleep:     func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.kill)
	api := httptest.NewServer(s.Handler())
	t.Cleanup(api.Close)

	var mu sync.Mutex
	var order []string
	s.afterShard = func(jobID string, _ int) {
		mu.Lock()
		if len(order) == 0 || order[len(order)-1] != jobID {
			order = append(order, jobID)
		}
		mu.Unlock()
	}

	path := writeTraceFile(t, synthTrace(t, 8000, 32))
	tid := registerTrace(t, api.URL, path)
	submitPri := func(priority int) string {
		var resp map[string]string
		code, raw := postJSON(t, api.URL+"/v1/jobs", map[string]any{
			"trace": tid, "config": testConfig, "shards": 2, "priority": priority,
		}, &resp)
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d: %s", code, raw)
		}
		return resp["id"]
	}
	low := submitPri(0)
	high := submitPri(5)

	s.Start() // both already queued: the single worker must pick high first
	if v := waitJob(t, api.URL, low); v.State != StateDone {
		t.Fatalf("low-priority job: %q", v.State)
	}
	if v := waitJob(t, api.URL, high); v.State != StateDone {
		t.Fatalf("high-priority job: %q", v.State)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != high || order[1] != low {
		t.Fatalf("run order %v, want [%s %s] (priority first)", order, high, low)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

func readSSE(t *testing.T, r *bufio.Reader) (sseEvent, bool) {
	t.Helper()
	var ev sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return ev, false
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		case line == "" && ev.name != "":
			return ev, true
		}
	}
}

// TestJobEventsSSE: the event stream opens with a consistent snapshot,
// then pushes per-shard transitions, and ends at the terminal state.
// Plain status polling keeps working alongside it.
func TestJobEventsSSE(t *testing.T) {
	data := synthTrace(t, 20000, 33)
	path := writeTraceFile(t, data)
	s, api := testServer(t, t.TempDir(), nil)

	// Hold the first attempt until the stream is attached, so the
	// transitions land as updates, not only in the snapshot.
	release := make(chan struct{})
	s.beforeAttempt = func(string, int) { <-release }

	tid := registerTrace(t, api, path)
	jid := submitJob(t, api, tid, testConfig, 4)

	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Get(api + "/v1/jobs/" + jid + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("events endpoint: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	br := bufio.NewReader(resp.Body)
	first, ok := readSSE(t, br)
	if !ok || first.name != "status" {
		t.Fatalf("first event %+v, want a status snapshot", first)
	}
	var snapshot JobView
	if err := json.Unmarshal([]byte(first.data), &snapshot); err != nil {
		t.Fatalf("snapshot does not parse as JobView: %v", err)
	}
	close(release)

	var sawShardDone, sawTerminal bool
	for {
		ev, ok := readSSE(t, br)
		if !ok {
			break
		}
		if ev.name != "update" {
			t.Fatalf("unexpected event %+v", ev)
		}
		var u JobEvent
		if err := json.Unmarshal([]byte(ev.data), &u); err != nil {
			t.Fatalf("update does not parse: %v (%s)", err, ev.data)
		}
		if u.ShardState == "done" {
			sawShardDone = true
		}
		if u.Terminal {
			sawTerminal = true
			if u.State != StateDone {
				t.Fatalf("terminal update state %q, want done", u.State)
			}
			break
		}
	}
	if !sawShardDone || !sawTerminal {
		t.Fatalf("stream missed transitions: shardDone=%v terminal=%v", sawShardDone, sawTerminal)
	}
	// Polling still works alongside the stream.
	if v := waitJob(t, api, jid); v.State != StateDone {
		t.Fatalf("polled state %q, want done", v.State)
	}
}

// TestJobQueueOrdering covers the queue data structure directly: priority
// order, FIFO within a priority, and the re-signal that keeps a single
// notify token from stranding queued work.
func TestJobQueueOrdering(t *testing.T) {
	q := newJobQueue()
	q.push("a", 0)
	q.push("b", 5)
	q.push("c", 5)
	q.push("d", 1)
	if d := q.depth(); d != 4 {
		t.Fatalf("depth %d, want 4", d)
	}
	want := []string{"b", "c", "d", "a"}
	for i, w := range want {
		select {
		case <-q.notify:
		default:
			t.Fatalf("no notify token before pop %d", i)
		}
		id, ok := q.pop()
		if !ok || id != w {
			t.Fatalf("pop %d = %q (%v), want %q", i, id, ok, w)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on empty queue succeeded")
	}
	select {
	case <-q.notify:
		t.Fatal("notify token left after draining the queue")
	default:
	}
}

// TestOfferWatchWakesParkedAcquire pins the watch-channel contract: an
// acquire parked on the empty offer queue is woken by the next enqueue
// instead of waiting out its long-poll deadline, abandoned debris is
// discarded rather than granted, and a canceled request releases the watch
// without consuming an offer.
func TestOfferWatchWakesParkedAcquire(t *testing.T) {
	s := &Server{
		ctx:       context.Background(),
		drainCh:   make(chan struct{}),
		offerNote: make(chan struct{}, 1),
	}

	// A canceled request context unparks immediately, consuming nothing.
	ctx, cancel := context.WithCancel(context.Background())
	unparked := make(chan *attemptOffer, 1)
	go func() { unparked <- s.takeOffer(ctx, time.Minute) }()
	cancel()
	select {
	case off := <-unparked:
		if off != nil {
			t.Fatalf("canceled acquire got offer %+v", off)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled acquire stayed parked")
	}

	// A parked acquire is woken by the enqueue, well before its deadline.
	got := make(chan *attemptOffer, 1)
	go func() { got <- s.takeOffer(context.Background(), time.Minute) }()
	abandoned := &attemptOffer{}
	abandoned.claimed.Store(claimAbandoned)
	s.enqueueOffer(abandoned) // debris: must be skipped, not granted
	live := &attemptOffer{outcome: make(chan attemptOutcome, 1)}
	s.enqueueOffer(live)
	select {
	case off := <-got:
		if off != live {
			t.Fatalf("parked acquire got %+v, want the live offer", off)
		}
		if off.claimed.Load() != claimLeased {
			t.Fatalf("granted offer claim state = %d, want leased", off.claimed.Load())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("enqueue did not wake the parked acquire")
	}

	// The debris was swept; an immediate (wait 0) acquire finds nothing.
	if off := s.takeOffer(context.Background(), 0); off != nil {
		t.Fatalf("empty queue granted %+v", off)
	}
}
