package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"paragraph/internal/core"
	"paragraph/internal/remote"
	"paragraph/internal/shard"
)

// Fleet mode: shard attempts are leased to remote workers over HTTP. The
// supervisor publishes each attempt onto one watch queue — a mutex-guarded
// FIFO with a one-token notify channel signaled on enqueue — and the local
// executor pool and the lease-acquire handler block on that channel until
// work exists, so a remote worker is just another place an attempt can run
// and an idle fleet parks in long-polls instead of sleep-and-retry
// spinning. A leased attempt
// that completes uploads its shard result (or delta) and the supervisor
// persists it exactly as it would a local one; a lease whose heartbeat
// lapses is expired by the sweeper and the failure consumes one unit of
// the shard's attempt budget — a crashed, hung, or partitioned worker is
// indistinguishable from a failed local attempt.

// offer claim states.
const (
	claimNone int32 = iota
	claimLocal
	claimLeased
	claimAbandoned
)

// Offer kinds: a chained shard attempt (RunShard seeded from the previous
// shard's checkpoint) or a speculative delta build (entry-state-free).
const (
	kindChain = "chain"
	kindDelta = "delta"
)

// attemptOffer is one unit of shard work on the supervisor queue.
type attemptOffer struct {
	j       *job
	ti      TraceInfo
	plan    *shard.Plan
	shard   int
	attempt int
	kind    string
	prevCP  *core.Checkpoint // chain attempts after shard 0

	// Local executors run the attempt in-process from these.
	src  *remote.Source
	data []byte

	claimed atomic.Int32
	outcome chan attemptOutcome // buffered 1; exactly one claimant sends
}

// attemptOutcome is what a claimed attempt produced.
type attemptOutcome struct {
	part   *shard.Result
	cp     *core.Checkpoint
	delta  *shard.Delta
	worker string // empty for local attempts
	err    error
}

// claim transitions the offer to the given claimant; false means someone
// else (or abandonment) got there first.
func (o *attemptOffer) claim(state int32) bool {
	return o.claimed.CompareAndSwap(claimNone, state)
}

// enqueueOffer appends one attempt to the watch queue and rings its notify
// channel. The channel holds at most one token; nextOffer re-signals while
// items remain, so a dropped duplicate token never strands work.
func (s *Server) enqueueOffer(off *attemptOffer) {
	s.offerMu.Lock()
	s.pending = append(s.pending, off)
	s.offerMu.Unlock()
	s.notifyOffer()
}

func (s *Server) notifyOffer() {
	select {
	case s.offerNote <- struct{}{}:
	default:
	}
}

// nextOffer pops the oldest still-unclaimed offer, discarding abandoned
// debris (offers whose dispatch gave up during a drain). Like jobQueue.pop,
// it re-signals the notify channel when items remain, so one pop per wakeup
// cannot strand queued work behind a consumed token.
func (s *Server) nextOffer() *attemptOffer {
	s.offerMu.Lock()
	defer s.offerMu.Unlock()
	for len(s.pending) > 0 {
		off := s.pending[0]
		s.pending[0] = nil
		s.pending = s.pending[1:]
		if len(s.pending) > 0 {
			s.notifyOffer()
		}
		if off.claimed.Load() == claimNone {
			return off
		}
	}
	return nil
}

// dispatch publishes one attempt and waits for its outcome. During a drain
// it abandons unclaimed and leased offers immediately (the shard returns
// to the queue with the rest of the job; the dead entry is swept from the
// watch queue by the next pop), but waits out a locally running attempt —
// the executor is about to deliver, and Drain waits for it anyway.
func (s *Server) dispatch(off *attemptOffer) (attemptOutcome, error) {
	select {
	case <-s.drainCh:
		return attemptOutcome{}, errInterrupted
	case <-s.ctx.Done():
		return attemptOutcome{}, errInterrupted
	default:
	}
	s.enqueueOffer(off)
	select {
	case out := <-off.outcome:
		return out, nil
	case <-s.drainCh:
		if off.claim(claimAbandoned) || off.claimed.Load() != claimLocal {
			return attemptOutcome{}, errInterrupted
		}
		// A local executor is mid-attempt; take its outcome.
		select {
		case out := <-off.outcome:
			return out, nil
		case <-s.ctx.Done():
			return attemptOutcome{}, errInterrupted
		}
	case <-s.ctx.Done():
		return attemptOutcome{}, errInterrupted
	}
}

// shardExecutor is one local attempt runner. Executors and remote workers
// block on the same watch channel; an executor that pops abandoned debris
// (or loses a claim race with a drain) just waits for the next signal.
func (s *Server) shardExecutor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-s.drainCh:
			return
		case <-s.offerNote:
			off := s.nextOffer()
			if off == nil || !off.claim(claimLocal) {
				continue
			}
			off.outcome <- s.runOffer(off)
		}
	}
}

// runOffer executes one claimed offer in-process.
func (s *Server) runOffer(off *attemptOffer) attemptOutcome {
	switch off.kind {
	case kindDelta:
		d, err := s.buildDeltaAttempt(off.j, off.src, off.data, off.plan, off.shard)
		return attemptOutcome{delta: d, err: err}
	default:
		part, cp, err := s.runShardAttempt(off.j, off.src, off.data, off.plan, off.shard, off.prevCP)
		return attemptOutcome{part: part, cp: cp, err: err}
	}
}

// lease is one outstanding remote claim on an offer. Removal from the
// table is the single-completion guard: complete, fail and expiry all
// remove-then-act, so exactly one of them delivers the outcome.
type lease struct {
	id     string
	off    *attemptOffer
	worker string
	expiry time.Time
}

// LeaseMsg is the wire form of a granted lease: everything a worker needs
// to run the attempt without further coordinator state. TraceURL is
// absolute for remote trace stores; for locally registered traces it is a
// coordinator-relative path (the coordinator serves the bytes itself via
// GET /v1/traces/{id}/data).
type LeaseMsg struct {
	ID             string      `json:"id"`
	Job            string      `json:"job"`
	Shard          shard.Shard `json:"shard"`
	Shards         int         `json:"shards"`
	Kind           string      `json:"kind"`
	Config         core.Config `json:"config"`
	Degraded       bool        `json:"degraded"`
	WantCheckpoint bool        `json:"want_checkpoint"`
	TraceURL       string      `json:"trace_url"`
	Checkpoint     []byte      `json:"checkpoint,omitempty"` // core.WriteCheckpoint bytes
	TTLMillis      int64       `json:"ttl_ms"`
	Attempt        int         `json:"attempt"`
}

// leaseFail is the body of POST /v1/leases/{id}/fail.
type leaseFail struct {
	Reason    string `json:"reason"`
	Permanent bool   `json:"permanent"`
	Panicked  bool   `json:"panicked"`
}

// errLeaseExpired marks an attempt lost to a missed heartbeat. It is
// transient by construction: the next attempt re-offers the shard.
type leaseExpiredError struct {
	worker string
	shard  int
}

func (e *leaseExpiredError) Error() string {
	return fmt.Sprintf("shard %d: lease on worker %q expired without a heartbeat", e.shard, e.worker)
}

// takeOffer claims the next unclaimed offer for a lease, long-polling the
// watch channel for up to wait. ctx is the acquire request's context: a
// worker that hangs up stops occupying the watch immediately instead of
// holding its handler until the poll deadline. A nil return means no work
// (or the daemon is stopping, or the caller left).
func (s *Server) takeOffer(ctx context.Context, wait time.Duration) *attemptOffer {
	var timeout <-chan time.Time
	if wait > 0 {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		timeout = timer.C
	}
	for {
		if off := s.nextOffer(); off != nil {
			if off.claim(claimLeased) {
				return off
			}
			continue // abandoned between pop and claim; try the next
		}
		if wait <= 0 {
			return nil
		}
		select {
		case <-s.offerNote:
			// Signaled: loop back to pop (which re-signals when more
			// offers remain, so sibling watchers wake too).
		case <-ctx.Done():
			return nil
		case <-s.drainCh:
			return nil
		case <-s.ctx.Done():
			return nil
		case <-timeout:
			return nil
		}
	}
}

// handleLeaseAcquire grants a lease on the next available shard attempt:
// 200 with a LeaseMsg, 204 when no work is available within the requested
// wait, 503 while draining.
func (s *Server) handleLeaseAcquire(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Worker string `json:"worker"`
		WaitMS int64  `json:"wait_ms"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		httpError(w, http.StatusBadRequest, "body must be {\"worker\": name, \"wait_ms\": n}")
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "draining: no new leases")
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > 30*time.Second {
		wait = 30 * time.Second
	}
	off := s.takeOffer(r.Context(), wait)
	if off == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	msg, err := s.grantLease(off, req.Worker)
	if err != nil {
		// The offer is claimed but cannot be shipped (checkpoint encoding
		// failure); deliver it back to the supervisor as a failed attempt.
		off.outcome <- attemptOutcome{worker: req.Worker, err: err}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, msg)
}

// grantLease registers the claimed offer in the lease table and builds its
// wire message.
func (s *Server) grantLease(off *attemptOffer, worker string) (*LeaseMsg, error) {
	sh := off.plan.Shards[off.shard]
	msg := &LeaseMsg{
		ID:             newID("l"),
		Job:            off.j.spec.ID,
		Shard:          sh,
		Shards:         len(off.plan.Shards),
		Kind:           off.kind,
		Config:         off.j.spec.Config,
		Degraded:       off.plan.Degraded,
		WantCheckpoint: off.kind == kindChain && off.shard < len(off.plan.Shards)-1,
		TTLMillis:      s.leaseTTL.Milliseconds(),
		Attempt:        off.attempt,
	}
	if off.ti.Remote {
		msg.TraceURL = off.ti.Location
	} else {
		msg.TraceURL = "/v1/traces/" + off.ti.ID + "/data"
	}
	if off.prevCP != nil {
		var buf bytes.Buffer
		if err := core.WriteCheckpoint(&buf, off.prevCP); err != nil {
			return nil, fmt.Errorf("lease: encoding shard %d entry checkpoint: %w", off.shard, err)
		}
		msg.Checkpoint = buf.Bytes()
	}
	l := &lease{id: msg.ID, off: off, worker: worker, expiry: time.Now().Add(s.leaseTTL)}
	s.leaseMu.Lock()
	s.leases[msg.ID] = l
	s.leaseMu.Unlock()
	off.j.noteWorker(off.shard, worker)
	return msg, nil
}

// takeLease removes and returns the lease, if it is still live. This is
// the only way to act on a lease, so complete/fail/expiry cannot race.
func (s *Server) takeLease(id string) *lease {
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	l := s.leases[id]
	if l != nil {
		delete(s.leases, id)
	}
	return l
}

// handleLeaseRenew extends a live lease's expiry: 200 with the remaining
// TTL, 410 when the lease is gone (expired, completed, or invalidated by a
// drain) — the worker's signal to abandon the attempt.
func (s *Server) handleLeaseRenew(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	s.leaseMu.Lock()
	l := s.leases[id]
	if l != nil && !draining {
		l.expiry = time.Now().Add(s.leaseTTL)
	}
	s.leaseMu.Unlock()
	if l == nil || draining {
		httpError(w, http.StatusGone, "lease is gone")
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"ttl_ms": s.leaseTTL.Milliseconds()})
}

// handleLeaseComplete accepts the finished attempt's artifact — a shard
// result stream (chain) or delta stream (delta) — validates it against the
// lease, and delivers it to the waiting supervisor, which persists it
// through the same path as a local attempt.
func (s *Server) handleLeaseComplete(w http.ResponseWriter, r *http.Request) {
	l := s.takeLease(r.PathValue("id"))
	if l == nil {
		httpError(w, http.StatusGone, "lease is gone")
		return
	}
	out := attemptOutcome{worker: l.worker}
	switch l.off.kind {
	case kindDelta:
		d, err := shard.ReadDelta(r.Body)
		if err == nil {
			err = validateDelta(d, l.off)
		}
		if err != nil {
			out.err = fmt.Errorf("shard %d: worker %s upload: %w", l.off.shard, l.worker, err)
		} else {
			out.delta = d
		}
	default:
		part, cp, err := shard.ReadResult(r.Body)
		if err == nil {
			err = validatePart(part, cp, l.off)
		}
		if err != nil {
			out.err = fmt.Errorf("shard %d: worker %s upload: %w", l.off.shard, l.worker, err)
		} else {
			out.part, out.cp = part, cp
		}
	}
	l.off.outcome <- out
	if out.err != nil {
		httpError(w, http.StatusBadRequest, out.err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "accepted"})
}

// validatePart checks an uploaded chain result against the leased shard.
func validatePart(part *shard.Result, cp *core.Checkpoint, off *attemptOffer) error {
	sh := off.plan.Shards[off.shard]
	switch {
	case part.Index != sh.Index || part.Shards != len(off.plan.Shards):
		return fmt.Errorf("result is shard %d/%d, lease was %d/%d", part.Index, part.Shards, sh.Index, len(off.plan.Shards))
	case part.StartEvent != sh.StartEvent:
		return fmt.Errorf("result starts at event %d, shard starts at %d", part.StartEvent, sh.StartEvent)
	case off.shard < len(off.plan.Shards)-1 && cp == nil:
		return fmt.Errorf("non-final shard uploaded without its outgoing checkpoint")
	}
	return nil
}

// validateDelta checks an uploaded speculative delta against the lease.
func validateDelta(d *shard.Delta, off *attemptOffer) error {
	sh := off.plan.Shards[off.shard]
	switch {
	case d.Index != sh.Index || d.Shards != len(off.plan.Shards):
		return fmt.Errorf("delta is shard %d/%d, lease was %d/%d", d.Index, d.Shards, sh.Index, len(off.plan.Shards))
	case d.D.StartEvent != sh.StartEvent:
		return fmt.Errorf("delta starts at event %d, shard starts at %d", d.D.StartEvent, sh.StartEvent)
	}
	return nil
}

// handleLeaseFail records a worker-reported failure. Permanent failures
// classify exactly like local permanent errors (no further attempts);
// panics and everything else count as one failed attempt and retry.
func (s *Server) handleLeaseFail(w http.ResponseWriter, r *http.Request) {
	var req leaseFail
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "body must be {\"reason\", \"permanent\", \"panicked\"}")
		return
	}
	l := s.takeLease(r.PathValue("id"))
	if l == nil {
		httpError(w, http.StatusGone, "lease is gone")
		return
	}
	var err error
	switch {
	case req.Permanent:
		err = &remote.PermanentError{URL: "worker " + l.worker, Reason: req.Reason}
	case req.Panicked:
		err = fmt.Errorf("shard %d: panic contained on worker %s: %s", l.off.shard, l.worker, req.Reason)
	default:
		err = fmt.Errorf("shard %d: worker %s: %s", l.off.shard, l.worker, req.Reason)
	}
	l.off.outcome <- attemptOutcome{worker: l.worker, err: err}
	writeJSON(w, http.StatusOK, map[string]string{"status": "recorded"})
}

// handleTraceData serves a locally registered trace's bytes, with Range
// support, so fleet workers pull shard ranges from the coordinator exactly
// as they would from any remote trace store.
func (s *Server) handleTraceData(w http.ResponseWriter, r *http.Request) {
	ti, ok := s.traceInfo(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such trace")
		return
	}
	if ti.Remote {
		// Remote traces are leased by their own URL; send the worker there.
		http.Redirect(w, r, ti.Location, http.StatusTemporaryRedirect)
		return
	}
	http.ServeFile(w, r, ti.Location)
}

// sweepLeases expires every lease whose heartbeat lapsed, charging the
// miss to the shard's attempt budget.
func (s *Server) sweepLeases(now time.Time) {
	var expired []*lease
	s.leaseMu.Lock()
	for id, l := range s.leases {
		if now.After(l.expiry) {
			delete(s.leases, id)
			expired = append(expired, l)
		}
	}
	s.leaseMu.Unlock()
	for _, l := range expired {
		l.off.j.noteLeaseExpired(l.off.shard)
		l.off.outcome <- attemptOutcome{worker: l.worker, err: &leaseExpiredError{worker: l.worker, shard: l.off.shard}}
	}
}

// leaseSweeper is the expiry loop; it runs from Start until shutdown.
func (s *Server) leaseSweeper() {
	defer s.wg.Done()
	tick := s.leaseTTL / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-s.drainCh:
			// Draining: outstanding leases die with their offers (renew
			// answers Gone), so there is nothing left to sweep.
			return
		case now := <-ticker.C:
			s.sweepLeases(now)
		}
	}
}
