package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	mrand "math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"paragraph/internal/remote"
	"paragraph/internal/shard"
	"paragraph/internal/trace"
)

// Options configures a Server. The zero value of every field selects the
// default noted on it.
type Options struct {
	// StateDir is the root of the daemon's persistent state. Required.
	StateDir string
	// Workers bounds how many jobs run concurrently. 0 selects 2.
	Workers int
	// LocalExecutors bounds how many shard attempts run in-process at
	// once. 0 selects Workers; negative disables local execution entirely
	// — a fleet-only coordinator whose shards run exclusively on leased
	// workers.
	LocalExecutors int
	// MaxQueued caps how many submitted jobs may wait for a worker;
	// submissions past the cap are answered 429 with a Retry-After derived
	// from the backlog. 0 selects 1024.
	MaxQueued int
	// LeaseTTL is how long a leased shard attempt may go without a
	// heartbeat before the coordinator expires it (consuming one unit of
	// the shard's attempt budget). 0 selects 10s.
	LeaseTTL time.Duration
	// ShardAttempts is the per-shard retry budget. 0 selects 3.
	ShardAttempts int
	// ShardTimeout is the deadline of one shard attempt; 0 means none.
	ShardTimeout time.Duration
	// RetryBase is the supervisor's backoff before the second attempt; it
	// doubles per attempt. 0 selects 50ms.
	RetryBase time.Duration
	// RetryMax caps the supervisor backoff. 0 selects 2s.
	RetryMax time.Duration
	// Seed seeds the backoff jitter (supervisor and remote fetches).
	Seed int64
	// Client issues remote trace requests; nil selects http.DefaultClient.
	// Tests inject the chaos transport here.
	Client *http.Client
	// Sleep replaces every backoff sleep; tests inject a no-op. nil
	// selects real context-aware sleeps.
	Sleep func(time.Duration)
}

// Server is the pgserved daemon: a trace registry, a job queue, a bounded
// worker pool, and the HTTP API over them. Create with New, start the
// workers with Start, serve Handler, and stop with Drain.
type Server struct {
	st             *state
	client         *http.Client
	sleep          func(time.Duration)
	shardAttempts  int
	shardTimeout   time.Duration
	retryBase      time.Duration
	retryMax       time.Duration
	workers        int
	localExecutors int
	maxQueued      int
	leaseTTL       time.Duration
	seed           int64

	ctx     context.Context
	cancel  context.CancelFunc
	drainCh chan struct{}
	jq      *jobQueue
	wg      sync.WaitGroup

	// The offer watch: pending is the FIFO of published shard attempts and
	// offerNote is its condvar — a one-token notify channel signaled on
	// every enqueue. Local executors and lease-acquire long-polls all block
	// on the same channel, so an idle fleet costs zero wakeups until work
	// actually arrives (see nextOffer).
	offerMu   sync.Mutex
	pending   []*attemptOffer
	offerNote chan struct{}

	leaseMu sync.Mutex
	leases  map[string]*lease

	rngMu sync.Mutex
	rng   *mrand.Rand

	mu       sync.Mutex
	traces   map[string]TraceInfo
	jobs     map[string]*job
	draining bool

	// Test hooks: afterShard fires after a shard result is persisted
	// (crash-point injection), beforeAttempt at the top of every contained
	// attempt (fault injection; a panic here is contained like any other).
	afterShard    func(jobID string, shard int)
	beforeAttempt func(jobID string, shard int)
}

// New builds a Server over the state directory, recovering every
// registered trace and persisted job: jobs with a result file are done,
// jobs with a degradation marker are degraded, and everything else is
// queued for resumption when Start runs.
func New(opts Options) (*Server, error) {
	st, err := newState(opts.StateDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		st:             st,
		client:         opts.Client,
		sleep:          opts.Sleep,
		shardAttempts:  opts.ShardAttempts,
		shardTimeout:   opts.ShardTimeout,
		retryBase:      opts.RetryBase,
		retryMax:       opts.RetryMax,
		workers:        opts.Workers,
		localExecutors: opts.LocalExecutors,
		maxQueued:      opts.MaxQueued,
		leaseTTL:       opts.LeaseTTL,
		seed:           opts.Seed,
		ctx:            ctx,
		cancel:         cancel,
		drainCh:        make(chan struct{}),
		jq:             newJobQueue(),
		offerNote:      make(chan struct{}, 1),
		leases:         make(map[string]*lease),
		rng:            mrand.New(mrand.NewSource(opts.Seed)),
		jobs:           make(map[string]*job),
	}
	if s.client == nil {
		s.client = http.DefaultClient
	}
	if s.workers <= 0 {
		s.workers = 2
	}
	if s.localExecutors == 0 {
		s.localExecutors = s.workers
	}
	if s.localExecutors < 0 {
		s.localExecutors = 0
	}
	if s.maxQueued <= 0 {
		s.maxQueued = 1024
	}
	if s.leaseTTL <= 0 {
		s.leaseTTL = 10 * time.Second
	}
	if s.shardAttempts <= 0 {
		s.shardAttempts = 3
	}
	if s.retryBase <= 0 {
		s.retryBase = 50 * time.Millisecond
	}
	if s.retryMax <= 0 {
		s.retryMax = 2 * time.Second
	}
	if s.traces, err = st.loadTraces(); err != nil {
		cancel()
		return nil, err
	}
	if err := s.recoverJobs(); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

// recoverJobs rebuilds the in-memory job table from disk. Non-terminal
// jobs are left queued; Start re-enqueues them.
func (s *Server) recoverJobs() error {
	ids, err := s.st.listJobs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		spec, err := s.st.loadSpec(id)
		if err != nil {
			// A job directory without a readable spec is unrecoverable
			// debris (e.g. a crash between mkdir and spec write); skip it.
			continue
		}
		j := &job{spec: spec, state: StateQueued}
		if _, statErr := os.Stat(s.st.resultPath(id)); statErr == nil {
			j.state = StateDone
		} else if mark, ok := s.st.loadDegraded(id); ok {
			j.state = StateDegraded
			j.degraded = mark
		}
		s.recoverProgress(j)
		s.jobs[id] = j
	}
	return nil
}

// recoverProgress reconstructs per-shard progress from the persisted plan
// and shard result files, so status of a recovered job is honest.
func (s *Server) recoverProgress(j *job) {
	plan, err := s.st.loadPlan(j.spec.ID)
	if err != nil {
		return
	}
	j.shards = make([]shardProgress, len(plan.Shards))
	for i := range j.shards {
		j.shards[i].State = "pending"
		if part, _, err := shard.LoadResult(s.st.shardPath(j.spec.ID, i)); err == nil {
			j.shards[i].State = "done"
			j.shards[i].Events = part.Events
		}
	}
	if j.state == StateDegraded && j.degraded != nil && j.degraded.Shard < len(j.shards) {
		j.shards[j.degraded.Shard].State = "failed"
	}
}

// Start launches the worker pool, the local shard executors, and the
// lease sweeper, then enqueues every recovered non-terminal job.
func (s *Server) Start() {
	for w := 0; w < s.workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	for e := 0; e < s.localExecutors; e++ {
		s.wg.Add(1)
		go s.shardExecutor()
	}
	s.wg.Add(1)
	go s.leaseSweeper()
	s.mu.Lock()
	var pending []*job
	for _, j := range s.jobs {
		if j.state == StateQueued {
			pending = append(pending, j)
		}
	}
	s.mu.Unlock()
	sort.Slice(pending, func(i, j int) bool { return pending[i].spec.ID < pending[j].spec.ID })
	for _, j := range pending {
		s.jq.push(j.spec.ID, j.spec.Priority)
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-s.drainCh:
			return
		case <-s.jq.notify:
			// pop re-signals when items remain, so one pop per wakeup
			// cannot strand queued work behind a consumed token.
			id, ok := s.jq.pop()
			if !ok {
				continue
			}
			s.mu.Lock()
			j := s.jobs[id]
			s.mu.Unlock()
			if j != nil {
				s.runJob(j)
			}
		}
	}
}

// Drain stops the daemon cleanly: readiness goes false, new jobs are
// rejected, running jobs stop at the next shard boundary (their state
// stays resumable on disk), and Drain returns when every worker has
// exited or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancel()
		return nil
	case <-ctx.Done():
		s.cancel()
		return fmt.Errorf("serve: drain timed out: %w", ctx.Err())
	}
}

// kill aborts the daemon immediately — the in-process equivalent of
// SIGKILL, used by the crash-resume tests. Running attempts are canceled
// mid-flight and nothing beyond the already-persisted state survives.
func (s *Server) kill() {
	s.cancel()
	s.wg.Wait()
}

// remoteOpts derives the remote fetch options for one job: shared client
// and sleep hook, jitter seeded per job so retry timing is reproducible.
func (s *Server) remoteOpts(jobID string) remote.Options {
	var h int64
	for _, c := range jobID {
		h = h*131 + int64(c)
	}
	return remote.Options{Client: s.client, Seed: s.seed ^ h, Sleep: s.sleep}
}

func (s *Server) traceInfo(id string) (TraceInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ti, ok := s.traces[id]
	return ti, ok
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/traces", s.handleRegisterTrace)
	mux.HandleFunc("GET /v1/traces", s.handleListTraces)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/traces/{id}/data", s.handleTraceData)
	mux.HandleFunc("POST /v1/leases", s.handleLeaseAcquire)
	mux.HandleFunc("POST /v1/leases/{id}/renew", s.handleLeaseRenew)
	mux.HandleFunc("POST /v1/leases/{id}/complete", s.handleLeaseComplete)
	mux.HandleFunc("POST /v1/leases/{id}/fail", s.handleLeaseFail)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

func (s *Server) handleRegisterTrace(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Location string `json:"location"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Location == "" {
		httpError(w, http.StatusBadRequest, "body must be {\"location\": <path or URL>}")
		return
	}
	ti := TraceInfo{Location: req.Location, Remote: remote.IsURL(req.Location)}
	if ti.Remote {
		src, err := remote.Open(r.Context(), req.Location, s.remoteOpts("register"))
		if err != nil {
			code := http.StatusBadGateway
			if remote.IsPermanent(err) {
				code = http.StatusBadRequest
			}
			httpError(w, code, fmt.Sprintf("probing %s: %v", req.Location, err))
			return
		}
		ti.Bytes = src.Size()
	} else {
		fi, err := os.Stat(req.Location)
		if err != nil || fi.IsDir() {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("trace %s: not a readable file", req.Location))
			return
		}
		ti.Bytes = fi.Size()
	}
	ti.ID = newID("t")
	s.mu.Lock()
	s.traces[ti.ID] = ti
	err := s.st.saveTraces(s.traces)
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, ti)
}

func (s *Server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]TraceInfo, 0, len(s.traces))
	for _, t := range s.traces {
		list = append(list, t)
	}
	s.mu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Trace     string          `json:"trace"`
		Config    json.RawMessage `json:"config"`
		Shards    int             `json:"shards"`
		Degraded  bool            `json:"degraded"`
		Speculate bool            `json:"speculate"`
		Priority  int             `json:"priority"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parsing job: %v", err))
		return
	}
	spec := JobSpec{TraceID: req.Trace, Shards: req.Shards, Degraded: req.Degraded,
		Speculate: req.Speculate, Priority: req.Priority}
	if len(req.Config) > 0 {
		if err := json.Unmarshal(req.Config, &spec.Config); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("parsing config: %v", err))
			return
		}
	}
	if spec.Shards <= 0 {
		spec.Shards = 4
	}
	if _, ok := s.traceInfo(spec.TraceID); !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown trace %q", spec.TraceID))
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "draining: not accepting jobs")
		return
	}
	if depth := s.jq.depth(); depth >= s.maxQueued {
		// Backpressure, not failure: tell the client when to come back.
		// The hint scales with the backlog per worker — a deep queue earns
		// a longer wait — so synchronized retry storms spread out.
		retry := depth / max(s.workers, 1)
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("job queue full (%d queued, cap %d)", depth, s.maxQueued))
		return
	}
	spec.ID = newID("j")
	if err := s.st.saveSpec(spec); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	j := &job{spec: spec, state: StateQueued}
	s.mu.Lock()
	s.jobs[spec.ID] = j
	s.mu.Unlock()
	s.jq.push(spec.ID, spec.Priority)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": spec.ID, "state": StateQueued})
}

// JobView is the status representation of one job.
type JobView struct {
	ID            string          `json:"id"`
	Trace         string          `json:"trace"`
	State         string          `json:"state"`
	Shards        []shardProgress `json:"shards,omitempty"`
	ShardsDone    int             `json:"shards_done"`
	Retry         remote.Stats    `json:"retry"`
	LeaseExpiries int             `json:"lease_expiries,omitempty"`
	Degraded      *DegradedMark   `json:"degraded,omitempty"`
	Error         string          `json:"error,omitempty"`
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.viewLocked()
}

// viewLocked builds the view under j.mu (held by the caller); subscribe
// uses it to pair the snapshot with stream registration atomically.
func (j *job) viewLocked() JobView {
	v := JobView{
		ID:            j.spec.ID,
		Trace:         j.spec.TraceID,
		State:         j.state,
		Shards:        append([]shardProgress(nil), j.shards...),
		Retry:         j.retry,
		LeaseExpiries: j.leaseExpiries,
		Degraded:      j.degraded,
		Error:         j.errMsg,
	}
	for _, sp := range j.shards {
		if sp.State == "done" {
			v.ShardsDone++
		}
	}
	return v
}

func (s *Server) getJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.view())
	}
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// ResultSummary is the JSON face of a completed job's result; the exact
// result (gob, deep-equal to a monolithic run) is served by ?format=gob.
type ResultSummary struct {
	Instructions       uint64          `json:"instructions"`
	Operations         uint64          `json:"operations"`
	Syscalls           uint64          `json:"syscalls"`
	CriticalPath       int64           `json:"critical_path"`
	Available          float64         `json:"available"`
	Branches           uint64          `json:"branches"`
	Mispredictions     uint64          `json:"mispredictions"`
	MaxLiveMemoryWords int             `json:"max_live_memory_words"`
	ReadStats          trace.ReadStats `json:"read_stats"`
	Retry              remote.Stats    `json:"retry"`
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.getJob(id)
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	v := j.view()
	switch v.State {
	case StateDone:
	case StateDegraded:
		writeJSON(w, http.StatusConflict, map[string]any{
			"state": v.State, "degraded": v.Degraded,
			"error": "job degraded: no merged result; per-shard status has the partial progress",
		})
		return
	default:
		writeJSON(w, http.StatusConflict, map[string]any{"state": v.State, "error": "job has no result yet"})
		return
	}
	if r.URL.Query().Get("format") == "gob" {
		w.Header().Set("Content-Type", "application/octet-stream")
		http.ServeFile(w, r, s.st.resultPath(id))
		return
	}
	res, err := s.st.loadResult(id)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ResultSummary{
		Instructions:       res.Result.Instructions,
		Operations:         res.Result.Operations,
		Syscalls:           res.Result.Syscalls,
		CriticalPath:       res.Result.CriticalPath,
		Available:          res.Result.Available,
		Branches:           res.Result.Branches,
		Mispredictions:     res.Result.Mispredictions,
		MaxLiveMemoryWords: res.Result.MaxLiveMemoryWords,
		ReadStats:          res.ReadStats,
		Retry:              v.Retry,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func newID(prefix string) string {
	b := make([]byte, 6)
	rand.Read(b)
	return prefix + hex.EncodeToString(b)
}
