// Package serve composes the shard library, checkpoint persistence and the
// remote range reader into the pgserved analysis service: traces are
// registered (local paths or remote URLs), jobs queue analyses of them, and
// a bounded supervised worker pool runs each job's shard chain with
// per-shard retry, panic containment and crash-safe state.
//
// Every piece of job state that matters lives on disk, written atomically:
// the job spec, the shard plan, each completed shard's result+checkpoint
// file, and the final merged result. A process kill at any instant leaves
// either the old file or the new one, never a torn write, so a restarted
// daemon resumes every in-flight job from its last completed shard and
// finishes with output byte-identical to an uninterrupted run.
package serve

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"paragraph/internal/core"
	"paragraph/internal/shard"
	"paragraph/internal/trace"
)

// TraceInfo is one registered trace.
type TraceInfo struct {
	ID       string `json:"id"`
	Location string `json:"location"` // local path or http(s) URL
	Bytes    int64  `json:"bytes"`
	Remote   bool   `json:"remote"`
}

// JobSpec is the persisted definition of one analysis job. It is saved
// before the job is queued, so a crashed daemon knows every job it owed.
type JobSpec struct {
	ID       string      `json:"id"`
	TraceID  string      `json:"trace"`
	Config   core.Config `json:"config"`
	Shards   int         `json:"shards"`
	Degraded bool        `json:"degraded"` // degraded trace read mode
	// Speculate runs the shards concurrently: supervised parallel delta
	// builds (each with the usual attempt budget and panic containment)
	// followed by a sequential splice that persists the same per-shard
	// result files the chained path writes, so resume and degradation
	// behave identically.
	Speculate bool `json:"speculate,omitempty"`
	// Priority orders the job admission queue: higher runs first, ties
	// run in submission order. Persisted so a recovered job re-queues at
	// its original priority.
	Priority int `json:"priority,omitempty"`
}

// DegradedMark is the persisted terminal marker of a job whose shard chain
// broke: the failing shard, how hard it was tried, and why it gave up.
// Shards completed before the break keep their result files.
type DegradedMark struct {
	Shard    int    `json:"shard"`
	Attempts int    `json:"attempts"`
	Reason   string `json:"reason"`
}

// JobResult is the final output of a completed job: the merged analysis
// result and the summed per-shard read accounting — exactly what a
// monolithic run of the same trace and config produces.
type JobResult struct {
	Result    *core.Result
	ReadStats trace.ReadStats
}

// resultMagic versions the persisted job-result format (gob, like shard
// results: the histogram states need exact float64 round-trips).
const resultMagic = "pgserved-result-v1\n"

// state is the on-disk layout under the daemon's state directory:
//
//	traces.json                  registered traces
//	jobs/<id>/spec.json          job definition
//	jobs/<id>/plan.json          shard plan (written once, reused on resume)
//	jobs/<id>/shard-N.pgsr       shard result + outgoing checkpoint
//	jobs/<id>/shard-N.pgsd       speculative shard delta (Speculate jobs only)
//	jobs/<id>/result.pgr         merged result; its existence marks the job done
//	jobs/<id>/degraded.json      terminal degradation marker
type state struct {
	dir string
}

func newState(dir string) (*state, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: state directory not set")
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating state directory: %w", err)
	}
	return &state{dir: dir}, nil
}

func (st *state) tracesPath() string        { return filepath.Join(st.dir, "traces.json") }
func (st *state) jobDir(id string) string   { return filepath.Join(st.dir, "jobs", id) }
func (st *state) specPath(id string) string { return filepath.Join(st.jobDir(id), "spec.json") }
func (st *state) planPath(id string) string { return filepath.Join(st.jobDir(id), "plan.json") }
func (st *state) shardPath(id string, i int) string {
	return filepath.Join(st.jobDir(id), fmt.Sprintf("shard-%d.pgsr", i))
}
func (st *state) deltaPath(id string, i int) string {
	return filepath.Join(st.jobDir(id), fmt.Sprintf("shard-%d.pgsd", i))
}
func (st *state) resultPath(id string) string   { return filepath.Join(st.jobDir(id), "result.pgr") }
func (st *state) degradedPath(id string) string { return filepath.Join(st.jobDir(id), "degraded.json") }

func (st *state) saveTraces(traces map[string]TraceInfo) error {
	list := make([]TraceInfo, 0, len(traces))
	for _, t := range traces {
		list = append(list, t)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	return writeJSONAtomic(st.tracesPath(), list)
}

func (st *state) loadTraces() (map[string]TraceInfo, error) {
	out := make(map[string]TraceInfo)
	data, err := os.ReadFile(st.tracesPath())
	if os.IsNotExist(err) {
		return out, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: reading trace registry: %w", err)
	}
	var list []TraceInfo
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("serve: parsing trace registry: %w", err)
	}
	for _, t := range list {
		out[t.ID] = t
	}
	return out, nil
}

func (st *state) saveSpec(spec JobSpec) error {
	if err := os.MkdirAll(st.jobDir(spec.ID), 0o755); err != nil {
		return fmt.Errorf("serve: creating job directory: %w", err)
	}
	return writeJSONAtomic(st.specPath(spec.ID), spec)
}

func (st *state) loadSpec(id string) (JobSpec, error) {
	var spec JobSpec
	data, err := os.ReadFile(st.specPath(id))
	if err != nil {
		return spec, fmt.Errorf("serve: job %s: reading spec: %w", id, err)
	}
	if err := json.Unmarshal(data, &spec); err != nil {
		return spec, fmt.Errorf("serve: job %s: parsing spec: %w", id, err)
	}
	return spec, nil
}

func (st *state) savePlan(id string, p *shard.Plan) error {
	var buf bytes.Buffer
	if err := shard.WritePlan(&buf, p); err != nil {
		return fmt.Errorf("serve: job %s: encoding plan: %w", id, err)
	}
	return writeFileAtomic(st.planPath(id), buf.Bytes())
}

func (st *state) loadPlan(id string) (*shard.Plan, error) {
	return shard.LoadPlan(st.planPath(id))
}

func (st *state) saveResult(id string, res *JobResult) error {
	var buf bytes.Buffer
	buf.WriteString(resultMagic)
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		return fmt.Errorf("serve: job %s: encoding result: %w", id, err)
	}
	return writeFileAtomic(st.resultPath(id), buf.Bytes())
}

func (st *state) loadResult(id string) (*JobResult, error) {
	f, err := os.Open(st.resultPath(id))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	magic := make([]byte, len(resultMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return nil, fmt.Errorf("serve: job %s: reading result magic: %w", id, err)
	}
	if string(magic) != resultMagic {
		return nil, fmt.Errorf("serve: job %s: not a job-result file (magic %q)", id, magic)
	}
	var res JobResult
	if err := gob.NewDecoder(f).Decode(&res); err != nil {
		return nil, fmt.Errorf("serve: job %s: decoding result: %w", id, err)
	}
	return &res, nil
}

func (st *state) saveDegraded(id string, mark DegradedMark) error {
	return writeJSONAtomic(st.degradedPath(id), mark)
}

func (st *state) loadDegraded(id string) (*DegradedMark, bool) {
	data, err := os.ReadFile(st.degradedPath(id))
	if err != nil {
		return nil, false
	}
	var mark DegradedMark
	if err := json.Unmarshal(data, &mark); err != nil {
		return nil, false
	}
	return &mark, true
}

// listJobs returns the IDs of every job directory, sorted.
func (st *state) listJobs() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("serve: listing jobs: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(data, '\n'))
}

// writeFileAtomic is the daemon's only way to write state: temp file, sync,
// rename. A kill at any point leaves the previous file intact.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".pgserved-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
