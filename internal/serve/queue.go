package serve

import "sync"

// jobQueue is the daemon's job admission queue: priority-ordered (higher
// first), FIFO within a priority, bounded by the server's -max-queued cap
// at the submit handler (the queue itself just counts). Workers wait on
// notify when the queue is empty; every push signals it, and a pop that
// leaves items behind re-signals so a single token cannot strand work when
// several workers raced for it.
type jobQueue struct {
	mu     sync.Mutex
	items  []queuedJob
	seq    uint64
	notify chan struct{}
}

// queuedJob is one queued entry: the job ID plus its ordering key.
type queuedJob struct {
	id       string
	priority int
	seq      uint64
}

func newJobQueue() *jobQueue {
	return &jobQueue{notify: make(chan struct{}, 1)}
}

// push inserts the job in priority order (stable within a priority) and
// wakes one waiting worker.
func (q *jobQueue) push(id string, priority int) {
	q.mu.Lock()
	item := queuedJob{id: id, priority: priority, seq: q.seq}
	q.seq++
	// Insertion sort from the back: queues are short (bounded by
	// -max-queued) and arrivals are usually in-order.
	i := len(q.items)
	for i > 0 && less(item, q.items[i-1]) {
		i--
	}
	q.items = append(q.items, queuedJob{})
	copy(q.items[i+1:], q.items[i:])
	q.items[i] = item
	q.mu.Unlock()
	q.signal()
}

// less orders item before other: higher priority first, then submit order.
func less(a, b queuedJob) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.seq < b.seq
}

// pop removes and returns the highest-priority job, if any.
func (q *jobQueue) pop() (string, bool) {
	q.mu.Lock()
	if len(q.items) == 0 {
		q.mu.Unlock()
		return "", false
	}
	id := q.items[0].id
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	rest := len(q.items)
	q.mu.Unlock()
	if rest > 0 {
		q.signal()
	}
	return id, true
}

// depth reports how many jobs are waiting.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

func (q *jobQueue) signal() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}
