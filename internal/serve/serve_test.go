package serve

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"paragraph/internal/core"
	"paragraph/internal/faultinject"
	"paragraph/internal/isa"
	"paragraph/internal/shard"
	"paragraph/internal/trace"
)

// synthTrace builds a v2 trace with many chunk boundaries so small tests
// still split into real multi-shard plans.
func synthTrace(t testing.TB, n int, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriterOpts(&buf, trace.WriterOptions{ChunkBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pc := uint32(0x400000)
	for i := 0; i < n; i++ {
		var e trace.Event
		switch rng.Intn(4) {
		case 0:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.ADDI, Rt: isa.T0, Rs: isa.T1, Imm: int32(rng.Intn(32))}}
		case 1:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.LW, Rt: isa.T2, Rs: isa.GP},
				MemAddr: 0x10000000 + uint32(rng.Intn(1<<10))*4, MemSize: 4, Seg: trace.SegData}
		case 2:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.SW, Rt: isa.T0, Rs: isa.GP},
				MemAddr: 0x10000000 + uint32(rng.Intn(1<<10))*4, MemSize: 4, Seg: trace.SegData}
		default:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.BNE, Rs: isa.T0, Rt: isa.Zero, Imm: -8},
				Taken: rng.Intn(2) == 0}
		}
		if err := w.Event(&e); err != nil {
			t.Fatal(err)
		}
		pc += 4
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func writeTraceFile(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.pgt")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// testServer builds a Server with fast test timings and a no-op sleep, and
// wraps its handler in an httptest server so every interaction goes
// through the real HTTP API.
func testServer(t *testing.T, stateDir string, mod func(*Options)) (*Server, string) {
	t.Helper()
	opts := Options{
		StateDir:  stateDir,
		Workers:   2,
		Seed:      42,
		RetryBase: time.Millisecond,
		Sleep:     func(time.Duration) {},
	}
	if mod != nil {
		mod(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	api := httptest.NewServer(s.Handler())
	t.Cleanup(api.Close)
	t.Cleanup(s.kill)
	return s, api.URL
}

func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("parsing %s response %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

func getJSON(t *testing.T, url string, out any) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("parsing %s response %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

func registerTrace(t *testing.T, api, location string) string {
	t.Helper()
	var ti TraceInfo
	code, raw := postJSON(t, api+"/v1/traces", map[string]string{"location": location}, &ti)
	if code != http.StatusCreated {
		t.Fatalf("registering trace: status %d: %s", code, raw)
	}
	return ti.ID
}

func submitJob(t *testing.T, api, traceID string, cfg core.Config, shards int) string {
	t.Helper()
	var resp map[string]string
	code, raw := postJSON(t, api+"/v1/jobs", map[string]any{
		"trace": traceID, "config": cfg, "shards": shards,
	}, &resp)
	if code != http.StatusAccepted {
		t.Fatalf("submitting job: status %d: %s", code, raw)
	}
	return resp["id"]
}

// waitJob polls the status endpoint until the job reaches a terminal
// state, returning the final view.
func waitJob(t *testing.T, api, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var v JobView
		code, raw := getJSON(t, api+"/v1/jobs/"+id, &v)
		if code != http.StatusOK {
			t.Fatalf("job status: %d: %s", code, raw)
		}
		switch v.State {
		case StateDone, StateDegraded, StateFailed:
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after 60s: %+v", id, v.State, v)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fetchGobResult retrieves and decodes the exact merged result.
func fetchGobResult(t *testing.T, api, id string) *JobResult {
	t.Helper()
	resp, err := http.Get(api + "/v1/jobs/" + id + "/result?format=gob")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("gob result: status %d: %s", resp.StatusCode, raw)
	}
	magic := make([]byte, len(resultMagic))
	if _, err := io.ReadFull(resp.Body, magic); err != nil || string(magic) != resultMagic {
		t.Fatalf("gob result: bad magic %q (err %v)", magic, err)
	}
	var res JobResult
	if err := gob.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decoding gob result: %v", err)
	}
	return &res
}

var testConfig = core.Config{
	RenameRegisters: true,
	Profile:         true,
	Lifetimes:       true,
	Sharing:         true,
}

func TestDaemonLocalJob(t *testing.T) {
	data := synthTrace(t, 20000, 1)
	path := writeTraceFile(t, data)
	_, api := testServer(t, t.TempDir(), nil)

	tid := registerTrace(t, api, path)
	jid := submitJob(t, api, tid, testConfig, 5)
	v := waitJob(t, api, jid)
	if v.State != StateDone {
		t.Fatalf("job finished %q, want done: %+v", v.State, v)
	}
	if v.ShardsDone != len(v.Shards) || len(v.Shards) < 2 {
		t.Fatalf("want all of >=2 shards done, got %d/%d", v.ShardsDone, len(v.Shards))
	}

	got := fetchGobResult(t, api, jid)
	wantRes, wantRS, err := shard.Analyze(context.Background(), data, testConfig, 5, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Result, wantRes) {
		t.Error("daemon result differs from direct sharded analysis")
	}
	if got.ReadStats != wantRS {
		t.Errorf("daemon read stats %+v, want %+v", got.ReadStats, wantRS)
	}

	var sum ResultSummary
	if code, raw := getJSON(t, api+"/v1/jobs/"+jid+"/result", &sum); code != http.StatusOK {
		t.Fatalf("result summary: %d: %s", code, raw)
	}
	if sum.Instructions != wantRes.Instructions || sum.CriticalPath != wantRes.CriticalPath {
		t.Errorf("summary %+v does not match result", sum)
	}
}

// TestDifferentialDaemonChaos is the chaos differential of the issue: a
// sharded job whose trace arrives through the fault-injecting transport
// (throttles, mid-body cuts, truncations — no permanent faults) completes
// with a result deep-equal to a clean local run, and the absorbed retries
// are visible in the job status.
func TestDifferentialDaemonChaos(t *testing.T) {
	data := synthTrace(t, 20000, 2)
	store := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "trace.pgt", time.Unix(0, 0), bytes.NewReader(data))
	}))
	defer store.Close()
	chaos := faultinject.NewChaosTransport(store.Client().Transport, faultinject.ChaosOptions{
		Seed: 17, ThrottleP: 0.2, CutP: 0.2, TruncateP: 0.15,
	})
	_, api := testServer(t, t.TempDir(), func(o *Options) {
		o.Client = &http.Client{Transport: chaos}
	})

	tid := registerTrace(t, api, store.URL)
	jid := submitJob(t, api, tid, testConfig, 4)
	v := waitJob(t, api, jid)
	if v.State != StateDone {
		t.Fatalf("job under chaos finished %q, want done: %+v", v.State, v)
	}
	if v.Retry.Retries == 0 {
		t.Errorf("job status reports no retries under a 55%% fault rate: %+v", v.Retry)
	}
	if cs := chaos.Stats(); cs.Throttled+cs.Cut+cs.Truncated == 0 {
		t.Fatalf("chaos transport injected nothing: %+v", cs)
	}

	got := fetchGobResult(t, api, jid)
	wantRes, wantRS, err := shard.Analyze(context.Background(), data, testConfig, 4, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Result, wantRes) {
		t.Error("chaos-fetched result differs from clean local analysis")
	}
	if got.ReadStats != wantRS {
		t.Errorf("chaos-fetched read stats %+v, want %+v", got.ReadStats, wantRS)
	}
}

// submitSpeculativeJob queues a job with the speculative engine selected.
func submitSpeculativeJob(t *testing.T, api, traceID string, cfg core.Config, shards int) string {
	t.Helper()
	var resp map[string]string
	code, raw := postJSON(t, api+"/v1/jobs", map[string]any{
		"trace": traceID, "config": cfg, "shards": shards, "speculate": true,
	}, &resp)
	if code != http.StatusAccepted {
		t.Fatalf("submitting speculative job: status %d: %s", code, raw)
	}
	return resp["id"]
}

// TestDifferentialDaemonSpeculative: a speculative job produces exactly the
// chained job's output — same merged result, same read stats — and leaves
// both the delta files (the parallel build artifacts) and the same
// shard-N.pgsr result files the chained path persists.
func TestDifferentialDaemonSpeculative(t *testing.T) {
	data := synthTrace(t, 20000, 7)
	path := writeTraceFile(t, data)
	stateDir := t.TempDir()
	_, api := testServer(t, stateDir, nil)

	tid := registerTrace(t, api, path)
	chainedID := submitJob(t, api, tid, testConfig, 5)
	specID := submitSpeculativeJob(t, api, tid, testConfig, 5)
	if v := waitJob(t, api, chainedID); v.State != StateDone {
		t.Fatalf("chained job finished %q, want done: %+v", v.State, v)
	}
	if v := waitJob(t, api, specID); v.State != StateDone {
		t.Fatalf("speculative job finished %q, want done: %+v", v.State, v)
	}

	chained := fetchGobResult(t, api, chainedID)
	spec := fetchGobResult(t, api, specID)
	if !reflect.DeepEqual(spec.Result, chained.Result) {
		t.Error("speculative job result differs from chained job result")
	}
	if spec.ReadStats != chained.ReadStats {
		t.Errorf("read stats: speculative %+v, chained %+v", spec.ReadStats, chained.ReadStats)
	}

	// Same per-shard result files, and the speculative job's deltas on top.
	for i := 0; i < 5; i++ {
		specPart, _, err := shard.LoadResult(filepath.Join(stateDir, "jobs", specID, "shard-"+strconv.Itoa(i)+".pgsr"))
		if err != nil {
			t.Fatalf("speculative job shard %d result: %v", i, err)
		}
		chainedPart, _, err := shard.LoadResult(filepath.Join(stateDir, "jobs", chainedID, "shard-"+strconv.Itoa(i)+".pgsr"))
		if err != nil {
			t.Fatalf("chained job shard %d result: %v", i, err)
		}
		if !reflect.DeepEqual(specPart, chainedPart) {
			t.Errorf("shard %d: speculative persisted result differs from chained", i)
		}
		if _, err := shard.LoadDelta(filepath.Join(stateDir, "jobs", specID, "shard-"+strconv.Itoa(i)+".pgsd")); err != nil {
			t.Errorf("speculative job shard %d delta not persisted: %v", i, err)
		}
	}
}

// TestDifferentialDaemonSpeculativeChaosResume combines the hostile paths:
// a speculative job fetching its shards through the chaos transport is
// crash-killed right after the first spliced shard persists; a fresh
// daemon resumes it (reusing the persisted deltas and the finished shard)
// and the merged result is deep-equal to a clean local run.
func TestDifferentialDaemonSpeculativeChaosResume(t *testing.T) {
	data := synthTrace(t, 20000, 8)
	store := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "trace.pgt", time.Unix(0, 0), bytes.NewReader(data))
	}))
	defer store.Close()
	newChaos := func(seed int64) *http.Client {
		return &http.Client{Transport: faultinject.NewChaosTransport(store.Client().Transport, faultinject.ChaosOptions{
			Seed: seed, ThrottleP: 0.15, CutP: 0.15, TruncateP: 0.1,
		})}
	}
	stateDir := t.TempDir()

	s1, api1 := testServer(t, stateDir, func(o *Options) { o.Client = newChaos(31) })
	crashed := make(chan struct{})
	var once sync.Once
	s1.afterShard = func(jobID string, i int) {
		if i == 0 {
			once.Do(func() {
				s1.cancel()
				close(crashed)
			})
		}
	}
	tid := registerTrace(t, api1, store.URL)
	jid := submitSpeculativeJob(t, api1, tid, testConfig, 4)
	select {
	case <-crashed:
	case <-time.After(60 * time.Second):
		t.Fatal("speculative job never spliced its first shard")
	}
	s1.kill()

	if _, err := os.Stat(filepath.Join(stateDir, "jobs", jid, "result.pgr")); err == nil {
		t.Fatal("crashed daemon left a merged result; the job had not finished")
	}
	if _, _, err := shard.LoadResult(filepath.Join(stateDir, "jobs", jid, "shard-0.pgsr")); err != nil {
		t.Fatalf("crashed daemon lost shard 0's persisted result: %v", err)
	}

	_, api2 := testServer(t, stateDir, func(o *Options) { o.Client = newChaos(32) })
	v := waitJob(t, api2, jid)
	if v.State != StateDone {
		t.Fatalf("resumed speculative job finished %q, want done: %+v", v.State, v)
	}

	got := fetchGobResult(t, api2, jid)
	wantRes, wantRS, err := shard.Analyze(context.Background(), data, testConfig, 4, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Result, wantRes) {
		t.Error("resumed speculative result differs from clean local analysis")
	}
	if got.ReadStats != wantRS {
		t.Errorf("resumed speculative read stats %+v, want %+v", got.ReadStats, wantRS)
	}
}

// TestDifferentialDaemonCrashResume is the crash differential: the daemon
// dies (hard cancel, nothing flushed beyond what atomic writes already
// persisted) right after the first shard lands; a fresh daemon over the
// same state directory resumes the job from disk and the merged result is
// deep-equal to an uninterrupted run.
func TestDifferentialDaemonCrashResume(t *testing.T) {
	data := synthTrace(t, 20000, 3)
	path := writeTraceFile(t, data)
	stateDir := t.TempDir()

	s1, api1 := testServer(t, stateDir, nil)
	crashed := make(chan struct{})
	var once sync.Once
	s1.afterShard = func(jobID string, i int) {
		if i == 0 {
			once.Do(func() {
				s1.cancel() // SIGKILL equivalent: no drain, no goodbye
				close(crashed)
			})
		}
	}
	tid := registerTrace(t, api1, path)
	jid := submitJob(t, api1, tid, testConfig, 5)
	select {
	case <-crashed:
	case <-time.After(60 * time.Second):
		t.Fatal("job never reached its first shard")
	}
	s1.kill()

	// The dead daemon must have left the plan and exactly the completed
	// shard results — and no merged result.
	if _, err := os.Stat(filepath.Join(stateDir, "jobs", jid, "result.pgr")); err == nil {
		t.Fatal("crashed daemon left a merged result; the job had not finished")
	}
	if _, _, err := shard.LoadResult(filepath.Join(stateDir, "jobs", jid, "shard-0.pgsr")); err != nil {
		t.Fatalf("crashed daemon lost shard 0's persisted result: %v", err)
	}

	_, api2 := testServer(t, stateDir, nil)
	v := waitJob(t, api2, jid)
	if v.State != StateDone {
		t.Fatalf("resumed job finished %q, want done: %+v", v.State, v)
	}

	got := fetchGobResult(t, api2, jid)
	wantRes, wantRS, err := shard.Analyze(context.Background(), data, testConfig, 5, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Result, wantRes) {
		t.Error("crash-resumed result differs from uninterrupted analysis")
	}
	if got.ReadStats != wantRS {
		t.Errorf("crash-resumed read stats %+v, want %+v", got.ReadStats, wantRS)
	}
}

// TestDaemonDegradedJob pins graceful degradation: a shard whose byte
// range the server permanently refuses breaks the checkpoint chain there;
// the job lands degraded with the completed shards' results kept, and the
// verdict survives a daemon restart.
func TestDaemonDegradedJob(t *testing.T) {
	data := synthTrace(t, 20000, 4)
	plan, err := shard.Split(data, 4, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Shards) != 4 {
		t.Fatalf("want a 4-shard plan, got %d", len(plan.Shards))
	}
	deadline := plan.Shards[2].Start // shard 2's range is forbidden

	store := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rng := r.Header.Get("Range"); rng != "" {
			if start, err := strconv.ParseInt(strings.TrimPrefix(rng[:strings.Index(rng, "-")], "bytes="), 10, 64); err == nil && start >= deadline {
				http.Error(w, "forbidden range", http.StatusForbidden)
				return
			}
		}
		http.ServeContent(w, r, "trace.pgt", time.Unix(0, 0), bytes.NewReader(data))
	}))
	defer store.Close()

	stateDir := t.TempDir()
	s1, api := testServer(t, stateDir, nil)

	tid := registerTrace(t, api, store.URL)
	jid := submitJob(t, api, tid, testConfig, 4)
	v := waitJob(t, api, jid)
	if v.State != StateDegraded {
		t.Fatalf("job finished %q, want degraded: %+v", v.State, v)
	}
	if v.Degraded == nil || v.Degraded.Shard != 2 {
		t.Fatalf("degradation mark %+v, want shard 2", v.Degraded)
	}
	if v.ShardsDone != 2 {
		t.Errorf("want the 2 completed shards kept, got %d done", v.ShardsDone)
	}
	if code, raw := getJSON(t, api+"/v1/jobs/"+jid+"/result", nil); code != http.StatusConflict {
		t.Fatalf("degraded result fetch: status %d, want 409: %s", code, raw)
	}

	// Restart: the degradation marker is terminal, the job is not re-run.
	s1.kill()
	_, api2 := testServer(t, stateDir, nil)
	var v2 JobView
	if code, raw := getJSON(t, api2+"/v1/jobs/"+jid, &v2); code != http.StatusOK {
		t.Fatalf("recovered status: %d: %s", code, raw)
	}
	if v2.State != StateDegraded || v2.Degraded == nil || v2.Degraded.Shard != 2 {
		t.Fatalf("restart lost the degradation verdict: %+v", v2)
	}
}

// TestDaemonPanicContainment injects a panic into a shard attempt: it must
// count as one failed attempt, not kill the worker, and the retry must
// complete the job with a correct result.
func TestDaemonPanicContainment(t *testing.T) {
	data := synthTrace(t, 8000, 5)
	path := writeTraceFile(t, data)
	s, api := testServer(t, t.TempDir(), nil)
	var once sync.Once
	s.beforeAttempt = func(jobID string, i int) {
		if i == 1 {
			once.Do(func() { panic("injected shard fault") })
		}
	}

	tid := registerTrace(t, api, path)
	jid := submitJob(t, api, tid, testConfig, 3)
	v := waitJob(t, api, jid)
	if v.State != StateDone {
		t.Fatalf("job finished %q, want done despite the panic: %+v", v.State, v)
	}
	if len(v.Shards) < 2 || v.Shards[1].Attempts < 2 {
		t.Fatalf("panicked shard should show a retried attempt: %+v", v.Shards)
	}
	got := fetchGobResult(t, api, jid)
	wantRes, _, err := shard.Analyze(context.Background(), data, testConfig, 3, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Result, wantRes) {
		t.Error("result after contained panic differs from clean analysis")
	}
}

func TestDaemonReadyzDrain(t *testing.T) {
	data := synthTrace(t, 4000, 6)
	path := writeTraceFile(t, data)
	s, api := testServer(t, t.TempDir(), nil)

	if code, _ := getJSON(t, api+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d, want 200", code)
	}
	tid := registerTrace(t, api, path)
	jid := submitJob(t, api, tid, core.Config{}, 2)
	waitJob(t, api, jid)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code, _ := getJSON(t, api+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d, want 503", code)
	}
	if code, raw := postJSON(t, api+"/v1/jobs", map[string]any{"trace": tid, "shards": 2}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503: %s", code, raw)
	}
	// The finished job's result is still served after drain.
	if code, raw := getJSON(t, api+"/v1/jobs/"+jid+"/result", nil); code != http.StatusOK {
		t.Fatalf("result after drain: %d: %s", code, raw)
	}
	if code, _ := getJSON(t, api+"/healthz", nil); code != http.StatusOK {
		t.Fatal("healthz must stay 200 while draining")
	}
}

// TestDaemonUnknownRoutes pins the small 4xx surface.
func TestDaemonUnknownRoutes(t *testing.T) {
	_, api := testServer(t, t.TempDir(), nil)
	if code, _ := getJSON(t, api+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}
	if code, _ := getJSON(t, api+"/v1/jobs/nope/result", nil); code != http.StatusNotFound {
		t.Errorf("unknown job result: %d, want 404", code)
	}
	if code, raw := postJSON(t, api+"/v1/jobs", map[string]any{"trace": "missing"}, nil); code != http.StatusNotFound {
		t.Errorf("job for unknown trace: %d, want 404: %s", code, raw)
	}
	if code, raw := postJSON(t, api+"/v1/traces", map[string]string{"location": "/does/not/exist"}, nil); code != http.StatusBadRequest {
		t.Errorf("register missing file: %d, want 400: %s", code, raw)
	}
	if code, _ := getJSON(t, api+"/healthz", nil); code != http.StatusOK {
		t.Error("healthz should be 200")
	}
}
