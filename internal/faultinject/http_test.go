package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosServer serves a fixed payload with full range support (ServeContent),
// the same shape a trace store presents to remote shard workers.
func chaosServer(t *testing.T, payload []byte) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "trace.pgt", time.Unix(0, 0), strings.NewReader(string(payload)))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, client *http.Client, url string) ([]byte, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("round trip failed entirely: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, errors.New(resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func TestChaosThrottle(t *testing.T) {
	payload := []byte(strings.Repeat("x", 8192))
	srv := chaosServer(t, payload)
	tr := NewChaosTransport(srv.Client().Transport, ChaosOptions{Seed: 1, ThrottleP: 1})
	client := &http.Client{Transport: tr}

	saw429, saw503 := false, false
	for i := 0; i < 8; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			saw429 = true
		case http.StatusServiceUnavailable:
			saw503 = true
		default:
			t.Fatalf("request %d: got status %d, want a throttle", i, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("request %d: throttle response has no body", i)
		}
	}
	if !saw429 || !saw503 {
		t.Errorf("want both throttle codes over 8 requests, got 429=%v 503=%v", saw429, saw503)
	}
	if st := tr.Stats(); st.Throttled != 8 || st.Requests != 8 {
		t.Errorf("stats = %+v, want 8 requests, 8 throttled", st)
	}
}

func TestChaosCutMidBody(t *testing.T) {
	payload := []byte(strings.Repeat("y", 1<<16))
	srv := chaosServer(t, payload)
	tr := NewChaosTransport(srv.Client().Transport, ChaosOptions{Seed: 2, CutP: 1})
	client := &http.Client{Transport: tr}

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read %d bytes with no error, want a mid-body cut", len(body))
	}
	var cut *CutError
	if !errors.As(err, &cut) {
		t.Fatalf("read error = %v, want *CutError", err)
	}
	if !cut.Temporary() {
		t.Error("CutError must advertise Temporary() == true")
	}
	if len(body) == 0 || len(body) >= len(payload) {
		t.Errorf("cut after %d of %d bytes, want strictly mid-body", len(body), len(payload))
	}
	if st := tr.Stats(); st.Cut != 1 {
		t.Errorf("stats = %+v, want 1 cut", st)
	}
}

func TestChaosTruncateCleanEOF(t *testing.T) {
	payload := []byte(strings.Repeat("z", 1<<16))
	srv := chaosServer(t, payload)
	tr := NewChaosTransport(srv.Client().Transport, ChaosOptions{Seed: 3, TruncateP: 1})
	client := &http.Client{Transport: tr}

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("truncation must end with a clean EOF, got %v", err)
	}
	if len(body) == 0 || len(body) >= len(payload) {
		t.Errorf("truncated to %d of %d bytes, want strictly short", len(body), len(payload))
	}
	if st := tr.Stats(); st.Truncated != 1 {
		t.Errorf("stats = %+v, want 1 truncation", st)
	}
}

// TestChaosFaultBudget proves MaxFaults stops injection: once the budget is
// spent every further request completes cleanly.
func TestChaosFaultBudget(t *testing.T) {
	payload := []byte(strings.Repeat("b", 4096))
	srv := chaosServer(t, payload)
	tr := NewChaosTransport(srv.Client().Transport, ChaosOptions{Seed: 4, ThrottleP: 1, MaxFaults: 2})
	client := &http.Client{Transport: tr}

	for i := 0; i < 6; i++ {
		body, err := get(t, client, srv.URL)
		if i < 2 {
			if err == nil {
				t.Fatalf("request %d: want throttle while budget open", i)
			}
			continue
		}
		if err != nil {
			t.Fatalf("request %d: budget spent, want clean response, got %v", i, err)
		}
		if string(body) != string(payload) {
			t.Fatalf("request %d: body mismatch after budget spent", i)
		}
	}
	if st := tr.Stats(); st.Throttled != 2 {
		t.Errorf("stats = %+v, want exactly 2 throttles", st)
	}
}

// TestChaosDeterminism pins the seeded reproducibility contract: the same
// seed over the same request sequence injects the same faults.
func TestChaosDeterminism(t *testing.T) {
	payload := []byte(strings.Repeat("d", 1<<15))
	srv := chaosServer(t, payload)
	opts := ChaosOptions{Seed: 99, ThrottleP: 0.3, CutP: 0.3, TruncateP: 0.3}

	run := func() (ChaosStats, []int) {
		tr := NewChaosTransport(srv.Client().Transport, opts)
		client := &http.Client{Transport: tr}
		var lens []int
		for i := 0; i < 20; i++ {
			resp, err := client.Get(srv.URL)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			lens = append(lens, len(body))
		}
		return tr.Stats(), lens
	}
	st1, lens1 := run()
	st2, lens2 := run()
	if st1 != st2 {
		t.Errorf("stats diverged across identical runs: %+v vs %+v", st1, st2)
	}
	for i := range lens1 {
		if lens1[i] != lens2[i] {
			t.Errorf("request %d: delivered %d then %d bytes; fault positions must be seeded", i, lens1[i], lens2[i])
		}
	}
	if st1.Throttled == 0 || st1.Cut == 0 || st1.Truncated == 0 {
		t.Errorf("20 requests at 30%% each should hit every fault class, got %+v", st1)
	}
}

// chaosKind classifies what one request experienced.
func chaosKind(t *testing.T, client *http.Client, url string, payloadLen int) string {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("round trip failed entirely: %v", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return "throttle429"
	case http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return "throttle503"
	}
	body, err := io.ReadAll(resp.Body)
	var cut *CutError
	switch {
	case errors.As(err, &cut):
		return "cut"
	case err != nil:
		t.Fatalf("unexpected body error: %v", err)
		return ""
	case len(body) < payloadLen:
		return "trunc"
	default:
		return "clean"
	}
}

// TestChaosScheduleRegression pins the exact fault schedule of a fixed seed.
// TestChaosDeterminism proves two runs of the same binary agree, but both
// runs would shift together if the per-request draw order changed; this
// golden schedule is what keeps recorded seeds replayable across versions —
// the property serve's chaos differentials and bug reports rely on.
func TestChaosScheduleRegression(t *testing.T) {
	payload := []byte(strings.Repeat("g", 1<<15))
	srv := chaosServer(t, payload)
	opts := ChaosOptions{Seed: 42, ThrottleP: 0.25, CutP: 0.25, TruncateP: 0.25}

	schedule := func(seed int64) []string {
		o := opts
		o.Seed = seed
		tr := NewChaosTransport(srv.Client().Transport, o)
		client := &http.Client{Transport: tr}
		kinds := make([]string, 16)
		for i := range kinds {
			kinds[i] = chaosKind(t, client, srv.URL, len(payload))
		}
		return kinds
	}

	want := []string{
		"throttle503", "cut", "trunc", "throttle429",
		"trunc", "cut", "throttle429", "throttle503",
		"clean", "clean", "clean", "trunc",
		"clean", "clean", "cut", "trunc",
	}
	got := schedule(42)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seed 42 schedule changed: got %v, want %v\n"+
				"(a deliberate PRNG draw-order change must bump this golden and be called out — recorded seeds stop replaying)", got, want)
		}
	}
	if other := schedule(43); reflect.DeepEqual(other, want) {
		t.Error("seed 43 produced seed 42's schedule; faults are not seed-driven")
	}
}

// TestChaosConcurrentDrawStability: each request consumes a fixed draw
// vector, so the multiset of faults over N concurrent requests equals the
// sequential schedule regardless of arrival order.
func TestChaosConcurrentDrawStability(t *testing.T) {
	payload := []byte(strings.Repeat("c", 1<<14))
	srv := chaosServer(t, payload)
	opts := ChaosOptions{Seed: 7, ThrottleP: 0.3, CutP: 0.3, TruncateP: 0.3}

	const reqs = 24
	sequential := make(map[string]int)
	{
		tr := NewChaosTransport(srv.Client().Transport, opts)
		client := &http.Client{Transport: tr}
		for i := 0; i < reqs; i++ {
			sequential[chaosKind(t, client, srv.URL, len(payload))]++
		}
	}

	tr := NewChaosTransport(srv.Client().Transport, opts)
	client := &http.Client{Transport: tr}
	kinds := make([]string, reqs)
	var wg sync.WaitGroup
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kinds[i] = chaosKind(t, client, srv.URL, len(payload))
		}(i)
	}
	wg.Wait()
	concurrent := make(map[string]int)
	for _, k := range kinds {
		concurrent[k]++
	}
	// 429 vs 503 alternation draws from the shared stream, so fold the two
	// throttle kinds together; the fault-class multiset is the invariant.
	fold := func(m map[string]int) map[string]int {
		out := make(map[string]int)
		for k, v := range m {
			if strings.HasPrefix(k, "throttle") {
				k = "throttle"
			}
			out[k] += v
		}
		return out
	}
	if sf, cf := fold(sequential), fold(concurrent); !reflect.DeepEqual(sf, cf) {
		t.Errorf("fault multiset depends on arrival timing: sequential %v, concurrent %v", sf, cf)
	}
}

func TestChaosDelay(t *testing.T) {
	payload := []byte("small")
	srv := chaosServer(t, payload)
	tr := NewChaosTransport(srv.Client().Transport, ChaosOptions{Seed: 5, Delay: 2 * time.Millisecond})
	client := &http.Client{Transport: tr}
	for i := 0; i < 4; i++ {
		if _, err := get(t, client, srv.URL); err != nil {
			t.Fatal(err)
		}
	}
	if st := tr.Stats(); st.Delayed <= 0 {
		t.Errorf("stats = %+v, want accumulated delay", st)
	}
}

// TestChaosRetryAfterHeader: throttle responses carry the configured
// Retry-After so clients' header-honoring backoff paths get exercised.
func TestChaosRetryAfterHeader(t *testing.T) {
	payload := []byte("payload")
	srv := chaosServer(t, payload)
	tr := NewChaosTransport(srv.Client().Transport, ChaosOptions{
		Seed: 6, ThrottleP: 1, RetryAfter: 2500 * time.Millisecond,
	})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want a throttle", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want %q (ceil seconds)", ra, "3")
	}

	// Default: no header, so clients fall back to their own backoff.
	tr2 := NewChaosTransport(srv.Client().Transport, ChaosOptions{Seed: 6, ThrottleP: 1})
	resp2, err := (&http.Client{Transport: tr2}).Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if ra := resp2.Header.Get("Retry-After"); ra != "" {
		t.Fatalf("Retry-After %q without opting in, want absent", ra)
	}
}
