package faultinject

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// sampleTrace builds a small multi-chunk v2 trace.
func sampleTrace(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriterOpts(&buf, trace.WriterOptions{Version: 2, ChunkBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	pc := uint32(0x400000)
	for i := 0; i < n; i++ {
		e := trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.ADDI, Rt: isa.T0, Rs: isa.T1, Imm: int32(i)}}
		if i%3 == 0 {
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.LW, Rt: isa.T2, Rs: isa.SP, Imm: 4},
				MemAddr: 0x7fff0000, MemSize: 4, Seg: trace.SegStack}
		}
		if err := w.Event(&e); err != nil {
			t.Fatal(err)
		}
		pc += 4
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFlipBitsDeterministic(t *testing.T) {
	data := sampleTrace(t, 500)
	a := FlipBits(data, 5, 99, 8)
	b := FlipBits(data, 5, 99, 8)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different corruption")
	}
	if bytes.Equal(a, data) {
		t.Error("no bits were flipped")
	}
	if !bytes.Equal(a[:8], data[:8]) {
		t.Error("skip region was touched")
	}
	if !bytes.Equal(data, sampleTrace(t, 500)) {
		t.Error("FlipBits mutated its input")
	}
	c := FlipBits(data, 5, 100, 8)
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical corruption")
	}
}

func TestTruncate(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5}
	if got := Truncate(data, 2); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Truncate(5,2) = %v", got)
	}
	if got := Truncate(data, 10); len(got) != 0 {
		t.Errorf("over-truncation = %v", got)
	}
}

func TestCorruptChunkTargetsPayload(t *testing.T) {
	data := sampleTrace(t, 500)
	chunks, err := trace.ScanChunks(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 3 {
		t.Fatalf("need several chunks, got %d", len(chunks))
	}
	bad, err := CorruptChunk(data, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	again, err := CorruptChunk(data, 1, 7)
	if err != nil || !bytes.Equal(bad, again) {
		t.Error("CorruptChunk is not deterministic")
	}
	// Only chunk 1's CRC breaks; headers and other chunks stay intact.
	after, err := trace.ScanChunks(bad)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range after {
		if c.CRCOK != (i != 1) {
			t.Errorf("chunk %d CRCOK = %v", i, c.CRCOK)
		}
	}
	// A fail-fast reader must reject exactly that chunk.
	r, err := trace.NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	var e trace.Event
	var rerr error
	for rerr == nil {
		rerr = r.Next(&e)
	}
	var cce *trace.CorruptChunkError
	if !errors.As(rerr, &cce) || cce.Chunk != 1 {
		t.Errorf("reader gave %v, want CorruptChunkError for chunk 1", rerr)
	}

	if _, err := CorruptChunk(data, len(chunks), 7); err == nil {
		t.Error("out-of-range chunk index accepted")
	}
}

func TestDuplicateChunk(t *testing.T) {
	data := sampleTrace(t, 500)
	dup, err := DuplicateChunk(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := trace.ScanChunks(dup)
	if err != nil {
		t.Fatal(err)
	}
	if chunks[2].Seq != chunks[3].Seq {
		t.Errorf("chunks 2 and 3 have seqs %d, %d; want a replay", chunks[2].Seq, chunks[3].Seq)
	}
	// The reader drops the replay: same events as the pristine trace.
	count := func(data []byte) (n int) {
		t.Helper()
		r, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var e trace.Event
		for r.Next(&e) == nil {
			n++
		}
		return n
	}
	if got, want := count(dup), count(data); got != want {
		t.Errorf("replayed trace delivered %d events, want %d", got, want)
	}
}

func TestCorruptReader(t *testing.T) {
	data := bytes.Repeat([]byte{0xAA}, 1<<16)
	read := func(seed int64) []byte {
		cr := NewCorruptReader(bytes.NewReader(data), 1024, 64, seed)
		out, err := io.ReadAll(cr)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := read(3), read(3)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different streams")
	}
	if bytes.Equal(a, data) {
		t.Error("no corruption at rate 1024 over 64 KiB")
	}
	if !bytes.Equal(a[:64], data[:64]) {
		t.Error("skip region was corrupted")
	}
	flips := 0
	for i := range a {
		if a[i] != data[i] {
			flips++
		}
	}
	// Expected ~64 flips at one per KiB; allow a wide deterministic band.
	if flips < 16 || flips > 256 {
		t.Errorf("flips = %d, want roughly len/rate", flips)
	}
}

// collector records every event delivered to it.
type collector struct {
	events []trace.Event
}

func (c *collector) Event(e *trace.Event) error {
	c.events = append(c.events, *e)
	return nil
}

func TestSinkFaults(t *testing.T) {
	var got collector
	s := NewSink(&got, SinkOptions{Seed: 11, DropP: 0.1, DupP: 0.1, MangleP: 0.1})
	e := trace.Event{PC: 0x400000, Ins: isa.Instruction{Op: isa.LW, Rt: isa.T0, Rs: isa.SP},
		MemAddr: 0x7fff0000, MemSize: 4, Seg: trace.SegStack}
	const n = 1000
	for i := 0; i < n; i++ {
		if err := s.Event(&e); err != nil {
			t.Fatal(err)
		}
	}
	if s.Dropped == 0 || s.Duplicated == 0 || s.Mangled == 0 {
		t.Fatalf("faults = drop %d, dup %d, mangle %d; want all three kinds",
			s.Dropped, s.Duplicated, s.Mangled)
	}
	if want := n - s.Dropped + s.Duplicated; len(got.events) != want {
		t.Errorf("delivered %d events, want %d", len(got.events), want)
	}
	mangled := 0
	for i := range got.events {
		if got.events[i] != e {
			mangled++
		}
	}
	if mangled != s.Mangled {
		t.Errorf("found %d damaged events, sink reports %d", mangled, s.Mangled)
	}
}

func TestSinkMaxFaults(t *testing.T) {
	var got collector
	s := NewSink(&got, SinkOptions{Seed: 5, DropP: 1, MaxFaults: 3})
	e := trace.Event{PC: 4, Ins: isa.Instruction{Op: isa.NOP}}
	for i := 0; i < 10; i++ {
		if err := s.Event(&e); err != nil {
			t.Fatal(err)
		}
	}
	if s.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3 (MaxFaults)", s.Dropped)
	}
	if len(got.events) != 7 {
		t.Errorf("delivered %d, want 7", len(got.events))
	}
}

func TestSinkDeterministic(t *testing.T) {
	run := func() (int, int, int) {
		var got collector
		s := NewSink(&got, SinkOptions{Seed: 42, DropP: 0.2, DupP: 0.2, MangleP: 0.2})
		e := trace.Event{PC: 4, Ins: isa.Instruction{Op: isa.NOP}}
		for i := 0; i < 500; i++ {
			if err := s.Event(&e); err != nil {
				t.Fatal(err)
			}
		}
		return s.Dropped, s.Duplicated, s.Mangled
	}
	d1, u1, m1 := run()
	d2, u2, m2 := run()
	if d1 != d2 || u1 != u2 || m1 != m2 {
		t.Errorf("same seed gave (%d,%d,%d) then (%d,%d,%d)", d1, u1, m1, d2, u2, m2)
	}
}
