package faultinject

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"paragraph/internal/trace"
)

// encodeTrace builds a small valid v2 trace for the transient-I/O tests.
func encodeTrace(t *testing.T, events int) []byte {
	t.Helper()
	var raw bytes.Buffer
	w, err := trace.NewWriter(&raw)
	if err != nil {
		t.Fatal(err)
	}
	ev := trace.Event{PC: 0x400000}
	for i := 0; i < events; i++ {
		ev.PC += 4
		if err := w.Event(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return raw.Bytes()
}

func TestTransientReaderInjectsRetryableErrors(t *testing.T) {
	data := encodeTrace(t, 2000)
	tr := NewTransientReader(bytes.NewReader(data), 256, 2, 7)
	_, err := io.ReadAll(tr)
	if err == nil {
		t.Fatal("transient reader injected nothing")
	}
	var te *TransientError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T %v, want *TransientError", err, err)
	}
	if !trace.IsTransientError(err) {
		t.Fatal("injected error not classified transient by trace.IsTransientError")
	}
}

func TestTransientReaderIsDeterministic(t *testing.T) {
	data := encodeTrace(t, 2000)
	count := func() int {
		tr := NewTransientReader(bytes.NewReader(data), 512, 1, 99)
		rr := trace.NewRetryReader(tr, trace.RetryOptions{Sleep: func(time.Duration) {}})
		if _, err := io.ReadAll(rr); err != nil {
			t.Fatalf("retried read failed: %v", err)
		}
		return tr.Injected
	}
	a, b := count(), count()
	if a == 0 || a != b {
		t.Fatalf("same seed injected %d then %d faults", a, b)
	}
}

// TestRetryReaderRecoversInjectedTransients is the end-to-end proof the
// ISSUE asks for: a trace read through a transiently failing medium, wrapped
// in a RetryReader, decodes every event exactly; the same stream without the
// retry layer fails.
func TestRetryReaderRecoversInjectedTransients(t *testing.T) {
	const events = 5000
	data := encodeTrace(t, events)

	// Without retries: the injected failure surfaces.
	bare := NewTransientReader(bytes.NewReader(data), 1024, 3, 21)
	if r, err := trace.NewReader(bare); err == nil {
		err = r.ForEach(func(*trace.Event) error { return nil })
		var te *TransientError
		if !errors.As(err, &te) {
			t.Fatalf("unretried read err = %v, want *TransientError", err)
		}
	}

	// With retries: every event decodes.
	inj := NewTransientReader(bytes.NewReader(data), 1024, 3, 21)
	rr := trace.NewRetryReader(inj, trace.RetryOptions{Seed: 1, Sleep: func(time.Duration) {}})
	r, err := trace.NewReader(rr)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	if err := r.ForEach(func(*trace.Event) error { n++; return nil }); err != nil {
		t.Fatalf("retried read failed: %v", err)
	}
	if n != events {
		t.Fatalf("decoded %d events, want %d", n, events)
	}
	if inj.Injected == 0 {
		t.Fatal("no faults were injected; test proves nothing")
	}
	if st := rr.Stats(); st.Retries == 0 || st.GaveUp != 0 {
		t.Fatalf("retry stats = %+v, want retries > 0 and no give-ups", st)
	}
}
