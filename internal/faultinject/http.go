package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"math/rand"
)

// ChaosOptions configures a ChaosTransport. Probabilities are per request
// and evaluated in the order throttle, cut, truncate; at most one fault
// fires per request. All randomness is seeded, so a failing test reproduces
// from its seed alone.
type ChaosOptions struct {
	// Seed seeds the fault PRNG.
	Seed int64
	// ThrottleP is the probability a request is answered with a synthetic
	// 429 or 503 (alternating by the PRNG) instead of being forwarded.
	ThrottleP float64
	// CutP is the probability the response body disconnects mid-stream:
	// after a seeded fraction of the body, reads fail with a *CutError
	// (the classic "connection reset" mid-download).
	CutP float64
	// TruncateP is the probability the response body ends early with a
	// clean io.EOF before the announced length — a truncated download the
	// client can only detect by counting bytes.
	TruncateP float64
	// Delay, when non-zero, adds a seeded latency in [0, Delay) to every
	// request before it is answered (slow-server simulation).
	Delay time.Duration
	// RetryAfter, when non-zero, is the Retry-After header value (rounded
	// up to whole seconds, per the HTTP grammar) stamped on synthetic
	// throttle responses. Zero keeps "Retry-After: 0" — retry immediately.
	RetryAfter time.Duration
	// MaxFaults stops injecting after this many faults; 0 is unlimited.
	MaxFaults int
}

// ChaosStats counts what a ChaosTransport injected.
type ChaosStats struct {
	// Requests is the number of requests that passed through.
	Requests int
	// Throttled counts synthetic 429/503 responses.
	Throttled int
	// Cut counts bodies that were disconnected mid-stream.
	Cut int
	// Truncated counts bodies that ended early with a clean EOF.
	Truncated int
	// Delayed is the total injected latency.
	Delayed time.Duration
}

// CutError is the body-read failure injected by a mid-stream disconnect.
// It advertises itself retryable via the Temporary() convention, exactly
// like a real connection reset surfaces through the net package.
type CutError struct {
	// After is the number of body bytes delivered before the cut.
	After int64
}

func (e *CutError) Error() string {
	return fmt.Sprintf("faultinject: connection cut after %d body bytes", e.After)
}

// Temporary marks the error retryable.
func (e *CutError) Temporary() bool { return true }

// ChaosTransport is a fault-injecting http.RoundTripper: it forwards
// requests to an inner transport while injecting seeded throttling
// responses, mid-body disconnects, truncated bodies and latency. It is the
// network-layer sibling of CorruptReader/TransientReader — the tool for
// proving that a remote trace consumer survives a hostile network, not
// just clean loopback.
//
// The transport is safe for concurrent use; the PRNG draws are serialized.
// Each request consumes a fixed number of draws, so the fault sequence for
// the Nth request depends only on the seed and N, not on timing.
type ChaosTransport struct {
	// Inner is the transport requests are forwarded to; nil selects
	// http.DefaultTransport.
	Inner http.RoundTripper

	opts ChaosOptions
	mu   sync.Mutex
	rng  *rand.Rand
	st   ChaosStats
}

// NewChaosTransport builds a ChaosTransport over inner with the given
// options.
func NewChaosTransport(inner http.RoundTripper, opts ChaosOptions) *ChaosTransport {
	return &ChaosTransport{Inner: inner, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Stats returns the faults injected so far.
func (t *ChaosTransport) Stats() ChaosStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.st
}

// plan is one request's pre-drawn randomness: drawing a fixed vector per
// request keeps the PRNG stream aligned whatever branches fire.
type chaosPlan struct {
	delayFrac float64
	faultP    float64
	cutFrac   float64
	alt       bool // alternates 429 vs 503
	inject    bool // fault budget still open
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	p := chaosPlan{
		delayFrac: t.rng.Float64(),
		faultP:    t.rng.Float64(),
		cutFrac:   t.rng.Float64(),
		alt:       t.rng.Intn(2) == 0,
		inject:    t.opts.MaxFaults == 0 || t.st.Throttled+t.st.Cut+t.st.Truncated < t.opts.MaxFaults,
	}
	t.st.Requests++
	var delay time.Duration
	if t.opts.Delay > 0 {
		delay = time.Duration(p.delayFrac * float64(t.opts.Delay))
		t.st.Delayed += delay
	}
	t.mu.Unlock()

	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}

	if p.inject && p.faultP < t.opts.ThrottleP {
		t.count(func(st *ChaosStats) { st.Throttled++ })
		code := http.StatusTooManyRequests
		if p.alt {
			code = http.StatusServiceUnavailable
		}
		return throttleResponse(req, code, t.opts.RetryAfter), nil
	}

	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	resp, err := inner.RoundTrip(req)
	if err != nil || resp.Body == nil || resp.Body == http.NoBody {
		return resp, err
	}

	switch {
	case p.inject && p.faultP < t.opts.ThrottleP+t.opts.CutP:
		t.count(func(st *ChaosStats) { st.Cut++ })
		resp.Body = &faultBody{inner: resp.Body, limit: bodyLimit(p.cutFrac, resp.ContentLength), cut: true}
	case p.inject && p.faultP < t.opts.ThrottleP+t.opts.CutP+t.opts.TruncateP:
		t.count(func(st *ChaosStats) { st.Truncated++ })
		resp.Body = &faultBody{inner: resp.Body, limit: bodyLimit(p.cutFrac, resp.ContentLength)}
	}
	return resp, nil
}

func (t *ChaosTransport) count(f func(*ChaosStats)) {
	t.mu.Lock()
	f(&t.st)
	t.mu.Unlock()
}

// bodyLimit picks how many body bytes survive before the fault: a seeded
// fraction of the announced length, at least 1 so the fault is always
// mid-body, never before the first byte (that case is the throttle path).
// Unknown lengths get a fixed small window.
func bodyLimit(frac float64, contentLength int64) int64 {
	if contentLength <= 1 {
		return 1 + int64(frac*4096)
	}
	n := int64(frac * float64(contentLength))
	if n < 1 {
		n = 1
	}
	if n >= contentLength {
		n = contentLength - 1
	}
	return n
}

// faultBody delivers the first limit bytes of the inner body, then either
// cuts the connection (returns *CutError) or truncates cleanly (io.EOF).
type faultBody struct {
	inner io.ReadCloser
	limit int64
	got   int64
	cut   bool
}

func (b *faultBody) Read(p []byte) (int, error) {
	rem := b.limit - b.got
	if rem <= 0 {
		if b.cut {
			return 0, &CutError{After: b.got}
		}
		return 0, io.EOF
	}
	if int64(len(p)) > rem {
		p = p[:rem]
	}
	n, err := b.inner.Read(p)
	b.got += int64(n)
	if err == nil && b.got >= b.limit && b.cut {
		// Deliver the final bytes with the cut, like a reset that raced
		// the last ack.
		return n, &CutError{After: b.got}
	}
	return n, err
}

func (b *faultBody) Close() error { return b.inner.Close() }

// throttleResponse synthesizes a complete 429/503 response.
func throttleResponse(req *http.Request, code int, retryAfter time.Duration) *http.Response {
	body := fmt.Sprintf("faultinject: throttled (%d)\n", code)
	header := http.Header{}
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		header.Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        header,
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
