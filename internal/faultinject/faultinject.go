// Package faultinject deterministically damages trace streams so tests can
// prove every recovery path in the pipeline. All mutators are seeded: the
// same seed over the same input produces the same faults, which keeps
// failing tests reproducible from their log line alone.
//
// Two layers are covered:
//
//   - Byte-level corruption of encoded traces (bit flips, truncation, chunk
//     duplication, targeted chunk damage), applied to a []byte or through a
//     CorruptReader io.Reader wrapper. These exercise trace.Reader's CRC
//     verification, fail-fast errors, and degraded-mode resync.
//   - Event-level faults in flight (drops, duplicated deliveries, field
//     mangling) via a trace.Sink wrapper. These exercise the analyzer's
//     event validation.
package faultinject

import (
	"fmt"
	"io"
	"math/rand"

	"paragraph/internal/trace"
)

// FlipBits returns a copy of data with n pseudo-random single-bit flips,
// positioned deterministically by seed. Positions at or after skip bytes are
// chosen, so a file header can be kept intact.
func FlipBits(data []byte, n int, seed int64, skip int) []byte {
	out := append([]byte(nil), data...)
	if len(out) <= skip {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		pos := skip + rng.Intn(len(out)-skip)
		out[pos] ^= 1 << uint(rng.Intn(8))
	}
	return out
}

// Truncate returns the first len(data)-n bytes of data (a torn tail, as left
// by a crash or a full disk). It returns an empty slice when n exceeds the
// input.
func Truncate(data []byte, n int) []byte {
	if n >= len(data) {
		return []byte{}
	}
	return append([]byte(nil), data[:len(data)-n]...)
}

// CorruptChunk flips one bit in the payload of v2-trace chunk index i,
// deterministically by seed. The chunk header (and thus the resync marker)
// is left intact, so the CRC check is what must catch the damage.
func CorruptChunk(data []byte, i int, seed int64) ([]byte, error) {
	chunks, err := trace.ScanChunks(data)
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= len(chunks) {
		return nil, fmt.Errorf("faultinject: chunk %d out of range (trace has %d)", i, len(chunks))
	}
	c := chunks[i]
	if c.Payload == 0 {
		return nil, fmt.Errorf("faultinject: chunk %d has an empty payload", i)
	}
	out := append([]byte(nil), data...)
	rng := rand.New(rand.NewSource(seed))
	pos := int(c.Offset) + chunkHdrLen + rng.Intn(c.Payload)
	out[pos] ^= 1 << uint(rng.Intn(8))
	return out, nil
}

// chunkHdrLen mirrors the v2 framed header size; trace.ScanChunks reports
// payload offsets relative to it.
const chunkHdrLen = 20

// DuplicateChunk returns the trace with chunk index i appended again
// immediately after itself, simulating a replayed write. A v2 reader must
// drop the replay by sequence number.
func DuplicateChunk(data []byte, i int) ([]byte, error) {
	chunks, err := trace.ScanChunks(data)
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= len(chunks) {
		return nil, fmt.Errorf("faultinject: chunk %d out of range (trace has %d)", i, len(chunks))
	}
	c := chunks[i]
	end := int(c.Offset) + chunkHdrLen + c.Payload
	out := make([]byte, 0, len(data)+chunkHdrLen+c.Payload)
	out = append(out, data[:end]...)
	out = append(out, data[c.Offset:end]...)
	out = append(out, data[end:]...)
	return out, nil
}

// CorruptReader wraps an io.Reader and flips pseudo-random bits in the bytes
// flowing through it. Rate is the expected number of bytes between flips
// (e.g. 4096 flips roughly one bit per 4 KiB); Skip protects the first Skip
// bytes so the stream's header survives.
type CorruptReader struct {
	R    io.Reader
	Rate int
	Skip int

	rng  *rand.Rand
	seed int64
	off  int
	next int
}

// NewCorruptReader builds a CorruptReader with the given seed.
func NewCorruptReader(r io.Reader, rate int, skip int, seed int64) *CorruptReader {
	if rate <= 0 {
		rate = 4096
	}
	c := &CorruptReader{R: r, Rate: rate, Skip: skip, seed: seed}
	c.rng = rand.New(rand.NewSource(seed))
	c.next = skip + 1 + c.rng.Intn(rate)
	return c
}

// Read implements io.Reader.
func (c *CorruptReader) Read(p []byte) (int, error) {
	n, err := c.R.Read(p)
	for i := 0; i < n; i++ {
		if c.off+i >= c.next {
			p[i] ^= 1 << uint(c.rng.Intn(8))
			c.next = c.off + i + 1 + c.rng.Intn(c.Rate)
		}
	}
	c.off += n
	return n, err
}

// TransientError is the retryable failure injected by TransientReader. It
// advertises itself via the net-package convention Temporary() == true, which
// is what trace.RetryReader's default classifier looks for.
type TransientError struct {
	// Offset is the stream position at which the fault fired.
	Offset int64
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("faultinject: transient I/O error at offset %d", e.Offset)
}

// Temporary marks the error retryable.
func (e *TransientError) Temporary() bool { return true }

// TransientReader wraps an io.Reader and injects transient errors: at
// seeded pseudo-random stream positions, Read returns (0, *TransientError)
// Failures consecutive times before the read is allowed through, consuming
// no data. A retrying consumer therefore recovers the byte stream exactly;
// a non-retrying consumer sees the error. Rate is the expected number of
// bytes between fault sites (0 selects 4096).
type TransientReader struct {
	R        io.Reader
	Rate     int
	Failures int

	// Injected counts transient errors returned so far.
	Injected int

	rng     *rand.Rand
	off     int64
	next    int64
	pending int
}

// NewTransientReader builds a TransientReader with the given seed.
// failures <= 0 selects 1 failure per fault site.
func NewTransientReader(r io.Reader, rate, failures int, seed int64) *TransientReader {
	if rate <= 0 {
		rate = 4096
	}
	if failures <= 0 {
		failures = 1
	}
	t := &TransientReader{R: r, Rate: rate, Failures: failures}
	t.rng = rand.New(rand.NewSource(seed))
	t.next = 1 + int64(t.rng.Intn(rate))
	return t
}

// Read implements io.Reader.
func (t *TransientReader) Read(p []byte) (int, error) {
	if t.pending == 0 && t.off >= t.next {
		t.pending = t.Failures
		t.next = t.off + 1 + int64(t.rng.Intn(t.Rate))
	}
	if t.pending > 0 {
		t.pending--
		t.Injected++
		return 0, &TransientError{Offset: t.off}
	}
	n, err := t.R.Read(p)
	t.off += int64(n)
	return n, err
}

// SinkOptions configures a fault-injecting Sink wrapper. Probabilities are
// per event and evaluated in the order drop, duplicate, mangle.
type SinkOptions struct {
	Seed      int64
	DropP     float64 // probability an event is silently dropped
	DupP      float64 // probability an event is delivered twice
	MangleP   float64 // probability an event is damaged before delivery
	MaxFaults int     // stop injecting after this many faults; 0 = unlimited
}

// Sink wraps dst so that events flowing through are dropped, duplicated, or
// mangled with the configured seeded probabilities. Mangling picks one of:
// clearing a memory op's size, clearing its segment, moving a stack address
// below the stack floor, or corrupting the opcode — each a fault the
// analyzer's validation must reject.
type Sink struct {
	dst    trace.Sink
	opts   SinkOptions
	rng    *rand.Rand
	faults int

	// Dropped, Duplicated, Mangled count the faults injected so far.
	Dropped    int
	Duplicated int
	Mangled    int
}

// NewSink wraps dst with fault injection.
func NewSink(dst trace.Sink, opts SinkOptions) *Sink {
	return &Sink{dst: dst, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Event implements trace.Sink.
func (s *Sink) Event(e *trace.Event) error {
	if s.opts.MaxFaults > 0 && s.faults >= s.opts.MaxFaults {
		return s.dst.Event(e)
	}
	switch p := s.rng.Float64(); {
	case p < s.opts.DropP:
		s.Dropped++
		s.faults++
		return nil
	case p < s.opts.DropP+s.opts.DupP:
		s.Duplicated++
		s.faults++
		if err := s.dst.Event(e); err != nil {
			return err
		}
		return s.dst.Event(e)
	case p < s.opts.DropP+s.opts.DupP+s.opts.MangleP:
		s.Mangled++
		s.faults++
		bad := *e
		mangle(&bad, s.rng)
		return s.dst.Event(&bad)
	}
	return s.dst.Event(e)
}

// mangle damages one field of the event.
func mangle(e *trace.Event, rng *rand.Rand) {
	switch rng.Intn(4) {
	case 0: // memory op with no size
		if e.MemSize > 0 {
			e.MemSize = 0
			return
		}
		fallthrough
	case 1: // memory op with no segment
		if e.MemSize > 0 {
			e.Seg = trace.SegNone
			return
		}
		fallthrough
	case 2: // stack-tagged access far below the stack region
		if e.MemSize > 0 {
			e.Seg = trace.SegStack
			e.MemAddr = 0x1000
			return
		}
		fallthrough
	default: // opcode outside the ISA
		e.Ins.Op = 0xFF
	}
}
