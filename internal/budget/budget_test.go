package budget

import (
	"errors"
	"testing"
)

func TestDisabledGovernorNeverIntervenes(t *testing.T) {
	g := New(0, FailFast)
	w, err := g.Govern(Usage{LiveWellBytes: 1 << 40}, 128)
	if err != nil || w != 128 {
		t.Fatalf("disabled governor intervened: window=%d err=%v", w, err)
	}
	if g.Stats().Checks != 0 {
		t.Fatalf("disabled governor recorded checks: %+v", g.Stats())
	}
	var nilGov *Governor
	if nilGov.Enabled() {
		t.Fatal("nil governor reports enabled")
	}
}

func TestFailFastReturnsStructuredError(t *testing.T) {
	g := New(1000, FailFast)
	if _, err := g.Govern(Usage{LiveWellBytes: 900}, 0); err != nil {
		t.Fatalf("under budget errored: %v", err)
	}
	_, err := g.Govern(Usage{LiveWellBytes: 1200, WindowBytes: 10}, 0)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *Error
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *budget.Error", err)
	}
	if be.Resource != LiveWell || be.UsageBytes != 1210 || be.LimitBytes != 1000 {
		t.Fatalf("bad structured error: %+v", be)
	}
	st := g.Stats()
	if st.Checks != 2 || st.PeakBytes != 1210 || st.PeakLiveWellBytes != 1200 {
		t.Fatalf("bad stats: %+v", st)
	}
}

func TestDominantResource(t *testing.T) {
	cases := []struct {
		u    Usage
		want Resource
	}{
		{Usage{LiveWellBytes: 100, WindowBytes: 1, BufferBytes: 1}, LiveWell},
		{Usage{LiveWellBytes: 1, WindowBytes: 100, BufferBytes: 1}, Window},
		{Usage{LiveWellBytes: 1, WindowBytes: 1, BufferBytes: 100}, EventBuffer},
		// No majority component: reported as total.
		{Usage{LiveWellBytes: 40, WindowBytes: 35, BufferBytes: 30}, Total},
	}
	for _, c := range cases {
		if got := c.u.dominant(); got != c.want {
			t.Errorf("dominant(%+v) = %s, want %s", c.u, got, c.want)
		}
	}
}

func TestDegradeTightensWindowAndRecords(t *testing.T) {
	g := New(100, Degrade)
	over := Usage{LiveWellBytes: 500}

	// Unlimited window: first degradation imposes the start window.
	w, err := g.Govern(over, 0)
	if err != nil {
		t.Fatalf("degrade errored: %v", err)
	}
	if w != DegradeStartWindow {
		t.Fatalf("first degradation window = %d, want %d", w, DegradeStartWindow)
	}
	// Still over: halves.
	w, _ = g.Govern(over, w)
	if w != DegradeStartWindow/2 {
		t.Fatalf("second degradation window = %d, want %d", w, DegradeStartWindow/2)
	}
	// Drive to the floor.
	for i := 0; i < 40; i++ {
		w, _ = g.Govern(over, w)
	}
	if w != MinWindow {
		t.Fatalf("window bottomed at %d, want %d", w, MinWindow)
	}
	st := g.Stats()
	if st.Degradations == 0 || st.EffectiveWindow != MinWindow {
		t.Fatalf("bad degrade stats: %+v", st)
	}
	// At the floor, further overages only warn.
	warnsBefore := st.Warnings
	if w2, _ := g.Govern(over, w); w2 != w {
		t.Fatalf("window tightened below floor: %d", w2)
	}
	if g.Stats().Warnings != warnsBefore+1 {
		t.Fatalf("floor overage not counted as warning: %+v", g.Stats())
	}
	if !g.Stats().Governed() {
		t.Fatal("Governed() = false after degradations")
	}
}

func TestDegradeUnderBudgetLeavesWindowAlone(t *testing.T) {
	g := New(1<<20, Degrade)
	if w, err := g.Govern(Usage{LiveWellBytes: 10}, 4096); err != nil || w != 4096 {
		t.Fatalf("under-budget degrade touched window: w=%d err=%v", w, err)
	}
	if g.Stats().Governed() {
		t.Fatal("Governed() = true with no interventions")
	}
}

func TestWarnOnlyCountsButNeverChanges(t *testing.T) {
	g := New(10, WarnOnly)
	for i := 0; i < 3; i++ {
		w, err := g.Govern(Usage{BufferBytes: 100}, 77)
		if err != nil || w != 77 {
			t.Fatalf("warn-only intervened: w=%d err=%v", w, err)
		}
	}
	if st := g.Stats(); st.Warnings != 3 || st.Degradations != 0 {
		t.Fatalf("bad warn stats: %+v", st)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{
		"fail": FailFast, "fail-fast": FailFast,
		"degrade": Degrade,
		"warn":    WarnOnly, "warn-only": WarnOnly,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePolicy("explode"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
	for _, p := range []Policy{FailFast, Degrade, WarnOnly} {
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round-trip of %v failed: %v, %v", p, back, err)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := New(10, WarnOnly)
	g.Govern(Usage{LiveWellBytes: 100}, 0)
	c := g.Clone()
	g.Govern(Usage{LiveWellBytes: 100}, 0)
	if c.Stats().Warnings != 1 || g.Stats().Warnings != 2 {
		t.Fatalf("clone shares stats: clone=%+v orig=%+v", c.Stats(), g.Stats())
	}
	if (*Governor)(nil).Clone() != nil {
		t.Fatal("nil clone not nil")
	}
}

func TestEngineDowngradeNote(t *testing.T) {
	g := New(10, Degrade)
	g.NoteEngineDowngrade()
	if st := g.Stats(); !st.EngineDowngraded || !st.Governed() {
		t.Fatalf("downgrade note lost: %+v", st)
	}
}

func TestParseBytes(t *testing.T) {
	good := map[string]int64{
		"0":    0, // explicit "no budget"
		"4096": 4096,
		"64k":  64 << 10,
		"64K":  64 << 10,
		"64M":  64 << 20,
		"2g":   2 << 30,
		"1G":   1 << 30,
	}
	for in, want := range good {
		got, err := ParseBytes(in)
		if err != nil || got != want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"", "lots", "-1", "-4K", "1.5G", "M", "64MB"} {
		if v, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) = %d, want error", in, v)
		}
	}
}
