package budget

import (
	"context"
	"sync"
)

// MinShare is the smallest per-workload budget share the Pool will hand
// out: below ~1 MB an analysis cannot hold even a degraded window plus a
// minimum-size ring, so the pool shrinks concurrency instead of slicing
// the budget thinner.
const MinShare int64 = 1 << 20

// Pool divides one global memory budget across concurrently running
// workloads. Admission control works on commitments, not measurements:
// each admitted workload is handed a byte share carved from the
// uncommitted remainder of the budget, and gives it back when it
// finishes. Shares therefore re-expand automatically as the run drains —
// the last workload standing inherits everything still uncommitted —
// while the sum of outstanding shares never exceeds the total.
//
// The pool prefers shrinking concurrency to shrinking shares: NewPool
// clamps the number of admission slots so every slot is worth at least
// MinShare, which is the "shrink effective Parallelism before degrading
// windows" policy — fewer workloads at full fidelity beat many workloads
// all forced through window degradation.
//
// A Pool is safe for concurrent use.
type Pool struct {
	total int64
	slots int
	sem   chan struct{}

	mu        sync.Mutex
	committed int64
	inUse     int
}

// NewPool returns a pool dividing total bytes across at most parallelism
// concurrent holders, clamped so each admission slot can be funded with at
// least MinShare. total must be positive; parallelism < 1 is treated as 1.
func NewPool(total int64, parallelism int) *Pool {
	if parallelism < 1 {
		parallelism = 1
	}
	slots := parallelism
	if max := total / MinShare; int64(slots) > max {
		slots = int(max)
	}
	if slots < 1 {
		slots = 1
	}
	return &Pool{total: total, slots: slots, sem: make(chan struct{}, slots)}
}

// Parallelism reports how many workloads the pool admits concurrently —
// the caller's effective parallelism bound, possibly smaller than the one
// it asked for.
func (p *Pool) Parallelism() int { return p.slots }

// Acquire blocks until an admission slot is free, then commits and returns
// this holder's byte share. remaining is how many workloads (including
// this one) still have to run; when it is smaller than the free slots, the
// uncommitted budget is split fewer ways — the tail re-expansion. The
// returned release must be called exactly once when the workload finishes;
// it is idempotent.
func (p *Pool) Acquire(remaining int) (share int64, release func()) {
	p.sem <- struct{}{}
	p.mu.Lock()
	p.inUse++
	// Split the uncommitted remainder across whichever is scarcer: free
	// slots (counting ours) or workloads left to run. Induction keeps the
	// division exact — committed shares return to the pool on release, so
	// the remainder is never negative and every slot stays ≥ MinShare.
	ways := p.slots - p.inUse + 1
	if remaining < ways {
		ways = remaining
	}
	if ways < 1 {
		ways = 1
	}
	share = (p.total - p.committed) / int64(ways)
	if share < MinShare {
		share = MinShare
	}
	p.committed += share
	p.mu.Unlock()
	var once sync.Once
	return share, func() {
		once.Do(func() {
			p.mu.Lock()
			p.committed -= share
			p.inUse--
			p.mu.Unlock()
			<-p.sem
		})
	}
}

// shareKey carries a Pool share through a context.
type shareKey struct{}

// WithShare returns a context carrying a per-workload budget share.
// Carrying the share in the context (rather than a parameter) lets an
// experiment driver hand each workload its slice without changing every
// analysis signature between them.
func WithShare(ctx context.Context, share int64) context.Context {
	return context.WithValue(ctx, shareKey{}, share)
}

// ShareFromContext returns the share installed by WithShare, if any.
func ShareFromContext(ctx context.Context) (int64, bool) {
	share, ok := ctx.Value(shareKey{}).(int64)
	return share, ok
}
