// Package budget implements the resource governor of the analysis stack:
// always-on, amortized metering of the analyzer's dominant working sets —
// the live well, the sliding-window state, and recorded trace.EventBuffer
// bytes — against a configurable memory budget.
//
// The paper's live well was the reproduction target's dominant memory
// consumer (~32 MB for 100M-instruction SPEC'89 traces); at larger scales an
// unbounded live well is how an analysis OOMs instead of failing cleanly.
// The Governor gives every long-running analysis one of three behaviours at
// the budget boundary:
//
//   - FailFast: the analysis stops with a structured *Error identifying
//     which resource overflowed, its usage, and the limit.
//   - Degrade: the analysis continues with a tighter effective instruction
//     window (bounding window state and firewalling older levels), and the
//     downgrade is recorded in GovernorStats — the ReadStats pattern of the
//     degraded trace reader, applied to memory.
//   - WarnOnly: the overage is only counted; nothing changes.
//
// A Governor is cheap by construction: callers consult it every N events
// (budget.CheckEvery by convention), never per event, so the hot loop pays
// one integer comparison per event in the common case. A Governor is not
// safe for concurrent use; give each analyzer its own (Clone).
package budget

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrBudgetExceeded is the sentinel wrapped by every budget failure, so
// callers can classify with errors.Is regardless of which resource overflowed.
var ErrBudgetExceeded = errors.New("budget: memory budget exceeded")

// Policy selects what happens when usage crosses the budget.
type Policy uint8

const (
	// FailFast aborts the analysis with a structured *Error. The default:
	// over budget is an error unless the caller opted into degradation.
	FailFast Policy = iota
	// Degrade tightens the effective instruction window instead of
	// failing, trading analysis fidelity for bounded memory; every
	// downgrade is recorded in GovernorStats.
	Degrade
	// WarnOnly counts overages in GovernorStats but never intervenes.
	WarnOnly
)

func (p Policy) String() string {
	switch p {
	case FailFast:
		return "fail"
	case Degrade:
		return "degrade"
	case WarnOnly:
		return "warn"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy maps the CLI spellings to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fail", "fail-fast", "failfast":
		return FailFast, nil
	case "degrade":
		return Degrade, nil
	case "warn", "warn-only", "warnonly":
		return WarnOnly, nil
	}
	return FailFast, fmt.Errorf("budget: unknown policy %q (want fail, degrade or warn)", s)
}

// ParseBytes parses a CLI byte-size spelling with an optional K/M/G suffix
// (powers of 1024): "64M", "1G", "4096". "0" is valid and means unlimited
// (no budget), matching New's treatment of a non-positive limit.
func ParseBytes(s string) (int64, error) {
	mult := int64(1)
	digits := s
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'k', 'K':
			mult, digits = 1<<10, s[:n-1]
		case 'm', 'M':
			mult, digits = 1<<20, s[:n-1]
		case 'g', 'G':
			mult, digits = 1<<30, s[:n-1]
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(digits), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("budget: bad size %q (want e.g. 64M, 1G)", s)
	}
	return v * mult, nil
}

// Resource names one metered working set in a budget failure.
type Resource string

const (
	// LiveWell is the analyzer's hash table of live values.
	LiveWell Resource = "live-well"
	// Window is the sliding-instruction-window state (plus the
	// functional-unit schedule, which scales the same way).
	Window Resource = "window"
	// EventBuffer is a recorded trace buffer feeding the fan-out engine.
	EventBuffer Resource = "event-buffer"
	// Total is the sum of every metered resource; reported when the
	// overage has no single dominant resource.
	Total Resource = "total"
)

// Error is a structured budget failure: which resource dominated the
// overage, the usage observed, and the configured limit. It wraps
// ErrBudgetExceeded for errors.Is classification.
type Error struct {
	Resource   Resource
	UsageBytes int64
	LimitBytes int64
}

func (e *Error) Error() string {
	return fmt.Sprintf("budget: %s usage %d bytes exceeds budget of %d bytes",
		e.Resource, e.UsageBytes, e.LimitBytes)
}

// Unwrap lets errors.Is(err, ErrBudgetExceeded) classify any budget failure.
func (e *Error) Unwrap() error { return ErrBudgetExceeded }

// Usage is one observation of the metered working sets, in bytes. Estimates
// are fine: the point is an order-of-magnitude guard rail, not an allocator.
type Usage struct {
	LiveWellBytes int64
	WindowBytes   int64
	BufferBytes   int64
}

// Total sums the metered resources.
func (u Usage) Total() int64 { return u.LiveWellBytes + u.WindowBytes + u.BufferBytes }

// dominant names the largest component of the observation, or Total when no
// single component accounts for the majority of usage.
func (u Usage) dominant() Resource {
	max, res := u.LiveWellBytes, LiveWell
	if u.WindowBytes > max {
		max, res = u.WindowBytes, Window
	}
	if u.BufferBytes > max {
		max, res = u.BufferBytes, EventBuffer
	}
	if max*2 < u.Total() {
		return Total
	}
	return res
}

// GovernorStats is the governor's ReadStats-style accounting: what was
// observed, what was exceeded, and what the governor did about it.
type GovernorStats struct {
	// Checks counts Govern calls (one per CheckEvery events in the
	// analyzer loop).
	Checks uint64
	// PeakBytes is the largest total usage observed.
	PeakBytes int64
	// PeakLiveWellBytes is the largest live-well usage observed.
	PeakLiveWellBytes int64
	// Warnings counts over-budget observations under WarnOnly (and
	// over-budget observations under Degrade once the window cannot be
	// tightened further).
	Warnings uint64
	// Degradations counts window tightenings performed under Degrade.
	Degradations uint64
	// EffectiveWindow is the instruction window after the last
	// degradation; 0 while the window has never been tightened.
	EffectiveWindow int
	// EngineDowngraded records that a buffered (fan-out) engine fell back
	// to the streaming engine because recording the trace would have
	// exceeded the budget.
	EngineDowngraded bool
}

// Governed reports whether the governor ever intervened or warned — i.e.
// whether the analysis results may differ from an ungoverned run.
func (s GovernorStats) Governed() bool {
	return s.Warnings > 0 || s.Degradations > 0 || s.EngineDowngraded
}

// Default degrade-mode window parameters: the first degradation of an
// unlimited window starts here, each further degradation halves, and the
// window never tightens below the floor (at which point Degrade behaves
// like WarnOnly, with the overage counted).
const (
	// DegradeStartWindow is the effective window imposed by the first
	// degradation of an unlimited (whole-trace) window.
	DegradeStartWindow = 1 << 16
	// MinWindow is the tightest window degradation will impose.
	MinWindow = 64
)

// CheckEvery is the conventional metering period: callers consult the
// governor once per this many events, so governance adds no per-event cost.
const CheckEvery = 1024

// Measured per-entry working-set costs in bytes for the analyzer's metered
// structures. LiveWellEntryBytes is calibrated against runtime.MemStats by
// BenchmarkLiveWellCalibration in internal/core (heap growth divided by
// live entries for the open-addressed live-well table, which stores a
// 4-byte key, a 24-byte record and an occupancy byte per slot and runs
// between 3/8 and 3/4 load): measured 38.7 B/entry at maximum load and
// 77.3 B/entry just after a doubling; the constant is the expected cost at
// a random point of the growth cycle (29 B/slot / 0.375 * ln 2 ~= 54 B),
// rounded up. The window costs are exact: one uint64 and one int64 per
// in-window instruction, an int64 key plus an int per functional-unit
// schedule entry.
const (
	LiveWellEntryBytes = 56
	WindowEntryBytes   = 16
	FUEntryBytes       = 16
)

// Governor meters Usage observations against a byte budget under one of the
// three policies. The zero Governor is invalid; use New.
type Governor struct {
	limit  int64
	policy Policy
	stats  GovernorStats
}

// New returns a governor enforcing limitBytes under the given policy.
// limitBytes <= 0 disables metering entirely (Govern never intervenes and
// records nothing); callers may use Enabled to skip the call.
func New(limitBytes int64, policy Policy) *Governor {
	return &Governor{limit: limitBytes, policy: policy}
}

// Enabled reports whether the governor has a budget to enforce.
func (g *Governor) Enabled() bool { return g != nil && g.limit > 0 }

// Limit returns the configured budget in bytes.
func (g *Governor) Limit() int64 { return g.limit }

// Policy returns the configured policy.
func (g *Governor) Policy() Policy { return g.policy }

// Stats returns the accounting so far.
func (g *Governor) Stats() GovernorStats { return g.stats }

// NoteEngineDowngrade records a buffered→streaming engine fallback.
func (g *Governor) NoteEngineDowngrade() { g.stats.EngineDowngraded = true }

// Govern meters one observation. window is the caller's current effective
// instruction window (0 = unlimited); the returned window is what the caller
// should use from now on — unchanged except under Degrade while over budget.
// A non-nil error (FailFast policy) is a *Error wrapping ErrBudgetExceeded.
func (g *Governor) Govern(u Usage, window int) (int, error) {
	if !g.Enabled() {
		return window, nil
	}
	g.stats.Checks++
	total := u.Total()
	if total > g.stats.PeakBytes {
		g.stats.PeakBytes = total
	}
	if u.LiveWellBytes > g.stats.PeakLiveWellBytes {
		g.stats.PeakLiveWellBytes = u.LiveWellBytes
	}
	if total <= g.limit {
		return window, nil
	}
	switch g.policy {
	case FailFast:
		return window, &Error{Resource: u.dominant(), UsageBytes: total, LimitBytes: g.limit}
	case Degrade:
		next := tighten(window)
		if next == window {
			// Already at the floor: nothing left to trade away.
			g.stats.Warnings++
			return window, nil
		}
		g.stats.Degradations++
		g.stats.EffectiveWindow = next
		return next, nil
	default: // WarnOnly
		g.stats.Warnings++
		return window, nil
	}
}

// tighten computes the next, smaller effective window: unlimited windows
// start at DegradeStartWindow, finite ones halve, and MinWindow is the floor.
func tighten(window int) int {
	switch {
	case window == 0:
		return DegradeStartWindow
	case window <= MinWindow:
		return window
	}
	next := window / 2
	if next < MinWindow {
		next = MinWindow
	}
	return next
}

// Clone returns an independent governor with the same limit and policy and a
// copy of the accounting so far; used when checkpointing an analysis.
func (g *Governor) Clone() *Governor {
	if g == nil {
		return nil
	}
	c := *g
	return &c
}

// RestoreStats overwrites the accounting; used when resuming an analysis
// from a persisted checkpoint.
func (g *Governor) RestoreStats(s GovernorStats) { g.stats = s }
