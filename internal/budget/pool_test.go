package budget

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestPoolClampsParallelism(t *testing.T) {
	cases := []struct {
		total int64
		ask   int
		want  int
	}{
		{total: 8 * MinShare, ask: 4, want: 4},   // budget funds every slot
		{total: 2 * MinShare, ask: 8, want: 2},   // budget funds only 2
		{total: MinShare / 2, ask: 4, want: 1},   // tiny budget: never below 1
		{total: 100 * MinShare, ask: 0, want: 1}, // parallelism < 1 treated as 1
	}
	for _, c := range cases {
		if got := NewPool(c.total, c.ask).Parallelism(); got != c.want {
			t.Errorf("NewPool(%d, %d).Parallelism() = %d, want %d", c.total, c.ask, got, c.want)
		}
	}
}

// TestPoolExactDivision: with as many workloads as slots, every concurrent
// holder gets an equal cut and the committed total never exceeds the pool.
func TestPoolExactDivision(t *testing.T) {
	const total = 8 * MinShare
	p := NewPool(total, 4)
	var shares []int64
	var releases []func()
	for i := 0; i < 4; i++ {
		s, rel := p.Acquire(8 - i) // more workloads remain than slots
		shares = append(shares, s)
		releases = append(releases, rel)
	}
	var sum int64
	for _, s := range shares {
		if s < MinShare {
			t.Errorf("share %d below MinShare", s)
		}
		sum += s
	}
	if sum > total {
		t.Errorf("outstanding shares %d exceed the pool total %d", sum, total)
	}
	// 8*MinShare over 4 ways, then 6/3, 4/2, 2/1: every holder gets 2*MinShare.
	for i, s := range shares {
		if s != 2*MinShare {
			t.Errorf("holder %d share = %d, want %d", i, s, 2*MinShare)
		}
	}
	for _, rel := range releases {
		rel()
	}
}

// TestPoolTailReExpansion: as workloads finish and fewer remain than free
// slots, the survivors' shares grow — the last workload inherits the whole
// budget.
func TestPoolTailReExpansion(t *testing.T) {
	const total = 8 * MinShare
	p := NewPool(total, 4)
	s1, rel1 := p.Acquire(2) // 2 workloads left, 4 slots: split 2 ways
	if s1 != total/2 {
		t.Errorf("first-of-two share = %d, want %d", s1, total/2)
	}
	rel1()
	s2, rel2 := p.Acquire(1) // last one standing: everything
	if s2 != total {
		t.Errorf("last share = %d, want the full pool %d", s2, total)
	}
	rel2()
}

// TestPoolReleaseIdempotent: calling release twice must not double-credit
// the budget or free a second admission slot.
func TestPoolReleaseIdempotent(t *testing.T) {
	p := NewPool(4*MinShare, 2)
	_, rel := p.Acquire(3)
	rel()
	rel()
	p.mu.Lock()
	committed, inUse := p.committed, p.inUse
	p.mu.Unlock()
	if committed != 0 || inUse != 0 {
		t.Errorf("after double release: committed=%d inUse=%d, want 0/0", committed, inUse)
	}
	if got := len(p.sem); got != 0 {
		t.Errorf("after double release: %d slots held, want 0", got)
	}
}

// TestPoolBlocksAtCapacity: a full pool parks the next Acquire until a
// holder releases.
func TestPoolBlocksAtCapacity(t *testing.T) {
	p := NewPool(2*MinShare, 2)
	_, rel1 := p.Acquire(3)
	_, rel2 := p.Acquire(3)
	acquired := make(chan int64, 1)
	go func() {
		s, rel := p.Acquire(1)
		rel()
		acquired <- s
	}()
	select {
	case <-acquired:
		t.Fatal("third Acquire did not block on a full pool")
	case <-time.After(20 * time.Millisecond):
	}
	rel1()
	select {
	case s := <-acquired:
		// Only one other holder left: half the pool minimum, MinShare floor.
		if s < MinShare {
			t.Errorf("unblocked share = %d, below MinShare", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("release did not unblock the waiter")
	}
	rel2()
}

// TestPoolConcurrentInvariant hammers the pool from many goroutines and
// checks the standing invariant: every share ≥ MinShare and outstanding
// commitments never exceed the total. Run under -race this is also the
// pool's data-race audit.
func TestPoolConcurrentInvariant(t *testing.T) {
	const total = 8 * MinShare
	const workloads = 64
	p := NewPool(total, 4)
	var mu sync.Mutex
	var outstanding int64
	var wg sync.WaitGroup
	var remaining = int64(workloads)
	for i := 0; i < workloads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			rem := int(remaining)
			mu.Unlock()
			share, release := p.Acquire(rem)
			mu.Lock()
			outstanding += share
			if share < MinShare {
				t.Errorf("share %d below MinShare", share)
			}
			if outstanding > total {
				t.Errorf("outstanding %d exceeds total %d", outstanding, total)
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			outstanding -= share
			remaining--
			mu.Unlock()
			release()
		}()
	}
	wg.Wait()
}

func TestShareContextRoundTrip(t *testing.T) {
	if _, ok := ShareFromContext(context.Background()); ok {
		t.Error("empty context reported a share")
	}
	ctx := WithShare(context.Background(), 42*MinShare)
	share, ok := ShareFromContext(ctx)
	if !ok || share != 42*MinShare {
		t.Errorf("ShareFromContext = %d, %v; want %d, true", share, ok, 42*MinShare)
	}
}
