// Package asm implements a two-pass assembler for the ISA of package isa,
// producing loadable program images for the CPU simulator.
//
// The accepted syntax is the conventional MIPS assembly subset that the
// MiniC compiler emits and that hand-written workloads use:
//
//	        .data
//	msg:    .asciiz "hello"
//	vec:    .space 400
//	pi:     .double 3.14159
//	n:      .word 100
//	        .text
//	main:   li   $t0, 25          # pseudo: load immediate
//	        la   $t1, vec         # pseudo: load address
//	loop:   lw   $t2, 0($t1)
//	        addiu $t1, $t1, 4
//	        addiu $t0, $t0, -1
//	        bgtz $t0, loop
//	        jr   $ra
//
// Comments run from '#' to end of line. Registers are written with their
// conventional names ($t0, $sp, $f2, …) or numerically ($8). Supported
// pseudo-instructions: li, la, li.d, move, mov.d (alias of the real op), b,
// mul, rem, neg, not, blt, bgt, ble, bge, and the canonical nop.
package asm

import "fmt"

// Memory-layout constants of the loaded image. The values mirror the classic
// MIPS/DECstation layout the paper's traces came from: text at 4 MB, static
// data at 256 MB, the heap immediately above the data, and the stack growing
// down from just below 2 GB.
const (
	TextBase  uint32 = 0x00400000
	DataBase  uint32 = 0x10000000
	StackBase uint32 = 0x7fffeffc
)

// Program is an assembled, loadable memory image.
type Program struct {
	// Text holds the instruction words; the instruction at index i lives
	// at address TextBase + 4*i.
	Text []uint32
	// Data holds the initial contents of the static data segment,
	// starting at DataBase.
	Data []byte
	// Entry is the address execution starts at: the "main" label if the
	// source defines one, otherwise TextBase.
	Entry uint32
	// Symbols maps every label to its address.
	Symbols map[string]uint32
	// Source optionally records, for each text word, the 1-based source
	// line it came from (for diagnostics and disassembly listings).
	Source []int
}

// TextEnd returns the first address past the text segment.
func (p *Program) TextEnd() uint32 { return TextBase + uint32(4*len(p.Text)) }

// DataEnd returns the first address past the initialized data segment; the
// simulated heap begins here.
func (p *Program) DataEnd() uint32 { return DataBase + uint32(len(p.Data)) }

// Symbol returns the address of a label.
func (p *Program) Symbol(name string) (uint32, error) {
	addr, ok := p.Symbols[name]
	if !ok {
		return 0, fmt.Errorf("asm: undefined symbol %q", name)
	}
	return addr, nil
}
