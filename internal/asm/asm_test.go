package asm

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"paragraph/internal/isa"
)

// mustAssemble assembles src or fails the test.
func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

// decodeAll decodes the text segment.
func decodeAll(t *testing.T, p *Program) []isa.Instruction {
	t.Helper()
	out := make([]isa.Instruction, len(p.Text))
	for i, w := range p.Text {
		ins, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("decode word %d (%#x): %v", i, w, err)
		}
		out[i] = ins
	}
	return out
}

func TestBasicProgram(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   add  $t0, $t1, $t2
        addi $t3, $t0, -5
        lw   $t4, 8($sp)
        sw   $t4, -4($fp)
        jr   $ra
`)
	ins := decodeAll(t, p)
	want := []isa.Instruction{
		{Op: isa.ADD, Rd: isa.T0, Rs: isa.T1, Rt: isa.T2},
		{Op: isa.ADDI, Rt: isa.T3, Rs: isa.T0, Imm: -5},
		{Op: isa.LW, Rt: isa.T4, Rs: isa.SP, Imm: 8},
		{Op: isa.SW, Rt: isa.T4, Rs: isa.FP, Imm: -4},
		{Op: isa.JR, Rs: isa.RA},
	}
	if len(ins) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(ins), len(want))
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("instr %d: got %+v, want %+v", i, ins[i], want[i])
		}
	}
	if p.Entry != TextBase {
		t.Errorf("entry = %#x, want %#x", p.Entry, TextBase)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   li   $t0, 3
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        beq  $zero, $zero, done
        nop
done:   jr   $ra
`)
	ins := decodeAll(t, p)
	// li 3 -> addiu (1 instr). Layout:
	// 0: addiu t0,zero,3
	// 1: addi t0,t0,-1   <- loop
	// 2: bgtz t0, loop   -> offset = (1 - 3) = -2
	// 3: beq zero,zero,done -> offset = (5 - 4) = 1
	// 4: nop
	// 5: jr ra           <- done
	if ins[2].Op != isa.BGTZ || ins[2].Imm != -2 {
		t.Errorf("bgtz = %+v, want Imm -2", ins[2])
	}
	if ins[3].Op != isa.BEQ || ins[3].Imm != 1 {
		t.Errorf("beq = %+v, want Imm 1", ins[3])
	}
	if got := p.Symbols["loop"]; got != TextBase+4 {
		t.Errorf("loop = %#x, want %#x", got, TextBase+4)
	}
}

func TestJumpTarget(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   j    func
        nop
func:   jal  main
        jr   $ra
`)
	ins := decodeAll(t, p)
	if ins[0].Op != isa.J || ins[0].Target != (TextBase+8)>>2 {
		t.Errorf("j = %+v, want target %#x", ins[0], (TextBase+8)>>2)
	}
	if ins[2].Op != isa.JAL || ins[2].Target != TextBase>>2 {
		t.Errorf("jal = %+v, want target %#x", ins[2], TextBase>>2)
	}
}

func TestLoadImmediateForms(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   li $t0, 7
        li $t1, -7
        li $t2, 40000
        li $t3, 0x12345678
        li $t4, 0x10000
`)
	ins := decodeAll(t, p)
	want := []isa.Instruction{
		{Op: isa.ADDIU, Rt: isa.T0, Rs: isa.Zero, Imm: 7},
		{Op: isa.ADDIU, Rt: isa.T1, Rs: isa.Zero, Imm: -7},
		{Op: isa.ORI, Rt: isa.T2, Rs: isa.Zero, Imm: int32(int16(-25536))}, // 40000 as uint16
		{Op: isa.LUI, Rt: isa.T3, Imm: 0x1234},
		{Op: isa.ORI, Rt: isa.T3, Rs: isa.T3, Imm: 0x5678},
		{Op: isa.LUI, Rt: isa.T4, Imm: 1}, // low half zero: single lui
	}
	if len(ins) != len(want) {
		t.Fatalf("got %d instructions, want %d: %v", len(ins), len(want), ins)
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("instr %d: got %+v, want %+v", i, ins[i], want[i])
		}
	}
}

func TestLoadAddress(t *testing.T) {
	p := mustAssemble(t, `
        .data
buf:    .space 16
v:      .word 42
        .text
main:   la $t0, v
        lw $t1, v
        sw $t1, buf+4
`)
	ins := decodeAll(t, p)
	vAddr := p.Symbols["v"]
	if vAddr != DataBase+16 {
		t.Fatalf("v = %#x, want %#x", vAddr, DataBase+16)
	}
	// la: lui+addiu reconstructs the address.
	if ins[0].Op != isa.LUI || ins[1].Op != isa.ADDIU {
		t.Fatalf("la expanded to %v, %v", ins[0].Op, ins[1].Op)
	}
	hi := uint32(uint16(ins[0].Imm)) << 16
	recon := hi + uint32(ins[1].Imm) // addiu sign-extends
	if recon != vAddr {
		t.Errorf("la reconstructs %#x, want %#x", recon, vAddr)
	}
	// lw via symbol: lui $at; lw $t1, lo($at).
	if ins[2].Op != isa.LUI || ins[2].Rt != isa.AT {
		t.Errorf("symbolic lw missing lui $at: %+v", ins[2])
	}
	if ins[3].Op != isa.LW || ins[3].Rs != isa.AT {
		t.Errorf("symbolic lw = %+v", ins[3])
	}
	reconLW := uint32(uint16(ins[2].Imm))<<16 + uint32(ins[3].Imm)
	if reconLW != vAddr {
		t.Errorf("lw address %#x, want %#x", reconLW, vAddr)
	}
	// sw buf+4.
	reconSW := uint32(uint16(ins[4].Imm))<<16 + uint32(ins[5].Imm)
	if want := p.Symbols["buf"] + 4; reconSW != want {
		t.Errorf("sw address %#x, want %#x", reconSW, want)
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAssemble(t, `
        .data
a:      .byte 1, 2, 255
b:      .half 258
c:      .word 0x01020304, -1
s:      .asciiz "hi\n"
d:      .align 3
        .double 1.5
e:      .space 3
t:      .word main
        .text
main:   nop
`)
	if p.Symbols["a"] != DataBase {
		t.Errorf("a at %#x", p.Symbols["a"])
	}
	if got := p.Data[0:3]; got[0] != 1 || got[1] != 2 || got[2] != 255 {
		t.Errorf(".byte wrote %v", got)
	}
	bOff := p.Symbols["b"] - DataBase
	if binary.LittleEndian.Uint16(p.Data[bOff:]) != 258 {
		t.Errorf(".half wrote %v", p.Data[bOff:bOff+2])
	}
	cOff := p.Symbols["c"] - DataBase
	if binary.LittleEndian.Uint32(p.Data[cOff:]) != 0x01020304 {
		t.Errorf(".word[0] wrong")
	}
	if binary.LittleEndian.Uint32(p.Data[cOff+4:]) != math.MaxUint32 {
		t.Errorf(".word[1] wrong")
	}
	sOff := p.Symbols["s"] - DataBase
	if string(p.Data[sOff:sOff+4]) != "hi\n\x00" {
		t.Errorf(".asciiz wrote %q", p.Data[sOff:sOff+4])
	}
	dOff := p.Symbols["d"] - DataBase
	if dOff%8 != 0 {
		t.Errorf(".align 3 left offset %d", dOff)
	}
	if f := math.Float64frombits(binary.LittleEndian.Uint64(p.Data[dOff:])); f != 1.5 {
		t.Errorf(".double wrote %v", f)
	}
	tOff := p.Symbols["t"] - DataBase
	if binary.LittleEndian.Uint32(p.Data[tOff:]) != p.Entry {
		t.Errorf(".word main = %#x, want %#x", binary.LittleEndian.Uint32(p.Data[tOff:]), p.Entry)
	}
}

func TestPseudoOps(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   move $t0, $t1
        b    next
next:   mul  $t2, $t3, $t4
        rem  $t5, $t6, $t7
        neg  $s0, $s1
        not  $s2, $s3
        blt  $t0, $t1, next
        bge  $t0, $t1, next
        bgt  $t0, $t1, next
        ble  $t0, $t1, next
`)
	ins := decodeAll(t, p)
	if ins[0].Op != isa.ADDU || ins[0].Rt != isa.Zero {
		t.Errorf("move = %+v", ins[0])
	}
	if ins[1].Op != isa.BEQ || ins[1].Rs != isa.Zero || ins[1].Imm != 0 {
		t.Errorf("b = %+v", ins[1])
	}
	if ins[2].Op != isa.MULT || ins[3].Op != isa.MFLO || ins[3].Rd != isa.T2 {
		t.Errorf("mul = %v, %v", ins[2], ins[3])
	}
	if ins[4].Op != isa.DIV || ins[5].Op != isa.MFHI || ins[5].Rd != isa.T5 {
		t.Errorf("rem = %v, %v", ins[4], ins[5])
	}
	if ins[6].Op != isa.SUB || ins[6].Rs != isa.Zero || ins[6].Rt != isa.S1 {
		t.Errorf("neg = %+v", ins[6])
	}
	if ins[7].Op != isa.NOR || ins[7].Rt != isa.Zero {
		t.Errorf("not = %+v", ins[7])
	}
	// blt: slt $at, t0, t1; bne $at, zero
	if ins[8].Op != isa.SLT || ins[8].Rd != isa.AT || ins[9].Op != isa.BNE {
		t.Errorf("blt = %v, %v", ins[8], ins[9])
	}
	// bgt: operands swapped
	if ins[12].Op != isa.SLT || ins[12].Rs != isa.T1 || ins[12].Rt != isa.T0 || ins[13].Op != isa.BNE {
		t.Errorf("bgt = %+v, %+v", ins[12], ins[13])
	}
}

func TestFloatingPoint(t *testing.T) {
	p := mustAssemble(t, `
        .data
x:      .double 2.5
        .text
main:   ldc1  $f0, x
        li.d  $f2, 0.5
        add.d $f4, $f0, $f2
        mul.d $f6, $f4, $f4
        c.lt.d $f6, $f0
        bc1t  main
        mov.d $f8, $f6
        cvt.w.d $f10, $f8
        mfc1  $t0, $f10
        mtc1  $t1, $f12
        cvt.d.w $f12, $f12
        sdc1  $f6, x
`)
	ins := decodeAll(t, p)
	// ldc1 via symbol expands to lui+ldc1.
	if ins[0].Op != isa.LUI || ins[1].Op != isa.LDC1 || ins[1].Rt != isa.FPReg(0) {
		t.Fatalf("ldc1 expansion: %v %v", ins[0], ins[1])
	}
	// li.d expands to lui $at + ldc1 from literal pool.
	if ins[2].Op != isa.LUI || ins[3].Op != isa.LDC1 || ins[3].Rt != isa.FPReg(2) {
		t.Fatalf("li.d expansion: %v %v", ins[2], ins[3])
	}
	litAddr := uint32(uint16(ins[2].Imm))<<16 + uint32(ins[3].Imm)
	off := litAddr - DataBase
	if f := math.Float64frombits(binary.LittleEndian.Uint64(p.Data[off:])); f != 0.5 {
		t.Errorf("literal pool holds %v, want 0.5", f)
	}
	if ins[4] != (isa.Instruction{Op: isa.ADDD, Rd: isa.FPReg(4), Rs: isa.FPReg(0), Rt: isa.FPReg(2)}) {
		t.Errorf("add.d = %+v", ins[4])
	}
	if ins[6].Op != isa.CLTD || ins[7].Op != isa.BC1T {
		t.Errorf("compare/branch = %v %v", ins[6], ins[7])
	}
	if ins[8].Op != isa.MOVD || ins[9].Op != isa.CVTWD {
		t.Errorf("mov/cvt = %v %v", ins[8], ins[9])
	}
	if ins[10].Op != isa.MFC1 || ins[10].Rt != isa.T0 || ins[10].Rs != isa.FPReg(10) {
		t.Errorf("mfc1 = %+v", ins[10])
	}
	if ins[11].Op != isa.MTC1 || ins[11].Rt != isa.T1 || ins[11].Rd != isa.FPReg(12) {
		t.Errorf("mtc1 = %+v", ins[11])
	}
	if ins[12].Op != isa.CVTDW {
		t.Errorf("cvt.d.w = %+v", ins[12])
	}
}

func TestLiteralPoolDedup(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   li.d $f0, 3.25
        li.d $f2, 3.25
        li.d $f4, 1.0
`)
	// Two distinct literals -> 16 bytes of pool.
	if len(p.Data) != 16 {
		t.Errorf("literal pool = %d bytes, want 16", len(p.Data))
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown op", ".text\n frob $t0", "unknown instruction"},
		{"unknown reg", ".text\n add $t0, $zz, $t1", "unknown register"},
		{"bad operand count", ".text\n add $t0, $t1", "wants 3 operands"},
		{"dup label", ".text\nx: nop\nx: nop", "duplicate label"},
		{"undef branch", ".text\n beq $t0, $t1, nowhere", "undefined branch target"},
		{"undef jump", ".text\n j nowhere", "undefined jump target"},
		{"undef la", ".text\n la $t0, nowhere", "undefined symbol"},
		{"imm range", ".text\n addi $t0, $t1, 100000", "out of 16-bit range"},
		{"instr in data", ".data\n add $t0, $t1, $t2", "outside .text"},
		{"bad directive", ".bogus 1", "unknown directive"},
		{"bad shift", ".text\n sll $t0, $t1, 99", "bad shift amount"},
		{"fp reg check", ".text\n add.d $t0, $f0, $f2", "wants FP registers"},
		{"word in text", ".text\n .word 1", ".word outside .data"},
		{"bad string", ".data\n .asciiz hello", "bad string"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("assembled successfully, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Assemble(".text\nnop\nnop\n frob $t0\n")
	var ae *Error
	if !asError(err, &ae) {
		t.Fatalf("error %T is not *Error", err)
	}
	if ae.Line != 4 {
		t.Errorf("error line = %d, want 4", ae.Line)
	}
}

func asError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestCommentsAndFormatting(t *testing.T) {
	p := mustAssemble(t, `
# leading comment
        .data
s:      .asciiz "has # not a comment"   # trailing comment
        .text
main:   nop # comment
        add $t0,$t1,$t2#tight comment
`)
	if len(p.Text) != 2 {
		t.Fatalf("got %d instructions", len(p.Text))
	}
	sOff := p.Symbols["s"] - DataBase
	want := "has # not a comment\x00"
	if string(p.Data[sOff:sOff+uint32(len(want))]) != want {
		t.Errorf("string with # mangled: %q", p.Data[sOff:sOff+uint32(len(want))])
	}
}

func TestMultipleLabelsSameAddress(t *testing.T) {
	p := mustAssemble(t, ".text\na: b: c: nop\n")
	for _, l := range []string{"a", "b", "c"} {
		if p.Symbols[l] != TextBase {
			t.Errorf("label %s = %#x", l, p.Symbols[l])
		}
	}
}

func TestSymbolAccessors(t *testing.T) {
	p := mustAssemble(t, ".text\nmain: nop\n")
	if _, err := p.Symbol("main"); err != nil {
		t.Errorf("Symbol(main): %v", err)
	}
	if _, err := p.Symbol("missing"); err == nil {
		t.Errorf("Symbol(missing) succeeded")
	}
	if p.TextEnd() != TextBase+4 {
		t.Errorf("TextEnd = %#x", p.TextEnd())
	}
	if p.DataEnd() != DataBase {
		t.Errorf("DataEnd = %#x", p.DataEnd())
	}
}

func TestNumericJumpTarget(t *testing.T) {
	p := mustAssemble(t, ".text\nmain: j 0x400000\n jal 0x400008\n nop\n")
	ins := decodeAll(t, p)
	if ins[0].Target != 0x400000>>2 || ins[1].Target != 0x400008>>2 {
		t.Errorf("targets = %#x, %#x", ins[0].Target, ins[1].Target)
	}
	if _, err := Assemble(".text\n j 0x3\n"); err == nil {
		t.Error("unaligned jump target accepted")
	}
}

// TestDisassembleReassemble: disassembling a compiled program and feeding
// the listing back through the assembler reproduces the same machine words
// — the disassembler and assembler are inverses over generated code.
func TestDisassembleReassemble(t *testing.T) {
	src := `
        .data
v:      .word 7
d:      .double 2.5
        .text
main:   lw   $t0, v
        li   $t1, 100000
        add  $t2, $t0, $t1
        mult $t0, $t1
        mflo $t3
loop:   addi $t2, $t2, -1
        bgtz $t2, loop
        ldc1 $f2, d
        add.d $f4, $f2, $f2
        c.lt.d $f2, $f4
        bc1t loop
        jal  sub
        j    done
sub:    sll  $t4, $t0, 3
        jr   $ra
done:   syscall
`
	p := mustAssemble(t, src)
	var relisted strings.Builder
	relisted.WriteString("\t.text\n")
	for _, w := range p.Text {
		ins, err := isa.Decode(w)
		if err != nil {
			t.Fatal(err)
		}
		relisted.WriteString("\t" + isa.Disassemble(&ins) + "\n")
	}
	p2, err := Assemble(relisted.String())
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, relisted.String())
	}
	if len(p2.Text) != len(p.Text) {
		t.Fatalf("reassembled %d words, want %d", len(p2.Text), len(p.Text))
	}
	for i := range p.Text {
		if p.Text[i] != p2.Text[i] {
			ins, _ := isa.Decode(p.Text[i])
			t.Errorf("word %d: %#x != %#x (%s)", i, p.Text[i], p2.Text[i], isa.Disassemble(&ins))
		}
	}
}

func TestMoreErrorPaths(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"jalr arity", ".text\n jalr $t0, $t1, $t2", "jalr wants 1 or 2"},
		{"bad mem operand", ".text\n lw $t0, 4[$sp]", "bad memory operand"},
		{"unclosed paren", ".text\n lw $t0, 4($sp", "malformed memory operand"},
		{"mem offset range", ".text\n lw $t0, 40000($sp)", "out of 16-bit range"},
		{"li.d int reg", ".text\n li.d $t0, 1.5", "destination must be an FP register"},
		{"li.d bad const", ".text\n li.d $f0, abc", "bad constant"},
		{"la non-symbol", ".text\n la $t0, 42", "must be a symbol"},
		{"bad label char", ".text\n9lbl: nop", "invalid label"},
		{"space negative", ".data\n .space -1", "bad .space size"},
		{"align range", ".data\n .align 99", "bad .align operand"},
		{"half in text", ".text\n .half 1", ".half outside .data"},
		{"byte in text", ".text\n .byte 1", ".byte outside .data"},
		{"double in text", ".text\n .double 1.0", ".double outside .data"},
		{"bad double", ".data\n .double xyz", "bad .double operand"},
		{"bad half", ".data\n .half xyz", "bad .half operand"},
		{"bad byte", ".data\n .byte xyz", "bad .byte operand"},
		{"bad word", ".data\n .word 1.5", "bad .word operand"},
		{"undef word sym", ".data\n .word nowhere\n .text\n nop", "undefined symbol"},
		{"ascii arity", ".data\n .ascii \"a\", \"b\"", "wants one string"},
		{"space in text", ".text\n .space 4", ".space outside .data"},
		{"ldc1 int reg", ".text\n ldc1 $t0, 0($sp)", "data register must be FP"},
		{"mtc1 wrong order", ".text\n mtc1 $f0, $t0", "integer source and FP destination"},
		{"mfc1 wrong order", ".text\n mfc1 $f0, $t0", "FP source and integer destination"},
		{"branch offset range", ".text\n beq $t0, $t1, 90000", "out of range"},
		{"bad branch target", ".text\n beq $t0, $t1, 1.5", "bad branch target"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("assembled, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestJALRSingleOperand(t *testing.T) {
	p := mustAssemble(t, ".text\nmain: jalr $t9\n")
	ins := decodeAll(t, p)
	if ins[0].Op != isa.JALR || ins[0].Rd != isa.RA || ins[0].Rs != isa.T9 {
		t.Errorf("jalr $t9 = %+v", ins[0])
	}
}

func TestLSAliasesAndGlobl(t *testing.T) {
	p := mustAssemble(t, `
        .globl main
        .data
x:      .double 1.0
        .text
main:   l.d $f2, x
        s.d $f2, x
        mthi $t0
        mtlo $t1
`)
	ins := decodeAll(t, p)
	if ins[1].Op != isa.LDC1 || ins[3].Op != isa.SDC1 {
		t.Errorf("l.d/s.d aliases: %v %v", ins[1].Op, ins[3].Op)
	}
	if ins[4].Op != isa.MTHI || ins[5].Op != isa.MTLO {
		t.Errorf("mthi/mtlo: %v %v", ins[4].Op, ins[5].Op)
	}
}

func TestBareOffsetMemOperand(t *testing.T) {
	p := mustAssemble(t, ".text\nmain: lw $t0, ($sp)\n")
	ins := decodeAll(t, p)
	if ins[0].Imm != 0 || ins[0].Rs != isa.SP {
		t.Errorf("($sp) operand = %+v", ins[0])
	}
}
