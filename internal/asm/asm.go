package asm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"paragraph/internal/isa"
)

// Error is an assembly diagnostic carrying the 1-based source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// section identifies the segment the location counter is in.
type section int

const (
	secText section = iota
	secData
)

// srcLine is one parsed source line.
type srcLine struct {
	num      int
	labels   []string
	mnemonic string   // lower-cased instruction or directive (directives keep '.')
	operands []string // comma-separated operand fields, trimmed
}

// protoIns is a single machine instruction awaiting symbol resolution. At
// most one operand may be symbolic; the kind of fixup tells the second pass
// how to patch the instruction.
type protoIns struct {
	ins    isa.Instruction
	fixup  fixupKind
	symbol string
	addend int32
	line   int
}

type fixupKind uint8

const (
	fixNone   fixupKind = iota
	fixBranch           // PC-relative 16-bit word offset to symbol
	fixJump             // 26-bit absolute word target
	fixHi               // %hi(symbol+addend) into Imm (for lui)
	fixLo               // %lo(symbol+addend) into Imm
	fixLitHi            // %hi of literal-pool entry `addend`
	fixLitLo            // %lo of literal-pool entry `addend`
	fixAbsImm           // full symbol value must fit in 16 bits (rare)
)

// Assembler holds the state of one assembly run. Create with New, feed a
// whole source file to Assemble.
type Assembler struct {
	lines []srcLine

	text     []protoIns
	textSrc  []int
	data     []byte
	symbols  map[string]uint32
	globals  map[string]bool
	litPool  []uint64         // 8-byte FP literals, deduplicated
	litIndex map[uint64]int32 // literal bits -> pool index

	wordRelocs []wordReloc // .word entries holding label addresses

	section section
}

// Assemble assembles a complete source file and returns the loadable
// program. name is used only in diagnostics.
func Assemble(src string) (*Program, error) {
	a := &Assembler{
		symbols:  make(map[string]uint32),
		globals:  make(map[string]bool),
		litIndex: make(map[uint64]int32),
	}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.firstPass(); err != nil {
		return nil, err
	}
	return a.secondPass()
}

// parse splits the source into srcLines.
func (a *Assembler) parse(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		num := i + 1
		line := raw
		if idx := commentIndex(line); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var sl srcLine
		sl.num = num
		// Peel off leading labels.
		for {
			idx := labelIndex(line)
			if idx < 0 {
				break
			}
			label := strings.TrimSpace(line[:idx])
			if !isIdent(label) {
				return errf(num, "invalid label %q", label)
			}
			sl.labels = append(sl.labels, label)
			line = strings.TrimSpace(line[idx+1:])
		}
		if line != "" {
			mn, rest, _ := strings.Cut(line, " ")
			if tabMn, tabRest, ok := strings.Cut(line, "\t"); ok && len(tabMn) < len(mn) {
				mn, rest = tabMn, tabRest
			}
			sl.mnemonic = strings.ToLower(strings.TrimSpace(mn))
			rest = strings.TrimSpace(rest)
			if rest != "" {
				sl.operands = splitOperands(rest)
			}
		}
		a.lines = append(a.lines, sl)
	}
	return nil
}

// commentIndex finds the start of a '#' comment, respecting string literals.
func commentIndex(line string) int {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if i == 0 || line[i-1] != '\\' {
				inStr = !inStr
			}
		case '#':
			if !inStr {
				return i
			}
		}
	}
	return -1
}

// labelIndex returns the position of a label-terminating ':' at the start of
// the line, or -1. It does not look past the first whitespace-delimited
// token so that operands containing ':' are untouched.
func labelIndex(line string) int {
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == ':' {
			return i
		}
		if !isIdentChar(c) {
			return -1
		}
	}
	return -1
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
		if i == 0 && s[i] >= '0' && s[i] <= '9' {
			return false
		}
	}
	return true
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '.' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// splitOperands splits on commas that are outside quotes and parentheses.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// firstPass walks the parsed lines, assigning addresses to labels, emitting
// proto-instructions for text and raw bytes for data.
func (a *Assembler) firstPass() error {
	for _, sl := range a.lines {
		// Data directives align their location counter before any label
		// on the same line binds, so that `x: .word 1` puts x on the
		// word itself.
		if a.section == secData {
			switch sl.mnemonic {
			case ".half":
				a.alignData(2)
			case ".word":
				a.alignData(4)
			case ".double":
				a.alignData(8)
			case ".align":
				if len(sl.operands) == 1 {
					if n, err := parseInt(sl.operands[0]); err == nil && n >= 0 && n <= 16 {
						a.alignData(1 << uint(n))
					}
				}
			}
		}
		for _, label := range sl.labels {
			addr := a.here()
			if _, dup := a.symbols[label]; dup {
				return errf(sl.num, "duplicate label %q", label)
			}
			a.symbols[label] = addr
		}
		if sl.mnemonic == "" {
			continue
		}
		if strings.HasPrefix(sl.mnemonic, ".") {
			if err := a.directive(sl); err != nil {
				return err
			}
			continue
		}
		if a.section != secText {
			return errf(sl.num, "instruction %q outside .text", sl.mnemonic)
		}
		if err := a.instruction(sl); err != nil {
			return err
		}
	}
	return nil
}

// here returns the current location-counter address.
func (a *Assembler) here() uint32 {
	if a.section == secText {
		return TextBase + uint32(4*len(a.text))
	}
	return DataBase + uint32(len(a.data))
}

func (a *Assembler) directive(sl srcLine) error {
	switch sl.mnemonic {
	case ".text":
		a.section = secText
	case ".data":
		a.section = secData
	case ".globl", ".global":
		for _, op := range sl.operands {
			a.globals[op] = true
		}
	case ".align":
		if len(sl.operands) != 1 {
			return errf(sl.num, ".align wants one operand")
		}
		n, err := parseInt(sl.operands[0])
		if err != nil || n < 0 || n > 16 {
			return errf(sl.num, "bad .align operand %q", sl.operands[0])
		}
		if a.section == secData {
			align := 1 << uint(n)
			for len(a.data)%align != 0 {
				a.data = append(a.data, 0)
			}
		}
	case ".space":
		if a.section != secData {
			return errf(sl.num, ".space outside .data")
		}
		if len(sl.operands) != 1 {
			return errf(sl.num, ".space wants one operand")
		}
		n, err := parseInt(sl.operands[0])
		if err != nil || n < 0 {
			return errf(sl.num, "bad .space size %q", sl.operands[0])
		}
		a.data = append(a.data, make([]byte, n)...)
	case ".word":
		if a.section != secData {
			return errf(sl.num, ".word outside .data")
		}
		a.alignData(4)
		for _, op := range sl.operands {
			if v, err := parseInt(op); err == nil {
				a.data = binary.LittleEndian.AppendUint32(a.data, uint32(v))
			} else if isIdent(op) {
				// Label-valued word: resolved in second pass via a
				// relocation list; record a placeholder.
				a.wordRelocs = append(a.wordRelocs, wordReloc{
					off: len(a.data), symbol: op, line: sl.num,
				})
				a.data = binary.LittleEndian.AppendUint32(a.data, 0)
			} else {
				return errf(sl.num, "bad .word operand %q", op)
			}
		}
	case ".half":
		if a.section != secData {
			return errf(sl.num, ".half outside .data")
		}
		a.alignData(2)
		for _, op := range sl.operands {
			v, err := parseInt(op)
			if err != nil {
				return errf(sl.num, "bad .half operand %q", op)
			}
			a.data = binary.LittleEndian.AppendUint16(a.data, uint16(v))
		}
	case ".byte":
		if a.section != secData {
			return errf(sl.num, ".byte outside .data")
		}
		for _, op := range sl.operands {
			v, err := parseInt(op)
			if err != nil {
				return errf(sl.num, "bad .byte operand %q", op)
			}
			a.data = append(a.data, byte(v))
		}
	case ".double":
		if a.section != secData {
			return errf(sl.num, ".double outside .data")
		}
		a.alignData(8)
		for _, op := range sl.operands {
			f, err := strconv.ParseFloat(op, 64)
			if err != nil {
				return errf(sl.num, "bad .double operand %q", op)
			}
			a.data = binary.LittleEndian.AppendUint64(a.data, math.Float64bits(f))
		}
	case ".ascii", ".asciiz":
		if a.section != secData {
			return errf(sl.num, "%s outside .data", sl.mnemonic)
		}
		if len(sl.operands) != 1 {
			return errf(sl.num, "%s wants one string operand", sl.mnemonic)
		}
		s, err := strconv.Unquote(sl.operands[0])
		if err != nil {
			return errf(sl.num, "bad string %s", sl.operands[0])
		}
		a.data = append(a.data, s...)
		if sl.mnemonic == ".asciiz" {
			a.data = append(a.data, 0)
		}
	default:
		return errf(sl.num, "unknown directive %q", sl.mnemonic)
	}
	return nil
}

func (a *Assembler) alignData(n int) {
	for len(a.data)%n != 0 {
		a.data = append(a.data, 0)
	}
}

// wordReloc records a .word entry whose value is a label address.
type wordReloc struct {
	off    int
	symbol string
	line   int
}

// secondPass resolves symbols, encodes instructions, and builds the Program.
func (a *Assembler) secondPass() (*Program, error) {
	// Place the FP literal pool after the data segment, 8-byte aligned.
	a.alignData(8)
	litBase := DataBase + uint32(len(a.data))
	for _, bits := range a.litPool {
		a.data = binary.LittleEndian.AppendUint64(a.data, bits)
	}

	for _, rel := range a.wordRelocs {
		addr, ok := a.symbols[rel.symbol]
		if !ok {
			return nil, errf(rel.line, "undefined symbol %q in .word", rel.symbol)
		}
		binary.LittleEndian.PutUint32(a.data[rel.off:], addr)
	}

	p := &Program{
		Data:    a.data,
		Symbols: a.symbols,
		Entry:   TextBase,
		Source:  a.textSrc,
	}
	if main, ok := a.symbols["main"]; ok {
		p.Entry = main
	}

	for i := range a.text {
		pi := &a.text[i]
		pc := TextBase + uint32(4*i)
		ins := pi.ins
		switch pi.fixup {
		case fixNone:
		case fixBranch:
			target, ok := a.symbols[pi.symbol]
			if !ok {
				return nil, errf(pi.line, "undefined branch target %q", pi.symbol)
			}
			off := (int64(target) - int64(pc) - 4) / 4
			if off < math.MinInt16 || off > math.MaxInt16 {
				return nil, errf(pi.line, "branch to %q out of range (%d words)", pi.symbol, off)
			}
			ins.Imm = int32(off)
		case fixJump:
			target, ok := a.symbols[pi.symbol]
			if !ok {
				return nil, errf(pi.line, "undefined jump target %q", pi.symbol)
			}
			ins.Target = target >> 2
		case fixHi, fixLo, fixLitHi, fixLitLo:
			var addr uint32
			if pi.fixup == fixLitHi || pi.fixup == fixLitLo {
				addr = litBase + uint32(8*pi.addend)
			} else {
				sym, ok := a.symbols[pi.symbol]
				if !ok {
					return nil, errf(pi.line, "undefined symbol %q", pi.symbol)
				}
				addr = sym + uint32(pi.addend)
			}
			if pi.fixup == fixHi || pi.fixup == fixLitHi {
				ins.Imm = int32(int16((addr + 0x8000) >> 16))
			} else {
				ins.Imm = int32(int16(addr & 0xffff))
			}
		case fixAbsImm:
			sym, ok := a.symbols[pi.symbol]
			if !ok {
				return nil, errf(pi.line, "undefined symbol %q", pi.symbol)
			}
			v := int64(sym) + int64(pi.addend)
			if v < math.MinInt16 || v > math.MaxUint16 {
				return nil, errf(pi.line, "symbol value %#x does not fit in 16 bits", v)
			}
			ins.Imm = int32(int16(v))
		}
		word, err := isa.Encode(&ins)
		if err != nil {
			return nil, errf(pi.line, "%v", err)
		}
		p.Text = append(p.Text, word)
	}
	return p, nil
}

// emit appends a proto-instruction to the text segment.
func (a *Assembler) emit(line int, ins isa.Instruction) {
	a.text = append(a.text, protoIns{ins: ins, line: line})
	a.textSrc = append(a.textSrc, line)
}

func (a *Assembler) emitFixup(line int, ins isa.Instruction, kind fixupKind, symbol string, addend int32) {
	a.text = append(a.text, protoIns{ins: ins, fixup: kind, symbol: symbol, addend: addend, line: line})
	a.textSrc = append(a.textSrc, line)
}
