package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"paragraph/internal/isa"
)

// regNames resolves register operand spellings.
var regNames = func() map[string]isa.Reg {
	m := map[string]isa.Reg{}
	names := []string{
		"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
		"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
		"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
		"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
	}
	for i, n := range names {
		m["$"+n] = isa.Reg(i)
	}
	m["$s8"] = isa.FP
	for i := 0; i < 32; i++ {
		m["$"+strconv.Itoa(i)] = isa.Reg(i)
		m[fmt.Sprintf("$f%d", i)] = isa.FPReg(i)
	}
	return m
}()

func parseReg(s string) (isa.Reg, error) {
	r, ok := regNames[strings.ToLower(s)]
	if !ok {
		return 0, fmt.Errorf("unknown register %q", s)
	}
	return r, nil
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

// memOperand is a parsed memory reference: either offset($base), a bare
// symbol, or symbol+offset.
type memOperand struct {
	base   isa.Reg
	offset int32
	symbol string // non-empty for symbolic references
}

func parseMem(s string) (memOperand, error) {
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return memOperand{}, fmt.Errorf("malformed memory operand %q", s)
		}
		base, err := parseReg(s[i+1 : len(s)-1])
		if err != nil {
			return memOperand{}, err
		}
		offStr := strings.TrimSpace(s[:i])
		var off int64
		if offStr != "" {
			off, err = parseInt(offStr)
			if err != nil {
				return memOperand{}, fmt.Errorf("bad offset %q", offStr)
			}
		}
		if off < math.MinInt16 || off > math.MaxInt16 {
			return memOperand{}, fmt.Errorf("offset %d out of 16-bit range", off)
		}
		return memOperand{base: base, offset: int32(off)}, nil
	}
	// symbol or symbol+offset or symbol-offset
	sym := s
	var off int64
	for _, sep := range []string{"+", "-"} {
		if i := strings.Index(s, sep); i > 0 {
			var err error
			off, err = parseInt(s[i:])
			if err != nil {
				return memOperand{}, fmt.Errorf("bad symbol offset in %q", s)
			}
			sym = s[:i]
			break
		}
	}
	if !isIdent(sym) {
		return memOperand{}, fmt.Errorf("bad memory operand %q", s)
	}
	return memOperand{symbol: sym, offset: int32(off)}, nil
}

// instruction assembles one instruction line (possibly a pseudo-instruction
// expanding to several machine instructions).
func (a *Assembler) instruction(sl srcLine) error {
	mn := sl.mnemonic
	ops := sl.operands
	n := sl.num

	want := func(k int) error {
		if len(ops) != k {
			return errf(n, "%s wants %d operands, got %d", mn, k, len(ops))
		}
		return nil
	}
	reg := func(i int) (isa.Reg, error) {
		r, err := parseReg(ops[i])
		if err != nil {
			return 0, errf(n, "%s: %v", mn, err)
		}
		return r, nil
	}
	imm16 := func(i int) (int32, error) {
		v, err := parseInt(ops[i])
		if err != nil {
			return 0, errf(n, "%s: bad immediate %q", mn, ops[i])
		}
		if v < math.MinInt16 || v > math.MaxUint16 {
			return 0, errf(n, "%s: immediate %d out of 16-bit range", mn, v)
		}
		return int32(int16(v)), nil
	}

	// Pseudo-instructions first.
	switch mn {
	case "li":
		if err := want(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := parseInt(ops[1])
		if err != nil {
			return errf(n, "li: bad immediate %q", ops[1])
		}
		a.emitLoadImm(n, rd, int32(v))
		return nil
	case "la":
		if err := want(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		m, err := parseMem(ops[1])
		if err != nil || m.symbol == "" {
			return errf(n, "la: operand must be a symbol, got %q", ops[1])
		}
		a.emitFixup(n, isa.Instruction{Op: isa.LUI, Rt: rd}, fixHi, m.symbol, m.offset)
		a.emitFixup(n, isa.Instruction{Op: isa.ADDIU, Rt: rd, Rs: rd}, fixLo, m.symbol, m.offset)
		return nil
	case "li.d":
		if err := want(2); err != nil {
			return err
		}
		fd, err := reg(0)
		if err != nil {
			return err
		}
		if !fd.IsFP() {
			return errf(n, "li.d: destination must be an FP register")
		}
		f, err := strconv.ParseFloat(ops[1], 64)
		if err != nil {
			return errf(n, "li.d: bad constant %q", ops[1])
		}
		idx := a.literal(math.Float64bits(f))
		a.emitFixup(n, isa.Instruction{Op: isa.LUI, Rt: isa.AT}, fixLitHi, "", idx)
		a.emitFixup(n, isa.Instruction{Op: isa.LDC1, Rt: fd, Rs: isa.AT}, fixLitLo, "", idx)
		return nil
	case "move":
		if err := want(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		a.emit(n, isa.Instruction{Op: isa.ADDU, Rd: rd, Rs: rs, Rt: isa.Zero})
		return nil
	case "b":
		if err := want(1); err != nil {
			return err
		}
		a.emitFixup(n, isa.Instruction{Op: isa.BEQ, Rs: isa.Zero, Rt: isa.Zero}, fixBranch, ops[0], 0)
		return nil
	case "mul", "rem", "div":
		if mn == "div" && len(ops) == 2 {
			break // real two-operand div, handled below
		}
		if err := want(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		rt, err := reg(2)
		if err != nil {
			return err
		}
		switch mn {
		case "mul":
			a.emit(n, isa.Instruction{Op: isa.MULT, Rs: rs, Rt: rt})
			a.emit(n, isa.Instruction{Op: isa.MFLO, Rd: rd})
		case "div":
			a.emit(n, isa.Instruction{Op: isa.DIV, Rs: rs, Rt: rt})
			a.emit(n, isa.Instruction{Op: isa.MFLO, Rd: rd})
		default: // rem
			a.emit(n, isa.Instruction{Op: isa.DIV, Rs: rs, Rt: rt})
			a.emit(n, isa.Instruction{Op: isa.MFHI, Rd: rd})
		}
		return nil
	case "neg":
		if err := want(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		a.emit(n, isa.Instruction{Op: isa.SUB, Rd: rd, Rs: isa.Zero, Rt: rs})
		return nil
	case "not":
		if err := want(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		a.emit(n, isa.Instruction{Op: isa.NOR, Rd: rd, Rs: rs, Rt: isa.Zero})
		return nil
	case "blt", "bge", "bgt", "ble":
		if err := want(3); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		rt, err := reg(1)
		if err != nil {
			return err
		}
		// blt rs,rt: slt $at,rs,rt; bne. bge: slt; beq.
		// bgt rs,rt == blt rt,rs. ble rs,rt == bge rt,rs.
		a1, b1 := rs, rt
		branch := isa.BNE
		switch mn {
		case "bge":
			branch = isa.BEQ
		case "bgt":
			a1, b1 = rt, rs
		case "ble":
			a1, b1 = rt, rs
			branch = isa.BEQ
		}
		a.emit(n, isa.Instruction{Op: isa.SLT, Rd: isa.AT, Rs: a1, Rt: b1})
		a.emitFixup(n, isa.Instruction{Op: branch, Rs: isa.AT, Rt: isa.Zero}, fixBranch, ops[2], 0)
		return nil
	case "l.d":
		mn, sl.mnemonic = "ldc1", "ldc1"
	case "s.d":
		mn, sl.mnemonic = "sdc1", "sdc1"
	}

	op, ok := isa.LookupOp(mn)
	if !ok {
		return errf(n, "unknown instruction %q", mn)
	}
	info := op.Info()

	switch {
	case op == isa.NOP || op == isa.SYSCALL || op == isa.BREAK:
		if err := want(0); err != nil {
			return err
		}
		a.emit(n, isa.Instruction{Op: op})
		return nil

	case op == isa.J || op == isa.JAL:
		if err := want(1); err != nil {
			return err
		}
		// Numeric absolute targets (as the disassembler prints) are
		// accepted alongside labels.
		if v, err := parseInt(ops[0]); err == nil {
			if v < 0 || v&3 != 0 || v>>2 > 0x03ffffff {
				return errf(n, "bad jump target %#x", v)
			}
			a.emit(n, isa.Instruction{Op: op, Target: uint32(v >> 2)})
			return nil
		}
		a.emitFixup(n, isa.Instruction{Op: op}, fixJump, ops[0], 0)
		return nil

	case op == isa.JR || op == isa.MTHI || op == isa.MTLO:
		if err := want(1); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		a.emit(n, isa.Instruction{Op: op, Rs: rs})
		return nil

	case op == isa.JALR:
		// jalr rs  (rd defaults to $ra), or jalr rd, rs.
		var rd, rs isa.Reg
		var err error
		switch len(ops) {
		case 1:
			rd = isa.RA
			rs, err = reg(0)
		case 2:
			rd, err = reg(0)
			if err == nil {
				rs, err = reg(1)
			}
		default:
			return errf(n, "jalr wants 1 or 2 operands")
		}
		if err != nil {
			return err
		}
		a.emit(n, isa.Instruction{Op: op, Rd: rd, Rs: rs})
		return nil

	case op == isa.MFHI || op == isa.MFLO:
		if err := want(1); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		a.emit(n, isa.Instruction{Op: op, Rd: rd})
		return nil

	case op == isa.MULT || op == isa.MULTU || op == isa.DIV || op == isa.DIVU:
		if err := want(2); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		rt, err := reg(1)
		if err != nil {
			return err
		}
		a.emit(n, isa.Instruction{Op: op, Rs: rs, Rt: rt})
		return nil

	case op == isa.SLL || op == isa.SRL || op == isa.SRA:
		if err := want(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rt, err := reg(1)
		if err != nil {
			return err
		}
		sh, err := parseInt(ops[2])
		if err != nil || sh < 0 || sh > 31 {
			return errf(n, "%s: bad shift amount %q", mn, ops[2])
		}
		a.emit(n, isa.Instruction{Op: op, Rd: rd, Rt: rt, Shamt: uint8(sh)})
		return nil

	case op == isa.SLLV || op == isa.SRLV || op == isa.SRAV:
		if err := want(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rt, err := reg(1)
		if err != nil {
			return err
		}
		rs, err := reg(2)
		if err != nil {
			return err
		}
		a.emit(n, isa.Instruction{Op: op, Rd: rd, Rt: rt, Rs: rs})
		return nil

	case op == isa.LUI:
		if err := want(2); err != nil {
			return err
		}
		rt, err := reg(0)
		if err != nil {
			return err
		}
		imm, err := imm16(1)
		if err != nil {
			return err
		}
		a.emit(n, isa.Instruction{Op: op, Rt: rt, Imm: imm})
		return nil

	case info.IsLoad || info.IsStore:
		if err := want(2); err != nil {
			return err
		}
		rt, err := reg(0)
		if err != nil {
			return err
		}
		if (op == isa.LDC1 || op == isa.SDC1) && !rt.IsFP() {
			return errf(n, "%s: data register must be FP", mn)
		}
		m, err := parseMem(ops[1])
		if err != nil {
			return errf(n, "%s: %v", mn, err)
		}
		if m.symbol != "" {
			a.emitFixup(n, isa.Instruction{Op: isa.LUI, Rt: isa.AT}, fixHi, m.symbol, m.offset)
			a.emitFixup(n, isa.Instruction{Op: op, Rt: rt, Rs: isa.AT}, fixLo, m.symbol, m.offset)
		} else {
			a.emit(n, isa.Instruction{Op: op, Rt: rt, Rs: m.base, Imm: m.offset})
		}
		return nil

	case op == isa.BEQ || op == isa.BNE:
		if err := want(3); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		rt, err := reg(1)
		if err != nil {
			return err
		}
		ins := isa.Instruction{Op: op, Rs: rs, Rt: rt}
		return a.emitBranchTarget(n, ins, ops[2])

	case op == isa.BLEZ || op == isa.BGTZ || op == isa.BLTZ || op == isa.BGEZ:
		if err := want(2); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		ins := isa.Instruction{Op: op, Rs: rs}
		return a.emitBranchTarget(n, ins, ops[1])

	case op == isa.BC1T || op == isa.BC1F:
		if err := want(1); err != nil {
			return err
		}
		return a.emitBranchTarget(n, isa.Instruction{Op: op}, ops[0])

	case op == isa.MTC1:
		if err := want(2); err != nil {
			return err
		}
		rt, err := reg(0)
		if err != nil {
			return err
		}
		fd, err := reg(1)
		if err != nil {
			return err
		}
		if !fd.IsFP() || rt.IsFP() {
			return errf(n, "mtc1 wants an integer source and FP destination")
		}
		a.emit(n, isa.Instruction{Op: op, Rt: rt, Rd: fd})
		return nil

	case op == isa.MFC1:
		if err := want(2); err != nil {
			return err
		}
		rt, err := reg(0)
		if err != nil {
			return err
		}
		fs, err := reg(1)
		if err != nil {
			return err
		}
		if !fs.IsFP() || rt.IsFP() {
			return errf(n, "mfc1 wants an FP source and integer destination")
		}
		a.emit(n, isa.Instruction{Op: op, Rt: rt, Rs: fs})
		return nil

	case info.Format == isa.FormatFR:
		// add.d fd, fs, ft | abs.d fd, fs | c.eq.d fs, ft
		switch {
		case info.WritesRd && info.ReadsRt: // 3-operand
			if err := want(3); err != nil {
				return err
			}
			fd, err := reg(0)
			if err != nil {
				return err
			}
			fs, err := reg(1)
			if err != nil {
				return err
			}
			ft, err := reg(2)
			if err != nil {
				return err
			}
			if !fd.IsFP() || !fs.IsFP() || !ft.IsFP() {
				return errf(n, "%s wants FP registers", mn)
			}
			a.emit(n, isa.Instruction{Op: op, Rd: fd, Rs: fs, Rt: ft})
		case info.WritesRd: // 2-operand: fd, fs
			if err := want(2); err != nil {
				return err
			}
			fd, err := reg(0)
			if err != nil {
				return err
			}
			fs, err := reg(1)
			if err != nil {
				return err
			}
			if !fd.IsFP() || !fs.IsFP() {
				return errf(n, "%s wants FP registers", mn)
			}
			a.emit(n, isa.Instruction{Op: op, Rd: fd, Rs: fs})
		default: // compare: fs, ft
			if err := want(2); err != nil {
				return err
			}
			fs, err := reg(0)
			if err != nil {
				return err
			}
			ft, err := reg(1)
			if err != nil {
				return err
			}
			if !fs.IsFP() || !ft.IsFP() {
				return errf(n, "%s wants FP registers", mn)
			}
			a.emit(n, isa.Instruction{Op: op, Rs: fs, Rt: ft})
		}
		return nil

	case info.Format == isa.FormatI && info.HasImm:
		// addi rt, rs, imm and friends.
		if err := want(3); err != nil {
			return err
		}
		rt, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		imm, err := imm16(2)
		if err != nil {
			return err
		}
		a.emit(n, isa.Instruction{Op: op, Rt: rt, Rs: rs, Imm: imm})
		return nil

	case info.Format == isa.FormatR:
		// add rd, rs, rt.
		if err := want(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		rt, err := reg(2)
		if err != nil {
			return err
		}
		a.emit(n, isa.Instruction{Op: op, Rd: rd, Rs: rs, Rt: rt})
		return nil
	}

	return errf(n, "cannot assemble %q", mn)
}

// emitBranchTarget emits ins with its target operand, which may be a label
// or a numeric word offset.
func (a *Assembler) emitBranchTarget(n int, ins isa.Instruction, target string) error {
	if v, err := parseInt(target); err == nil {
		if v < math.MinInt16 || v > math.MaxInt16 {
			return errf(n, "branch offset %d out of range", v)
		}
		ins.Imm = int32(v)
		a.emit(n, ins)
		return nil
	}
	if !isIdent(target) {
		return errf(n, "bad branch target %q", target)
	}
	a.emitFixup(n, ins, fixBranch, target, 0)
	return nil
}

// emitLoadImm emits the minimal sequence to load a 32-bit constant.
func (a *Assembler) emitLoadImm(n int, rd isa.Reg, v int32) {
	switch {
	case v >= math.MinInt16 && v <= math.MaxInt16:
		a.emit(n, isa.Instruction{Op: isa.ADDIU, Rt: rd, Rs: isa.Zero, Imm: v})
	case v >= 0 && v <= math.MaxUint16:
		a.emit(n, isa.Instruction{Op: isa.ORI, Rt: rd, Rs: isa.Zero, Imm: int32(int16(v))})
	default:
		a.emit(n, isa.Instruction{Op: isa.LUI, Rt: rd, Imm: int32(int16(uint32(v) >> 16))})
		if low := v & 0xffff; low != 0 {
			a.emit(n, isa.Instruction{Op: isa.ORI, Rt: rd, Rs: rd, Imm: int32(int16(low))})
		}
	}
}

// literal interns an 8-byte FP constant in the literal pool and returns its
// index.
func (a *Assembler) literal(bits uint64) int32 {
	if idx, ok := a.litIndex[bits]; ok {
		return idx
	}
	idx := int32(len(a.litPool))
	a.litPool = append(a.litPool, bits)
	a.litIndex[bits] = idx
	return idx
}
