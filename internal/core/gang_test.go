package core

import (
	"math/rand"
	"reflect"
	"testing"

	"paragraph/internal/trace"
)

// gangRun resolves events with a recycling resolver, replays every segment
// through one SchedulerGang as it is emitted — pinning the gang's
// retain-nothing contract against buffer reuse — and finishes each
// scheduler. Segment cuts happen at the given event boundaries.
func gangRun(t *testing.T, cfgs []Config, events []trace.Event, pts []int) []*Result {
	t.Helper()
	scheds := make([]*Scheduler, len(cfgs))
	for i, cfg := range cfgs {
		scheds[i] = NewScheduler(cfg)
	}
	g := NewSchedulerGang(scheds)
	if g == nil {
		t.Fatal("config group unexpectedly gang-ineligible")
	}
	r := NewResolver(cfgs[0], func(seg *DepSegment) error { return g.Apply(seg) })
	r.Recycle()
	for i := 1; i < len(pts); i++ {
		if err := r.Events(events[pts[i-1]:pts[i]]); err != nil {
			t.Fatalf("resolve [%d:%d): %v", pts[i-1], pts[i], err)
		}
		if err := r.Flush(); err != nil {
			t.Fatalf("flush at %d: %v", pts[i], err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	g.Seal()
	totals := r.Totals()
	results := make([]*Result, len(cfgs))
	for i, s := range scheds {
		res, err := s.Finish(totals)
		if err != nil {
			t.Fatalf("config %d: finish: %v", i, err)
		}
		results[i] = res
	}
	return results
}

// TestSchedulerGangDifferential pins the gang replay — one pass updating
// every config's levels side by side — deep-equal to the sequential
// analyzer across window, FU, latency and profile variation, under each
// uniform branch policy (misprediction-driven enlivening shares the gang's
// liveness bits, so every policy's enliven pattern must round-trip).
func TestSchedulerGangDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	group := func(policy BranchPolicy) []Config {
		base := Dataflow(SyscallConservative)
		base.Branches = policy
		if policy == BranchTwoBit {
			base.PredictorBits = 4
		}
		mk := func(f func(*Config)) Config {
			c := base.Clone()
			f(&c)
			return c
		}
		return []Config{
			base, // profile on, unwindowed
			mk(func(c *Config) { c.WindowSize = 1; c.Profile = false }),
			mk(func(c *Config) { c.WindowSize = 16 }),
			mk(func(c *Config) { c.WindowSize = 1024; c.Profile = false }),
			mk(func(c *Config) { c.FunctionalUnits = 2 }),
			mk(func(c *Config) { c.UnitLatency = true; c.WindowSize = 64 }),
		}
	}
	for _, policy := range []BranchPolicy{BranchPerfect, BranchStall, BranchStatic, BranchTwoBit} {
		cfgs := group(policy)
		for trial := 0; trial < 4; trial++ {
			events := richTrace(rng, 200+rng.Intn(400))
			got := gangRun(t, cfgs, events, cuts(rng, len(events)))
			for i, cfg := range cfgs {
				want := analyze(t, cfg, events)
				if !reflect.DeepEqual(got[i], want) {
					t.Errorf("policy %v trial %d config %d: gang diverged from sequential analyzer\n got: %+v\nwant: %+v",
						policy, trial, i, got[i], want)
				}
			}
		}
	}
}

// TestSchedulerGangEligibility pins the fallback boundary: groups the gang
// cannot replay exactly (use-count consumers, per-record tail work, mixed
// branch policies) must be refused so the harness schedules them per
// config.
func TestSchedulerGangEligibility(t *testing.T) {
	base := Dataflow(SyscallConservative)
	mk := func(f func(*Config)) Config {
		c := base.Clone()
		f(&c)
		return c
	}
	scheds := func(cfgs ...Config) []*Scheduler {
		out := make([]*Scheduler, len(cfgs))
		for i, cfg := range cfgs {
			out[i] = NewScheduler(cfg)
		}
		return out
	}
	windowed := mk(func(c *Config) { c.WindowSize = 32 })
	if NewSchedulerGang(scheds(base, windowed)) == nil {
		t.Error("plain window sweep should be gang-eligible")
	}
	cases := map[string][]*Scheduler{
		"single scheduler": scheds(base),
		"lifetimes":        scheds(base, mk(func(c *Config) { c.Lifetimes = true })),
		"sharing":          scheds(base, mk(func(c *Config) { c.Sharing = true })),
		"storage profile":  scheds(base, mk(func(c *Config) { c.StorageProfile = true })),
		"governed":         scheds(base, mk(func(c *Config) { c.MemBudget = 1 << 20 })),
		"mixed branches":   scheds(base, mk(func(c *Config) { c.Branches = BranchStall })),
	}
	for name, ss := range cases {
		if NewSchedulerGang(ss) != nil {
			t.Errorf("%s: group must be gang-ineligible", name)
		}
	}
}

// TestSchedulerGangCorruptRecord: a corrupt record kind fails the gang with
// the same diagnostics a per-config replay reports.
func TestSchedulerGangCorruptRecord(t *testing.T) {
	base := Dataflow(SyscallConservative)
	other := base.Clone()
	other.WindowSize = 8
	g := NewSchedulerGang([]*Scheduler{NewScheduler(base), NewScheduler(other)})
	if g == nil {
		t.Fatal("group unexpectedly ineligible")
	}
	seg := &DepSegment{Code: []uint32{7}, Events: 1} // kind 7 does not exist
	if err := g.Apply(seg); err == nil {
		t.Fatal("gang accepted a corrupt record")
	}
}
