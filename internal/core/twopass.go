package core

import (
	"context"
	"fmt"
	"io"

	"paragraph/internal/budget"
	"paragraph/internal/trace"
)

// Two-pass dead-value analysis.
//
// Section 3.2 of the paper gives two ways to keep the live well from
// growing without bound. Method 2 — used for the paper's SPEC runs, and by
// Analyzer on its own — frees a value only when its storage location is
// reused, which required 32 MB of memory for 100M-instruction traces.
// Method 1 processes the trace twice: a first pass discovers each value's
// last use ("if the instructions are processed in reverse, the first
// occurrence of a value is its last use"), so the second, analyzing pass
// can evict values the moment they die.
//
// Our binary trace format is forward-only, so the discovery pass runs
// forward and records, per memory word, where the current value's last
// access happens; the information is identical to what the paper's reverse
// pass inserts into the trace. Eviction is only performed for words in
// renamed segments: a value in a non-renamed segment must stay resident
// after its last read because the next write still needs its lastUse level
// for the storage-dependency term.

// DeathSchedule records, for each trace position, the memory words whose
// values die there (are never accessed again before being overwritten or
// the trace ends).
type DeathSchedule struct {
	byIndex map[uint64][]uint32
	values  uint64
}

// ComputeDeathSchedule scans a trace and builds the eviction schedule; the
// paper's "value lifetime information ... inserted into the trace".
func ComputeDeathSchedule(r *trace.Reader) (*DeathSchedule, error) {
	return ComputeDeathScheduleContext(context.Background(), r)
}

// ComputeDeathScheduleContext is ComputeDeathSchedule under a cancellation
// context, checked every trace.CtxCheckEvery events.
func ComputeDeathScheduleContext(ctx context.Context, r *trace.Reader) (*DeathSchedule, error) {
	ds := &DeathSchedule{byIndex: make(map[uint64][]uint32)}
	// lastAccess holds, for each word with a live value, the index of the
	// value's most recent access (its creation or a later read).
	lastAccess := make(map[uint32]uint64)
	var idx uint64
	err := r.ForEach(func(e *trace.Event) error {
		if idx%trace.CtxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: discovery canceled at event %d: %w", idx, err)
			}
		}
		info := e.Ins.Op.Info()
		if info.IsLoad || info.IsStore {
			lo, hi := wordRange(e.MemAddr, e.MemSize)
			for w := lo; w <= hi; w++ {
				if info.IsStore {
					if death, live := lastAccess[w]; live {
						ds.byIndex[death] = append(ds.byIndex[death], w)
						ds.values++
					}
				}
				lastAccess[w] = idx
			}
		}
		idx++
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Values never accessed again before the trace ends are dead after
	// their final access, exactly like overwritten ones ("a value is dead
	// when it will never again be referenced by an instruction in the
	// trace").
	for w, death := range lastAccess {
		ds.byIndex[death] = append(ds.byIndex[death], w)
		ds.values++
	}
	return ds, nil
}

// Values returns how many value deaths the schedule recorded.
func (ds *DeathSchedule) Values() uint64 { return ds.values }

// at returns the words dying at trace position idx (nil for most positions).
func (ds *DeathSchedule) at(idx uint64) []uint32 {
	return ds.byIndex[idx]
}

// UseDeathSchedule arms the analyzer with an eviction schedule from a prior
// discovery pass. Must be called before the first Event.
func (a *Analyzer) UseDeathSchedule(ds *DeathSchedule) error {
	if a.instructions > 0 || a.finished {
		return fmt.Errorf("core: UseDeathSchedule after analysis started")
	}
	a.deaths = ds
	return nil
}

// evictDead drops live-well entries for words whose values died at the
// event just processed. Only words in renamed segments are evicted (their
// lastUse will never be consulted again); the segment of a word is
// recovered from its address by the same classification the tracer used.
func (a *Analyzer) evictDead(seq uint64) {
	words := a.deaths.at(seq)
	if len(words) == 0 {
		return
	}
	for _, w := range words {
		seg := segmentOfWord(w)
		if !a.renamedSeg(seg) {
			continue
		}
		if v, live := a.well.memGet(w); live {
			a.retire(v)
			a.well.memDelete(w)
		}
	}
}

// stackFloor is the byte-address boundary of the stack region; it mirrors
// the CPU tracer's classification (cpu.stackRegionFloor), which event
// validation and word-segment recovery must agree with.
const stackFloor uint32 = 0x70000000

// segmentOfWord classifies a word address with the same boundaries the CPU
// tracer uses (trace.SegStack above stackFloor, data/heap below). Heap and
// data share a renaming switch, so the heap boundary is not needed here.
func segmentOfWord(w uint32) trace.Segment {
	if w >= stackFloor>>2 {
		return trace.SegStack
	}
	return trace.SegData
}

// TwoPassOptions configures AnalyzeTwoPassOpts beyond the analysis Config.
type TwoPassOptions struct {
	// Degraded reads the trace in graceful-degradation mode: corrupt v2
	// chunks are skipped (identically in both passes, so the death
	// schedule stays consistent with the analysis pass) instead of
	// aborting the run.
	Degraded bool
	// CheckpointEvery takes a state snapshot every this many events during
	// the analysis pass; 0 disables checkpointing.
	CheckpointEvery uint64
	// OnCheckpoint receives each snapshot. Returning an error aborts the
	// pass with that error — which is also how tests simulate an
	// interruption at an exact trace position. Ignored when
	// CheckpointEvery is 0.
	OnCheckpoint func(*Checkpoint) error
	// Stats, when non-nil, receives the analysis-pass reader's skip
	// accounting on successful return — the exact number of events lost
	// to corrupt chunks in degraded mode.
	Stats *trace.ReadStats
	// FinalOnCancel flushes one last snapshot through OnCheckpoint when
	// the analysis pass observes cancellation, so an interrupted run
	// (Ctrl-C, SIGTERM) resumes from the interruption point instead of the
	// last periodic checkpoint. Ignored when OnCheckpoint is nil.
	FinalOnCancel bool
}

// AnalyzeTwoPass runs the paper's Method-1 pipeline over a stored trace:
// discovery pass, rewind, analysis pass with eager eviction. The metrics
// are identical to a single-pass analysis; the live-well footprint
// (Result.MaxLiveMemoryWords) is what shrinks.
func AnalyzeTwoPass(rs io.ReadSeeker, cfg Config) (*Result, error) {
	return AnalyzeTwoPassOpts(context.Background(), rs, cfg, TwoPassOptions{})
}

// AnalyzeTwoPassOpts is AnalyzeTwoPass with cancellation and fault-tolerance
// options: degraded reads over damaged traces and periodic checkpoints for
// resuming an interrupted pass (see ResumeTwoPass). Cancelling ctx aborts
// either pass within budget.CheckEvery events, returning an error wrapping
// ctx.Err().
func AnalyzeTwoPassOpts(ctx context.Context, rs io.ReadSeeker, cfg Config, opts TwoPassOptions) (*Result, error) {
	ds, err := discoverDeaths(ctx, rs, opts)
	if err != nil {
		return nil, err
	}
	r, err := trace.NewReaderOpts(rs, trace.ReaderOptions{Degraded: opts.Degraded})
	if err != nil {
		return nil, err
	}
	a := NewAnalyzer(cfg)
	if err := a.UseDeathSchedule(ds); err != nil {
		return nil, err
	}
	return runAnalysisPass(ctx, a, r, 0, opts)
}

// AnalyzeTraceOpts runs a single-pass (Method-2) analysis over a stored
// trace under a cancellation context, with the same checkpoint and degraded-
// read options as the two-pass pipeline. Checkpoints taken here restore to
// single-pass analyzers; ResumeTwoPass detects which pipeline a checkpoint
// came from and only recomputes a death schedule for two-pass ones.
func AnalyzeTraceOpts(ctx context.Context, rs io.ReadSeeker, cfg Config, opts TwoPassOptions) (*Result, error) {
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	r, err := trace.NewReaderOpts(rs, trace.ReaderOptions{Degraded: opts.Degraded})
	if err != nil {
		return nil, err
	}
	return runAnalysisPass(ctx, NewAnalyzer(cfg), r, 0, opts)
}

// ResumeTwoPass continues an interrupted analysis pass from a checkpoint:
// the reader is fast-forwarded past the events the checkpoint already
// consumed and the restored analyzer processes the rest. The result is
// identical to an uninterrupted run over the same trace. The options'
// Degraded flag must match the original run, or the event numbering
// diverges.
//
// A checkpoint loaded from disk (LoadCheckpoint) does not carry the death
// schedule — it can rival the live well in size — so resumption re-runs the
// discovery pass first when the original analysis had one. In-memory
// checkpoints share the original schedule and skip that. Despite the name,
// single-pass checkpoints resume here too; they simply never need the
// discovery pass.
func ResumeTwoPass(ctx context.Context, rs io.ReadSeeker, cp *Checkpoint, opts TwoPassOptions) (*Result, error) {
	a := cp.Restore()
	if cp.needDeaths {
		ds, err := discoverDeaths(ctx, rs, opts)
		if err != nil {
			return nil, err
		}
		a.deaths = ds
	}
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	r, err := trace.NewReaderOpts(rs, trace.ReaderOptions{Degraded: opts.Degraded})
	if err != nil {
		return nil, err
	}
	var e trace.Event
	for skipped := uint64(0); skipped < cp.EventOffset; skipped++ {
		if skipped%budget.CheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: resume canceled while skipping to event %d: %w", cp.EventOffset, err)
			}
		}
		if err := r.Next(&e); err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("core: resume: trace ended at event %d, before checkpoint offset %d", skipped, cp.EventOffset)
			}
			return nil, fmt.Errorf("core: resume: %w", err)
		}
	}
	return runAnalysisPass(ctx, a, r, cp.EventOffset, opts)
}

// discoverDeaths runs the discovery pass from the start of the trace and
// rewinds the input for the analysis pass.
func discoverDeaths(ctx context.Context, rs io.ReadSeeker, opts TwoPassOptions) (*DeathSchedule, error) {
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	r, err := trace.NewReaderOpts(rs, trace.ReaderOptions{Degraded: opts.Degraded})
	if err != nil {
		return nil, err
	}
	ds, err := ComputeDeathScheduleContext(ctx, r)
	if err != nil {
		return nil, fmt.Errorf("core: discovery pass: %w", err)
	}
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return ds, nil
}

// runAnalysisPass drives the analyzer over the remaining events of r in
// batches of trace.DefaultBatchEvents. idx is the trace position of the
// next event (non-zero when resuming). The cancellation guard is hoisted
// to batch granularity — one ctx.Err() per batch bounds cancellation
// latency to the same budget.CheckEvery events the per-event cadence did —
// and batches are trimmed to never straddle a checkpoint boundary, so
// snapshots land at the exact positions the per-event loop produced.
func runAnalysisPass(ctx context.Context, a *Analyzer, r *trace.Reader, idx uint64, opts TwoPassOptions) (*Result, error) {
	batch := make([]trace.Event, trace.DefaultBatchEvents)
	for {
		if err := ctx.Err(); err != nil {
			if opts.FinalOnCancel && opts.OnCheckpoint != nil && idx > 0 {
				if serr := opts.OnCheckpoint(a.Snapshot()); serr != nil {
					return nil, fmt.Errorf("core: final checkpoint at event %d: %w", idx, serr)
				}
			}
			return nil, fmt.Errorf("core: analysis canceled at event %d: %w", idx, err)
		}
		want := len(batch)
		if opts.CheckpointEvery > 0 {
			if to := opts.CheckpointEvery - idx%opts.CheckpointEvery; uint64(want) > to {
				want = int(to)
			}
		}
		n, rerr := r.ReadBatch(batch[:want])
		if n > 0 {
			if err := a.Events(batch[:n]); err != nil {
				return nil, fmt.Errorf("core: analysis pass: %w", err)
			}
			idx += uint64(n)
			if opts.CheckpointEvery > 0 && idx%opts.CheckpointEvery == 0 && opts.OnCheckpoint != nil {
				if err := opts.OnCheckpoint(a.Snapshot()); err != nil {
					return nil, fmt.Errorf("core: checkpoint at event %d: %w", idx, err)
				}
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return nil, fmt.Errorf("core: analysis pass: %w", rerr)
		}
	}
	if opts.Stats != nil {
		*opts.Stats = r.Stats()
	}
	return a.Finish()
}
