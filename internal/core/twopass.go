package core

import (
	"fmt"
	"io"

	"paragraph/internal/trace"
)

// Two-pass dead-value analysis.
//
// Section 3.2 of the paper gives two ways to keep the live well from
// growing without bound. Method 2 — used for the paper's SPEC runs, and by
// Analyzer on its own — frees a value only when its storage location is
// reused, which required 32 MB of memory for 100M-instruction traces.
// Method 1 processes the trace twice: a first pass discovers each value's
// last use ("if the instructions are processed in reverse, the first
// occurrence of a value is its last use"), so the second, analyzing pass
// can evict values the moment they die.
//
// Our binary trace format is forward-only, so the discovery pass runs
// forward and records, per memory word, where the current value's last
// access happens; the information is identical to what the paper's reverse
// pass inserts into the trace. Eviction is only performed for words in
// renamed segments: a value in a non-renamed segment must stay resident
// after its last read because the next write still needs its lastUse level
// for the storage-dependency term.

// DeathSchedule records, for each trace position, the memory words whose
// values die there (are never accessed again before being overwritten or
// the trace ends).
type DeathSchedule struct {
	byIndex map[uint64][]uint32
	values  uint64
}

// ComputeDeathSchedule scans a trace and builds the eviction schedule; the
// paper's "value lifetime information ... inserted into the trace".
func ComputeDeathSchedule(r *trace.Reader) (*DeathSchedule, error) {
	ds := &DeathSchedule{byIndex: make(map[uint64][]uint32)}
	// lastAccess holds, for each word with a live value, the index of the
	// value's most recent access (its creation or a later read).
	lastAccess := make(map[uint32]uint64)
	var idx uint64
	err := r.ForEach(func(e *trace.Event) error {
		info := e.Ins.Op.Info()
		if info.IsLoad || info.IsStore {
			lo, hi := wordRange(e.MemAddr, e.MemSize)
			for w := lo; w <= hi; w++ {
				if info.IsStore {
					if death, live := lastAccess[w]; live {
						ds.byIndex[death] = append(ds.byIndex[death], w)
						ds.values++
					}
				}
				lastAccess[w] = idx
			}
		}
		idx++
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Values never accessed again before the trace ends are dead after
	// their final access, exactly like overwritten ones ("a value is dead
	// when it will never again be referenced by an instruction in the
	// trace").
	for w, death := range lastAccess {
		ds.byIndex[death] = append(ds.byIndex[death], w)
		ds.values++
	}
	return ds, nil
}

// Values returns how many value deaths the schedule recorded.
func (ds *DeathSchedule) Values() uint64 { return ds.values }

// at returns the words dying at trace position idx (nil for most positions).
func (ds *DeathSchedule) at(idx uint64) []uint32 {
	return ds.byIndex[idx]
}

// UseDeathSchedule arms the analyzer with an eviction schedule from a prior
// discovery pass. Must be called before the first Event.
func (a *Analyzer) UseDeathSchedule(ds *DeathSchedule) error {
	if a.instructions > 0 || a.finished {
		return fmt.Errorf("core: UseDeathSchedule after analysis started")
	}
	a.deaths = ds
	return nil
}

// evictDead drops live-well entries for words whose values died at the
// event just processed. Only words in renamed segments are evicted (their
// lastUse will never be consulted again); the segment of a word is
// recovered from its address by the same classification the tracer used.
func (a *Analyzer) evictDead(seq uint64) {
	words := a.deaths.at(seq)
	if len(words) == 0 {
		return
	}
	for _, w := range words {
		seg := segmentOfWord(w)
		if !a.renamedSeg(seg) {
			continue
		}
		if v, live := a.well.memGet(w); live {
			a.retire(v)
			a.well.memDelete(w)
		}
	}
}

// segmentOfWord classifies a word address with the same boundaries the CPU
// tracer uses (trace.SegStack above 0x70000000, data/heap below). Heap and
// data share a renaming switch, so the heap boundary is not needed here.
func segmentOfWord(w uint32) trace.Segment {
	if w >= 0x70000000>>2 {
		return trace.SegStack
	}
	return trace.SegData
}

// AnalyzeTwoPass runs the paper's Method-1 pipeline over a stored trace:
// discovery pass, rewind, analysis pass with eager eviction. The metrics
// are identical to a single-pass analysis; the live-well footprint
// (Result.MaxLiveMemoryWords) is what shrinks.
func AnalyzeTwoPass(rs io.ReadSeeker, cfg Config) (*Result, error) {
	r, err := trace.NewReader(rs)
	if err != nil {
		return nil, err
	}
	ds, err := ComputeDeathSchedule(r)
	if err != nil {
		return nil, fmt.Errorf("core: discovery pass: %w", err)
	}
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	r, err = trace.NewReader(rs)
	if err != nil {
		return nil, err
	}
	a := NewAnalyzer(cfg)
	if err := a.UseDeathSchedule(ds); err != nil {
		return nil, err
	}
	if err := r.ForEach(a.Event); err != nil {
		return nil, fmt.Errorf("core: analysis pass: %w", err)
	}
	return a.Finish(), nil
}
