package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// resolveRun pushes events through a Resolver cut into segments at the
// given event boundaries (via explicit Flush calls) and replays the
// segments through one Scheduler per config, returning per-config Results.
func resolveRun(t *testing.T, cfgs []Config, events []trace.Event, pts []int) []*Result {
	t.Helper()
	var segs []*DepSegment
	r := NewResolver(cfgs[0], func(seg *DepSegment) error {
		segs = append(segs, seg)
		return nil
	})
	for i := 1; i < len(pts); i++ {
		if err := r.Events(events[pts[i-1]:pts[i]]); err != nil {
			t.Fatalf("resolve [%d:%d): %v", pts[i-1], pts[i], err)
		}
		if err := r.Flush(); err != nil {
			t.Fatalf("flush at %d: %v", pts[i], err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	totals := r.Totals()

	results := make([]*Result, len(cfgs))
	for ci, cfg := range cfgs {
		s := NewScheduler(cfg)
		for _, seg := range segs {
			if err := s.Apply(seg); err != nil {
				t.Fatalf("config %d: apply: %v", ci, err)
			}
		}
		res, err := s.Finish(totals)
		if err != nil {
			t.Fatalf("config %d: finish: %v", ci, err)
		}
		results[ci] = res
	}
	return results
}

// TestResolveDifferentialSequential is the stage-split equivalence pin:
// resolving a trace once and replaying the record segments through a
// scheduler produces a Result deep-equal to feeding every event through
// Analyzer.Event, across the full configuration matrix (windows, FUs,
// branch policies, profiles, distributions, budgets, latencies) and
// random segment cuts.
func TestResolveDifferentialSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for ci, cfg := range deltaConfigs() {
		for trial := 0; trial < 6; trial++ {
			events := richTrace(rng, 150+rng.Intn(400))
			want := analyze(t, cfg, events)
			got := resolveRun(t, []Config{cfg}, events, cuts(rng, len(events)))[0]
			if !reflect.DeepEqual(got, want) {
				t.Errorf("config %d trial %d: resolver+scheduler diverged from sequential analyzer\n got: %+v\nwant: %+v", ci, trial, got, want)
			}
		}
	}
}

// TestResolveSharedAcrossConfigs pins the whole point of the split: one
// resolution (one signature) serves schedulers with different windows,
// functional units, latencies AND branch policies — the resolver emits
// full branch records regardless of policy, a perfect-branch scheduler
// consumes and ignores them.
func TestResolveSharedAcrossConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	base := Dataflow(SyscallConservative)
	mk := func(f func(*Config)) Config {
		c := base.Clone()
		f(&c)
		return c
	}
	cfgs := []Config{
		base,
		mk(func(c *Config) { c.WindowSize = 16 }),
		mk(func(c *Config) { c.WindowSize = 1024; c.Profile = false }),
		mk(func(c *Config) { c.FunctionalUnits = 2 }),
		mk(func(c *Config) { c.Branches = BranchStall }),
		mk(func(c *Config) { c.Branches = BranchTwoBit; c.PredictorBits = 4 }),
		mk(func(c *Config) { c.Branches = BranchStatic; c.WindowSize = 64 }),
		mk(func(c *Config) { c.UnitLatency = true; c.Lifetimes = true; c.Sharing = true }),
	}
	sig := SigOf(&cfgs[0])
	for i := range cfgs {
		if got := SigOf(&cfgs[i]); got != sig {
			t.Fatalf("config %d left the resolve group: %+v vs %+v", i, got, sig)
		}
	}
	for trial := 0; trial < 4; trial++ {
		events := richTrace(rng, 300+rng.Intn(300))
		got := resolveRun(t, cfgs, events, cuts(rng, len(events)))
		for i, cfg := range cfgs {
			want := analyze(t, cfg, events)
			if !reflect.DeepEqual(got[i], want) {
				t.Errorf("trial %d config %d: shared resolution diverged from sequential analyzer", trial, i)
			}
		}
	}
}

// TestResolverValidationParity pins that the resolver rejects a malformed
// event with the same error — same absolute index — a sequential analyzer
// reports, and that the records before the bad event still flush.
func TestResolverValidationParity(t *testing.T) {
	events := richTrace(rand.New(rand.NewSource(7)), 40)
	// A load with MemSize 0 is the canonical validation failure.
	bad := trace.Event{Ins: isa.Instruction{Op: isa.LW, Rt: isa.T0, Rs: isa.GP}}
	events = append(events, bad)

	a := NewAnalyzer(Config{})
	var want error
	for i := range events {
		if want = a.Event(&events[i]); want != nil {
			break
		}
	}
	if want == nil {
		t.Fatal("sequential analyzer accepted the malformed event")
	}

	var segs int
	r := NewResolver(Config{}, func(*DepSegment) error { segs++; return nil })
	var got error
	for i := range events {
		if got = r.Event(&events[i]); got != nil {
			break
		}
	}
	if got == nil {
		t.Fatal("resolver accepted the malformed event")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resolver error %v, sequential analyzer error %v", got, want)
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("flush after error: %v", err)
	}
	if segs == 0 {
		t.Error("prefix before the bad event was not flushed")
	}
	if r.Totals().Events != 40 {
		t.Errorf("totals count %d events, want 40 (the valid prefix)", r.Totals().Events)
	}
}

// TestSchedulerTotalsMismatch pins that Finish refuses totals whose event
// count disagrees with the replayed stream — dropped or misordered
// segments must not produce a silently wrong Result.
func TestSchedulerTotalsMismatch(t *testing.T) {
	events := richTrace(rand.New(rand.NewSource(9)), 64)
	var segs []*DepSegment
	r := NewResolver(Config{}, func(seg *DepSegment) error {
		segs = append(segs, seg)
		return nil
	})
	if err := r.Events(events); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(Config{})
	for _, seg := range segs {
		if err := s.Apply(seg); err != nil {
			t.Fatal(err)
		}
	}
	bad := r.Totals()
	bad.Events++
	if _, err := s.Finish(bad); err == nil {
		t.Fatal("Finish accepted a totals/replay event-count mismatch")
	}
	if _, err := s.Finish(r.Totals()); err != nil {
		t.Fatalf("Finish with matching totals: %v", err)
	}
	if err := s.Apply(segs[0]); err == nil {
		t.Fatal("Apply after Finish succeeded")
	}
}

// TestResolverSegmentBounds pins that a long stream is cut into multiple
// bounded segments without explicit flushes, and that ResolveSegmentBytes
// really bounds each segment's footprint.
func TestResolverSegmentBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Enough events to overflow resolveSegWords several times.
	events := richTrace(rng, 40_000)
	var segs []*DepSegment
	r := NewResolver(Dataflow(SyscallConservative), func(seg *DepSegment) error {
		segs = append(segs, seg)
		return nil
	})
	if err := r.Events(events); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("40k events produced %d segment(s); want the stream cut", len(segs))
	}
	var total uint64
	for i, seg := range segs {
		total += seg.Events
		if b := int64(len(seg.Code)+len(seg.NewLocs)) * 4; b > ResolveSegmentBytes {
			t.Errorf("segment %d holds %d bytes, above the declared bound %d", i, b, ResolveSegmentBytes)
		}
	}
	if total != uint64(len(events)) {
		t.Errorf("segments cover %d events, want %d", total, len(events))
	}
	if errors.Is(r.Flush(), nil) && r.Totals().Events != uint64(len(events)) {
		t.Errorf("totals = %d events, want %d", r.Totals().Events, len(events))
	}
}
