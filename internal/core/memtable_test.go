package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// tableOps drives a memTable and a map[uint32]value reference through the
// same operation sequence and reports the first divergence. Keys are drawn
// from a small space so puts, overwrites and deletes collide often, and the
// table is forced through several incremental growths.
func tableOps(t *testing.T, seed int64, ops int, keySpace uint32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var tab memTable
	ref := make(map[uint32]value)
	for i := 0; i < ops; i++ {
		key := rng.Uint32() % keySpace
		switch rng.Intn(10) {
		case 0, 1: // delete
			tab.del(key)
			delete(ref, key)
		case 2: // get
			got, ok := tab.get(key)
			want, wantOK := ref[key]
			if ok != wantOK || got != want {
				t.Fatalf("seed %d op %d: get(%d) = %v,%v want %v,%v", seed, i, key, got, ok, want, wantOK)
			}
		default: // put
			v := value{level: int64(i), lastUse: int64(i), uses: uint32(i)}
			old, had := tab.put(key, v)
			wantOld, wantHad := ref[key]
			ref[key] = v
			if had != wantHad || old != wantOld {
				t.Fatalf("seed %d op %d: put(%d) returned %v,%v want %v,%v", seed, i, key, old, had, wantOld, wantHad)
			}
		}
		if tab.len() != len(ref) {
			t.Fatalf("seed %d op %d: len = %d want %d", seed, i, tab.len(), len(ref))
		}
	}
	// Full-content check, both directions.
	seen := 0
	tab.forEach(func(key uint32, v value) {
		seen++
		if want, ok := ref[key]; !ok || want != v {
			t.Fatalf("seed %d: forEach visited (%d,%v), reference has %v,%v", seed, key, v, want, ok)
		}
	})
	if seen != len(ref) {
		t.Fatalf("seed %d: forEach visited %d entries, want %d", seed, seen, len(ref))
	}
	for key, want := range ref {
		if got, ok := tab.get(key); !ok || got != want {
			t.Fatalf("seed %d: get(%d) = %v,%v want %v,true", seed, key, got, ok, want)
		}
	}
}

// TestDifferentialMemTable proves the open-addressed table is
// observation-equivalent to the map it replaced, across collision-heavy
// random workloads that exercise backward-shift deletion and incremental
// growth mid-migration.
func TestDifferentialMemTable(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		tableOps(t, seed, 20000, 1<<10) // dense: constant collisions, many overwrites
		tableOps(t, seed, 20000, 1<<20) // sparse: growth-dominated
	}
}

// TestMemTableQuick drives the same equivalence through testing/quick with
// arbitrary key sets, including key 0 (a valid word address — byte address
// 0–3 — which an open-addressed table must not confuse with an empty slot).
func TestMemTableQuick(t *testing.T) {
	check := func(keys []uint32) bool {
		var tab memTable
		ref := make(map[uint32]value)
		for i, k := range keys {
			v := value{level: int64(i)}
			tab.put(k, v)
			ref[k] = v
		}
		// Delete every other inserted key (duplicates make some deletes
		// no-ops in both structures).
		for i, k := range keys {
			if i%2 == 0 {
				had := tab.del(k)
				_, want := ref[k]
				if had != want {
					return false
				}
				delete(ref, k)
			}
		}
		if tab.len() != len(ref) {
			return false
		}
		for k, want := range ref {
			if got, ok := tab.get(k); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Explicit key-zero case.
	var tab memTable
	if _, ok := tab.get(0); ok {
		t.Fatal("empty table claims key 0 is present")
	}
	tab.put(0, value{level: 7})
	if v, ok := tab.get(0); !ok || v.level != 7 {
		t.Fatalf("get(0) = %v,%v want level 7", v, ok)
	}
	if !tab.del(0) {
		t.Fatal("del(0) reported absent")
	}
	if tab.len() != 0 {
		t.Fatalf("len = %d after deleting only entry", tab.len())
	}
}

// homedKeys returns n distinct non-zero keys whose home slot under mask is
// home (brute-forced; the Fibonacci multiplier spreads hits evenly so the
// search stays tiny).
func homedKeys(home, mask uint32, n int) []uint32 {
	keys := make([]uint32, 0, n)
	for k := uint32(1); len(keys) < n; k++ {
		if (k*2654435769)&mask == home {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestMemTableMigrationClusterStraddle is the regression test for the
// incremental-migration probe-chain bug: clusters of colliding keys are
// packed so they straddle every memMigrateStep multiple of the initial
// table, plus the wrap-around cluster at the array end, the table is pushed
// through the 256->512 growth, and full get/put/del equivalence against a
// reference map is asserted at every step while the migration is pending.
// With a frontier that stops mid-cluster, a key stored past the frontier
// whose home slot precedes it vanishes from get (old.find dies at its
// cleared home slot), which this test observes immediately after growth.
func TestMemTableMigrationClusterStraddle(t *testing.T) {
	const mask = memTableMinCap - 1
	var keys []uint32
	// Clusters [b-6, b+5] straddling each migration-step boundary b.
	for b := uint32(memMigrateStep); b < memTableMinCap; b += memMigrateStep {
		keys = append(keys, homedKeys(b-6, mask, 12)...)
	}
	// Wrap-around cluster spanning the array end: slots [252..255, 0..5].
	keys = append(keys, homedKeys(memTableMinCap-4, mask, 10)...)
	// Filler homed clear of the crafted clusters, enough that the next
	// insert crosses the 3/4 load ceiling and starts a migration.
	for h := uint32(8); len(keys) < 3*memTableMinCap/4 && h < memTableMinCap; h += 2 {
		if h%memMigrateStep < 8 || h%memMigrateStep > 48 {
			continue
		}
		keys = append(keys, homedKeys(h, mask, 2)...)
	}
	var tab memTable
	ref := make(map[uint32]value)
	for i, k := range keys {
		v := value{level: int64(i + 1), lastUse: int64(i), uses: uint32(i)}
		tab.put(k, v)
		ref[k] = v
	}
	if tab.old != nil {
		t.Fatal("migration started before the load ceiling was crossed")
	}
	// Crafted keys are brute-forced from 1 upward, so anything >= 1<<20 is
	// guaranteed fresh.
	next := uint32(1 << 20)
	tab.put(next, value{level: -1})
	ref[next] = value{level: -1}
	next++
	if tab.old == nil {
		t.Fatal("growth did not leave a migration pending")
	}
	checkAll := func(step int) {
		t.Helper()
		if tab.len() != len(ref) {
			t.Fatalf("step %d: len = %d want %d", step, tab.len(), len(ref))
		}
		for k, want := range ref {
			if got, ok := tab.get(k); !ok || got != want {
				t.Fatalf("step %d (migration pending: %v): get(%d) = %v,%v want %v,true",
					step, tab.old != nil, k, got, ok, want)
			}
		}
	}
	checkAll(0)
	for step := 1; tab.old != nil; step++ {
		// Delete a crafted key (often still unmigrated, past the frontier)
		// and insert a fresh one; each mutating call advances the frontier.
		k := keys[len(keys)-1]
		keys = keys[:len(keys)-1]
		if !tab.del(k) {
			t.Fatalf("step %d: del(%d) reported absent", step, k)
		}
		delete(ref, k)
		v := value{level: int64(1000 + step)}
		tab.put(next, v)
		ref[next] = v
		next++
		checkAll(step)
	}
	checkAll(-1)
	// The drain must leave exactly one copy of every key: the original bug
	// made memRead fabricate a fresh record for an invisible key, and the
	// later migration re-inserted the stale copy as a duplicate.
	seen := make(map[uint32]bool, len(ref))
	tab.forEach(func(key uint32, v value) {
		if seen[key] {
			t.Fatalf("forEach visited key %d twice after drain", key)
		}
		seen[key] = true
	})
	if len(seen) != len(ref) {
		t.Fatalf("forEach visited %d keys, want %d", len(seen), len(ref))
	}
}

// TestMemTableClone verifies clone independence, including a clone taken
// mid-migration.
func TestMemTableClone(t *testing.T) {
	var tab memTable
	for i := uint32(0); i < 1000; i++ {
		tab.put(i, value{level: int64(i)})
	}
	c := tab.clone()
	for i := uint32(0); i < 1000; i += 2 {
		tab.del(i)
	}
	tab.put(5000, value{level: -1})
	if c.len() != 1000 {
		t.Fatalf("clone len = %d want 1000 after mutating original", c.len())
	}
	for i := uint32(0); i < 1000; i++ {
		if v, ok := c.get(i); !ok || v.level != int64(i) {
			t.Fatalf("clone get(%d) = %v,%v want level %d", i, v, ok, i)
		}
	}
}
