package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// tableOps drives a memTable and a map[uint32]value reference through the
// same operation sequence and reports the first divergence. Keys are drawn
// from a small space so puts, overwrites and deletes collide often, and the
// table is forced through several incremental growths.
func tableOps(t *testing.T, seed int64, ops int, keySpace uint32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var tab memTable
	ref := make(map[uint32]value)
	for i := 0; i < ops; i++ {
		key := rng.Uint32() % keySpace
		switch rng.Intn(10) {
		case 0, 1: // delete
			tab.del(key)
			delete(ref, key)
		case 2: // get
			got, ok := tab.get(key)
			want, wantOK := ref[key]
			if ok != wantOK || got != want {
				t.Fatalf("seed %d op %d: get(%d) = %v,%v want %v,%v", seed, i, key, got, ok, want, wantOK)
			}
		default: // put
			v := value{level: int64(i), lastUse: int64(i), uses: uint32(i)}
			old, had := tab.put(key, v)
			wantOld, wantHad := ref[key]
			ref[key] = v
			if had != wantHad || old != wantOld {
				t.Fatalf("seed %d op %d: put(%d) returned %v,%v want %v,%v", seed, i, key, old, had, wantOld, wantHad)
			}
		}
		if tab.len() != len(ref) {
			t.Fatalf("seed %d op %d: len = %d want %d", seed, i, tab.len(), len(ref))
		}
	}
	// Full-content check, both directions.
	seen := 0
	tab.forEach(func(key uint32, v value) {
		seen++
		if want, ok := ref[key]; !ok || want != v {
			t.Fatalf("seed %d: forEach visited (%d,%v), reference has %v,%v", seed, key, v, want, ok)
		}
	})
	if seen != len(ref) {
		t.Fatalf("seed %d: forEach visited %d entries, want %d", seed, seen, len(ref))
	}
	for key, want := range ref {
		if got, ok := tab.get(key); !ok || got != want {
			t.Fatalf("seed %d: get(%d) = %v,%v want %v,true", seed, key, got, ok, want)
		}
	}
}

// TestDifferentialMemTable proves the open-addressed table is
// observation-equivalent to the map it replaced, across collision-heavy
// random workloads that exercise backward-shift deletion and incremental
// growth mid-migration.
func TestDifferentialMemTable(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		tableOps(t, seed, 20000, 1<<10) // dense: constant collisions, many overwrites
		tableOps(t, seed, 20000, 1<<20) // sparse: growth-dominated
	}
}

// TestMemTableQuick drives the same equivalence through testing/quick with
// arbitrary key sets, including key 0 (a valid word address — byte address
// 0–3 — which an open-addressed table must not confuse with an empty slot).
func TestMemTableQuick(t *testing.T) {
	check := func(keys []uint32) bool {
		var tab memTable
		ref := make(map[uint32]value)
		for i, k := range keys {
			v := value{level: int64(i)}
			tab.put(k, v)
			ref[k] = v
		}
		// Delete every other inserted key (duplicates make some deletes
		// no-ops in both structures).
		for i, k := range keys {
			if i%2 == 0 {
				had := tab.del(k)
				_, want := ref[k]
				if had != want {
					return false
				}
				delete(ref, k)
			}
		}
		if tab.len() != len(ref) {
			return false
		}
		for k, want := range ref {
			if got, ok := tab.get(k); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Explicit key-zero case.
	var tab memTable
	if _, ok := tab.get(0); ok {
		t.Fatal("empty table claims key 0 is present")
	}
	tab.put(0, value{level: 7})
	if v, ok := tab.get(0); !ok || v.level != 7 {
		t.Fatalf("get(0) = %v,%v want level 7", v, ok)
	}
	if !tab.del(0) {
		t.Fatal("del(0) reported absent")
	}
	if tab.len() != 0 {
		t.Fatalf("len = %d after deleting only entry", tab.len())
	}
}

// TestMemTableClone verifies clone independence, including a clone taken
// mid-migration.
func TestMemTableClone(t *testing.T) {
	var tab memTable
	for i := uint32(0); i < 1000; i++ {
		tab.put(i, value{level: int64(i)})
	}
	c := tab.clone()
	for i := uint32(0); i < 1000; i += 2 {
		tab.del(i)
	}
	tab.put(5000, value{level: -1})
	if c.len() != 1000 {
		t.Fatalf("clone len = %d want 1000 after mutating original", c.len())
	}
	for i := uint32(0); i < 1000; i++ {
		if v, ok := c.get(i); !ok || v.level != int64(i) {
			t.Fatalf("clone get(%d) = %v,%v want level %d", i, v, ok, i)
		}
	}
}
