package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"

	"paragraph/internal/budget"
	"paragraph/internal/isa"
	"paragraph/internal/stats"
	"paragraph/internal/trace"
)

// ClassCounts maps operation classes to dynamic instruction counts. It is
// an ordinary map in every way except its gob encoding, which writes the
// entries sorted by class: gob encodes plain maps in iteration order, and
// persisted results must be byte-reproducible (the fleet differentials
// compare shard result files across machines byte for byte).
type ClassCounts map[isa.OpClass]uint64

// classCountEntry is one sorted ClassCounts entry in the gob stream.
type classCountEntry struct {
	Class isa.OpClass
	Count uint64
}

// GobEncode implements gob.GobEncoder with a deterministic entry order.
func (c ClassCounts) GobEncode() ([]byte, error) {
	entries := make([]classCountEntry, 0, len(c))
	for cls, n := range c {
		entries = append(entries, classCountEntry{Class: cls, Count: n})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Class < entries[j].Class })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (c *ClassCounts) GobDecode(data []byte) error {
	var entries []classCountEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&entries); err != nil {
		return err
	}
	*c = make(ClassCounts, len(entries))
	for _, e := range entries {
		(*c)[e.Class] = e.Count
	}
	return nil
}

// Analyzer builds and analyzes the dynamic dependency graph of a serial
// execution trace in a single forward pass. It implements trace.Sink, so it
// can be attached directly to the CPU simulator or fed from a trace file.
//
// Feed events with Event, then call Finish exactly once to obtain the
// metrics. An Analyzer is not safe for concurrent use.
type Analyzer struct {
	cfg  Config
	well *liveWell

	// highestLevel is the paper's firewall floor: no operation may be
	// placed so that it begins above highestLevel-1. preLevel in the
	// live well tracks highestLevel-1.
	highestLevel int64
	// deepest is the paper's deepestLevelYetUsed.
	deepest int64
	anyOps  bool

	profile   *stats.LevelHistogram
	lifetimes stats.LogDist
	sharing   stats.LogDist

	window  windowState
	fu      *fuSchedule
	pred    *predictor
	deaths  *DeathSchedule
	storage *stats.LevelHistogram
	gov     *budget.Governor

	instructions uint64
	ops          uint64
	syscalls     uint64
	classCounts  [16]uint64
	maxLiveMem   int

	srcBuf   []isa.Reg
	finished bool
}

// NewAnalyzer creates an analyzer with the given configuration. The config
// is cloned (Config.Clone), so analyzers built from the same Config value
// share no mutable state and may run on separate goroutines.
func NewAnalyzer(cfg Config) *Analyzer {
	a := &Analyzer{
		cfg:     cfg.Clone(),
		well:    newLiveWell(),
		deepest: -1,
	}
	a.well.preLevel = -1 // highestLevel(0) - 1
	if cfg.Profile {
		a.profile = stats.NewLevelHistogram(cfg.ProfileBuckets)
	}
	if cfg.FunctionalUnits > 0 {
		a.fu = newFUSchedule(cfg.FunctionalUnits)
	}
	if cfg.Branches != BranchPerfect {
		a.pred = newPredictor(cfg.Branches, cfg.PredictorBits)
	}
	if cfg.StorageProfile {
		a.storage = stats.NewLevelHistogram(cfg.ProfileBuckets)
	}
	if cfg.MemBudget > 0 {
		a.gov = budget.New(cfg.MemBudget, cfg.BudgetPolicy)
	}
	return a
}

// Event implements trace.Sink: it consumes one dynamically executed
// instruction and updates the DDG state. Malformed events are rejected with
// an error wrapping ErrBadEvent before they can touch the DDG; panics in the
// placement machinery are converted into an *AnalysisError instead of
// unwinding through the caller.
func (a *Analyzer) Event(e *trace.Event) (err error) {
	if a.finished {
		return errors.New("core: Event after Finish")
	}
	seq := a.instructions
	if verr := validateEvent(e, seq); verr != nil {
		return verr
	}
	defer func() {
		if v := recover(); v != nil {
			err = &AnalysisError{Event: seq, Stage: "event", Cause: recoveredError(v)}
		}
	}()
	if err := a.event(e, seq); err != nil {
		return err
	}
	if a.deaths != nil {
		a.evictDead(seq)
	}
	if a.storage != nil {
		a.storage.Add(int64(seq), uint64(a.well.memLen()))
	}
	if a.gov != nil && a.instructions%budget.CheckEvery == 0 {
		if err := a.governBudget(); err != nil {
			return err
		}
	}
	return nil
}

// Events implements trace.BatchSink: the hot-path batch ingest loop.
// Feeding a batch is observation-equivalent to calling Event for each
// element — validation, eviction, storage profiling and the governor's
// every-CheckEvery cadence are all preserved per event, so GovernorStats
// and every Result field come out identical — but the interface call, the
// defensive event copy and the panic-recovery frame are paid once per
// batch instead of once per event. Per the BatchSink contract the events
// are read through the shared slice and never mutated or retained.
func (a *Analyzer) Events(batch []trace.Event) (err error) {
	if a.finished {
		return errors.New("core: Event after Finish")
	}
	seq := a.instructions
	defer func() {
		if v := recover(); v != nil {
			err = &AnalysisError{Event: seq, Stage: "event", Cause: recoveredError(v)}
		}
	}()
	for i := range batch {
		e := &batch[i]
		seq = a.instructions
		if verr := validateEvent(e, seq); verr != nil {
			return verr
		}
		if err := a.event(e, seq); err != nil {
			return err
		}
		if a.deaths != nil {
			a.evictDead(seq)
		}
		if a.storage != nil {
			a.storage.Add(int64(seq), uint64(a.well.memLen()))
		}
		if a.gov != nil && a.instructions%budget.CheckEvery == 0 {
			if err := a.governBudget(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Per-entry working-set costs used by the budget governor live in
// internal/budget (see budget.LiveWellEntryBytes, calibrated against
// runtime.MemStats by BenchmarkLiveWellCalibration). Only the register-file
// floor is computed here, since it depends on the ISA.
const regFileBytes = int64(isa.NumRegs) * 24

// governBudget meters the analyzer's working sets against the configured
// memory budget. Called every budget.CheckEvery events, never per event.
// Under the degrade policy an over-budget observation tightens the
// effective instruction window (recorded in GovernorStats and visible in
// Result.Config.WindowSize); under fail-fast it returns the structured
// budget error that aborts the analysis.
func (a *Analyzer) governBudget() error {
	return a.governBudgetAt(a.well.memLen())
}

// governBudgetAt is governBudget with the live-memory count supplied by the
// caller: during a speculative splice (ApplyDelta) the live well is stale —
// touched locations live in the slot array until write-back — so the splice
// meters its own running count instead.
func (a *Analyzer) governBudgetAt(memLen int) error {
	u := budget.Usage{
		LiveWellBytes: int64(memLen)*budget.LiveWellEntryBytes + regFileBytes,
		WindowBytes:   int64(a.window.count()) * budget.WindowEntryBytes,
	}
	if a.fu != nil {
		u.WindowBytes += int64(len(a.fu.counts)) * budget.FUEntryBytes
	}
	newWindow, err := a.gov.Govern(u, a.cfg.WindowSize)
	if err != nil {
		return fmt.Errorf("core: event %d: %w", a.instructions, err)
	}
	a.cfg.WindowSize = newWindow
	return nil
}

// validateEvent checks an event's internal consistency. The checks mirror
// the invariants the CPU tracer maintains; an event violating them came from
// a corrupt trace or a buggy producer, and processing it would poison the
// DDG state silently.
func validateEvent(e *trace.Event, seq uint64) error {
	if e.Ins.Op >= isa.NumOps {
		return &BadEventError{Index: seq, PC: e.PC,
			Reason: fmt.Sprintf("unknown opcode %d", e.Ins.Op)}
	}
	info := e.Ins.Op.Info()
	isMem := info.IsLoad || info.IsStore
	switch {
	case isMem && e.MemSize == 0:
		return &BadEventError{Index: seq, PC: e.PC,
			Reason: "memory operation with zero access size"}
	case !isMem && e.MemSize > 0:
		return &BadEventError{Index: seq, PC: e.PC,
			Reason: fmt.Sprintf("%v carries a memory access", e.Ins.Op)}
	case isMem && e.Seg == trace.SegNone:
		return &BadEventError{Index: seq, PC: e.PC,
			Reason: "memory operation with no segment classification"}
	case isMem && (e.Seg == trace.SegStack) != (e.MemAddr >= stackFloor):
		return &BadEventError{Index: seq, PC: e.PC,
			Reason: fmt.Sprintf("segment %v inconsistent with address %#x", e.Seg, e.MemAddr)}
	}
	return nil
}

// event dispatches one instruction; seq is its trace position.
func (a *Analyzer) event(e *trace.Event, seq uint64) error {
	a.instructions++

	// Slide the instruction window: instructions displaced by this one
	// carry a firewall (Section 3.2, Figure 6).
	if w := a.cfg.WindowSize; w > 0 {
		a.window.displace(seq, uint64(w), a)
	}

	op := e.Ins.Op
	info := op.Info()
	a.classCounts[info.Class]++

	switch {
	case op == isa.NOP:
		return nil
	case e.IsSyscall():
		a.syscalls++
		if a.cfg.Syscalls == SyscallOptimistic {
			return nil // assumed to modify nothing; ignored
		}
		a.placeSyscall(seq)
		return nil
	case info.IsJump:
		// Jumps and calls are control instructions and are excluded
		// from the DDG, but calls produce a return-address value
		// that later code saves and restores. The return address is
		// a static constant (PC+4), so the value is bound as if it
		// pre-existed: available immediately, delaying nothing.
		if d, ok := e.Ins.Dest(); ok {
			a.bindConstant(d)
		}
		return nil
	case info.IsBranch:
		// Control instructions are never placed, but under an
		// imperfect branch model a misprediction firewalls the DDG at
		// the branch's resolution level: nothing later may be placed
		// above it.
		if a.pred != nil && a.pred.mispredicted(e.PC, e.Ins.Imm < 0, e.Taken) {
			a.raiseFloor(a.branchResolution(e) + 1)
		}
		return nil
	}

	a.place(e, seq)
	return nil
}

// bindConstant binds a register to an immediately available value at the
// current firewall floor.
func (a *Analyzer) bindConstant(r isa.Reg) {
	v := value{level: a.highestLevel - 1, lastUse: a.highestLevel - 1}
	old, wasLive := a.well.setReg(r, v)
	if wasLive {
		a.retire(old)
	}
}

// retire records the statistics of a value whose storage was just reused.
func (a *Analyzer) retire(old value) {
	if a.cfg.Lifetimes {
		life := old.lastUse - old.level
		if life < 0 {
			life = 0 // created but never consumed
		}
		a.lifetimes.Add(life)
	}
	if a.cfg.Sharing {
		a.sharing.Add(int64(old.uses))
	}
}

// regDests appends the register destinations of the instruction (HI and LO
// both, for multiply/divide).
func regDests(ins *isa.Instruction, dst []isa.Reg) []isa.Reg {
	info := ins.Op.Info()
	switch {
	case info.WritesRd:
		dst = append(dst, ins.Rd)
	case info.WritesRt:
		dst = append(dst, ins.Rt)
	case info.WritesHILO:
		switch ins.Op {
		case isa.MTHI:
			dst = append(dst, isa.HI)
		case isa.MTLO:
			dst = append(dst, isa.LO)
		default: // mult/div write both halves
			dst = append(dst, isa.HI, isa.LO)
		}
	case info.WritesFCC:
		dst = append(dst, isa.FCC)
	}
	return dst
}

// wordRange returns the inclusive range of word addresses covered by a
// memory access. The live well tracks memory at word granularity, the
// paper's "located by address" resolution; sub-word stores therefore kill
// the whole word's value.
func wordRange(addr uint32, size uint8) (lo, hi uint32) {
	if size == 0 {
		return 1, 0 // empty range
	}
	return addr >> 2, (addr + uint32(size) - 1) >> 2
}

// renamedSeg reports whether storage dependencies are removed for the given
// memory segment under the current configuration.
func (a *Analyzer) renamedSeg(seg trace.Segment) bool {
	if seg == trace.SegStack {
		return a.cfg.RenameStack
	}
	return a.cfg.RenameData
}

// place assigns the instruction its DDG level using the placement rule and
// updates the live well. This is the heart of Paragraph.
func (a *Analyzer) place(e *trace.Event, seq uint64) {
	op := e.Ins.Op
	info := op.Info()
	top := a.cfg.latency(op)

	// Base level: the deepest of the firewall floor and the source
	// availability levels. The operation executes in levels
	// base+1 .. base+top and its result becomes available at base+top.
	base := a.highestLevel - 1

	a.srcBuf = e.Ins.SourceRegs(a.srcBuf[:0])
	for _, r := range a.srcBuf {
		if r == isa.Zero {
			continue // hardwired zero: a constant, never a dependency
		}
		if rec := a.well.reg(r); rec.level > base {
			base = rec.level
		}
	}
	var memLo, memHi uint32
	if info.IsLoad {
		memLo, memHi = wordRange(e.MemAddr, e.MemSize)
		for w := memLo; w <= memHi; w++ {
			if v := a.well.memRead(w); v.level > base {
				base = v.level
			}
		}
	}

	// Storage-dependency term (Ddest+1): only when renaming is off for
	// the destination's location class.
	if !a.cfg.RenameRegisters {
		var dbuf [2]isa.Reg
		for _, d := range regDests(&e.Ins, dbuf[:0]) {
			if d == isa.Zero {
				continue
			}
			if rec, live := a.well.regIfLive(d); live && rec.lastUse+1 > base {
				base = rec.lastUse + 1
			}
		}
	}
	if info.IsStore {
		memLo, memHi = wordRange(e.MemAddr, e.MemSize)
		if !a.renamedSeg(e.Seg) {
			for w := memLo; w <= memHi; w++ {
				if v, live := a.well.memGet(w); live && v.lastUse+1 > base {
					base = v.lastUse + 1
				}
			}
		}
	}

	// Resource dependencies: delay until top consecutive levels each
	// have a free functional unit (Figure 4).
	if a.fu != nil {
		base = a.fu.schedule(base, top)
	}

	ldest := base + top

	// The sources are consumed at the base level; record the deepest
	// consumption for future storage dependencies, and the fan-out.
	for _, r := range a.srcBuf {
		if r == isa.Zero {
			continue
		}
		rec := a.well.reg(r)
		rec.uses++
		if base > rec.lastUse {
			rec.lastUse = base
		}
	}
	if info.IsLoad {
		for w := memLo; w <= memHi; w++ {
			v := a.well.memRead(w)
			v.uses++
			if base > v.lastUse {
				v.lastUse = base
			}
			a.well.memPut(w, v)
		}
	}

	// Bind the created value(s). lastUse starts at the creating
	// operation's base level: a later overwrite must begin strictly
	// after this operation began (one level of WAW spacing), and the
	// storage-dependency term then grows with each consumer.
	newVal := value{level: ldest, lastUse: base}
	{
		var dbuf [2]isa.Reg
		for _, d := range regDests(&e.Ins, dbuf[:0]) {
			if d == isa.Zero {
				continue
			}
			if old, wasLive := a.well.setReg(d, newVal); wasLive {
				a.retire(old)
			}
		}
	}
	if info.IsStore {
		for w := memLo; w <= memHi; w++ {
			if old, wasLive := a.well.memPut(w, newVal); wasLive {
				a.retire(old)
			}
		}
		if n := a.well.memLen(); n > a.maxLiveMem {
			a.maxLiveMem = n
		}
	}

	a.placed(seq, ldest)
}

// placed records bookkeeping common to every operation that enters the DDG.
func (a *Analyzer) placed(seq uint64, ldest int64) {
	a.ops++
	if !a.anyOps || ldest > a.deepest {
		a.deepest = ldest
		a.anyOps = true
	}
	if a.profile != nil {
		a.profile.Add(ldest, 1)
	}
	if a.cfg.WindowSize > 0 {
		a.window.push(seq, ldest)
	}
}

// placeSyscall implements the conservative policy: a firewall is placed
// immediately after the deepest computation yet seen, the system call
// itself lands just below the firewall, and highestLevel advances past it
// so that no later operation can be placed above the call (Section 3.2's
// second special case).
func (a *Analyzer) placeSyscall(seq uint64) {
	base := a.highestLevel - 1
	if a.anyOps && a.deepest > base {
		base = a.deepest
	}
	ldest := base + a.cfg.latency(isa.SYSCALL)
	a.placed(seq, ldest)
	a.raiseFloor(ldest + 1)
}

// raiseFloor advances the firewall floor (highestLevel) monotonically.
func (a *Analyzer) raiseFloor(level int64) {
	if level > a.highestLevel {
		a.highestLevel = level
		a.well.preLevel = level - 1
	}
}

// Result carries every metric of one analysis run.
type Result struct {
	Config Config

	// Instructions is the number of trace events consumed, including
	// control instructions and NOPs.
	Instructions uint64
	// Operations is the number of value-creating operations placed in
	// the DDG; the paper computes available parallelism from these.
	Operations uint64
	// Syscalls is the number of system-call instructions seen.
	Syscalls uint64

	// CriticalPath is the height of the topologically sorted DDG: the
	// minimum number of steps needed to execute the trace.
	CriticalPath int64
	// Available is the available parallelism: Operations / CriticalPath.
	Available float64

	// Profile is the parallelism profile (operations per DDG level,
	// bucket-averaged); nil unless Config.Profile was set.
	Profile []stats.ProfilePoint
	// StorageProfile is the live-well occupancy curve (average live
	// memory words per trace-position bucket); nil unless
	// Config.StorageProfile was set.
	StorageProfile []stats.ProfilePoint
	// ProfileBucketWidth is the number of levels per profile bucket.
	ProfileBucketWidth int64
	// PeakOps is the highest bucket-averaged profile value.
	PeakOps float64

	// Lifetimes is the value-lifetime distribution in DDG levels; only
	// populated when Config.Lifetimes was set.
	Lifetimes stats.LogDist
	// Sharing is the degree-of-sharing distribution (consumers per
	// value); only populated when Config.Sharing was set.
	Sharing stats.LogDist

	// Branches and Mispredictions report the modelled predictor's
	// behaviour (zero under the perfect policy).
	Branches       uint64
	Mispredictions uint64

	// ClassCounts gives dynamic instruction counts per operation class.
	ClassCounts ClassCounts
	// MaxLiveMemoryWords is the peak number of live memory words in the
	// live well — the working set the paper needed 32 MB for.
	MaxLiveMemoryWords int

	// Governor reports memory-budget accounting (peak usage, degradations,
	// the effective window after any tightening); nil unless
	// Config.MemBudget was set.
	Governor *budget.GovernorStats
}

// Finish flushes end-of-trace state and returns the metrics. The analyzer
// rejects further events afterwards. Internal panics are converted into an
// *AnalysisError rather than unwinding through the caller.
func (a *Analyzer) Finish() (res *Result, err error) {
	if a.finished {
		return nil, errors.New("core: Finish called twice")
	}
	defer func() {
		if v := recover(); v != nil {
			res = nil
			err = &AnalysisError{Event: a.instructions, Stage: "finish", Cause: recoveredError(v)}
		}
	}()
	a.finished = true

	// Values still live at the end of the trace die here.
	if a.cfg.Lifetimes || a.cfg.Sharing {
		a.well.forEachLive(func(v value) { a.retire(v) })
	}

	r := &Result{
		Config:             a.cfg,
		Instructions:       a.instructions,
		Operations:         a.ops,
		Syscalls:           a.syscalls,
		ClassCounts:        make(map[isa.OpClass]uint64),
		MaxLiveMemoryWords: a.maxLiveMem,
	}
	for cls, n := range a.classCounts {
		if n > 0 {
			r.ClassCounts[isa.OpClass(cls)] = n
		}
	}
	if a.pred != nil {
		r.Branches = a.pred.branches
		r.Mispredictions = a.pred.mispredicts
	}
	if a.anyOps {
		r.CriticalPath = a.deepest + 1
		r.Available = float64(a.ops) / float64(r.CriticalPath)
	}
	if a.storage != nil {
		r.StorageProfile = a.storage.Profile()
	}
	if a.profile != nil {
		r.Profile = a.profile.Profile()
		r.ProfileBucketWidth = a.profile.Width()
		for _, p := range r.Profile {
			if p.Ops > r.PeakOps {
				r.PeakOps = p.Ops
			}
		}
	}
	if a.cfg.Lifetimes {
		r.Lifetimes = a.lifetimes
	}
	if a.cfg.Sharing {
		r.Sharing = a.sharing
	}
	if a.gov != nil {
		st := a.gov.Stats()
		r.Governor = &st
	}
	return r, nil
}

// MustFinish is Finish for callers that treat an analysis failure as fatal
// (tests, benchmarks, examples); it panics on error.
func (a *Analyzer) MustFinish() *Result {
	r, err := a.Finish()
	if err != nil {
		panic(err)
	}
	return r
}

// String summarizes the result in one line.
func (r *Result) String() string {
	return fmt.Sprintf("ops=%d critical-path=%d available=%.2f (syscalls=%d, %s)",
		r.Operations, r.CriticalPath, r.Available, r.Syscalls, r.Config.Syscalls)
}

// windowState implements the sliding instruction window as a FIFO of
// (sequence number, level) pairs for placed instructions. Displacement of
// an instruction raises the firewall floor past its level, so nothing later
// can be placed at or above it.
//
// The FIFO is a power-of-two circular buffer: head and tail are absolute
// push/displace counts and an entry lives at index count&mask. Live entries
// are bounded by the window size, so the buffer grows to the largest window
// in use and then never moves again — no append checks or compaction copies
// on the per-event path, which the record-replay scheduler inlines. Each
// entry interleaves (seq, level) so a push or pop touches one cache line,
// not one per array.
type winEntry struct {
	seq   uint64
	level int64
}

type windowState struct {
	buf  []winEntry
	head uint64
	tail uint64
}

// count returns the number of in-window entries.
func (w *windowState) count() int { return int(w.tail - w.head) }

// grow doubles the buffer, linearizing live entries to the front.
func (w *windowState) grow() {
	n := len(w.buf) * 2
	if n == 0 {
		n = 1024
	}
	buf := make([]winEntry, n)
	mask := uint64(len(w.buf) - 1)
	for j, k := 0, w.head; k < w.tail; j, k = j+1, k+1 {
		buf[j] = w.buf[k&mask]
	}
	w.tail -= w.head
	w.head = 0
	w.buf = buf
}

func (w *windowState) push(seq uint64, level int64) {
	if int(w.tail-w.head) == len(w.buf) {
		w.grow()
	}
	w.buf[w.tail&uint64(len(w.buf)-1)] = winEntry{seq: seq, level: level}
	w.tail++
}

// displace pops every instruction that has left the window now that seq is
// entering, firing its firewall.
func (w *windowState) displace(seq, size uint64, a *Analyzer) {
	if seq < size {
		return
	}
	cutoff := seq - size
	mask := uint64(len(w.buf) - 1)
	for w.head < w.tail {
		e := &w.buf[w.head&mask]
		if e.seq > cutoff {
			break
		}
		a.raiseFloor(e.level + 1)
		w.head++
	}
}

// fuSchedule tracks per-level functional-unit occupancy. Levels at or below
// floor are known full and pruned, bounding memory.
type fuSchedule struct {
	units  int
	counts map[int64]int
	floor  int64 // every level <= floor holds `units` busy FUs
}

func newFUSchedule(units int) *fuSchedule {
	return &fuSchedule{units: units, counts: make(map[int64]int), floor: -1}
}

// schedule finds the earliest base >= the data-ready base such that levels
// base+1 .. base+top all have a free unit, and claims them.
func (f *fuSchedule) schedule(base, top int64) int64 {
	if base < f.floor {
		base = f.floor
	}
	for {
		conflict := int64(-1)
		for l := base + 1; l <= base+top; l++ {
			if f.counts[l] >= f.units {
				conflict = l
				break
			}
		}
		if conflict < 0 {
			break
		}
		base = conflict
	}
	for l := base + 1; l <= base+top; l++ {
		f.counts[l]++
	}
	for f.counts[f.floor+1] >= f.units {
		f.floor++
		delete(f.counts, f.floor)
	}
	return base
}
