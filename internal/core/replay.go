package core

import (
	"fmt"

	"paragraph/internal/budget"
	"paragraph/internal/isa"
)

// deltaReplay is the record-replay engine shared by the speculative splice
// (Analyzer.ApplyDelta) and the per-config Scheduler: it walks a compiled
// record stream (ShardDelta.Code / DepSegment.Code) and maintains every
// level-dependent structure of the analyzer — firewall floor, window,
// functional units, predictor, governor, statistics — with pure array
// indexing against a dense slot table instead of live-well hashing. The
// replay performs the same placements in the same order Analyzer.Event
// would, which is what makes both callers exact by construction.
//
// Slot state (slots, curMem) belongs to the caller: ApplyDelta materializes
// it from the live well and writes it back per delta, the Scheduler keeps it
// across segments for the whole trace.
type deltaReplay struct {
	a      *Analyzer
	slots  []deltaSlot
	curMem int
	// lat is padded to the full width of the record's 8-bit opcode field
	// so the (w0>>8)&0xff index provably stays in bounds — the replay loop
	// pays no bounds check on the latency lookup.
	lat [256]int64

	// Parallelism-profile updates are batched in a small scratch of
	// (level, count) runs and flushed once per run() call instead of once
	// per placed record. LevelHistogram's final state is a pure function
	// of the multiset of (level, n) additions — counts are linear and the
	// bucket width depends only on the deepest level ever added — so the
	// batching is exact, not approximate.
	histLevel [histScratch]int64
	histCount [histScratch]uint64
	histLen   int
}

// histScratch sizes the profile batch: large enough that consecutive
// placements at alternating levels still amortize the histogram's
// rescale-check, small enough to live in the replay struct.
const histScratch = 64

// init binds the replay to an analyzer and resolves the latency table once;
// latencies come from the analyzer's config, not the record stream, so ops
// resolve through the same tables a sequential run uses.
func (r *deltaReplay) init(a *Analyzer) {
	r.a = a
	for op := isa.Op(0); op < isa.NumOps; op++ {
		r.lat[op] = a.cfg.latency(op)
	}
}

// hist batches one placement into the profile scratch (see deltaReplay).
func (r *deltaReplay) hist(ldest int64) {
	if r.histLen > 0 && r.histLevel[r.histLen-1] == ldest {
		r.histCount[r.histLen-1]++
		return
	}
	if r.histLen == histScratch {
		r.flushHist()
	}
	r.histLevel[r.histLen] = ldest
	r.histCount[r.histLen] = 1
	r.histLen++
}

// flushHist drains the batched profile counts into the histogram.
func (r *deltaReplay) flushHist() {
	for i := 0; i < r.histLen; i++ {
		r.a.profile.Add(r.histLevel[i], r.histCount[i])
	}
	r.histLen = 0
}

// syncBack writes the loop-local replay state back to the analyzer. run()
// calls it on every exit and before handing control to the governor, which
// reads the analyzer directly. preLevel tracks highestLevel-1 by invariant
// (raiseFloor, init and checkpoint restore all maintain it), so the
// unconditional write preserves it.
func (r *deltaReplay) syncBack(seq uint64, curMem int, hl int64, ops uint64, deepest int64, anyOps bool) {
	a := r.a
	a.instructions = seq
	r.curMem = curMem
	a.highestLevel = hl
	a.well.preLevel = hl - 1
	a.ops = ops
	a.deepest = deepest
	a.anyOps = anyOps
}

// run replays one record stream. Records must be complete (segment cuts
// happen at record boundaries); slot references must resolve within
// r.slots. Batched statistics are flushed before returning on every path.
//
// The per-record state — event counter, firewall floor, live-memory count,
// op statistics — lives in plain locals for the duration of the walk and is
// written back through syncBack on exit. This is the analyzer's hottest
// loop (every config in a sweep runs it over the whole trace) and keeping
// the state addressable on the Analyzer would defeat register allocation;
// no closure may capture these locals for the same reason.
func (r *deltaReplay) run(code []uint32) error {
	defer r.flushHist()
	a := r.a
	slots := r.slots

	seq := a.instructions
	curMem := r.curMem
	hl := a.highestLevel
	ops := a.ops
	deepest := a.deepest
	anyOps := a.anyOps
	win := &a.window
	winSize := uint64(a.cfg.WindowSize)
	profileOn := a.profile != nil
	retireOn := a.cfg.Lifetimes || a.cfg.Sharing
	storage := a.storage
	fu := a.fu
	pred := a.pred
	gov := a.gov
	tailWork := storage != nil || gov != nil

	for i := 0; i < len(code); {
		w0 := code[i]
		i++
		rec := seq
		seq++
		if winSize > 0 && rec >= winSize {
			// Inlined windowState.displace + raiseFloor.
			cutoff := rec - winSize
			for win.head < win.tail {
				e := &win.buf[win.head&uint64(len(win.buf)-1)]
				if e.seq > cutoff {
					break
				}
				if lv := e.level + 1; lv > hl {
					hl = lv
				}
				win.head++
			}
		}
		switch w0 & 7 {
		case deltaKindSkip:
			// Window, storage profile and governor cadence only.

		case deltaKindPlace:
			top := r.lat[(w0>>8)&0xff]
			nsrc := int((w0 >> 16) & 0xff)
			ndst := int(w0 >> 24)

			var ldest int64
			if nsrc <= 2 && ndst == 1 {
				// Unrolled fast path: at most two sources, one
				// destination — every ALU op, load and store the ISA
				// produces. Source slots stay in registers across the
				// base computation and the use writeback, instead of
				// being re-indexed by a second loop.
				_ = code[i+nsrc] // one bounds check for the whole record
				pre := hl - 1
				base := pre
				var s0, s1 *deltaSlot
				if nsrc > 0 {
					s0 = &slots[code[i]]
					if !s0.live {
						s0.val = value{level: pre, lastUse: pre}
						s0.live = true
						if s0.isMem {
							curMem++
						}
					}
					if s0.val.level > base {
						base = s0.val.level
					}
					if nsrc == 2 {
						s1 = &slots[code[i+1]]
						if !s1.live {
							s1.val = value{level: pre, lastUse: pre}
							s1.live = true
							if s1.isMem {
								curMem++
							}
						}
						if s1.val.level > base {
							base = s1.val.level
						}
					}
				}
				dw := code[i+nsrc]
				i += nsrc + 1
				d := &slots[dw&^deltaStorageTerm]
				if dw&deltaStorageTerm != 0 && d.live && d.val.lastUse+1 > base {
					base = d.val.lastUse + 1
				}
				if fu != nil {
					base = fu.schedule(base, top)
				}
				ldest = base + top
				if s0 != nil {
					s0.val.uses++
					if base > s0.val.lastUse {
						s0.val.lastUse = base
					}
					if s1 != nil {
						s1.val.uses++
						if base > s1.val.lastUse {
							s1.val.lastUse = base
						}
					}
				}
				if d.live {
					if retireOn {
						a.retire(d.val)
					}
				} else {
					d.live = true
					if d.isMem {
						curMem++
					}
				}
				d.val = value{level: ldest, lastUse: base}
			} else {
				// General path: multi-destination ops (HI/LO writers)
				// and degenerate shapes.
				srcs := code[i : i+nsrc]
				dsts := code[i+nsrc : i+nsrc+ndst]
				i += nsrc + ndst

				base := hl - 1
				for _, s := range srcs {
					sl := &slots[s]
					if !sl.live {
						sl.val = value{level: hl - 1, lastUse: hl - 1}
						sl.live = true
						if sl.isMem {
							curMem++
						}
					}
					if sl.val.level > base {
						base = sl.val.level
					}
				}
				for _, dw := range dsts {
					if dw&deltaStorageTerm != 0 {
						sl := &slots[dw&^deltaStorageTerm]
						if sl.live && sl.val.lastUse+1 > base {
							base = sl.val.lastUse + 1
						}
					}
				}
				if fu != nil {
					base = fu.schedule(base, top)
				}
				ldest = base + top
				for _, s := range srcs {
					sl := &slots[s]
					sl.val.uses++
					if base > sl.val.lastUse {
						sl.val.lastUse = base
					}
				}
				newVal := value{level: ldest, lastUse: base}
				for _, dw := range dsts {
					sl := &slots[dw&^deltaStorageTerm]
					if sl.live {
						if retireOn {
							a.retire(sl.val)
						}
					} else {
						sl.live = true
						if sl.isMem {
							curMem++
						}
					}
					sl.val = newVal
				}
			}
			if w0&deltaFlagIsStore != 0 && curMem > a.maxLiveMem {
				a.maxLiveMem = curMem
			}
			// Inlined placed().
			ops++
			if !anyOps || ldest > deepest {
				deepest = ldest
				anyOps = true
			}
			if profileOn {
				r.hist(ldest)
			}
			if winSize > 0 {
				// Inlined windowState.push.
				if int(win.tail-win.head) == len(win.buf) {
					win.grow()
				}
				win.buf[win.tail&uint64(len(win.buf)-1)] = winEntry{seq: rec, level: ldest}
				win.tail++
			}

		case deltaKindJump:
			if w0>>24 != 0 {
				sl := &slots[code[i]]
				i++
				if sl.live {
					if retireOn {
						a.retire(sl.val)
					}
				} else {
					sl.live = true
				}
				sl.val = value{level: hl - 1, lastUse: hl - 1}
			}

		case deltaKindBranch:
			// Under BranchPerfect (pred == nil) the record is consumed but
			// constrains nothing and touches no slots — exactly what
			// Analyzer.event does with the branch. The Resolver emits full
			// branch records regardless of branch policy so one resolution
			// serves every policy in a sweep.
			nsrc := int((w0 >> 16) & 0xff)
			if pred == nil {
				i += 1 + nsrc
				break
			}
			pc := code[i]
			srcs := code[i+1 : i+1+nsrc]
			i += 1 + nsrc
			if pred.mispredicted(pc, w0&deltaFlagImmNeg != 0, w0&deltaFlagTaken != 0) {
				base := hl - 1
				for _, s := range srcs {
					sl := &slots[s]
					if !sl.live {
						sl.val = value{level: hl - 1, lastUse: hl - 1}
						sl.live = true
					}
					if sl.val.level > base {
						base = sl.val.level
					}
				}
				if lv := base + r.lat[(w0>>8)&0xff] + 1; lv > hl {
					hl = lv
				}
			}

		case deltaKindSyscall:
			base := hl - 1
			if anyOps && deepest > base {
				base = deepest
			}
			ldest := base + r.lat[isa.SYSCALL]
			ops++
			if !anyOps || ldest > deepest {
				deepest = ldest
				anyOps = true
			}
			if profileOn {
				r.hist(ldest)
			}
			if winSize > 0 {
				win.push(rec, ldest)
			}
			if ldest+1 > hl {
				hl = ldest + 1
			}

		default:
			r.syncBack(seq, curMem, hl, ops, deepest, anyOps)
			return fmt.Errorf("core: corrupt delta: unknown record kind %d at event %d", w0&7, rec)
		}

		if tailWork {
			if storage != nil {
				storage.Add(int64(rec), uint64(curMem))
			}
			if gov != nil && seq%budget.CheckEvery == 0 {
				r.syncBack(seq, curMem, hl, ops, deepest, anyOps)
				if gerr := a.governBudgetAt(curMem); gerr != nil {
					return gerr
				}
				// The degrade policy may have tightened the window.
				winSize = uint64(a.cfg.WindowSize)
			}
		}
	}
	r.syncBack(seq, curMem, hl, ops, deepest, anyOps)
	return nil
}
